// Command paperfig regenerates every figure of the paper's evaluation
// section (§5) as an ASCII table (or CSV):
//
//	paperfig -fig 5a          # Figure 5(a): use rate vs φ, medium load
//	paperfig -fig all -scale full
//	paperfig -fig 6b -csv
//
// Figures: 5a 5b 6a 6b 7a 7b, or "all". Scales: quick, std (default),
// full — they trade simulated horizon and seed count for runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mralloc/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a 5b 6a 6b 7a 7b all")
	scale := flag.String("scale", "std", "simulation scale: quick std full")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	sc, ok := map[string]experiments.Scale{
		"quick": experiments.Quick,
		"std":   experiments.Std,
		"full":  experiments.Full,
	}[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "paperfig: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	type figure struct {
		name string
		run  func() (experiments.Table, error)
	}
	figures := []figure{
		{"5a", func() (experiments.Table, error) { return experiments.Figure5(experiments.MediumLoad, sc) }},
		{"5b", func() (experiments.Table, error) { return experiments.Figure5(experiments.HighLoad, sc) }},
		{"6a", func() (experiments.Table, error) { return experiments.Figure6(experiments.MediumLoad, sc) }},
		{"6b", func() (experiments.Table, error) { return experiments.Figure6(experiments.HighLoad, sc) }},
		{"7a", func() (experiments.Table, error) { return experiments.Figure7(experiments.MediumLoad, sc) }},
		{"7b", func() (experiments.Table, error) { return experiments.Figure7(experiments.HighLoad, sc) }},
	}

	ran := 0
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		ran++
		start := time.Now()
		tab, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfig: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.String())
			fmt.Printf("(figure %s, scale %s, %.1fs)\n\n", f.name, *scale, time.Since(start).Seconds())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "paperfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
