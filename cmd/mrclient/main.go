// Command mrclient drives a running mralloc cluster from outside:
// it connects to a daemon's client port (mrallocd -client-listen) and
// runs a synthetic workload over the client wire protocol, reporting
// wait-time statistics. It is both a smoke tool for deployments and
// the reference consumer of internal/serve.Client.
//
// Against the 3-daemon example of cmd/mrallocd (with daemon 0 started
// with -client-listen 127.0.0.1:8000):
//
//	mrclient -addr 127.0.0.1:8000 -sessions 64 -ops 20 -phi 3
//
// opens one connection multiplexing 64 concurrent sessions, each
// performing 20 random acquire/release cycles on the daemon's nodes —
// a closed loop: each session issues its next request only after the
// previous one finishes, so offered load can never exceed capacity.
//
// With -rate the client switches to open-loop mode: arrivals are
// offered at that rate (Poisson) for -duration whether or not earlier
// ones have finished, like independent users hitting a service — the
// mode that makes queueing collapse visible. Shed arrivals
// (ErrOverloaded, from -max-queue or the adaptive bound on the daemon)
// and timeouts are counted instead of aborting the run; pass
// -retry-overloaded to have each arrival retry denials under jittered
// exponential backoff instead.
//
//	mrclient -addr 127.0.0.1:8000 -rate 5000 -duration 30s -interval 1s
//
// -interval prints wait quantiles per window (each window's
// distribution is independent — the accumulator is snapshot-reset), so
// a drifting tail is visible as it drifts, not averaged away.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mralloc/internal/metrics"
	"mralloc/internal/serve"
)

type clientConfig struct {
	addr            string
	sessions, ops   int
	m, phi, node    int
	think, hold     time.Duration
	timeout         time.Duration
	seed            int64
	rate            float64
	duration        time.Duration
	interval        time.Duration
	retryOverloaded bool
}

func main() {
	var cfg clientConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8000", "client port of a mrallocd daemon")
	flag.IntVar(&cfg.sessions, "sessions", 8, "closed loop: concurrent sessions to multiplex on the connection")
	flag.IntVar(&cfg.ops, "ops", 10, "closed loop: acquire/release cycles per session")
	flag.IntVar(&cfg.m, "resources", 0, "resource universe size M of the cluster (0 = learn it from the daemon's hello)")
	flag.IntVar(&cfg.phi, "phi", 3, "maximum resources per request")
	flag.IntVar(&cfg.node, "node", serve.AnyNode, "target node id (-1 = daemon picks round-robin)")
	flag.DurationVar(&cfg.think, "think", time.Millisecond, "closed loop: mean pause between a session's requests")
	flag.DurationVar(&cfg.hold, "hold", 500*time.Microsecond, "critical-section duration")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-acquire timeout")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.Float64Var(&cfg.rate, "rate", 0, "open loop: offer arrivals at this rate (acquires/s, Poisson) for -duration instead of running sessions×ops")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "open loop: how long to offer arrivals")
	flag.DurationVar(&cfg.interval, "interval", 0, "print wait quantiles per window of this length (0 = one final summary); windows are independent, not cumulative")
	flag.BoolVar(&cfg.retryOverloaded, "retry-overloaded", false, "retry ErrOverloaded denials with jittered exponential backoff (bounded by -timeout)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mrclient:", err)
		os.Exit(1)
	}
}

// drawResources picks 1..phi distinct resources.
func drawResources(rng *rand.Rand, m, phi int) []int {
	k := 1 + rng.Intn(phi)
	set := make(map[int]bool, k)
	for len(set) < k {
		set[rng.Intn(m)] = true
	}
	ids := make([]int, 0, k)
	for r := range set {
		ids = append(ids, r)
	}
	return ids
}

func run(cfg clientConfig) error {
	cl, err := serve.Dial(cfg.addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if cfg.m == 0 {
		// The daemon's hello reply carries the cluster shape, so a
		// client needs no out-of-band M.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		nodes, resources, err := cl.Shape(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("learning cluster shape (pass -resources to skip): %w", err)
		}
		cfg.m = resources
		fmt.Printf("mrclient: daemon announced N=%d M=%d\n", nodes, cfg.m)
	}
	if cfg.phi < 1 || cfg.phi > cfg.m {
		return fmt.Errorf("-phi %d outside [1, %d]", cfg.phi, cfg.m)
	}

	var mu sync.Mutex
	var wait metrics.Accum
	record := func(since time.Time) {
		mu.Lock()
		wait.Add(float64(time.Since(since).Microseconds()) / 1e3)
		mu.Unlock()
	}
	// The windowed reporter: every -interval, swap the accumulator out
	// (Snapshot resets it) and print that window alone.
	stopReport := func() {}
	if cfg.interval > 0 {
		done := make(chan struct{})
		var wgR sync.WaitGroup
		wgR.Add(1)
		go func() {
			defer wgR.Done()
			tick := time.NewTicker(cfg.interval)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					mu.Lock()
					s := wait.Snapshot()
					mu.Unlock()
					fmt.Printf("window %v: n=%d wait ms mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
						cfg.interval, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
				}
			}
		}()
		stopReport = func() { close(done); wgR.Wait() }
	}

	var retry *serve.Backoff
	if cfg.retryOverloaded {
		retry = &serve.Backoff{}
	}

	if cfg.rate > 0 {
		err = runOpenLoop(cfg, cl, retry, record)
	} else {
		err = runClosedLoop(cfg, cl, retry, record)
	}
	stopReport()
	if err != nil {
		return err
	}
	mu.Lock()
	sum := wait.Summary()
	mu.Unlock()
	if sum.Count > 0 {
		fmt.Printf("wait ms: n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			sum.Count, sum.Mean, sum.P50, sum.P95, sum.P99, sum.Max)
	}
	return nil
}

// runClosedLoop is the original sessions×ops workload.
func runClosedLoop(cfg clientConfig, cl *serve.Client, retry *serve.Backoff, record func(time.Time)) error {
	errs := make(chan error, cfg.sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < cfg.sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(s)*1000003))
			for i := 0; i < cfg.ops; i++ {
				ids := drawResources(rng, cfg.m, cfg.phi)
				ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
				issued := time.Now()
				release, err := cl.AcquireWith(ctx, cfg.node, serve.AcquireOpts{
					Resources:       ids,
					RetryOverloaded: retry,
				})
				cancel()
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", s, err)
					return
				}
				record(issued)
				if cfg.hold > 0 {
					time.Sleep(cfg.hold)
				}
				release()
				if cfg.think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(cfg.think)))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("mrclient: %d sessions × %d ops in %v (%.0f acquires/s)\n",
		cfg.sessions, cfg.ops, elapsed.Round(time.Millisecond),
		float64(cfg.sessions*cfg.ops)/elapsed.Seconds())
	return nil
}

// runOpenLoop offers Poisson arrivals at cfg.rate for cfg.duration,
// counting sheds and timeouts instead of aborting on them — under
// overload they are the measurement.
func runOpenLoop(cfg clientConfig, cl *serve.Client, retry *serve.Backoff, record func(time.Time)) error {
	var granted, shed, timedOut atomic.Int64
	var firstErr atomic.Value
	rng := rand.New(rand.NewSource(cfg.seed))
	start := time.Now()
	var wg sync.WaitGroup
	var n int64
	for next := time.Duration(0); next < cfg.duration; next += time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.rate) {
		at := start.Add(next)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		n++
		seed := cfg.seed + n*1000003
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := drawResources(rand.New(rand.NewSource(seed)), cfg.m, cfg.phi)
			ctx, cancel := context.WithDeadline(context.Background(), at.Add(cfg.timeout))
			defer cancel()
			release, err := cl.AcquireWith(ctx, cfg.node, serve.AcquireOpts{
				Resources:       ids,
				RetryOverloaded: retry,
			})
			switch {
			case err == nil:
				record(at)
				if cfg.hold > 0 {
					time.Sleep(cfg.hold)
				}
				release()
				granted.Add(1)
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
			case ctx.Err() != nil:
				timedOut.Add(1)
			default:
				firstErr.CompareAndSwap(nil, err)
			}
		}()
	}
	wg.Wait()
	if v := firstErr.Load(); v != nil {
		return v.(error)
	}
	elapsed := time.Since(start)
	fmt.Printf("mrclient: offered %d arrivals in %v (%.0f/s): granted=%d shed=%d timed-out=%d\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		granted.Load(), shed.Load(), timedOut.Load())
	return nil
}
