// Command mrclient drives a running mralloc cluster from outside:
// it connects to a daemon's client port (mrallocd -client-listen) and
// runs a synthetic multi-session workload over the client wire
// protocol, reporting wait-time statistics. It is both a smoke tool
// for deployments and the reference consumer of internal/serve.Client.
//
// Against the 3-daemon example of cmd/mrallocd (with daemon 0 started
// with -client-listen 127.0.0.1:8000):
//
//	mrclient -addr 127.0.0.1:8000 -sessions 64 -ops 20 -phi 3
//
// opens one connection multiplexing 64 concurrent sessions, each
// performing 20 random acquire/release cycles on the daemon's nodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"mralloc/internal/metrics"
	"mralloc/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8000", "client port of a mrallocd daemon")
		sessions = flag.Int("sessions", 8, "concurrent sessions to multiplex on the connection")
		ops      = flag.Int("ops", 10, "acquire/release cycles per session")
		m        = flag.Int("resources", 0, "resource universe size M of the cluster (0 = learn it from the daemon's hello)")
		phi      = flag.Int("phi", 3, "maximum resources per request")
		node     = flag.Int("node", serve.AnyNode, "target node id (-1 = daemon picks round-robin)")
		think    = flag.Duration("think", time.Millisecond, "mean pause between a session's requests")
		hold     = flag.Duration("hold", 500*time.Microsecond, "critical-section duration")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-acquire timeout")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
	)
	flag.Parse()
	if err := run(*addr, *sessions, *ops, *m, *phi, *node, *think, *hold, *timeout, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mrclient:", err)
		os.Exit(1)
	}
}

func run(addr string, sessions, ops, m, phi, node int, think, hold, timeout time.Duration, seed int64) error {
	cl, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if m == 0 {
		// The daemon's hello reply carries the cluster shape, so a
		// client needs no out-of-band M.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		nodes, resources, err := cl.Shape(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("learning cluster shape (pass -resources to skip): %w", err)
		}
		m = resources
		fmt.Printf("mrclient: daemon announced N=%d M=%d\n", nodes, m)
	}
	if phi < 1 || phi > m {
		return fmt.Errorf("-phi %d outside [1, %d]", phi, m)
	}

	var mu sync.Mutex
	var wait metrics.Accum
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(s)*1000003))
			for i := 0; i < ops; i++ {
				k := 1 + rng.Intn(phi)
				set := make(map[int]bool, k)
				for len(set) < k {
					set[rng.Intn(m)] = true
				}
				ids := make([]int, 0, k)
				for r := range set {
					ids = append(ids, r)
				}
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				issued := time.Now()
				release, err := cl.Acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", s, err)
					return
				}
				mu.Lock()
				wait.Add(float64(time.Since(issued).Microseconds()) / 1e3)
				mu.Unlock()
				if hold > 0 {
					time.Sleep(hold)
				}
				release()
				if think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(think)))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)
	sum := wait.Summary()
	fmt.Printf("mrclient: %d sessions × %d ops in %v (%.0f acquires/s)\n",
		sessions, ops, elapsed.Round(time.Millisecond),
		float64(sessions*ops)/elapsed.Seconds())
	fmt.Printf("wait ms: mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		sum.Mean, sum.P50, sum.P95, sum.P99, sum.Max)
	return nil
}
