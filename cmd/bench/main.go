// Command bench runs the reproducible performance grid of
// internal/bench and writes the BENCH report JSON.
//
// Usage:
//
//	go run ./cmd/bench                  # full grid -> BENCH_6.json
//	go run ./cmd/bench -out other.json
//	go run ./cmd/bench -run sim/n32     # scenario name filter (substring)
//	go run ./cmd/bench -run largeN      # just the payload-path tier
//	go run ./cmd/bench -merge BENCH_5.json -run sharded
//	                                    # keep BENCH_5's rows byte-identical,
//	                                    # run and append only the new tier
//	go run ./cmd/bench -capture-baseline # print Go literal for baseline.go
//
// The scenario grid, seeds, and protocol metrics (msg/cs, grants,
// events) are deterministic; ns/op and allocs/op depend on the machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mralloc/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_6.json", "output report path")
	filter := flag.String("run", "", "only run scenarios whose name contains this substring")
	merge := flag.String("merge", "", "prior report whose rows are kept verbatim; scenarios it already has are skipped, new ones appended")
	capture := flag.Bool("capture-baseline", false, "print the measurements as a Go literal for baseline.go instead of writing the report")
	flag.Parse()

	var prior *bench.Report
	if *merge != "" {
		data, err := os.ReadFile(*merge)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		prior = &bench.Report{}
		if err := json.Unmarshal(data, prior); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *merge, err)
			os.Exit(1)
		}
	}
	have := map[string]bool{}
	if prior != nil {
		for _, r := range prior.Current {
			have[r.Scenario] = true
		}
	}

	var results []bench.Result
	for _, s := range bench.Grid() {
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		if have[s.Name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", s.Name)
		results = append(results, bench.Measure(s))
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no scenario matched")
		os.Exit(1)
	}

	if *capture {
		fmt.Println("var Baseline = []Result{")
		for _, r := range results {
			fmt.Printf("\t{Scenario: %q, NsPerOp: %d, AllocsPerOp: %d, BytesPerOp: %d, MsgPerCS: %v, GrantsPerOp: %d, EventsPerOp: %d, CSPerSec: %v},\n",
				r.Scenario, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.MsgPerCS, r.GrantsPerOp, r.EventsPerOp, r.CSPerSec)
		}
		fmt.Println("}")
		return
	}

	report := bench.NewReport(results)
	if prior != nil {
		report = bench.MergeReports(*prior, report)
	}
	data, err := report.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	fmt.Print(report.Table())
}
