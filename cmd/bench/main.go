// Command bench runs the reproducible performance grid of
// internal/bench and writes the BENCH report JSON.
//
// Usage:
//
//	go run ./cmd/bench                  # full grid -> BENCH_3.json
//	go run ./cmd/bench -out other.json
//	go run ./cmd/bench -run sim/n32     # scenario name filter (substring)
//	go run ./cmd/bench -run largeN      # just the payload-path tier
//	go run ./cmd/bench -capture-baseline # print Go literal for baseline.go
//
// The scenario grid, seeds, and protocol metrics (msg/cs, grants,
// events) are deterministic; ns/op and allocs/op depend on the machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mralloc/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_3.json", "output report path")
	filter := flag.String("run", "", "only run scenarios whose name contains this substring")
	capture := flag.Bool("capture-baseline", false, "print the measurements as a Go literal for baseline.go instead of writing the report")
	flag.Parse()

	var results []bench.Result
	for _, s := range bench.Grid() {
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", s.Name)
		results = append(results, bench.Measure(s))
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no scenario matched")
		os.Exit(1)
	}

	if *capture {
		fmt.Println("var Baseline = []Result{")
		for _, r := range results {
			fmt.Printf("\t{Scenario: %q, NsPerOp: %d, AllocsPerOp: %d, BytesPerOp: %d, MsgPerCS: %v, GrantsPerOp: %d, EventsPerOp: %d, CSPerSec: %v},\n",
				r.Scenario, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.MsgPerCS, r.GrantsPerOp, r.EventsPerOp, r.CSPerSec)
		}
		fmt.Println("}")
		return
	}

	report := bench.NewReport(results)
	data, err := report.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	fmt.Print(report.Table())
}
