// Command mrallocd runs one process of a multi-process mralloc
// cluster: it hosts one or more protocol nodes, listens for peer
// traffic on TCP, and either serves passively (routing and owning
// tokens on behalf of the cluster) or drives a synthetic workload and
// reports what it measured.
//
// A 3-node loopback cluster, one daemon per node:
//
//	mrallocd -nodes 3 -resources 16 -local 0 -listen 127.0.0.1:7000 \
//	         -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -ops 50 &
//	mrallocd -nodes 3 -resources 16 -local 1 -listen 127.0.0.1:7001 \
//	         -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -ops 50 &
//	mrallocd -nodes 3 -resources 16 -local 2 -listen 127.0.0.1:7002 \
//	         -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -ops 50
//
// Every daemon must be given the same -nodes, -resources, -alg and
// -peers; each hosts a disjoint -local set covering all nodes. With
// -ops 0 (default) a daemon participates until SIGINT/SIGTERM; with
// -ops K it performs K random acquire/release cycles per local node,
// prints per-kind message statistics, and exits. Shutdown is graceful
// either way: the daemon drains first, handing every token it owns to
// a waiting peer or the resource's steward, so the surviving cluster
// never waits out a lease expiry for resources this process held.
//
// With -client-listen the daemon additionally opens a client port:
// external processes speak the client wire protocol (internal/serve)
// to it, each connection multiplexing any number of concurrent
// acquisition sessions onto the hosted nodes through the admission
// scheduler (-policy picks the ordering). The example above plus
//
//	mrallocd ... -client-listen 127.0.0.1:8000 -policy ssf
//
// serves clients on 127.0.0.1:8000 while peering on -listen.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // -pprof exposes the default mux's profiles
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/experiments"
	"mralloc/internal/live"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
)

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	nodes, resources int
	shards           int
	crossTwoPhase    bool
	algName          string
	listen           string
	peersCSV         string
	localCSV         string
	ops, phi         int
	think            time.Duration
	seed             int64
	linger           time.Duration
	clientListen     string
	policyStr        string
	maxQueue         int
	admitTarget      time.Duration
	pprofAddr        string
	wireDelta        bool
	wireWritev       bool
	wireHello        bool
	wireWindow       int64
	egressBudget     int64
	flushDelay       time.Duration
	flushDelayMax    time.Duration
	chaosDrop        float64
	chaosDup         float64
	chaosDelay       time.Duration
	chaosDelayMax    time.Duration
	chaosKillEvery   time.Duration
	chaosSeed        int64
	chaosSpec        string
	reliable         bool
	leaseTTL         time.Duration
	hbInterval       time.Duration
}

func main() {
	var cfg daemonConfig
	flag.IntVar(&cfg.nodes, "nodes", 3, "total number of nodes N in the cluster")
	flag.IntVar(&cfg.resources, "resources", 16, "number of resources M")
	flag.IntVar(&cfg.shards, "shards", 1, "split the resource universe into this many contiguous shards, each with its own allocator instances and event loops; every daemon of the cluster must agree (1 = flat, wire-compatible with pre-shard builds)")
	flag.BoolVar(&cfg.crossTwoPhase, "cross-two-phase", false, "acquire cross-shard sets with the parallel two-phase scheme (timeout, hand back, retry) instead of ordered shard locking")
	flag.StringVar(&cfg.algName, "alg", "counter-loan", "algorithm: counter-loan, counter-no-loan, incremental, bouabdallah")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:7000", "TCP listen address of this process")
	flag.StringVar(&cfg.peersCSV, "peers", "", "comma-separated list of N addresses; entry i hosts node i")
	flag.StringVar(&cfg.localCSV, "local", "0", "comma-separated node ids hosted by this process")
	flag.IntVar(&cfg.ops, "ops", 0, "random acquire/release cycles per local node (0 = serve until signal)")
	flag.StringVar(&cfg.clientListen, "client-listen", "", "TCP address of the client port (empty = no client port)")
	flag.StringVar(&cfg.policyStr, "policy", "fifo", "admission policy for multiplexed sessions: fifo, ssf, edf, adaptive")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "deny client acquires with ErrOverloaded once a node has this many waiting (0 = unbounded)")
	flag.DurationVar(&cfg.admitTarget, "admit-target", 0, "adaptive policy's grant-latency target; its self-tuned bound sheds client acquires that cannot meet it (0 = built-in default; other policies ignore it)")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	flag.BoolVar(&cfg.wireDelta, "wire-delta", true, "delta-encode token state on peer connections; every daemon of the cluster must run a delta-aware build (pass =false to interoperate with pre-delta peers)")
	flag.BoolVar(&cfg.wireWritev, "wire-writev", true, "vectored (writev) egress for batched peer frames")
	flag.BoolVar(&cfg.wireHello, "wire-hello", true, "send the connection hello on dialed peer links (negotiates features and flow-control windows; pass =false to mimic a pre-negotiation build)")
	flag.Int64Var(&cfg.wireWindow, "wire-window", 0, "receive window in bytes announced to peers (0 = default, negative = disable crediting)")
	flag.Int64Var(&cfg.egressBudget, "egress-budget", 0, "client-port response bytes queued per connection before the client is shed (0 = default, negative = unbounded)")
	flag.DurationVar(&cfg.flushDelay, "flush-delay", 0, "egress micro-delay before each peer flush, trading bounded latency for bigger batches (0 = flush on wakeup)")
	flag.DurationVar(&cfg.flushDelayMax, "flush-delay-max", 0, "> flush-delay enables adaptive widening of the flush delay under high fan-in")
	flag.Float64Var(&cfg.chaosDrop, "chaos-drop", 0, "fault injection: probability in [0,1] of dropping each outgoing peer message")
	flag.Float64Var(&cfg.chaosDup, "chaos-dup", 0, "fault injection: probability in [0,1] of duplicating each outgoing peer message (breaks the no-duplication hypothesis — expect safety-only behavior)")
	flag.DurationVar(&cfg.chaosDelay, "chaos-delay", 0, "fault injection: minimum extra delay per outgoing peer message")
	flag.DurationVar(&cfg.chaosDelayMax, "chaos-delay-max", 0, "fault injection: maximum extra delay per outgoing peer message (0 with -chaos-delay set means fixed delay)")
	flag.DurationVar(&cfg.chaosKillEvery, "chaos-kill-every", 0, "fault injection: forcibly abort every live peer connection at this interval, exercising the redial path (0 = never)")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "fault injection: RNG seed for the per-link fault schedules")
	flag.StringVar(&cfg.chaosSpec, "chaos-spec", "", "fault injection: hex-encoded chaos spec (as printed by a prior run) — replays that exact fault configuration, overriding the individual -chaos-* knobs")
	flag.BoolVar(&cfg.reliable, "reliable", false, "per-link ack/retransmit wrapper on peer traffic: restores reliable delivery (and so liveness) over a lossy fabric, at the cost of ack frames and retransmit buffers")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", 0, "token lease TTL (counter-loan/counter-no-loan only): heartbeat-tracked leases let a steward regenerate tokens lost with a crashed peer, fencing the stale epoch (0 = leases off)")
	flag.DurationVar(&cfg.hbInterval, "hb-interval", 0, "lease heartbeat interval (0 = lease-ttl/3); must be well below -lease-ttl")
	flag.DurationVar(&cfg.linger, "linger", 5*time.Second, "after the workload, keep serving peers this long before exiting (0 = until signal); legacy safety net from before the shutdown drain — tokens are now handed off explicitly, lingering just catches stragglers mid-handoff")
	flag.IntVar(&cfg.phi, "phi", 4, "maximum resources per request (workload mode)")
	flag.DurationVar(&cfg.think, "think", time.Millisecond, "mean pause between requests (workload mode)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mrallocd:", err)
		os.Exit(1)
	}
}

func factoryFor(name string, leaseTTL, hbInterval time.Duration) (alg.Factory, error) {
	if leaseTTL > 0 {
		// Leases are a counter-algorithm feature: the token carries the
		// authority epoch and the steward mapping is derived from the
		// resource id, neither of which the comparators implement.
		var opt core.Options
		switch name {
		case "counter-loan":
			opt = core.WithLoan()
		case "counter-no-loan":
			opt = core.WithoutLoan()
		default:
			return nil, fmt.Errorf("-lease-ttl: algorithm %q has no lease support (counter-loan and counter-no-loan only)", name)
		}
		opt.LeaseTTL = sim.Time(leaseTTL)
		opt.HeartbeatInterval = sim.Time(hbInterval)
		return core.NewFactory(opt), nil
	}
	switch name {
	case "counter-loan":
		return experiments.Factory(experiments.WithLoan), nil
	case "counter-no-loan":
		return experiments.Factory(experiments.WithoutLoan), nil
	case "incremental":
		return experiments.Factory(experiments.Incremental), nil
	case "bouabdallah":
		return experiments.Factory(experiments.Bouabdallah), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func parseIDs(csv string, n int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("bad node id %q (cluster has %d nodes)", f, n)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no local node ids given")
	}
	return out, nil
}

func run(cfg daemonConfig) error {
	nodes, resources := cfg.nodes, cfg.resources
	ops, phi, think, seed, linger := cfg.ops, cfg.phi, cfg.think, cfg.seed, cfg.linger
	factory, err := factoryFor(cfg.algName, cfg.leaseTTL, cfg.hbInterval)
	if err != nil {
		return err
	}
	policy, err := serve.ParsePolicy(cfg.policyStr)
	if err != nil {
		return err
	}
	local, err := parseIDs(cfg.localCSV, nodes)
	if err != nil {
		return err
	}
	peers := strings.Split(cfg.peersCSV, ",")
	if cfg.peersCSV == "" || len(peers) != nodes {
		return fmt.Errorf("-peers must list exactly %d addresses, got %d", nodes, len(peers))
	}
	if phi < 1 || phi > resources {
		return fmt.Errorf("-phi %d outside [1, %d]", phi, resources)
	}
	if cfg.shards < 1 || cfg.shards > resources {
		return fmt.Errorf("-shards %d outside [1, %d]", cfg.shards, resources)
	}
	if cfg.pprofAddr != "" {
		// Profiles for live bench/debug runs: the default mux carries
		// net/http/pprof. Failure to bind is fatal — a daemon asked to
		// be profiled silently not serving profiles wastes the session.
		errc := make(chan error, 1)
		go func() { errc <- http.ListenAndServe(cfg.pprofAddr, nil) }()
		select {
		case err := <-errc:
			return fmt.Errorf("-pprof %s: %w", cfg.pprofAddr, err)
		case <-time.After(100 * time.Millisecond):
			fmt.Printf("mrallocd: pprof on http://%s/debug/pprof/\n", cfg.pprofAddr)
		}
	}

	tr, err := transport.ListenTCP(cfg.listen, nodes, local...)
	if err != nil {
		return err
	}
	if err := tr.Connect(peers); err != nil {
		tr.Close()
		return err
	}
	// The cluster's transport: the raw TCP endpoint, or — when any
	// -chaos-* knob is armed — that endpoint behind the fault-injecting
	// wrapper, with the spec hex printed so the run can be replayed.
	clusterTr, err := chaosWrap(cfg, tr)
	if err != nil {
		tr.Close()
		return err
	}
	// -reliable stacks the ack/retransmit wrapper above the (possibly
	// chaotic) endpoint: live → Reliable → Chaos → TCP, so injected
	// drops and duplicates are healed below the protocol.
	var rel *transport.Reliable
	if cfg.reliable {
		rel = transport.NewReliable(clusterTr)
		clusterTr = rel
	}
	if cfg.shards > 1 {
		// The chaos and reliable wrappers forward the flat transport
		// only; a sharded cluster needs the endpoint's Sharder face.
		if _, ok := clusterTr.(transport.Sharder); !ok {
			clusterTr.Close()
			return fmt.Errorf("-shards %d: the -chaos-*/-reliable wrappers do not carry sharded traffic", cfg.shards)
		}
	}
	// Leases need a clock: tick each node a few times per heartbeat.
	var tick time.Duration
	if cfg.leaseTTL > 0 {
		hb := cfg.hbInterval
		if hb <= 0 {
			hb = cfg.leaseTTL / 3
		}
		if tick = hb / 3; tick <= 0 {
			tick = time.Millisecond
		}
	}
	cluster, err := live.New(live.Config{
		Nodes:              nodes,
		Resources:          resources,
		Shards:             cfg.shards,
		CrossShardTwoPhase: cfg.crossTwoPhase,
		Transport:          clusterTr,
		Local:              local,
		Policy:             policy,
		AdmitTarget:        cfg.admitTarget,
		Tick:               tick,
		Wire: transport.WireOptions{
			Delta:         cfg.wireDelta,
			NoVectored:    !cfg.wireWritev,
			NoHello:       !cfg.wireHello,
			Window:        cfg.wireWindow,
			FlushDelay:    cfg.flushDelay,
			FlushDelayMax: cfg.flushDelayMax,
		},
	}, factory)
	if err != nil {
		return err
	}
	defer cluster.Close()
	if cfg.shards > 1 {
		fmt.Printf("mrallocd: hosting nodes %v of %d (%s, M=%d, G=%d shards) on %s\n",
			local, nodes, cfg.algName, resources, cfg.shards, tr.Addr())
	} else {
		fmt.Printf("mrallocd: hosting nodes %v of %d (%s, M=%d) on %s\n",
			local, nodes, cfg.algName, resources, tr.Addr())
	}

	if cfg.clientListen != "" {
		scfg := serve.ServerConfig{
			Listen:       cfg.clientListen,
			Nodes:        nodes,
			Resources:    resources,
			Shards:       cfg.shards,
			Local:        local,
			MaxQueue:     cfg.maxQueue,
			EgressBudget: cfg.egressBudget,
			Open:         func(node int) (serve.BackendSession, error) { return cluster.NewSession(node) },
		}
		if policy == serve.Adaptive {
			// The adaptive load oracle: the client port consults each
			// node's self-tuned bound before queueing and reports the
			// denials back into its shed-rate tracking.
			scfg.Overloaded = cluster.Overloaded
			scfg.NoteShed = cluster.NoteShed
		}
		srv, err := serve.NewServer(scfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("mrallocd: client port on %s (policy %s, max-queue %d)\n", srv.Addr(), policy, cfg.maxQueue)
	}

	// Graceful exit: hand off every token our nodes own (to a waiting
	// requester or the resource's steward) before the process dies, so
	// peers never have to wait out a lease expiry and regeneration for
	// resources we were holding.
	shutdown := func() {
		if cluster.Drain() {
			fmt.Println("mrallocd: drained — owned tokens handed off to peers")
		}
		printStats(cluster.Stats())
		printRecovery(cluster, local, rel)
	}

	if ops <= 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("mrallocd: signal received, shutting down")
		shutdown()
		return nil
	}

	// Workload mode: every local node performs ops random cycles.
	var wg sync.WaitGroup
	errs := make(chan error, len(local))
	startAll := time.Now()
	for _, id := range local {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)*1000003))
			for i := 0; i < ops; i++ {
				k := 1 + rng.Intn(phi)
				rs := make(map[int]bool, k)
				for len(rs) < k {
					rs[rng.Intn(resources)] = true
				}
				ids := make([]int, 0, k)
				for r := range rs {
					ids = append(ids, r)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
				release, err := cluster.Acquire(ctx, id, ids...)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("node %d: %w", id, err)
					return
				}
				release()
				if think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(think)))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(startAll)
	fmt.Printf("mrallocd: %d nodes × %d ops in %v (%.0f acquires/s)\n",
		len(local), ops, elapsed.Round(time.Millisecond),
		float64(len(local)*ops)/elapsed.Seconds())
	printStats(cluster.Stats())

	// Keep serving: peers may still route requests through our nodes or
	// be mid-handshake on tokens we own. The shutdown drain hands off
	// ownership explicitly; lingering first lets in-flight traffic
	// settle so the drain finds stable queues.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if linger > 0 {
		fmt.Printf("mrallocd: workload done, serving peers for %v\n", linger)
		select {
		case <-sig:
		case <-time.After(linger):
		}
	} else {
		fmt.Println("mrallocd: workload done, serving peers until signal")
		<-sig
	}
	// Serving peers sends more messages (token handoffs); report the
	// final counters so the numbers across daemons add up.
	fmt.Println("mrallocd: final counters after serving peers:")
	shutdown()
	return nil
}

// printRecovery reports the fault-recovery machinery's work: the
// reliable wrapper's retransmission ledger (when -reliable is armed)
// and the counter-algorithm protocol counters aggregated over the
// local nodes — one row per shard on a sharded cluster, plus the
// aggregate line the flat daemon has always printed.
func printRecovery(cluster *live.Cluster, local []int, rel *transport.Reliable) {
	if rel != nil {
		s := rel.RelStats()
		fmt.Printf("reliable link: retransmits=%d acked=%d dups-dropped=%d gaps=%d acks-sent=%d\n",
			s.Retransmits, s.Acked, s.DupsDropped, s.Gaps, s.AcksSent)
	}
	g := cluster.Shards()
	perShard := make([]core.Counters, g)
	var agg core.Counters
	seen := false
	for s := 0; s < g; s++ {
		for _, id := range local {
			cluster.InspectShard(s, id, func(n alg.Node) {
				if nd, ok := n.(*core.Node); ok {
					perShard[s].Add(nd.Counters())
					seen = true
				}
			})
		}
		agg.Add(perShard[s])
	}
	if !seen {
		return
	}
	if g > 1 {
		smap := cluster.ShardLayout()
		for s := 0; s < g; s++ {
			lo := int(smap.Start(s))
			fmt.Printf("  shard %d [%d..%d]: %s\n", s, lo, lo+smap.Size(s)-1, perShard[s])
		}
		fmt.Printf("counters (all shards): %s\n", agg)
	}
	if agg.Heartbeats > 0 || agg.Regens > 0 || agg.Fenced > 0 || agg.Drained > 0 {
		fmt.Printf("leases: heartbeats=%d grants=%d expiries=%d regens=%d fenced=%d drained=%d\n",
			agg.Heartbeats, agg.LeaseGrants, agg.LeaseExpiries, agg.Regens, agg.Fenced, agg.Drained)
	}
}

// chaosWrap wraps the peer transport in a fault-injecting
// transport.Chaos when any -chaos-* knob is armed. A -chaos-spec hex
// string (as printed by a previous chaotic run) overrides the
// individual knobs and replays that exact fault configuration.
func chaosWrap(cfg daemonConfig, tr *transport.TCP) (transport.Transport, error) {
	spec := transport.Spec{
		Seed: cfg.chaosSeed,
		Faults: transport.Faults{
			Drop:     cfg.chaosDrop,
			Dup:      cfg.chaosDup,
			DelayMin: cfg.chaosDelay,
			DelayMax: cfg.chaosDelayMax,
		},
		KillEvery: cfg.chaosKillEvery,
	}
	// -chaos-delay alone means a fixed delay of that much.
	if spec.Faults.DelayMax < spec.Faults.DelayMin {
		spec.Faults.DelayMax = spec.Faults.DelayMin
	}
	if cfg.chaosSpec != "" {
		var err error
		spec, err = transport.ParseSpecHex(cfg.chaosSpec)
		if err != nil {
			return nil, fmt.Errorf("-chaos-spec: %w", err)
		}
	}
	if spec.Faults.Drop == 0 && spec.Faults.Dup == 0 &&
		spec.Faults.DelayMax == 0 && spec.KillEvery == 0 {
		return tr, nil // nothing armed: hand the raw endpoint through
	}
	// Round-tripping through the encoding validates the flag values
	// (probability ranges, delay ordering) with the same rules replay
	// uses, so a bad flag fails here instead of surprising a replay.
	if _, err := transport.ParseSpec(spec.Append(nil)); err != nil {
		return nil, fmt.Errorf("chaos flags: %w", err)
	}
	ch := transport.NewChaos(tr, spec.Seed)
	ch.Apply(spec)
	fmt.Printf("mrallocd: chaos armed, replay with -chaos-spec %s\n", spec)
	return ch, nil
}

func printStats(stats map[string]int64) {
	kinds := make([]string, 0, len(stats))
	var total int64
	for k, v := range stats {
		kinds = append(kinds, k)
		total += v
	}
	sort.Strings(kinds)
	fmt.Printf("messages sent: total=%d\n", total)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, stats[k])
	}
}
