// Command mrsim runs one ad-hoc simulation of a chosen algorithm and
// prints its measurements, optionally with a Gantt diagram of resource
// occupancy (the visualization of the paper's Figures 1 and 4):
//
//	mrsim -alg counter-loan -n 32 -m 80 -phi 16 -rho 0.5 -dur 5s
//	mrsim -alg bouabdallah-laforest -phi 8 -gantt -m 10 -n 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mralloc/internal/driver"
	"mralloc/internal/experiments"
	"mralloc/internal/sim"
	"mralloc/internal/trace"
	"mralloc/internal/workload"
)

func main() {
	algName := flag.String("alg", "counter-loan", "incremental | bouabdallah-laforest | counter-no-loan | counter-loan | shared-memory | maddi | manager")
	n := flag.Int("n", 32, "number of nodes N")
	m := flag.Int("m", 80, "number of resources M")
	phi := flag.Int("phi", 16, "maximum request size φ")
	rho := flag.Float64("rho", 0.5, "load ratio ρ = β/(α+γ); lower = heavier")
	dur := flag.Duration("dur", 5*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "random seed")
	proc := flag.Duration("proc", 600*time.Microsecond, "per-message processing time δ at receivers (0 disables)")
	gantt := flag.Bool("gantt", false, "print an occupancy Gantt diagram")
	width := flag.Int("width", 100, "gantt width in columns")
	flag.Parse()

	algs := map[string]experiments.Algorithm{
		"incremental":          experiments.Incremental,
		"bouabdallah-laforest": experiments.Bouabdallah,
		"counter-no-loan":      experiments.WithoutLoan,
		"counter-loan":         experiments.WithLoan,
		"shared-memory":        experiments.SharedMem,
		"maddi":                experiments.Maddi,
		"manager":              experiments.Manager,
	}
	a, ok := algs[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mrsim: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	rec := trace.NewRecorder(*m)
	cfg := driver.Config{
		Workload: workload.Config{
			N: *n, M: *m, Phi: *phi,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      *rho,
			Seed:     *seed,
		},
		Processing: sim.Time(*proc),
		Warmup:     sim.Time(*dur) / 10,
		Horizon:    sim.Time(*dur),
	}
	if *gantt {
		cfg.TraceGrant = rec.Grant
	}
	res, err := driver.Run(cfg, experiments.Factory(a))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("algorithm        %s\n", a)
	fmt.Printf("N=%d M=%d φ=%d ρ=%.2f duration=%v seed=%d\n", *n, *m, *phi, *rho, *dur, *seed)
	fmt.Printf("use rate         %.2f%%\n", 100*res.UseRate)
	fmt.Printf("waiting time     %.2f ms (σ %.2f, min %.2f, max %.2f, %d samples)\n",
		res.Waiting.Mean, res.Waiting.StdDev, res.Waiting.Min, res.Waiting.Max, res.Waiting.Count)
	fmt.Printf("grants           %d (%d requests still pending at cut-off)\n", res.Grants, res.Ungranted)
	fmt.Printf("messages         %v\n", res.Messages)
	fmt.Printf("msgs per CS      %.2f\n", res.MsgPerGrant)
	fmt.Printf("simulator events %d\n", res.Events)
	if *gantt {
		from := cfg.Warmup
		until := from + (cfg.Horizon-cfg.Warmup)/4 // a readable quarter
		fmt.Println()
		fmt.Print(rec.Gantt(from, until, *width))
	}
}
