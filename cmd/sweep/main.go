// Command sweep runs the extension and ablation experiments of
// DESIGN.md:
//
//	sweep -exp threshold   # E1: loan threshold (the paper's future work)
//	sweep -exp cloud       # E2: two-zone hierarchical topology
//	sweep -exp markfn      # A1: choice of the scheduling function A
//	sweep -exp opts        # A2: §4.2.2/§4.6 optimization toggles
//	sweep -exp msgs        # message complexity incl. the broadcast baseline
//	sweep -exp fairness    # Jain fairness of per-site service
//	sweep -exp hotspot     # Zipf-skewed resource popularity
//	sweep -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"mralloc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: threshold cloud markfn opts msgs fairness hotspot all")
	scale := flag.String("scale", "std", "simulation scale: quick std full")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	sc, ok := map[string]experiments.Scale{
		"quick": experiments.Quick,
		"std":   experiments.Std,
		"full":  experiments.Full,
	}[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	type entry struct {
		name string
		run  func(experiments.Scale) (experiments.Table, error)
	}
	entries := []entry{
		{"threshold", experiments.ThresholdSweep},
		{"cloud", experiments.CloudExperiment},
		{"markfn", experiments.MarkSweep},
		{"opts", experiments.OptsSweep},
		{"msgs", experiments.MessageComplexity},
		{"fairness", experiments.FairnessSweep},
		{"hotspot", experiments.HotspotSweep},
	}
	ran := 0
	for _, e := range entries {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		tab, err := e.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab.String())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
