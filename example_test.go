package mralloc_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"mralloc"
)

// ExampleSimulate runs the paper's algorithm on a small deterministic
// workload and prints its headline metrics.
func ExampleSimulate() {
	rep, err := mralloc.Simulate(mralloc.SimConfig{
		Algorithm:      mralloc.CounterLoan,
		Nodes:          8,
		Resources:      16,
		MaxRequestSize: 4,
		Rho:            1,
		Duration:       2 * time.Second,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grants > 100: %v\n", rep.Grants > 100)
	fmt.Printf("use rate in (0,1): %v\n", rep.UseRate > 0 && rep.UseRate < 1)
	fmt.Printf("deadlock-free waits: %v\n", rep.WaitMean >= 0)
	// Output:
	// grants > 100: true
	// use rate in (0,1): true
	// deadlock-free waits: true
}

// ExampleSimulate_comparison pits the paper's algorithm against the
// global-lock baseline on an identical workload.
func ExampleSimulate_comparison() {
	run := func(a mralloc.Algorithm) mralloc.Report {
		rep, err := mralloc.Simulate(mralloc.SimConfig{
			Algorithm:      a,
			MaxRequestSize: 8,
			Rho:            0.1,
			Duration:       2 * time.Second,
			Seed:           5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	counter := run(mralloc.CounterLoan)
	lock := run(mralloc.BouabdallahLaforest)
	fmt.Printf("counter beats global lock on use rate: %v\n", counter.UseRate > lock.UseRate)
	fmt.Printf("counter beats global lock on waiting:  %v\n", counter.WaitMean < lock.WaitMean)
	// Output:
	// counter beats global lock on use rate: true
	// counter beats global lock on waiting:  true
}

// ExampleNewCluster shows the in-process lock manager: deadlock-free
// exclusive access to overlapping resource sets.
func ExampleNewCluster() {
	cluster, err := mralloc.NewCluster(mralloc.ClusterConfig{
		Nodes:     3,
		Resources: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx := context.Background()
	release, err := cluster.Acquire(ctx, 1, 2, 5) // node 1 locks {2,5}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 1 holds resources 2 and 5")
	release()

	release2, err := cluster.Acquire(ctx, 2, 5, 6) // overlapping set
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 holds resources 5 and 6")
	release2()
	// Output:
	// node 1 holds resources 2 and 5
	// node 2 holds resources 5 and 6
}
