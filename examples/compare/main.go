// Compare: a side-by-side shoot-out of every algorithm through the
// public simulation API — the quickest way to see the paper's headline
// result on your own parameters.
//
//	go run ./examples/compare
//	go run ./examples/compare -phi 4 -rho 1
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mralloc"
)

func main() {
	phi := flag.Int("phi", 16, "maximum request size φ")
	rho := flag.Float64("rho", 0.1, "load ratio ρ (lower = heavier)")
	dur := flag.Duration("dur", 3*time.Second, "simulated duration")
	flag.Parse()

	algorithms := []mralloc.Algorithm{
		mralloc.Incremental,
		mralloc.BouabdallahLaforest,
		mralloc.CounterNoLoan,
		mralloc.CounterLoan,
		mralloc.SharedMemory,
	}

	fmt.Printf("N=32 M=80 φ=%d ρ=%.2f, %v simulated (identical workload per row)\n\n", *phi, *rho, *dur)
	fmt.Printf("%-22s %9s %12s %10s %10s\n", "algorithm", "use rate", "wait ±σ", "grants", "msgs/CS")
	fmt.Println("--------------------------------------------------------------------")
	for _, a := range algorithms {
		rep, err := mralloc.Simulate(mralloc.SimConfig{
			Algorithm:      a,
			MaxRequestSize: *phi,
			Rho:            *rho,
			Duration:       *dur,
			Seed:           42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.1f%% %6.0f±%-4.0fms %10d %10.1f\n",
			a, 100*rep.UseRate,
			float64(rep.WaitMean.Microseconds())/1000,
			float64(rep.WaitStdDev.Microseconds())/1000,
			rep.Grants, rep.MsgPerGrant)
	}
	fmt.Println()
	fmt.Println("Expected shape (paper §5): the counter algorithms beat the global")
	fmt.Println("lock on both metrics; shared memory bounds everyone from above.")
}
