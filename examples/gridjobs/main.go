// Grid job co-allocation: the scenario that motivates the paper's
// introduction. A computing grid has heterogeneous resources — compute
// slots, licenses, scratch volumes, and one shared staging link. Jobs
// need exclusive access to a *set* of them at once (AND-synchronization):
// a render job needs a slot plus a license, an ingest job needs a slot
// plus the staging link, and so on. Conflict patterns are unknown in
// advance, which is exactly the drinking-philosophers regime the
// algorithm targets.
//
// The example runs a small job mix on the live cluster and prints a
// per-job timeline plus the protocol cost.
//
//	go run ./examples/gridjobs
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"mralloc"
)

// The grid's resource universe: dense identifiers with human names.
const (
	slot0 = iota // compute slots
	slot1
	slot2
	slot3
	licenseA // solver license
	licenseB
	scratch0 // scratch volumes
	scratch1
	staging // the single staging link
	nRes
)

var resourceName = map[int]string{
	slot0: "slot0", slot1: "slot1", slot2: "slot2", slot3: "slot3",
	licenseA: "licA", licenseB: "licB",
	scratch0: "scr0", scratch1: "scr1",
	staging: "staging",
}

type job struct {
	name  string
	owner int   // submitting frontend node
	needs []int // resources to co-allocate
	work  time.Duration
}

func main() {
	cluster, err := mralloc.NewCluster(mralloc.ClusterConfig{
		Nodes:     4, // four scheduler frontends
		Resources: nRes,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	jobs := []job{
		{"render-1", 0, []int{slot0, licenseA}, 8 * time.Millisecond},
		{"render-2", 1, []int{slot1, licenseA}, 8 * time.Millisecond},
		{"ingest-1", 2, []int{slot2, staging, scratch0}, 6 * time.Millisecond},
		{"ingest-2", 3, []int{slot3, staging, scratch1}, 6 * time.Millisecond},
		{"solver-1", 0, []int{slot2, licenseB}, 10 * time.Millisecond},
		{"solver-2", 1, []int{slot3, licenseB}, 10 * time.Millisecond},
		{"archive", 2, []int{scratch0, scratch1, staging}, 5 * time.Millisecond},
		{"probe", 3, []int{slot0}, 2 * time.Millisecond},
	}

	type event struct {
		job       string
		granted   time.Duration
		released  time.Duration
		resources []int
	}
	start := time.Now()
	var mu sync.Mutex
	var timeline []event

	// Frontends submit their jobs sequentially; different frontends run
	// concurrently — conflicts only where resource sets overlap.
	byOwner := map[int][]job{}
	for _, j := range jobs {
		byOwner[j.owner] = append(byOwner[j.owner], j)
	}
	var wg sync.WaitGroup
	for owner, list := range byOwner {
		owner, list := owner, list
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range list {
				release, err := cluster.Acquire(context.Background(), owner, j.needs...)
				if err != nil {
					log.Printf("%s: %v", j.name, err)
					return
				}
				g := time.Since(start)
				time.Sleep(j.work)
				r := time.Since(start)
				release()
				mu.Lock()
				timeline = append(timeline, event{j.name, g, r, j.needs})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sort.Slice(timeline, func(i, k int) bool { return timeline[i].granted < timeline[k].granted })
	fmt.Println("job       granted  released  resources")
	fmt.Println("---------------------------------------------")
	for _, e := range timeline {
		names := make([]string, len(e.resources))
		for i, r := range e.resources {
			names[i] = resourceName[r]
		}
		fmt.Printf("%-9s %7.1fms %8.1fms  %v\n", e.job,
			float64(e.granted.Microseconds())/1000,
			float64(e.released.Microseconds())/1000, names)
	}

	var total int64
	for _, n := range cluster.Stats() {
		total += n
	}
	fmt.Printf("\n%d jobs co-allocated with %d protocol messages, no global lock.\n",
		len(jobs), total)
}
