// Quickstart: an in-process multi-resource lock manager.
//
// Four workers share eight resources. Each worker repeatedly locks a
// random pair — possibly overlapping other workers' pairs — does some
// "work", and releases. The algorithm guarantees exclusive access and
// freedom from deadlock with no global lock and no prior knowledge of
// which workers will conflict.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mralloc"
)

func main() {
	cluster, err := mralloc.NewCluster(mralloc.ClusterConfig{
		Nodes:     4,
		Resources: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var mu sync.Mutex // guards fmt output only
	var wg sync.WaitGroup
	for worker := 0; worker < cluster.N(); worker++ {
		worker := worker
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for round := 0; round < 5; round++ {
				a := rng.Intn(cluster.M())
				b := (a + 1 + rng.Intn(cluster.M()-1)) % cluster.M()

				release, err := cluster.Acquire(context.Background(), worker, a, b)
				if err != nil {
					log.Printf("worker %d: %v", worker, err)
					return
				}
				mu.Lock()
				fmt.Printf("worker %d holds {r%d, r%d} (round %d)\n", worker, a, b, round)
				mu.Unlock()
				time.Sleep(2 * time.Millisecond) // the critical section
				release()
			}
		}()
	}
	wg.Wait()

	fmt.Println("\nprotocol traffic:")
	for kind, n := range cluster.Stats() {
		fmt.Printf("  %-14s %d\n", kind, n)
	}
}
