// Gantt: regenerates the intuition of the paper's Figure 1 — how the
// global lock and static scheduling waste resource time — by running
// the same workload under Bouabdallah–Laforest, the counter algorithm
// without loans, and with loans, and rendering each run's resource
// occupancy as an ASCII Gantt diagram (busy cells show the holding
// site; dots are idle time).
//
//	go run ./examples/gantt
package main

import (
	"fmt"
	"log"

	"mralloc/internal/driver"
	"mralloc/internal/experiments"
	"mralloc/internal/sim"
	"mralloc/internal/trace"
	"mralloc/internal/workload"
)

func main() {
	const (
		n, m  = 6, 5 // the paper's Figure 1 uses five resources
		phi   = 3
		width = 96
	)
	for _, a := range []experiments.Algorithm{
		experiments.Bouabdallah,
		experiments.WithoutLoan,
		experiments.WithLoan,
	} {
		rec := trace.NewRecorder(m)
		cfg := driver.Config{
			Workload: workload.Config{
				N: n, M: m, Phi: phi,
				AlphaMin: 5 * sim.Millisecond,
				AlphaMax: 35 * sim.Millisecond,
				Gamma:    600 * sim.Microsecond,
				Rho:      0.1,
				Seed:     4,
			},
			Processing: 600 * sim.Microsecond,
			Warmup:     50 * sim.Millisecond,
			Horizon:    450 * sim.Millisecond,
			TraceGrant: rec.Grant,
		}
		res, err := driver.Run(cfg, experiments.Factory(a))
		if err != nil {
			log.Fatal(err)
		}
		from, until := cfg.Warmup, cfg.Horizon
		fmt.Printf("=== %s — use rate %.1f%% ===\n", a, 100*rec.UseRate(from, until))
		fmt.Print(rec.Gantt(from, until, width))
		fmt.Printf("(waiting %.1f ms avg over %d CS)\n\n", res.Waiting.Mean, res.Grants)
	}
	fmt.Println("Read it like the paper's Figure 1: fewer dots = better use")
	fmt.Println("of the five resources; the global lock leaves the most idle")
	fmt.Println("time, dynamic scheduling (loans) fills gaps between conflicts.")
}
