// Cloudzones: the experiment the paper's conclusion proposes as future
// work — running the algorithms over "a hierarchical physical topology
// such as Clouds". Two zones of 16 nodes each; messages inside a zone
// take 0.1 ms, messages across zones take 5 ms. The global control
// token of Bouabdallah–Laforest crosses the expensive inter-zone links
// on nearly every request; the counter algorithm only pays them when
// two zones genuinely conflict on a resource. The workload is zoned the
// way cloud workloads are: 90% of requests touch only home-zone
// resources.
//
//	go run ./examples/cloudzones
package main

import (
	"fmt"
	"log"

	"mralloc/internal/driver"
	"mralloc/internal/experiments"
	"mralloc/internal/network"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func main() {
	const n, m, phi = 32, 80, 8
	lat := network.Hierarchical{
		Zone:   network.TwoZones(n),
		Local:  network.Constant{D: 100 * sim.Microsecond},
		Remote: network.Constant{D: 5 * sim.Millisecond},
	}
	fmt.Println("Two-zone cloud, 16+16 nodes, γ_local=0.1ms γ_remote=5ms, φ=8, 90% local, high load")
	fmt.Println()
	fmt.Printf("%-22s %10s %12s %12s\n", "algorithm", "use rate", "wait (ms)", "msgs/CS")
	fmt.Println("------------------------------------------------------------")
	for _, a := range []experiments.Algorithm{
		experiments.Bouabdallah,
		experiments.WithoutLoan,
		experiments.WithLoan,
	} {
		cfg := driver.Config{
			Workload: workload.Config{
				N: n, M: m, Phi: phi,
				AlphaMin:  5 * sim.Millisecond,
				AlphaMax:  35 * sim.Millisecond,
				Gamma:     600 * sim.Microsecond, // only used for β
				Rho:       0.1,
				Zones:     2,
				LocalBias: 0.9,
				Seed:      2,
			},
			Latency:    lat,
			Processing: 600 * sim.Microsecond,
			Warmup:     500 * sim.Millisecond,
			Horizon:    5 * sim.Second,
		}
		res, err := driver.Run(cfg, experiments.Factory(a))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9.1f%% %12.1f %12.1f\n",
			a, 100*res.UseRate, res.Waiting.Mean, res.MsgPerGrant)
	}
	fmt.Println()
	fmt.Println("The counter algorithms keep their advantage when crossing zones")
	fmt.Println("is expensive: no control token commutes between the two sites.")
}
