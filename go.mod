module mralloc

go 1.24
