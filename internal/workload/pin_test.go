package workload

import (
	"testing"

	"mralloc/internal/sim"
)

// TestPinnedDraws pins the exact scenario draw for fixed (Config, site)
// pairs. This is the reproducibility guard PR 1 lacked: an optimization
// of sampler internals (draw count, algorithm, iteration order) once
// shifted every simulated workload silently. With resource selection on
// per-request substreams, only a deliberate workload change may alter
// these values — if this test fails, either revert the accidental
// stream change or update the goldens and say so loudly in the PR,
// because every recorded experiment output shifts with them.
func TestPinnedDraws(t *testing.T) {
	type draw struct {
		size int
		set  string
	}
	check := func(name string, cfg Config, site int, want []draw) {
		t.Helper()
		g := NewGenerator(cfg, site)
		for i, w := range want {
			r := g.Next()
			if r.Size != w.size || r.Resources.String() != w.set {
				t.Errorf("%s: request %d = (%d, %s), want (%d, %s)",
					name, i, r.Size, r.Resources, w.size, w.set)
			}
		}
	}

	check("uniform", base(), 0, []draw{
		{15, "{9,13,15,20,27,28,36,37,53,56,57,58,62,63,74}"},
		{2, "{17,34}"},
		{7, "{1,10,21,43,55,58,66}"},
		{8, "{18,35,43,47,50,51,53,78}"},
		{6, "{14,15,21,49,53,75}"},
		{4, "{5,20,22,56}"},
	})

	zoned := base()
	zoned.Zones = 2
	zoned.LocalBias = 0.5
	check("zoned", zoned, 17, []draw{
		{14, "{40,41,47,48,56,60,61,62,63,65,67,68,72,79}"},
		{7, "{5,13,23,31,34,45,47}"},
		{8, "{5,11,43,45,65,66,72,78}"},
		{6, "{46,51,61,71,75,76}"},
		{8, "{42,43,47,51,58,67,75,76}"},
		{16, "{7,8,9,29,40,41,43,48,54,60,61,63,67,71,75,77}"},
	})

	skewed := base()
	skewed.Skew = 1.2
	skewed.Phi = 6
	check("skewed", skewed, 3, []draw{
		{5, "{0,3,52,55,64}"},
		{4, "{0,3,16,30}"},
		{2, "{4,47}"},
		{5, "{1,3,4,8,14}"},
		{6, "{0,1,13,30,48,56}"},
		{3, "{0,1,35}"},
	})
}

// TestZonedCoinIndependentOfSampling proves the mechanism behind the
// pin. The zone-locality coin consumes exactly one draw per request
// from its own stream; resource sampling runs on per-request
// substreams. The test reconstructs the coin stream independently (the
// sim.Stream labels are part of the reproducibility contract) and
// checks the generator agrees with it for widely different request
// sizes: under the pre-fix sharing, the sampler's size-dependent draw
// consumption desynchronized the coin within a handful of requests,
// making requests the coin declared zone-local draw globally.
func TestZonedCoinIndependentOfSampling(t *testing.T) {
	for _, phi := range []int{2, 16, 40} {
		cfg := base()
		cfg.Zones = 2
		cfg.LocalBias = 0.5
		cfg.Phi = phi
		const site = 5 // zone 0: home block is resources 0..39
		block := cfg.M / cfg.Zones
		coin := sim.Stream(cfg.Seed, "wl/pick/5")
		g := NewGenerator(cfg, site)
		for i := 0; i < 200; i++ {
			wantLocal := coin.Float64() < cfg.LocalBias
			r := g.Next()
			if !wantLocal {
				continue
			}
			for _, id := range r.Resources.Members() {
				if int(id) >= block {
					t.Fatalf("φ=%d request %d: coin said zone-local but drew resource %d (coin stream shifted by sampler internals)",
						phi, i, id)
				}
			}
		}
	}
}
