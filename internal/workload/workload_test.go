package workload

import (
	"testing"
	"testing/quick"

	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

func base() Config {
	return Config{
		N: 32, M: 80, Phi: 16,
		AlphaMin: 5 * sim.Millisecond,
		AlphaMax: 35 * sim.Millisecond,
		Gamma:    600 * sim.Microsecond,
		Rho:      5,
		Seed:     1,
	}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.Phi = 0 },
		func(c *Config) { c.Phi = c.M + 1 },
		func(c *Config) { c.AlphaMin = 0 },
		func(c *Config) { c.AlphaMax = c.AlphaMin - 1 },
		func(c *Config) { c.Rho = -1 },
	}
	for i, mut := range bad {
		c := base()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAlphaInterpolation(t *testing.T) {
	c := base()
	if got := c.Alpha(1); got != 5*sim.Millisecond {
		t.Errorf("Alpha(1) = %v", got)
	}
	// The scale is global in x: only an M-sized request costs AlphaMax.
	if got := c.Alpha(c.M); got != 35*sim.Millisecond {
		t.Errorf("Alpha(M) = %v", got)
	}
	if c.Alpha(4) >= c.Alpha(12) {
		t.Error("Alpha not increasing in x")
	}
	// φ does not change the per-x duration, only which x occur.
	c2 := base()
	c2.Phi = 4
	if c2.Alpha(3) != c.Alpha(3) {
		t.Error("Alpha must not depend on φ")
	}
	if got := (Config{M: 1, Phi: 1, AlphaMin: 7 * sim.Millisecond, AlphaMax: 9 * sim.Millisecond}).Alpha(1); got != 7*sim.Millisecond {
		t.Errorf("Alpha at M=1 = %v, want AlphaMin", got)
	}
}

func TestBetaFromRho(t *testing.T) {
	c := base()
	// ᾱ = 5ms + 30ms·(8.5-1)/79, γ = 0.6ms, ρ = 5.
	span := 30 * float64(sim.Millisecond)
	wantAlpha := 5*sim.Millisecond + sim.Time(span*7.5/79)
	if got := c.MeanAlpha(); got != wantAlpha {
		t.Errorf("MeanAlpha = %v, want %v", got, wantAlpha)
	}
	want := sim.Time(5 * float64(wantAlpha+600*sim.Microsecond))
	if got := c.BetaMean(); got != want {
		t.Errorf("BetaMean = %v, want %v", got, want)
	}
	c.Rho = 0
	if c.BetaMean() != 0 {
		t.Error("ρ=0 should mean zero think time (saturation)")
	}
}

func TestGeneratorBoundsAndConsistency(t *testing.T) {
	c := base()
	g := NewGenerator(c, 3)
	for i := 0; i < 500; i++ {
		r := g.Next()
		if r.Size < 1 || r.Size > c.Phi {
			t.Fatalf("size %d outside [1,%d]", r.Size, c.Phi)
		}
		if r.Resources.Len() != r.Size {
			t.Fatalf("set size %d != declared size %d", r.Resources.Len(), r.Size)
		}
		if r.CS != c.Alpha(r.Size) {
			t.Fatalf("CS %v != Alpha(%d) = %v", r.CS, r.Size, c.Alpha(r.Size))
		}
	}
}

func TestGeneratorDeterminismAndSiteIndependence(t *testing.T) {
	c := base()
	a1, a2 := NewGenerator(c, 0), NewGenerator(c, 0)
	b := NewGenerator(c, 1)
	sameAB := 0
	for i := 0; i < 50; i++ {
		r1, r2, rb := a1.Next(), a2.Next(), b.Next()
		if !r1.Resources.Equal(r2.Resources) || r1.Size != r2.Size {
			t.Fatal("same site not deterministic")
		}
		if r1.Resources.Equal(rb.Resources) {
			sameAB++
		}
	}
	if sameAB > 5 {
		t.Errorf("sites 0 and 1 drew the same request %d/50 times", sameAB)
	}
}

func TestSizeDistributionUniform(t *testing.T) {
	c := base()
	c.Phi = 4
	g := NewGenerator(c, 9)
	counts := make([]int, c.Phi+1)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[g.Next().Size]++
	}
	for x := 1; x <= c.Phi; x++ {
		f := float64(counts[x]) / n
		if f < 0.22 || f > 0.28 {
			t.Errorf("P(x=%d) = %.3f, want ≈0.25", x, f)
		}
	}
}

func TestThinkMean(t *testing.T) {
	c := base()
	g := NewGenerator(c, 5)
	var sum sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Think()
	}
	ratio := float64(sum) / float64(n) / float64(c.BetaMean())
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("think mean ratio = %.3f, want ≈1", ratio)
	}
}

// Property: for any valid (φ, seed), generated requests always fit the
// universe and respect declared size.
func TestGeneratorProperty(t *testing.T) {
	prop := func(phiRaw uint8, seed int64, site uint8) bool {
		c := base()
		c.Phi = 1 + int(phiRaw)%c.M
		c.Seed = seed
		g := NewGenerator(c, int(site))
		for i := 0; i < 20; i++ {
			r := g.Next()
			if r.Size < 1 || r.Size > c.Phi || r.Resources.Len() != r.Size {
				return false
			}
			if r.CS < c.AlphaMin || r.CS > c.AlphaMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZonedWorkloadValidation(t *testing.T) {
	c := base()
	c.Zones = 2
	c.LocalBias = 0.9
	if err := c.Validate(); err != nil {
		t.Fatalf("valid zoned config rejected: %v", err)
	}
	c.Zones = 3 // does not divide N=32
	if err := c.Validate(); err == nil {
		t.Fatal("indivisible zones accepted")
	}
	c = base()
	c.Zones = 2
	c.LocalBias = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("bias > 1 accepted")
	}
}

func TestZonedRequestsStayLocal(t *testing.T) {
	c := base()
	c.Zones = 2
	c.LocalBias = 1 // every request fully local
	for _, site := range []int{0, 15, 16, 31} {
		g := NewGenerator(c, site)
		zone := site / (c.N / c.Zones)
		lo := zone * (c.M / c.Zones)
		hi := lo + c.M/c.Zones
		for i := 0; i < 200; i++ {
			r := g.Next()
			for _, id := range r.Resources.Members() {
				if int(id) < lo || int(id) >= hi {
					t.Fatalf("site %d (zone %d) drew resource %d outside [%d,%d)", site, zone, id, lo, hi)
				}
			}
			if r.Size > c.M/c.Zones {
				t.Fatalf("size %d exceeds zone block", r.Size)
			}
		}
	}
}

func TestZonedBiasMixes(t *testing.T) {
	c := base()
	c.Zones = 2
	c.LocalBias = 0.5
	c.Phi = 8
	g := NewGenerator(c, 0) // zone 0: resources 0..39
	crossing := 0
	const n = 2000
	for i := 0; i < n; i++ {
		r := g.Next()
		for _, id := range r.Resources.Members() {
			if int(id) >= 40 {
				crossing++
				break
			}
		}
	}
	// Half the requests are global draws; most of those with x̄=4.5
	// cross the boundary. Expect a clearly mixed stream.
	if crossing < n/8 || crossing > n*7/8 {
		t.Fatalf("crossing requests = %d/%d, expected a mixed stream", crossing, n)
	}
}

func TestUnzonedIgnoresBiasFields(t *testing.T) {
	a := NewGenerator(base(), 3)
	czoned := base()
	czoned.Zones = 1 // zoning off
	czoned.LocalBias = 0.9
	b := NewGenerator(czoned, 3)
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if !ra.Resources.Equal(rb.Resources) {
			t.Fatal("Zones=1 must behave exactly like Zones=0")
		}
	}
}

func TestSkewValidation(t *testing.T) {
	c := base()
	c.Skew = 1
	if err := c.Validate(); err != nil {
		t.Fatalf("valid skewed config rejected: %v", err)
	}
	c.Skew = -0.5
	if err := c.Validate(); err == nil {
		t.Fatal("negative skew accepted")
	}
	c = base()
	c.Skew = 1
	c.Zones = 2
	if err := c.Validate(); err == nil {
		t.Fatal("skew + zones accepted")
	}
}

// TestSkewedSamplingShape: with Zipf skew, low resource ids must be
// drawn far more often than high ones, sizes stay exact, and members
// stay distinct (the Set dedups by construction; sizes prove it).
func TestSkewedSamplingShape(t *testing.T) {
	c := base()
	c.Skew = 1.2
	c.Phi = 8
	g := NewGenerator(c, 4)
	counts := make([]int, c.M)
	const n = 4000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Resources.Len() != r.Size || r.Size < 1 || r.Size > c.Phi {
			t.Fatalf("bad request: size=%d len=%d", r.Size, r.Resources.Len())
		}
		r.Resources.ForEach(func(id resource.ID) { counts[id]++ })
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	tail := counts[c.M-4] + counts[c.M-3] + counts[c.M-2] + counts[c.M-1]
	if head < 4*tail {
		t.Fatalf("skew invisible: head 4 = %d, tail 4 = %d", head, tail)
	}
}

// TestSkewZeroIsUniform: Skew = 0 must take the exact uniform path.
func TestSkewZeroIsUniform(t *testing.T) {
	a := NewGenerator(base(), 2)
	cs := base()
	cs.Skew = 0
	b := NewGenerator(cs, 2)
	for i := 0; i < 30; i++ {
		if !a.Next().Resources.Equal(b.Next().Resources) {
			t.Fatal("Skew=0 changed the uniform stream")
		}
	}
}

// TestSkewedFullWidth: requesting x = M under skew must return every
// resource exactly once.
func TestSkewedFullWidth(t *testing.T) {
	c := base()
	c.M = 12
	c.Phi = 12
	c.Skew = 1
	g := NewGenerator(c, 0)
	for i := 0; i < 50; i++ {
		r := g.Next()
		if r.Resources.Len() != r.Size {
			t.Fatalf("size %d set %d", r.Size, r.Resources.Len())
		}
	}
}
