// Package workload generates the synthetic request streams of the
// paper's evaluation (§5.1).
//
// Each site alternates think time and critical sections. A new request
// chooses a size x uniformly from [1, φ], then x distinct resources
// uniformly from the M available. The critical-section duration grows
// with x ("a request requiring a lot of resources is more likely to
// have a longer critical section execution time"): α(x) interpolates
// linearly from AlphaMin to AlphaMax as x goes from 1 to φ. Think time
// β is exponential with mean Rho·(ᾱ+γ), which realizes the paper's
// load ratio ρ = β/(α+γ).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// Config describes one experiment's workload.
type Config struct {
	N   int // number of sites
	M   int // number of resources
	Phi int // maximum request size φ (1..M)

	AlphaMin sim.Time // CS duration at x = 1
	AlphaMax sim.Time // CS duration at x = φ
	Gamma    sim.Time // one-way network latency (for ρ conversion)
	Rho      float64  // load ratio ρ = β/(α+γ); lower = heavier load

	// Zones, when > 1, splits both sites and resources into that many
	// equal contiguous zones and gives requests locality: with
	// probability LocalBias a request draws all its resources from the
	// issuing site's home zone, otherwise uniformly from everywhere.
	// This is the workload of the hierarchical-topology experiment
	// (extension E2): cloud jobs mostly touch local resources.
	Zones     int
	LocalBias float64

	// Skew, when positive, biases resource popularity: resource r is
	// drawn with weight (r+1)^(-Skew), a Zipf-like profile making low
	// identifiers hot spots. Skew 0 is the paper's uniform choice; the
	// hot-spot experiment (extension E5) uses ~1. Mutually exclusive
	// with Zones > 1.
	Skew float64

	Seed int64
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("workload: N = %d, need > 0", c.N)
	case c.M <= 0:
		return fmt.Errorf("workload: M = %d, need > 0", c.M)
	case c.Phi < 1 || c.Phi > c.M:
		return fmt.Errorf("workload: φ = %d outside [1, M=%d]", c.Phi, c.M)
	case c.AlphaMin <= 0 || c.AlphaMax < c.AlphaMin:
		return fmt.Errorf("workload: need 0 < AlphaMin ≤ AlphaMax, got [%v, %v]", c.AlphaMin, c.AlphaMax)
	case c.Rho < 0:
		return fmt.Errorf("workload: ρ = %v, need ≥ 0", c.Rho)
	case c.Zones < 0 || (c.Zones > 1 && (c.M%c.Zones != 0 || c.N%c.Zones != 0)):
		return fmt.Errorf("workload: %d zones must divide N=%d and M=%d", c.Zones, c.N, c.M)
	case c.LocalBias < 0 || c.LocalBias > 1:
		return fmt.Errorf("workload: LocalBias = %v outside [0,1]", c.LocalBias)
	case c.Skew < 0:
		return fmt.Errorf("workload: Skew = %v, need ≥ 0", c.Skew)
	case c.Skew > 0 && c.Zones > 1:
		return fmt.Errorf("workload: Skew and Zones are mutually exclusive")
	}
	return nil
}

// Alpha is the critical-section duration of a request of size x. The
// scale is global — x = 1 costs AlphaMin, x = M costs AlphaMax — so a
// small-φ experiment has genuinely short critical sections, exactly the
// regime where the paper's global-lock comparison bites ("a request
// requiring a lot of resources is more likely to have a longer critical
// section execution time", §5.1).
func (c Config) Alpha(x int) sim.Time {
	if c.M == 1 {
		return c.AlphaMin
	}
	span := float64(c.AlphaMax - c.AlphaMin)
	return c.AlphaMin + sim.Time(span*float64(x-1)/float64(c.M-1))
}

// MeanAlpha is the expected CS duration over the size distribution:
// x is uniform on 1..φ and α is affine in x, so E[α] = α((1+φ)/2).
func (c Config) MeanAlpha() sim.Time {
	if c.M == 1 {
		return c.AlphaMin
	}
	span := float64(c.AlphaMax - c.AlphaMin)
	meanX := float64(1+c.Phi) / 2
	return c.AlphaMin + sim.Time(span*(meanX-1)/float64(c.M-1))
}

// BetaMean is the mean think time implied by ρ: β = ρ·(ᾱ+γ).
func (c Config) BetaMean() sim.Time {
	return sim.Time(c.Rho * float64(c.MeanAlpha()+c.Gamma))
}

// Request is one generated critical-section request.
type Request struct {
	Resources resource.Set
	Size      int
	CS        sim.Time // critical-section duration α(x)
}

// Generator produces one site's request stream deterministically.
//
// Reproducibility contract: the scenario drawn for a given (Config,
// site) is pinned by TestPinnedDraws and must never shift under
// internal refactors. Sizes, think times and the zone-locality coin
// each consume exactly one draw per request from their own streams;
// resource selection — whose internal draw count depends on the
// sampling algorithm — runs on a fresh per-request substream seeded by
// one draw from sampleSeeds, so optimizing a sampler's internals (e.g.
// the PR-1 Floyd change) cannot shift any later draw of the scenario.
type Generator struct {
	cfg     Config
	zone    int       // home zone of the site (0 when zoning is off)
	weights []float64 // per-resource popularity weights (skewed mode)
	sizes   *rand.Rand
	picks   *rand.Rand // zone-locality coin: one draw per zoned request
	think   *rand.Rand
	// sampleSeeds yields one seed per request; the resource sampler
	// runs on a private substream built from it.
	sampleSeeds *rand.Rand
}

// NewGenerator builds the stream for one site. Distinct sites get
// distinct independent streams derived from the run seed.
func NewGenerator(cfg Config, site int) *Generator {
	return NewSessionGenerator(cfg, site, 0)
}

// NewSessionGenerator builds the stream for one session of a site —
// the multiplexed-sessions experiments run several independent request
// cycles per site. Session 0 is stream-for-stream identical to
// NewGenerator(cfg, site), so single-session scenarios (and their
// pinned draws) are untouched by the serve layer; higher sessions get
// their own independent substreams. Zone locality follows the site,
// not the session: a site's sessions share its home zone.
func NewSessionGenerator(cfg Config, site, session int) *Generator {
	key := fmt.Sprintf("%d", site)
	if session > 0 {
		key = fmt.Sprintf("%d.s%d", site, session)
	}
	g := &Generator{
		cfg:         cfg,
		sizes:       sim.Stream(cfg.Seed, "wl/size/"+key),
		picks:       sim.Stream(cfg.Seed, "wl/pick/"+key),
		think:       sim.Stream(cfg.Seed, "wl/think/"+key),
		sampleSeeds: sim.Stream(cfg.Seed, "wl/sample/"+key),
	}
	if cfg.Zones > 1 {
		g.zone = site / (cfg.N / cfg.Zones)
	}
	if cfg.Skew > 0 {
		g.weights = make([]float64, cfg.M)
		for r := range g.weights {
			g.weights[r] = math.Pow(float64(r+1), -cfg.Skew)
		}
	}
	return g
}

// sampleSkewed draws x distinct resources with probability proportional
// to the Zipf weights, using the Efraimidis–Spirakis one-pass weighted
// reservoir: each resource gets key u^(1/w); the x largest keys win.
func (g *Generator) sampleSkewed(rng *rand.Rand, x int) resource.Set {
	type kr struct {
		key float64
		r   resource.ID
	}
	top := make([]kr, 0, x) // kept sorted ascending by key
	for r := 0; r < g.cfg.M; r++ {
		k := math.Pow(rng.Float64(), 1/g.weights[r])
		switch {
		case len(top) < x:
			// Insert at the end, bubble left into place.
			top = append(top, kr{k, resource.ID(r)})
			for i := len(top) - 1; i > 0 && top[i].key < top[i-1].key; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		case k > top[0].key:
			// Evict the minimum, bubble the newcomer right into place.
			top[0] = kr{k, resource.ID(r)}
			for i := 0; i+1 < len(top) && top[i].key > top[i+1].key; i++ {
				top[i], top[i+1] = top[i+1], top[i]
			}
		}
	}
	s := resource.NewSet(g.cfg.M)
	for _, e := range top {
		s.Add(e.r)
	}
	return s
}

// Next draws the site's next request. The resource sampler runs on its
// own single-use substream (see the Generator comment), so its internal
// draw count cannot leak into the rest of the scenario.
func (g *Generator) Next() Request {
	x := 1 + g.sizes.Intn(g.cfg.Phi)
	smp := rand.New(rand.NewSource(g.sampleSeeds.Int63()))
	if g.weights != nil {
		return Request{Resources: g.sampleSkewed(smp, x), Size: x, CS: g.cfg.Alpha(x)}
	}
	if g.cfg.Zones > 1 && g.picks.Float64() < g.cfg.LocalBias {
		// A zone-local request: resources from the home block only.
		block := g.cfg.M / g.cfg.Zones
		if x > block {
			x = block
		}
		local := resource.Sample(smp, block, x)
		rs := resource.NewSet(g.cfg.M)
		local.ForEach(func(r resource.ID) {
			rs.Add(r + resource.ID(g.zone*block))
		})
		return Request{Resources: rs, Size: x, CS: g.cfg.Alpha(x)}
	}
	return Request{
		Resources: resource.Sample(smp, g.cfg.M, x),
		Size:      x,
		CS:        g.cfg.Alpha(x),
	}
}

// Think draws the pause before the site's next request (the paper's β).
func (g *Generator) Think() sim.Time {
	return sim.Exp(g.think, g.cfg.BetaMean())
}
