package incremental

import (
	"mralloc/internal/naimitrehel"
	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// Wire codec for the incremental algorithm's wrapped Naimi–Tréhel
// messages. The token payload is always nil here (the per-resource
// mutexes carry no embedder state), so only the instance tag and the
// two Msg fields cross the wire.

func init() {
	wire.Register("Inc.Request", encWireMsg, decWireMsg)
	wire.Register("Inc.Token", encWireMsg, decWireMsg)
	wire.RegisterSamples(
		wireMsg{Inst: 3, M: naimitrehel.Msg{Type: naimitrehel.MsgRequest, Requester: 2}},
		wireMsg{Inst: 0, M: naimitrehel.Msg{Type: naimitrehel.MsgToken}},
	)
}

func encWireMsg(e *wire.Enc, m network.Message) {
	w := m.(wireMsg)
	e.Varint(int64(w.Inst))
	e.Uvarint(uint64(w.M.Type))
	e.Node(w.M.Requester)
}

func decWireMsg(d *wire.Dec) network.Message {
	var w wireMsg
	w.Inst = d.Res()
	ty := d.Uvarint()
	if ty > uint64(naimitrehel.MsgToken) {
		d.Fail("naimitrehel message type %d out of range", ty)
		return w
	}
	w.M.Type = naimitrehel.MsgType(ty)
	w.M.Requester = d.Site()
	return w
}
