package incremental

import (
	"testing"
	"testing/quick"

	"mralloc/internal/driver"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func cfg(seed int64) driver.Config {
	return driver.Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 6,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     seed,
		},
		Warmup:  50 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

// TestSafetyAndLiveness runs the full workload under the invariant
// monitor (which panics on any violation) and in drain mode (which
// verifies every request completes — the liveness property).
func TestSafetyAndLiveness(t *testing.T) {
	res, err := driver.Run(cfg(1), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 {
		t.Fatalf("only %d grants", res.Grants)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d requests starved", res.Ungranted)
	}
}

// TestManySeeds explores different interleavings; any deadlock would
// surface as a drain-mode liveness violation (panic).
func TestManySeeds(t *testing.T) {
	prop := func(seed int64) bool {
		c := cfg(seed)
		c.Horizon = 500 * sim.Millisecond
		res, err := driver.Run(c, NewFactory())
		return err == nil && res.Ungranted == 0 && res.Grants > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleResourceDegeneratesToMutex confirms φ=1 behaves like plain
// Naimi–Tréhel: every CS uses exactly one resource and all complete.
func TestSingleResourceDegeneratesToMutex(t *testing.T) {
	c := cfg(3)
	c.Workload.Phi = 1
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants == 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestMessagesAreTaggedKinds checks traffic is classified for the stats
// tables.
func TestMessagesAreTaggedKinds(t *testing.T) {
	res, err := driver.Run(cfg(5), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages.ByKind["Inc.Request"] == 0 || res.Messages.ByKind["Inc.Token"] == 0 {
		t.Fatalf("message kinds = %v", res.Messages)
	}
}

// TestDominoEffectVisible compares the incremental algorithm against an
// idealized zero-latency run of itself: under contention with large
// requests, waiting time inflates — the domino effect. We only assert
// the run completes and waiting is positive; the magnitude comparison
// against other algorithms lives in internal/experiments.
func TestDominoEffectVisible(t *testing.T) {
	c := cfg(7)
	c.Workload.Phi = 12
	c.Workload.Rho = 0.5
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Waiting.Mean <= 0 {
		t.Fatalf("waiting = %+v", res.Waiting)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := driver.Run(cfg(11), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.Run(cfg(11), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.UseRate != b.UseRate || a.Messages.Total != b.Messages.Total {
		t.Fatal("same seed diverged")
	}
}
