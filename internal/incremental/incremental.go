// Package incremental implements the paper's first comparator (§5):
// one Naimi–Tréhel mutual exclusion instance per resource, with each
// request acquiring its resources one at a time in ascending global
// resource order. The total order makes deadlock impossible (no cycle
// in the waits-for graph can respect a total order), but the approach
// suffers the domino effect the paper describes: a process sits on
// already-acquired resources, keeping them idle, while it waits in line
// for the next one.
package incremental

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/naimitrehel"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// wireMsg tags a Naimi–Tréhel message with its resource instance.
type wireMsg struct {
	Inst resource.ID
	M    naimitrehel.Msg
}

// Kind implements network.Message.
func (w wireMsg) Kind() string {
	if w.M.Type == naimitrehel.MsgRequest {
		return "Inc.Request"
	}
	return "Inc.Token"
}

// Node is one site of the incremental algorithm.
type Node struct {
	env   alg.Env
	insts []*naimitrehel.Instance

	todo []resource.ID // resources still to acquire, ascending
	held []resource.ID // resources acquired for the current CS
	inCS bool
}

// NewFactory returns the factory for driver.Run. Site 0 is the elected
// initial holder of every resource token.
func NewFactory() alg.Factory {
	return func(n, m int) []alg.Node {
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{}
		}
		return nodes
	}
}

// Attach implements alg.Node, building the per-resource mutex endpoints.
func (nd *Node) Attach(env alg.Env) {
	nd.env = env
	nd.insts = make([]*naimitrehel.Instance, env.M())
	for r := 0; r < env.M(); r++ {
		r := resource.ID(r)
		send := func(to network.NodeID, m naimitrehel.Msg) {
			env.Send(to, wireMsg{Inst: r, M: m})
		}
		nd.insts[r] = naimitrehel.New(env.ID(), 0, nil, send, func(any) { nd.acquired(r) })
	}
}

// Request implements alg.Node: lock resources in ascending order, one
// at a time (the incremental family's defining discipline).
func (nd *Node) Request(rs resource.Set) {
	if len(nd.todo) != 0 || nd.inCS {
		panic(fmt.Sprintf("incremental: s%d requested while busy", nd.env.ID()))
	}
	nd.todo = rs.Members()
	nd.held = nd.held[:0]
	nd.next()
}

// next requests the smallest outstanding resource, or enters the CS.
func (nd *Node) next() {
	if len(nd.todo) == 0 {
		nd.inCS = true
		nd.env.Granted()
		return
	}
	nd.insts[nd.todo[0]].Request()
}

// acquired is the per-instance grant callback.
func (nd *Node) acquired(r resource.ID) {
	if len(nd.todo) == 0 || nd.todo[0] != r {
		panic(fmt.Sprintf("incremental: s%d acquired %d out of order (todo %v)", nd.env.ID(), r, nd.todo))
	}
	nd.held = append(nd.held, r)
	nd.todo = nd.todo[1:]
	nd.next()
}

// Release implements alg.Node, freeing every held mutex.
func (nd *Node) Release() {
	if !nd.inCS {
		panic(fmt.Sprintf("incremental: s%d released outside CS", nd.env.ID()))
	}
	nd.inCS = false
	for _, r := range nd.held {
		nd.insts[r].Release(nil)
	}
	nd.held = nd.held[:0]
}

// Deliver implements alg.Node, demultiplexing to the right instance.
func (nd *Node) Deliver(_ network.NodeID, m network.Message) {
	w := m.(wireMsg)
	nd.insts[w.Inst].Deliver(w.M)
}
