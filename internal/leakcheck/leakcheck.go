// Package leakcheck is a test helper asserting that a component's
// shutdown terminates every goroutine it started. The live runtime's
// Close contract — queued and outstanding Acquires fail promptly, loop
// goroutines exit, no background waiter lingers — is exactly the kind
// of property that silently regresses without this check.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count. Call the returned
// function after shutting the component down (defer works): it fails
// the test unless the count returns to the baseline within a grace
// period — goroutines legitimately take a moment to unwind after
// Close, so the check polls instead of sampling once.
//
// Use it in tests that do not run in parallel: a concurrent test's
// goroutines would show up as a false leak.
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		n := 0
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at baseline, %d after shutdown\n%s", before, n, buf)
	}
}
