package bouabdallah

import (
	"testing"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// The mustYield inversion. A site h that re-registers while holding a
// token the control token already promised to an earlier registrant w
// (Last[r] = w, w's INQUIRE still in flight) sets mustYield[r] and
// must NOT count r as satisfied: w precedes h in r's chain, so h has
// to yield to w's INQUIRE and re-acquire through its own. Entering the
// critical section on a mustYield'd token lets w's INQUIRE pull the
// token out from under a running CS — two sites end up inside the CS
// on one resource.
//
// The race needs w's direct INQUIRE (w→h) to arrive after the control
// token reached h through a third site (w→z→h): impossible under
// uniform per-link latency (one hop beats two), which is why neither
// the simulation battery nor symmetric-delay fabrics ever caught it —
// the adaptive flush delay was the first asymmetric-delay fabric. This
// test scripts that interleaving deterministically, FIFO per ordered
// pair respected throughout.

// scriptMsg is one in-flight message of the scripted network.
type scriptMsg struct {
	from, to network.NodeID
	m        network.Message
}

// scriptNet delivers messages by hand, preserving FIFO per ordered
// pair: deliver(to) always hands over the oldest queued message per
// origin chosen, and hold lets the script keep one message in flight.
type scriptNet struct {
	t     *testing.T
	nodes []alg.Node
	queue []scriptMsg
	inCS  []bool // per node, toggled by Granted/Release bookkeeping
}

type scriptEnv struct {
	net  *scriptNet
	id   network.NodeID
	n, m int
}

func (e *scriptEnv) ID() network.NodeID { return e.id }
func (e *scriptEnv) N() int             { return e.n }
func (e *scriptEnv) M() int             { return e.m }
func (e *scriptEnv) Now() sim.Time      { return 0 }
func (e *scriptEnv) Send(to network.NodeID, m network.Message) {
	e.net.queue = append(e.net.queue, scriptMsg{from: e.id, to: to, m: m})
}
func (e *scriptEnv) Granted() { e.net.inCS[e.id] = true }

// deliverNext delivers the oldest queued message matching keep==false.
// keep lets the script delay one specific message (a slow link); all
// other traffic flows in send order, so FIFO per pair holds.
func (s *scriptNet) deliverWhere(pred func(scriptMsg) bool) bool {
	for i, msg := range s.queue {
		if !pred(msg) {
			continue
		}
		// FIFO per ordered pair: nothing older on the same pair may
		// still be queued.
		for _, prev := range s.queue[:i] {
			if prev.from == msg.from && prev.to == msg.to {
				s.t.Fatalf("script would reorder %v→%v traffic", msg.from, msg.to)
			}
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.nodes[msg.to].Deliver(msg.from, msg.m)
		return true
	}
	return false
}

// drain delivers everything queued except messages matching hold.
func (s *scriptNet) drain(hold func(scriptMsg) bool) {
	for s.deliverWhere(func(m scriptMsg) bool { return hold == nil || !hold(m) }) {
	}
}

func isInquire(m scriptMsg) bool { _, ok := m.m.(inquireMsg); return ok }

func TestMustYieldTokenNotUsableUntilYielded(t *testing.T) {
	const n, m = 3, 2
	const h, z, w = 0, 1, 2 // h re-registers; z relays the CT; w precedes h
	nodes := NewFactory()(n, m)
	net := &scriptNet{t: t, nodes: nodes, inCS: make([]bool, n)}
	for i, nd := range nodes {
		nd.Attach(&scriptEnv{net: net, id: network.NodeID(i), n: n, m: m})
	}
	rOnly := resource.FromIDs(m, 0)

	// h acquires and releases r: the resource token now lives at h,
	// outside the control token, with Last[r]=h.
	nodes[h].Request(rOnly.Clone())
	net.drain(nil)
	if !net.inCS[h] {
		t.Fatal("setup: h never entered its first CS")
	}
	net.inCS[h] = false
	nodes[h].Release()
	net.drain(nil)

	// w registers for r: takes the CT (h→w via NT), records itself as
	// Last[r], and sends its INQUIRE to h — which we hold in flight
	// (the slow link).
	nodes[w].Request(rOnly.Clone())
	net.drain(isInquire)
	if got := len(net.queue); got != 1 {
		t.Fatalf("after w's registration, %d messages in flight, want just w's INQUIRE", got)
	}

	// z registers for the other resource: the CT travels w→z and z is
	// served from it directly.
	nodes[z].Request(resource.FromIDs(m, 1))
	net.drain(isInquire)
	if !net.inCS[z] {
		t.Fatal("z did not enter on the uncontended resource")
	}

	// h re-registers for r: the CT arrives z→h (two fast hops beat w's
	// one slow one), h sees Last[r]=w and still holds r — the mustYield
	// case. h must NOT be granted: w precedes it in r's chain.
	nodes[h].Request(rOnly.Clone())
	net.drain(isInquire)
	if net.inCS[h] {
		t.Fatal("h entered its CS on a token already promised to w (mustYield inversion)")
	}

	// w's INQUIRE finally lands: h yields r to w; w enters, h waits.
	net.drain(nil)
	if !net.inCS[w] {
		t.Fatal("w never entered after its INQUIRE was answered")
	}
	if net.inCS[h] {
		t.Fatal("h and w are both inside the CS on r")
	}

	// w releases; the token flows back along h's own INQUIRE and h
	// finally enters.
	net.inCS[w] = false
	nodes[w].Release()
	net.drain(nil)
	if !net.inCS[h] {
		t.Fatal("h starved after yielding to w")
	}
}
