package bouabdallah

import (
	"testing"
	"testing/quick"

	"mralloc/internal/driver"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func cfg(seed int64) driver.Config {
	return driver.Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 6,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     seed,
		},
		Warmup:  50 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

// TestSafetyAndLiveness exercises the full protocol under the invariant
// monitor (panics on violation) with drain-mode liveness checking.
func TestSafetyAndLiveness(t *testing.T) {
	res, err := driver.Run(cfg(1), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 {
		t.Fatalf("only %d grants", res.Grants)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d requests starved", res.Ungranted)
	}
}

// TestManySeeds explores interleavings; the mustYield inversion case in
// particular only shows up under specific timings, so breadth matters.
func TestManySeeds(t *testing.T) {
	prop := func(seed int64) bool {
		c := cfg(seed)
		c.Horizon = 500 * sim.Millisecond
		res, err := driver.Run(c, NewFactory())
		return err == nil && res.Ungranted == 0 && res.Grants > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHighContentionSmallPool squeezes many nodes onto few resources,
// maximizing token reuse, INQUIRE chains, and the yield inversion.
func TestHighContentionSmallPool(t *testing.T) {
	c := cfg(2)
	c.Workload.M = 4
	c.Workload.Phi = 3
	c.Workload.Rho = 0.2
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants == 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestRepeatedResourceReuse: φ = M with few resources forces every
// request to conflict with every other, so tokens cycle through the
// whole population — the static-scheduling worst case.
func TestRepeatedResourceReuse(t *testing.T) {
	c := cfg(3)
	c.Workload.M = 3
	c.Workload.Phi = 3
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d requests starved", res.Ungranted)
	}
}

// TestMessageKindsPresent checks every wire kind shows up in stats: the
// control-token circulation, the INQUIRE chains, and token transfers.
func TestMessageKindsPresent(t *testing.T) {
	res, err := driver.Run(cfg(4), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"BL.CTRequest", "BL.CTToken", "BL.Inquire", "BL.ResToken"} {
		if res.Messages.ByKind[k] == 0 {
			t.Errorf("no %s messages observed: %v", k, res.Messages)
		}
	}
}

// TestEveryRequestPaysTheControlToken verifies the defining cost of the
// algorithm: even fully disjoint requests circulate the control token,
// so CT traffic grows with the number of grants.
func TestEveryRequestPaysTheControlToken(t *testing.T) {
	c := cfg(5)
	c.Workload.Phi = 1 // minimal conflicts
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	ctMsgs := res.Messages.ByKind["BL.CTRequest"] + res.Messages.ByKind["BL.CTToken"]
	if ctMsgs < int64(res.Grants) {
		t.Fatalf("CT messages %d < grants %d — control token not serializing", ctMsgs, res.Grants)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := driver.Run(cfg(6), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.Run(cfg(6), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.Messages.Total != b.Messages.Total || a.UseRate != b.UseRate {
		t.Fatal("same seed diverged")
	}
}

func TestControlTokenInitialState(t *testing.T) {
	ct := NewControlToken(5)
	for r := 0; r < 5; r++ {
		if !ct.HasToken[r] {
			t.Fatalf("resource %d should start in the control token", r)
		}
	}
}
