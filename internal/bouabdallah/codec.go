package bouabdallah

import (
	"mralloc/internal/naimitrehel"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/wire"
)

// Wire codecs for the three Bouabdallah–Laforest message kinds. The
// control token rides the Naimi–Tréhel token payload, so ctWire's two
// Kind faces (request/token) share one codec and the token face
// serializes the full per-resource HasToken/Last vector.

func init() {
	wire.Register("BL.CTRequest", encCTWire, decCTWire)
	wire.Register("BL.CTToken", encCTWire, decCTWire)
	wire.Register("BL.Inquire",
		func(e *wire.Enc, m network.Message) { e.Varint(int64(m.(inquireMsg).R)) },
		func(d *wire.Dec) network.Message { return inquireMsg{R: decResID(d)} })
	wire.Register("BL.ResToken",
		func(e *wire.Enc, m network.Message) { e.Varint(int64(m.(resTokenMsg).R)) },
		func(d *wire.Dec) network.Message { return resTokenMsg{R: decResID(d)} })

	ct := NewControlToken(6)
	ct.HasToken[1] = false
	ct.Last[1] = 3
	ct.HasToken[4] = false
	ct.Last[4] = 0
	wire.RegisterSamples(
		ctWire{M: naimitrehel.Msg{Type: naimitrehel.MsgRequest, Requester: 5}},
		ctWire{M: naimitrehel.Msg{Type: naimitrehel.MsgToken, Payload: ct}},
		inquireMsg{R: 7},
		resTokenMsg{R: 2},
	)
}

func decResID(d *wire.Dec) resource.ID { return d.Res() }

func encCTWire(e *wire.Enc, m network.Message) {
	w := m.(ctWire)
	e.Uvarint(uint64(w.M.Type))
	e.Node(w.M.Requester)
	ct, ok := w.M.Payload.(*ControlToken)
	e.Bool(ok)
	if !ok {
		return
	}
	e.Uvarint(uint64(len(ct.HasToken)))
	for r := range ct.HasToken {
		e.Bool(ct.HasToken[r])
		e.Node(ct.Last[r])
	}
}

func decCTWire(d *wire.Dec) network.Message {
	var w ctWire
	ty := d.Uvarint()
	if ty > uint64(naimitrehel.MsgToken) {
		d.Fail("naimitrehel message type %d out of range", ty)
		return w
	}
	w.M.Type = naimitrehel.MsgType(ty)
	w.M.Requester = d.Site()
	if !d.Bool() || d.Err() != nil {
		return w
	}
	n := d.Count()
	if d.Err() != nil {
		return w
	}
	// The control token carries one entry per resource; node code
	// indexes it by resource id, so under shape validation the length
	// must be exactly M.
	if _, m := d.Shape(); m > 0 && n != m {
		d.Fail("control token of %d entries in a cluster of %d resources", n, m)
		return w
	}
	if !d.Charge(n * 9) { // one bool + one NodeID per resource
		return w
	}
	ct := &ControlToken{
		HasToken: make([]bool, n),
		Last:     make([]network.NodeID, n),
	}
	for r := 0; r < n; r++ {
		ct.HasToken[r] = d.Bool()
		ct.Last[r] = d.Node()
	}
	w.M.Payload = ct
	return w
}
