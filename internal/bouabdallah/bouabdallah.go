// Package bouabdallah implements the Bouabdallah–Laforest token-based
// dynamic resource allocation algorithm (Operating Systems Review 34(3),
// 2000), the closest related work and the main comparator of the paper's
// evaluation (§2.2, §5).
//
// One control token, unique system-wide and managed by a Naimi–Tréhel
// mutual exclusion instance, serializes request registration. The
// control token carries one entry per resource: either the resource
// token itself or the identity of the resource's latest requester. A
// site that acquires the control token atomically registers for all the
// resources it needs — taking the tokens present in the control token
// and sending an INQUIRE to the latest requester of each absent one —
// then releases the control token immediately. Because registration is
// atomic, the per-resource waiting chains are prefix-consistent with the
// control-token acquisition order and no cycle can form (deadlock
// freedom); the price is that every request, conflicting or not,
// synchronizes on the control token, and scheduling is static: a request
// can never overtake an earlier-registered one.
//
// One subtlety absent from the original paper's prose deserves a note:
// a site can hold a resource token while the control token names another
// site p as latest requester (p registered after this site's previous
// critical section but its INQUIRE is still in flight). When the holder
// itself re-registers for that resource it must yield the held token to
// p's incoming INQUIRE — p precedes it in the chain — and queue behind p
// via its own INQUIRE. The mustYield flag implements exactly that.
package bouabdallah

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/naimitrehel"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// ControlToken is the payload riding the Naimi–Tréhel token: per
// resource, either the resource token itself (HasToken) or the latest
// registered requester (Last).
type ControlToken struct {
	HasToken []bool
	Last     []network.NodeID
}

// NewControlToken builds the initial control token: every resource
// token starts inside it.
func NewControlToken(m int) *ControlToken {
	ct := &ControlToken{HasToken: make([]bool, m), Last: make([]network.NodeID, m)}
	for r := 0; r < m; r++ {
		ct.HasToken[r] = true
		ct.Last[r] = network.None
	}
	return ct
}

// ctWire carries Naimi–Tréhel traffic for the control token.
type ctWire struct{ M naimitrehel.Msg }

// Kind implements network.Message.
func (w ctWire) Kind() string {
	if w.M.Type == naimitrehel.MsgRequest {
		return "BL.CTRequest"
	}
	return "BL.CTToken"
}

// inquireMsg asks the latest requester of r to forward the resource
// token once it is done with it.
type inquireMsg struct{ R resource.ID }

// Kind implements network.Message.
func (inquireMsg) Kind() string { return "BL.Inquire" }

// resTokenMsg transfers the resource token of r.
type resTokenMsg struct{ R resource.ID }

// Kind implements network.Message.
func (resTokenMsg) Kind() string { return "BL.ResToken" }

type state uint8

const (
	idle       state = iota
	waitCT           // waiting for the control token
	collecting       // registered; waiting for resource tokens
	inCS
)

// Node is one site of the Bouabdallah–Laforest algorithm.
type Node struct {
	env alg.Env
	nt  *naimitrehel.Instance

	st      state
	want    resource.Set // resources of the current request
	holding resource.Set // resource tokens present at this site

	// nextHolder[r] is the site whose INQUIRE for r was deferred until
	// our release; mustYield[r] marks a held token promised to an
	// INQUIRE that has not arrived yet (see the package comment).
	nextHolder []network.NodeID
	mustYield  []bool
}

// NewFactory returns the factory for driver.Run. Site 0 initially holds
// the control token with every resource token inside it.
func NewFactory() alg.Factory {
	return func(n, m int) []alg.Node {
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{}
		}
		return nodes
	}
}

// Attach implements alg.Node.
func (nd *Node) Attach(env alg.Env) {
	nd.env = env
	m := env.M()
	nd.want = resource.NewSet(m)
	nd.holding = resource.NewSet(m)
	nd.nextHolder = make([]network.NodeID, m)
	for r := range nd.nextHolder {
		nd.nextHolder[r] = network.None
	}
	nd.mustYield = make([]bool, m)
	send := func(to network.NodeID, msg naimitrehel.Msg) { env.Send(to, ctWire{msg}) }
	nd.nt = naimitrehel.New(env.ID(), 0, NewControlToken(m), send, nd.onControlToken)
}

// Request implements alg.Node: first acquire the control token.
func (nd *Node) Request(rs resource.Set) {
	if nd.st != idle {
		panic(fmt.Sprintf("bouabdallah: s%d requested while busy", nd.env.ID()))
	}
	nd.st = waitCT
	nd.want = rs.Clone()
	nd.nt.Request()
}

// onControlToken registers the current request atomically and releases
// the control token.
func (nd *Node) onControlToken(payload any) {
	ct := payload.(*ControlToken)
	self := nd.env.ID()
	nd.want.ForEach(func(r resource.ID) {
		switch {
		case ct.HasToken[r]:
			ct.HasToken[r] = false
			nd.holding.Add(r)
		case ct.Last[r] == self:
			// Our token from a previous critical section; nobody
			// registered in between, so it is still here.
			if !nd.holding.Has(r) {
				panic(fmt.Sprintf("bouabdallah: s%d registered as last for %d but does not hold it", self, r))
			}
		default:
			prev := ct.Last[r]
			nd.env.Send(prev, inquireMsg{R: r})
			if nd.holding.Has(r) {
				// prev registered before us and is claiming the token
				// we still hold; yield to its INQUIRE and queue behind
				// it through our own INQUIRE above.
				if nd.nextHolder[r] != network.None {
					nd.sendResource(nd.nextHolder[r], r)
					nd.nextHolder[r] = network.None
				} else {
					nd.mustYield[r] = true
				}
			}
		}
		ct.Last[r] = self
	})
	nd.st = collecting
	nd.nt.Release(ct)
	nd.checkEnter()
}

func (nd *Node) sendResource(to network.NodeID, r resource.ID) {
	nd.holding.Remove(r)
	nd.env.Send(to, resTokenMsg{R: r})
}

func (nd *Node) checkEnter() {
	if nd.st != collecting || !nd.want.SubsetOf(nd.holding) {
		return
	}
	// A held token flagged mustYield is promised to an earlier
	// registrant whose INQUIRE is still in flight: that site precedes
	// us in the resource's chain, so the token is not ours to use this
	// round — we yield it when the INQUIRE lands and re-acquire through
	// the INQUIRE we sent at registration. Entering anyway would let
	// the in-flight INQUIRE pull the token out from under a running
	// critical section (two sites inside the CS on one resource). The
	// inversion needs the direct INQUIRE to lose a race against a
	// multi-hop control-token path, so only asymmetric link delays ever
	// expose it — see TestMustYieldTokenNotUsableUntilYielded.
	mustWait := false
	nd.want.ForEach(func(r resource.ID) {
		if nd.mustYield[r] {
			mustWait = true
		}
	})
	if mustWait {
		return
	}
	nd.st = inCS
	nd.env.Granted()
}

// Release implements alg.Node: forward every token with a deferred
// INQUIRE, keep the rest.
func (nd *Node) Release() {
	if nd.st != inCS {
		panic(fmt.Sprintf("bouabdallah: s%d released outside CS", nd.env.ID()))
	}
	nd.st = idle
	nd.want.ForEach(func(r resource.ID) {
		if to := nd.nextHolder[r]; to != network.None {
			nd.nextHolder[r] = network.None
			nd.sendResource(to, r)
		}
	})
	nd.want.Clear()
}

// Deliver implements alg.Node.
func (nd *Node) Deliver(from network.NodeID, m network.Message) {
	switch msg := m.(type) {
	case ctWire:
		nd.nt.Deliver(msg.M)
	case inquireMsg:
		nd.onInquire(from, msg.R)
	case resTokenMsg:
		nd.onResourceToken(msg.R)
	default:
		panic(fmt.Sprintf("bouabdallah: unexpected message %T", m))
	}
}

func (nd *Node) onInquire(from network.NodeID, r resource.ID) {
	if nd.holding.Has(r) && (nd.st == idle || !nd.want.Has(r) || nd.mustYield[r]) {
		nd.mustYield[r] = false
		nd.sendResource(from, r)
		return
	}
	if nd.nextHolder[r] != network.None {
		panic(fmt.Sprintf("bouabdallah: s%d got second INQUIRE for %d (from s%d, pending s%d)",
			nd.env.ID(), r, from, nd.nextHolder[r]))
	}
	nd.nextHolder[r] = from
}

func (nd *Node) onResourceToken(r resource.ID) {
	if nd.st != collecting || !nd.want.Has(r) || nd.holding.Has(r) {
		panic(fmt.Sprintf("bouabdallah: s%d got unexpected token %d (state %d)", nd.env.ID(), r, nd.st))
	}
	nd.holding.Add(r)
	nd.checkEnter()
}
