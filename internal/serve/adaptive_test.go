package serve

import (
	"testing"

	"mralloc/internal/sim"
)

// hugeAging disables aging promotion so ordering tests see only the
// policy's preference.
const hugeAging = sim.Time(1) << 60

func TestAdaptiveOrdersEDFWhenCalm(t *testing.T) {
	s := NewScheduler(Adaptive, hugeAging)
	a := &Item{Session: 1, Size: 1, Deadline: 300 * sim.Millisecond}
	b := &Item{Session: 2, Size: 9, Deadline: 100 * sim.Millisecond}
	c := &Item{Session: 3, Size: 5} // no deadline sorts last
	for _, it := range []*Item{a, c, b} {
		s.Push(it, 0)
	}
	want := []*Item{b, a, c}
	for i, w := range want {
		if got := s.Pop(0); got != w {
			t.Fatalf("calm pop %d = session %d, want %d", i, got.Session, w.Session)
		}
	}
	if s.Load().Pressure {
		t.Fatal("zero-wait pops entered pressure mode")
	}
}

func TestAdaptiveSwitchesToSSFUnderPressure(t *testing.T) {
	s := NewScheduler(Adaptive, hugeAging)
	target := 10 * sim.Millisecond
	s.SetTarget(target)
	if got := s.Target(); got != target {
		t.Fatalf("Target() = %v, want %v", got, target)
	}

	// One pop whose wait dwarfs the target seeds the grant-latency
	// EWMA above the pressure threshold.
	first := &Item{Session: 1, Size: 1}
	s.Push(first, 0)
	if s.Pop(100*target) != first {
		t.Fatal("lost the seeding item")
	}
	if !s.Load().Pressure {
		t.Fatal("grant latency 100× target did not enter pressure mode")
	}

	// Pressure orders shortest-set-first, deadlines ignored.
	small := &Item{Session: 2, Size: 1}
	wide := &Item{Session: 3, Size: 8, Deadline: 1} // earliest deadline, widest set
	now := 100 * target
	s.Push(wide, now)
	s.Push(small, now)
	if got := s.Pop(now); got != small {
		t.Fatalf("pressure pop = session %d, want the small request", got.Session)
	}
	if got := s.Pop(now); got != wide {
		t.Fatalf("second pressure pop = session %d, want the wide request", got.Session)
	}

	// Zero-wait pops decay the EWMA below target/8; with no sheds the
	// node calms down and goes back to deadline ordering.
	for i := 0; i < 200 && s.Load().Pressure; i++ {
		it := &Item{Session: 9, Size: 1}
		s.Push(it, now)
		s.Pop(now)
	}
	if s.Load().Pressure {
		t.Fatal("node never calmed down after 200 zero-wait pops")
	}
	d1 := &Item{Session: 4, Size: 9, Deadline: now + 1}
	d2 := &Item{Session: 5, Size: 1, Deadline: now + 2}
	s.Push(d2, now)
	s.Push(d1, now)
	if got := s.Pop(now); got != d1 {
		t.Fatalf("calm pop = session %d, want the earliest deadline", got.Session)
	}
	s.Pop(now)
}

func TestAdaptiveBoundFromLittlesLaw(t *testing.T) {
	s := NewScheduler(Adaptive, hugeAging)
	s.SetTarget(100 * sim.Millisecond)

	// No service observations yet: unbounded, never sheds.
	if s.Overloaded(1) {
		t.Fatal("shed before any service observation")
	}
	// 10ms occupancy against a 100ms target → bound 10 (first sample
	// seeds the EWMA directly).
	s.ObserveService(10 * sim.Millisecond)
	if got := s.Load().Bound; got != 10 {
		t.Fatalf("bound = %d, want 10", got)
	}
	var items []*Item
	for i := 0; i < 9; i++ {
		it := &Item{Session: uint64(i), Size: 1}
		s.Push(it, 0)
		items = append(items, it)
	}
	if s.Overloaded(1) {
		t.Fatalf("shed below the bound (depth %d)", s.Load().Depth)
	}
	it := &Item{Session: 99, Size: 1}
	s.Push(it, 0)
	items = append(items, it)
	if !s.Overloaded(1) {
		t.Fatalf("no shed at the bound (depth %d, bound %d)", s.Load().Depth, s.Load().Bound)
	}
	// Removing below the bound opens admission again.
	s.Remove(items[0])
	if s.Overloaded(1) {
		t.Fatal("shed after queue dropped below the bound")
	}

	// The bound is clamped: microscopic occupancy cannot open the
	// floodgates past maxAdmitBound, and a huge occupancy cannot close
	// the node entirely.
	s2 := NewScheduler(Adaptive, hugeAging)
	s2.SetTarget(100 * sim.Millisecond)
	s2.ObserveService(0)
	if got := s2.Load().Bound; got != 0 {
		t.Fatalf("zero occupancy bound = %d, want unbounded", got)
	}
	for i := 0; i < 100; i++ {
		s2.ObserveService(600 * sim.Second)
	}
	if got := s2.Load().Bound; got != minAdmitBound {
		t.Fatalf("huge occupancy bound = %d, want the %d floor", got, minAdmitBound)
	}
}

func TestAdaptiveWideShedsAtHalfBoundUnderPressure(t *testing.T) {
	s := NewScheduler(Adaptive, hugeAging)
	target := 10 * sim.Millisecond
	s.SetTarget(target)
	s.ObserveService(sim.Millisecond) // bound = 10

	// Seed mean size ≈ 1 and enter pressure in one pop.
	seed := &Item{Session: 1, Size: 1}
	s.Push(seed, 0)
	s.Pop(100 * target)
	if !s.Load().Pressure {
		t.Fatal("not pressured")
	}
	for i := 0; i < 5; i++ {
		s.Push(&Item{Session: uint64(i), Size: 1}, 0)
	}
	// Depth 5 = bound/2: wide requests (≥ 2× mean size) shed, narrow
	// ones are still admitted.
	if s.Overloaded(1) {
		t.Fatal("narrow request shed below the bound")
	}
	if !s.Overloaded(4) {
		t.Fatalf("wide request admitted under pressure at depth %d (bound %d, mean %.1f)",
			s.Load().Depth, s.Load().Bound, s.Load().MeanSize)
	}
}

// TestAdaptiveNoStarvationWhileShedding is the pinned overload test:
// while the self-tuned bound is shedding new arrivals and pressure
// mode prefers small requests, an admitted wide request must still be
// aging-promoted within the threshold — shedding bounds the queue, it
// must never un-admit or starve what was already accepted.
func TestAdaptiveNoStarvationWhileShedding(t *testing.T) {
	aging := 50 * sim.Millisecond
	s := NewScheduler(Adaptive, aging)
	s.SetTarget(5 * sim.Millisecond)
	s.ObserveService(sim.Millisecond) // bound = 5

	// Seed pressure mode so ordering prefers small requests before the
	// wide one arrives.
	seed := &Item{Session: 1, Size: 1}
	s.Push(seed, 0)
	start := 20 * sim.Millisecond
	if s.Pop(start) != seed || !s.Load().Pressure {
		t.Fatal("failed to seed pressure mode")
	}

	wide := &Item{Session: 1000, Size: 16}
	s.Push(wide, start)

	// A sustained overload: two small arrivals per 1ms step against one
	// admission, so the queue hits the bound and the node sheds most
	// arrivals (NoteShed feeding the denial EWMA) while pressure mode
	// prefers every small survivor over the wide request — until aging
	// promotes it.
	var widePoppedAt sim.Time = -1
	var sheds int
	step := sim.Millisecond
loop:
	for i := 1; i <= 200; i++ {
		now := start + sim.Time(i)*step
		for j := 0; j < 2; j++ {
			if s.Overloaded(1) {
				s.NoteShed()
				sheds++
			} else {
				s.Push(&Item{Session: uint64(10*i + j), Size: 1}, now)
			}
		}
		if it := s.Pop(now); it == wide {
			widePoppedAt = now - start
			break loop
		}
	}
	if widePoppedAt < 0 {
		t.Fatal("wide request never admitted: starved by the shedding node")
	}
	if widePoppedAt > aging+step {
		t.Fatalf("wide request admitted after %v, past the aging threshold %v", widePoppedAt, aging)
	}
	if widePoppedAt < aging {
		t.Fatalf("wide request admitted after %v, before the aging threshold %v — the stream never pressured it", widePoppedAt, aging)
	}
	if sheds == 0 || s.Load().ShedRate == 0 {
		t.Fatalf("test shed %d arrivals (EWMA %.3f) — not an overload scenario", sheds, s.Load().ShedRate)
	}
}

func TestFixedPoliciesIgnoreAdaptiveSurface(t *testing.T) {
	s := NewScheduler(SSF, 0)
	s.SetTarget(sim.Second)
	s.ObserveService(3600 * sim.Second)
	s.NoteShed()
	if s.Overloaded(1) {
		t.Fatal("fixed policy shed")
	}
	if got := (Load{}); s.Load() != got {
		t.Fatalf("fixed policy Load = %+v, want zero", s.Load())
	}
	if s.Target() != 0 {
		t.Fatal("fixed policy has a target")
	}
}
