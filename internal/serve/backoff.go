package serve

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Backoff schedules jittered exponential retry delays for
// ErrOverloaded denials. A shedding daemon denies a whole burst of
// arrivals at once; if they all retried after the same fixed delay
// they would land as the same burst again (a retry storm that keeps
// the node at its bound forever). Jitter decorrelates them: attempt n
// sleeps uniformly in [d/2, d] with d = min(Max, Base·2ⁿ) — "equal
// jitter", which spreads a synchronized burst over half the window
// while keeping a floor under the delay so retries do still back off.
//
// The zero value is usable: DefaultBackoffBase/Max and unlimited
// attempts (the caller's context bounds the total wait).
type Backoff struct {
	// Base is the first retry's delay ceiling (DefaultBackoffBase when
	// zero or negative).
	Base time.Duration
	// Max caps the per-attempt delay ceiling however many attempts
	// have failed (DefaultBackoffMax when zero or negative).
	Max time.Duration
	// Attempts, when positive, bounds the total number of acquisition
	// attempts (so Attempts=1 never retries). Zero or negative retries
	// until the context ends.
	Attempts int

	// rnd and sleep are test seams: a deterministic uniform source in
	// [0,1) and a recording sleeper. Nil selects math/rand and a real
	// context-aware timer sleep.
	rnd   func() float64
	sleep func(ctx context.Context, d time.Duration) error
}

const (
	// DefaultBackoffBase: the first retry lands within a couple of
	// milliseconds — a shedding node's queue drains in service-time
	// units, not seconds.
	DefaultBackoffBase = 2 * time.Millisecond
	// DefaultBackoffMax keeps a long-overloaded daemon from pushing
	// retry delays past human-noticeable latency.
	DefaultBackoffMax = 250 * time.Millisecond
)

// delay computes the jittered sleep before retry attempt (0-based
// attempt index of the retry, i.e. after attempt+1 failures).
func (b *Backoff) delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	rnd := b.rnd
	if rnd == nil {
		rnd = rand.Float64
	}
	// Equal jitter: uniform in [d/2, d].
	return d/2 + time.Duration(rnd()*float64(d/2))
}

// wait sleeps the attempt's jittered delay, returning early with the
// context's error if it ends first.
func (b *Backoff) wait(ctx context.Context, attempt int) error {
	sleep := b.sleep
	if sleep == nil {
		sleep = realSleep
	}
	return sleep(ctx, b.delay(attempt))
}

func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryOverloaded runs acquire under b's schedule: only ErrOverloaded
// denials are retried — any other error, a nil error, or the context
// ending is returned as-is.
func retryOverloaded(ctx context.Context, b *Backoff, acquire func() (func(), error)) (func(), error) {
	for attempt := 0; ; attempt++ {
		release, err := acquire()
		if err == nil || !errors.Is(err, ErrOverloaded) {
			return release, err
		}
		if b.Attempts > 0 && attempt+1 >= b.Attempts {
			return nil, err
		}
		if serr := b.wait(ctx, attempt); serr != nil {
			return nil, serr
		}
	}
}
