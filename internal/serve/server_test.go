package serve_test

import (
	"bufio"
	"errors"
	"net"

	"context"
	"fmt"
	"math/rand"
	"mralloc/internal/wire"
	"strings"
	"sync"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/leakcheck"
	"mralloc/internal/live"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/verify"
)

// startServer brings up a live cluster and a client-port server over
// it — the in-process version of what cmd/mrallocd assembles.
func startServer(t *testing.T, nodes, m int, policy serve.Policy) (*live.Cluster, *serve.Server) {
	t.Helper()
	c, err := live.New(live.Config{Nodes: nodes, Resources: m, Policy: policy}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	local := make([]int, nodes)
	for i := range local {
		local[i] = i
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Listen:    "127.0.0.1:0",
		Nodes:     nodes,
		Resources: m,
		Local:     local,
		Open:      func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
	})
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv
}

func TestClientAcquireReleaseRoundTrip(t *testing.T) {
	_, srv := startServer(t, 2, 4, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	release, err := cl.Acquire(context.Background(), 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent
	// AnyNode round-robins over hosted nodes.
	for i := 0; i < 4; i++ {
		rel, err := cl.Acquire(context.Background(), serve.AnyNode, i%4)
		if err != nil {
			t.Fatalf("AnyNode acquire %d: %v", i, err)
		}
		rel()
	}
}

func TestClientDenials(t *testing.T) {
	_, srv := startServer(t, 2, 4, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Acquire(context.Background(), 0, 99); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("out-of-range resource: %v, want denial", err)
	}
	if _, err := cl.Acquire(context.Background(), 1, 0); err != nil {
		t.Errorf("valid acquire after denial: %v", err)
	} else {
		// Held grants are fine to leak here; Close releases them.
	}
	if _, err := cl.Acquire(context.Background(), 0); err == nil {
		t.Error("empty resource set accepted")
	}
}

// TestClientCancelWithdraws: a context canceled while the request is
// queued must withdraw it server-side, leaving the resource available.
func TestClientCancelWithdraws(t *testing.T) {
	_, srv := startServer(t, 1, 1, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	release, err := cl.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Acquire(ctx, 0, 0); err == nil {
		t.Fatal("expected context error")
	}
	release()
	// The withdrawn request must not hold the resource hostage.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	rel2, err := cl.Acquire(ctx2, 0, 0)
	if err != nil {
		t.Fatalf("resource never freed after withdrawal: %v", err)
	}
	rel2()
}

// TestClientDisconnectReleases: dropping a connection must release its
// grants and withdraw its queued requests — a crashed client cannot
// strand resources.
func TestClientDisconnectReleases(t *testing.T) {
	_, srv := startServer(t, 1, 2, serve.FIFO)
	clA, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clA.Acquire(context.Background(), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	clB, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	queued := make(chan error, 1)
	go func() {
		rel, err := clB.Acquire(context.Background(), 0, 0)
		if err == nil {
			rel()
		}
		queued <- err
	}()
	time.Sleep(50 * time.Millisecond)
	clA.Close() // holds r0+r1, and takes its pending state with it
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("B's acquire after A's disconnect: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("A's grant never released after disconnect")
	}
}

// TestClientServerClose: closing the server must unwind in-flight
// client requests and leak nothing.
func TestClientServerClose(t *testing.T) {
	defer leakcheck.Check(t)()
	c, err := live.New(live.Config{Nodes: 1, Resources: 1}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := serve.NewServer(serve.ServerConfig{
		Listen: "127.0.0.1:0", Nodes: 1, Resources: 1, Local: []int{0},
		Open: func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Acquire(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := cl.Acquire(context.Background(), 0, 0)
		blocked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-blocked:
		if err == nil {
			t.Fatal("blocked acquire succeeded across server close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked acquire never unblocked on server close")
	}
	// The cluster behind the server must still be healthy.
	rel, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatalf("cluster broken after server close: %v", err)
	}
	rel()
}

// TestClientProtocolStress is the acceptance battery: ≥64 concurrent
// client sessions per node driving the cluster through the client
// wire protocol, every grant/release checked by verify.Monitor (each
// client goroutine gets a synthetic site id, so hypothesis-4 and
// safety are checked per session), zero violations and no starvation
// (every acquire completes within the generous timeout).
func TestClientProtocolStress(t *testing.T) {
	const nodes, m, perNode = 2, 8, 64
	iters := 8
	if testing.Short() {
		iters = 3
	}
	for _, policy := range []serve.Policy{serve.FIFO, serve.SSF} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			_, srv := startServer(t, nodes, m, policy)
			var monMu sync.Mutex
			start := time.Now()
			now := func() sim.Time { return sim.Time(time.Since(start)) }
			mon := verify.New(m, func(v verify.Violation) { t.Errorf("%v", v) })

			// A handful of connections, many sessions each: the wire
			// multiplexing is part of what is under test.
			const conns = 4
			clients := make([]*serve.Client, conns)
			for i := range clients {
				cl, err := serve.Dial(srv.Addr())
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				clients[i] = cl
			}

			var wg sync.WaitGroup
			total := nodes * perNode
			for s := 0; s < total; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					sid := network.NodeID(s)
					node := s % nodes
					cl := clients[s%conns]
					rng := rand.New(rand.NewSource(int64(s)*6151 + 7))
					for i := 0; i < iters; i++ {
						rs := resource.Sample(rng, m, 1+rng.Intn(3))
						ids := make([]int, 0, rs.Len())
						rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

						monMu.Lock()
						mon.Requested(sid, now())
						monMu.Unlock()

						ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
						release, err := cl.AcquireWith(ctx, node, serve.AcquireOpts{
							Resources: ids,
							Deadline:  time.Now().Add(time.Duration(1+rng.Intn(500)) * time.Millisecond),
						})
						cancel()
						if err != nil {
							t.Errorf("session %d iter %d: %v (liveness)", s, i, err)
							return
						}
						monMu.Lock()
						mon.Granted(sid, rs, now())
						monMu.Unlock()

						if d := rng.Intn(100); d > 0 {
							time.Sleep(time.Duration(d) * time.Microsecond)
						}

						monMu.Lock()
						mon.Released(sid, rs, now())
						monMu.Unlock()
						release()
					}
				}()
			}
			wg.Wait()
			monMu.Lock()
			defer monMu.Unlock()
			mon.CheckQuiescent(now())
			if got, want := mon.Grants(), total*iters; got != want {
				t.Errorf("monitor saw %d grants, want %d", got, want)
			}
		})
	}
}

// TestMaxQueueDeniesWithOverloaded: once a node's waiting requests hit
// the MaxQueue bound, further acquires must be denied immediately with
// the distinct overload code (errors.Is ErrOverloaded on the client),
// and the bound must lift again as the queue drains.
func TestMaxQueueDeniesWithOverloaded(t *testing.T) {
	const maxQueue = 2
	c, err := live.New(live.Config{Nodes: 1, Resources: 1}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := serve.NewServer(serve.ServerConfig{
		Listen: "127.0.0.1:0", Nodes: 1, Resources: 1, Local: []int{0},
		MaxQueue: maxQueue,
		Open:     func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hold the only resource so everything behind it queues.
	release, err := cl.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the admission queue to the bound.
	results := make(chan error, maxQueue)
	for i := 0; i < maxQueue; i++ {
		go func() {
			rel, err := cl.Acquire(context.Background(), 0, 0)
			if err == nil {
				rel()
			}
			results <- err
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.QueueLen(0) < maxQueue {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", srv.QueueLen(0), maxQueue)
		}
		time.Sleep(time.Millisecond)
	}
	// One more must bounce with the overload code, not queue.
	if _, err := cl.Acquire(context.Background(), 0, 0); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("over-limit acquire: %v, want ErrOverloaded", err)
	}
	// Drain: the held grant releases, the queued pair completes, and
	// the bound lifts for new work.
	release()
	for i := 0; i < maxQueue; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("queued acquire failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("queued acquire never completed")
		}
	}
	rel, err := cl.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
	rel()
}

// TestServerValidation: nonsense configurations must be rejected.
func TestServerValidation(t *testing.T) {
	open := func(int) (serve.BackendSession, error) { return nil, fmt.Errorf("unused") }
	bad := []serve.ServerConfig{
		{Listen: "127.0.0.1:0", Nodes: 0, Resources: 1, Local: []int{0}, Open: open},
		{Listen: "127.0.0.1:0", Nodes: 1, Resources: 1, Open: open},
		{Listen: "127.0.0.1:0", Nodes: 1, Resources: 1, Local: []int{3}, Open: open},
		{Listen: "127.0.0.1:0", Nodes: 1, Resources: 1, Local: []int{0}},
	}
	for i, cfg := range bad {
		if srv, err := serve.NewServer(cfg); err == nil {
			srv.Close()
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestDuplicateRequestIDKillsConnection: reusing an in-flight request
// id is a protocol violation — a deny would carry the original
// request's id and strand its eventual grant — so the server must
// drop the connection and unwind everything it held.
func TestDuplicateRequestIDKillsConnection(t *testing.T) {
	_, srv := startServer(t, 1, 2, serve.FIFO)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sendRaw := func(m network.Message) {
		payload, err := wire.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(wire.AppendFrame(nil, payload)); err != nil {
			t.Fatal(err)
		}
	}
	sendRaw(serve.ClientAcquire{Req: 7, Node: 0, Resources: []int64{0}})
	// Wait for the grant so request 7 holds resource 0. The server may
	// coalesce responses, so read through the batch-aware reader.
	fr := wire.NewFrameReader(nc, 1<<20)
	frame, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Decode(frame); err != nil {
		t.Fatal(err)
	} else if g, ok := m.(serve.ClientGrant); !ok || g.Req != 7 {
		t.Fatalf("expected grant for req 7, got %#v", m)
	}
	// Reuse the id: the connection must die...
	sendRaw(serve.ClientAcquire{Req: 7, Node: 0, Resources: []int64{1}})
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := fr.Next(); err == nil {
		t.Fatal("connection survived a duplicate request id")
	}
	// ...and the teardown must release the grant it held.
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	release, err := cl.Acquire(ctx, 0, 0)
	if err != nil {
		t.Fatalf("resource 0 stranded after the violating connection died: %v", err)
	}
	release()
}

// TestClientLearnsShape: the hello reply carries the cluster shape, so
// a client needs no out-of-band N or M.
func TestClientLearnsShape(t *testing.T) {
	_, srv := startServer(t, 3, 7, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodes, resources, err := cl.Shape(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 3 || resources != 7 {
		t.Fatalf("learned shape %d/%d, want 3/7", nodes, resources)
	}
}

// TestAcquireAllRoundTrip: one frame carries a batch of acquisitions
// spread over distinct nodes (one critical section per node); the
// combined release hands every set back.
func TestAcquireAllRoundTrip(t *testing.T) {
	_, srv := startServer(t, 3, 6, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	release, err := cl.AcquireAll(ctx, serve.AnyNode, []int{0, 1}, []int{2}, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent
	// Everything must be free again: re-acquire each set singly.
	for _, set := range [][]int{{0, 1}, {2}, {3, 4, 5}} {
		rel, err := cl.Acquire(ctx, serve.AnyNode, set...)
		if err != nil {
			t.Fatalf("set %v stranded after AcquireAll release: %v", set, err)
		}
		rel()
	}
}

// TestAcquireAllPartialDeny: a batch with one bad set is all-or-
// nothing — the good sets' grants are handed back, nothing stranded.
func TestAcquireAllPartialDeny(t *testing.T) {
	_, srv := startServer(t, 3, 4, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = cl.AcquireAll(ctx, serve.AnyNode, []int{0}, []int{99}, []int{1})
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("bad set accepted: %v", err)
	}
	// The granted sets must have been handed back.
	for _, r := range []int{0, 1} {
		rel, err := cl.Acquire(ctx, serve.AnyNode, r)
		if err != nil {
			t.Fatalf("resource %d stranded after partial deny: %v", r, err)
		}
		rel()
	}
}

// TestAcquireAllOverwideBatch: hypothesis 4 admits one critical
// section per node, so batches that cannot hold their sets on distinct
// nodes are refused — multi-set explicit-node batches before any bytes
// move, over-wide AnyNode batches by the daemon, all-or-nothing.
func TestAcquireAllOverwideBatch(t *testing.T) {
	_, srv := startServer(t, 2, 4, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.AcquireAll(ctx, 0, []int{0}, []int{1}); err == nil ||
		!strings.Contains(err.Error(), "one critical section per node") {
		t.Fatalf("multi-set explicit-node batch accepted: %v", err)
	}
	// Three sets, two hosted nodes: denied, nothing stranded.
	if _, err := cl.AcquireAll(ctx, serve.AnyNode, []int{0}, []int{1}, []int{2}); err == nil ||
		!strings.Contains(err.Error(), "hosted nodes") {
		t.Fatalf("over-wide batch accepted: %v", err)
	}
	for _, r := range []int{0, 1, 2} {
		rel, err := cl.Acquire(ctx, serve.AnyNode, r)
		if err != nil {
			t.Fatalf("resource %d stranded after over-wide deny: %v", r, err)
		}
		rel()
	}
}

// TestLegacyClientServed: a pre-negotiation client (no hello) is
// served byte-for-byte as before — granted, and never sent a control
// it could not parse.
func TestLegacyClientServed(t *testing.T) {
	_, srv := startServer(t, 1, 2, serve.FIFO)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, err := wire.Append(nil, serve.ClientAcquire{Req: 1, Node: 0, Resources: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(wire.AppendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
	fr := wire.NewFrameReader(nc, 1<<20)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	frame, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Decode(frame); err != nil {
		t.Fatal(err)
	} else if g, ok := m.(serve.ClientGrant); !ok || g.Req != 1 {
		t.Fatalf("expected grant, got %#v", m)
	}
	// The modern frame reader would silently skip a stray control; a
	// real legacy reader would die on one. Assert none arrived.
	if n := fr.SkippedControls(); n != 0 {
		t.Fatalf("legacy connection received %d stream controls", n)
	}
}

// TestClientPortRejectsBadVersion: a hello from an incompatible build
// draws a CtrlReject naming the version, then the connection dies.
func TestClientPortRejectsBadVersion(t *testing.T) {
	_, srv := startServer(t, 1, 2, serve.FIFO)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	h := wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion + 9})
	if _, err := nc.Write(wire.AppendControl(nil, wire.CtrlHello, h)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	ctl, err := wire.ReadControl(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Code != wire.CtrlReject {
		t.Fatalf("got control %d, want CtrlReject", ctl.Code)
	}
	if reason, err := wire.ParseReject(ctl.Payload); err != nil || !strings.Contains(reason, "version") {
		t.Fatalf("reject reason %q, %v", reason, err)
	}
}
