package serve

import (
	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// The client wire protocol: the message kinds external processes use
// to drive a cluster through a daemon's client port, as opposed to the
// peer protocol the nodes speak among themselves. Four kinds:
//
//	client → daemon: Client.Acquire, Client.Release
//	daemon → client: Client.Grant, Client.Deny
//
// Framing matches the peer transport (uvarint length prefix, then one
// wire-encoded message), but the streams never mix: peers connect to
// the peer port, clients to the client port.
//
// Releasing a request that has not been granted yet withdraws it —
// that is the protocol's cancellation. A client that disconnects
// implicitly withdraws/releases everything it held, so a crashed
// client cannot strand resources.
//
// Like every message that crosses a process boundary, these register
// codecs and fuzz samples in init (the PR 2 compatibility rule: field
// order is a compatibility surface, and TestSamplesCoverAllKinds fails
// any kind that skips registration).

// ClientAcquire asks the daemon to admit one acquisition.
type ClientAcquire struct {
	// Req is the client-chosen request identifier, unique among the
	// connection's in-flight requests; every response names it.
	Req uint64
	// Node targets a specific (locally hosted) protocol node;
	// network.None lets the daemon pick one round-robin.
	Node network.NodeID
	// Resources lists the resource identifiers to lock. A plain list,
	// not a bitset, so clients need not know the universe size M to
	// encode a request; the daemon validates and denies out-of-range
	// ids.
	Resources []int64
	// DeadlineMS, when positive, is the admission deadline in
	// milliseconds from the daemon's receipt — relative, because
	// client and daemon clocks need not agree. Feeds deadline-aware
	// policies; does not abort the request.
	DeadlineMS int64
}

// Kind implements network.Message.
func (ClientAcquire) Kind() string { return "Client.Acquire" }

// maxAcquireSets bounds how many sub-requests one ClientAcquireAll may
// carry; a corrupt or hostile count must not fan out without limit.
const maxAcquireSets = 1 << 10

// ClientAcquireAll asks the daemon to admit a batch of acquisitions in
// one frame — one round trip carries many acquires. Sub-request i
// behaves exactly like a ClientAcquire with request id Req+i and
// resource set Sets[i]; every response (grant or deny) names that id,
// and each sub-request is released or withdrawn independently with
// ClientRelease. The ids Req..Req+len(Sets)-1 must all be unique among
// the connection's in-flight requests.
//
// Because the protocol admits at most one critical section per node at
// a time (the paper's hypothesis 4), a batch can hold all its sets
// concurrently only when every sub-request lands on a distinct node.
// The daemon therefore denies an explicit-node batch of more than one
// set, and denies an AnyNode batch with more sets than it hosts nodes;
// an admissible AnyNode batch is spread over distinct hosted nodes and
// acquired in ascending node order, so concurrent batches cannot
// deadlock one another.
type ClientAcquireAll struct {
	// Req is the base request identifier; sub-request i answers to
	// Req+i.
	Req uint64
	// Node targets a locally hosted node for every sub-request;
	// network.None lets the daemon pick (round-robin per sub-request).
	Node network.NodeID
	// Sets lists one resource set per sub-request.
	Sets [][]int64
	// DeadlineMS applies to every sub-request (see ClientAcquire).
	DeadlineMS int64
}

// Kind implements network.Message.
func (ClientAcquireAll) Kind() string { return "Client.AcquireAll" }

// ClientGrant tells the client request Req entered its critical
// section: every requested resource is now held exclusively.
type ClientGrant struct {
	Req uint64
}

// Kind implements network.Message.
func (ClientGrant) Kind() string { return "Client.Grant" }

// ClientRelease ends (or withdraws, when not yet granted) request Req.
type ClientRelease struct {
	Req uint64
}

// Kind implements network.Message.
func (ClientRelease) Kind() string { return "Client.Release" }

// DenyCode classifies a denial so clients can react programmatically
// instead of parsing the human-readable reason.
type DenyCode uint8

const (
	// DenyGeneric covers bad arguments, backend errors, and shutdown.
	DenyGeneric DenyCode = iota
	// DenyOverloaded reports backpressure: the target node's admission
	// queue is at its configured bound (ServerConfig.MaxQueue) and the
	// daemon refuses new work rather than queueing without limit.
	// Clients see it as serve.ErrOverloaded and may retry elsewhere or
	// later.
	DenyOverloaded

	denyCodeEnd // one past the last valid code
)

// ClientDeny tells the client request Req will never be granted, with
// a machine-readable code and a human-readable reason (bad arguments,
// overload, cluster shutting down, withdrawn).
type ClientDeny struct {
	Req    uint64
	Reason string
	Code   DenyCode
}

// Kind implements network.Message.
func (ClientDeny) Kind() string { return "Client.Deny" }

func init() {
	wire.Register("Client.Acquire",
		func(e *wire.Enc, m network.Message) {
			x := m.(ClientAcquire)
			e.Uvarint(x.Req)
			e.Node(x.Node)
			e.Int64s(x.Resources)
			e.Varint(x.DeadlineMS)
		},
		func(d *wire.Dec) network.Message {
			var x ClientAcquire
			x.Req = d.Uvarint()
			x.Node = d.Node()
			x.Resources = d.Int64s()
			x.DeadlineMS = d.Varint()
			if x.DeadlineMS < 0 {
				d.Fail("negative client deadline %d", x.DeadlineMS)
			}
			return x
		})
	wire.Register("Client.AcquireAll",
		func(e *wire.Enc, m network.Message) {
			x := m.(ClientAcquireAll)
			e.Uvarint(x.Req)
			e.Node(x.Node)
			e.Uvarint(uint64(len(x.Sets)))
			for _, set := range x.Sets {
				e.Int64s(set)
			}
			e.Varint(x.DeadlineMS)
		},
		func(d *wire.Dec) network.Message {
			var x ClientAcquireAll
			x.Req = d.Uvarint()
			x.Node = d.Node()
			n := d.Uvarint()
			if n > maxAcquireSets {
				d.Fail("acquire batch of %d sets exceeds limit %d", n, maxAcquireSets)
				return x
			}
			x.Sets = make([][]int64, n)
			for i := range x.Sets {
				x.Sets[i] = d.Int64s()
			}
			x.DeadlineMS = d.Varint()
			if x.DeadlineMS < 0 {
				d.Fail("negative client deadline %d", x.DeadlineMS)
			}
			return x
		})
	wire.Register("Client.Grant",
		func(e *wire.Enc, m network.Message) {
			e.Uvarint(m.(ClientGrant).Req)
		},
		func(d *wire.Dec) network.Message {
			return ClientGrant{Req: d.Uvarint()}
		})
	wire.Register("Client.Release",
		func(e *wire.Enc, m network.Message) {
			e.Uvarint(m.(ClientRelease).Req)
		},
		func(d *wire.Dec) network.Message {
			return ClientRelease{Req: d.Uvarint()}
		})
	wire.Register("Client.Deny",
		func(e *wire.Enc, m network.Message) {
			x := m.(ClientDeny)
			e.Uvarint(x.Req)
			e.String(x.Reason)
			e.Uvarint(uint64(x.Code))
		},
		func(d *wire.Dec) network.Message {
			x := ClientDeny{Req: d.Uvarint(), Reason: d.String()}
			code := d.Uvarint()
			if code >= uint64(denyCodeEnd) {
				d.Fail("unknown deny code %d", code)
			}
			x.Code = DenyCode(code)
			return x
		})

	wire.RegisterSamples(
		ClientAcquire{Req: 1, Node: 2, Resources: []int64{0, 3, 17}, DeadlineMS: 250},
		ClientAcquire{Req: 9, Node: network.None, Resources: []int64{5}},
		ClientAcquireAll{Req: 3, Node: 1, Sets: [][]int64{{0, 2}, {5}}, DeadlineMS: 100},
		ClientAcquireAll{Req: 11, Node: network.None, Sets: [][]int64{{4}}},
		ClientAcquireAll{},
		ClientGrant{Req: 1},
		ClientRelease{Req: 1},
		ClientDeny{Req: 9, Reason: "no resource 99"},
		ClientDeny{Req: 4, Reason: "node 1 admission queue full", Code: DenyOverloaded},
		ClientDeny{},
	)
}
