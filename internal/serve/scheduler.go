// Package serve is the admission layer between many concurrent client
// sessions and the single-slot protocol state machine of one node.
//
// The paper's algorithms (hypothesis 4) admit exactly one outstanding
// request per node, so without this layer a "user" and a "protocol
// node" are the same thing and Cluster.Acquire is the ceiling on
// concurrency. The serve layer decouples them: sessions enqueue
// requests with deadlines and cancellation into a per-node Scheduler,
// and the node's event loop feeds them one at a time into the state
// machine under a pluggable policy. The same scheduler runs under the
// goroutine runtime (internal/live, wall-clock time) and the
// deterministic simulation (internal/driver, virtual time), so policy
// behaviour measured in paper-style experiments is the behaviour a
// live cluster exhibits.
//
// Starvation freedom is guaranteed by aging regardless of policy: a
// request that has waited at least the aging threshold is admitted in
// arrival order ahead of anything the policy prefers, so every request
// is admitted after a bounded number of policy-preferred admissions.
package serve

import (
	"container/heap"
	"fmt"
	"math"

	"mralloc/internal/sim"
)

// Policy names an admission ordering.
type Policy string

const (
	// FIFO admits requests in arrival order — maximal predictability,
	// no reordering.
	FIFO Policy = "fifo"
	// SSF (shortest-set-first) admits the request with the fewest
	// resources first: small requests conflict less and release
	// sooner, which lowers mean waiting at the cost of tail latency
	// for large requests (bounded by aging).
	SSF Policy = "ssf"
	// EDF (earliest-deadline-first) admits the request with the
	// nearest deadline first; requests without a deadline sort last,
	// among themselves in arrival order.
	EDF Policy = "edf"
	// Adaptive is the load-aware policy: it orders like EDF while the
	// node is calm, switches to SSF when the observed grant latency
	// crosses half the admission target (small requests drain a
	// congested queue fastest), and self-tunes an admission bound from
	// Little's law so the node sheds (DenyOverloaded) before the queue
	// passes the saturation knee. See adaptive.go.
	Adaptive Policy = "adaptive"
)

// Policies lists every admission policy, in documentation order.
func Policies() []Policy { return []Policy{FIFO, SSF, EDF, Adaptive} }

// ParsePolicy converts a flag/config string to a Policy. The empty
// string selects FIFO.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return FIFO, nil
	case FIFO, SSF, EDF, Adaptive:
		return Policy(s), nil
	}
	return "", fmt.Errorf("serve: unknown policy %q (want fifo, ssf, edf or adaptive)", s)
}

// DefaultAging is the aging threshold used when a configuration leaves
// it zero: long enough that a policy can express a preference, short
// enough that no request waits unboundedly behind a stream of
// preferred ones.
const DefaultAging = 500 * sim.Millisecond

// Item is one queued admission request. Callers fill the public
// fields, hand the item to Push, and get it back from Pop; V carries
// the runtime's per-request state (a live ticket, a simulated
// session). An item belongs to at most one scheduler at a time.
type Item struct {
	// Session identifies the submitting session, for fairness
	// accounting and diagnostics; the scheduler does not interpret it.
	Session uint64
	// Size is the number of requested resources — the SSF key.
	Size int
	// Deadline is the absolute instant the requester wants admission
	// by — the EDF key. Zero means none. The scheduler does not abort
	// late requests; deadlines order, cancellation aborts.
	Deadline sim.Time
	// Enqueued is set by Push: the admission queue arrival instant.
	Enqueued sim.Time
	// V is the caller's payload, opaque to the scheduler.
	V any

	seq   uint64 // arrival order, assigned by Push
	hi    int    // heap index; -1 when not in the heap
	state itemState
}

type itemState uint8

const (
	itemQueued itemState = iota
	itemPopped
	itemRemoved
)

// Scheduler is one node's admission queue. It is a plain data
// structure — no goroutines, no locks — driven by whichever event loop
// owns the node: the live runtime calls it inside the node's loop
// goroutine, the simulation inside the engine. Items may be re-pushed
// (the simulation reuses one Item per session) once popped or removed.
type Scheduler struct {
	policy Policy
	aging  sim.Time
	seq    uint64
	heap   policyHeap
	// ad holds the load-tracking state of the Adaptive policy; nil for
	// the fixed policies, whose Observe*/Overloaded methods are no-ops.
	ad *adaptiveState
	// fifo holds every queued item in arrival order (lazily compacted)
	// so that aged items can be promoted front-first. Each entry pins
	// the push's seq: an entry whose item has since been popped and
	// re-pushed no longer matches and is compacted as stale, so a
	// recycled Item cannot revive its old queue position.
	fifo []fifoEntry
}

// fifoEntry is one arrival-order record: the item plus the seq it was
// pushed under (stale once the item is popped, removed, or re-pushed).
type fifoEntry struct {
	it  *Item
	seq uint64
}

// stale reports whether the entry no longer describes a queued push.
func (e fifoEntry) stale() bool {
	return e.it.state != itemQueued || e.it.seq != e.seq
}

// NewScheduler builds a scheduler for one node. aging ≤ 0 selects
// DefaultAging; an unknown policy falls back to FIFO (callers validate
// with ParsePolicy).
func NewScheduler(p Policy, aging sim.Time) *Scheduler {
	if aging <= 0 {
		aging = DefaultAging
	}
	switch p {
	case FIFO, SSF, EDF:
		// Fixed policies order by themselves, forever.
	case Adaptive:
	default:
		p = FIFO
	}
	s := &Scheduler{policy: p, aging: aging}
	s.heap.mode = p
	if p == Adaptive {
		// Calm nodes order by deadline; pressure flips the mode to SSF.
		s.heap.mode = EDF
		s.ad = newAdaptiveState(DefaultAdmitTarget)
	}
	return s
}

// Policy reports the admission policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Len reports how many items are queued.
func (s *Scheduler) Len() int { return s.heap.Len() }

// Push enqueues it at instant now.
func (s *Scheduler) Push(it *Item, now sim.Time) {
	it.Enqueued = now
	it.seq = s.seq
	s.seq++
	it.state = itemQueued
	it.hi = -1
	heap.Push(&s.heap, it)
	s.fifo = append(s.fifo, fifoEntry{it: it, seq: it.seq})
	if s.ad != nil {
		s.ad.onPush(s)
	}
}

// Pop removes and returns the next item to admit at instant now, or
// nil when the queue is empty. An item that has waited at least the
// aging threshold is returned in arrival order ahead of the policy's
// preference — the starvation-freedom guarantee.
func (s *Scheduler) Pop(now sim.Time) *Item {
	// Compact stale fifo entries (popped via the heap, removed, or
	// re-pushed under a newer seq).
	for len(s.fifo) > 0 && s.fifo[0].stale() {
		s.fifo[0] = fifoEntry{}
		s.fifo = s.fifo[1:]
	}
	if len(s.fifo) == 0 {
		return nil
	}
	if oldest := s.fifo[0].it; now-oldest.Enqueued >= s.aging {
		s.fifo[0] = fifoEntry{}
		s.fifo = s.fifo[1:]
		heap.Remove(&s.heap, oldest.hi)
		oldest.state = itemPopped
		if s.ad != nil {
			s.ad.onPop(s, oldest, now)
		}
		return oldest
	}
	it := heap.Pop(&s.heap).(*Item)
	it.state = itemPopped // its fifo entry is skipped lazily
	if s.ad != nil {
		s.ad.onPop(s, it, now)
	}
	return it
}

// Remove cancels a queued item, reporting whether it was still queued
// (false once popped or already removed).
func (s *Scheduler) Remove(it *Item) bool {
	if it.state != itemQueued {
		return false
	}
	heap.Remove(&s.heap, it.hi)
	it.state = itemRemoved // its fifo entry is skipped lazily
	if s.ad != nil {
		s.ad.onDepth(s.heap.Len())
	}
	return true
}

// Drain removes and returns every queued item in arrival order — the
// shutdown path, where each must be failed distinctly.
func (s *Scheduler) Drain() []*Item {
	var out []*Item
	for _, e := range s.fifo {
		if e.it != nil && !e.stale() {
			e.it.state = itemRemoved
			e.it.hi = -1
			out = append(out, e.it)
		}
	}
	s.fifo = nil
	s.heap.items = nil
	if s.ad != nil {
		s.ad.onDepth(0)
	}
	return out
}

// policyHeap orders queued items by the current ordering mode, arrival
// order breaking ties (and being the whole key under FIFO). mode equals
// the configured policy for the fixed policies; the Adaptive policy
// flips it between EDF (calm) and SSF (pressure), re-heapifying on
// each switch.
type policyHeap struct {
	mode  Policy
	items []*Item
}

func (h *policyHeap) Len() int { return len(h.items) }

func (h *policyHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	switch h.mode {
	case SSF:
		if a.Size != b.Size {
			return a.Size < b.Size
		}
	case EDF:
		da, db := deadlineKey(a), deadlineKey(b)
		if da != db {
			return da < db
		}
	}
	return a.seq < b.seq
}

func deadlineKey(it *Item) sim.Time {
	if it.Deadline == 0 {
		return sim.Time(math.MaxInt64)
	}
	return it.Deadline
}

func (h *policyHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].hi = i
	h.items[j].hi = j
}

func (h *policyHeap) Push(x any) {
	it := x.(*Item)
	it.hi = len(h.items)
	h.items = append(h.items, it)
}

func (h *policyHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	it.hi = -1
	return it
}
