package serve

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// maxClientFrame bounds one client-port frame or batch envelope.
// Client messages are tiny (an acquire names a few resources); the cap
// only keeps a corrupt or hostile length prefix from demanding
// gigabytes.
const maxClientFrame = 1 << 20

// closeFlushTimeout bounds how long a connection teardown waits for
// its coalescing writer to drain queued responses.
const closeFlushTimeout = 2 * time.Second

// DefaultEgressBudget bounds the response bytes queued for one client
// connection. A client that stops reading its responses is shed (its
// connection closed, everything it held handed back) once the queue
// crosses the budget — the client port's half of byte-bounded
// backpressure, analogous to the peer transport's credit window but
// without the reverse-path crediting a second stream writer would
// need.
const DefaultEgressBudget = 4 << 20

// ServerConfig sizes a client-port server.
type ServerConfig struct {
	// Listen is the TCP address of the client port (":0" picks a free
	// port; Addr reports it).
	Listen string
	// Nodes and Resources are the cluster shape, used to validate
	// inbound frames and client requests.
	Nodes, Resources int
	// Shards is the number of resource shards the backing cluster runs
	// (live.Config.Shards), announced in the hello reply so a client
	// can see the namespace layout. 0 or 1 is the flat cluster and
	// announces the pre-shard hello byte-for-byte. Client requests are
	// always phrased over the global universe — the backend splits them
	// — so the count is informational to clients, but one that claims a
	// different count in its own hello is rejected.
	Shards int
	// Local lists the node ids this process hosts — the candidates
	// for requests that do not target a node.
	Local []int
	// Open opens a session on a locally hosted node; the server opens
	// one per admitted client request and closes it when the request
	// is released, denied or the connection drops.
	Open func(node int) (BackendSession, error)
	// MaxQueue, when positive, bounds how many of this port's client
	// requests may be waiting (submitted but not yet granted) on one
	// node at a time. A request that would exceed the bound is denied
	// immediately with DenyOverloaded instead of queueing without
	// limit — backpressure the client can act on. Zero means
	// unbounded (the pre-backpressure behavior).
	MaxQueue int
	// Overloaded, when non-nil, is the load-aware admission oracle
	// (live.Cluster.Overloaded for an Adaptive-policy cluster): it is
	// consulted per request on the admission fast path, and a true
	// answer sheds the request with DenyOverloaded before it queues.
	// Unlike the static MaxQueue bound it sees the node's observed
	// service time, so it sheds before the queue passes the knee. A
	// request that does not target a node is spread past shedding
	// nodes first and denied only when every hosted node sheds it.
	Overloaded func(node, size int) bool
	// NoteShed, when non-nil, is told about every oracle denial so the
	// policy's denial-rate statistics see sheds that never reach the
	// node loop (live.Cluster.NoteShed).
	NoteShed func(node int)
	// DisableCoalesce pins every response write to a single frame
	// (no batch envelopes), the pre-batching wire behavior. Benchmarks
	// use it to measure the batching win; production has no reason to.
	DisableCoalesce bool
	// FlushDelay is the response-egress micro-delay: a grant fan-out
	// burst gets FlushDelay longer to assemble into one batch envelope
	// before the flush, trading bounded response latency for fewer
	// writes. Zero (the default) flushes on wakeup. FlushDelayMax,
	// when above FlushDelay, enables the adaptive scheduler (see
	// wire.Coalescer.SetFlushAdaptive).
	FlushDelay    time.Duration
	FlushDelayMax time.Duration
	// EgressBudget bounds the response bytes queued for one client
	// connection; a client not draining them past the bound is shed
	// (connection closed, grants returned). Zero selects
	// DefaultEgressBudget; negative disables the bound (the
	// pre-backpressure behavior).
	EgressBudget int64
}

// Server is one daemon's client port: it accepts connections from
// external processes and serves any number of concurrent acquisition
// requests per connection, each one a session multiplexed onto the
// hosted nodes through the admission scheduler. The peer protocol
// (node to node) never touches this port.
//
// Responses (grants and denies) leave through a coalescing writer per
// connection: a fan-out burst — many sessions granted in one scheduler
// pass — becomes one batch envelope and one write instead of one
// syscall per response. WireStats exposes the egress counters.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	rr atomic.Uint64 // round-robin cursor over cfg.Local

	sessions atomic.Int64   // in-flight client requests, for introspection
	queued   []atomic.Int64 // per-node not-yet-granted requests (MaxQueue)

	connsMu   sync.Mutex
	conns     map[*conn]bool
	wireAccum wire.CoalescerStats // egress of connections already gone

	closeMu sync.Mutex
	closed  chan struct{}
	wg      sync.WaitGroup
}

// NewServer opens the client port. The caller owns the backend; Close
// stops accepting and unwinds every in-flight client request, but
// does not close the cluster behind Open.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Nodes < 1 || cfg.Resources < 1 {
		return nil, fmt.Errorf("serve: need ≥1 node and ≥1 resource, got %d/%d", cfg.Nodes, cfg.Resources)
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("serve: no local nodes to serve")
	}
	for _, id := range cfg.Local {
		if id < 0 || id >= cfg.Nodes {
			return nil, fmt.Errorf("serve: local node %d outside [0,%d)", id, cfg.Nodes)
		}
	}
	if cfg.Open == nil {
		return nil, fmt.Errorf("serve: nil Open")
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: negative MaxQueue %d", cfg.MaxQueue)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Listen, err)
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		queued: make([]atomic.Int64, cfg.Nodes),
		conns:  make(map[*conn]bool),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the client port's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Sessions reports how many client requests are currently in flight
// (queued, admitted, or holding a grant).
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// QueueLen reports how many of this port's requests are waiting (not
// yet granted) on node id — the quantity MaxQueue bounds.
func (s *Server) QueueLen(node int) int64 {
	if node < 0 || node >= len(s.queued) {
		return 0
	}
	return s.queued[node].Load()
}

// WireStats aggregates the egress counters of every client
// connection: writes, flushes, frames, batch envelopes, bytes, and
// the flush-size histogram.
func (s *Server) WireStats() wire.CoalescerStats {
	s.connsMu.Lock()
	total := s.wireAccum
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.connsMu.Unlock()
	for _, cn := range conns {
		total.Add(cn.co.Stats())
	}
	return total
}

// Close stops the client port: the listener closes, every connection
// drops, and every in-flight request is withdrawn or released exactly
// as if its client had disconnected. Idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	select {
	case <-s.closed:
		s.closeMu.Unlock()
		return nil
	default:
	}
	close(s.closed)
	s.closeMu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serve(c)
	}
}

// connReq is one client request's server-side state. The connection
// lock guards state transitions; the acquire goroutine holds no lock
// while blocked in Acquire.
type connReq struct {
	sess      BackendSession
	cancel    context.CancelFunc
	release   func() // set once granted
	withdrawn bool   // client released before the grant landed
}

// conn is one client connection.
type conn struct {
	s  *Server
	c  net.Conn
	co *wire.Coalescer // response egress

	mu   sync.Mutex
	reqs map[uint64]*connReq
	wg   sync.WaitGroup // acquire goroutines
}

func (s *Server) serve(nc net.Conn) {
	defer s.wg.Done()
	cn := &conn{s: s, c: nc, reqs: make(map[uint64]*connReq)}
	maxFrames := 0
	if s.cfg.DisableCoalesce {
		maxFrames = 1
	}
	// A write error marks the connection dead; the read loop notices
	// and unwinds.
	cn.co = wire.NewCoalescer(nc, maxFrames, func(error) { nc.Close() })
	if fd, fdm := s.cfg.FlushDelay, s.cfg.FlushDelayMax; fdm > fd {
		cn.co.SetFlushAdaptive(fd, fdm)
	} else if fd > 0 {
		cn.co.SetFlushDelay(fd)
	}
	s.connsMu.Lock()
	s.conns[cn] = true
	s.connsMu.Unlock()
	done := make(chan struct{})
	defer close(done)
	go func() { // unblock the pending Read when the server closes
		select {
		case <-s.closed:
			nc.Close()
		case <-done:
		}
	}()
	cn.readLoop()
	// The connection is gone: withdraw every pending request and hand
	// back every held grant, so a crashed client strands nothing.
	cn.mu.Lock()
	reqs := cn.reqs
	cn.reqs = nil
	for _, r := range reqs {
		r.withdrawn = true
		r.cancel()
		if r.release != nil {
			r.release()
			r.sess.Close()
			s.sessions.Add(-1)
		}
	}
	cn.mu.Unlock()
	cn.wg.Wait()
	// Flush whatever responses are still queued (bounded — the client
	// may be gone), fold the egress counters into the server total,
	// and drop the socket. The bounded close join backstops the write
	// deadline so a wedged client can never hang daemon teardown.
	nc.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	cn.co.CloseWithin(2 * closeFlushTimeout)
	s.connsMu.Lock()
	delete(s.conns, cn)
	s.wireAccum.Add(cn.co.Stats())
	s.connsMu.Unlock()
	nc.Close()
}

func (cn *conn) readLoop() {
	fr := wire.NewFrameReader(cn.c, maxClientFrame)
	// Negotiation: a hello before the first frame is answered with this
	// daemon's hello — protocol version, cluster shape (how a client
	// learns N and M without out-of-band config) and feature bits. A
	// legacy client that never sends one is served exactly as before,
	// and is never sent a control it could not parse: the reply below
	// is the only control this side ever writes, strictly in response.
	// Writing it raw here is safe — hello precedes every request, so
	// the response coalescer has never been touched yet.
	var frames, helloed bool
	fr.OnControl(func(code uint64, payload []byte) error {
		switch code {
		case wire.CtrlHello:
			if frames || helloed {
				return fmt.Errorf("hello mid-stream")
			}
			peer, err := wire.ParseHello(payload)
			if err != nil {
				return err
			}
			if err := cn.s.checkClient(peer); err != nil {
				reject := wire.AppendReject(nil, err.Error())
				cn.c.Write(wire.AppendControl(nil, wire.CtrlReject, reject))
				return err
			}
			mine := wire.Hello{
				Version:   wire.ProtoVersion,
				Nodes:     cn.s.cfg.Nodes,
				Resources: cn.s.cfg.Resources,
				Features:  wire.FeatWritev,
			}
			if cn.s.cfg.Shards > 1 {
				mine.Shards = cn.s.cfg.Shards
			}
			reply := wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, mine))
			if _, err := cn.c.Write(reply); err != nil {
				return fmt.Errorf("hello reply: %w", err)
			}
			helloed = true
			return nil
		default:
			return wire.ErrUnknownControl // forward compat: skip and count
		}
	})
	for {
		frame, err := fr.Next()
		if err != nil {
			return
		}
		frames = true
		m, err := wire.DecodeFor(frame, cn.s.cfg.Nodes, cn.s.cfg.Resources)
		if err != nil {
			return // malformed frame: kill the connection
		}
		switch x := m.(type) {
		case ClientAcquire:
			if !cn.handleAcquire(x) {
				return // protocol violation: kill the connection
			}
		case ClientAcquireAll:
			if !cn.handleAcquireAll(x) {
				return
			}
		case ClientRelease:
			cn.handleRelease(x.Req)
		default:
			return // a client must not send server-side kinds
		}
	}
}

// checkClient validates a client hello: the protocol version must
// match, and any cluster shape the client claims to know must agree
// with this daemon's (zero means unknown — the usual case, since
// learning the shape is what the hello reply is for).
func (s *Server) checkClient(peer wire.Hello) error {
	if peer.Version != wire.ProtoVersion {
		return fmt.Errorf("protocol version %d, want %d", peer.Version, wire.ProtoVersion)
	}
	if peer.Nodes != 0 && peer.Nodes != s.cfg.Nodes {
		return fmt.Errorf("cluster of %d nodes, this daemon serves %d", peer.Nodes, s.cfg.Nodes)
	}
	if peer.Resources != 0 && peer.Resources != s.cfg.Resources {
		return fmt.Errorf("resource universe of %d, this daemon serves %d", peer.Resources, s.cfg.Resources)
	}
	if peer.Shards != 0 {
		shards := s.cfg.Shards
		if shards == 0 {
			shards = 1
		}
		if peer.Shards != shards {
			return fmt.Errorf("%d resource shards, this daemon serves %d", peer.Shards, shards)
		}
	}
	return nil
}

// handleAcquire admits one client request, reporting false when the
// frame is a protocol violation and the connection must die. Requests
// with bad arguments are merely denied — only a reused in-flight
// request id is fatal: denying it would carry the original request's
// id, which a conforming client must treat as that request's outcome,
// stranding the real grant when it lands.
func (cn *conn) handleAcquire(x ClientAcquire) bool {
	run, ok := cn.admit(x)
	if ok && run != nil {
		cn.wg.Add(1)
		go func() {
			defer cn.wg.Done()
			run()
		}()
	}
	return ok
}

// handleAcquireAll admits a batch of acquisitions from one frame. The
// paper's admission model (hypothesis 4) runs at most one critical
// section per node at a time, so a batch can hold all its sets
// concurrently only when every sub-request lands on a distinct node:
// an explicit-node batch is limited to one set, and an AnyNode batch
// spreads over the hosted nodes and is denied outright when it has
// more sets than this daemon has nodes. Sub-requests acquire in
// ascending node order on a single goroutine — every batch takes the
// same order, so two concurrent batches cannot deadlock each other.
func (cn *conn) handleAcquireAll(x ClientAcquireAll) bool {
	k := len(x.Sets)
	denyAll := func(code DenyCode, format string, args ...any) {
		reason := fmt.Sprintf(format, args...)
		for i := 0; i < k; i++ {
			cn.send(ClientDeny{Req: x.Req + uint64(i), Reason: reason, Code: code})
		}
	}
	if k == 0 {
		cn.send(ClientDeny{Req: x.Req, Reason: "empty acquire batch"})
		return true
	}
	var nodes []int
	if x.Node == network.None {
		local := cn.s.cfg.Local
		if k > len(local) {
			denyAll(DenyGeneric,
				"batch of %d sets exceeds the %d hosted nodes (one critical section per node)",
				k, len(local))
			return true
		}
		base := int(cn.s.rr.Add(1) % uint64(len(local)))
		nodes = make([]int, k)
		for i := range nodes {
			nodes[i] = local[(base+i)%len(local)]
		}
		sort.Ints(nodes)
	} else {
		if k > 1 {
			denyAll(DenyGeneric,
				"a %d-set batch cannot target one node (one critical section per node); omit the node to spread it",
				k)
			return true
		}
		nodes = []int{int(x.Node)}
	}
	runs := make([]func(), 0, k)
	for i, set := range x.Sets {
		sub := ClientAcquire{
			Req:        x.Req + uint64(i),
			Node:       network.NodeID(nodes[i]),
			Resources:  set,
			DeadlineMS: x.DeadlineMS,
		}
		run, ok := cn.admit(sub)
		if !ok {
			return false
		}
		if run != nil {
			runs = append(runs, run)
		}
	}
	if len(runs) == 0 {
		return true
	}
	cn.wg.Add(1)
	go func() {
		defer cn.wg.Done()
		for _, run := range runs {
			run()
		}
	}()
	return true
}

// admit validates and registers one request. ok reports whether the
// connection may live on (false: protocol violation, kill it); run,
// when non-nil, performs the blocking acquisition and sends the
// response — the caller chooses the goroutine it runs on. A nil run
// with ok means the request was already answered (denied).
func (cn *conn) admit(x ClientAcquire) (run func(), ok bool) {
	deny := func(format string, args ...any) {
		cn.send(ClientDeny{Req: x.Req, Reason: fmt.Sprintf(format, args...)})
	}
	if len(x.Resources) == 0 {
		deny("empty resource set")
		return nil, true
	}
	resources := make([]int, len(x.Resources))
	for i, r := range x.Resources {
		if r < 0 || r >= int64(cn.s.cfg.Resources) {
			deny("no resource %d", r)
			return nil, true
		}
		resources[i] = int(r)
	}
	node := int(x.Node)
	if x.Node == network.None {
		local := cn.s.cfg.Local
		node = local[int(cn.s.rr.Add(1))%len(local)]
		if ol := cn.s.cfg.Overloaded; ol != nil && ol(node, len(resources)) {
			// Spread: one shedding node must not deny what another
			// hosted node could serve — advance the cursor until a node
			// accepts, or every candidate has shed (the check below
			// then denies on the last one).
			for i := 1; i < len(local); i++ {
				node = local[int(cn.s.rr.Add(1))%len(local)]
				if !ol(node, len(resources)) {
					break
				}
			}
		}
	} else if !cn.s.hostsLocally(node) {
		deny("node %d is not hosted by this daemon", node)
		return nil, true
	}
	// Load-aware shed: the adaptive bound denies before the queue
	// passes the knee, while the client can still act on it.
	if ol := cn.s.cfg.Overloaded; ol != nil && ol(node, len(resources)) {
		if ns := cn.s.cfg.NoteShed; ns != nil {
			ns(node)
		}
		cn.send(ClientDeny{
			Req:    x.Req,
			Reason: fmt.Sprintf("node %d sheds at its adaptive admission bound", node),
			Code:   DenyOverloaded,
		})
		return nil, true
	}
	// Backpressure: refuse rather than queue without bound. Increment
	// first so concurrent arrivals cannot slip past the limit together.
	if max := cn.s.cfg.MaxQueue; max > 0 {
		if cn.s.queued[node].Add(1) > int64(max) {
			cn.s.queued[node].Add(-1)
			cn.send(ClientDeny{
				Req:    x.Req,
				Reason: fmt.Sprintf("node %d admission queue full (max %d)", node, max),
				Code:   DenyOverloaded,
			})
			return nil, true
		}
	} else {
		cn.s.queued[node].Add(1)
	}
	unqueue := func() { cn.s.queued[node].Add(-1) }

	var opts AcquireOpts
	opts.Resources = resources
	if x.DeadlineMS > 0 {
		opts.Deadline = time.Now().Add(time.Duration(x.DeadlineMS) * time.Millisecond)
	}

	sess, err := cn.s.cfg.Open(node)
	if err != nil {
		unqueue()
		deny("%v", err)
		return nil, true
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &connReq{sess: sess, cancel: cancel}
	cn.mu.Lock()
	if cn.reqs == nil {
		cn.mu.Unlock()
		unqueue()
		cancel()
		sess.Close()
		return nil, false // connection already torn down
	}
	if _, dup := cn.reqs[x.Req]; dup {
		cn.mu.Unlock()
		unqueue()
		cancel()
		sess.Close()
		return nil, false // id reuse while in flight: unrecoverable ambiguity
	}
	cn.reqs[x.Req] = r
	cn.mu.Unlock()
	cn.s.sessions.Add(1)

	return func() {
		release, err := sess.Acquire(ctx, opts)
		unqueue() // granted or failed: either way no longer waiting
		cn.mu.Lock()
		if err != nil {
			withdrawn := r.withdrawn
			delete(cn.reqs, x.Req)
			cn.mu.Unlock()
			cn.s.sessions.Add(-1)
			sess.Close()
			if !withdrawn {
				deny("%v", err)
			}
			return
		}
		if r.withdrawn {
			// Released (or disconnected) before the grant landed: give
			// it straight back.
			delete(cn.reqs, x.Req)
			cn.mu.Unlock()
			cn.s.sessions.Add(-1)
			release()
			sess.Close()
			return
		}
		r.release = release
		cn.mu.Unlock()
		cn.send(ClientGrant{Req: x.Req})
	}, true
}

func (cn *conn) handleRelease(req uint64) {
	cn.mu.Lock()
	r, ok := cn.reqs[req]
	if !ok {
		cn.mu.Unlock()
		return // unknown or already finished: releases are idempotent
	}
	if r.release != nil {
		delete(cn.reqs, req)
		cn.mu.Unlock()
		r.release()
		r.sess.Close()
		cn.s.sessions.Add(-1)
		return
	}
	// Not granted yet: withdraw. The acquire goroutine unwinds it.
	r.withdrawn = true
	r.cancel()
	cn.mu.Unlock()
}

// send queues one response frame on the connection's coalescing
// writer; concurrent grant fan-outs coalesce into batch envelopes.
// The frame is encoded straight into an owned pooled buffer the
// writer writes from and releases — no copy between encode and flush.
//
// A client that stops draining responses is shed, not queued for
// without bound: once the egress backlog crosses the budget the
// connection is closed, which unwinds the read loop and hands every
// grant back — the same outcome as the client crashing.
func (cn *conn) send(m network.Message) {
	if b := cn.s.egressBudget(); b > 0 && cn.co.QueuedBytes() > b {
		cn.c.Close()
		return
	}
	frame, err := wire.Append(wire.GetFrame(128)[:wire.FrameDataOff], m)
	if err != nil {
		panic(fmt.Sprintf("serve: encoding own message: %v", err))
	}
	cn.co.AppendOwned(frame, wire.FinishFrame(frame))
}

// egressBudget resolves ServerConfig.EgressBudget: zero selects the
// default, negative disables the bound.
func (s *Server) egressBudget() int64 {
	switch b := s.cfg.EgressBudget; {
	case b < 0:
		return 0
	case b == 0:
		return DefaultEgressBudget
	default:
		return b
	}
}

func (s *Server) hostsLocally(node int) bool {
	for _, id := range s.cfg.Local {
		if id == node {
			return true
		}
	}
	return false
}
