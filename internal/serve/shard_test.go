package serve_test

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/serve"
	"mralloc/internal/wire"
)

// startShardedServer is startServer over a G-shard cluster, with the
// server announcing the shard count.
func startShardedServer(t *testing.T, nodes, m, g int) (*live.Cluster, *serve.Server) {
	t.Helper()
	c, err := live.New(live.Config{Nodes: nodes, Resources: m, Shards: g}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	local := make([]int, nodes)
	for i := range local {
		local[i] = i
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Listen:    "127.0.0.1:0",
		Nodes:     nodes,
		Resources: m,
		Shards:    g,
		Local:     local,
		Open:      func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
	})
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv
}

// TestClientLearnsShards: the hello reply announces the daemon's shard
// count, and a cross-shard acquire phrased over the global universe
// round-trips through the client port (the backend splits it).
func TestClientLearnsShards(t *testing.T) {
	_, srv := startShardedServer(t, 2, 12, 4)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	g, err := cl.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g != 4 {
		t.Fatalf("learned %d shards, want 4", g)
	}
	// Resources 0 and 11 live in shards 0 and 3.
	release, err := cl.Acquire(ctx, 0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	release()
}

// TestFlatDaemonAnnouncesOneShard: a flat daemon's hello says nothing
// about shards (legacy bytes) and the accessor normalizes that to 1.
func TestFlatDaemonAnnouncesOneShard(t *testing.T) {
	_, srv := startServer(t, 2, 4, serve.FIFO)
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	g, err := cl.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("flat daemon announced %d shards, want 1", g)
	}
}

// TestClientPortRejectsShardMismatch: a client hello claiming a shard
// count the daemon does not run is rejected with a reason.
func TestClientPortRejectsShardMismatch(t *testing.T) {
	_, srv := startShardedServer(t, 2, 12, 4)
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := wire.Hello{Version: wire.ProtoVersion, Shards: 2}
	if _, err := c.Write(wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, h))); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	ctl, err := wire.ReadControl(bufio.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Code != wire.CtrlReject {
		t.Fatalf("got control %d, want CtrlReject", ctl.Code)
	}
	reason, err := wire.ParseReject(ctl.Payload)
	if err != nil || !strings.Contains(reason, "shards") {
		t.Fatalf("reject reason %q, %v", reason, err)
	}
}
