// Adaptive admission: the load-aware half of the scheduler.
//
// The fixed policies (FIFO/SSF/EDF) order the queue blind to observed
// load, and the only overload protection is the server's static
// -max-queue backpressure — a bound that is either too small (sheds a
// node that could keep up) or too large (admits past the saturation
// knee, where every queued request's sojourn time grows without bound
// while goodput stays flat). The Adaptive policy closes the loop: the
// scheduler tracks EWMAs of queue depth, grant latency (enqueue →
// admission into the protocol), slot occupancy (admission → release),
// admitted request size, and overload-denial rate, and uses them to
//
//  1. switch its ordering between EDF-with-aging (calm: honor
//     deadlines) and SSF (pressure: small requests conflict less and
//     release sooner, draining the queue fastest), with hysteresis so
//     the mode does not flap;
//  2. self-tune an admission bound from Little's law
//     (bound ≈ target latency / EWMA slot occupancy): a queue deeper
//     than the bound cannot possibly meet the latency target, so new
//     arrivals are shed early (DenyOverloaded) while the queue is
//     still short of the knee — clients retry with jittered backoff
//     instead of parking in a queue that has already collapsed;
//  3. cost-weight wide acquires under pressure: a request for ≥ 2× the
//     EWMA admitted size blocks many small ones, so it sheds at half
//     the bound when the node is pressured (aging still guarantees any
//     admitted wide request is not starved).
//
// All EWMA updates happen in the event loop that owns the scheduler
// (live node loop or simulation engine) — the state needs no locks.
// The published snapshot (depth, bound, pressure, mean size) is
// atomic, so server connection goroutines can consult Overloaded on
// the admission fast path without entering the loop; NoteShed from
// those goroutines only bumps an atomic counter that the loop folds
// into the denial-rate EWMA on its next push or pop.
package serve

import (
	"math"
	"sync/atomic"

	"container/heap"

	"mralloc/internal/metrics"
	"mralloc/internal/sim"
)

// DefaultAdmitTarget is the grant-latency target the Adaptive policy
// tunes toward when the configuration leaves it zero.
const DefaultAdmitTarget = 100 * sim.Millisecond

const (
	// minAdmitBound keeps the self-tuned bound from collapsing to zero
	// on a transient spike in slot occupancy — a node always accepts a
	// short queue.
	minAdmitBound = 8 // probed below
	// maxAdmitBound caps the bound when slot occupancy is tiny; beyond
	// this a queue is a memory-pressure problem before it is a latency
	// one.
	maxAdmitBound = 1 << 20
	// wideFactor: a request for at least wideFactor × the EWMA admitted
	// size is "wide" and sheds at bound/2 under pressure.
	wideFactor = 2.0
	// shedCalm is the denial-rate ceiling for leaving pressure mode:
	// while more than 5% of arrivals are being shed the node is not
	// calm, whatever the grant latency of the survivors says.
	shedCalm = 0.05
)

// Load is a point-in-time snapshot of one node's admission-load
// statistics, as tracked by the Adaptive policy. The zero value is
// returned for fixed-policy schedulers.
type Load struct {
	// Depth is the instantaneous queue depth.
	Depth int
	// EWMADepth is the smoothed queue depth.
	EWMADepth float64
	// GrantLatency is the EWMA of enqueue→admission latency.
	GrantLatency sim.Time
	// Service is the EWMA of admission→release slot occupancy (zero
	// until the runtime reports completions via ObserveService).
	Service sim.Time
	// ShedRate is the EWMA fraction of arrivals denied for overload.
	ShedRate float64
	// MeanSize is the EWMA admitted request size.
	MeanSize float64
	// Bound is the current self-tuned admission bound; 0 = unbounded
	// (no service-time observations yet).
	Bound int
	// Pressure reports whether ordering has switched to SSF.
	Pressure bool
}

// adaptiveState is the Adaptive policy's tracking state. Fields above
// the atomics are owned by the scheduler's event loop; the atomics are
// the cross-goroutine interface.
type adaptiveState struct {
	target  sim.Time
	wait    metrics.EWMA // grant latency: enqueue → admission
	service metrics.EWMA // slot occupancy: admission → release
	depth   metrics.EWMA
	shed    metrics.EWMA // 1 per shed, 0 per admission → denial rate
	size    metrics.EWMA // admitted request size

	// pendingShed counts sheds noted by goroutines outside the loop,
	// folded into the shed EWMA on the loop's next push or pop.
	pendingShed atomic.Int64

	// Published snapshot, readable from any goroutine.
	depthA    atomic.Int64
	boundA    atomic.Int64
	pressureA atomic.Bool
	waitA     atomic.Uint64 // Float64bits
	serviceA  atomic.Uint64 // Float64bits
	shedA     atomic.Uint64 // Float64bits
	sizeA     atomic.Uint64 // Float64bits
	ewDepthA  atomic.Uint64 // Float64bits
}

func newAdaptiveState(target sim.Time) *adaptiveState {
	return &adaptiveState{
		target:  target,
		wait:    metrics.NewEWMA(0.1),
		service: metrics.NewEWMA(0.1),
		depth:   metrics.NewEWMA(0.1),
		shed:    metrics.NewEWMA(0.05),
		size:    metrics.NewEWMA(0.1),
	}
}

// onPush runs inside the loop after an item is enqueued.
func (ad *adaptiveState) onPush(s *Scheduler) {
	ad.drainSheds()
	ad.onDepth(s.heap.Len())
}

// onPop runs inside the loop after an item is admitted (policy pick or
// aging promotion alike).
func (ad *adaptiveState) onPop(s *Scheduler, it *Item, now sim.Time) {
	ad.drainSheds()
	ad.shed.Observe(0) // an admission is a non-shed arrival outcome
	ad.shedA.Store(math.Float64bits(ad.shed.Value()))
	ad.waitA.Store(math.Float64bits(ad.wait.Observe(float64(now - it.Enqueued))))
	ad.sizeA.Store(math.Float64bits(ad.size.Observe(float64(it.Size))))
	ad.onDepth(s.heap.Len())
	ad.switchMode(s)
}

// onDepth publishes a new instantaneous depth and folds it into the
// smoothed depth.
func (ad *adaptiveState) onDepth(depth int) {
	ad.depthA.Store(int64(depth))
	ad.ewDepthA.Store(math.Float64bits(ad.depth.Observe(float64(depth))))
}

// drainSheds folds externally noted denials into the shed EWMA.
func (ad *adaptiveState) drainSheds() {
	for n := ad.pendingShed.Swap(0); n > 0; n-- {
		ad.shed.Observe(1)
	}
	ad.shedA.Store(math.Float64bits(ad.shed.Value()))
}

// switchMode flips the heap ordering between EDF (calm) and SSF
// (pressure) with hysteresis: enter pressure when the grant latency
// passes half the target, leave only once it falls below an eighth and
// the node has (mostly) stopped shedding. Each flip changes the heap
// comparator, so the heap is re-established in place.
func (ad *adaptiveState) switchMode(s *Scheduler) {
	w := ad.wait.Value()
	switch {
	case !ad.pressureA.Load() && w >= float64(ad.target)/2:
		ad.pressureA.Store(true)
		s.heap.mode = SSF
		heap.Init(&s.heap)
	case ad.pressureA.Load() && w <= float64(ad.target)/8 && ad.shed.Value() < shedCalm:
		ad.pressureA.Store(false)
		s.heap.mode = EDF
		heap.Init(&s.heap)
	}
}

// observeService folds one admission→release occupancy sample in and
// retunes the admission bound (Little's law: a queue longer than
// target/occupancy cannot meet the target).
func (ad *adaptiveState) observeService(d sim.Time) {
	if d < 0 {
		d = 0
	}
	sv := ad.service.Observe(float64(d))
	ad.serviceA.Store(math.Float64bits(sv))
	if sv <= 0 {
		ad.boundA.Store(0)
		return
	}
	b := float64(ad.target) / sv
	if b < minAdmitBound {
		b = minAdmitBound
	} else if b > maxAdmitBound {
		b = maxAdmitBound
	}
	ad.boundA.Store(int64(b))
}

// SetTarget sets the Adaptive policy's grant-latency target (≤ 0
// restores DefaultAdmitTarget). No-op for fixed policies. Call it
// before the scheduler starts serving — it is not synchronized with
// the event loop.
func (s *Scheduler) SetTarget(t sim.Time) {
	if s.ad == nil {
		return
	}
	if t <= 0 {
		t = DefaultAdmitTarget
	}
	s.ad.target = t
}

// Target reports the grant-latency target (zero for fixed policies).
func (s *Scheduler) Target() sim.Time {
	if s.ad == nil {
		return 0
	}
	return s.ad.target
}

// ObserveService reports one admission→release slot occupancy to the
// Adaptive policy, which retunes its admission bound from it. Called
// by the runtime that owns the scheduler when a granted request
// releases; a no-op for fixed policies (and for runtimes, like the
// simulation driver, that never call it — the bound then stays
// unbounded and Adaptive degrades to pure load-aware ordering).
func (s *Scheduler) ObserveService(d sim.Time) {
	if s.ad != nil {
		s.ad.observeService(d)
	}
}

// NoteShed records that an arrival for this node was denied for
// overload. Unlike every other scheduler method it is safe from any
// goroutine: server connection goroutines shed on the admission fast
// path without entering the node loop.
func (s *Scheduler) NoteShed() {
	if s.ad != nil {
		s.ad.pendingShed.Add(1)
	}
}

// Overloaded reports whether an arrival of the given size should be
// shed rather than queued: the queue has reached the self-tuned bound,
// or the node is pressured and the request is wide (≥ 2× the EWMA
// admitted size) with the queue past half the bound. Always false for
// fixed policies and before any service-time observation. Safe from
// any goroutine; the caller records an actual denial with NoteShed.
func (s *Scheduler) Overloaded(size int) bool {
	ad := s.ad
	if ad == nil {
		return false
	}
	bound := ad.boundA.Load()
	if bound <= 0 {
		return false
	}
	depth := ad.depthA.Load()
	if depth >= bound {
		return true
	}
	if ad.pressureA.Load() {
		if mean := math.Float64frombits(ad.sizeA.Load()); mean > 0 &&
			float64(size) >= wideFactor*mean && depth >= bound/2 {
			return true
		}
	}
	return false
}

// Load returns the published load snapshot (the zero Load for fixed
// policies). Safe from any goroutine.
func (s *Scheduler) Load() Load {
	ad := s.ad
	if ad == nil {
		return Load{}
	}
	return Load{
		Depth:        int(ad.depthA.Load()),
		EWMADepth:    math.Float64frombits(ad.ewDepthA.Load()),
		GrantLatency: sim.Time(math.Float64frombits(ad.waitA.Load())),
		Service:      sim.Time(math.Float64frombits(ad.serviceA.Load())),
		ShedRate:     math.Float64frombits(ad.shedA.Load()),
		MeanSize:     math.Float64frombits(ad.sizeA.Load()),
		Bound:        int(ad.boundA.Load()),
		Pressure:     ad.pressureA.Load(),
	}
}
