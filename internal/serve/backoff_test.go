package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock records the sleeps retryOverloaded asks for instead of
// actually waiting — the deterministic clock of the backoff tests.
type fakeClock struct {
	slept  []time.Duration
	cancel context.CancelFunc // when set, fired after cancelAt sleeps
	after  int
}

func (fc *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	fc.slept = append(fc.slept, d)
	if fc.cancel != nil && len(fc.slept) >= fc.after {
		fc.cancel()
	}
	return ctx.Err()
}

func TestBackoffDelayScheduleDeterministic(t *testing.T) {
	// rnd pinned to 1.0⁻ gives the ceiling of each window, rnd 0 the
	// floor: attempt n sleeps in [d/2, d] with d = min(Max, Base·2ⁿ).
	almostOne := func() float64 { return 0.9999999999999999 }
	zero := func() float64 { return 0 }
	b := Backoff{Base: 4 * time.Millisecond, Max: 20 * time.Millisecond}

	b.rnd = zero
	wantFloor := []time.Duration{
		2 * time.Millisecond,  // d=4ms
		4 * time.Millisecond,  // d=8ms
		8 * time.Millisecond,  // d=16ms
		10 * time.Millisecond, // d capped at 20ms
		10 * time.Millisecond,
	}
	for i, w := range wantFloor {
		if got := b.delay(i); got != w {
			t.Errorf("floor delay(%d) = %v, want %v", i, got, w)
		}
	}
	b.rnd = almostOne
	wantCeil := []time.Duration{4, 8, 16, 20, 20}
	for i, w := range wantCeil {
		w *= time.Millisecond
		if got := b.delay(i); got < w-time.Microsecond || got > w {
			t.Errorf("ceiling delay(%d) = %v, want ≈%v", i, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	b.rnd = func() float64 { return 0 }
	if got := b.delay(0); got != DefaultBackoffBase/2 {
		t.Errorf("zero-value first delay = %v, want %v", got, DefaultBackoffBase/2)
	}
	if got := b.delay(1000); got != DefaultBackoffMax/2 {
		t.Errorf("zero-value capped delay = %v, want %v", got, DefaultBackoffMax/2)
	}
}

func TestRetryOverloadedRetriesOnlyOverload(t *testing.T) {
	fc := &fakeClock{}
	b := &Backoff{rnd: func() float64 { return 0 }, sleep: fc.sleep}

	// Overloaded twice, then granted: two sleeps, then the release fn.
	calls := 0
	released := false
	rel, err := retryOverloaded(context.Background(), b, func() (func(), error) {
		calls++
		if calls <= 2 {
			return nil, fmt.Errorf("denied: %w", ErrOverloaded)
		}
		return func() { released = true }, nil
	})
	if err != nil || rel == nil {
		t.Fatalf("retry run: rel nil=%v err=%v", rel == nil, err)
	}
	rel()
	if !released || calls != 3 || len(fc.slept) != 2 {
		t.Fatalf("released=%v calls=%d sleeps=%v", released, calls, fc.slept)
	}
	if fc.slept[1] != 2*fc.slept[0] {
		t.Fatalf("second sleep %v is not double the first %v", fc.slept[1], fc.slept[0])
	}

	// A non-overload error returns immediately, no sleep.
	fc.slept = nil
	boom := errors.New("boom")
	if _, err := retryOverloaded(context.Background(), b, func() (func(), error) {
		return nil, boom
	}); !errors.Is(err, boom) || len(fc.slept) != 0 {
		t.Fatalf("non-overload: err=%v sleeps=%v", err, fc.slept)
	}
}

func TestRetryOverloadedAttemptBudget(t *testing.T) {
	fc := &fakeClock{}
	b := &Backoff{Attempts: 3, rnd: func() float64 { return 0 }, sleep: fc.sleep}
	calls := 0
	_, err := retryOverloaded(context.Background(), b, func() (func(), error) {
		calls++
		return nil, ErrOverloaded
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if calls != 3 || len(fc.slept) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 attempts and 2 sleeps", calls, len(fc.slept))
	}
}

func TestRetryOverloadedStopsWhenContextEnds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fc := &fakeClock{cancel: cancel, after: 2}
	b := &Backoff{rnd: func() float64 { return 0 }, sleep: fc.sleep}
	calls := 0
	_, err := retryOverloaded(ctx, b, func() (func(), error) {
		calls++
		return nil, ErrOverloaded
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (canceled during the second sleep)", calls)
	}
}
