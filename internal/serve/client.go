package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// ErrOverloaded reports a denial with DenyOverloaded: the daemon's
// admission queue for the chosen node is at its configured bound.
// Callers detect it with errors.Is and may retry later or target
// another node/daemon.
var ErrOverloaded = errors.New("serve: daemon overloaded")

// ErrConnLost reports that the connection to the daemon died under a
// pending or future call: the socket failed, the daemon sent something
// unparseable, or a write errored. Every Acquire pending at that
// moment — and every call after it — resolves promptly with an error
// satisfying errors.Is(err, ErrConnLost); the daemon side withdraws
// the pending requests and hands back the grants the client held.
// A deliberate Close does NOT satisfy it: callers distinguishing "I
// hung up" from "the connection died under me" can.
var ErrConnLost = errors.New("serve: connection lost")

// Client speaks the client wire protocol to a daemon's client port:
// an external process's handle onto a running cluster. One connection
// multiplexes any number of concurrent Acquires; each is a session on
// the daemon side, admission-scheduled against everyone else's.
//
// Requests leave through a coalescing writer, so a burst of Acquires
// from many goroutines shares write syscalls, and responses are read
// through the batch-aware frame reader — the client accepts the
// daemon's coalesced grant/deny fan-outs transparently.
//
// Methods are safe for concurrent use.
type Client struct {
	c  net.Conn
	co *wire.Coalescer // request egress

	// helloed closes when the daemon's hello reply lands; hello then
	// holds the announced cluster shape and features (see Shape).
	helloed chan struct{}
	hello   wire.Hello

	mu      sync.Mutex
	next    uint64
	pending map[uint64]*clientPending
	err     error // terminal connection error
	closed  chan struct{}
}

type clientPending struct {
	ch chan clientResult // buffered(1): grant or deny
}

type clientResult struct {
	granted bool
	reason  string
	code    DenyCode
}

// Dial connects to a daemon's client port and opens negotiation: the
// client's hello goes out before any request, and the daemon's reply
// carries the cluster shape (see Shape) — a client needs no
// out-of-band N or M. Dial does not wait for the reply; requests may
// flow immediately.
func Dial(addr string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	// Raw write, ahead of the coalescer's first flush: the hello must
	// precede every frame, and nothing else is writing yet.
	mine := wire.Hello{Version: wire.ProtoVersion, Features: wire.FeatWritev}
	hello := wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, mine))
	if _, err := nc.Write(hello); err != nil {
		nc.Close()
		return nil, fmt.Errorf("serve: hello to %s: %w", addr, err)
	}
	c := &Client{
		c:       nc,
		helloed: make(chan struct{}),
		pending: make(map[uint64]*clientPending),
		closed:  make(chan struct{}),
	}
	c.co = wire.NewCoalescer(nc, 0, func(err error) {
		c.fail(fmt.Errorf("%w: write: %v", ErrConnLost, err))
	})
	// Byte-bounded egress: a stalled daemon costs blocked Acquires and
	// at most this much queued request memory, never an OOM.
	c.co.SetByteBudget(clientEgressBudget)
	go c.readLoop()
	return c, nil
}

// clientEgressBudget bounds the request bytes a Client queues for a
// daemon that has stopped reading.
const clientEgressBudget = 4 << 20

// Shape reports the cluster shape (N nodes, M resources) the daemon
// announced in its hello reply, blocking until the reply lands, ctx
// ends, or the connection fails.
func (c *Client) Shape(ctx context.Context) (nodes, resources int, err error) {
	select {
	case <-c.helloed:
		return c.hello.Nodes, c.hello.Resources, nil
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	case <-c.closed:
		c.mu.Lock()
		defer c.mu.Unlock()
		return 0, 0, c.err
	}
}

// Shards reports the number of resource shards the daemon announced
// (1 for a flat cluster or a pre-shard daemon), blocking like Shape.
// Requests are always phrased over the global universe either way; the
// count describes how the daemon parallelizes them.
func (c *Client) Shards(ctx context.Context) (int, error) {
	select {
	case <-c.helloed:
		if c.hello.Shards == 0 {
			return 1, nil
		}
		return c.hello.Shards, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-c.closed:
		c.mu.Lock()
		defer c.mu.Unlock()
		return 0, c.err
	}
}

// Close drops the connection. The daemon withdraws every pending
// request and releases every grant this client still held.
func (c *Client) Close() error {
	c.fail(fmt.Errorf("serve: client closed"))
	return nil
}

// WireStats snapshots the egress counters of the client's coalescing
// writer (writes, frames, batch envelopes, bytes).
func (c *Client) WireStats() wire.CoalescerStats { return c.co.Stats() }

// SetBatching toggles request coalescing (on by default). Benchmarks
// turn it off to measure the pre-batching wire behavior; production
// has no reason to.
func (c *Client) SetBatching(on bool) {
	if on {
		c.co.SetMaxFrames(0)
	} else {
		c.co.SetMaxFrames(1)
	}
}

// SetFlushDelay sets the request-egress micro-delay: concurrent
// Acquires get that long to assemble into one batch envelope before
// the flush. Zero (the default) flushes on wakeup.
func (c *Client) SetFlushDelay(d time.Duration) { c.co.SetFlushDelay(d) }

// AnyNode targets no node in particular: the daemon picks one of its
// hosted nodes round-robin.
const AnyNode = int(network.None)

// Acquire blocks until the daemon grants exclusive access to every
// listed resource on the given node (AnyNode lets the daemon pick),
// then returns the release function (call exactly once; idempotent).
// If ctx ends first the request is withdrawn on the daemon — a grant
// racing the withdrawal is handed straight back — and ctx.Err()
// returned.
func (c *Client) Acquire(ctx context.Context, node int, resources ...int) (func(), error) {
	return c.AcquireWith(ctx, node, AcquireOpts{Resources: resources})
}

// AcquireWith is Acquire with explicit options. A non-zero Deadline is
// shipped as a relative duration (client and daemon clocks need not
// agree) and feeds the daemon's deadline-aware admission policies. A
// denial for backpressure (the daemon's admission queue or adaptive
// bound sheds) satisfies errors.Is(err, ErrOverloaded); set
// RetryOverloaded to have the client retry such denials itself under
// jittered exponential backoff instead of returning them.
func (c *Client) AcquireWith(ctx context.Context, node int, opts AcquireOpts) (func(), error) {
	if b := opts.RetryOverloaded; b != nil {
		return retryOverloaded(ctx, b, func() (func(), error) {
			return c.acquireOnce(ctx, node, opts)
		})
	}
	return c.acquireOnce(ctx, node, opts)
}

func (c *Client) acquireOnce(ctx context.Context, node int, opts AcquireOpts) (func(), error) {
	if node != AnyNode && node < 0 {
		return nil, fmt.Errorf("serve: bad node %d", node)
	}
	msg := ClientAcquire{Node: network.NodeID(node)}
	msg.Resources = make([]int64, len(opts.Resources))
	for i, r := range opts.Resources {
		msg.Resources[i] = int64(r)
	}
	deadline := opts.Deadline
	if deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
	}
	if !deadline.IsZero() {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			ms = 1 // already due: the nearest possible deadline, not "none"
		}
		msg.DeadlineMS = ms
	}

	p := &clientPending{ch: make(chan clientResult, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.next++
	id := c.next
	msg.Req = id
	c.pending[id] = p
	c.mu.Unlock()

	if err := c.send(msg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case res := <-p.ch:
		if !res.granted {
			if res.code == DenyOverloaded {
				return nil, fmt.Errorf("serve: denied: %s: %w", res.reason, ErrOverloaded)
			}
			return nil, fmt.Errorf("serve: denied: %s", res.reason)
		}
		var once sync.Once
		return func() {
			once.Do(func() { c.send(ClientRelease{Req: id}) })
		}, nil
	case <-ctx.Done():
		// Withdraw. If the grant already raced in, the entry is gone
		// and the daemon treats this as a plain release; otherwise the
		// daemon cancels the queued request (and sends no response, so
		// the entry must be dropped here, not by a later dispatch).
		// Either way nothing stays held on our behalf.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.send(ClientRelease{Req: id})
		return nil, ctx.Err()
	case <-c.closed:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
}

// AcquireAll batches many acquisitions into one request frame — one
// round trip admits them all, where a loop of Acquires pays a round
// trip each. The acquisition is all-or-nothing: on any denial, context
// end, or connection failure the already-granted sets are handed back
// and the error returned. On success the returned release function
// hands back every set (call exactly once; idempotent).
//
// The protocol admits at most one critical section per node at a time
// (the paper's hypothesis 4), so a batch can hold all its sets at once
// only when every set lands on a distinct node. Pass AnyNode and the
// daemon spreads the batch over its hosted nodes, acquiring in
// ascending node order so concurrent batches cannot deadlock; a batch
// of more sets than the daemon hosts nodes is denied. A specific node
// admits only single-set batches — multi-set explicit-node batches are
// refused here, before any bytes move.
func (c *Client) AcquireAll(ctx context.Context, node int, sets ...[]int) (func(), error) {
	if node != AnyNode && node < 0 {
		return nil, fmt.Errorf("serve: bad node %d", node)
	}
	if node != AnyNode && len(sets) > 1 {
		return nil, fmt.Errorf(
			"serve: a %d-set batch cannot target one node (one critical section per node); use AnyNode",
			len(sets))
	}
	if len(sets) == 0 {
		return func() {}, nil
	}
	msg := ClientAcquireAll{Node: network.NodeID(node)}
	msg.Sets = make([][]int64, len(sets))
	for i, set := range sets {
		msg.Sets[i] = make([]int64, len(set))
		for j, r := range set {
			msg.Sets[i][j] = int64(r)
		}
	}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		msg.DeadlineMS = ms
	}

	// Reserve len(sets) consecutive request ids: sub-request i answers
	// to base+i, and each is tracked like a standalone Acquire.
	k := len(sets)
	waiters := make([]*clientPending, k)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	base := c.next + 1
	c.next += uint64(k)
	for i := range waiters {
		waiters[i] = &clientPending{ch: make(chan clientResult, 1)}
		c.pending[base+uint64(i)] = waiters[i]
	}
	c.mu.Unlock()
	msg.Req = base

	// unwind releases or withdraws sub-request i — the all-or-nothing
	// cleanup for grants landed before a failure.
	unwind := func(i int) {
		id := base + uint64(i)
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.send(ClientRelease{Req: id})
	}
	if err := c.send(msg); err != nil {
		c.mu.Lock()
		for i := range waiters {
			delete(c.pending, base+uint64(i))
		}
		c.mu.Unlock()
		return nil, err
	}
	for i, p := range waiters {
		select {
		case res := <-p.ch:
			if res.granted {
				continue
			}
			for j := 0; j < k; j++ {
				if j != i {
					unwind(j)
				}
			}
			if res.code == DenyOverloaded {
				return nil, fmt.Errorf("serve: denied set %d: %s: %w", i, res.reason, ErrOverloaded)
			}
			return nil, fmt.Errorf("serve: denied set %d: %s", i, res.reason)
		case <-ctx.Done():
			for j := 0; j < k; j++ {
				unwind(j)
			}
			return nil, ctx.Err()
		case <-c.closed:
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := 0; i < k; i++ {
				c.send(ClientRelease{Req: base + uint64(i)})
			}
		})
	}, nil
}

func (c *Client) readLoop() {
	fr := wire.NewFrameReader(c.c, maxClientFrame)
	fr.OnControl(func(code uint64, payload []byte) error {
		switch code {
		case wire.CtrlHello:
			h, err := wire.ParseHello(payload)
			if err != nil {
				return err
			}
			select {
			case <-c.helloed: // duplicate reply: keep the first
			default:
				c.hello = h
				close(c.helloed)
			}
			return nil
		case wire.CtrlReject:
			reason, _ := wire.ParseReject(payload)
			return fmt.Errorf("daemon rejected handshake: %s", reason)
		default:
			return wire.ErrUnknownControl // forward compat: skip and count
		}
	})
	for {
		frame, err := fr.Next()
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		m, err := wire.Decode(frame)
		if err != nil {
			c.fail(fmt.Errorf("%w: bad frame: %v", ErrConnLost, err))
			return
		}
		switch x := m.(type) {
		case ClientGrant:
			c.dispatch(x.Req, clientResult{granted: true})
		case ClientDeny:
			c.dispatch(x.Req, clientResult{reason: x.Reason, code: x.Code})
		default:
			c.fail(fmt.Errorf("%w: unexpected %s from daemon", ErrConnLost, m.Kind()))
			return
		}
	}
}

// dispatch hands a response to its waiting Acquire. Responses to
// unknown requests are dropped: the waiter withdrew (its ClientRelease
// is already on the wire, so a racing grant is handed straight back by
// the daemon) or never existed.
func (c *Client) dispatch(id uint64, res clientResult) {
	c.mu.Lock()
	p, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	p.ch <- res
}

// fail records the terminal error, closes the connection, and wakes
// every waiter. Idempotent.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	c.mu.Unlock()
	close(c.closed)
	c.c.Close()
	// Join the coalescer's flusher from a fresh goroutine: fail may be
	// running on that very flusher (write-error callback), and the
	// close blocks until it exits. With the socket closed it drains
	// fast; the deadline bounds the join if it somehow does not.
	go c.co.CloseWithin(10 * time.Second)
}

// send queues one request frame on the coalescing writer — encoded
// into an owned pooled buffer the writer writes from and releases.
func (c *Client) send(m network.Message) error {
	frame, err := wire.Append(wire.GetFrame(128)[:wire.FrameDataOff], m)
	if err != nil {
		wire.ReleaseFrame(frame)
		return err
	}
	ok := c.co.AppendOwned(frame, wire.FinishFrame(frame))
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("serve: connection closed")
		}
		return err
	}
	return nil
}
