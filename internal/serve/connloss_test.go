package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"mralloc/internal/transport"
)

// TestClientConnLossTyped kills the connection under a pending Acquire
// — through the chaos proxy, exactly as the fault-injection tier does
// — and pins the conn-loss semantics: every pending acquire resolves
// promptly with an error satisfying errors.Is(_, ErrConnLost), later
// calls fail the same way instead of hanging, and Close stays
// idempotent afterwards.
func TestClientConnLossTyped(t *testing.T) {
	// A black-hole daemon: accepts, reads, never answers — so the
	// acquire is pending when the kill lands.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	px, err := transport.NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got := make(chan error, 1)
	go func() {
		_, err := cl.Acquire(context.Background(), AnyNode, 0, 1)
		got <- err
	}()
	// Wait until the acquire is pending on the wire, then cut it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.mu.Lock()
		n := len(cl.pending)
		cl.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acquire never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	if killed := px.KillConns(); killed != 1 {
		t.Fatalf("proxy killed %d connections, want 1", killed)
	}
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("mid-acquire conn kill returned a grant")
		}
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("pending acquire resolved with %v, want ErrConnLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending acquire hung after conn kill")
	}
	// Later calls fail fast and typed, never hang.
	start := time.Now()
	if _, err := cl.Acquire(context.Background(), AnyNode, 2); !errors.Is(err, ErrConnLost) {
		t.Fatalf("post-loss acquire: %v, want ErrConnLost", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("post-loss acquire took %v, want immediate failure", d)
	}
	// Close after the loss: idempotent, error-free, and it must not
	// overwrite the recorded conn-loss cause.
	if err := cl.Close(); err != nil {
		t.Fatalf("Close after conn loss: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := cl.Acquire(context.Background(), AnyNode, 3); !errors.Is(err, ErrConnLost) {
		t.Fatalf("acquire after Close-after-loss: %v, want the original ErrConnLost", err)
	}
}

// TestClientCloseIsNotConnLoss: a deliberate Close must NOT read as a
// lost connection — the two failure modes stay distinguishable.
func TestClientCloseIsNotConnLoss(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			go io.Copy(io.Discard, c)
		}
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Acquire(context.Background(), AnyNode, 0); err == nil || errors.Is(err, ErrConnLost) {
		t.Fatalf("acquire after deliberate Close: %v, want a non-ErrConnLost error", err)
	}
}
