package serve

import (
	"context"
	"io"
	"net"
	"testing"
	"time"
)

// TestClientTimeoutDoesNotLeakPending: a withdrawn request gets no
// response from the daemon (the withdraw suppresses grant and deny),
// so the ctx.Done path must drop its own pending entry — against a
// black-hole server, repeated timeouts must leave the map empty.
func TestClientTimeoutDoesNotLeakPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			_, _ = io.Copy(io.Discard, c) // swallow frames, never answer
		}
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		if _, err := cl.Acquire(ctx, AnyNode, 0); err == nil {
			t.Fatal("acquire against a black-hole server succeeded")
		}
		cancel()
	}
	cl.mu.Lock()
	n := len(cl.pending)
	cl.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries leaked by timed-out acquires", n)
	}
}
