package serve

import (
	"math/rand"
	"testing"

	"mralloc/internal/sim"
)

func popAll(s *Scheduler, now sim.Time) []uint64 {
	var out []uint64
	for it := s.Pop(now); it != nil; it = s.Pop(now) {
		out = append(out, it.Session)
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"", "fifo", "ssf", "edf"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	if p, _ := ParsePolicy(""); p != FIFO {
		t.Errorf("empty policy parsed as %q, want fifo", p)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := NewScheduler(FIFO, 0)
	for i := 0; i < 5; i++ {
		s.Push(&Item{Session: uint64(i), Size: 5 - i}, sim.Time(i))
	}
	got := popAll(s, 10)
	for i, sess := range got {
		if sess != uint64(i) {
			t.Fatalf("fifo pop order %v", got)
		}
	}
}

func TestSSFOrder(t *testing.T) {
	s := NewScheduler(SSF, 0)
	sizes := []int{4, 1, 3, 1, 2}
	for i, sz := range sizes {
		s.Push(&Item{Session: uint64(i), Size: sz}, 0)
	}
	// Ascending size, arrival order within equal sizes: 1,3 (size 1),
	// 4 (2), 2 (3), 0 (4).
	want := []uint64{1, 3, 4, 2, 0}
	got := popAll(s, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ssf pop order %v, want %v", got, want)
		}
	}
}

func TestEDFOrder(t *testing.T) {
	s := NewScheduler(EDF, 0)
	deadlines := []sim.Time{30, 10, 0, 20, 0}
	for i, d := range deadlines {
		s.Push(&Item{Session: uint64(i), Deadline: d}, 0)
	}
	// Nearest deadline first; no-deadline items last in arrival order.
	want := []uint64{1, 3, 0, 2, 4}
	got := popAll(s, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edf pop order %v, want %v", got, want)
		}
	}
}

// TestAgingPromotesOldest: once an item has waited past the aging
// threshold it must be admitted ahead of anything the policy prefers.
func TestAgingPromotesOldest(t *testing.T) {
	s := NewScheduler(SSF, 100)
	s.Push(&Item{Session: 0, Size: 9}, 0) // big — SSF would starve it
	s.Push(&Item{Session: 1, Size: 1}, 1)
	s.Push(&Item{Session: 2, Size: 1}, 2)
	// Before the threshold SSF wins.
	if it := s.Pop(50); it.Session != 1 {
		t.Fatalf("pop before aging = session %d, want 1", it.Session)
	}
	// At now=100 the big item is 100 old → promoted over session 2.
	if it := s.Pop(100); it.Session != 0 {
		t.Fatalf("pop after aging = session %d, want 0 (aged)", it.Session)
	}
	if it := s.Pop(100); it.Session != 2 {
		t.Fatalf("last pop = session %d, want 2", it.Session)
	}
}

func TestRemoveCancelsQueued(t *testing.T) {
	s := NewScheduler(FIFO, 0)
	a := &Item{Session: 0}
	b := &Item{Session: 1}
	s.Push(a, 0)
	s.Push(b, 0)
	if !s.Remove(a) {
		t.Fatal("Remove of a queued item reported false")
	}
	if s.Remove(a) {
		t.Fatal("second Remove reported true")
	}
	if it := s.Pop(0); it != b {
		t.Fatalf("pop after remove = %+v, want session 1", it)
	}
	if s.Remove(b) {
		t.Fatal("Remove of a popped item reported true")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after draining", s.Len())
	}
}

func TestDrainReturnsArrivalOrder(t *testing.T) {
	s := NewScheduler(EDF, 0)
	for i := 0; i < 4; i++ {
		s.Push(&Item{Session: uint64(i), Deadline: sim.Time(100 - i)}, sim.Time(i))
	}
	s.Pop(0) // session 3 (nearest deadline) leaves
	got := s.Drain()
	want := []uint64{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Session != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
	if s.Len() != 0 {
		t.Fatal("scheduler non-empty after Drain")
	}
}

// TestNoStarvationUnderAdversarialStream: keep feeding small requests
// that SSF prefers; a big early request must still be admitted within
// a bounded number of pops thanks to aging.
func TestNoStarvationUnderAdversarialStream(t *testing.T) {
	const aging = 50
	s := NewScheduler(SSF, aging)
	big := &Item{Session: 999, Size: 100}
	s.Push(big, 0)
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now++
		s.Push(&Item{Session: uint64(i), Size: 1}, now)
		it := s.Pop(now)
		if it == big {
			if now < aging {
				t.Fatalf("big admitted before aging threshold at %v", now)
			}
			return
		}
	}
	t.Fatal("big request starved through 1000 admissions")
}

// TestRandomizedInvariants: under random pushes/pops/removes across
// all policies, every pushed item is popped exactly once or removed
// exactly once, and nothing is lost.
func TestRandomizedInvariants(t *testing.T) {
	for _, p := range Policies() {
		rng := rand.New(rand.NewSource(7))
		s := NewScheduler(p, 20)
		live := map[*Item]bool{}
		popped, removed, pushed := 0, 0, 0
		now := sim.Time(0)
		for step := 0; step < 5000; step++ {
			now++
			switch r := rng.Intn(10); {
			case r < 5:
				it := &Item{Session: uint64(step), Size: 1 + rng.Intn(8), Deadline: sim.Time(rng.Intn(1000))}
				s.Push(it, now)
				live[it] = true
				pushed++
			case r < 8:
				if it := s.Pop(now); it != nil {
					if !live[it] {
						t.Fatalf("%s: popped an item not live", p)
					}
					delete(live, it)
					popped++
				}
			default:
				for it := range live {
					if s.Remove(it) {
						delete(live, it)
						removed++
					}
					break
				}
			}
			if s.Len() != len(live) {
				t.Fatalf("%s: Len=%d, live=%d", p, s.Len(), len(live))
			}
		}
		for it := s.Pop(now + 1e9); it != nil; it = s.Pop(now + 1e9) {
			if !live[it] {
				t.Fatalf("%s: drain popped a dead item", p)
			}
			delete(live, it)
			popped++
		}
		if len(live) != 0 {
			t.Fatalf("%s: %d items lost", p, len(live))
		}
		if popped+removed != pushed {
			t.Fatalf("%s: pushed %d, popped %d + removed %d", p, pushed, popped, removed)
		}
	}
}

// TestReusedItemCannotReviveQueuePosition is the regression test for
// the re-push aliasing bug: the simulation driver reuses one Item per
// session, so a popped item is pushed again with fresh fields. The
// recycled push must not revive the item's stale arrival-order entry
// — which would both break aging (the "oldest" slot pinned by the
// newest push) and grow the fifo without bound.
func TestReusedItemCannotReviveQueuePosition(t *testing.T) {
	const aging = 100
	s := NewScheduler(SSF, aging)
	big := &Item{Session: 99, Size: 9}
	s.Push(big, 0)
	churn := &Item{Session: 1, Size: 1}
	now := sim.Time(0)
	// Session 1 cycles small requests, reusing the same Item — exactly
	// what driver.issue does. SSF prefers them; aging must still
	// promote the big request once it has waited the threshold.
	for i := 0; i < 500; i++ {
		now += 10
		s.Push(churn, now)
		it := s.Pop(now)
		if it == big {
			if now < aging {
				t.Fatalf("big admitted before the aging threshold at %v", now)
			}
			return
		}
		if it != churn {
			t.Fatalf("pop returned neither item: %+v", it)
		}
	}
	t.Fatal("big request starved by a reused small item (stale fifo entry revived)")
}
