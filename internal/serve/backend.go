package serve

import (
	"context"
	"time"
)

// AcquireOpts parameterizes one admission request of a session.
type AcquireOpts struct {
	// Resources lists the resource identifiers to lock, all-or-nothing.
	Resources []int
	// Deadline, when non-zero, is the instant the session wants
	// admission by. It feeds deadline-aware policies (EDF); it does
	// not abort a late request — cancellation comes from the context.
	// When zero, an Acquire context's deadline (if any) is used.
	Deadline time.Time
	// RetryOverloaded, when non-nil, makes Client.AcquireWith retry
	// ErrOverloaded denials itself under the Backoff's jittered
	// exponential schedule until granted, denied for another reason,
	// attempts run out, or the context ends. Client-side only: it does
	// not cross the wire, and the in-process Session ignores it (a
	// cluster without a client port has no shedding admission edge).
	RetryOverloaded *Backoff
}

// BackendSession is one session of the cluster the client-port server
// fronts: at most one Acquire outstanding at a time, Close when the
// client is done. *live.Session implements it.
type BackendSession interface {
	// Acquire blocks until every listed resource is held exclusively,
	// then returns the release function (idempotent, call exactly
	// once). If ctx ends first the eventual grant is auto-released and
	// ctx.Err() returned.
	Acquire(ctx context.Context, opts AcquireOpts) (func(), error)
	// Close invalidates the session. It does not revoke a held grant.
	Close()
}
