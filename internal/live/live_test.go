package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
)

func newTestCluster(t *testing.T, n, m int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: n, Resources: m}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAcquireReleaseSingleNode(t *testing.T) {
	c := newTestCluster(t, 4, 8)
	release, err := c.Acquire(context.Background(), 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent
}

func TestRejectsBadArguments(t *testing.T) {
	c := newTestCluster(t, 2, 4)
	ctx := context.Background()
	if _, err := c.Acquire(ctx, 9, 0); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := c.Acquire(ctx, 0, 7); err == nil {
		t.Error("bad resource accepted")
	}
	if _, err := c.Acquire(ctx, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := New(Config{Nodes: 0, Resources: 1}, core.NewFactory(core.Options{})); err == nil {
		t.Error("empty cluster accepted")
	}
}

// TestMutualExclusionUnderRace hammers conflicting acquisitions from
// many goroutines; the -race detector plus a shared counter per
// resource check exclusion the way a real application would see it.
func TestMutualExclusionUnderRace(t *testing.T) {
	const n, m, iters = 8, 6, 30
	c := newTestCluster(t, n, m)
	holders := make([]atomic.Int32, m)
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r1 := (node + i) % m
				r2 := (node + i + 1) % m
				release, err := c.Acquire(context.Background(), node, r1, r2)
				if err != nil {
					t.Errorf("node %d: %v", node, err)
					return
				}
				for _, r := range []int{r1, r2} {
					if got := holders[r].Add(1); got != 1 {
						t.Errorf("resource %d had %d holders", r, got)
					}
				}
				time.Sleep(200 * time.Microsecond)
				for _, r := range []int{r1, r2} {
					holders[r].Add(-1)
				}
				release()
			}
		}()
	}
	wg.Wait()
}

// TestPerNodeSerialization: two concurrent Acquires on one node must
// serialize (hypothesis 4), not error or interleave.
func TestPerNodeSerialization(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Acquire(context.Background(), 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("completed %d/4 acquisitions", len(order))
	}
}

func TestContextCancellationAutoReleases(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	// Node 0 holds resource 0.
	release, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 tries with a deadline that will expire while waiting.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx, 1, 0); err == nil {
		t.Fatal("expected deadline error")
	}
	release()
	// The auto-release must eventually free resource 0 for node 1.
	deadline := time.After(5 * time.Second)
	for {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 200*time.Millisecond)
		rel2, err := c.Acquire(ctx2, 1, 0)
		cancel2()
		if err == nil {
			rel2()
			return
		}
		select {
		case <-deadline:
			t.Fatal("resource 0 never became available after cancellation")
		default:
		}
	}
}

func TestCloseUnblocksAcquirers(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	release, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = release
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), 1, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("acquire after close returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire did not unblock on close")
	}
	c.Close() // idempotent
}

func TestStatsAccumulate(t *testing.T) {
	c := newTestCluster(t, 3, 4)
	// Node 2 must talk to node 0 (initial owner) to acquire anything.
	release, err := c.Acquire(context.Background(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	release()
	stats := c.Stats()
	var total int64
	for _, v := range stats {
		total += v
	}
	if total == 0 {
		t.Fatal("no messages counted")
	}
}

func TestLatencyModeStillCorrect(t *testing.T) {
	c, err := New(Config{Nodes: 4, Resources: 4, Latency: time.Millisecond},
		core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				release, err := c.Acquire(context.Background(), node, (node+i)%4)
				if err != nil {
					t.Error(err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
}

// TestSustainedStress runs a longer mixed workload (guarded by -short)
// across all nodes with overlapping random sets.
func TestSustainedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run")
	}
	const n, m, iters = 12, 10, 60
	c := newTestCluster(t, n, m)
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := (node*7 + i) % m
				b := (a + 1 + i%3) % m
				cc := (b + 2) % m
				release, err := c.Acquire(context.Background(), node, a, b, cc)
				if err != nil {
					t.Errorf("node %d iter %d: %v", node, i, err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
}
