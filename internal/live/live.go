// Package live runs multi-resource allocation nodes as real concurrent
// processes: one goroutine per site, a transport.Transport as the
// message fabric. The same alg.Node state machines that run under the
// deterministic simulation run here unchanged, which is both a strong
// test (the race detector sees real interleavings) and the basis of the
// public lock-manager API (package mralloc).
//
// The transport decides the deployment shape. With the default
// in-process transport every node lives in this process and messages
// are direct handler calls; with a TCP transport (internal/transport)
// a cluster spans OS processes, each hosting the subset of nodes named
// by Config.Local, and messages cross the wire through the
// internal/wire codec. The protocol cannot tell the difference — the
// transport contract (reliable FIFO per ordered pair, see
// internal/transport) is exactly the paper's hypotheses 1–3.
//
// Each site owns an event loop goroutine that serializes its protocol
// activations — exactly the atomicity the algorithms assume. Message
// queues are unbounded so that no cycle of full mailboxes can deadlock
// the token exchange.
//
// Above the protocol sits the serve layer (internal/serve): a node's
// single request slot (hypothesis 4) is fed by an admission scheduler,
// so any number of concurrent Sessions can multiplex onto one node.
// Sessions enqueue Acquires with deadlines and cancellation; the loop
// admits them one at a time under the configured policy, with aging
// guaranteeing starvation freedom.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
)

// ErrClosed is returned by Acquire (outstanding or queued) and
// NewSession once the cluster has been closed. Callers distinguish it
// from context errors with errors.Is.
var ErrClosed = errors.New("live: cluster closed")

// Config sizes a live cluster.
type Config struct {
	Nodes     int
	Resources int
	// Latency, when positive, delays every message delivery of the
	// built-in in-process transport (FIFO per link is preserved). It
	// cannot be combined with a custom Transport.
	Latency time.Duration
	// Transport, when non-nil, carries the cluster's messages; the
	// cluster takes ownership and closes it on Close. Nil selects the
	// in-process transport, which requires every node to be local.
	Transport transport.Transport
	// Local lists the node ids hosted by this process. Nil or empty
	// means all of them (the single-process configuration). Remote
	// nodes are reachable through the transport but cannot be driven
	// by this cluster's sessions or inspected.
	Local []int
	// Policy selects the admission ordering of each node's scheduler
	// (serve.FIFO when empty); Aging is the starvation-freedom
	// threshold (serve.DefaultAging when zero).
	Policy serve.Policy
	Aging  time.Duration
	// AdmitTarget is the grant-latency target the Adaptive policy
	// tunes its admission bound and ordering mode toward
	// (serve.DefaultAdmitTarget when zero; ignored by fixed policies).
	AdmitTarget time.Duration
	// Shards, when above 1, splits the resource universe into that many
	// contiguous shards (resource.ShardMap), each running its own
	// allocator instances and event loops: single-shard acquires from
	// different shards proceed fully in parallel on every node. The
	// transport must implement transport.Sharder (the Mem and TCP
	// fabrics do); every process of a multi-process cluster must
	// configure the same count. 0 or 1 selects the flat single-universe
	// cluster — exactly the pre-shard code path, byte-for-byte on the
	// wire.
	Shards int
	// CrossShardTwoPhase switches acquires spanning several shards from
	// ordered locking (shards taken one at a time in ascending shard
	// order — deadlock-free the same way AcquireAll's ascending node
	// order is) to a two-phase scheme: every shard is requested in
	// parallel and, when the full set cannot be assembled before the
	// attempt times out, everything is handed back and the acquire
	// retries after a jittered backoff. Two-phase trades the ordered
	// walk's serial latency for retry work under contention; the bench
	// measures both.
	CrossShardTwoPhase bool
	// Tick, when positive, drives time-based protocol machinery: every
	// local node implementing alg.Ticker gets a Tick in its event loop
	// at this period. Required for token leases (core Options.LeaseTTL —
	// pick a period a few times smaller than the heartbeat interval).
	Tick time.Duration
	// Wire tunes the egress wire path of a tunable Transport
	// (transport.WireTuner — the TCP fabric): delta-encoded token
	// state, vectored writes, flush scheduling, handshake and window
	// knobs. Fabrics without the knobs (Mem) ignore it. Applied before
	// any node attaches, so it covers every connection the cluster
	// dials; the zero value leaves the transport exactly as handed in,
	// so pre-tuned endpoints keep their settings.
	Wire transport.WireOptions
}

// Cluster is a set of running protocol nodes — all of them in the
// single-process configuration, this process's share of them in a
// multi-process deployment.
type Cluster struct {
	cfg  Config
	tr   transport.Transport
	bs   transport.BatchSender // tr's batch face, nil when unsupported
	shd  transport.Sharder     // tr's shard face; nil in the flat configuration
	smap resource.ShardMap     // global↔(shard, local) resource mapping; 1 shard when flat
	// loops[s][id] is shard s's event loop for node id; nil for nodes
	// hosted elsewhere. The flat configuration is exactly one shard.
	loops [][]*loop
	start time.Time

	sessSeq uint64 // session id allocator
	seqMu   sync.Mutex

	closed  chan struct{}
	closeMu sync.Mutex
	tickWG  sync.WaitGroup // the Config.Tick driver goroutine
}

// New builds and starts a cluster running the given algorithm. The
// factory builds all Nodes state machines; only the local ones are
// attached and driven, so every process of a multi-process cluster
// calls New with the same factory and a disjoint Local set.
func New(cfg Config, factory alg.Factory) (*Cluster, error) {
	// The cluster owns cfg.Transport from this call on: every error
	// path must close it, or a rejected configuration leaks the
	// listener and its goroutines.
	fail := func(format string, args ...any) (*Cluster, error) {
		if cfg.Transport != nil {
			cfg.Transport.Close()
		}
		return nil, fmt.Errorf("live: "+format, args...)
	}
	if cfg.Nodes < 1 || cfg.Resources < 1 {
		return fail("need ≥1 node and ≥1 resource, got %d/%d", cfg.Nodes, cfg.Resources)
	}
	g := cfg.Shards
	if g <= 0 {
		g = 1
	}
	if g > cfg.Resources {
		return fail("%d shards over %d resources (every shard needs ≥1)", g, cfg.Resources)
	}
	if _, err := serve.ParsePolicy(string(cfg.Policy)); err != nil {
		return fail("%v", err)
	}
	local := cfg.Local
	if len(local) == 0 {
		local = make([]int, cfg.Nodes)
		for i := range local {
			local[i] = i
		}
	}
	seen := make(map[int]bool, len(local))
	for _, id := range local {
		if id < 0 || id >= cfg.Nodes {
			return fail("local node %d outside [0,%d)", id, cfg.Nodes)
		}
		if seen[id] {
			return fail("local node %d listed twice", id)
		}
		seen[id] = true
	}
	tr := cfg.Transport
	if tr == nil {
		if len(local) != cfg.Nodes {
			return fail("hosting %d of %d nodes needs a transport (the in-process fabric cannot reach the rest)", len(local), cfg.Nodes)
		}
		tr = transport.NewMem(cfg.Nodes, cfg.Latency)
	} else {
		if cfg.Latency > 0 {
			return fail("Latency applies only to the built-in transport")
		}
		if tr.N() != cfg.Nodes {
			return fail("transport spans %d nodes, cluster has %d", tr.N(), cfg.Nodes)
		}
	}
	for _, id := range local {
		if !tr.Hosts(network.NodeID(id)) {
			return fail("local node %d is not hosted by the transport endpoint", id)
		}
	}
	if sv, ok := tr.(transport.ShapeValidator); ok {
		sv.SetShape(cfg.Nodes, cfg.Resources)
	}
	if cfg.Wire != (transport.WireOptions{}) {
		if wt, ok := tr.(transport.WireTuner); ok {
			wt.Tune(cfg.Wire)
		}
	}
	smap := resource.NewShardMap(cfg.Resources, g)
	var shd transport.Sharder
	if g > 1 {
		var ok bool
		if shd, ok = tr.(transport.Sharder); !ok {
			tr.Close()
			return nil, fmt.Errorf("live: transport %T cannot carry %d resource shards", tr, g)
		}
		sizes := make([]int, g)
		for s := range sizes {
			sizes[s] = smap.Size(s)
		}
		shd.SetShards(sizes)
	}
	// One allocator fleet per shard, each over its shard's local
	// universe. The flat cluster is the one-shard instance of the same
	// construction: Size(0) == Resources, so the factory call is exactly
	// the pre-shard one.
	nodesByShard := make([][]alg.Node, g)
	for s := 0; s < g; s++ {
		nodesByShard[s] = factory(cfg.Nodes, smap.Size(s))
		if len(nodesByShard[s]) != cfg.Nodes {
			tr.Close()
			return nil, fmt.Errorf("live: factory built %d nodes, want %d", len(nodesByShard[s]), cfg.Nodes)
		}
	}
	c := &Cluster{
		cfg:    cfg,
		tr:     tr,
		shd:    shd,
		smap:   smap,
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	c.bs, _ = tr.(transport.BatchSender)
	c.loops = make([][]*loop, g)
	for s := 0; s < g; s++ {
		c.loops[s] = make([]*loop, cfg.Nodes)
		for _, id := range local {
			c.loops[s][id] = newLoop(c, network.NodeID(id), nodesByShard[s][id], s)
		}
	}
	// Bind before attaching: an Attach may not send, but a peer process
	// already running can — the transport buffers until Bind either way.
	// Shard 0 binds through the legacy face so the flat configuration
	// never touches the shard path.
	for s := 0; s < g; s++ {
		for _, id := range local {
			l := c.loops[s][id]
			h := func(from network.NodeID, m network.Message) {
				l.postEnv(envelope{from: from, msg: m})
			}
			if s == 0 {
				tr.Bind(l.id, h)
			} else {
				shd.BindShard(s, l.id, h)
			}
		}
	}
	for s := 0; s < g; s++ {
		for _, id := range local {
			nodesByShard[s][id].Attach(&liveEnv{c: c, l: c.loops[s][id]})
		}
	}
	for s := 0; s < g; s++ {
		for _, id := range local {
			go c.loops[s][id].run()
		}
	}
	if cfg.Tick > 0 {
		c.tickWG.Add(1)
		go c.runTicker(local)
	}
	return c, nil
}

// runTicker posts a cmdTick to every local loop each Config.Tick, so
// timed protocol machinery advances inside the loops' serialized
// context. It exits when the cluster closes.
func (c *Cluster) runTicker(local []int) {
	defer c.tickWG.Done()
	tick := time.NewTicker(c.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
			for _, shard := range c.loops {
				for _, id := range local {
					shard[id].post(cmdTick{})
				}
			}
		}
	}
}

// Drain asks every local node implementing alg.Drainer to hand off the
// resource tokens it owns, and waits until the handoffs have left the
// loops — the orderly half of a shutdown, called before Close so a
// restarting peer does not have to wait out a lease expiry. It reports
// false when the cluster closed before every drain completed.
func (c *Cluster) Drain() bool {
	ok := true
	var dones []chan struct{}
	for _, shard := range c.loops {
		for _, l := range shard {
			if l == nil {
				continue
			}
			done := make(chan struct{})
			if !l.post(cmdDrain{done: done}) {
				ok = false
				continue
			}
			dones = append(dones, done)
		}
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-c.closed:
			ok = false
		}
	}
	return ok
}

// N reports the number of nodes in the whole cluster.
func (c *Cluster) N() int { return c.cfg.Nodes }

// M reports the number of resources.
func (c *Cluster) M() int { return c.cfg.Resources }

// Shards reports the number of resource shards (1 for a flat cluster).
func (c *Cluster) Shards() int { return c.smap.Shards() }

// ShardLayout returns the cluster's global↔(shard, local) resource
// mapping — the one-shard identity mapping for a flat cluster.
func (c *Cluster) ShardLayout() resource.ShardMap { return c.smap }

// Local reports whether node id is hosted by this cluster instance.
func (c *Cluster) Local(id int) bool {
	return id >= 0 && id < c.cfg.Nodes && c.loops[0][id] != nil
}

// now is the cluster clock: wall time since start, in the same unit
// the simulation uses, so the serve scheduler runs identically in both
// runtimes.
func (c *Cluster) now() sim.Time { return sim.Time(time.Since(c.start)) }

// Stats snapshots the per-kind counters of messages sent through this
// process's transport endpoint. In a multi-process cluster each
// process counts its own sends; summing over processes gives the
// cluster total.
func (c *Cluster) Stats() map[string]int64 {
	return c.tr.Stats()
}

// Inspect runs fn against node id's shard-0 protocol state inside that
// node's event loop, so fn sees a quiesced snapshot without data races
// (the whole protocol state of a flat cluster). It reports false when
// the cluster is closed or the node is not local. fn must not block on
// other cluster operations.
func (c *Cluster) Inspect(id int, fn func(alg.Node)) bool {
	return c.InspectShard(0, id, fn)
}

// InspectShard is Inspect against one shard's allocator instance at
// node id.
func (c *Cluster) InspectShard(shard, id int, fn func(alg.Node)) bool {
	if shard < 0 || shard >= len(c.loops) || !c.Local(id) {
		return false
	}
	l := c.loops[shard][id]
	done := make(chan struct{})
	if !l.post(cmdInspect{fn: fn, done: done}) {
		return false
	}
	select {
	case <-done:
		return true
	case <-c.closed:
		return false
	}
}

// QueueLen reports how many admission requests are queued (not yet fed
// into the protocol) at node id, summed over its shards, for tests and
// load introspection. It reports 0 for non-local nodes or a closed
// cluster.
func (c *Cluster) QueueLen(id int) int {
	if !c.Local(id) {
		return 0
	}
	total := 0
	for _, shard := range c.loops {
		l := shard[id]
		n := 0
		done := make(chan struct{})
		if !l.post(cmdInspect{fn: func(alg.Node) { n = l.sched.Len() }, done: done}) {
			return total
		}
		select {
		case <-done:
			total += n
		case <-c.closed:
			return total
		}
	}
	return total
}

// Overloaded asks node id's Adaptive admission bound whether an
// arrival of the given size should be shed rather than queued. It
// reads the scheduler's atomically published load snapshot — no trip
// through the node loop — so it is cheap enough for a server's
// admission fast path. Always false for fixed policies and non-local
// nodes; the caller records an actual denial with NoteShed.
func (c *Cluster) Overloaded(id, size int) bool {
	if !c.Local(id) {
		return false
	}
	// Any shard saturating is an overload: a cross-shard acquire cannot
	// complete faster than its slowest shard.
	for _, shard := range c.loops {
		if shard[id].sched.Overloaded(size) {
			return true
		}
	}
	return false
}

// NoteShed records an overload denial against node id's load
// statistics (feeding the Adaptive policy's denial-rate EWMA). Safe
// from any goroutine; a no-op for fixed policies and non-local nodes.
func (c *Cluster) NoteShed(id int) {
	if c.Local(id) {
		for _, shard := range c.loops {
			shard[id].sched.NoteShed()
		}
	}
}

// NodeLoad returns node id's shard-0 admission-load snapshot (the
// whole load of a flat cluster; the zero Load for fixed policies and
// non-local nodes). Safe from any goroutine.
func (c *Cluster) NodeLoad(id int) serve.Load {
	if !c.Local(id) {
		return serve.Load{}
	}
	return c.loops[0][id].sched.Load()
}

// Close stops every local node loop and closes the transport. Every
// outstanding or queued Acquire fails promptly with ErrClosed, and all
// loop goroutines exit. Close is idempotent.
func (c *Cluster) Close() {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	c.tickWG.Wait()
	for _, shard := range c.loops {
		for _, l := range shard {
			if l != nil {
				l.stop()
			}
		}
	}
	c.tr.Close()
}

// loop is one site's event loop: a single goroutine applying protocol
// activations sequentially. Above the protocol it owns the node's
// admission scheduler: at most one ticket is fed into the state
// machine at a time (hypothesis 4); the rest queue under the policy.
//
// The loop also owns the node's egress batching: while a mailbox batch
// is being processed, protocol sends accumulate in a per-destination
// outbox instead of hitting the transport one call at a time, and the
// whole run to each destination is handed over with one SendBatch —
// which the TCP fabric turns into one coalesced write. The outbox is
// flushed at every point where the outside world can observe progress
// (a waiter's done channel, a grant, the end of the batch), so no
// message lingers while the loop parks.
type loop struct {
	c     *Cluster
	id    network.NodeID
	shard int
	node  alg.Node

	mb mailbox // envelopes and commands (unbounded, batch-drained)

	sched    *serve.Scheduler
	inflight *ticket // admitted into the state machine; nil when idle

	// Egress outbox (loop goroutine only). perDest[to] accumulates the
	// batch's messages for node to; touched lists the destinations in
	// first-use order. inBatch gates the buffering: sends outside batch
	// processing (an Attach that announces itself, say) go straight to
	// the transport.
	inBatch bool
	perDest [][]network.Message
	touched []network.NodeID
}

// mbItem is one mailbox entry. Envelopes — the hot path: every protocol
// message is one — ride unboxed (cmd nil); control commands box into
// cmd. This keeps a delivered message from costing an interface
// allocation per hop.
type mbItem struct {
	env envelope
	cmd any
}

// mailbox is the loop's unbounded multi-producer queue. The consumer
// drains it in batches: one wakeup takes every queued item, so a burst
// of messages costs one mutex handoff and one goroutine wakeup instead
// of one channel rendezvous each. Unbounded queues keep send-cycles
// (token exchanges) from deadlocking on full mailboxes.
type mailbox struct {
	mu       sync.Mutex
	nonEmpty sync.Cond // 1-to-1 with the consumer; signaled on empty→non-empty
	queue    []mbItem
	closed   bool
}

// put enqueues an item, reporting false once the mailbox is closed.
func (mb *mailbox) put(v mbItem) bool {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return false
	}
	mb.queue = append(mb.queue, v)
	if len(mb.queue) == 1 {
		// Only an empty→non-empty edge can find the consumer parked.
		mb.nonEmpty.Signal()
	}
	mb.mu.Unlock()
	return true
}

// takeAll blocks until items are queued or the mailbox closes, then
// takes the whole queue in one swap, leaving spare (reset) behind as
// the next accumulation buffer. ok is false once closed and drained.
func (mb *mailbox) takeAll(spare []mbItem) (batch []mbItem, ok bool) {
	mb.mu.Lock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.nonEmpty.Wait()
	}
	batch = mb.queue
	mb.queue = spare[:0]
	mb.mu.Unlock()
	return batch, len(batch) > 0
}

// close marks the mailbox closed and wakes the consumer. Idempotent;
// items queued before close are still delivered by the next takeAll.
func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.nonEmpty.Broadcast()
}

type envelope struct {
	from network.NodeID
	msg  network.Message
}

// cmdSubmit enqueues a ticket into the node's admission scheduler.
type cmdSubmit struct {
	t *ticket
}

// cmdCancel withdraws a ticket on behalf of a caller whose context
// ended: removed from the queue if still queued, marked abandoned if
// in flight (the grant, when it arrives, is given straight back), or
// released immediately if the grant already landed. The loop always
// closes done; the caller returns ctx.Err() either way.
type cmdCancel struct {
	t    *ticket
	done chan struct{}
}

// cmdRelease ends the critical section of a granted ticket.
type cmdRelease struct {
	t    *ticket
	done chan struct{}
}

// cmdReap is the loop's note to itself: an abandoned ticket was
// granted, so release it and admit the next — as a fresh activation,
// never recursively from inside the Granted callback (the state
// machines assume Release is a separate activation).
type cmdReap struct {
	t *ticket
}

type cmdInspect struct {
	fn   func(alg.Node)
	done chan struct{}
}

// cmdTick is a clock edge from the Config.Tick driver; the loop passes
// it to the node's alg.Ticker face, if any.
type cmdTick struct{}

// cmdDrain asks the node to hand off its resource tokens (alg.Drainer)
// ahead of an orderly shutdown. The loop always closes done.
type cmdDrain struct {
	done chan struct{}
}

func newLoop(c *Cluster, id network.NodeID, node alg.Node, shard int) *loop {
	l := &loop{
		c:     c,
		id:    id,
		shard: shard,
		node:  node,
		sched: serve.NewScheduler(c.cfg.Policy, sim.Time(c.cfg.Aging)),
	}
	if c.cfg.AdmitTarget > 0 {
		l.sched.SetTarget(sim.Time(c.cfg.AdmitTarget))
	}
	l.mb.nonEmpty.L = &l.mb.mu
	return l
}

// postEnv enqueues a delivered message, reporting false once the loop
// is stopping.
func (l *loop) postEnv(e envelope) bool {
	return l.mb.put(mbItem{env: e})
}

// post enqueues a control command, reporting false once the loop is
// stopping.
func (l *loop) post(v any) bool {
	return l.mb.put(mbItem{cmd: v})
}

func (l *loop) stop() {
	l.mb.close()
}

// run is the site's event loop goroutine. It drains the mailbox a
// batch at a time: every message that queued up while the previous
// batch was being processed is handled under a single wakeup, and the
// sends it provokes leave as per-destination batches. When the mailbox
// closes it fails every queued and in-flight ticket with ErrClosed, so
// no Acquire outlives the cluster.
func (l *loop) run() {
	var spare []mbItem
	for {
		batch, ok := l.mb.takeAll(spare)
		if !ok {
			break
		}
		l.inBatch = true
		for i := range batch {
			v := batch[i]
			batch[i] = mbItem{} // drop references as soon as handled
			if v.cmd == nil {
				l.node.Deliver(v.env.from, v.env.msg)
				continue
			}
			switch x := v.cmd.(type) {
			case cmdSubmit:
				l.sched.Push(&x.t.item, l.c.now())
				l.maybeAdmit()
			case cmdCancel:
				l.cancel(x.t)
				l.flushOutbox() // the waiter may observe state; sends first
				close(x.done)
			case cmdRelease:
				l.release(x.t)
				l.flushOutbox()
				close(x.done)
			case cmdReap:
				l.release(x.t)
			case cmdInspect:
				l.flushOutbox() // quiesce egress before the snapshot
				x.fn(l.node)
				close(x.done)
			case cmdTick:
				if tk, ok := l.node.(alg.Ticker); ok {
					tk.Tick(l.c.now())
				}
			case cmdDrain:
				if dr, ok := l.node.(alg.Drainer); ok {
					dr.Drain()
				}
				l.flushOutbox() // the waiter acts on the handoffs being sent
				close(x.done)
			}
		}
		l.inBatch = false
		l.flushOutbox()
		spare = batch
	}
	// Shutdown: nothing more will be delivered. Fail the queue, then
	// the in-flight request.
	for _, it := range l.sched.Drain() {
		it.V.(*ticket).abort(ErrClosed)
	}
	if t := l.inflight; t != nil {
		l.inflight = nil
		t.abort(ErrClosed)
	}
}

// send queues m for to: buffered into the outbox while a batch is
// being processed, straight to the transport otherwise.
func (l *loop) send(to network.NodeID, m network.Message) {
	if !l.inBatch {
		l.sendNow(to, m)
		return
	}
	if l.perDest == nil {
		l.perDest = make([][]network.Message, l.c.cfg.Nodes)
	}
	if len(l.perDest[to]) == 0 {
		l.touched = append(l.touched, to)
	}
	l.perDest[to] = append(l.perDest[to], m)
}

// flushOutbox hands each destination's accumulated run to the
// transport in one call. Messages to one destination keep their send
// order (the FIFO the protocols rely on); order across destinations is
// not a transport promise to begin with.
func (l *loop) flushOutbox() {
	if len(l.touched) == 0 {
		return
	}
	for _, to := range l.touched {
		msgs := l.perDest[to]
		switch {
		case len(msgs) == 1:
			l.sendNow(to, msgs[0])
		case l.c.shd != nil:
			l.c.shd.SendShardBatch(l.shard, l.id, to, msgs)
		case l.c.bs != nil:
			l.c.bs.SendBatch(l.id, to, msgs)
		default:
			for _, m := range msgs {
				l.c.tr.Send(l.id, to, m)
			}
		}
		// Reset the run but keep its capacity; drop message references
		// so a recycled slot cannot pin dead payloads.
		for i := range msgs {
			msgs[i] = nil
		}
		l.perDest[to] = msgs[:0]
	}
	l.touched = l.touched[:0]
}

// sendNow hands one message to the fabric: through the shard face when
// the cluster is sharded (shard 0 included — SendShard(0, ...) is
// Send), the plain transport otherwise.
func (l *loop) sendNow(to network.NodeID, m network.Message) {
	if l.c.shd != nil {
		l.c.shd.SendShard(l.shard, l.id, to, m)
		return
	}
	l.c.tr.Send(l.id, to, m)
}

// maybeAdmit feeds the scheduler's next pick into the protocol when
// the node's single request slot is free.
func (l *loop) maybeAdmit() {
	if l.inflight != nil {
		return
	}
	it := l.sched.Pop(l.c.now())
	if it == nil {
		return
	}
	t := it.V.(*ticket)
	l.inflight = t
	t.admitted = l.c.now()
	l.node.Request(t.rs)
}

// release ends t's critical section and admits the next request. A
// stale release (the ticket is no longer in flight — the cluster
// auto-released it on cancel) is a no-op.
func (l *loop) release(t *ticket) {
	if l.inflight != t || !t.inCS {
		return
	}
	l.sched.ObserveService(l.c.now() - t.admitted)
	l.node.Release()
	l.inflight = nil
	l.maybeAdmit()
}

// cancel withdraws t after its caller's context ended.
func (l *loop) cancel(t *ticket) {
	switch {
	case l.sched.Remove(&t.item):
		// Still queued: never admitted, nothing to unwind.
		t.abort(context.Canceled)
	case l.inflight == t && !t.inCS:
		// In flight: the protocol cannot abandon a request — mark it
		// so the grant is given straight back on arrival.
		t.abandoned = true
	case l.inflight == t && t.inCS:
		// Granted, caller didn't take it: give the resources back now.
		l.sched.ObserveService(l.c.now() - t.admitted)
		l.node.Release()
		l.inflight = nil
		l.maybeAdmit()
	}
}

// onGranted runs inside the loop goroutine (via Env.Granted).
func (l *loop) onGranted() {
	t := l.inflight
	if t == nil {
		panic(fmt.Sprintf("live: node %d granted without a pending request", l.id))
	}
	t.inCS = true
	if t.abandoned {
		// The caller is gone; release as a fresh activation (the state
		// machines assume Granted has returned before Release runs).
		l.post(cmdReap{t: t})
		return
	}
	// The waiter wakes the moment this closes; everything the grant's
	// activation already sent must be on its way first.
	l.flushOutbox()
	close(t.granted)
}

// liveEnv adapts a loop to the alg.Env contract.
type liveEnv struct {
	c *Cluster
	l *loop
}

func (e *liveEnv) ID() network.NodeID { return e.l.id }
func (e *liveEnv) N() int             { return e.c.cfg.Nodes }

// M is the node's resource universe: its shard's local universe, which
// is the whole global universe on a flat cluster.
func (e *liveEnv) M() int { return e.c.smap.Size(e.l.shard) }

func (e *liveEnv) Now() sim.Time { return e.c.now() }

// Granted runs inside the loop goroutine: the node just entered its CS.
func (e *liveEnv) Granted() { e.l.onGranted() }

func (e *liveEnv) Send(to network.NodeID, m network.Message) {
	e.l.send(to, m)
}
