// Package live runs multi-resource allocation nodes as real concurrent
// processes: one goroutine per site, a transport.Transport as the
// message fabric. The same alg.Node state machines that run under the
// deterministic simulation run here unchanged, which is both a strong
// test (the race detector sees real interleavings) and the basis of the
// public lock-manager API (package mralloc).
//
// The transport decides the deployment shape. With the default
// in-process transport every node lives in this process and messages
// are direct handler calls; with a TCP transport (internal/transport)
// a cluster spans OS processes, each hosting the subset of nodes named
// by Config.Local, and messages cross the wire through the
// internal/wire codec. The protocol cannot tell the difference — the
// transport contract (reliable FIFO per ordered pair, see
// internal/transport) is exactly the paper's hypotheses 1–3.
//
// Each site owns an event loop goroutine that serializes its protocol
// activations — exactly the atomicity the algorithms assume. Message
// queues are unbounded so that no cycle of full mailboxes can deadlock
// the token exchange.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
)

// Config sizes a live cluster.
type Config struct {
	Nodes     int
	Resources int
	// Latency, when positive, delays every message delivery of the
	// built-in in-process transport (FIFO per link is preserved). It
	// cannot be combined with a custom Transport.
	Latency time.Duration
	// Transport, when non-nil, carries the cluster's messages; the
	// cluster takes ownership and closes it on Close. Nil selects the
	// in-process transport, which requires every node to be local.
	Transport transport.Transport
	// Local lists the node ids hosted by this process. Nil or empty
	// means all of them (the single-process configuration). Remote
	// nodes are reachable through the transport but cannot be driven
	// by this cluster's Acquire or inspected.
	Local []int
}

// Cluster is a set of running protocol nodes — all of them in the
// single-process configuration, this process's share of them in a
// multi-process deployment.
type Cluster struct {
	cfg   Config
	tr    transport.Transport
	loops []*loop // indexed by node id; nil for nodes hosted elsewhere
	start time.Time

	closed  chan struct{}
	closeMu sync.Mutex
}

// New builds and starts a cluster running the given algorithm. The
// factory builds all Nodes state machines; only the local ones are
// attached and driven, so every process of a multi-process cluster
// calls New with the same factory and a disjoint Local set.
func New(cfg Config, factory alg.Factory) (*Cluster, error) {
	// The cluster owns cfg.Transport from this call on: every error
	// path must close it, or a rejected configuration leaks the
	// listener and its goroutines.
	fail := func(format string, args ...any) (*Cluster, error) {
		if cfg.Transport != nil {
			cfg.Transport.Close()
		}
		return nil, fmt.Errorf("live: "+format, args...)
	}
	if cfg.Nodes < 1 || cfg.Resources < 1 {
		return fail("need ≥1 node and ≥1 resource, got %d/%d", cfg.Nodes, cfg.Resources)
	}
	local := cfg.Local
	if len(local) == 0 {
		local = make([]int, cfg.Nodes)
		for i := range local {
			local[i] = i
		}
	}
	seen := make(map[int]bool, len(local))
	for _, id := range local {
		if id < 0 || id >= cfg.Nodes {
			return fail("local node %d outside [0,%d)", id, cfg.Nodes)
		}
		if seen[id] {
			return fail("local node %d listed twice", id)
		}
		seen[id] = true
	}
	tr := cfg.Transport
	if tr == nil {
		if len(local) != cfg.Nodes {
			return fail("hosting %d of %d nodes needs a transport (the in-process fabric cannot reach the rest)", len(local), cfg.Nodes)
		}
		tr = transport.NewMem(cfg.Nodes, cfg.Latency)
	} else {
		if cfg.Latency > 0 {
			return fail("Latency applies only to the built-in transport")
		}
		if tr.N() != cfg.Nodes {
			return fail("transport spans %d nodes, cluster has %d", tr.N(), cfg.Nodes)
		}
	}
	for _, id := range local {
		if !tr.Hosts(network.NodeID(id)) {
			return fail("local node %d is not hosted by the transport endpoint", id)
		}
	}
	if sv, ok := tr.(transport.ShapeValidator); ok {
		sv.SetShape(cfg.Nodes, cfg.Resources)
	}
	nodes := factory(cfg.Nodes, cfg.Resources)
	if len(nodes) != cfg.Nodes {
		tr.Close()
		return nil, fmt.Errorf("live: factory built %d nodes, want %d", len(nodes), cfg.Nodes)
	}
	c := &Cluster{
		cfg:    cfg,
		tr:     tr,
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	c.loops = make([]*loop, cfg.Nodes)
	for _, id := range local {
		c.loops[id] = newLoop(c, network.NodeID(id), nodes[id])
	}
	// Bind before attaching: an Attach may not send, but a peer process
	// already running can — the transport buffers until Bind either way.
	for _, id := range local {
		l := c.loops[id]
		tr.Bind(l.id, func(from network.NodeID, m network.Message) {
			l.post(envelope{from: from, msg: m})
		})
	}
	for _, id := range local {
		nodes[id].Attach(&liveEnv{c: c, l: c.loops[id]})
	}
	for _, id := range local {
		go c.loops[id].run()
	}
	return c, nil
}

// N reports the number of nodes in the whole cluster.
func (c *Cluster) N() int { return c.cfg.Nodes }

// M reports the number of resources.
func (c *Cluster) M() int { return c.cfg.Resources }

// Local reports whether node id is hosted by this cluster instance.
func (c *Cluster) Local(id int) bool {
	return id >= 0 && id < c.cfg.Nodes && c.loops[id] != nil
}

// Stats snapshots the per-kind counters of messages sent through this
// process's transport endpoint. In a multi-process cluster each
// process counts its own sends; summing over processes gives the
// cluster total.
func (c *Cluster) Stats() map[string]int64 {
	return c.tr.Stats()
}

// Inspect runs fn against node id's protocol state inside that node's
// event loop, so fn sees a quiesced snapshot without data races. It
// reports false when the cluster is closed or the node is not local.
// fn must not block on other cluster operations.
func (c *Cluster) Inspect(id int, fn func(alg.Node)) bool {
	if !c.Local(id) {
		return false
	}
	l := c.loops[id]
	done := make(chan struct{})
	if !l.post(cmdInspect{fn: fn, done: done}) {
		return false
	}
	select {
	case <-done:
		return true
	case <-c.closed:
		return false
	}
}

// Close stops every local node loop and closes the transport.
// Outstanding Acquire calls return errors. Close is idempotent.
func (c *Cluster) Close() {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	for _, l := range c.loops {
		if l != nil {
			l.stop()
		}
	}
	c.tr.Close()
}

// Acquire requests exclusive access to the given resources on behalf of
// node id and blocks until granted or the context ends. On success the
// returned function releases the critical section (it must be called
// exactly once). If the context ends first, the grant — which cannot be
// revoked mid-protocol — is released automatically when it arrives.
//
// A node serves one request at a time (the protocol's hypothesis 4);
// concurrent Acquire calls on one node serialize. Only locally hosted
// nodes can acquire.
func (c *Cluster) Acquire(ctx context.Context, id int, resources ...int) (func(), error) {
	if !c.Local(id) {
		return nil, fmt.Errorf("live: no local node %d", id)
	}
	if len(resources) == 0 {
		return nil, fmt.Errorf("live: empty resource set")
	}
	rs := resource.NewSet(c.cfg.Resources)
	for _, r := range resources {
		if r < 0 || r >= c.cfg.Resources {
			return nil, fmt.Errorf("live: no resource %d", r)
		}
		rs.Add(resource.ID(r))
	}
	l := c.loops[id]

	// Serialize requests per node (hypothesis 4).
	select {
	case l.slot <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, fmt.Errorf("live: cluster closed")
	}

	granted := make(chan struct{})
	if !l.post(cmdRequest{rs: rs, granted: granted}) {
		<-l.slot
		return nil, fmt.Errorf("live: cluster closed")
	}
	select {
	case <-granted:
		var once sync.Once
		release := func() {
			once.Do(func() {
				done := make(chan struct{})
				l.post(cmdRelease{done: done})
				<-done
				<-l.slot
			})
		}
		return release, nil
	case <-ctx.Done():
		// The protocol cannot abandon a request: wait for the grant in
		// the background and give the resources straight back.
		go func() {
			<-granted
			done := make(chan struct{})
			l.post(cmdRelease{done: done})
			<-done
			<-l.slot
		}()
		return nil, ctx.Err()
	case <-c.closed:
		<-l.slot
		return nil, fmt.Errorf("live: cluster closed")
	}
}

// loop is one site's event loop: a single goroutine applying protocol
// activations sequentially.
type loop struct {
	c    *Cluster
	id   network.NodeID
	node alg.Node

	mb   mailbox       // envelopes and commands (unbounded, batch-drained)
	slot chan struct{} // capacity 1: one outstanding request per node

	granted chan struct{} // the in-flight request's grant signal
}

// mailbox is the loop's unbounded multi-producer queue. The consumer
// drains it in batches: one wakeup takes every queued item, so a burst
// of messages costs one mutex handoff and one goroutine wakeup instead
// of one channel rendezvous each. Unbounded queues keep send-cycles
// (token exchanges) from deadlocking on full mailboxes.
type mailbox struct {
	mu       sync.Mutex
	nonEmpty sync.Cond // 1-to-1 with the consumer; signaled on empty→non-empty
	queue    []any
	closed   bool
}

// put enqueues v, reporting false once the mailbox is closed.
func (mb *mailbox) put(v any) bool {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return false
	}
	mb.queue = append(mb.queue, v)
	if len(mb.queue) == 1 {
		// Only an empty→non-empty edge can find the consumer parked.
		mb.nonEmpty.Signal()
	}
	mb.mu.Unlock()
	return true
}

// takeAll blocks until items are queued or the mailbox closes, then
// takes the whole queue in one swap, leaving spare (reset) behind as
// the next accumulation buffer. ok is false once closed and drained.
func (mb *mailbox) takeAll(spare []any) (batch []any, ok bool) {
	mb.mu.Lock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.nonEmpty.Wait()
	}
	batch = mb.queue
	mb.queue = spare[:0]
	mb.mu.Unlock()
	return batch, len(batch) > 0
}

// close marks the mailbox closed and wakes the consumer. Idempotent;
// items queued before close are still delivered by the next takeAll.
func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.nonEmpty.Broadcast()
}

type envelope struct {
	from network.NodeID
	msg  network.Message
}

type cmdRequest struct {
	rs      resource.Set
	granted chan struct{}
}

type cmdRelease struct {
	done chan struct{}
}

type cmdInspect struct {
	fn   func(alg.Node)
	done chan struct{}
}

func newLoop(c *Cluster, id network.NodeID, node alg.Node) *loop {
	l := &loop{
		c:    c,
		id:   id,
		node: node,
		slot: make(chan struct{}, 1),
	}
	l.mb.nonEmpty.L = &l.mb.mu
	return l
}

// post enqueues an item, reporting false once the loop is stopping.
func (l *loop) post(v any) bool {
	return l.mb.put(v)
}

func (l *loop) stop() {
	l.mb.close()
}

// run is the site's event loop goroutine. It drains the mailbox a
// batch at a time: every message that queued up while the previous
// batch was being processed is handled under a single wakeup.
func (l *loop) run() {
	var spare []any
	for {
		batch, ok := l.mb.takeAll(spare)
		if !ok {
			return
		}
		for i, v := range batch {
			batch[i] = nil // drop the reference as soon as it is handled
			switch x := v.(type) {
			case envelope:
				l.node.Deliver(x.from, x.msg)
			case cmdRequest:
				l.granted = x.granted
				l.node.Request(x.rs)
			case cmdRelease:
				l.node.Release()
				close(x.done)
			case cmdInspect:
				x.fn(l.node)
				close(x.done)
			}
		}
		spare = batch
	}
}

// onGranted runs inside the loop goroutine (via Env.Granted).
func (l *loop) onGranted() {
	if l.granted == nil {
		panic(fmt.Sprintf("live: node %d granted without a pending request", l.id))
	}
	g := l.granted
	l.granted = nil
	close(g)
}

// liveEnv adapts a loop to the alg.Env contract.
type liveEnv struct {
	c *Cluster
	l *loop
}

func (e *liveEnv) ID() network.NodeID { return e.l.id }
func (e *liveEnv) N() int             { return e.c.cfg.Nodes }
func (e *liveEnv) M() int             { return e.c.cfg.Resources }

func (e *liveEnv) Now() sim.Time { return sim.Time(time.Since(e.c.start)) }

// Granted runs inside the loop goroutine: the node just entered its CS.
func (e *liveEnv) Granted() { e.l.onGranted() }

func (e *liveEnv) Send(to network.NodeID, m network.Message) {
	e.c.tr.Send(e.l.id, to, m)
}
