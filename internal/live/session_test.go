package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/leakcheck"
	"mralloc/internal/serve"
)

// TestSessionsMultiplexOneNode: many sessions on a single node must
// all be served through its one protocol slot, with mutual exclusion
// intact (checked by a shared holder counter).
func TestSessionsMultiplexOneNode(t *testing.T) {
	const sessions, iters, m = 16, 10, 4
	c := newTestCluster(t, 1, m)
	holders := make([]atomic.Int32, m)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.NewSession(0)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for k := 0; k < iters; k++ {
				r := (i + k) % m
				release, err := s.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{r}})
				if err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				if got := holders[r].Add(1); got != 1 {
					t.Errorf("resource %d had %d holders", r, got)
				}
				holders[r].Add(-1)
				release()
			}
			if s.Grants() != iters {
				t.Errorf("session %d counted %d grants, want %d", i, s.Grants(), iters)
			}
		}()
	}
	wg.Wait()
}

// TestSessionBusy: a session is one serialized client; overlapping
// Acquires on it must fail fast with ErrSessionBusy.
func TestSessionBusy(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	holder, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	release, err := holder.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		rel, err := s.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{0}})
		if err != nil {
			t.Errorf("blocked acquire failed: %v", err)
			return
		}
		rel()
	}()
	<-started
	// Wait until the first Acquire is genuinely queued.
	for i := 0; c.QueueLen(0) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{0}}); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("overlapping acquire returned %v, want ErrSessionBusy", err)
	}
	release()
	<-done
}

func TestSessionClosed(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	s, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{0}}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("acquire on closed session returned %v, want ErrSessionClosed", err)
	}
	if _, err := c.NewSession(7); err == nil {
		t.Fatal("session opened on a node that does not exist")
	}
}

// TestCloseFailsQueuedSessionsPromptly is the Close contract: with one
// grant held and many sessions queued behind it, Close must fail every
// queued and outstanding Acquire with ErrClosed — promptly, and
// without leaking a single goroutine.
func TestCloseFailsQueuedSessionsPromptly(t *testing.T) {
	defer leakcheck.Check(t)()
	const queued = 12
	c, err := New(Config{Nodes: 2, Resources: 1}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	release, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = release // never called: Close unwinds the holder
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		node := i % 2
		go func() {
			_, err := c.Acquire(context.Background(), node, 0)
			errs <- err
		}()
	}
	// Let the acquirers reach the scheduler queues.
	for i := 0; c.QueueLen(0)+c.QueueLen(1) < queued-1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	deadline := time.After(5 * time.Second)
	for i := 0; i < queued; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("queued acquire returned %v, want ErrClosed", err)
			}
		case <-deadline:
			t.Fatalf("only %d/%d queued acquires unblocked after Close", i, queued)
		}
	}
	// A release arriving after Close must not hang either.
	release()
}

// TestCancelQueuedAcquire: a context canceled while the request is
// still queued must withdraw it without perturbing the node.
func TestCancelQueuedAcquire(t *testing.T) {
	defer leakcheck.Check(t)()
	c, err := New(Config{Nodes: 1, Resources: 1}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	release, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, 0, 0)
		errc <- err
	}()
	for i := 0; c.QueueLen(0) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled acquire returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled acquire did not return")
	}
	if n := c.QueueLen(0); n != 0 {
		t.Fatalf("queue still holds %d items after cancel", n)
	}
	release()
	// The node must still serve requests normally.
	rel2, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

// TestDeadlineFeedsEDF: under the EDF policy a later-submitted request
// with a nearer deadline overtakes earlier ones. The holder keeps the
// resource until every contender is queued, so the admission order is
// deterministic despite wall-clock scheduling.
func TestDeadlineFeedsEDF(t *testing.T) {
	c, err := New(Config{Nodes: 1, Resources: 1, Policy: serve.EDF}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	release, err := c.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Session 0: far deadline, submitted first. Session 1: near
	// deadline, submitted second. EDF must admit 1 before 0.
	deadlines := []time.Time{time.Now().Add(time.Hour), time.Now().Add(time.Minute)}
	for i := range deadlines {
		i := i
		s, err := c.NewSession(0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.Close()
			rel, err := s.Acquire(context.Background(), serve.AcquireOpts{Resources: []int{0}, Deadline: deadlines[i]})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}()
		// Ensure submission order: wait until request i is queued.
		for k := 0; c.QueueLen(0) <= i && k < 1000; k++ {
			time.Sleep(time.Millisecond)
		}
	}
	release()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("EDF admission order %v, want [1 0]", order)
	}
}
