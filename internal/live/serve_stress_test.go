package live

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/verify"
)

// TestScheduledSessionStress is the serve-layer stress battery:
// randomized multi-session load through the admission scheduler under
// every policy, over both the in-process and the TCP-loopback fabric,
// with two invariants on top of -race cleanliness:
//
//   - the verify.Monitor invariants (safety, hypothesis 4, liveness at
//     quiescence), checked per session — each session gets a synthetic
//     site id, since a session serializes its own requests exactly the
//     way a protocol node serializes its own;
//   - no starvation: every admitted session's every Acquire is
//     granted within the (generous) timeout, whatever the policy
//     prefers — the aging guarantee, observed end to end.
func TestScheduledSessionStress(t *testing.T) {
	for _, policy := range serve.Policies() {
		for _, fb := range []fabric{memFabric(), tcpFabric()} {
			policy, fb := policy, fb
			t.Run(string(policy)+"/"+fb.name, func(t *testing.T) {
				t.Parallel()
				runScheduledSessionStress(t, fb, policy)
			})
		}
	}
}

func runScheduledSessionStress(t *testing.T, fb fabric, policy serve.Policy) {
	const nodes, m, perNode = 4, 10, 8
	iters := 12
	if testing.Short() {
		iters = 5
	}
	// A short aging threshold so the starvation-freedom path (aged
	// promotion over the policy's preference) actually runs, not just
	// exists.
	sys := fb.buildPolicy(t, nodes, m, core.NewFactory(core.WithLoan()), policy, 20*time.Millisecond)
	defer sys.close()

	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) { t.Errorf("%s: %v", policy, v) })

	var wg sync.WaitGroup
	total := nodes * perNode
	for s := 0; s < total; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			sid := network.NodeID(s)
			node := s % nodes
			sess, err := sys.session(node)
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(s)*9176 + int64(len(policy))))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(4))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				monMu.Lock()
				mon.Requested(sid, now())
				monMu.Unlock()

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				release, err := sess.Acquire(ctx, serve.AcquireOpts{
					Resources: ids,
					Deadline:  time.Now().Add(time.Duration(1+rng.Intn(200)) * time.Millisecond),
				})
				cancel()
				if err != nil {
					t.Errorf("%s: session %d iter %d: acquire %v: %v (starvation?)", policy, s, i, ids, err)
					return
				}
				monMu.Lock()
				mon.Granted(sid, rs, now())
				monMu.Unlock()

				if d := rng.Intn(150); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(sid, rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()

	monMu.Lock()
	defer monMu.Unlock()
	mon.CheckQuiescent(now())
	if got, want := mon.Grants(), total*iters; got != want {
		t.Errorf("%s: monitor saw %d grants, want %d", policy, got, want)
	}
}

// TestCancellationStorm mixes short-deadline (often canceled) and
// patient sessions under every policy: canceled acquires must
// withdraw cleanly, and the patient traffic must still be served to
// completion — no stuck slots, no leaked grants.
func TestCancellationStorm(t *testing.T) {
	for _, policy := range serve.Policies() {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			const nodes, m = 2, 4
			iters := 15
			if testing.Short() {
				iters = 6
			}
			c, err := New(Config{Nodes: nodes, Resources: m, Policy: policy, Aging: 10 * time.Millisecond},
				core.NewFactory(core.WithLoan()))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for s := 0; s < 12; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s) + 31))
					impatient := s%3 == 0
					for i := 0; i < iters; i++ {
						timeout := 2 * time.Minute
						if impatient {
							timeout = time.Duration(1+rng.Intn(3)) * time.Millisecond
						}
						ctx, cancel := context.WithTimeout(context.Background(), timeout)
						release, err := c.Acquire(ctx, s%nodes, rng.Intn(m), rng.Intn(m))
						cancel()
						switch {
						case err == nil:
							time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
							release()
						case impatient && ctx.Err() != nil:
							// expected: gave up while queued or in flight
						default:
							t.Errorf("session %d iter %d: %v", s, i, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			// After the storm every resource must still be obtainable.
			for r := 0; r < m; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				release, err := c.Acquire(ctx, 0, r)
				cancel()
				if err != nil {
					t.Fatalf("resource %d unobtainable after the storm: %v", r, err)
				}
				release()
			}
		})
	}
}
