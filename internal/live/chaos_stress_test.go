package live

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/verify"
)

// TestChaosStress drives all four live-capable algorithms through the
// fault-injecting transport wrapper, in two profiles with different
// contracts:
//
//   - lossless: delay plus directed partitions over the in-process
//     fabric. Partitions buffer FIFO and heal, so the channel
//     hypotheses (reliable, FIFO, no duplication) still hold end to
//     end — safety AND liveness are asserted, including a probe round
//     after the fault window closes.
//
//   - lossy: drop plus delay plus mid-stream connection kills over the
//     per-node TCP fabric. Message loss breaks hypothesis 1, so the
//     paper's liveness guarantee is forfeit by construction — only
//     safety is asserted: no overlapping grant of the same resource,
//     ever, no matter what the fabric loses.
func TestChaosStress(t *testing.T) {
	for algName, factory := range liveAlgorithms() {
		factory := factory
		t.Run(algName+"/lossless", func(t *testing.T) {
			t.Parallel()
			runChaosLossless(t, factory)
		})
		t.Run(algName+"/lossy", func(t *testing.T) {
			t.Parallel()
			runChaosLossy(t, factory)
		})
	}
}

// runChaosLossless: chaos over the in-process fabric with per-message
// delay and a roaming directed partition. Every acquire must still be
// granted — the fault window only slows the fabric down, it never
// loses anything.
func runChaosLossless(t *testing.T, factory alg.Factory) {
	const n, m = 6, 8
	iters := 12
	window := 1200 * time.Millisecond
	if testing.Short() {
		iters = 5
		window = 500 * time.Millisecond
	}
	ch := transport.NewChaos(transport.NewMem(n, 0), 0x10c4)
	c, err := New(Config{Nodes: n, Resources: m, Transport: ch}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch.SetFaults(transport.Faults{DelayMax: 2 * time.Millisecond})

	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) {
		t.Errorf("%v", v)
	})

	// The partitioner severs one directed link at a time, holds it for
	// a few tens of milliseconds, heals, and moves on — asymmetric
	// outages (A→B dark while B→A flows) roam across the cluster for
	// the whole fault window.
	partDone := make(chan struct{})
	go func() {
		defer close(partDone)
		rng := rand.New(rand.NewSource(7))
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			from := network.NodeID(rng.Intn(n))
			to := network.NodeID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			ch.Partition(from, to)
			time.Sleep(time.Duration(20+rng.Intn(50)) * time.Millisecond)
			ch.Heal(from, to)
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)*104729 + 1))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(3))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				monMu.Lock()
				mon.Requested(network.NodeID(node), now())
				monMu.Unlock()

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				release, err := c.Acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					t.Errorf("node %d iter %d: acquire %v: %v (liveness under lossless faults)", node, i, ids, err)
					return
				}
				monMu.Lock()
				mon.Granted(network.NodeID(node), rs, now())
				monMu.Unlock()

				if d := rng.Intn(150); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(network.NodeID(node), rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	<-partDone

	// Fault window closed: heal everything, then probe liveness on a
	// clean fabric — one more monitored acquire per node must succeed
	// promptly.
	ch.StopFaults()
	for node := 0; node < n; node++ {
		rs := resource.NewSet(m)
		rs.Add(resource.ID(node % m))
		monMu.Lock()
		mon.Requested(network.NodeID(node), now())
		monMu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		release, err := c.Acquire(ctx, node, node%m)
		cancel()
		if err != nil {
			t.Fatalf("node %d: post-window liveness probe: %v", node, err)
		}
		monMu.Lock()
		mon.Granted(network.NodeID(node), rs, now())
		mon.Released(network.NodeID(node), rs, now())
		monMu.Unlock()
		release()
	}

	monMu.Lock()
	defer monMu.Unlock()
	mon.CheckQuiescent(now())
	if got, want := mon.Grants(), n*(iters+1); got != want {
		t.Errorf("monitor saw %d grants, want %d", got, want)
	}
	if st := ch.ChaosStats(); st.Delayed == 0 {
		t.Errorf("fault window injected nothing: %+v", st)
	}
}

// runChaosLossy: chaos over per-node TCP endpoints with message drop,
// delay, and periodic mid-stream connection kills. A lost protocol
// frame can wedge a node's request slot forever (the abandoned ticket
// stays in flight), so a node stops after its first failed acquire —
// the assertion is safety only: every grant the monitor does see must
// be non-overlapping, and the warmed-up fabric must have produced
// real grants before and during the storm.
func runChaosLossy(t *testing.T, factory alg.Factory) {
	const n, m = 4, 6
	iters := 10
	window := time.Second
	if testing.Short() {
		iters = 4
		window = 400 * time.Millisecond
	}
	trs := make([]*transport.TCP, n)
	chs := make([]*transport.Chaos, n)
	addrs := make([]string, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetDialWindow(2 * time.Second)
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	cs := make([]*Cluster, n)
	for i := range cs {
		if err := trs[i].Connect(addrs); err != nil {
			t.Fatal(err)
		}
		chs[i] = transport.NewChaos(trs[i], 0xbad5eed+int64(i))
		c, err := New(Config{
			Nodes: n, Resources: m,
			Transport: chs[i],
			Local:     []int{i},
			Wire:      transport.WireOptions{Delta: true},
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	defer func() {
		for _, c := range cs {
			c.Close() // errors expected: the fabric was being killed on purpose
		}
	}()

	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) {
		t.Errorf("%v", v)
	})

	// Warmup on the clean fabric: every node acquires successfully
	// twice, so the token state, the delta caches, and the connection
	// mesh are all live before the storm starts.
	warm := 0
	for node := 0; node < n; node++ {
		for k := 0; k < 2; k++ {
			rs := resource.NewSet(m)
			ids := []int{node % m, (node + 1) % m}
			for _, id := range ids {
				rs.Add(resource.ID(id))
			}
			monMu.Lock()
			mon.Requested(network.NodeID(node), now())
			monMu.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			release, err := cs[node].Acquire(ctx, node, ids...)
			cancel()
			if err != nil {
				t.Fatalf("node %d: warmup acquire: %v", node, err)
			}
			monMu.Lock()
			mon.Granted(network.NodeID(node), rs, now())
			mon.Released(network.NodeID(node), rs, now())
			monMu.Unlock()
			release()
			warm++
		}
	}
	time.Sleep(100 * time.Millisecond) // let warmup traffic drain before arming

	for _, ch := range chs {
		ch.SetFaults(transport.Faults{Drop: 0.02, DelayMax: 300 * time.Microsecond})
	}
	killDone := make(chan struct{})
	var kills atomic.Int64
	go func() {
		defer close(killDone)
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			time.Sleep(120 * time.Millisecond)
			for _, ch := range chs {
				kills.Add(int64(ch.KillConns()))
			}
		}
	}()

	// Storm phase. The monitor only learns about an acquire once it
	// has succeeded — Requested and Granted are recorded back to back
	// — because a timed-out acquire would otherwise leave a pending
	// entry behind and trip the hypothesis-4 and quiescence checks as
	// false positives. Safety is unaffected: Granted is still recorded
	// after the grant and Released strictly before the release, so any
	// overlap the monitor reports is a real overlap.
	var granted, wedged atomic.Int64
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)*6151 + 3))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(3))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				release, err := cs[node].Acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					// A dropped frame wedged this node's request slot;
					// nothing more can be driven through it.
					wedged.Add(1)
					return
				}
				monMu.Lock()
				mon.Requested(network.NodeID(node), now())
				mon.Granted(network.NodeID(node), rs, now())
				monMu.Unlock()
				granted.Add(1)

				if d := rng.Intn(150); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(network.NodeID(node), rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	<-killDone
	for _, ch := range chs {
		ch.StopFaults()
	}

	monMu.Lock()
	defer monMu.Unlock()
	// No CheckQuiescent here: wedged nodes legitimately hold pending
	// requests that will never be granted — that is the injected
	// fault, not a violation. Safety was checked on every event above.
	if got := mon.Grants(); got < warm {
		t.Errorf("monitor saw %d grants, want at least the %d warmup grants", got, warm)
	}
	var dropped int64
	for _, ch := range chs {
		dropped += ch.ChaosStats().Dropped
	}
	t.Logf("storm: %d grants, %d nodes wedged, %d conns killed, %d messages dropped",
		granted.Load(), wedged.Load(), kills.Load(), dropped)
}

// TestRedialFreshDeltaState is the kill-then-redial regression for the
// delta-encoded wire path: after a live connection is forcibly aborted
// mid-deployment, the redialed connection must start from fresh delta
// state on both sides — the decoder must never resync-error on the
// first post-redial frame because a stale cache survived the old conn.
func TestRedialFreshDeltaState(t *testing.T) {
	const n, m = 2, 4
	factory := core.NewFactory(core.WithLoan())
	trs := make([]*transport.TCP, n)
	addrs := make([]string, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	cs := make([]*Cluster, n)
	for i := range cs {
		if err := trs[i].Connect(addrs); err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{
			Nodes: n, Resources: m,
			Transport: trs[i],
			Local:     []int{i},
			Wire:      transport.WireOptions{Delta: true},
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()

	acquire := func(node int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		release, err := cs[node].Acquire(ctx, node, 0, 1, 2)
		if err != nil {
			return err
		}
		release()
		return nil
	}

	// Phase 1: overlapping acquires alternating between the nodes force
	// token transfers both ways, warming the delta caches on both
	// directions of the mesh. The last acquirer is node 1, so phase 2
	// is guaranteed to need the wire again.
	for i := 0; i < 6; i++ {
		if err := acquire(i % 2); err != nil {
			t.Fatalf("warmup acquire %d: %v", i, err)
		}
	}
	time.Sleep(150 * time.Millisecond) // quiesce: no protocol frames in flight

	// Kill every live connection, then absorb the one lost write per
	// corpse with a sacrificial frame: the conn table still holds the
	// killed conn (AbortConns does not mark it broken — discovery is
	// the bug under test), so this append hits the corpse, the flush
	// fails, and the conn is swept. No protocol frame pays the price.
	for i, tr := range trs {
		if killed := tr.AbortConns(); killed != 1 {
			t.Fatalf("endpoint %d: AbortConns killed %d conns, want 1", i, killed)
		}
		tr.Send(network.NodeID(i), network.NodeID(1-i),
			transporttest.Msg{K: transporttest.KindA, From: network.NodeID(i), Seq: 99})
	}
	for i, tr := range trs {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, open := tr.Negotiated(addrs[1-i]); !open {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("endpoint %d: killed conn never swept", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 2: the same overlapping pattern over redialed connections.
	// Every acquire moves tokens across a fresh conn whose first frames
	// are the delta preamble plus full state — if any stale delta cache
	// survived the kill, the decoder resync-errors and acquires hang.
	for i := 0; i < 6; i++ {
		if err := acquire(i % 2); err != nil {
			t.Fatalf("post-redial acquire %d: %v", i, err)
		}
	}
	for i, tr := range trs {
		if err := tr.Err(); err != nil && strings.Contains(err.Error(), "resync") {
			t.Fatalf("endpoint %d: delta resync after redial: %v", i, err)
		}
	}
}
