package live

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/bouabdallah"
	"mralloc/internal/core"
	"mralloc/internal/incremental"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/verify"
)

// TestChaosStress drives all four live-capable algorithms through the
// fault-injecting transport wrapper, in two profiles with different
// fault menus but the same contract — safety AND liveness:
//
//   - lossless: delay plus directed partitions over the in-process
//     fabric. Partitions buffer FIFO and heal, so the channel
//     hypotheses (reliable, FIFO, no duplication) hold end to end by
//     construction.
//
//   - lossy: drop plus duplication plus delay plus mid-stream
//     connection kills over the per-node TCP fabric, with the
//     reliable per-link wrapper in the stack (live → Reliable →
//     Chaos → TCP). Retransmission refills drops and kill windows,
//     receiver-side dedup cancels duplicates — hypothesis 1 is
//     restored end to end, so every acquire must still complete.
func TestChaosStress(t *testing.T) {
	for algName, factory := range liveAlgorithms() {
		factory := factory
		t.Run(algName+"/lossless", func(t *testing.T) {
			t.Parallel()
			runChaosLossless(t, factory)
		})
	}
	for algName, factory := range chaosLossyFactories() {
		factory := factory
		t.Run(algName+"/lossy", func(t *testing.T) {
			t.Parallel()
			runChaosLossy(t, factory)
		})
	}
}

// chaosLossyFactories is liveAlgorithms with token leases armed on the
// core variants: lease heartbeats, grant echoes and (were a holder to
// actually die) regeneration traffic all share the storm with protocol
// frames. The TTL is wide enough that chaos-induced delay never lapses
// a live holder's lease — a spurious regeneration would be a real bug,
// and the safety monitor would catch the resulting double grant.
func chaosLossyFactories() map[string]alg.Factory {
	withLease := func(o core.Options) core.Options {
		o.LeaseTTL = 250 * sim.Millisecond
		return o
	}
	return map[string]alg.Factory{
		"incremental":     incremental.NewFactory(),
		"bouabdallah":     bouabdallah.NewFactory(),
		"counter-no-loan": core.NewFactory(withLease(core.WithoutLoan())),
		"counter-loan":    core.NewFactory(withLease(core.WithLoan())),
	}
}

// runChaosLossless: chaos over the in-process fabric with per-message
// delay and a roaming directed partition. Every acquire must still be
// granted — the fault window only slows the fabric down, it never
// loses anything.
func runChaosLossless(t *testing.T, factory alg.Factory) {
	const n, m = 6, 8
	iters := 12
	window := 1200 * time.Millisecond
	if testing.Short() {
		iters = 5
		window = 500 * time.Millisecond
	}
	ch := transport.NewChaos(transport.NewMem(n, 0), 0x10c4)
	c, err := New(Config{Nodes: n, Resources: m, Transport: ch}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch.SetFaults(transport.Faults{DelayMax: 2 * time.Millisecond})

	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) {
		t.Errorf("%v", v)
	})

	// The partitioner severs one directed link at a time, holds it for
	// a few tens of milliseconds, heals, and moves on — asymmetric
	// outages (A→B dark while B→A flows) roam across the cluster for
	// the whole fault window.
	partDone := make(chan struct{})
	go func() {
		defer close(partDone)
		rng := rand.New(rand.NewSource(7))
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			from := network.NodeID(rng.Intn(n))
			to := network.NodeID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			ch.Partition(from, to)
			time.Sleep(time.Duration(20+rng.Intn(50)) * time.Millisecond)
			ch.Heal(from, to)
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)*104729 + 1))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(3))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				monMu.Lock()
				mon.Requested(network.NodeID(node), now())
				monMu.Unlock()

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				release, err := c.Acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					t.Errorf("node %d iter %d: acquire %v: %v (liveness under lossless faults)", node, i, ids, err)
					return
				}
				monMu.Lock()
				mon.Granted(network.NodeID(node), rs, now())
				monMu.Unlock()

				if d := rng.Intn(150); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(network.NodeID(node), rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	<-partDone

	// Fault window closed: heal everything, then probe liveness on a
	// clean fabric — one more monitored acquire per node must succeed
	// promptly.
	ch.StopFaults()
	for node := 0; node < n; node++ {
		rs := resource.NewSet(m)
		rs.Add(resource.ID(node % m))
		monMu.Lock()
		mon.Requested(network.NodeID(node), now())
		monMu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		release, err := c.Acquire(ctx, node, node%m)
		cancel()
		if err != nil {
			t.Fatalf("node %d: post-window liveness probe: %v", node, err)
		}
		monMu.Lock()
		mon.Granted(network.NodeID(node), rs, now())
		mon.Released(network.NodeID(node), rs, now())
		monMu.Unlock()
		release()
	}

	monMu.Lock()
	defer monMu.Unlock()
	mon.CheckQuiescent(now())
	if got, want := mon.Grants(), n*(iters+1); got != want {
		t.Errorf("monitor saw %d grants, want %d", got, want)
	}
	if st := ch.ChaosStats(); st.Delayed == 0 {
		t.Errorf("fault window injected nothing: %+v", st)
	}
}

// runChaosLossy: chaos over per-node TCP endpoints with message drop,
// duplication, delay, and periodic mid-stream connection kills. The
// reliable wrapper sits between the cluster and the chaos layer, so
// every lost or duplicated frame is healed below the protocol:
// acquires are required to succeed (a wedged request slot is now a
// liveness failure, not tolerated collateral), and after the storm a
// probe round plus a quiescence check close the books. The core
// variants run with leases armed, exercising heartbeat and grant-echo
// traffic under the same faults.
func runChaosLossy(t *testing.T, factory alg.Factory) {
	const n, m = 4, 6
	iters := 10
	window := time.Second
	if testing.Short() {
		iters = 4
		window = 400 * time.Millisecond
	}
	trs := make([]*transport.TCP, n)
	chs := make([]*transport.Chaos, n)
	rels := make([]*transport.Reliable, n)
	addrs := make([]string, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetDialWindow(2 * time.Second)
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	cs := make([]*Cluster, n)
	for i := range cs {
		if err := trs[i].Connect(addrs); err != nil {
			t.Fatal(err)
		}
		chs[i] = transport.NewChaos(trs[i], 0xbad5eed+int64(i))
		rels[i] = transport.NewReliable(chs[i])
		// Tight retransmission keeps recovery latency well inside the
		// acquire timeout even when several frames in a row are lost.
		rels[i].SetRetransmit(2*time.Millisecond, 50*time.Millisecond)
		c, err := New(Config{
			Nodes: n, Resources: m,
			Transport: rels[i],
			Local:     []int{i},
			Wire:      transport.WireOptions{Delta: true},
			Tick:      20 * time.Millisecond,
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	defer func() {
		for _, c := range cs {
			c.Close() // errors expected: the fabric was being killed on purpose
		}
	}()

	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) {
		t.Errorf("%v", v)
	})

	// Warmup on the clean fabric: every node acquires successfully
	// twice, so the token state, the delta caches, and the connection
	// mesh are all live before the storm starts.
	warm := 0
	for node := 0; node < n; node++ {
		for k := 0; k < 2; k++ {
			rs := resource.NewSet(m)
			ids := []int{node % m, (node + 1) % m}
			for _, id := range ids {
				rs.Add(resource.ID(id))
			}
			monMu.Lock()
			mon.Requested(network.NodeID(node), now())
			monMu.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			release, err := cs[node].Acquire(ctx, node, ids...)
			cancel()
			if err != nil {
				t.Fatalf("node %d: warmup acquire: %v", node, err)
			}
			monMu.Lock()
			mon.Granted(network.NodeID(node), rs, now())
			mon.Released(network.NodeID(node), rs, now())
			monMu.Unlock()
			release()
			warm++
		}
	}
	time.Sleep(100 * time.Millisecond) // let warmup traffic drain before arming

	for _, ch := range chs {
		ch.SetFaults(transport.Faults{Drop: 0.05, Dup: 0.05, DelayMax: 300 * time.Microsecond})
	}
	killDone := make(chan struct{})
	var kills atomic.Int64
	go func() {
		defer close(killDone)
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			time.Sleep(120 * time.Millisecond)
			for _, ch := range chs {
				kills.Add(int64(ch.KillConns()))
			}
		}
	}()

	// Storm phase. With retransmission under the protocol, a dropped
	// frame no longer wedges a request slot — every acquire is
	// required to complete, and the full Requested/Granted/Released
	// sequence is monitored just like the lossless profile.
	const acquireTimeout = 60 * time.Second
	var granted atomic.Int64
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)*6151 + 3))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(3))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				monMu.Lock()
				mon.Requested(network.NodeID(node), now())
				monMu.Unlock()

				ctx, cancel := context.WithTimeout(context.Background(), acquireTimeout)
				release, err := cs[node].Acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					t.Errorf("node %d iter %d: acquire %v: %v (liveness under lossy faults)", node, i, ids, err)
					return
				}
				monMu.Lock()
				mon.Granted(network.NodeID(node), rs, now())
				monMu.Unlock()
				granted.Add(1)

				if d := rng.Intn(150); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(network.NodeID(node), rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	<-killDone
	for _, ch := range chs {
		ch.StopFaults()
	}

	// Nothing may still be pending once every storm acquire returned:
	// the recovery horizon is the acquire timeout itself.
	monMu.Lock()
	mon.CheckLiveness(now(), sim.Time(acquireTimeout))
	monMu.Unlock()

	// Storm over, faults off: one monitored probe per node on the
	// healed fabric must succeed promptly, then the run is quiescent.
	for node := 0; node < n; node++ {
		rs := resource.NewSet(m)
		rs.Add(resource.ID(node % m))
		monMu.Lock()
		mon.Requested(network.NodeID(node), now())
		monMu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		release, err := cs[node].Acquire(ctx, node, node%m)
		cancel()
		if err != nil {
			t.Fatalf("node %d: post-storm liveness probe: %v", node, err)
		}
		monMu.Lock()
		mon.Granted(network.NodeID(node), rs, now())
		mon.Released(network.NodeID(node), rs, now())
		monMu.Unlock()
		release()
	}

	monMu.Lock()
	defer monMu.Unlock()
	mon.CheckQuiescent(now())
	if got, want := mon.Grants(), warm+n*iters+n; got != want {
		t.Errorf("monitor saw %d grants, want %d", got, want)
	}
	var cst transport.ChaosStats
	for _, ch := range chs {
		s := ch.ChaosStats()
		cst.Dropped += s.Dropped
		cst.Duplicated += s.Duplicated
		cst.Killed += s.Killed
	}
	var rst transport.RelStats
	for _, r := range rels {
		s := r.RelStats()
		rst.Retransmits += s.Retransmits
		rst.Acked += s.Acked
		rst.DupsDropped += s.DupsDropped
		rst.Gaps += s.Gaps
	}
	if cst.Dropped == 0 {
		t.Errorf("fault window dropped nothing: %+v", cst)
	}
	if rst.Retransmits == 0 {
		t.Errorf("drops injected but nothing retransmitted: %+v", rst)
	}
	t.Logf("storm: %d grants; chaos dropped=%d dup=%d conns killed=%d (+%d aborts); recovery retransmits=%d acked=%d dups dropped=%d gaps=%d",
		granted.Load(), cst.Dropped, cst.Duplicated, cst.Killed, kills.Load(),
		rst.Retransmits, rst.Acked, rst.DupsDropped, rst.Gaps)
}

// TestRedialFreshDeltaState is the kill-then-redial regression for the
// delta-encoded wire path: after a live connection is forcibly aborted
// mid-deployment, the redialed connection must start from fresh delta
// state on both sides — the decoder must never resync-error on the
// first post-redial frame because a stale cache survived the old conn.
func TestRedialFreshDeltaState(t *testing.T) {
	const n, m = 2, 4
	factory := core.NewFactory(core.WithLoan())
	trs := make([]*transport.TCP, n)
	addrs := make([]string, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	cs := make([]*Cluster, n)
	for i := range cs {
		if err := trs[i].Connect(addrs); err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{
			Nodes: n, Resources: m,
			Transport: trs[i],
			Local:     []int{i},
			Wire:      transport.WireOptions{Delta: true},
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()

	acquire := func(node int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		release, err := cs[node].Acquire(ctx, node, 0, 1, 2)
		if err != nil {
			return err
		}
		release()
		return nil
	}

	// Phase 1: overlapping acquires alternating between the nodes force
	// token transfers both ways, warming the delta caches on both
	// directions of the mesh. The last acquirer is node 1, so phase 2
	// is guaranteed to need the wire again.
	for i := 0; i < 6; i++ {
		if err := acquire(i % 2); err != nil {
			t.Fatalf("warmup acquire %d: %v", i, err)
		}
	}
	time.Sleep(150 * time.Millisecond) // quiesce: no protocol frames in flight

	// Kill every live connection, then absorb the one lost write per
	// corpse with a sacrificial frame: the conn table still holds the
	// killed conn (AbortConns does not mark it broken — discovery is
	// the bug under test), so this append hits the corpse, the flush
	// fails, and the conn is swept. No protocol frame pays the price.
	for i, tr := range trs {
		if killed := tr.AbortConns(); killed != 1 {
			t.Fatalf("endpoint %d: AbortConns killed %d conns, want 1", i, killed)
		}
		tr.Send(network.NodeID(i), network.NodeID(1-i),
			transporttest.Msg{K: transporttest.KindA, From: network.NodeID(i), Seq: 99})
	}
	for i, tr := range trs {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, open := tr.Negotiated(addrs[1-i]); !open {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("endpoint %d: killed conn never swept", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 2: the same overlapping pattern over redialed connections.
	// Every acquire moves tokens across a fresh conn whose first frames
	// are the delta preamble plus full state — if any stale delta cache
	// survived the kill, the decoder resync-errors and acquires hang.
	for i := 0; i < 6; i++ {
		if err := acquire(i % 2); err != nil {
			t.Fatalf("post-redial acquire %d: %v", i, err)
		}
	}
	for i, tr := range trs {
		if err := tr.Err(); err != nil && strings.Contains(err.Error(), "resync") {
			t.Fatalf("endpoint %d: delta resync after redial: %v", i, err)
		}
	}
}
