package live

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/bouabdallah"
	"mralloc/internal/core"
	"mralloc/internal/incremental"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
	"mralloc/internal/verify"
)

// liveAlgorithms are the four algorithms that can run on a live
// cluster: fully distributed state machines, all state in tokens and
// messages (the shared-memory comparator is simulation-only).
func liveAlgorithms() map[string]alg.Factory {
	return map[string]alg.Factory{
		"incremental":     incremental.NewFactory(),
		"bouabdallah":     bouabdallah.NewFactory(),
		"counter-no-loan": core.NewFactory(core.WithoutLoan()),
		"counter-loan":    core.NewFactory(core.WithLoan()),
	}
}

// fabric abstracts "one in-process cluster" versus "n clusters over
// TCP loopback, one per node" so the same battery drives both.
type fabric struct {
	name string
	// buildPolicy returns Acquire/session indirections, a per-process
	// stats aggregate, and a close function, with the given admission
	// policy and aging threshold on every node.
	buildPolicy func(t *testing.T, n, m int, f alg.Factory, p serve.Policy, aging time.Duration) *system
}

// build is buildPolicy at the default (FIFO) admission policy.
func (fb fabric) build(t *testing.T, n, m int, f alg.Factory) *system {
	return fb.buildPolicy(t, n, m, f, serve.FIFO, 0)
}

type system struct {
	acquire func(ctx context.Context, node int, rs ...int) (func(), error)
	session func(node int) (*Session, error)
	stats   func() map[string]int64
	close   func()
}

func memFabric() fabric {
	return fabric{name: "mem", buildPolicy: func(t *testing.T, n, m int, f alg.Factory, p serve.Policy, aging time.Duration) *system {
		c, err := New(Config{Nodes: n, Resources: m, Policy: p, Aging: aging}, f)
		if err != nil {
			t.Fatal(err)
		}
		return &system{acquire: c.Acquire, session: c.NewSession, stats: c.Stats, close: c.Close}
	}}
}

// shardedMemFabric splits the universe into g shards on the in-process
// fabric; the battery's random global sets then exercise cross-shard
// composition (ordered or two-phase) alongside single-shard requests.
func shardedMemFabric(g int, twoPhase bool) fabric {
	name := fmt.Sprintf("mem-sharded-g%d", g)
	if twoPhase {
		name += "-2p"
	}
	return fabric{name: name, buildPolicy: func(t *testing.T, n, m int, f alg.Factory, p serve.Policy, aging time.Duration) *system {
		c, err := New(Config{Nodes: n, Resources: m, Policy: p, Aging: aging, Shards: g, CrossShardTwoPhase: twoPhase}, f)
		if err != nil {
			t.Fatal(err)
		}
		return &system{acquire: c.Acquire, session: c.NewSession, stats: c.Stats, close: c.Close}
	}}
}

// tcpFabric hosts every node in its own cluster instance over TCP
// loopback — the maximally distributed deployment, each endpoint a
// stand-in for one OS process, every message through the wire codec.
func tcpFabric() fabric { return tcpWireFabric("tcp", nil) }

// tcpDeltaFabric is tcpFabric with the whole payload-path armory on:
// delta-encoded token state, vectored egress, and an adaptive flush
// delay — the invariant battery must hold bit-exact protocol behavior
// under all of them.
func tcpDeltaFabric() fabric {
	return tcpWireFabric("tcp-delta", func(int) transport.WireOptions {
		return transport.WireOptions{
			Delta:         true,
			FlushDelay:    50 * time.Microsecond,
			FlushDelayMax: 2 * time.Millisecond,
		}
	})
}

// tcpHeteroFabric mixes builds: even nodes run the full feature set
// (delta, vectored egress, adaptive flush), odd nodes a feature-
// disabled build. Every cross-parity link must negotiate down to the
// common subset in its hello exchange, and the invariant battery must
// hold over the mixture.
func tcpHeteroFabric() fabric {
	return tcpWireFabric("tcp-hetero", func(i int) transport.WireOptions {
		if i%2 == 0 {
			return transport.WireOptions{
				Delta:         true,
				FlushDelay:    50 * time.Microsecond,
				FlushDelayMax: 2 * time.Millisecond,
			}
		}
		return transport.WireOptions{NoVectored: true}
	})
}

// tcpShardedFabric is the per-node TCP topology with the universe
// split into g shards on every endpoint: shard traffic rides tagged
// frames and per-shard codec contexts over the same connections.
func tcpShardedFabric(g int) fabric {
	return tcpShardedWireFabric(fmt.Sprintf("tcp-sharded-g%d", g), g, nil)
}

// tcpWireFabric builds the per-node TCP topology with wireFor(i)
// tuning node i's endpoint (nil leaves every endpoint at defaults).
func tcpWireFabric(name string, wireFor func(i int) transport.WireOptions) fabric {
	return tcpShardedWireFabric(name, 0, wireFor)
}

func tcpShardedWireFabric(name string, shards int, wireFor func(i int) transport.WireOptions) fabric {
	return fabric{name: name, buildPolicy: func(t *testing.T, n, m int, f alg.Factory, p serve.Policy, aging time.Duration) *system {
		trs := make([]*transport.TCP, n)
		addrs := make([]string, n)
		for i := range trs {
			tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
			if err != nil {
				t.Fatal(err)
			}
			trs[i] = tr
			addrs[i] = tr.Addr()
		}
		cs := make([]*Cluster, n)
		for i := range cs {
			if err := trs[i].Connect(addrs); err != nil {
				t.Fatal(err)
			}
			var wire transport.WireOptions
			if wireFor != nil {
				wire = wireFor(i)
			}
			c, err := New(Config{Nodes: n, Resources: m, Transport: trs[i], Local: []int{i}, Policy: p, Aging: aging, Wire: wire, Shards: shards}, f)
			if err != nil {
				t.Fatal(err)
			}
			cs[i] = c
		}
		return &system{
			acquire: func(ctx context.Context, node int, rs ...int) (func(), error) {
				return cs[node].Acquire(ctx, node, rs...)
			},
			session: func(node int) (*Session, error) {
				return cs[node].NewSession(node)
			},
			stats: func() map[string]int64 {
				total := make(map[string]int64)
				for _, c := range cs {
					for k, v := range c.Stats() {
						total[k] += v
					}
				}
				return total
			},
			close: func() {
				for _, c := range cs {
					c.Close()
				}
			},
		}
	}}
}

// TestVerifiedStress is the randomized safety/liveness battery: random
// Acquire/Release of random resource sets on N≥8 nodes, every event
// checked by verify.Monitor — the same invariant checker that guards
// the simulations — across all four live-capable algorithms, over both
// the in-process and the TCP-loopback fabric.
func TestVerifiedStress(t *testing.T) {
	fabrics := []fabric{
		memFabric(), tcpFabric(), tcpDeltaFabric(), tcpHeteroFabric(),
		shardedMemFabric(4, false), shardedMemFabric(4, true), tcpShardedFabric(4),
	}
	for algName, factory := range liveAlgorithms() {
		for _, fb := range fabrics {
			factory, fb := factory, fb
			t.Run(algName+"/"+fb.name, func(t *testing.T) {
				t.Parallel()
				runVerifiedStress(t, fb, factory)
			})
		}
	}
}

func runVerifiedStress(t *testing.T, fb fabric, factory alg.Factory) {
	const n, m = 8, 12
	iters := 60
	if testing.Short() {
		iters = 20
	}
	sys := fb.build(t, n, m, factory)
	defer sys.close()

	// verify.Monitor is single-threaded by design (the simulation is
	// sequential); here events come from n goroutines, so one mutex
	// serializes them. Event ordering guarantees no false positives:
	// Granted is recorded after Acquire returns and Released strictly
	// before the release call, so a recorded overlap is a real overlap.
	var monMu sync.Mutex
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	mon := verify.New(m, func(v verify.Violation) {
		t.Errorf("%v", v)
	})

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(node)*7919 + 13))
			for i := 0; i < iters; i++ {
				rs := resource.Sample(rng, m, 1+rng.Intn(4))
				ids := make([]int, 0, rs.Len())
				rs.ForEach(func(r resource.ID) { ids = append(ids, int(r)) })

				monMu.Lock()
				mon.Requested(network.NodeID(node), now())
				monMu.Unlock()

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				release, err := sys.acquire(ctx, node, ids...)
				cancel()
				if err != nil {
					t.Errorf("node %d iter %d: acquire %v: %v (liveness)", node, i, ids, err)
					return
				}
				monMu.Lock()
				mon.Granted(network.NodeID(node), rs, now())
				monMu.Unlock()

				if d := rng.Intn(200); d > 0 {
					time.Sleep(time.Duration(d) * time.Microsecond)
				}

				monMu.Lock()
				mon.Released(network.NodeID(node), rs, now())
				monMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()

	monMu.Lock()
	defer monMu.Unlock()
	mon.CheckQuiescent(now())
	if got, want := mon.Grants(), n*iters; got != want {
		t.Errorf("monitor saw %d grants, want %d", got, want)
	}
	var total int64
	for _, v := range sys.stats() {
		total += v
	}
	if total == 0 {
		t.Error("no protocol messages counted")
	}
}

// TestLocalMustMatchTransportHosting: a Local set the transport does
// not host must be rejected with an error (and the transport closed),
// never a Bind panic.
func TestLocalMustMatchTransportHosting(t *testing.T) {
	tr, err := transport.ListenTCP("127.0.0.1:0", 8, 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// nil Local expands to all 8 nodes, but the endpoint hosts only 4.
	if _, err := New(Config{Nodes: 8, Resources: 4, Transport: tr}, core.NewFactory(core.WithLoan())); err == nil {
		t.Fatal("cluster accepted nodes its transport does not host")
	}
	// New owns the transport even on the error path: the listener must
	// be gone, so the same address can be bound again.
	if ln, err := transport.ListenTCP(tr.Addr(), 8, 0); err != nil {
		t.Fatalf("transport leaked by rejected config: %v", err)
	} else {
		ln.Close()
	}
}

// TestTCPClusterEquivalence runs one deterministic little protocol
// exchange on both fabrics and checks the TCP cluster behaves exactly
// like the in-process one where the protocol is deterministic: same
// grants, and protocol traffic of the same kinds.
func TestTCPClusterEquivalence(t *testing.T) {
	for algName, factory := range liveAlgorithms() {
		factory := factory
		t.Run(algName, func(t *testing.T) {
			t.Parallel()
			kinds := make([]map[string]bool, 0, 2)
			for _, fb := range []fabric{memFabric(), tcpFabric()} {
				const n, m = 3, 6
				sys := fb.build(t, n, m, factory)
				// A fixed sequential script: every node acquires an
				// overlapping pair, one after another.
				for node := 0; node < n; node++ {
					release, err := sys.acquire(context.Background(), node, node%m, (node+1)%m)
					if err != nil {
						t.Fatalf("%s: node %d: %v", fb.name, node, err)
					}
					release()
				}
				seen := make(map[string]bool)
				for k, v := range sys.stats() {
					if v > 0 {
						seen[k] = true
					}
				}
				sys.close()
				kinds = append(kinds, seen)
			}
			for k := range kinds[0] {
				if !kinds[1][k] {
					t.Errorf("kind %s seen in-process but not over TCP", k)
				}
			}
			for k := range kinds[1] {
				if !kinds[0][k] {
					t.Errorf("kind %s seen over TCP but not in-process", k)
				}
			}
		})
	}
}

// TestMultiProcessSplitCluster runs a 2-endpoint split (4 nodes each)
// — the deployment shape of two mrallocd daemons — and checks
// cross-process mutual exclusion directly with a shared-integer probe.
func TestMultiProcessSplitCluster(t *testing.T) {
	const n, m = 8, 4
	f := core.NewFactory(core.WithLoan())
	trA, err := transport.ListenTCP("127.0.0.1:0", n, 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := transport.ListenTCP("127.0.0.1:0", n, 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		if i < 4 {
			addrs[i] = trA.Addr()
		} else {
			addrs[i] = trB.Addr()
		}
	}
	if err := trA.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := trB.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Nodes: n, Resources: m, Transport: trA, Local: []int{0, 1, 2, 3}}, f)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Nodes: n, Resources: m, Transport: trB, Local: []int{4, 5, 6, 7}}, f)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if a.Local(4) || !a.Local(0) || b.Local(0) || !b.Local(4) {
		t.Fatal("Local() misreports hosting")
	}
	if _, err := a.Acquire(context.Background(), 4, 0); err == nil {
		t.Fatal("acquired through a cluster instance that does not host the node")
	}

	holders := make([]int32, m)
	var probeMu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, n)
	for node := 0; node < n; node++ {
		node := node
		c := a
		if node >= 4 {
			c = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				r1 := (node + i) % m
				r2 := (node + i + 1) % m
				release, err := c.Acquire(context.Background(), node, r1, r2)
				if err != nil {
					errc <- fmt.Errorf("node %d: %w", node, err)
					return
				}
				probeMu.Lock()
				for _, r := range []int{r1, r2} {
					holders[r]++
					if holders[r] != 1 {
						errc <- fmt.Errorf("resource %d has %d holders (safety, cross-process)", r, holders[r])
					}
				}
				probeMu.Unlock()
				time.Sleep(100 * time.Microsecond)
				probeMu.Lock()
				for _, r := range []int{r1, r2} {
					holders[r]--
				}
				probeMu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
