package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
)

// ErrSessionClosed is returned by Acquire on a closed session.
var ErrSessionClosed = errors.New("live: session closed")

// ErrSessionBusy is returned when a session's Acquire overlaps another
// still in flight: a session is one client's serialized stream of
// requests, and multiplexing happens across sessions, not within one.
var ErrSessionBusy = errors.New("live: session already has an acquire in flight")

// Session is one client's handle onto a node: a serialized stream of
// Acquires multiplexed with every other session of the node through
// the admission scheduler. Any number of sessions may be open on one
// node; each admits at most one request at a time into the protocol
// (the paper's hypothesis 4 holds per node, below the sessions).
//
// Sessions are safe for concurrent use in the sense that misuse is
// detected (overlapping Acquires fail with ErrSessionBusy), but a
// session models one logical client — open more sessions for more
// concurrency.
type Session struct {
	c    *Cluster
	node int
	id   uint64

	busy   atomic.Bool
	closed atomic.Bool

	grants atomic.Int64
}

// NewSession opens a session on node id. Only locally hosted nodes
// serve sessions.
func (c *Cluster) NewSession(node int) (*Session, error) {
	if !c.Local(node) {
		return nil, fmt.Errorf("live: no local node %d", node)
	}
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	c.seqMu.Lock()
	c.sessSeq++
	id := c.sessSeq
	c.seqMu.Unlock()
	return &Session{c: c, node: node, id: id}, nil
}

// ID reports the session's cluster-unique identifier.
func (s *Session) ID() uint64 { return s.id }

// Node reports the node the session is attached to.
func (s *Session) Node() int { return s.node }

// Grants reports how many Acquires this session has completed.
func (s *Session) Grants() int64 { return s.grants.Load() }

// Close invalidates the session: subsequent Acquires fail with
// ErrSessionClosed. It does not interrupt an Acquire already in flight
// (cancel its context for that) and does not revoke a held grant.
func (s *Session) Close() { s.closed.Store(true) }

// Acquire blocks until the session holds exclusive access to every
// resource in opts, then returns the release function (call it exactly
// once; it is idempotent). Requests from all of a node's sessions
// queue in the admission scheduler and enter the protocol one at a
// time under the cluster's policy; aging guarantees no session starves.
//
// On a sharded cluster the set is split along shard boundaries and
// each part is acquired from its shard's allocator. A set inside one
// shard is a single protocol request, exactly like a flat acquire; a
// set spanning shards composes them — shards taken one at a time in
// ascending shard order (deadlock-free: every session walks shards in
// the same order), or all at once with timeout-and-retry under
// Config.CrossShardTwoPhase. The grant is all-or-nothing either way:
// Acquire returns only when every part is held, and any failure hands
// back whatever was assembled.
//
// If ctx ends first, the request is withdrawn — immediately when still
// queued; by handing the grant straight back when the protocol has
// already committed to it (a grant cannot be revoked mid-protocol).
// Either way Acquire returns promptly with ctx.Err(). On a closed
// cluster it returns ErrClosed.
func (s *Session) Acquire(ctx context.Context, opts serve.AcquireOpts) (func(), error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if !s.busy.CompareAndSwap(false, true) {
		return nil, ErrSessionBusy
	}
	defer s.busy.Store(false)

	if len(opts.Resources) == 0 {
		return nil, fmt.Errorf("live: empty resource set")
	}
	rs := resource.NewSet(s.c.cfg.Resources)
	for _, r := range opts.Resources {
		if r < 0 || r >= s.c.cfg.Resources {
			return nil, fmt.Errorf("live: no resource %d", r)
		}
		rs.Add(resource.ID(r))
	}
	deadline := opts.Deadline
	if deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
	}
	var dl sim.Time
	if !deadline.IsZero() {
		dl = sim.Time(deadline.Sub(s.c.start))
		if dl <= 0 {
			dl = 1 // already due: the nearest possible deadline, not "none"
		}
	}

	parts := s.c.smap.Split(rs)
	var release func()
	var err error
	switch {
	case len(parts) == 1:
		// Whole set inside one shard (every flat acquire is this case):
		// one protocol request, no composition.
		release, err = s.acquireOne(ctx, parts[0].Shard, parts[0].Local, dl)
	case s.c.cfg.CrossShardTwoPhase:
		release, err = s.acquireTwoPhase(ctx, parts, dl)
	default:
		release, err = s.acquireOrdered(ctx, parts, dl)
	}
	if err != nil {
		return nil, err
	}
	s.grants.Add(1)
	return release, nil
}

// acquireOne runs one part's protocol request on its shard's loop and
// waits for the grant — the flat Acquire path, parameterized by shard.
func (s *Session) acquireOne(ctx context.Context, shard int, rs resource.Set, dl sim.Time) (func(), error) {
	l := s.c.loops[shard][s.node]
	t := s.submit(l, rs, dl)
	if t == nil {
		return nil, ErrClosed
	}
	select {
	case <-t.granted:
		return s.releaseFunc(l, t), nil
	case err := <-t.aborted:
		return nil, err
	case <-ctx.Done():
		s.withdraw(l, t)
		return nil, ctx.Err()
	}
}

// acquireOrdered assembles a cross-shard set one shard at a time in
// ascending shard order (Split's order). Every session walks shards in
// the same order, so no cycle of sessions can each hold a shard the
// next one needs — the same argument that makes AcquireAll's ascending
// node order deadlock-free. A failure hands back the prefix already
// held, in reverse.
func (s *Session) acquireOrdered(ctx context.Context, parts []resource.ShardPart, dl sim.Time) (func(), error) {
	releases := make([]func(), 0, len(parts))
	unwind := func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}
	for _, p := range parts {
		rel, err := s.acquireOne(ctx, p.Shard, p.Local, dl)
		if err != nil {
			unwind()
			return nil, err
		}
		releases = append(releases, rel)
	}
	return unwind, nil
}

// Two-phase attempt pacing: an attempt that cannot assemble the full
// set within its window hands everything back and retries after a
// jittered backoff, so two sessions holding complementary halves
// cannot spin in lockstep forever.
const (
	twoPhaseBaseWait = 2 * time.Millisecond
	twoPhaseMaxWait  = 100 * time.Millisecond
)

// acquireTwoPhase requests every part in parallel and keeps the set
// only if all grants land before the attempt times out; otherwise it
// releases what it got, backs off, and tries again. Higher concurrency
// than the ordered walk when shards are uncontended, at the price of
// retry work when they are not.
func (s *Session) acquireTwoPhase(ctx context.Context, parts []resource.ShardPart, dl sim.Time) (func(), error) {
	wait := twoPhaseBaseWait
	for attempt := 0; ; attempt++ {
		tickets := make([]*ticket, len(parts))
		loops := make([]*loop, len(parts))
		for i, p := range parts {
			loops[i] = s.c.loops[p.Shard][s.node]
			if tickets[i] = s.submit(loops[i], p.Local, dl); tickets[i] == nil {
				for j := 0; j < i; j++ {
					s.withdraw(loops[j], tickets[j])
				}
				return nil, ErrClosed
			}
		}
		timer := time.NewTimer(wait + time.Duration(rand.Int63n(int64(wait))))
		held := make([]bool, len(parts))
		var permErr error
		timedOut := false
		for i, t := range tickets {
			if permErr != nil || timedOut {
				break
			}
			select {
			case <-t.granted:
				held[i] = true
			case err := <-t.aborted:
				permErr = err
			case <-ctx.Done():
				permErr = ctx.Err()
			case <-timer.C:
				timedOut = true
			}
		}
		timer.Stop()
		if permErr == nil && !timedOut {
			rels := make([]func(), len(parts))
			for i := range tickets {
				rels[i] = s.releaseFunc(loops[i], tickets[i])
			}
			return func() {
				for i := len(rels) - 1; i >= 0; i-- {
					rels[i]()
				}
			}, nil
		}
		// Hand everything back: release what landed, withdraw the rest
		// (a grant racing the withdrawal is released by the loop).
		for i := range tickets {
			if held[i] {
				s.releaseFunc(loops[i], tickets[i])()
			} else {
				s.withdraw(loops[i], tickets[i])
			}
		}
		if permErr != nil {
			return nil, permErr
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.c.closed:
			return nil, ErrClosed
		case <-time.After(time.Duration(rand.Int63n(int64(wait)))):
		}
		if wait *= 2; wait > twoPhaseMaxWait {
			wait = twoPhaseMaxWait
		}
	}
}

// submit builds and enqueues a ticket on one shard loop, returning nil
// once the cluster is closing.
func (s *Session) submit(l *loop, rs resource.Set, dl sim.Time) *ticket {
	t := &ticket{
		rs:      rs,
		granted: make(chan struct{}),
		aborted: make(chan error, 1),
	}
	t.item = serve.Item{Session: s.id, Size: rs.Len(), Deadline: dl, V: t}
	if !l.post(cmdSubmit{t: t}) {
		return nil
	}
	return t
}

// withdraw cancels a submitted ticket through its loop; the loop always
// answers (or the cluster is closing, which fails every ticket anyway).
func (s *Session) withdraw(l *loop, t *ticket) {
	done := make(chan struct{})
	if l.post(cmdCancel{t: t, done: done}) {
		select {
		case <-done:
		case <-s.c.closed:
		}
	}
}

// releaseFunc builds the exactly-once release closure for a granted
// ticket. On a closing cluster the release degrades to a no-op — the
// loop's shutdown path owns the unwind.
func (s *Session) releaseFunc(l *loop, t *ticket) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			done := make(chan struct{})
			if !l.post(cmdRelease{t: t, done: done}) {
				return
			}
			select {
			case <-done:
			case <-s.c.closed:
			}
		})
	}
}

// Acquire is the one-session convenience wrapper: it opens an
// ephemeral session on node id, performs a single Acquire, and closes
// the session when the grant is released. See Session.Acquire for the
// full semantics; concurrent Acquires on one node multiplex through
// the admission scheduler exactly like long-lived sessions.
func (c *Cluster) Acquire(ctx context.Context, id int, resources ...int) (func(), error) {
	s, err := c.NewSession(id)
	if err != nil {
		return nil, err
	}
	release, err := s.Acquire(ctx, serve.AcquireOpts{Resources: resources})
	if err != nil {
		s.Close()
		return nil, err
	}
	return func() {
		release()
		s.Close()
	}, nil
}

// ticket is one admission request in flight: scheduler item, protocol
// state, and the channels its session waits on. The loop goroutine
// owns every field after the submit; the session only reads granted
// and aborted.
type ticket struct {
	item serve.Item
	rs   resource.Set

	granted chan struct{} // closed by the loop when the CS is entered
	aborted chan error    // receives the terminal error instead

	admitted sim.Time // when the protocol Request was issued (loop only)

	// inCS and abandoned are loop-internal state: granted-but-not-yet
	// -released, and canceled-while-in-flight respectively.
	inCS      bool
	abandoned bool
}

// abort delivers a terminal error to the session (at most one is ever
// sent; the buffer makes the send safe when nobody is listening).
func (t *ticket) abort(err error) {
	select {
	case t.aborted <- err:
	default:
	}
}
