package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
)

// ErrSessionClosed is returned by Acquire on a closed session.
var ErrSessionClosed = errors.New("live: session closed")

// ErrSessionBusy is returned when a session's Acquire overlaps another
// still in flight: a session is one client's serialized stream of
// requests, and multiplexing happens across sessions, not within one.
var ErrSessionBusy = errors.New("live: session already has an acquire in flight")

// Session is one client's handle onto a node: a serialized stream of
// Acquires multiplexed with every other session of the node through
// the admission scheduler. Any number of sessions may be open on one
// node; each admits at most one request at a time into the protocol
// (the paper's hypothesis 4 holds per node, below the sessions).
//
// Sessions are safe for concurrent use in the sense that misuse is
// detected (overlapping Acquires fail with ErrSessionBusy), but a
// session models one logical client — open more sessions for more
// concurrency.
type Session struct {
	c    *Cluster
	l    *loop
	node int
	id   uint64

	busy   atomic.Bool
	closed atomic.Bool

	grants atomic.Int64
}

// NewSession opens a session on node id. Only locally hosted nodes
// serve sessions.
func (c *Cluster) NewSession(node int) (*Session, error) {
	if !c.Local(node) {
		return nil, fmt.Errorf("live: no local node %d", node)
	}
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	c.seqMu.Lock()
	c.sessSeq++
	id := c.sessSeq
	c.seqMu.Unlock()
	return &Session{c: c, l: c.loops[node], node: node, id: id}, nil
}

// ID reports the session's cluster-unique identifier.
func (s *Session) ID() uint64 { return s.id }

// Node reports the node the session is attached to.
func (s *Session) Node() int { return s.node }

// Grants reports how many Acquires this session has completed.
func (s *Session) Grants() int64 { return s.grants.Load() }

// Close invalidates the session: subsequent Acquires fail with
// ErrSessionClosed. It does not interrupt an Acquire already in flight
// (cancel its context for that) and does not revoke a held grant.
func (s *Session) Close() { s.closed.Store(true) }

// Acquire blocks until the session holds exclusive access to every
// resource in opts, then returns the release function (call it exactly
// once; it is idempotent). Requests from all of a node's sessions
// queue in the admission scheduler and enter the protocol one at a
// time under the cluster's policy; aging guarantees no session starves.
//
// If ctx ends first, the request is withdrawn — immediately when still
// queued; by handing the grant straight back when the protocol has
// already committed to it (a grant cannot be revoked mid-protocol).
// Either way Acquire returns promptly with ctx.Err(). On a closed
// cluster it returns ErrClosed.
func (s *Session) Acquire(ctx context.Context, opts serve.AcquireOpts) (func(), error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if !s.busy.CompareAndSwap(false, true) {
		return nil, ErrSessionBusy
	}
	defer s.busy.Store(false)

	if len(opts.Resources) == 0 {
		return nil, fmt.Errorf("live: empty resource set")
	}
	rs := resource.NewSet(s.c.cfg.Resources)
	for _, r := range opts.Resources {
		if r < 0 || r >= s.c.cfg.Resources {
			return nil, fmt.Errorf("live: no resource %d", r)
		}
		rs.Add(resource.ID(r))
	}
	deadline := opts.Deadline
	if deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
	}
	var dl sim.Time
	if !deadline.IsZero() {
		dl = sim.Time(deadline.Sub(s.c.start))
		if dl <= 0 {
			dl = 1 // already due: the nearest possible deadline, not "none"
		}
	}

	t := &ticket{
		rs:      rs,
		granted: make(chan struct{}),
		aborted: make(chan error, 1),
	}
	t.item = serve.Item{Session: s.id, Size: rs.Len(), Deadline: dl, V: t}

	if !s.l.post(cmdSubmit{t: t}) {
		return nil, ErrClosed
	}
	select {
	case <-t.granted:
		s.grants.Add(1)
		return s.releaseFunc(t), nil
	case err := <-t.aborted:
		return nil, err
	case <-ctx.Done():
		// Withdraw through the loop; it always answers (or the cluster
		// is closing, which fails every ticket anyway).
		done := make(chan struct{})
		if s.l.post(cmdCancel{t: t, done: done}) {
			select {
			case <-done:
			case <-s.c.closed:
			}
		}
		return nil, ctx.Err()
	}
}

// releaseFunc builds the exactly-once release closure for a granted
// ticket. On a closing cluster the release degrades to a no-op — the
// loop's shutdown path owns the unwind.
func (s *Session) releaseFunc(t *ticket) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			done := make(chan struct{})
			if !s.l.post(cmdRelease{t: t, done: done}) {
				return
			}
			select {
			case <-done:
			case <-s.c.closed:
			}
		})
	}
}

// Acquire is the one-session convenience wrapper: it opens an
// ephemeral session on node id, performs a single Acquire, and closes
// the session when the grant is released. See Session.Acquire for the
// full semantics; concurrent Acquires on one node multiplex through
// the admission scheduler exactly like long-lived sessions.
func (c *Cluster) Acquire(ctx context.Context, id int, resources ...int) (func(), error) {
	s, err := c.NewSession(id)
	if err != nil {
		return nil, err
	}
	release, err := s.Acquire(ctx, serve.AcquireOpts{Resources: resources})
	if err != nil {
		s.Close()
		return nil, err
	}
	return func() {
		release()
		s.Close()
	}, nil
}

// ticket is one admission request in flight: scheduler item, protocol
// state, and the channels its session waits on. The loop goroutine
// owns every field after the submit; the session only reads granted
// and aborted.
type ticket struct {
	item serve.Item
	rs   resource.Set

	granted chan struct{} // closed by the loop when the CS is entered
	aborted chan error    // receives the terminal error instead

	admitted sim.Time // when the protocol Request was issued (loop only)

	// inCS and abandoned are loop-internal state: granted-but-not-yet
	// -released, and canceled-while-in-flight respectively.
	inCS      bool
	abandoned bool
}

// abort delivers a terminal error to the session (at most one is ever
// sent; the buffer makes the send safe when nobody is listening).
func (t *ticket) abort(err error) {
	select {
	case t.aborted <- err:
	default:
	}
}
