package live

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/leakcheck"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
	"mralloc/internal/verify"
)

// TestDupTokenTransferExactlyOnce is the deterministic duplication
// regression: with Dup = 1.0 every frame — including every token
// transfer — is delivered twice, back to back. The reliable wrapper's
// receiver-side dedup must cancel the replay before the protocol sees
// it: alternating acquires force the tokens across the link on every
// round, safety is monitored throughout, and the dedup counter proves
// the duplicates actually arrived and were dropped.
func TestDupTokenTransferExactlyOnce(t *testing.T) {
	const n, m = 2, 3
	ch := transport.NewChaos(transport.NewMem(n, 0), 0xd0b1e)
	rel := transport.NewReliable(ch)
	c, err := New(Config{Nodes: n, Resources: m, Transport: rel}, core.NewFactory(core.WithoutLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mon := verify.New(m, func(v verify.Violation) { t.Errorf("%v", v) })
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }

	// No drops, no delays: duplication only, so the run is a pure
	// replay test — every message arrives, then arrives again.
	ch.SetFaults(transport.Faults{Dup: 1.0})

	rs := resource.NewSet(m)
	for r := 0; r < m; r++ {
		rs.Add(resource.ID(r))
	}
	for i := 0; i < 8; i++ {
		node := i % 2 // alternate: every acquire moves all tokens across
		mon.Requested(network.NodeID(node), now())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		release, err := c.Acquire(ctx, node, 0, 1, 2)
		cancel()
		if err != nil {
			t.Fatalf("acquire %d under total duplication: %v", i, err)
		}
		mon.Granted(network.NodeID(node), rs, now())
		mon.Released(network.NodeID(node), rs, now())
		release()
	}
	mon.CheckQuiescent(now())

	if st := ch.ChaosStats(); st.Duplicated == 0 {
		t.Fatalf("no duplicates injected: %+v", st)
	}
	if st := rel.RelStats(); st.DupsDropped == 0 {
		t.Fatalf("duplicates injected but none dropped by the receiver: %+v", st)
	}
}

// TestLeaseContentionLive pits lease-parked entries against competing
// requests on the live runtime: with a short TTL every acquire parks at
// least briefly, and a parked node's tokens may be claimed by the other
// node mid-park — the reclaim path must re-issue the parked claim or
// the entry wedges with its interest recorded nowhere.
func TestLeaseContentionLive(t *testing.T) {
	const n, m = 2, 4
	opt := core.WithLoan()
	opt.LeaseTTL = 100 * sim.Millisecond
	c, err := New(Config{
		Nodes: n, Resources: m,
		Transport: transport.NewMem(n, 0),
		Tick:      5 * time.Millisecond,
	}, core.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Fully overlapping sets: every acquire contends.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				release, err := c.Acquire(ctx, node, 0, 1, 2)
				cancel()
				if err != nil {
					t.Errorf("node %d iter %d: %v", node, i, err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
}

// TestWedgeThenRecover kills the live TCP connections under a warmed
// delta-encoded mesh and immediately drives an acquire that needs the
// wire: the first frame after the kill hits the dead connection and is
// lost (conn-death discovery is write-triggered), so without
// retransmission the request would wedge forever — the pre-reliable
// stack's signature failure. The acquire must instead complete via the
// retransmit path, with no delta resync and no leaked goroutines.
func TestWedgeThenRecover(t *testing.T) {
	checkLeak := leakcheck.Check(t)

	const n, m = 2, 4
	trs := make([]*transport.TCP, n)
	rels := make([]*transport.Reliable, n)
	addrs := make([]string, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	cs := make([]*Cluster, n)
	for i := range cs {
		if err := trs[i].Connect(addrs); err != nil {
			t.Fatal(err)
		}
		rels[i] = transport.NewReliable(trs[i])
		rels[i].SetRetransmit(2*time.Millisecond, 50*time.Millisecond)
		c, err := New(Config{
			Nodes: n, Resources: m,
			Transport: rels[i],
			Local:     []int{i},
			Wire:      transport.WireOptions{Delta: true},
		}, core.NewFactory(core.WithLoan()))
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	closeAll := func() {
		for _, c := range cs {
			c.Close()
		}
	}
	defer checkLeak()
	defer closeAll()

	acquire := func(node int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		release, err := cs[node].Acquire(ctx, node, 0, 1, 2)
		if err != nil {
			return err
		}
		release()
		return nil
	}

	// Warm the mesh: tokens end up at node 1, so node 0's next acquire
	// is guaranteed to need a round trip over the wire.
	for i := 0; i < 4; i++ {
		if err := acquire(i % 2); err != nil {
			t.Fatalf("warmup acquire %d: %v", i, err)
		}
	}
	time.Sleep(100 * time.Millisecond) // quiesce: no frames in flight

	// Sever every live connection. The corpses stay in the conn tables
	// until a write fails against them, so the next protocol frame each
	// endpoint sends is lost with its conn — the transfer is wedged
	// exactly the way a mid-stream kill wedges it.
	for i, tr := range trs {
		if killed := tr.AbortConns(); killed == 0 {
			t.Fatalf("endpoint %d: no live conns to abort", i)
		}
	}

	// The acquire must recover purely through retransmission: the lost
	// frames are re-sent, the redial brings the link back, and the
	// request completes with no human in the loop.
	if err := acquire(0); err != nil {
		t.Fatalf("post-kill acquire never recovered: %v", err)
	}

	retransmits := int64(0)
	for _, r := range rels {
		retransmits += r.RelStats().Retransmits
	}
	if retransmits == 0 {
		t.Fatalf("acquire recovered without retransmitting — the kill injected no loss")
	}
	for i, tr := range trs {
		if err := tr.Err(); err != nil && strings.Contains(err.Error(), "resync") {
			t.Fatalf("endpoint %d: delta resync after kill: %v", i, err)
		}
	}
}
