package live

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/serve"
	"mralloc/internal/transport"
)

// TestShardedClusterBasics: shard accounting, per-shard inspection,
// and all-or-nothing cross-shard grants on a G=4 in-process cluster.
func TestShardedClusterBasics(t *testing.T) {
	c, err := New(Config{Nodes: 2, Resources: 12, Shards: 4}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	smap := c.ShardLayout()
	if smap.M() != 12 || smap.Shards() != 4 {
		t.Fatalf("layout %d/%d, want 12/4", smap.M(), smap.Shards())
	}
	for s := 0; s < 4; s++ {
		inspected := false
		if !c.InspectShard(s, 0, func(alg.Node) { inspected = true }) || !inspected {
			t.Fatalf("InspectShard(%d, 0) did not run", s)
		}
	}
	if c.InspectShard(4, 0, func(alg.Node) {}) {
		t.Fatal("InspectShard accepted an out-of-range shard")
	}

	// A cross-shard acquire (resources 0 and 11 live in shards 0 and 3)
	// holds both; a competitor for either part blocks until release.
	release, err := c.Acquire(context.Background(), 0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(context.Background(), 1, 11)
		if err == nil {
			rel()
		}
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("conflicting acquire completed while cross-shard grant held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("conflicting acquire never completed after release")
	}

	// Non-conflicting acquires in two different shards are held
	// simultaneously by different sessions of one node.
	relA, err := c.Acquire(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := c.Acquire(context.Background(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	relB()
	relA()
}

// TestShardedConfigValidation: shard counts the cluster cannot realize
// are rejected, as is a transport without the shard face.
func TestShardedConfigValidation(t *testing.T) {
	f := core.NewFactory(core.WithLoan())
	if _, err := New(Config{Nodes: 2, Resources: 4, Shards: 5}, f); err == nil {
		t.Fatal("accepted more shards than resources")
	}
	// Reliable wraps a Mem but does not forward the Sharder face.
	base := transport.NewMem(2, 0)
	rel := transport.NewReliable(base)
	if _, err := New(Config{Nodes: 2, Resources: 4, Shards: 2, Transport: rel}, f); err == nil {
		t.Fatal("accepted a non-Sharder transport for a sharded cluster")
	}
}

// TestShardedOppositeOrderNoDeadlock is the deterministic regression
// for ordered shard locking: two sessions repeatedly acquire the same
// two-shard resource pair, one naming the resources low-to-high, the
// other high-to-low. Acquire canonicalizes both into ascending shard
// order, so no interleaving can deadlock; without that invariant this
// test wedges (each session holding the shard the other needs) and the
// deadline fails it.
func TestShardedOppositeOrderNoDeadlock(t *testing.T) {
	for _, twoPhase := range []bool{false, true} {
		t.Run(fmt.Sprintf("twoPhase=%v", twoPhase), func(t *testing.T) {
			c, err := New(Config{Nodes: 2, Resources: 8, Shards: 4, CrossShardTwoPhase: twoPhase},
				core.NewFactory(core.WithLoan()))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const iters = 50
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			errc := make(chan error, 2)
			for w := 0; w < 2; w++ {
				w := w
				go func() {
					s, err := c.NewSession(w)
					if err != nil {
						errc <- err
						return
					}
					// Worker 0 asks [1, 6], worker 1 asks [6, 1]: shards 0
					// and 3, named in opposite order.
					rs := []int{1, 6}
					if w == 1 {
						rs = []int{6, 1}
					}
					for i := 0; i < iters; i++ {
						release, err := s.Acquire(ctx, serve.AcquireOpts{Resources: rs})
						if err != nil {
							errc <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
							return
						}
						release()
					}
					errc <- nil
				}()
			}
			for w := 0; w < 2; w++ {
				if err := <-errc; err != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("deadlock: %v", err)
					}
					t.Fatal(err)
				}
			}
		})
	}
}

// TestShardedAcquireCancel: a canceled cross-shard acquire withdraws
// cleanly — nothing stays held, so a follow-up acquire of the full set
// succeeds immediately.
func TestShardedAcquireCancel(t *testing.T) {
	c, err := New(Config{Nodes: 1, Resources: 8, Shards: 4}, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hold shard 3 so a cross-shard acquire of {0, 7} parks on it.
	hold, err := c.Acquire(context.Background(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, 0, 0, 7)
		parked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire returned %v", err)
	}
	hold()

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	release, err := c.Acquire(ctx2, 0, 0, 7)
	if err != nil {
		t.Fatalf("post-cancel acquire: %v (a canceled part leaked a hold)", err)
	}
	release()
}
