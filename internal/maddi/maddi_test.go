package maddi

import (
	"testing"
	"testing/quick"

	"mralloc/internal/driver"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func cfg(seed int64) driver.Config {
	return driver.Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 6,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     seed,
		},
		Warmup:  50 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

func TestSafetyAndLiveness(t *testing.T) {
	res, err := driver.Run(cfg(1), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 || res.Ungranted != 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

func TestManySeeds(t *testing.T) {
	prop := func(seed int64) bool {
		c := cfg(seed)
		c.Horizon = 500 * sim.Millisecond
		res, err := driver.Run(c, NewFactory())
		return err == nil && res.Ungranted == 0 && res.Grants > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHighContentionTinyPool(t *testing.T) {
	c := cfg(2)
	c.Workload.M = 4
	c.Workload.Phi = 3
	c.Workload.Rho = 0.1
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants == 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestBroadcastComplexity pins the defining property: requests cost
// Θ(N) messages per resource, so traffic per grant is far above the
// tree-routed algorithms'. With N=8 and x̄=3.5, a grant should cost at
// least x̄·(N−1)/2 request messages even with token reuse.
func TestBroadcastComplexity(t *testing.T) {
	res, err := driver.Run(cfg(3), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	reqs := res.Messages.ByKind["Maddi.Request"]
	if reqs == 0 || res.Messages.ByKind["Maddi.Token"] == 0 {
		t.Fatalf("messages = %v", res.Messages)
	}
	perGrant := float64(reqs) / float64(res.Grants)
	if perGrant < 7 { // (N-1) per broadcast, ≥1 broadcast most grants
		t.Fatalf("request messages per grant %.1f — broadcast missing?", perGrant)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := driver.Run(cfg(4), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.Run(cfg(4), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.Messages.Total != b.Messages.Total {
		t.Fatal("same seed diverged")
	}
}

func TestPriorityOrder(t *testing.T) {
	a := prio{TS: 1, Site: 5}
	b := prio{TS: 2, Site: 0}
	c := prio{TS: 1, Site: 6}
	if !a.precedes(b) || b.precedes(a) {
		t.Fatal("timestamp order wrong")
	}
	if !a.precedes(c) || c.precedes(a) {
		t.Fatal("site tie-break wrong")
	}
}

func TestSingleResourceOnly(t *testing.T) {
	c := cfg(5)
	c.Workload.Phi = 1
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants == 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

func TestFullWidthRequests(t *testing.T) {
	c := cfg(6)
	c.Workload.M = 6
	c.Workload.Phi = 6
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d starved with full-width requests", res.Ungranted)
	}
}
