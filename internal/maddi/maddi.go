// Package maddi implements the broadcast-based comparator of the
// paper's related work (§2.2): Maddi's token solution to the
// m-resources allocation problem (SAC 1997), "multiple instances of the
// Suzuki–Kasami mutual exclusion algorithm" — one token per resource,
// every request broadcast to all sites and stored in timestamp-ordered
// queues.
//
// A critical-section request takes one Lamport timestamp; (timestamp,
// site) totally orders requests system-wide, so the per-resource queues
// are mutually consistent and no deadlock can arise, by the same
// argument as the paper's Lemma 5. Three rules move the tokens:
//
//   - an idle token holder sends the token to any requester;
//   - a holder waiting for other resources yields a held token to a
//     requester whose request precedes its own (queueing itself), and
//     queues later requesters;
//   - a holder in its critical section queues everyone until release.
//
// Because requests are broadcast, every site — in particular the
// current token holder, wherever the token moved — sees every request:
// none of the routing machinery of the paper's algorithm (father
// pointers, visited sets, pendingReq replay) is needed. The price is
// exactly what the paper's introduction says: x·(N−1) messages per
// request, "not scalable in terms of message complexity". The
// message-complexity experiment (cmd/sweep -exp msgs) quantifies it.
package maddi

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// prio orders requests by (Lamport timestamp, site) — the total order
// that keeps all queues consistent.
type prio struct {
	TS   int64
	Site network.NodeID
}

func (a prio) precedes(b prio) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Site < b.Site
}

// entry is one queued request for one resource.
type entry struct {
	P  prio
	ID int64 // requester's CS sequence number, for obsolescence
}

// reqMsg is the broadcast request: site Init wants resource R for its
// ID-th critical section, with priority P.
type reqMsg struct {
	R    resource.ID
	Init network.NodeID
	ID   int64
	P    prio
}

// Kind implements network.Message.
func (reqMsg) Kind() string { return "Maddi.Request" }

// tokMsg transfers the token of resource R with its queue and the
// per-site last-served sequence numbers.
type tokMsg struct {
	R          resource.ID
	Queue      []entry
	LastServed []int64
}

// Kind implements network.Message.
func (tokMsg) Kind() string { return "Maddi.Token" }

// Node is one site of the algorithm.
type Node struct {
	env   alg.Env
	clock int64

	st     state
	needed resource.Set
	held   resource.Set
	myID   int64
	myPrio prio

	// Per resource: do we hold the token, and its queue/stamps when we do.
	hasToken []bool
	queues   [][]entry
	served   [][]int64

	// pending is the Suzuki–Kasami RN[] bookkeeping: the latest request
	// heard from each site for each resource. A request broadcast while
	// the token is in flight reaches no holder; whoever receives the
	// token next merges the pending entries into its queue.
	pending [][]entry
}

type state uint8

const (
	idle state = iota
	waiting
	inCS
)

// NewFactory returns the driver factory; site 0 initially holds every
// token.
func NewFactory() alg.Factory {
	return func(n, m int) []alg.Node {
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{}
		}
		return nodes
	}
}

// Attach implements alg.Node.
func (nd *Node) Attach(env alg.Env) {
	nd.env = env
	m := env.M()
	nd.needed = resource.NewSet(m)
	nd.held = resource.NewSet(m)
	nd.hasToken = make([]bool, m)
	nd.queues = make([][]entry, m)
	nd.served = make([][]int64, m)
	nd.pending = make([][]entry, m)
	for r := 0; r < m; r++ {
		nd.pending[r] = make([]entry, env.N())
	}
	if env.ID() == 0 {
		for r := 0; r < m; r++ {
			nd.hasToken[r] = true
			nd.served[r] = make([]int64, env.N())
		}
	}
}

func (nd *Node) self() network.NodeID { return nd.env.ID() }

// Request implements alg.Node: stamp once, broadcast per resource.
func (nd *Node) Request(rs resource.Set) {
	if nd.st != idle {
		panic(fmt.Sprintf("maddi: s%d requested while busy", nd.self()))
	}
	nd.clock++
	nd.myID++
	nd.myPrio = prio{TS: nd.clock, Site: nd.self()}
	nd.needed = rs.Clone()
	nd.st = waiting
	rs.ForEach(func(r resource.ID) {
		if nd.hasToken[r] {
			nd.held.Add(r)
			return
		}
		msg := reqMsg{R: r, Init: nd.self(), ID: nd.myID, P: nd.myPrio}
		for j := 0; j < nd.env.N(); j++ {
			if network.NodeID(j) != nd.self() {
				nd.env.Send(network.NodeID(j), msg)
			}
		}
	})
	nd.checkEnter()
}

func (nd *Node) checkEnter() {
	if nd.st == waiting && nd.needed.SubsetOf(nd.held) {
		nd.st = inCS
		nd.env.Granted()
	}
}

// Release implements alg.Node: serve every queue head, keep idle tokens.
func (nd *Node) Release() {
	if nd.st != inCS {
		panic(fmt.Sprintf("maddi: s%d released outside CS", nd.self()))
	}
	nd.st = idle
	for _, r := range nd.needed.Members() {
		nd.served[r][nd.self()] = nd.myID
		nd.held.Remove(r)
		nd.serveHead(r)
	}
	nd.needed.Clear()
}

// serveHead forwards r's token to the first live queued request, if any.
func (nd *Node) serveHead(r resource.ID) {
	q := nd.queues[r]
	for len(q) > 0 {
		head := q[0]
		q = q[1:]
		if nd.obsolete(r, head) {
			continue
		}
		nd.queues[r] = q
		nd.sendToken(headSite(head), r)
		return
	}
	nd.queues[r] = q
}

func headSite(e entry) network.NodeID { return e.P.Site }

func (nd *Node) obsolete(r resource.ID, e entry) bool {
	return e.ID <= nd.served[r][e.P.Site]
}

// sendToken hands the token of r over, with its queue and stamps.
func (nd *Node) sendToken(to network.NodeID, r resource.ID) {
	if to == nd.self() {
		panic(fmt.Sprintf("maddi: s%d sending token %d to itself", nd.self(), r))
	}
	nd.hasToken[r] = false
	q := nd.queues[r]
	s := nd.served[r]
	nd.queues[r] = nil
	nd.served[r] = nil
	nd.env.Send(to, tokMsg{R: r, Queue: q, LastServed: s})
}

// insert adds e to r's queue in (timestamp, site) order, deduplicating.
func (nd *Node) insert(r resource.ID, e entry) {
	q := nd.queues[r]
	for _, x := range q {
		if x.P.Site == e.P.Site && x.ID == e.ID {
			return
		}
	}
	i := 0
	for i < len(q) && q[i].P.precedes(e.P) {
		i++
	}
	q = append(q, entry{})
	copy(q[i+1:], q[i:])
	q[i] = e
	nd.queues[r] = q
}

// Deliver implements alg.Node.
func (nd *Node) Deliver(from network.NodeID, m network.Message) {
	switch msg := m.(type) {
	case reqMsg:
		nd.onRequest(msg)
	case tokMsg:
		nd.onToken(msg)
	default:
		panic(fmt.Sprintf("maddi: unexpected message %T", m))
	}
}

func (nd *Node) onRequest(msg reqMsg) {
	// Lamport rule: receiving a stamped request advances the clock, so
	// every request issued after hearing this one gets a larger
	// timestamp — that is what makes (TS, site) starvation-free.
	if msg.P.TS > nd.clock {
		nd.clock = msg.P.TS
	}
	r := msg.R
	e := entry{P: msg.P, ID: msg.ID}
	if e.ID > nd.pending[r][msg.Init].ID {
		nd.pending[r][msg.Init] = e
	}
	if !nd.hasToken[r] {
		return // merged into the queue when a token arrives here
	}
	if nd.obsolete(r, e) {
		return
	}
	switch {
	case nd.st == idle || !nd.needed.Has(r):
		nd.sendToken(msg.Init, r)
	case nd.st == inCS:
		nd.insert(r, entry{P: msg.P, ID: msg.ID})
	default: // waiting and we need r
		if msg.P.precedes(nd.myPrio) {
			// The newcomer outranks our pending request: queue
			// ourselves behind it and yield the token.
			nd.insert(r, entry{P: nd.myPrio, ID: nd.myID})
			nd.held.Remove(r)
			nd.sendToken(msg.Init, r)
		} else {
			nd.insert(r, entry{P: msg.P, ID: msg.ID})
		}
	}
}

func (nd *Node) onToken(msg tokMsg) {
	r := msg.R
	if nd.hasToken[r] {
		panic(fmt.Sprintf("maddi: s%d received duplicate token %d", nd.self(), r))
	}
	nd.hasToken[r] = true
	nd.queues[r] = msg.Queue
	nd.served[r] = msg.LastServed
	// Drop our own stale entry, if a yield ever re-queued us and the
	// token still came straight back.
	q := nd.queues[r][:0]
	for _, e := range nd.queues[r] {
		if e.P.Site != nd.self() {
			q = append(q, e)
		}
	}
	nd.queues[r] = q
	// Merge requests that were broadcast while the token travelled
	// (the RN/LN reconciliation of Suzuki–Kasami).
	for j, e := range nd.pending[r] {
		if network.NodeID(j) == nd.self() || e.ID == 0 {
			continue
		}
		if !nd.obsolete(r, e) {
			nd.insert(r, e)
		}
	}

	if nd.st == waiting && nd.needed.Has(r) {
		nd.held.Add(r)
		nd.checkEnter()
		if nd.st == inCS {
			return
		}
		// Still waiting: the queue may hold someone who outranks us.
		if len(nd.queues[r]) > 0 && nd.queues[r][0].P.precedes(nd.myPrio) {
			head := nd.queues[r][0]
			nd.queues[r] = nd.queues[r][1:]
			nd.insert(r, entry{P: nd.myPrio, ID: nd.myID})
			nd.held.Remove(r)
			nd.sendToken(headSite(head), r)
		}
		return
	}
	// A token we no longer wait for (e.g. served while an old broadcast
	// still routed it here): pass it to its queue head or keep it.
	nd.serveHead(r)
}
