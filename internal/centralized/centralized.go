// Package centralized implements the paper's synchronization-free
// comparator: "a distributed scheduling algorithm executed on a single
// shared-memory machine with a global waiting queue and no network
// communication" (§5.2). Its use-rate curve bounds what any distributed
// algorithm could achieve, isolating synchronization cost.
//
// The scheduler is a greedy first-fit scan over a FIFO global queue: at
// every arrival and every release it admits, in arrival order, each
// waiting request whose resources are all free. Requests never wait for
// anything but genuinely conflicting requests, and non-conflicting
// requests overtake blocked ones freely (the concurrency property with
// zero cost).
package centralized

import (
	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// Scheduler is the shared global state: the free-resource set and the
// FIFO queue of waiting requests. One Scheduler is shared by all nodes
// of an instance — that sharing is the point of this comparator.
type Scheduler struct {
	free  resource.Set
	queue []waiting
}

type waiting struct {
	node *Node
	rs   resource.Set
}

// NewFactory returns an alg.Factory producing n nodes around one shared
// scheduler over m resources.
func NewFactory() alg.Factory {
	return func(n, m int) []alg.Node {
		s := &Scheduler{free: resource.NewSet(m)}
		for r := 0; r < m; r++ {
			s.free.Add(resource.ID(r))
		}
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{sched: s}
		}
		return nodes
	}
}

// dispatch admits every admissible waiting request in arrival order.
func (s *Scheduler) dispatch() {
	kept := s.queue[:0]
	for _, w := range s.queue {
		if w.rs.SubsetOf(s.free) {
			s.free.DiffWith(w.rs)
			w.node.grant(w.rs)
		} else {
			kept = append(kept, w)
		}
	}
	// Zero dropped tail entries so the backing array does not pin them.
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = waiting{}
	}
	s.queue = kept
}

// QueueLen reports how many requests are waiting (for tests).
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Node is one site's view of the shared scheduler.
type Node struct {
	sched   *Scheduler
	env     alg.Env
	held    resource.Set
	holding bool
}

// Attach implements alg.Node.
func (n *Node) Attach(env alg.Env) { n.env = env }

// Request implements alg.Node: enqueue and let the scheduler try.
func (n *Node) Request(rs resource.Set) {
	n.sched.queue = append(n.sched.queue, waiting{node: n, rs: rs})
	n.sched.dispatch()
}

// grant records the admitted set; dispatch has already reserved it.
func (n *Node) grant(rs resource.Set) {
	n.held = rs
	n.holding = true
	n.env.Granted()
}

// Release implements alg.Node: free the resources and re-dispatch.
func (n *Node) Release() {
	if !n.holding {
		panic("centralized: release without grant")
	}
	n.holding = false
	n.sched.free.UnionWith(n.held)
	n.sched.dispatch()
}

// Deliver implements alg.Node. The comparator exchanges no messages.
func (n *Node) Deliver(network.NodeID, network.Message) {
	panic("centralized: unexpected message")
}
