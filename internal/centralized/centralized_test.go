package centralized

import (
	"testing"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// fakeEnv is a minimal Env for driving nodes directly.
type fakeEnv struct {
	id      network.NodeID
	granted *[]network.NodeID
}

func (e *fakeEnv) ID() network.NodeID                   { return e.id }
func (e *fakeEnv) N() int                               { return 4 }
func (e *fakeEnv) M() int                               { return 8 }
func (e *fakeEnv) Now() sim.Time                        { return 0 }
func (e *fakeEnv) Send(network.NodeID, network.Message) { panic("no messages expected") }
func (e *fakeEnv) Granted()                             { *e.granted = append(*e.granted, e.id) }

func build(t *testing.T, n, m int) ([]alg.Node, *[]network.NodeID, *Scheduler) {
	t.Helper()
	nodes := NewFactory()(n, m)
	var grants []network.NodeID
	for i, nd := range nodes {
		nd.Attach(&fakeEnv{id: network.NodeID(i), granted: &grants})
	}
	return nodes, &grants, nodes[0].(*Node).sched
}

func TestImmediateGrantWhenFree(t *testing.T) {
	nodes, grants, sched := build(t, 2, 8)
	nodes[0].Request(resource.FromIDs(8, 1, 2))
	if len(*grants) != 1 || (*grants)[0] != 0 {
		t.Fatalf("grants = %v", *grants)
	}
	if sched.QueueLen() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestConflictingWaitsUntilRelease(t *testing.T) {
	nodes, grants, sched := build(t, 2, 8)
	nodes[0].Request(resource.FromIDs(8, 1, 2))
	nodes[1].Request(resource.FromIDs(8, 2, 3))
	if len(*grants) != 1 {
		t.Fatalf("conflicting request granted early: %v", *grants)
	}
	if sched.QueueLen() != 1 {
		t.Fatalf("queue len = %d", sched.QueueLen())
	}
	nodes[0].Release()
	if len(*grants) != 2 || (*grants)[1] != 1 {
		t.Fatalf("grants after release = %v", *grants)
	}
}

func TestNonConflictingOvertakes(t *testing.T) {
	nodes, grants, _ := build(t, 3, 8)
	nodes[0].Request(resource.FromIDs(8, 1))
	nodes[1].Request(resource.FromIDs(8, 1)) // blocked behind node 0
	nodes[2].Request(resource.FromIDs(8, 5)) // disjoint: must overtake
	if len(*grants) != 2 || (*grants)[1] != 2 {
		t.Fatalf("grants = %v, want node 2 overtaking", *grants)
	}
}

func TestFIFOAmongConflicting(t *testing.T) {
	nodes, grants, _ := build(t, 3, 8)
	nodes[0].Request(resource.FromIDs(8, 1))
	nodes[1].Request(resource.FromIDs(8, 1))
	nodes[2].Request(resource.FromIDs(8, 1))
	nodes[0].Release()
	nodes[1].Release()
	want := []network.NodeID{0, 1, 2}
	if len(*grants) != 3 {
		t.Fatalf("grants = %v", *grants)
	}
	for i, w := range want {
		if (*grants)[i] != w {
			t.Fatalf("grant order %v, want %v", *grants, want)
		}
	}
}

func TestReleaseCascade(t *testing.T) {
	nodes, grants, _ := build(t, 4, 8)
	nodes[0].Request(resource.FromIDs(8, 1, 2, 3))
	nodes[1].Request(resource.FromIDs(8, 1))
	nodes[2].Request(resource.FromIDs(8, 2))
	nodes[3].Request(resource.FromIDs(8, 3))
	if len(*grants) != 1 {
		t.Fatalf("grants = %v", *grants)
	}
	nodes[0].Release() // all three waiters become admissible at once
	if len(*grants) != 4 {
		t.Fatalf("grants after cascade = %v", *grants)
	}
}

func TestReleaseWithoutGrantPanics(t *testing.T) {
	nodes, _, _ := build(t, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nodes[0].Release()
}

func TestUnexpectedMessagePanics(t *testing.T) {
	nodes, _, _ := build(t, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nodes[0].Deliver(0, nil)
}
