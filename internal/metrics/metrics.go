// Package metrics implements the two measures of the paper's evaluation
// (§5) plus supporting statistics:
//
//   - resource-use rate: the fraction of experiment time each resource
//     spends inside somebody's critical section, averaged over the M
//     resources (the colored area of the paper's Gantt diagrams);
//   - request waiting time: the interval between issuing a request and
//     entering the critical section, overall and bucketed by request
//     size (Figures 6 and 7 report means and standard deviations).
//
// All accumulation happens in virtual time and is clipped to a
// [warmup, horizon) measurement window so start-up transients do not
// bias steady-state results.
package metrics

import (
	"fmt"
	"math"

	"mralloc/internal/sim"
)

// Summary holds mean/deviation/quantile statistics of a sample set.
// P50/P95/P99 are streaming estimates (P² algorithm, exact below six
// samples); mean and max alone hide tail latency under multiplexed
// load, which is exactly what the serve-layer benchmarks measure.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Accum accumulates samples for a Summary using Welford's algorithm,
// which is numerically stable for long runs, plus one P² estimator per
// reported quantile — constant memory however long the run.
type Accum struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
	q50        p2
	q95        p2
	q99        p2
}

// Add records one sample.
func (a *Accum) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.hasExtrema || x < a.min {
		a.min = x
	}
	if !a.hasExtrema || x > a.max {
		a.max = x
	}
	a.hasExtrema = true
	a.q50.add(0.50, x)
	a.q95.add(0.95, x)
	a.q99.add(0.99, x)
}

// Merge folds everything o has accumulated into a, as if a had seen
// o's samples too. Count, mean, standard deviation, min and max combine
// exactly (Chan et al.'s parallel Welford update); the P² quantile
// markers combine by inverting the count-weighted mixture of the two
// sides' marker CDFs (see mergeQuantiles) — exact while either side
// holds five or fewer samples (they are stored raw), a marker-anchored
// approximation beyond that. Per-shard accumulators merge into a
// cluster-level summary this way without re-observing samples.
func (a *Accum) Merge(o *Accum) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	mergeQuantiles(a, o)
	na, nb := float64(a.n), float64(o.n)
	d := o.mean - a.mean
	a.m2 += o.m2 + d*d*na*nb/(na+nb)
	a.mean += d * nb / (na + nb)
	a.n += o.n
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
}

// Summary finalizes the accumulated statistics.
func (a *Accum) Summary() Summary {
	s := Summary{Count: a.n, Mean: a.mean, Min: a.min, Max: a.max,
		P50: a.q50.quantile(0.50), P95: a.q95.quantile(0.95), P99: a.q99.quantile(0.99)}
	if a.n > 1 {
		s.StdDev = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return s
}

// Snapshot returns the Summary of everything Added since the previous
// Snapshot (or since creation) and resets the accumulator — including
// the P² quantile markers, which otherwise converge over the whole
// lifetime of the Accum and cannot report per-interval quantiles.
// Open-loop load drivers call this at each reporting interval (and at
// the warmup boundary, discarding the transient window).
func (a *Accum) Snapshot() Summary {
	s := a.Summary()
	*a = Accum{}
	return s
}

// EWMA is an exponentially weighted moving average: each Observe moves
// the value alpha of the way toward the sample, so recent load counts
// geometrically more than history. The zero value is unusable — use
// NewEWMA, which also seeds the first sample directly instead of
// averaging it against zero.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA creates an average with the given smoothing factor in (0, 1];
// out-of-range values are clamped to 0.1 (a half-life of ~6.6 samples).
func NewEWMA(alpha float64) EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return EWMA{alpha: alpha}
}

// Observe folds one sample in and returns the updated average.
func (e *EWMA) Observe(x float64) float64 {
	if !e.init {
		e.v, e.init = x, true
		return x
	}
	e.v += e.alpha * (x - e.v)
	return e.v
}

// Value reports the current average (zero before any sample).
func (e *EWMA) Value() float64 { return e.v }

// Seen reports whether any sample has been observed.
func (e *EWMA) Seen() bool { return e.init }

// UseRate tracks per-resource busy intervals and reports the aggregate
// use rate over a measurement window.
type UseRate struct {
	m       int
	busy    []sim.Time // accumulated busy time inside the window
	since   []sim.Time // acquisition instant while held, else -1
	warmup  sim.Time
	horizon sim.Time
}

// NewUseRate creates a tracker for m resources measuring [warmup, horizon).
func NewUseRate(m int, warmup, horizon sim.Time) *UseRate {
	if horizon <= warmup {
		panic("metrics: empty measurement window")
	}
	u := &UseRate{
		m:       m,
		busy:    make([]sim.Time, m),
		since:   make([]sim.Time, m),
		warmup:  warmup,
		horizon: horizon,
	}
	for i := range u.since {
		u.since[i] = -1
	}
	return u
}

// Acquire marks resource r busy from instant t.
func (u *UseRate) Acquire(r int, t sim.Time) {
	if u.since[r] >= 0 {
		panic(fmt.Sprintf("metrics: resource %d acquired twice", r))
	}
	u.since[r] = t
}

// Release marks resource r free from instant t, accumulating the busy
// span clipped to the measurement window.
func (u *UseRate) Release(r int, t sim.Time) {
	s := u.since[r]
	if s < 0 {
		panic(fmt.Sprintf("metrics: resource %d released while free", r))
	}
	u.since[r] = -1
	u.accumulate(r, s, t)
}

func (u *UseRate) accumulate(r int, from, to sim.Time) {
	if from < u.warmup {
		from = u.warmup
	}
	if to > u.horizon {
		to = u.horizon
	}
	if to > from {
		u.busy[r] += to - from
	}
}

// Rate finalizes the aggregate use rate in [0, 1]: total busy time over
// M × window. Resources still held at the horizon count up to it.
func (u *UseRate) Rate() float64 {
	var total sim.Time
	for r, b := range u.busy {
		total += b
		if u.since[r] >= 0 {
			from, to := u.since[r], u.horizon
			if from < u.warmup {
				from = u.warmup
			}
			if to > from {
				total += to - from
			}
		}
	}
	window := u.horizon - u.warmup
	return float64(total) / (float64(window) * float64(u.m))
}

// PerResource returns each resource's individual use rate (for traces
// and the fairness ablation).
func (u *UseRate) PerResource() []float64 {
	out := make([]float64, u.m)
	window := float64(u.horizon - u.warmup)
	for r, b := range u.busy {
		extra := sim.Time(0)
		if u.since[r] >= 0 {
			from, to := u.since[r], u.horizon
			if from < u.warmup {
				from = u.warmup
			}
			if to > from {
				extra = to - from
			}
		}
		out[r] = float64(b+extra) / window
	}
	return out
}

// Jain computes Jain's fairness index (Σx)²/(n·Σx²) over non-negative
// samples: 1 when all sites are served equally, 1/n when one site gets
// everything. Used to check that the dynamic scheduling of the paper's
// algorithm does not starve anyone in practice.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Waiting collects request waiting times, bucketed by request size the
// way Figure 7 reports them.
type Waiting struct {
	overall Accum
	buckets []Accum
	edges   []int
}

// NewWaiting creates a collector whose buckets are defined by inclusive
// lower edges, e.g. edges {1,17,33,49,65,80} reproduce Figure 7's
// x-axis groups (a size falls in the last bucket whose edge ≤ size).
func NewWaiting(edges []int) *Waiting {
	if len(edges) == 0 {
		edges = []int{1}
	}
	return &Waiting{buckets: make([]Accum, len(edges)), edges: edges}
}

// Observe records a request of the given size that waited w.
func (w *Waiting) Observe(size int, wait sim.Time) {
	ms := wait.Milliseconds()
	w.overall.Add(ms)
	b := 0
	for i, e := range w.edges {
		if size >= e {
			b = i
		}
	}
	w.buckets[b].Add(ms)
}

// Overall reports the all-sizes waiting summary (milliseconds).
func (w *Waiting) Overall() Summary { return w.overall.Summary() }

// Bucket reports the summary of the i-th size bucket (milliseconds).
func (w *Waiting) Bucket(i int) Summary { return w.buckets[i].Summary() }

// Edges exposes the bucket lower edges, aligned with Bucket indices.
func (w *Waiting) Edges() []int { return w.edges }
