package metrics

import "sort"

// p2 is one streaming quantile estimator after Jain & Chlamtac's P²
// algorithm (CACM 1985): five markers track the minimum, the target
// quantile, the maximum, and the two midpoints, and every observation
// nudges the middle markers toward their ideal positions with a
// piecewise-parabolic height adjustment. Memory is constant and the
// estimate converges for any sample count a benchmark run produces;
// below six samples the exact order statistic is returned instead.
//
// The target quantile is passed to add/quantile rather than stored so
// that the zero value is usable — Accum embeds three of these and must
// keep working without a constructor.
type p2 struct {
	n   int        // observations seen
	q   [5]float64 // marker heights
	pos [5]float64 // marker positions (1-based)
	des [5]float64 // desired marker positions
}

// add feeds one observation to the estimator for quantile p.
func (e *p2) add(p, x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	inc := [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	for i := range e.des {
		e.des[i] += inc[i]
	}
	e.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := e.parabolic(i, s)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction s.
func (e *p2) parabolic(i int, s float64) float64 {
	ni, nm, np := e.pos[i], e.pos[i-1], e.pos[i+1]
	return e.q[i] + s/(np-nm)*((ni-nm+s)*(e.q[i+1]-e.q[i])/(np-ni)+(np-ni-s)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback height prediction when the parabola would
// leave the bracketing markers' range.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// quantile reports the current estimate for quantile p, exact while
// fewer than six observations have been seen.
func (e *p2) quantile(p float64) float64 {
	if e.n == 0 {
		return 0
	}
	if e.n <= 5 {
		xs := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(xs)
		i := int(p*float64(e.n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= e.n {
			i = e.n - 1
		}
		return xs[i]
	}
	return e.q[2]
}
