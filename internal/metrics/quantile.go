package metrics

import (
	"math"
	"sort"
)

// p2 is one streaming quantile estimator after Jain & Chlamtac's P²
// algorithm (CACM 1985): five markers track the minimum, the target
// quantile, the maximum, and the two midpoints, and every observation
// nudges the middle markers toward their ideal positions with a
// piecewise-parabolic height adjustment. Memory is constant and the
// estimate converges for any sample count a benchmark run produces;
// below six samples the exact order statistic is returned instead.
//
// The target quantile is passed to add/quantile rather than stored so
// that the zero value is usable — Accum embeds three of these and must
// keep working without a constructor.
type p2 struct {
	n   int        // observations seen
	q   [5]float64 // marker heights
	pos [5]float64 // marker positions (1-based)
	des [5]float64 // desired marker positions
}

// add feeds one observation to the estimator for quantile p.
func (e *p2) add(p, x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	inc := [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	for i := range e.des {
		e.des[i] += inc[i]
	}
	e.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := e.parabolic(i, s)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction s.
func (e *p2) parabolic(i int, s float64) float64 {
	ni, nm, np := e.pos[i], e.pos[i-1], e.pos[i+1]
	return e.q[i] + s/(np-nm)*((ni-nm+s)*(e.q[i+1]-e.q[i])/(np-ni)+(np-ni-s)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback height prediction when the parabola would
// leave the bracketing markers' range.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// replayInto feeds e's raw stored samples into dst — only valid while
// e still holds five or fewer observations.
func (e *p2) replayInto(p float64, dst *p2) {
	for _, x := range e.q[:e.n] {
		dst.add(p, x)
	}
}

// reset overwrites e with a converged-state snapshot: n observations,
// the given marker heights, and positions/desired positions set to the
// closed form add() maintains incrementally — as if all n observations
// had streamed through this estimator.
func (e *p2) reset(p float64, n int, q [5]float64) {
	for i := 1; i < 5; i++ {
		if q[i] < q[i-1] {
			q[i] = q[i-1]
		}
	}
	e.n = n
	e.q = q
	nf := float64(n)
	e.des = [5]float64{1, 1 + 2*p + (nf-5)*p/2, 1 + 4*p + (nf-5)*p, 3 + 2*p + (nf-5)*(1+p)/2, nf}
	e.pos[0], e.pos[4] = 1, nf
	for i := 1; i <= 3; i++ {
		pi := math.Round(e.des[i])
		if pi <= e.pos[i-1] {
			pi = e.pos[i-1] + 1
		}
		e.pos[i] = pi
	}
	for i := 3; i >= 1; i-- {
		if e.pos[i] >= e.pos[i+1] {
			e.pos[i] = e.pos[i+1] - 1
		}
	}
}

// points appends the estimator's marker curve as (cumulative fraction,
// height) pairs — the anchor points its markers have converged to.
func (e *p2) points(dst []cdfPoint) []cdfPoint {
	for i := 0; i < 5; i++ {
		dst = append(dst, cdfPoint{fr: (e.pos[i] - 1) / (e.pos[4] - 1), ht: e.q[i]})
	}
	return dst
}

// cdfPoint is one (cumulative fraction, height) anchor of a marker
// curve.
type cdfPoint struct{ fr, ht float64 }

// curve is a piecewise-linear empirical CDF assembled from marker
// anchor points, sorted by fraction with heights forced monotone.
type curve []cdfPoint

// newCurve pools anchor points (from several estimators over the same
// sample stream) into one monotone curve.
func newCurve(pts []cdfPoint) curve {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].fr != pts[j].fr {
			return pts[i].fr < pts[j].fr
		}
		return pts[i].ht < pts[j].ht
	})
	out := pts[:0]
	for _, p := range pts {
		// Different estimators disagree slightly about interior heights;
		// keep the running maximum so the curve stays a function.
		if len(out) > 0 {
			if p.fr == out[len(out)-1].fr {
				out[len(out)-1].ht = p.ht
				continue
			}
			if p.ht < out[len(out)-1].ht {
				p.ht = out[len(out)-1].ht
			}
		}
		out = append(out, p)
	}
	return curve(out)
}

// cdf evaluates the curve at height x as a cumulative fraction in
// [0, 1], linearly interpolating between anchors.
func (c curve) cdf(x float64) float64 {
	if len(c) == 0 || x <= c[0].ht {
		return 0
	}
	last := c[len(c)-1]
	if x >= last.ht {
		return 1
	}
	for i := 0; i+1 < len(c); i++ {
		if x <= c[i+1].ht {
			span := c[i+1].ht - c[i].ht
			if span <= 0 {
				return c[i+1].fr
			}
			return c[i].fr + (x-c[i].ht)/span*(c[i+1].fr-c[i].fr)
		}
	}
	return 1
}

// mergeQuantiles rebuilds a's three quantile estimators as if they had
// seen o's samples too. While either side still stores raw samples
// (n ≤ 5) they replay exactly. Once both have converged marker curves,
// each side's fifteen markers (three estimators × five) pool into one
// piecewise-linear CDF — anchored at eleven distinct rank fractions,
// including each target quantile itself — and the merged markers come
// from inverting the count-weighted mixture of the two curves at each
// estimator's desired fractions. Inverting at an anchored fraction
// pivots on heights both estimators actually converged to, which keeps
// merged p50/p95/p99 honest; replaying synthetic samples through add
// instead lets P² chase the synthetic ordering and drift.
func mergeQuantiles(a, o *Accum) {
	targets := [3]struct {
		ea, eo *p2
		p      float64
	}{
		{&a.q50, &o.q50, 0.50},
		{&a.q95, &o.q95, 0.95},
		{&a.q99, &o.q99, 0.99},
	}
	if o.n <= 5 {
		for _, t := range targets {
			t.eo.replayInto(t.p, t.ea)
		}
		return
	}
	if a.n <= 5 {
		for _, t := range targets {
			old := *t.ea
			*t.ea = *t.eo
			old.replayInto(t.p, t.ea)
		}
		return
	}
	var ptsA, ptsO []cdfPoint
	for _, t := range targets {
		ptsA = t.ea.points(ptsA)
		ptsO = t.eo.points(ptsO)
	}
	ca, co := newCurve(ptsA), newCurve(ptsO)
	na, nb := float64(a.n), float64(o.n)
	lo := math.Min(ca[0].ht, co[0].ht)
	hi := math.Max(ca[len(ca)-1].ht, co[len(co)-1].ht)
	mix := func(x float64) float64 { return (na*ca.cdf(x) + nb*co.cdf(x)) / (na + nb) }
	inv := func(f float64) float64 {
		l, h := lo, hi
		for i := 0; i < 60 && h-l > 0; i++ {
			mid := l + (h-l)/2
			if mix(mid) < f {
				l = mid
			} else {
				h = mid
			}
		}
		return l + (h-l)/2
	}
	n := a.n + o.n
	for _, t := range targets {
		q := [5]float64{lo, inv(t.p / 2), inv(t.p), inv((1 + t.p) / 2), hi}
		t.ea.reset(t.p, n, q)
	}
}

// quantile reports the current estimate for quantile p, exact while
// fewer than six observations have been seen.
func (e *p2) quantile(p float64) float64 {
	if e.n == 0 {
		return 0
	}
	if e.n <= 5 {
		xs := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(xs)
		i := int(p*float64(e.n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= e.n {
			i = e.n - 1
		}
		return xs[i]
	}
	return e.q[2]
}
