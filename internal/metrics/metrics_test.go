package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mralloc/internal/sim"
)

func TestAccumAgainstDirectFormulas(t *testing.T) {
	samples := []float64{4, 7, 13, 16}
	var a Accum
	for _, x := range samples {
		a.Add(x)
	}
	s := a.Summary()
	if s.Count != 4 || s.Mean != 10 || s.Min != 4 || s.Max != 16 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of {4,7,13,16} is sqrt(30).
	if math.Abs(s.StdDev-math.Sqrt(30)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(30)", s.StdDev)
	}
}

func TestAccumSingleAndEmpty(t *testing.T) {
	var a Accum
	if s := a.Summary(); s.Count != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	a.Add(5)
	if s := a.Summary(); s.StdDev != 0 || s.Mean != 5 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

// Property: Welford matches the naive two-pass computation.
func TestAccumMatchesTwoPass(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accum
		var sum float64
		for _, v := range raw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		want := math.Sqrt(ss / float64(len(raw)-1))
		s := a.Summary()
		return math.Abs(s.Mean-mean) < 1e-6 && math.Abs(s.StdDev-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUseRateSimple(t *testing.T) {
	u := NewUseRate(2, 0, 100)
	u.Acquire(0, 10)
	u.Release(0, 60) // 50 busy on r0
	u.Acquire(1, 0)
	u.Release(1, 100) // 100 busy on r1
	if got := u.Rate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("rate = %v, want 0.75", got)
	}
	per := u.PerResource()
	if per[0] != 0.5 || per[1] != 1.0 {
		t.Fatalf("per-resource = %v", per)
	}
}

func TestUseRateWindowClipping(t *testing.T) {
	u := NewUseRate(1, 100, 200)
	u.Acquire(0, 50)
	u.Release(0, 150) // only [100,150) counts
	u.Acquire(0, 180)
	u.Release(0, 300) // only [180,200) counts
	u.Acquire(0, 250)
	u.Release(0, 260) // fully outside, counts nothing
	if got := u.Rate(); math.Abs(got-0.70) > 1e-12 {
		t.Fatalf("rate = %v, want 0.70", got)
	}
}

func TestUseRateOpenIntervalAtHorizon(t *testing.T) {
	u := NewUseRate(1, 0, 100)
	u.Acquire(0, 90) // never released
	if got := u.Rate(); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("rate = %v, want 0.10", got)
	}
	per := u.PerResource()
	if math.Abs(per[0]-0.10) > 1e-12 {
		t.Fatalf("per-resource = %v", per)
	}
}

func TestUseRateMisusePanics(t *testing.T) {
	u := NewUseRate(1, 0, 10)
	u.Acquire(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double acquire did not panic")
			}
		}()
		u.Acquire(0, 2)
	}()
	u.Release(0, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("release while free did not panic")
			}
		}()
		u.Release(0, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty window did not panic")
			}
		}()
		NewUseRate(1, 5, 5)
	}()
}

// Property: the aggregate rate equals the mean of per-resource rates and
// never leaves [0, 1] under random non-overlapping busy intervals.
func TestUseRateProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const m, horizon = 4, 1000
		u := NewUseRate(m, 100, horizon)
		for res := 0; res < m; res++ {
			t := sim.Time(r.Intn(200))
			for t < horizon {
				hold := sim.Time(1 + r.Intn(100))
				u.Acquire(res, t)
				u.Release(res, t+hold)
				t += hold + sim.Time(1+r.Intn(100))
			}
		}
		rate := u.Rate()
		if rate < 0 || rate > 1 {
			return false
		}
		var mean float64
		for _, p := range u.PerResource() {
			if p < 0 || p > 1 {
				return false
			}
			mean += p
		}
		mean /= m
		return math.Abs(mean-rate) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitingBuckets(t *testing.T) {
	w := NewWaiting([]int{1, 17, 33, 49, 65, 80})
	w.Observe(1, 10*sim.Millisecond)
	w.Observe(16, 20*sim.Millisecond)  // still bucket 0 (edges are lower bounds)
	w.Observe(17, 30*sim.Millisecond)  // bucket 1
	w.Observe(80, 100*sim.Millisecond) // bucket 5
	if got := w.Bucket(0); got.Count != 2 || got.Mean != 15 {
		t.Fatalf("bucket 0 = %+v", got)
	}
	if got := w.Bucket(1); got.Count != 1 || got.Mean != 30 {
		t.Fatalf("bucket 1 = %+v", got)
	}
	if got := w.Bucket(5); got.Count != 1 || got.Mean != 100 {
		t.Fatalf("bucket 5 = %+v", got)
	}
	if got := w.Overall(); got.Count != 4 || got.Mean != 40 {
		t.Fatalf("overall = %+v", got)
	}
	if len(w.Edges()) != 6 {
		t.Fatal("edges accessor wrong")
	}
}

func TestWaitingDefaultBucket(t *testing.T) {
	w := NewWaiting(nil)
	w.Observe(5, 2*sim.Millisecond)
	if got := w.Bucket(0); got.Count != 1 || got.Mean != 2 {
		t.Fatalf("default bucket = %+v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if Jain(nil) != 1 || Jain([]float64{0, 0}) != 1 {
		t.Fatal("degenerate Jain should be 1")
	}
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single winner of 4: %v, want 0.25", got)
	}
	// Scale invariance.
	a := Jain([]float64{1, 2, 3})
	b := Jain([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("Jain not scale invariant")
	}
}

func TestJainProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := Jain(xs)
		n := float64(len(xs))
		if len(xs) == 0 {
			return j == 1
		}
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// exactQuantile is the order statistic the P² estimator approximates.
func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// TestQuantilesExactWhenSmall: below six samples the estimator must
// return exact order statistics.
func TestQuantilesExactWhenSmall(t *testing.T) {
	var a Accum
	for _, x := range []float64{30, 10, 50, 20, 40} {
		a.Add(x)
	}
	s := a.Summary()
	if s.P50 != 30 {
		t.Errorf("p50 of 5 samples = %v, want 30", s.P50)
	}
	if s.P99 != 50 {
		t.Errorf("p99 of 5 samples = %v, want 50", s.P99)
	}
}

// TestQuantilesStreaming: P² estimates on 20k samples from several
// shapes must land near the exact quantiles. Tolerances are loose —
// P² is an approximation — but tight enough to catch a broken marker
// update (which typically lands orders of magnitude off).
func TestQuantilesStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := map[string]func() float64{
		"uniform": func() float64 { return rng.Float64() * 100 },
		"exp":     func() float64 { return rng.ExpFloat64() * 10 },
		"normal":  func() float64 { return 50 + 12*rng.NormFloat64() },
	}
	for name, draw := range shapes {
		var a Accum
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = draw()
			a.Add(xs[i])
		}
		s := a.Summary()
		for _, q := range []struct {
			p   float64
			got float64
		}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
			want := exactQuantile(xs, q.p)
			// Tolerance: 5% of the sample range plus a small absolute slack.
			tol := 0.05*(s.Max-s.Min) + 1e-6
			if math.Abs(q.got-want) > tol {
				t.Errorf("%s: p%d = %v, exact %v (tol %v)", name, int(q.p*100), q.got, want, tol)
			}
		}
		if s.P50 > s.P95 || s.P95 > s.P99 {
			t.Errorf("%s: quantiles not monotone: p50=%v p95=%v p99=%v", name, s.P50, s.P95, s.P99)
		}
	}
}

// TestQuantilesSorted: on already-sorted input (the adversarial case
// for naive samplers) the estimator must still track the tail.
func TestQuantilesSorted(t *testing.T) {
	var a Accum
	n := 10000
	for i := 0; i < n; i++ {
		a.Add(float64(i))
	}
	s := a.Summary()
	if math.Abs(s.P50-float64(n)/2) > 0.05*float64(n) {
		t.Errorf("p50 = %v, want ≈%v", s.P50, n/2)
	}
	if math.Abs(s.P99-0.99*float64(n)) > 0.05*float64(n) {
		t.Errorf("p99 = %v, want ≈%v", s.P99, int(0.99*float64(n)))
	}
}

func TestSnapshotWindows(t *testing.T) {
	var a Accum
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	w1 := a.Snapshot()
	if w1.Count != 3 || w1.Mean != 2 || w1.Min != 1 || w1.Max != 3 {
		t.Fatalf("first window = %+v", w1)
	}
	// The second window must see only its own samples: counts, extrema
	// AND quantile markers all restart.
	for _, x := range []float64{100, 100, 100, 100} {
		a.Add(x)
	}
	w2 := a.Snapshot()
	if w2.Count != 4 || w2.Mean != 100 || w2.Min != 100 || w2.P99 != 100 {
		t.Fatalf("second window leaked the first: %+v", w2)
	}
	if empty := a.Snapshot(); empty.Count != 0 {
		t.Fatalf("post-snapshot accumulator not empty: %+v", empty)
	}
}

func TestSnapshotResetsQuantileMarkers(t *testing.T) {
	// Saturate the P² markers with large samples, snapshot, then feed a
	// small-valued window: if the markers survived the reset, the new
	// window's quantiles would be dragged far above its true range.
	var a Accum
	for i := 0; i < 1000; i++ {
		a.Add(1e6)
	}
	a.Snapshot()
	for i := 0; i < 1000; i++ {
		a.Add(1)
	}
	s := a.Summary()
	if s.P50 != 1 || s.P99 != 1 {
		t.Fatalf("stale quantile markers after Snapshot: %+v", s)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seen() {
		t.Fatal("fresh EWMA claims samples")
	}
	if got := e.Observe(10); got != 10 {
		t.Fatalf("first sample seeds directly: got %v", got)
	}
	if got := e.Observe(20); got != 15 {
		t.Fatalf("alpha 0.5 step: got %v want 15", got)
	}
	if got := e.Observe(15); got != 15 {
		t.Fatalf("steady sample moves value: got %v", got)
	}
	if !e.Seen() || e.Value() != 15 {
		t.Fatalf("Seen/Value = %v/%v", e.Seen(), e.Value())
	}
	// Out-of-range alpha clamps rather than producing a frozen average.
	c := NewEWMA(-3)
	c.Observe(0)
	if got := c.Observe(100); got != 10 {
		t.Fatalf("clamped alpha: got %v want 10", got)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("did not converge: %v", e.Value())
	}
}
