package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestMergeExactMoments pins that count, mean, standard deviation, min
// and max of a merged accumulator match a single flat accumulator that
// saw every sample, whatever the split.
func TestMergeExactMoments(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64()) // skewed, like latencies
	}
	for _, parts := range []int{2, 3, 16} {
		var flat Accum
		shards := make([]Accum, parts)
		for i, x := range xs {
			flat.Add(x)
			shards[i%parts].Add(x)
		}
		var merged Accum
		for i := range shards {
			merged.Merge(&shards[i])
		}
		fs, ms := flat.Summary(), merged.Summary()
		if ms.Count != fs.Count {
			t.Fatalf("parts=%d: count %d want %d", parts, ms.Count, fs.Count)
		}
		if ms.Min != fs.Min || ms.Max != fs.Max {
			t.Fatalf("parts=%d: extrema %v/%v want %v/%v", parts, ms.Min, ms.Max, fs.Min, fs.Max)
		}
		if relErr(ms.Mean, fs.Mean) > 1e-9 || relErr(ms.StdDev, fs.StdDev) > 1e-9 {
			t.Fatalf("parts=%d: mean/stddev %v/%v want %v/%v", parts, ms.Mean, ms.StdDev, fs.Mean, fs.StdDev)
		}
	}
}

// TestMergeSmallExact pins the exact path: while the total stays at
// five or fewer samples the merged quantiles are order statistics, so
// they must equal the flat accumulator's bit for bit.
func TestMergeSmallExact(t *testing.T) {
	var a, b, flat Accum
	for _, x := range []float64{3, 1, 9} {
		a.Add(x)
		flat.Add(x)
	}
	for _, x := range []float64{7, 2} {
		b.Add(x)
		flat.Add(x)
	}
	a.Merge(&b)
	as, fs := a.Summary(), flat.Summary()
	if as != fs {
		t.Fatalf("merged %+v want %+v", as, fs)
	}
	// Merging into an empty accumulator adopts the other wholesale.
	var empty Accum
	empty.Merge(&flat)
	if empty.Summary() != fs {
		t.Fatalf("empty.Merge: %+v want %+v", empty.Summary(), fs)
	}
	// Merging an empty accumulator is a no-op.
	before := flat.Summary()
	flat.Merge(&Accum{})
	if flat.Summary() != before {
		t.Fatalf("merge of empty changed summary")
	}
}

// TestMergeQuantileFidelity checks that per-shard accumulators merged
// with Merge estimate p50/p95/p99 about as well as one flat P²
// accumulator does: both must land within a few percent of the true
// order statistic of the pooled samples.
func TestMergeQuantileFidelity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(0.8 * r.NormFloat64())
	}
	for _, parts := range []int{4, 16} {
		var flat Accum
		shards := make([]Accum, parts)
		for i, x := range xs {
			flat.Add(x)
			shards[i%parts].Add(x)
		}
		var merged Accum
		for i := range shards {
			merged.Merge(&shards[i])
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		fs, ms := flat.Summary(), merged.Summary()
		for _, q := range []struct {
			name       string
			p          float64
			flat, merg float64
		}{
			{"p50", 0.50, fs.P50, ms.P50},
			{"p95", 0.95, fs.P95, ms.P95},
			{"p99", 0.99, fs.P99, ms.P99},
		} {
			exact := sorted[int(q.p*float64(n))-1]
			if e := relErr(q.flat, exact); e > 0.05 {
				t.Fatalf("parts=%d %s: flat P² off by %.1f%% (%.4f vs %.4f)", parts, q.name, 100*e, q.flat, exact)
			}
			if e := relErr(q.merg, exact); e > 0.08 {
				t.Fatalf("parts=%d %s: merged off by %.1f%% (%.4f vs %.4f)", parts, q.name, 100*e, q.merg, exact)
			}
		}
	}
}

// TestMergeHeterogeneousShards merges two accumulators over visibly
// different distributions (a fast shard and a 10× slower one). The
// pooled quantiles sit where the mixture puts them — dominated by the
// slow shard's tail — which naive per-shard quantile averaging would
// miss entirely.
func TestMergeHeterogeneousShards(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 8000
	xs := make([]float64, 0, 2*n)
	var fast, slow Accum
	for i := 0; i < n; i++ {
		f := math.Exp(0.3 * r.NormFloat64())
		s := 10 * math.Exp(0.3*r.NormFloat64())
		fast.Add(f)
		slow.Add(s)
		xs = append(xs, f, s)
	}
	fast.Merge(&slow)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	ms := fast.Summary()
	for _, q := range []struct {
		name string
		p    float64
		got  float64
	}{
		{"p50", 0.50, ms.P50},
		{"p95", 0.95, ms.P95},
		{"p99", 0.99, ms.P99},
	} {
		exact := sorted[int(q.p*float64(len(sorted)))-1]
		if e := relErr(q.got, exact); e > 0.10 {
			t.Fatalf("%s: merged off by %.1f%% (%.4f vs %.4f)", q.name, 100*e, q.got, exact)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
