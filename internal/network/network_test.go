package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mralloc/internal/sim"
)

type testMsg struct {
	kind string
	seq  int
}

func (m testMsg) Kind() string { return m.kind }

func TestConstantLatencyDelivery(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{D: 5 * sim.Millisecond}, nil)
	var gotAt sim.Time
	var gotFrom NodeID
	nw.Bind(1, func(from NodeID, m Message) {
		gotAt = eng.Now()
		gotFrom = from
	})
	nw.Bind(0, func(NodeID, Message) {})
	nw.Send(0, 1, testMsg{kind: "x"})
	eng.Run()
	if gotAt != 5*sim.Millisecond || gotFrom != 0 {
		t.Fatalf("delivered at %v from %d", gotAt, gotFrom)
	}
}

func TestFIFOUnderJitter(t *testing.T) {
	prop := func(seed int64) bool {
		eng := sim.New()
		rng := rand.New(rand.NewSource(seed))
		nw := New(eng, 2, Uniform{Min: 0, Max: 10 * sim.Millisecond}, rng)
		var got []int
		nw.Bind(1, func(_ NodeID, m Message) { got = append(got, m.(testMsg).seq) })
		nw.Bind(0, func(NodeID, Message) {})
		const k = 40
		for i := 0; i < k; i++ {
			i := i
			eng.At(sim.Time(i)*sim.Microsecond, func() {
				nw.Send(0, 1, testMsg{kind: "m", seq: i})
			})
		}
		eng.Run()
		if len(got) != k {
			return false
		}
		for i := 1; i < k; i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 3, Constant{}, nil)
	for i := 0; i < 3; i++ {
		nw.Bind(NodeID(i), func(NodeID, Message) {})
	}
	nw.Send(0, 1, testMsg{kind: "A"})
	nw.Send(1, 2, testMsg{kind: "A"})
	nw.Send(2, 0, testMsg{kind: "B"})
	eng.Run()
	st := nw.Stats()
	if st.Total != 3 || st.ByKind["A"] != 2 || st.ByKind["B"] != 1 {
		t.Fatalf("stats = %v", st)
	}
	if ks := st.Kinds(); len(ks) != 2 || ks[0] != "A" || ks[1] != "B" {
		t.Fatalf("Kinds = %v", st.Kinds())
	}
	if st.String() != "total=3 A=2 B=1" {
		t.Fatalf("String = %q", st.String())
	}
	// Snapshot is independent of later traffic.
	nw.Send(0, 2, testMsg{kind: "A"})
	if st.Total != 3 {
		t.Fatal("snapshot mutated by later send")
	}
}

func TestSelfSendPanics(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	nw.Send(1, 1, testMsg{kind: "x"})
}

func TestInvalidDestinationPanics(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination did not panic")
		}
	}()
	nw.Send(0, 7, testMsg{kind: "x"})
}

func TestTraceHook(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{D: sim.Millisecond}, nil)
	nw.Bind(0, func(NodeID, Message) {})
	nw.Bind(1, func(NodeID, Message) {})
	var seen int
	nw.Trace = func(at sim.Time, from, to NodeID, m Message) {
		seen++
		if at != 0 || from != 0 || to != 1 || m.Kind() != "x" {
			t.Errorf("trace saw at=%v from=%d to=%d kind=%s", at, from, to, m.Kind())
		}
	}
	nw.Send(0, 1, testMsg{kind: "x"})
	eng.Run()
	if seen != 1 {
		t.Fatalf("trace called %d times", seen)
	}
}

func TestHierarchicalLatency(t *testing.T) {
	h := Hierarchical{
		Zone:   TwoZones(8),
		Local:  Constant{D: 1 * sim.Millisecond},
		Remote: Constant{D: 9 * sim.Millisecond},
	}
	if d := h.Latency(0, 3, nil); d != 1*sim.Millisecond {
		t.Errorf("intra-zone latency %v", d)
	}
	if d := h.Latency(0, 4, nil); d != 9*sim.Millisecond {
		t.Errorf("cross-zone latency %v", d)
	}
	if d := h.Latency(7, 4, nil); d != 1*sim.Millisecond {
		t.Errorf("intra-zone (second zone) latency %v", d)
	}
}

func TestUniformBounds(t *testing.T) {
	u := Uniform{Min: 2 * sim.Millisecond, Max: 4 * sim.Millisecond}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := u.Latency(0, 1, r)
		if d < u.Min || d >= u.Max {
			t.Fatalf("sample %v outside [%v,%v)", d, u.Min, u.Max)
		}
	}
	// Degenerate range behaves like Constant.
	if d := (Uniform{Min: 5, Max: 5}).Latency(0, 1, r); d != 5 {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestProcessingDelaySerializesReceiver(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 3, Constant{D: sim.Millisecond}, nil)
	nw.SetProcessingDelay(2 * sim.Millisecond)
	var arrivals []sim.Time
	nw.Bind(2, func(NodeID, Message) { arrivals = append(arrivals, eng.Now()) })
	nw.Bind(0, func(NodeID, Message) {})
	nw.Bind(1, func(NodeID, Message) {})
	// Two senders hit node 2 at the same instant: the second delivery
	// must wait for the first service to finish.
	nw.Send(0, 2, testMsg{kind: "x"})
	nw.Send(1, 2, testMsg{kind: "x"})
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 3*sim.Millisecond { // 1ms wire + 2ms service
		t.Errorf("first delivery at %v, want 3ms", arrivals[0])
	}
	if arrivals[1] != 5*sim.Millisecond { // queued behind the first
		t.Errorf("second delivery at %v, want 5ms", arrivals[1])
	}
}

func TestProcessingDelayIdleReceiverNoQueue(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{D: sim.Millisecond}, nil)
	nw.SetProcessingDelay(2 * sim.Millisecond)
	var at sim.Time
	nw.Bind(1, func(NodeID, Message) { at = eng.Now() })
	nw.Bind(0, func(NodeID, Message) {})
	nw.Send(0, 1, testMsg{kind: "x"})
	eng.RunUntil(10 * sim.Millisecond)
	if at != 3*sim.Millisecond {
		t.Errorf("delivery at %v, want 3ms", at)
	}
	// A later message to an idle node pays only wire + service again.
	nw.Send(0, 1, testMsg{kind: "x"})
	eng.Run()
	if at != 13*sim.Millisecond {
		t.Errorf("second delivery at %v, want 13ms", at)
	}
}

func TestNegativeProcessingDelayPanics(t *testing.T) {
	eng := sim.New()
	nw := New(eng, 2, Constant{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	nw.SetProcessingDelay(-1)
}
