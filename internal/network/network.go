// Package network simulates the communication substrate assumed by the
// paper (§3.1): a complete graph of reliable FIFO point-to-point links
// between N nodes, with a configurable latency model γ. It also counts
// traffic per message kind, which the evaluation harness reports as the
// synchronization cost of each algorithm.
package network

import (
	"fmt"
	"math/rand"
	"sort"

	"mralloc/internal/sim"
)

// NodeID identifies one process/site. Sites are densely numbered 0..N-1
// and totally ordered by < (the paper's relation ≺, used to break ties
// between request marks).
type NodeID int

// None is the nil site (the paper's "nil" father pointer / lender).
const None NodeID = -1

// Message is any protocol payload. Kind labels the message class for
// statistics ("ReqBatch", "Token", "Inquire", ...); it must be constant
// per concrete type.
type Message interface {
	Kind() string
}

// Handler consumes a delivered message on the destination node.
type Handler func(from NodeID, m Message)

// Network delivers messages between n nodes over the simulation engine.
type Network struct {
	eng *sim.Engine
	lat LatencyModel
	rng *rand.Rand

	handlers []Handler
	// lastArrival enforces FIFO per ordered pair under jittered latency:
	// a message never arrives before one sent earlier on the same link.
	lastArrival []sim.Time
	n           int

	// proc is the per-message service time at the receiving process;
	// busyUntil serializes deliveries per destination. A zero proc
	// models an infinitely fast receiver — under which a token that
	// every request must traverse (a global lock) never queues, hiding
	// precisely the synchronization cost the paper measures.
	proc      sim.Time
	busyUntil []sim.Time

	stats Stats
	// Trace, when non-nil, observes every send (for debugging and the
	// Gantt/trace tooling).
	Trace func(at sim.Time, from, to NodeID, m Message)

	// free pools delivery records so that a send schedules its delivery
	// without allocating a fresh closure per message.
	free []*delivery
}

// delivery is one in-flight message. Its run closure is bound once at
// record creation and reused for every message the record carries.
type delivery struct {
	nw       *Network
	from, to NodeID
	m        Message
	run      func()
}

func (nw *Network) getDelivery() *delivery {
	if n := len(nw.free); n > 0 {
		d := nw.free[n-1]
		nw.free[n-1] = nil
		nw.free = nw.free[:n-1]
		return d
	}
	d := &delivery{nw: nw}
	d.run = d.deliver
	return d
}

// deliver hands the message to the destination handler. The record is
// released first: handlers send follow-up messages, and reusing this
// record keeps the pool at its high-water mark.
func (d *delivery) deliver() {
	nw, from, to, m := d.nw, d.from, d.to, d.m
	d.m = nil
	nw.free = append(nw.free, d)
	h := nw.handlers[to]
	if h == nil {
		panic(fmt.Sprintf("network: node %d has no handler", to))
	}
	h(from, m)
}

// New creates a network of n nodes over eng. The latency model may be
// stochastic; rng drives it deterministically.
func New(eng *sim.Engine, n int, lat LatencyModel, rng *rand.Rand) *Network {
	if n <= 0 {
		panic("network: need at least one node")
	}
	return &Network{
		eng:         eng,
		lat:         lat,
		rng:         rng,
		handlers:    make([]Handler, n),
		lastArrival: make([]sim.Time, n*n),
		busyUntil:   make([]sim.Time, n),
		n:           n,
		stats:       newStats(),
	}
}

// SetProcessingDelay sets the per-message service time at receivers.
// Deliveries to one node are serialized: a message is handled when the
// node finishes the previous one, plus the service time.
func (nw *Network) SetProcessingDelay(d sim.Time) {
	if d < 0 {
		panic("network: negative processing delay")
	}
	nw.proc = d
}

// N reports the number of nodes.
func (nw *Network) N() int { return nw.n }

// Bind installs the delivery handler for node id. Every node must be
// bound before the first send to it is delivered.
func (nw *Network) Bind(id NodeID, h Handler) {
	nw.handlers[id] = h
}

// Send schedules delivery of m from one node to another. Sending to
// yourself is a protocol bug in every algorithm here, so it panics
// rather than looping a message back.
func (nw *Network) Send(from, to NodeID, m Message) {
	if from == to {
		panic(fmt.Sprintf("network: node %d sending %s to itself", from, m.Kind()))
	}
	if to < 0 || int(to) >= nw.n {
		panic(fmt.Sprintf("network: send to invalid node %d", to))
	}
	nw.stats.count(m)
	if nw.Trace != nil {
		nw.Trace(nw.eng.Now(), from, to, m)
	}
	at := nw.eng.Now() + nw.lat.Latency(from, to, nw.rng)
	link := int(from)*nw.n + int(to)
	if at < nw.lastArrival[link] {
		at = nw.lastArrival[link] // preserve FIFO under jitter
	}
	nw.lastArrival[link] = at
	if nw.proc > 0 {
		// The receiver is a single server: handling starts when both
		// the message has arrived and the previous one is finished.
		if at < nw.busyUntil[to] {
			at = nw.busyUntil[to]
		}
		at += nw.proc
		nw.busyUntil[to] = at
	}
	d := nw.getDelivery()
	d.from, d.to, d.m = from, to, m
	nw.eng.At(at, d.run)
}

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats { return nw.stats.clone() }

// Stats aggregates message counts by kind.
type Stats struct {
	ByKind map[string]int64
	Total  int64
}

func newStats() Stats { return Stats{ByKind: make(map[string]int64)} }

func (s *Stats) count(m Message) {
	s.ByKind[m.Kind()]++
	s.Total++
}

func (s Stats) clone() Stats {
	c := newStats()
	c.Total = s.Total
	for k, v := range s.ByKind {
		c.ByKind[k] = v
	}
	return c
}

// Kinds returns the observed message kinds in sorted order.
func (s Stats) Kinds() []string {
	out := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders "total=N [Kind=c ...]" for logs and tables.
func (s Stats) String() string {
	out := fmt.Sprintf("total=%d", s.Total)
	for _, k := range s.Kinds() {
		out += fmt.Sprintf(" %s=%d", k, s.ByKind[k])
	}
	return out
}
