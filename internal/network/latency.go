package network

import (
	"math/rand"

	"mralloc/internal/sim"
)

// LatencyModel yields the one-way delay of a message on the (from, to)
// link. Implementations must be side-effect free apart from consuming
// the supplied random stream.
type LatencyModel interface {
	Latency(from, to NodeID, r *rand.Rand) sim.Time
}

// Constant is the paper's testbed model: every link takes the same γ
// (≈0.6 ms on the 10 GbE Grid'5000 cluster).
type Constant struct{ D sim.Time }

// Latency implements LatencyModel.
func (c Constant) Latency(_, _ NodeID, _ *rand.Rand) sim.Time { return c.D }

// Uniform draws each delay uniformly from [Min, Max], modelling jitter.
// FIFO per link is restored by the network layer.
type Uniform struct{ Min, Max sim.Time }

// Latency implements LatencyModel.
func (u Uniform) Latency(_, _ NodeID, r *rand.Rand) sim.Time {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + sim.Time(r.Int63n(int64(u.Max-u.Min)))
}

// Hierarchical models the "hierarchical physical topology such as
// Clouds" from the paper's conclusion: nodes live in zones; intra-zone
// messages take Local, cross-zone messages take Remote.
type Hierarchical struct {
	Zone   func(NodeID) int
	Local  LatencyModel
	Remote LatencyModel
}

// Latency implements LatencyModel.
func (h Hierarchical) Latency(from, to NodeID, r *rand.Rand) sim.Time {
	if h.Zone(from) == h.Zone(to) {
		return h.Local.Latency(from, to, r)
	}
	return h.Remote.Latency(from, to, r)
}

// TwoZones splits n nodes into two equal halves — the standard
// configuration of the cloud experiment (extension E2 in DESIGN.md).
func TwoZones(n int) func(NodeID) int {
	half := n / 2
	return func(id NodeID) int {
		if int(id) < half {
			return 0
		}
		return 1
	}
}
