package trace

import (
	"math"
	"strings"
	"testing"

	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

func TestRecorderSpansSorted(t *testing.T) {
	rec := NewRecorder(3)
	rec.Grant(1, resource.FromIDs(3, 2), 10, 20)
	rec.Grant(0, resource.FromIDs(3, 0, 1), 5, 15)
	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].R != 0 || spans[1].R != 1 || spans[2].R != 2 {
		t.Fatalf("not sorted by resource: %v", spans)
	}
	if spans[0].Site != 0 || spans[2].Site != 1 {
		t.Fatalf("sites wrong: %v", spans)
	}
}

func TestUseRateMatchesHandComputation(t *testing.T) {
	rec := NewRecorder(2)
	rec.Grant(0, resource.FromIDs(2, 0), 0, 50)   // r0 busy 50
	rec.Grant(1, resource.FromIDs(2, 1), 25, 100) // r1 busy 75
	got := rec.UseRate(0, 100)
	if math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("use rate %v, want 0.625", got)
	}
	// Clipped window.
	got = rec.UseRate(50, 100)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("clipped use rate %v, want 0.5", got)
	}
	if rec.UseRate(10, 10) != 0 {
		t.Fatal("empty window should be 0")
	}
}

func TestGanttRendering(t *testing.T) {
	rec := NewRecorder(2)
	rec.Grant(0, resource.FromIDs(2, 0), 0, 50)
	rec.Grant(2, resource.FromIDs(2, 1), 50, 100)
	g := rec.Gantt(0, 100, 10)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt:\n%s", g)
	}
	if !strings.Contains(lines[1], "aaaaa.....") {
		t.Errorf("r0 row = %q", lines[1])
	}
	if !strings.Contains(lines[2], ".....ccccc") {
		t.Errorf("r1 row = %q", lines[2])
	}
}

func TestGanttShortSpanStillVisible(t *testing.T) {
	rec := NewRecorder(1)
	rec.Grant(1, resource.FromIDs(1, 0), 3, 4) // far below one cell
	g := rec.Gantt(0, sim.Time(1000), 10)
	if !strings.Contains(g, "b") {
		t.Errorf("short span invisible:\n%s", g)
	}
}

func TestGanttDegenerate(t *testing.T) {
	rec := NewRecorder(1)
	if rec.Gantt(0, 0, 10) != "" || rec.Gantt(0, 10, 0) != "" {
		t.Fatal("degenerate windows should render empty")
	}
}

func TestSiteGlyphWraps(t *testing.T) {
	if siteGlyph(0) != 'a' || siteGlyph(25) != 'z' {
		t.Fatal("lowercase range wrong")
	}
	if siteGlyph(26) != 'A' || siteGlyph(27) != 'B' {
		t.Fatal("wrap to uppercase wrong")
	}
}
