// Package trace records per-resource occupancy intervals and renders
// them as ASCII Gantt diagrams — the visualization the paper uses in
// Figures 1 and 4 to explain resource-use rate: one line per resource,
// colored spans while some site's critical section holds the resource,
// white space while it sits idle or is locked-but-unused.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// Span is one occupancy interval of one resource by one site.
type Span struct {
	R     resource.ID
	Site  network.NodeID
	From  sim.Time
	Until sim.Time
}

// Recorder accumulates spans; plug its Grant method into
// driver.Config.TraceGrant.
type Recorder struct {
	spans []Span
	m     int
}

// NewRecorder creates a recorder for m resources.
func NewRecorder(m int) *Recorder { return &Recorder{m: m} }

// Grant records one completed critical section (driver.TraceGrant shape).
func (rec *Recorder) Grant(s network.NodeID, rs resource.Set, granted, released sim.Time) {
	rs.ForEach(func(r resource.ID) {
		rec.spans = append(rec.spans, Span{R: r, Site: s, From: granted, Until: released})
	})
}

// Spans returns the recorded spans sorted by (resource, start).
func (rec *Recorder) Spans() []Span {
	out := append([]Span(nil), rec.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].R != out[j].R {
			return out[i].R < out[j].R
		}
		return out[i].From < out[j].From
	})
	return out
}

// UseRate computes the fraction of [from, until) × resources covered by
// spans (spans never overlap per resource — the safety property).
func (rec *Recorder) UseRate(from, until sim.Time) float64 {
	if until <= from {
		return 0
	}
	var busy sim.Time
	for _, s := range rec.spans {
		lo, hi := s.From, s.Until
		if lo < from {
			lo = from
		}
		if hi > until {
			hi = until
		}
		if hi > lo {
			busy += hi - lo
		}
	}
	return float64(busy) / (float64(until-from) * float64(rec.m))
}

// Gantt renders the window [from, until) into width columns, one row
// per resource. Each busy cell shows the holding site as a letter
// ('a' = site 0); '.' is idle. Sites past 'z' wrap with uppercase.
func (rec *Recorder) Gantt(from, until sim.Time, width int) string {
	if width < 1 || until <= from {
		return ""
	}
	grid := make([][]byte, rec.m)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / float64(until-from)
	for _, s := range rec.spans {
		lo := int(float64(s.From-from) * scale)
		hi := int(float64(s.Until-from) * scale)
		if hi == lo {
			hi = lo + 1 // spans shorter than a cell still show up
		}
		for c := lo; c < hi; c++ {
			if c < 0 || c >= width {
				continue
			}
			grid[s.R][c] = siteGlyph(s.Site)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: %v .. %v (%d cols, %v/col)\n", from, until, width,
		sim.Time(float64(until-from)/float64(width)))
	for r := range grid {
		fmt.Fprintf(&b, "r%-3d |%s|\n", r, grid[r])
	}
	return b.String()
}

func siteGlyph(s network.NodeID) byte {
	const letters = 26
	if int(s) < letters {
		return byte('a' + int(s))
	}
	return byte('A' + int(s)%letters)
}
