package resource

import "fmt"

// ShardMap partitions the flat universe {0..M-1} into G contiguous
// shards, each an independent token universe with its own dense local
// identifier space {0..size-1}. Shards are blocks, not stripes: shard s
// owns [Start(s), Start(s)+Size(s)), so a resource range maps to few
// shards and the global order of resources equals (shard, local) order —
// the property ordered cross-shard locking relies on.
//
// When G does not divide M the first M%G shards are one resource larger,
// so sizes differ by at most one. The zero value is unusable; build with
// NewShardMap.
type ShardMap struct {
	m, g int
	q    int // base shard size M/G
	rem  int // shards [0,rem) hold q+1 resources
}

// NewShardMap builds the partition of m resources into g shards.
// Requires 1 <= g <= m: a shard with an empty universe would have no
// tokens to circulate.
func NewShardMap(m, g int) ShardMap {
	if m < 1 || g < 1 || g > m {
		panic(fmt.Sprintf("resource: cannot shard %d resources into %d shards", m, g))
	}
	return ShardMap{m: m, g: g, q: m / g, rem: m % g}
}

// M reports the global universe size.
func (sm ShardMap) M() int { return sm.m }

// Shards reports the shard count G.
func (sm ShardMap) Shards() int { return sm.g }

// Size reports the local universe size of shard s.
func (sm ShardMap) Size(s int) int {
	sm.checkShard(s)
	if s < sm.rem {
		return sm.q + 1
	}
	return sm.q
}

// Start reports the first global identifier owned by shard s.
func (sm ShardMap) Start(s int) ID {
	sm.checkShard(s)
	if s < sm.rem {
		return ID(s * (sm.q + 1))
	}
	return ID(sm.rem*(sm.q+1) + (s-sm.rem)*sm.q)
}

// ShardOf reports which shard owns global resource r.
func (sm ShardMap) ShardOf(r ID) int {
	sm.checkID(r)
	wide := ID(sm.rem * (sm.q + 1))
	if r < wide {
		return int(r) / (sm.q + 1)
	}
	return sm.rem + int(r-wide)/sm.q
}

// Local translates global resource r into its shard-local identifier.
func (sm ShardMap) Local(r ID) ID {
	return r - sm.Start(sm.ShardOf(r))
}

// Global translates a shard-local identifier back to the flat universe.
func (sm ShardMap) Global(s int, local ID) ID {
	if local < 0 || int(local) >= sm.Size(s) {
		panic(fmt.Sprintf("resource: local id %d outside shard %d universe [0,%d)", local, s, sm.Size(s)))
	}
	return sm.Start(s) + local
}

// Split partitions a global resource set into per-shard local sets,
// returned in ascending shard order and skipping shards the set does
// not touch. Each part's Set ranges over that shard's local universe.
func (sm ShardMap) Split(rs Set) []ShardPart {
	if rs.Universe() != sm.m {
		panic("resource: split of a set over a different universe")
	}
	var parts []ShardPart
	cur := -1
	rs.ForEach(func(r ID) {
		s := sm.ShardOf(r)
		if s != cur {
			parts = append(parts, ShardPart{Shard: s, Local: NewSet(sm.Size(s))})
			cur = s
		}
		p := &parts[len(parts)-1]
		p.Local.Add(r - sm.Start(s))
	})
	return parts
}

// ShardPart is one shard's slice of a cross-shard request: the shard id
// and the requested resources in that shard's local identifier space.
type ShardPart struct {
	Shard int
	Local Set
}

func (sm ShardMap) checkShard(s int) {
	if s < 0 || s >= sm.g {
		panic(fmt.Sprintf("resource: shard %d outside [0,%d)", s, sm.g))
	}
}

func (sm ShardMap) checkID(r ID) {
	if r < 0 || int(r) >= sm.m {
		panic(fmt.Sprintf("resource: id %d outside universe [0,%d)", r, sm.m))
	}
}
