// Package resource defines resource identifiers and dense bitset-backed
// resource sets. Requests in the multi-resource allocation problem are
// subsets of a fixed universe {0..M-1}; the hot paths of every algorithm
// (subset tests, unions, iteration in ascending identifier order) are all
// O(M/64) word operations here.
package resource

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// ID names one resource in the universe. Identifiers are dense: a system
// with M resources uses exactly 0..M-1.
type ID int

// Set is a mutable subset of a resource universe. The zero value is an
// empty set over an empty universe; use NewSet to size one for a system.
// Methods with pointer receivers mutate; value-receiver methods do not.
type Set struct {
	words []uint64
	m     int
}

// NewSet returns an empty set over the universe {0..m-1}.
func NewSet(m int) Set {
	if m < 0 {
		panic("resource: negative universe size")
	}
	return Set{words: make([]uint64, (m+63)/64), m: m}
}

// FromIDs builds a set over {0..m-1} holding exactly the given ids.
func FromIDs(m int, ids ...ID) Set {
	s := NewSet(m)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Universe reports the size M of the universe the set ranges over.
func (s Set) Universe() int { return s.m }

func (s Set) check(id ID) {
	if id < 0 || int(id) >= s.m {
		panic(fmt.Sprintf("resource: id %d outside universe [0,%d)", id, s.m))
	}
}

// Add inserts id.
func (s *Set) Add(id ID) {
	s.check(id)
	s.words[id/64] |= 1 << (uint(id) % 64)
}

// Remove deletes id (a no-op when absent).
func (s *Set) Remove(id ID) {
	s.check(id)
	s.words[id/64] &^= 1 << (uint(id) % 64)
}

// Has reports whether id is a member.
func (s Set) Has(id ID) bool {
	s.check(id)
	return s.words[id/64]&(1<<(uint(id)%64)) != 0
}

// Len reports the number of members.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), m: s.m}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the members of o without allocating,
// reusing s's storage. The universes must match.
func (s *Set) CopyFrom(o Set) {
	s.sameUniverse(o)
	copy(s.words, o.words)
}

// Clear removes every member, keeping the universe.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s Set) sameUniverse(o Set) {
	if s.m != o.m {
		panic("resource: sets over different universes")
	}
}

// UnionWith adds every member of o.
func (s *Set) UnionWith(o Set) {
	s.sameUniverse(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes members absent from o.
func (s *Set) IntersectWith(o Set) {
	s.sameUniverse(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DiffWith removes every member of o.
func (s *Set) DiffWith(o Set) {
	s.sameUniverse(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Union returns s ∪ o without mutating either.
func (s Set) Union(o Set) Set {
	c := s.Clone()
	c.UnionWith(o)
	return c
}

// Intersect returns s ∩ o without mutating either.
func (s Set) Intersect(o Set) Set {
	c := s.Clone()
	c.IntersectWith(o)
	return c
}

// Diff returns s \ o without mutating either.
func (s Set) Diff(o Set) Set {
	c := s.Clone()
	c.DiffWith(o)
	return c
}

// SubsetOf reports whether every member of s is in o.
func (s Set) SubsetOf(o Set) bool {
	s.sameUniverse(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one member — the
// "conflict" predicate between two requests.
func (s Set) Intersects(o Set) bool {
	s.sameUniverse(o)
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o hold exactly the same members.
func (s Set) Equal(o Set) bool {
	s.sameUniverse(o)
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending identifier order. The
// incremental algorithm's total resource order is exactly this order.
func (s Set) ForEach(fn func(ID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(ID(wi*64 + b))
			w &= w - 1
		}
	}
}

// Members returns the members in ascending order.
func (s Set) Members() []ID {
	return s.AppendMembers(make([]ID, 0, s.Len()))
}

// AppendMembers writes the members in ascending order into buf
// (truncated first) and returns it, growing it only when the previous
// capacity is too small. It is the allocation-free Members for hot
// paths that iterate a snapshot while mutating the set.
func (s Set) AppendMembers(buf []ID) []ID {
	buf = buf[:0]
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, ID(wi*64+b))
			w &= w - 1
		}
	}
	return buf
}

// Min returns the smallest member, or -1 when empty.
func (s Set) Min() ID {
	for wi, w := range s.words {
		if w != 0 {
			return ID(wi*64 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// String renders like "{1,5,7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	})
	b.WriteByte('}')
	return b.String()
}

// Sample returns a uniformly random subset of size k of {0..m-1} using
// Floyd's algorithm: each k-subset is equally likely, k draws, and no
// O(m) permutation scratch. It is the request generator for every
// workload in the evaluation.
func Sample(r *rand.Rand, m, k int) Set {
	if k < 0 || k > m {
		panic(fmt.Sprintf("resource: cannot sample %d of %d", k, m))
	}
	s := NewSet(m)
	for j := m - k; j < m; j++ {
		t := ID(r.Intn(j + 1))
		if s.Has(t) {
			s.Add(ID(j))
		} else {
			s.Add(t)
		}
	}
	return s
}
