package resource

import (
	"math/rand"
	"testing"
)

func TestShardMapPartition(t *testing.T) {
	for _, tc := range []struct{ m, g int }{
		{1, 1}, {8, 1}, {8, 4}, {10, 4}, {64, 16}, {7, 7}, {65, 16},
	} {
		sm := NewShardMap(tc.m, tc.g)
		if sm.M() != tc.m || sm.Shards() != tc.g {
			t.Fatalf("m=%d g=%d: shape %d/%d", tc.m, tc.g, sm.M(), sm.Shards())
		}
		// Sizes cover the universe, differ by at most one, and Start is
		// the running sum.
		total, next := 0, ID(0)
		for s := 0; s < tc.g; s++ {
			sz := sm.Size(s)
			if sz != tc.m/tc.g && sz != tc.m/tc.g+1 {
				t.Fatalf("m=%d g=%d: shard %d size %d", tc.m, tc.g, s, sz)
			}
			if sm.Start(s) != next {
				t.Fatalf("m=%d g=%d: shard %d start %d want %d", tc.m, tc.g, s, sm.Start(s), next)
			}
			total += sz
			next += ID(sz)
		}
		if total != tc.m {
			t.Fatalf("m=%d g=%d: sizes sum to %d", tc.m, tc.g, total)
		}
		// Every global id round-trips through (shard, local).
		for r := ID(0); int(r) < tc.m; r++ {
			s := sm.ShardOf(r)
			if got := sm.Global(s, sm.Local(r)); got != r {
				t.Fatalf("m=%d g=%d: id %d -> shard %d local %d -> %d", tc.m, tc.g, r, s, sm.Local(r), got)
			}
			if r >= sm.Start(s)+ID(sm.Size(s)) {
				t.Fatalf("m=%d g=%d: id %d outside its shard %d block", tc.m, tc.g, r, s)
			}
		}
	}
}

func TestShardMapSplit(t *testing.T) {
	sm := NewShardMap(10, 4) // blocks: [0,3) [3,6) [6,8) [8,10)
	rs := FromIDs(10, 0, 2, 3, 8, 9)
	parts := sm.Split(rs)
	if len(parts) != 3 {
		t.Fatalf("parts: %d", len(parts))
	}
	want := []struct {
		shard  int
		locals []ID
	}{
		{0, []ID{0, 2}},
		{1, []ID{0}},
		{3, []ID{0, 1}},
	}
	for i, w := range want {
		p := parts[i]
		if p.Shard != w.shard {
			t.Fatalf("part %d shard %d want %d", i, p.Shard, w.shard)
		}
		if p.Local.Universe() != sm.Size(w.shard) {
			t.Fatalf("part %d universe %d want %d", i, p.Local.Universe(), sm.Size(w.shard))
		}
		got := p.Local.Members()
		if len(got) != len(w.locals) {
			t.Fatalf("part %d members %v want %v", i, got, w.locals)
		}
		for j := range got {
			if got[j] != w.locals[j] {
				t.Fatalf("part %d members %v want %v", i, got, w.locals)
			}
		}
	}
	// Splits are ascending by shard and rebuild the original set.
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		m := 1 + r.Intn(100)
		g := 1 + r.Intn(m)
		smap := NewShardMap(m, g)
		rs := Sample(r, m, r.Intn(m+1))
		back := NewSet(m)
		last := -1
		for _, p := range smap.Split(rs) {
			if p.Shard <= last {
				t.Fatalf("m=%d g=%d: shard order %d after %d", m, g, p.Shard, last)
			}
			last = p.Shard
			if p.Local.Empty() {
				t.Fatalf("m=%d g=%d: empty part for shard %d", m, g, p.Shard)
			}
			p.Local.ForEach(func(l ID) { back.Add(smap.Global(p.Shard, l)) })
		}
		if !back.Equal(rs) {
			t.Fatalf("m=%d g=%d: split/join mismatch %v vs %v", m, g, back, rs)
		}
	}
}
