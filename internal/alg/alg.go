// Package alg defines the service-provider interface every
// multi-resource allocation algorithm in this repository implements.
//
// An algorithm instance is one Node per site. Nodes are message-driven
// state machines: the runtime (a deterministic simulation in
// internal/driver, or the goroutine-per-node runtime in internal/live)
// calls Request/Release/Deliver, and the node calls back through its Env
// to send messages and to announce that the critical section has been
// entered. A node never blocks; "waiting" is simply the state between
// Request and the Granted callback.
package alg

import (
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// Env is the runtime context a node acts through. Implementations must
// deliver Send reliably and in FIFO order per ordered pair of nodes
// (hypotheses 1–3 of the paper).
type Env interface {
	// ID is this node's site identifier (0..N-1).
	ID() network.NodeID
	// N is the number of sites.
	N() int
	// M is the number of resources.
	M() int
	// Now is the current (virtual or wall-clock) time.
	Now() sim.Time
	// Send transmits m to another site.
	Send(to network.NodeID, m network.Message)
	// Granted tells the runtime the node has entered its critical
	// section: it holds exclusive access to every requested resource.
	// It may be invoked synchronously from within Request or Deliver.
	Granted()
}

// Node is one site of a multi-resource allocation protocol.
//
// The runtime guarantees the paper's hypothesis 4: Request is never
// called while a previous request is unsatisfied or its critical
// section unreleased, so at most N requests are pending system-wide.
type Node interface {
	// Attach binds the node to its environment. Called exactly once,
	// before any other method.
	Attach(env Env)
	// Request asks for exclusive access to every resource in rs
	// (rs must be non-empty). The node owns rs and must not mutate it.
	Request(rs resource.Set)
	// Release ends the critical section entered at the last Granted.
	Release()
	// Deliver hands the node a protocol message from another site.
	Deliver(from network.NodeID, m network.Message)
}

// Ticker is an optional Node face. A runtime with a clock calls Tick
// periodically (from the same serialized context as Deliver) so
// time-based machinery — leases, heartbeats, expiry scans — can run.
// Nodes without timed state simply do not implement it.
type Ticker interface {
	Tick(now sim.Time)
}

// Drainer is an optional Node face: an orderly shutdown calls Drain
// (same serialized context as Deliver) to let the node hand off state
// that would otherwise die with it, e.g. resource tokens it owns.
type Drainer interface {
	Drain()
}

// Factory builds the N nodes of one protocol instance for a system of
// n sites and m resources. Implementations may return nodes that share
// internal state only if the algorithm is explicitly centralized (the
// shared-memory comparator); distributed algorithms must keep all
// shared state inside tokens and messages.
type Factory func(n, m int) []Node
