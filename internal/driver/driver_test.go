package driver

import (
	"testing"

	"mralloc/internal/alg"
	"mralloc/internal/centralized"
	"mralloc/internal/core"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/verify"
	"mralloc/internal/workload"
)

func smallConfig() Config {
	return Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 4,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     42,
		},
		Warmup:  100 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

func TestRunCentralizedEndToEnd(t *testing.T) {
	res, err := Run(smallConfig(), centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 {
		t.Fatalf("only %d grants in 2s of heavy load", res.Grants)
	}
	if res.UseRate <= 0 || res.UseRate > 1 {
		t.Fatalf("use rate %v out of range", res.UseRate)
	}
	if res.Waiting.Count == 0 || res.Waiting.Mean < 0 {
		t.Fatalf("waiting summary %+v", res.Waiting)
	}
	if res.Messages.Total != 0 {
		t.Fatalf("centralized comparator sent %d messages", res.Messages.Total)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d requests ungranted after drain", res.Ungranted)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(), centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(), centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.UseRate != b.UseRate || a.Waiting.Mean != b.Waiting.Mean || a.Events != b.Events {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := smallConfig()
	a, _ := Run(cfg, centralized.NewFactory())
	cfg.Workload.Seed = 43
	b, _ := Run(cfg, centralized.NewFactory())
	if a.Grants == b.Grants && a.UseRate == b.UseRate && a.Waiting.Mean == b.Waiting.Mean {
		t.Fatal("different seeds produced identical results — RNG not wired through")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload.Phi = 0
	if _, err := Run(cfg, centralized.NewFactory()); err == nil {
		t.Fatal("invalid workload accepted")
	}
	cfg = smallConfig()
	cfg.Horizon = cfg.Warmup
	if _, err := Run(cfg, centralized.NewFactory()); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestRunRejectsWrongFactoryArity(t *testing.T) {
	bad := func(n, m int) []alg.Node { return centralized.NewFactory()(n-1, m) }
	if _, err := Run(smallConfig(), bad); err == nil {
		t.Fatal("wrong node count accepted")
	}
}

func TestWaitBucketsPlumbed(t *testing.T) {
	cfg := smallConfig()
	cfg.WaitBuckets = []int{1, 3}
	res, err := Run(cfg, centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WaitBuckets) != 2 || res.WaitBuckets[0].Edge != 1 || res.WaitBuckets[1].Edge != 3 {
		t.Fatalf("buckets = %+v", res.WaitBuckets)
	}
	total := res.WaitBuckets[0].Summary.Count + res.WaitBuckets[1].Summary.Count
	if total != res.Waiting.Count {
		t.Fatalf("bucket counts %d != overall %d", total, res.Waiting.Count)
	}
}

func TestTraceGrantObservesEveryCS(t *testing.T) {
	cfg := smallConfig()
	var seen int
	var lastRelease sim.Time
	cfg.TraceGrant = func(s network.NodeID, rs resource.Set, granted, released sim.Time) {
		seen++
		if released <= granted {
			t.Errorf("empty CS interval [%v,%v)", granted, released)
		}
		if rs.Empty() {
			t.Error("empty resource set traced")
		}
		lastRelease = released
	}
	res, err := Run(cfg, centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.Grants {
		t.Fatalf("traced %d grants, result says %d", seen, res.Grants)
	}
	if lastRelease == 0 {
		t.Fatal("trace never fired")
	}
}

func TestViolationCallbackUsed(t *testing.T) {
	cfg := smallConfig()
	var got []verify.Violation
	cfg.OnViolation = func(v verify.Violation) { got = append(got, v) }
	// A healthy run must not produce violations.
	if _, err := Run(cfg, centralized.NewFactory()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("violations on healthy run: %v", got)
	}
}

// TestUseRateConservation cross-checks the metrics pipeline: with no
// warmup, the aggregate use rate must equal the traced busy time
// (Σ over grants of |resources|·holding) over M × window, up to
// horizon clipping handled identically on both sides.
func TestUseRateConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup = 1 // metrics window ≈ full run
	var busy sim.Time
	cfg.TraceGrant = func(_ network.NodeID, rs resource.Set, granted, released sim.Time) {
		if released > cfg.Horizon {
			released = cfg.Horizon
		}
		if granted > cfg.Horizon {
			granted = cfg.Horizon
		}
		busy += sim.Time(rs.Len()) * (released - granted)
	}
	res, err := Run(cfg, centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	window := float64(cfg.Horizon - cfg.Warmup)
	want := float64(busy) / (window * float64(cfg.Workload.M))
	// Drain mode lets grants at the horizon release after it; both the
	// trace (clipped above) and the use-rate accumulator clip at the
	// horizon, so the two must agree tightly.
	if diff := res.UseRate - want; diff > 0.02 || diff < -0.02 {
		t.Fatalf("use rate %.4f vs traced %.4f", res.UseRate, want)
	}
}

// TestFairnessFieldsPopulated checks the per-site breakdown sums back
// to the global grant count and the Jain indices are in range.
func TestFairnessFieldsPopulated(t *testing.T) {
	res, err := Run(smallConfig(), centralized.NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSiteGrants) != 8 || len(res.PerSiteWaitMean) != 8 {
		t.Fatalf("per-site slices: %d/%d", len(res.PerSiteGrants), len(res.PerSiteWaitMean))
	}
	sum := 0
	for _, g := range res.PerSiteGrants {
		sum += g
	}
	if sum != res.Waiting.Count {
		t.Fatalf("per-site grants %d != measured waits %d", sum, res.Waiting.Count)
	}
	for _, j := range []float64{res.JainWait, res.JainGrants} {
		if j <= 0 || j > 1.0000001 {
			t.Fatalf("jain index %v out of range", j)
		}
	}
}

// TestSessionsMultiplex: with S sessions per site the run must grant
// substantially more requests than the single-session run (the queue
// keeps nodes busy through think times), stay safe (OnViolation nil →
// panic), and drain to quiescence. Load is light (high ρ) so the
// protocol is not already saturated by one session per node —
// multiplexing gains show where nodes otherwise sit thinking.
func TestSessionsMultiplex(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload.Rho = 20
	cfg.Horizon = 1 * sim.Second
	base, err := Run(cfg, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sessions = 8
	multi, err := Run(cfg, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Queued != 0 || multi.Ungranted != 0 {
		t.Fatalf("drained run left %d queued / %d ungranted", multi.Queued, multi.Ungranted)
	}
	if multi.Grants < 2*base.Grants {
		t.Errorf("8 sessions granted %d, single granted %d — multiplexing isn't adding load", multi.Grants, base.Grants)
	}
	if multi.Waiting.P95 < multi.Waiting.P50 || multi.Waiting.P99 < multi.Waiting.P95 {
		t.Errorf("quantiles not monotone: %+v", multi.Waiting)
	}
}

// TestSessionsDeterministic: a multiplexed run is as reproducible as a
// single-session one — same seed, same policy, same result.
func TestSessionsDeterministic(t *testing.T) {
	for _, p := range serve.Policies() {
		cfg := smallConfig()
		cfg.Horizon = 500 * sim.Millisecond
		cfg.Sessions = 4
		cfg.Policy = p
		a, err := Run(cfg, core.NewFactory(core.WithLoan()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, core.NewFactory(core.WithLoan()))
		if err != nil {
			t.Fatal(err)
		}
		if a.Grants != b.Grants || a.Events != b.Events || a.Waiting.Mean != b.Waiting.Mean ||
			a.Messages.Total != b.Messages.Total {
			t.Errorf("%s: runs differ: %+v vs %+v", p, a.Waiting, b.Waiting)
		}
	}
}

// TestPoliciesDiffer: the policy must actually reorder admissions —
// SSF under multiplexed load should not produce the same grant
// sequence as FIFO (compare via waiting statistics and grant counts).
func TestPoliciesDiffer(t *testing.T) {
	run := func(p serve.Policy) Result {
		cfg := smallConfig()
		cfg.Horizon = 1 * sim.Second
		cfg.Sessions = 8
		cfg.Policy = p
		res, err := Run(cfg, core.NewFactory(core.WithLoan()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(serve.FIFO)
	ssf := run(serve.SSF)
	if fifo.Waiting.Mean == ssf.Waiting.Mean && fifo.Grants == ssf.Grants {
		t.Errorf("fifo and ssf produced identical runs (mean %v, %d grants) — policy not plumbed through",
			fifo.Waiting.Mean, fifo.Grants)
	}
}

// TestSessionZeroUnchanged: adding the serve layer must not shift the
// single-session workload — the paper's scenarios are pinned. Compare
// a default run against an explicit Sessions=1 FIFO run.
func TestSessionZeroUnchanged(t *testing.T) {
	cfg := smallConfig()
	cfg.Horizon = 500 * sim.Millisecond
	a, err := Run(cfg, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sessions = 1
	cfg.Policy = serve.FIFO
	b, err := Run(cfg, core.NewFactory(core.WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.Events != b.Events || a.Waiting.Mean != b.Waiting.Mean {
		t.Errorf("explicit Sessions=1 differs from default: %d/%d grants, %v/%v mean wait",
			a.Grants, b.Grants, a.Waiting.Mean, b.Waiting.Mean)
	}
}

func TestRejectsBadSessionsConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Sessions = -1
	if _, err := Run(cfg, centralized.NewFactory()); err == nil {
		t.Error("negative Sessions accepted")
	}
	cfg = smallConfig()
	cfg.Policy = "lifo"
	if _, err := Run(cfg, centralized.NewFactory()); err == nil {
		t.Error("unknown policy accepted")
	}
}
