// Package driver wires one algorithm, one workload, and one simulated
// network into a complete experiment run and extracts the paper's
// metrics from it.
//
// Each site loops through the paper's request cycle: think for β, issue
// a request of x ≤ φ resources, wait for admission, hold the resources
// for α(x), release, repeat. The driver owns this cycle; algorithms only
// see Request/Release/Deliver and answer through Env.Granted, so every
// algorithm runs under a byte-identical workload for a given seed.
package driver

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/metrics"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/verify"
	"mralloc/internal/workload"
)

// Config parameterizes one run.
type Config struct {
	Workload workload.Config

	// Sessions is the number of concurrent client sessions per site
	// (default 1). Each session runs the paper's request cycle
	// independently — think, request, hold, release — and the site's
	// admission scheduler (internal/serve, the same one the live
	// runtime uses) feeds them one at a time into the protocol, so
	// hypothesis 4 holds below the sessions. Session 0's draws are
	// identical to the single-session workload.
	Sessions int

	// Policy orders each site's admission queue (serve.FIFO when
	// empty); Aging is the starvation bound (serve.DefaultAging when
	// zero). With Sessions ≤ 1 the queue never holds more than one
	// request and the policy is irrelevant.
	Policy serve.Policy
	Aging  sim.Time

	// Latency is the network model; nil means Constant{Workload.Gamma}.
	Latency network.LatencyModel

	// Processing is the per-message service time at receiving nodes
	// (δ); deliveries to one node serialize. Zero models infinitely
	// fast receivers.
	Processing sim.Time

	// Warmup and Horizon bound the measurement window. Sites stop
	// issuing new requests at Horizon.
	Warmup  sim.Time
	Horizon sim.Time

	// Drain, when set, keeps the simulation running after Horizon until
	// every issued request has been granted and released, then checks
	// quiescence (the liveness property). Figure runs leave it unset.
	Drain bool

	// WaitBuckets are the inclusive lower edges of the waiting-time
	// size buckets (Figure 7); nil collects a single bucket.
	WaitBuckets []int

	// OnViolation receives invariant violations; nil panics, which is
	// the right default for both tests and figure generation — a run
	// that breaks safety must not produce a data point.
	OnViolation func(verify.Violation)

	// TraceGrant, when non-nil, observes every grant interval for the
	// Gantt tooling: site, resources, admission and release instants.
	TraceGrant func(s network.NodeID, rs resource.Set, granted, released sim.Time)
}

// Result is what one run measures.
type Result struct {
	UseRate     float64
	PerResource []float64

	// PerSiteWaitMean and PerSiteGrants break service down by site;
	// JainWait and JainGrants are Jain fairness indices over them.
	PerSiteWaitMean []float64
	PerSiteGrants   []int
	JainWait        float64
	JainGrants      float64

	Waiting     metrics.Summary // all sizes, milliseconds (incl. queue wait)
	WaitBuckets []BucketSummary // aligned with Config.WaitBuckets
	Messages    network.Stats   // traffic by kind
	Grants      int             // completed admissions
	MsgPerGrant float64         // synchronization cost per CS
	Events      uint64          // simulator events executed
	Ungranted   int             // requests in the protocol, ungranted at cut-off
	Queued      int             // requests still in admission queues at cut-off
}

// BucketSummary pairs a size-bucket edge with its waiting summary.
type BucketSummary struct {
	Edge    int
	Summary metrics.Summary
}

// Run executes one experiment and returns its measurements.
func Run(cfg Config, factory alg.Factory) (Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Horizon <= cfg.Warmup {
		return Result{}, fmt.Errorf("driver: horizon %v ≤ warmup %v", cfg.Horizon, cfg.Warmup)
	}
	if cfg.Sessions < 0 {
		return Result{}, fmt.Errorf("driver: %d sessions per site", cfg.Sessions)
	}
	sessions := cfg.Sessions
	if sessions == 0 {
		sessions = 1
	}
	if _, err := serve.ParsePolicy(string(cfg.Policy)); err != nil {
		return Result{}, fmt.Errorf("driver: %w", err)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = network.Constant{D: cfg.Workload.Gamma}
	}
	onViolation := cfg.OnViolation
	if onViolation == nil {
		onViolation = func(v verify.Violation) { panic(v) }
	}

	wl := cfg.Workload
	eng := sim.New()
	nw := network.New(eng, wl.N, lat, sim.Stream(wl.Seed, "latency"))
	nw.SetProcessingDelay(cfg.Processing)
	nodes := factory(wl.N, wl.M)
	if len(nodes) != wl.N {
		return Result{}, fmt.Errorf("driver: factory built %d nodes, want %d", len(nodes), wl.N)
	}

	d := &runState{
		cfg:      cfg,
		eng:      eng,
		nw:       nw,
		nodes:    nodes,
		mon:      verify.New(wl.M, onViolation),
		use:      metrics.NewUseRate(wl.M, cfg.Warmup, cfg.Horizon),
		waiting:  metrics.NewWaiting(cfg.WaitBuckets),
		siteWait: make([]metrics.Accum, wl.N),
		sites:    make([]siteState, wl.N),
	}
	for i := range nodes {
		id := network.NodeID(i)
		env := &nodeEnv{run: d, id: id}
		nodes[i].Attach(env)
		nw.Bind(id, nodes[i].Deliver)
		st := &d.sites[i]
		st.sched = serve.NewScheduler(cfg.Policy, cfg.Aging)
		// Bind the cycle callbacks once per site/session: the request
		// loop reschedules them constantly, and prebound closures keep
		// that off the allocator.
		st.releaseFn = func() { d.release(id) }
		st.sessions = make([]sessState, sessions)
		for s := range st.sessions {
			s := s
			ss := &st.sessions[s]
			ss.gen = workload.NewSessionGenerator(wl, i, s)
			ss.issueFn = func() { d.issue(id, s) }
		}
	}
	// Stagger the very first request of each session by an independent
	// think draw so time zero is not a synchronized thundering herd.
	for i := range d.sites {
		for s := range d.sites[i].sessions {
			ss := &d.sites[i].sessions[s]
			eng.At(ss.gen.Think(), ss.issueFn)
		}
	}

	eng.RunUntil(cfg.Horizon)
	if cfg.Drain {
		eng.Run()
		d.mon.CheckQuiescent(eng.Now())
	}

	res := Result{
		UseRate:     d.use.Rate(),
		PerResource: d.use.PerResource(),
		Waiting:     d.waiting.Overall(),
		Messages:    nw.Stats(),
		Grants:      d.mon.Grants(),
		Events:      eng.Executed(),
		Ungranted:   len(d.mon.PendingRequests()),
	}
	for i := range d.sites {
		res.Queued += d.sites[i].sched.Len()
	}
	grantsF := make([]float64, wl.N)
	for i := range d.siteWait {
		s := d.siteWait[i].Summary()
		res.PerSiteWaitMean = append(res.PerSiteWaitMean, s.Mean)
		res.PerSiteGrants = append(res.PerSiteGrants, s.Count)
		grantsF[i] = float64(s.Count)
	}
	res.JainWait = metrics.Jain(res.PerSiteWaitMean)
	res.JainGrants = metrics.Jain(grantsF)
	for i, e := range d.waiting.Edges() {
		res.WaitBuckets = append(res.WaitBuckets, BucketSummary{Edge: e, Summary: d.waiting.Bucket(i)})
	}
	if res.Grants > 0 {
		res.MsgPerGrant = float64(res.Messages.Total) / float64(res.Grants)
	}
	return res, nil
}

// siteState is one site: its admission scheduler, its sessions, and
// the session currently admitted into the protocol (at most one —
// hypothesis 4 holds below the sessions).
type siteState struct {
	sched    *serve.Scheduler
	sessions []sessState
	cur      *sessState // in the protocol (requested or in CS); nil when idle

	// releaseFn is the site's CS-end callback, bound once at setup and
	// rescheduled for every grant.
	releaseFn func()
}

// sessState tracks one session's position in the request cycle.
type sessState struct {
	gen       *workload.Generator
	req       workload.Request
	enqAt     sim.Time // admission-queue arrival; waits measure from here
	inCS      bool
	grantedAt sim.Time
	item      serve.Item

	// issueFn is the session's cycle callback, bound once at setup.
	issueFn func()
}

type runState struct {
	cfg      Config
	eng      *sim.Engine
	nw       *network.Network
	nodes    []alg.Node
	mon      *verify.Monitor
	use      *metrics.UseRate
	waiting  *metrics.Waiting
	siteWait []metrics.Accum
	sites    []siteState
}

// issue enqueues a new request for session s of site id, unless the
// horizon has passed.
func (d *runState) issue(id network.NodeID, s int) {
	if d.eng.Now() >= d.cfg.Horizon {
		return
	}
	st := &d.sites[id]
	ss := &st.sessions[s]
	ss.req = ss.gen.Next()
	ss.enqAt = d.eng.Now()
	ss.item = serve.Item{
		Session: uint64(int(id))*uint64(len(st.sessions)) + uint64(s),
		Size:    ss.req.Size,
		// The workload has no intrinsic deadlines; give EDF one with
		// slack proportional to the request's own CS duration, so big
		// requests are not unfairly due first.
		Deadline: ss.enqAt + 8*ss.req.CS,
		V:        ss,
	}
	st.sched.Push(&ss.item, ss.enqAt)
	d.maybeAdmit(id)
}

// maybeAdmit feeds the scheduler's next pick into the protocol when
// site id's single request slot is free.
func (d *runState) maybeAdmit(id network.NodeID) {
	st := &d.sites[id]
	if st.cur != nil {
		return
	}
	it := st.sched.Pop(d.eng.Now())
	if it == nil {
		return
	}
	ss := it.V.(*sessState)
	st.cur = ss
	d.mon.Requested(id, d.eng.Now())
	d.nodes[id].Request(ss.req.Resources)
}

// granted is the Env.Granted callback: site id entered its CS.
func (d *runState) granted(id network.NodeID) {
	st := &d.sites[id]
	ss := st.cur
	if ss == nil {
		panic(fmt.Sprintf("driver: site %d granted with no admitted request", id))
	}
	if ss.inCS {
		panic(fmt.Sprintf("driver: site %d granted twice", id))
	}
	ss.inCS = true
	now := d.eng.Now()
	ss.grantedAt = now
	d.mon.Granted(id, ss.req.Resources, now)
	if ss.enqAt >= d.cfg.Warmup {
		d.waiting.Observe(ss.req.Size, now-ss.enqAt)
		d.siteWait[id].Add((now - ss.enqAt).Milliseconds())
	}
	ss.req.Resources.ForEach(func(r resource.ID) { d.use.Acquire(int(r), now) })
	d.eng.After(ss.req.CS, st.releaseFn)
}

// release ends site id's critical section, schedules the session's
// next cycle, and admits the site's next queued request.
func (d *runState) release(id network.NodeID) {
	st := &d.sites[id]
	ss := st.cur
	now := d.eng.Now()
	ss.inCS = false
	ss.req.Resources.ForEach(func(r resource.ID) { d.use.Release(int(r), now) })
	d.mon.Released(id, ss.req.Resources, now)
	if d.cfg.TraceGrant != nil {
		d.cfg.TraceGrant(id, ss.req.Resources, ss.grantedAt, now)
	}
	d.nodes[id].Release()
	st.cur = nil
	next := now + ss.gen.Think()
	if next < d.cfg.Horizon {
		d.eng.At(next, ss.issueFn)
	}
	d.maybeAdmit(id)
}

// nodeEnv adapts the run state to the alg.Env contract for one site.
type nodeEnv struct {
	run *runState
	id  network.NodeID
}

func (e *nodeEnv) ID() network.NodeID { return e.id }
func (e *nodeEnv) N() int             { return e.run.cfg.Workload.N }
func (e *nodeEnv) M() int             { return e.run.cfg.Workload.M }
func (e *nodeEnv) Now() sim.Time      { return e.run.eng.Now() }

func (e *nodeEnv) Send(to network.NodeID, m network.Message) {
	e.run.nw.Send(e.id, to, m)
}

func (e *nodeEnv) Granted() { e.run.granted(e.id) }
