// Package driver wires one algorithm, one workload, and one simulated
// network into a complete experiment run and extracts the paper's
// metrics from it.
//
// Each site loops through the paper's request cycle: think for β, issue
// a request of x ≤ φ resources, wait for admission, hold the resources
// for α(x), release, repeat. The driver owns this cycle; algorithms only
// see Request/Release/Deliver and answer through Env.Granted, so every
// algorithm runs under a byte-identical workload for a given seed.
package driver

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/metrics"
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/verify"
	"mralloc/internal/workload"
)

// Config parameterizes one run.
type Config struct {
	Workload workload.Config

	// Latency is the network model; nil means Constant{Workload.Gamma}.
	Latency network.LatencyModel

	// Processing is the per-message service time at receiving nodes
	// (δ); deliveries to one node serialize. Zero models infinitely
	// fast receivers.
	Processing sim.Time

	// Warmup and Horizon bound the measurement window. Sites stop
	// issuing new requests at Horizon.
	Warmup  sim.Time
	Horizon sim.Time

	// Drain, when set, keeps the simulation running after Horizon until
	// every issued request has been granted and released, then checks
	// quiescence (the liveness property). Figure runs leave it unset.
	Drain bool

	// WaitBuckets are the inclusive lower edges of the waiting-time
	// size buckets (Figure 7); nil collects a single bucket.
	WaitBuckets []int

	// OnViolation receives invariant violations; nil panics, which is
	// the right default for both tests and figure generation — a run
	// that breaks safety must not produce a data point.
	OnViolation func(verify.Violation)

	// TraceGrant, when non-nil, observes every grant interval for the
	// Gantt tooling: site, resources, admission and release instants.
	TraceGrant func(s network.NodeID, rs resource.Set, granted, released sim.Time)
}

// Result is what one run measures.
type Result struct {
	UseRate     float64
	PerResource []float64

	// PerSiteWaitMean and PerSiteGrants break service down by site;
	// JainWait and JainGrants are Jain fairness indices over them.
	PerSiteWaitMean []float64
	PerSiteGrants   []int
	JainWait        float64
	JainGrants      float64

	Waiting     metrics.Summary // all sizes, milliseconds
	WaitBuckets []BucketSummary // aligned with Config.WaitBuckets
	Messages    network.Stats   // traffic by kind
	Grants      int             // completed admissions
	MsgPerGrant float64         // synchronization cost per CS
	Events      uint64          // simulator events executed
	Ungranted   int             // requests still pending at cut-off
}

// BucketSummary pairs a size-bucket edge with its waiting summary.
type BucketSummary struct {
	Edge    int
	Summary metrics.Summary
}

// Run executes one experiment and returns its measurements.
func Run(cfg Config, factory alg.Factory) (Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Horizon <= cfg.Warmup {
		return Result{}, fmt.Errorf("driver: horizon %v ≤ warmup %v", cfg.Horizon, cfg.Warmup)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = network.Constant{D: cfg.Workload.Gamma}
	}
	onViolation := cfg.OnViolation
	if onViolation == nil {
		onViolation = func(v verify.Violation) { panic(v) }
	}

	wl := cfg.Workload
	eng := sim.New()
	nw := network.New(eng, wl.N, lat, sim.Stream(wl.Seed, "latency"))
	nw.SetProcessingDelay(cfg.Processing)
	nodes := factory(wl.N, wl.M)
	if len(nodes) != wl.N {
		return Result{}, fmt.Errorf("driver: factory built %d nodes, want %d", len(nodes), wl.N)
	}

	d := &runState{
		cfg:      cfg,
		eng:      eng,
		nw:       nw,
		nodes:    nodes,
		mon:      verify.New(wl.M, onViolation),
		use:      metrics.NewUseRate(wl.M, cfg.Warmup, cfg.Horizon),
		waiting:  metrics.NewWaiting(cfg.WaitBuckets),
		siteWait: make([]metrics.Accum, wl.N),
		sites:    make([]siteState, wl.N),
	}
	for i := range nodes {
		id := network.NodeID(i)
		env := &nodeEnv{run: d, id: id}
		nodes[i].Attach(env)
		nw.Bind(id, nodes[i].Deliver)
		st := &d.sites[i]
		st.gen = workload.NewGenerator(wl, i)
		// Bind the cycle callbacks once per site: the request loop
		// reschedules them constantly, and prebound closures keep that
		// off the allocator.
		st.issueFn = func() { d.issue(id) }
		st.releaseFn = func() { d.release(id) }
	}
	// Stagger the very first request of each site by an independent
	// think draw so time zero is not a synchronized thundering herd.
	for i := range nodes {
		eng.At(d.sites[i].gen.Think(), d.sites[i].issueFn)
	}

	eng.RunUntil(cfg.Horizon)
	if cfg.Drain {
		eng.Run()
		d.mon.CheckQuiescent(eng.Now())
	}

	res := Result{
		UseRate:     d.use.Rate(),
		PerResource: d.use.PerResource(),
		Waiting:     d.waiting.Overall(),
		Messages:    nw.Stats(),
		Grants:      d.mon.Grants(),
		Events:      eng.Executed(),
		Ungranted:   len(d.mon.PendingRequests()),
	}
	grantsF := make([]float64, wl.N)
	for i := range d.siteWait {
		s := d.siteWait[i].Summary()
		res.PerSiteWaitMean = append(res.PerSiteWaitMean, s.Mean)
		res.PerSiteGrants = append(res.PerSiteGrants, s.Count)
		grantsF[i] = float64(s.Count)
	}
	res.JainWait = metrics.Jain(res.PerSiteWaitMean)
	res.JainGrants = metrics.Jain(grantsF)
	for i, e := range d.waiting.Edges() {
		res.WaitBuckets = append(res.WaitBuckets, BucketSummary{Edge: e, Summary: d.waiting.Bucket(i)})
	}
	if res.Grants > 0 {
		res.MsgPerGrant = float64(res.Messages.Total) / float64(res.Grants)
	}
	return res, nil
}

// siteState tracks one site's position in the request cycle.
type siteState struct {
	gen       *workload.Generator
	req       workload.Request
	reqAt     sim.Time
	inCS      bool
	grantedAt sim.Time

	// issueFn and releaseFn are the site's cycle callbacks, bound once
	// at setup and rescheduled for every request.
	issueFn   func()
	releaseFn func()
}

type runState struct {
	cfg      Config
	eng      *sim.Engine
	nw       *network.Network
	nodes    []alg.Node
	mon      *verify.Monitor
	use      *metrics.UseRate
	waiting  *metrics.Waiting
	siteWait []metrics.Accum
	sites    []siteState
}

// issue starts a new request for site id, unless the horizon has passed.
func (d *runState) issue(id network.NodeID) {
	if d.eng.Now() >= d.cfg.Horizon {
		return
	}
	st := &d.sites[id]
	st.req = st.gen.Next()
	st.reqAt = d.eng.Now()
	d.mon.Requested(id, st.reqAt)
	d.nodes[id].Request(st.req.Resources)
}

// granted is the Env.Granted callback: site id entered its CS.
func (d *runState) granted(id network.NodeID) {
	st := &d.sites[id]
	if st.inCS {
		panic(fmt.Sprintf("driver: site %d granted twice", id))
	}
	st.inCS = true
	now := d.eng.Now()
	st.grantedAt = now
	d.mon.Granted(id, st.req.Resources, now)
	if st.reqAt >= d.cfg.Warmup {
		d.waiting.Observe(st.req.Size, now-st.reqAt)
		d.siteWait[id].Add((now - st.reqAt).Milliseconds())
	}
	st.req.Resources.ForEach(func(r resource.ID) { d.use.Acquire(int(r), now) })
	d.eng.After(st.req.CS, st.releaseFn)
}

// release ends site id's critical section and schedules its next cycle.
func (d *runState) release(id network.NodeID) {
	st := &d.sites[id]
	now := d.eng.Now()
	st.inCS = false
	st.req.Resources.ForEach(func(r resource.ID) { d.use.Release(int(r), now) })
	d.mon.Released(id, st.req.Resources, now)
	if d.cfg.TraceGrant != nil {
		d.cfg.TraceGrant(id, st.req.Resources, st.grantedAt, now)
	}
	d.nodes[id].Release()
	next := now + st.gen.Think()
	if next < d.cfg.Horizon {
		d.eng.At(next, st.issueFn)
	}
}

// nodeEnv adapts the run state to the alg.Env contract for one site.
type nodeEnv struct {
	run *runState
	id  network.NodeID
}

func (e *nodeEnv) ID() network.NodeID { return e.id }
func (e *nodeEnv) N() int             { return e.run.cfg.Workload.N }
func (e *nodeEnv) M() int             { return e.run.cfg.Workload.M }
func (e *nodeEnv) Now() sim.Time      { return e.run.eng.Now() }

func (e *nodeEnv) Send(to network.NodeID, m network.Message) {
	e.run.nw.Send(e.id, to, m)
}

func (e *nodeEnv) Granted() { e.run.granted(e.id) }
