package bench

// Baseline is the frozen pre-optimization measurement of the grid,
// captured with `go run ./cmd/bench -capture-baseline` at the revision
// that introduced the harness — before the event pool, the pooled
// network deliveries, the map-free outbox, the Floyd sampler, and the
// batched live mailboxes landed. cmd/bench regenerates the Current
// column of BENCH_*.json against these rows; do not edit them by hand.
var Baseline = []Result{
	{Scenario: "sim/n32/noloan", NsPerOp: 9170633, AllocsPerOp: 71658, BytesPerOp: 5936503, MsgPerCS: 55.747, GrantsPerOp: 162, EventsPerOp: 9384, CSPerSec: 17665.084},
	{Scenario: "sim/n32/loan", NsPerOp: 10217135, AllocsPerOp: 80092, BytesPerOp: 6477867, MsgPerCS: 56.497, GrantsPerOp: 177, EventsPerOp: 10365, CSPerSec: 17323.839},
	{Scenario: "sim/n128/noloan", NsPerOp: 13143091, AllocsPerOp: 60337, BytesPerOp: 8893083, MsgPerCS: 91.988, GrantsPerOp: 82, EventsPerOp: 7810, CSPerSec: 6239.019},
	{Scenario: "sim/n128/loan", NsPerOp: 13906981, AllocsPerOp: 62726, BytesPerOp: 9059680, MsgPerCS: 93.94, GrantsPerOp: 83, EventsPerOp: 8082, CSPerSec: 5968.226},
	{Scenario: "sim/n512/noloan", NsPerOp: 35462423, AllocsPerOp: 91314, BytesPerOp: 22049051, MsgPerCS: 2768.25, GrantsPerOp: 4, EventsPerOp: 11241, CSPerSec: 112.795},
	{Scenario: "sim/n512/loan", NsPerOp: 36545390, AllocsPerOp: 91352, BytesPerOp: 22050111, MsgPerCS: 2768.75, GrantsPerOp: 4, EventsPerOp: 11243, CSPerSec: 109.453},
	{Scenario: "sim/n32/zones4", NsPerOp: 11213787, AllocsPerOp: 86117, BytesPerOp: 6943684, MsgPerCS: 35.674, GrantsPerOp: 276, EventsPerOp: 10406, CSPerSec: 24612.56},
	{Scenario: "sim/n32/skew", NsPerOp: 7983854, AllocsPerOp: 48384, BytesPerOp: 4264208, MsgPerCS: 50.175, GrantsPerOp: 114, EventsPerOp: 5962, CSPerSec: 14278.818},
	{Scenario: "micro/engine/schedule", NsPerOp: 3355789, AllocsPerOp: 65542, BytesPerOp: 3155351, EventsPerOp: 65536},
	{Scenario: "micro/engine/cancel", NsPerOp: 16097907, AllocsPerOp: 65552, BytesPerOp: 5913856, EventsPerOp: 65536},
	{Scenario: "micro/workload/next", NsPerOp: 282, AllocsPerOp: 2, BytesPerOp: 656},
	{Scenario: "micro/resource/sample", NsPerOp: 320, AllocsPerOp: 2, BytesPerOp: 656},
	{Scenario: "live/acquire/n8", NsPerOp: 8668, AllocsPerOp: 47, BytesPerOp: 1760},
	{Scenario: "live/acquire/n8/parallel", NsPerOp: 17414, AllocsPerOp: 68, BytesPerOp: 3628},
}
