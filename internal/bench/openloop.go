package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/metrics"
	"mralloc/internal/serve"
	"mralloc/internal/transport"
)

// The open-loop tier. Every other bench cell is closed-loop: a fixed
// set of sessions issues the next request only after the previous one
// finishes, so offered load can never exceed capacity and queueing
// collapse is structurally invisible. This tier decouples arrivals
// from completions — sessions arrive at a target RPS (Poisson by
// default) whether or not earlier ones have finished, exactly like
// independent users hitting a service. Sweeping the rate through and
// past the saturation knee makes the collapse measurable: offered
// load, goodput (grants/s), shed rate, and the sojourn-time
// distribution per cell, plus an SLO search (the highest offered RPS a
// configuration sustains within a p99 target).
//
// The fabric is the tcploop deployment: two in-process daemons on real
// 127.0.0.1 sockets, half the nodes each, serve.Client sessions over
// the client wire protocol. Cells differ only in admission policy —
// fixed FIFO with an unbounded queue (the collapse exhibit) versus
// Adaptive, whose self-tuned bound sheds (DenyOverloaded) before the
// knee and switches ordering under pressure.

// OpenLoopConfig parameterizes one open-loop cell.
type OpenLoopConfig struct {
	// Nodes is the cluster size, split across the two daemons.
	Nodes int
	// Policy is each node's admission policy; serve.Adaptive also
	// wires the cluster's load oracle into the client ports, so the
	// daemons shed at the self-tuned bound.
	Policy serve.Policy
	// AdmitTarget is the Adaptive grant-latency target
	// (serve.DefaultAdmitTarget when zero; ignored by fixed policies).
	AdmitTarget time.Duration
	// MaxQueue is the static per-node admission bound of the client
	// ports (0 = unbounded, the collapse configuration).
	MaxQueue int

	// RPS is the offered arrival rate. Arrivals are Poisson (seeded,
	// exponential inter-arrival times) unless Fixed pins the interval.
	RPS   float64
	Fixed bool
	Seed  int64

	// Warmup arrivals prime the fabric and are excluded from every
	// reported number; Window is the measured span. Defaults: 250ms
	// and 1s.
	Warmup, Window time.Duration
	// SLO is the sojourn objective a grant must meet to count toward
	// goodput (default 50ms, the tier SLO). A grant delivered after it
	// is wasted work: the collapse exhibit keeps granting at a high
	// rate, but at sojourns no caller would still be waiting for.
	SLO time.Duration
	// Timeout bounds one acquisition (default 1s). A request still
	// unanswered then is withdrawn and counted as timed out, with its
	// sojourn clamped to Timeout — under collapse the queue outgrows
	// the window, and unclamped sojourns would survivorship-bias p99
	// toward the requests that made it.
	Timeout time.Duration
	// MaxInFlight caps the driver's concurrently outstanding arrivals
	// (default 8192); beyond it arrivals are dropped and counted as
	// shed without a wire round trip, bounding driver memory however
	// far past the knee the cell runs.
	MaxInFlight int
	// Retry, when non-nil, has each arrival retry ErrOverloaded
	// denials under the jittered backoff schedule (still bounded by
	// Timeout) instead of counting them shed on first denial.
	Retry *serve.Backoff
}

func (cfg *OpenLoopConfig) defaults() error {
	if cfg.Nodes < 2 || cfg.Nodes%2 != 0 {
		return fmt.Errorf("openloop: need an even node count ≥ 2, got %d", cfg.Nodes)
	}
	if cfg.RPS <= 0 {
		return fmt.Errorf("openloop: need a positive rate, got %v", cfg.RPS)
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 250 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.SLO <= 0 {
		cfg.SLO = openLoopSLOTarget
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8192
	}
	if _, err := serve.ParsePolicy(string(cfg.Policy)); err != nil {
		return err
	}
	return nil
}

// OpenLoopResult is one cell's measurement. All counts and rates cover
// the measurement window only (arrivals whose scheduled instant fell
// inside it).
type OpenLoopResult struct {
	// Offered is the realized arrival rate (arrivals/s, including shed
	// and dropped ones). Throughput is all granted acquisitions/s;
	// Goodput only the grants whose sojourn met the cell's SLO — the
	// distinction is the whole point of the tier: a collapsed FIFO queue
	// keeps granting near capacity, but at sojourns no caller would
	// still be waiting for, so its throughput stays flat while its
	// goodput goes to zero.
	Offered, Throughput, Goodput float64
	// Arrivals = Granted + Shed + TimedOut + Dropped; WithinSLO counts
	// the granted acquisitions that met the SLO.
	Arrivals, Granted, WithinSLO, Shed, TimedOut, Dropped int64
	// ShedRate is the fraction of arrivals not granted:
	// (Shed + TimedOut + Dropped) / Arrivals.
	ShedRate float64
	// Sojourn is the arrival→grant distribution in milliseconds.
	// Timed-out requests contribute their clamped Timeout; shed and
	// dropped ones contribute nothing (they fail in microseconds — the
	// point of shedding — and would mask the survivors' tail).
	Sojourn metrics.Summary
}

// openLoopCell is the two-daemon loopback deployment of the tier,
// assembled outside testing so the SLO search and cmd-level tools can
// run cells too.
type openLoopCell struct {
	trs      []*transport.TCP
	clusters []*live.Cluster
	servers  []*serve.Server
	clients  []*serve.Client
}

func startOpenLoopCell(cfg OpenLoopConfig) (*openLoopCell, error) {
	half := cfg.Nodes / 2
	locals := [2][]int{}
	for i := 0; i < cfg.Nodes; i++ {
		if i < half {
			locals[0] = append(locals[0], i)
		} else {
			locals[1] = append(locals[1], i)
		}
	}
	cell := &openLoopCell{}
	fail := func(err error) (*openLoopCell, error) {
		cell.close()
		return nil, err
	}
	addrs := make([]string, cfg.Nodes)
	for d := 0; d < 2; d++ {
		tr, err := transport.ListenTCP("127.0.0.1:0", cfg.Nodes, locals[d]...)
		if err != nil {
			return fail(err)
		}
		cell.trs = append(cell.trs, tr)
		for _, id := range locals[d] {
			addrs[id] = tr.Addr()
		}
	}
	for d := 0; d < 2; d++ {
		if err := cell.trs[d].Connect(addrs); err != nil {
			return fail(err)
		}
		c, err := live.New(live.Config{
			Nodes:       cfg.Nodes,
			Resources:   tcpLoopM,
			Transport:   cell.trs[d],
			Local:       locals[d],
			Policy:      cfg.Policy,
			AdmitTarget: cfg.AdmitTarget,
		}, core.NewFactory(core.WithLoan()))
		if err != nil {
			return fail(err)
		}
		cell.clusters = append(cell.clusters, c)
		scfg := serve.ServerConfig{
			Listen:    "127.0.0.1:0",
			Nodes:     cfg.Nodes,
			Resources: tcpLoopM,
			Local:     locals[d],
			Open:      func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
			MaxQueue:  cfg.MaxQueue,
		}
		if cfg.Policy == serve.Adaptive {
			scfg.Overloaded = c.Overloaded
			scfg.NoteShed = c.NoteShed
		}
		srv, err := serve.NewServer(scfg)
		if err != nil {
			return fail(err)
		}
		cell.servers = append(cell.servers, srv)
		cl, err := serve.Dial(srv.Addr())
		if err != nil {
			return fail(err)
		}
		cell.clients = append(cell.clients, cl)
	}
	return cell, nil
}

func (c *openLoopCell) close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	for _, cl := range c.clusters {
		cl.Close() // closes its transport
	}
	// Transports with no cluster yet (assembly error paths); Close is
	// idempotent, so an already-adopted transport costs nothing.
	for _, tr := range c.trs {
		tr.Close()
	}
}

// RunOpenLoop assembles a cell and offers cfg.RPS arrivals to it for
// warmup+window, each arrival one AnyNode acquisition of two
// resources, released the moment it is granted (the protocol's
// acquisition cost dominates; hold time would only shift the knee).
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if err := cfg.defaults(); err != nil {
		return OpenLoopResult{}, err
	}
	cell, err := startOpenLoopCell(cfg)
	if err != nil {
		return OpenLoopResult{}, err
	}
	defer cell.close()
	return driveOpenLoop(cfg, cell)
}

func driveOpenLoop(cfg OpenLoopConfig, cell *openLoopCell) (OpenLoopResult, error) {
	var (
		granted, withinSLO, shed, timedOut, dropped, arrivals atomic.Int64

		inflight atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		sojourn  metrics.Accum
		firstErr atomic.Value
	)
	record := func(d time.Duration) {
		mu.Lock()
		sojourn.Add(float64(d) / float64(time.Millisecond))
		mu.Unlock()
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6f70656e6c6f6f70)) // "openloop"
	interval := func() time.Duration {
		if cfg.Fixed {
			return time.Duration(float64(time.Second) / cfg.RPS)
		}
		return time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.RPS)
	}

	start := time.Now()
	end := cfg.Warmup + cfg.Window
	// Arrivals are scheduled on an absolute timeline and sojourns
	// measured from the *scheduled* instant: if the driver or fabric
	// falls behind, the lateness is queueing delay the user would see,
	// not something to hide.
	var n int64
	for next := interval(); next < end; next += interval() {
		at := start.Add(next)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		inWindow := next >= cfg.Warmup
		if inWindow {
			arrivals.Add(1)
		}
		if inflight.Add(1) > int64(cfg.MaxInFlight) {
			inflight.Add(-1)
			if inWindow {
				dropped.Add(1)
			}
			continue
		}
		n++
		r1 := int(n*7) % tcpLoopM
		r2 := (r1 + 11) % tcpLoopM
		cl := cell.clients[n%int64(len(cell.clients))]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			ctx, cancel := context.WithDeadline(context.Background(), at.Add(cfg.Timeout))
			defer cancel()
			opts := serve.AcquireOpts{Resources: []int{r1, r2}, RetryOverloaded: cfg.Retry}
			if cfg.AdmitTarget > 0 {
				opts.Deadline = at.Add(cfg.AdmitTarget)
			}
			release, err := cl.AcquireWith(ctx, serve.AnyNode, opts)
			switch {
			case err == nil:
				soj := time.Since(at)
				release()
				if inWindow {
					granted.Add(1)
					if soj <= cfg.SLO {
						withinSLO.Add(1)
					}
					record(soj)
				}
			case errors.Is(err, serve.ErrOverloaded):
				if inWindow {
					shed.Add(1)
				}
			case ctx.Err() != nil:
				if inWindow {
					timedOut.Add(1)
					record(cfg.Timeout)
				}
			default:
				firstErr.CompareAndSwap(nil, err)
			}
		}()
	}
	wg.Wait()

	if v := firstErr.Load(); v != nil {
		return OpenLoopResult{}, v.(error)
	}
	sec := cfg.Window.Seconds()
	res := OpenLoopResult{
		Offered:    float64(arrivals.Load()) / sec,
		Throughput: float64(granted.Load()) / sec,
		Goodput:    float64(withinSLO.Load()) / sec,
		Arrivals:   arrivals.Load(),
		Granted:    granted.Load(),
		WithinSLO:  withinSLO.Load(),
		Shed:       shed.Load(),
		TimedOut:   timedOut.Load(),
		Dropped:    dropped.Load(),
		Sojourn:    sojourn.Summary(),
	}
	if res.Arrivals > 0 {
		res.ShedRate = float64(res.Shed+res.TimedOut+res.Dropped) / float64(res.Arrivals)
	}
	return res, nil
}

// CalibrateOpenLoopCapacity estimates the loopback fabric's closed-
// loop capacity (granted acquisitions/s) by running workers
// back-to-back acquire/release cycles for the given duration on a
// fresh FIFO cell. Tests use it to place open-loop rates relative to
// the machine they run on — "3× capacity" is past the knee on any
// hardware, where a fixed rate would be past it on one machine and
// under it on another.
func CalibrateOpenLoopCapacity(nodes, workers int, d time.Duration) (float64, error) {
	cfg := OpenLoopConfig{Nodes: nodes, Policy: serve.FIFO, RPS: 1}
	if err := cfg.defaults(); err != nil {
		return 0, err
	}
	cell, err := startOpenLoopCell(cfg)
	if err != nil {
		return 0, err
	}
	defer cell.close()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		cl := cell.clients[w%len(cell.clients)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				r1 := (i + w*7) % tcpLoopM
				r2 := (r1 + 11) % tcpLoopM
				release, err := cl.Acquire(ctx, serve.AnyNode, r1, r2)
				if err != nil {
					return
				}
				release()
				ops.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(ops.Load()) / d.Seconds(), nil
}

// Sustains reports whether the cell met the SLO: survivor p99 within
// the target and at most 10% of arrivals lost (shed, timed out or
// dropped) — a configuration that "holds p99" by refusing a third of
// its traffic is not sustaining the offered rate.
func (r OpenLoopResult) Sustains(sloP99 time.Duration) bool {
	return r.Arrivals > 0 &&
		r.Sojourn.P99 <= float64(sloP99)/float64(time.Millisecond) &&
		r.ShedRate <= 0.1
}

// OpenLoopSLO is the result of FindSLO's knee search.
type OpenLoopSLO struct {
	// MaxRPS is the highest offered rate that sustained the SLO (0 if
	// even the base rate failed); Goodput and P99MS are that cell's.
	MaxRPS  float64
	Goodput float64
	P99MS   float64
	// FailRPS is the lowest rate observed failing (0 if the search hit
	// Cap without failing); Cells counts the cells run.
	FailRPS float64
	Cells   int
}

// FindSLO locates the saturation knee of one configuration: starting
// at base RPS it doubles the offered rate until the SLO fails or cap
// is reached, then bisects twice between the last pass and the first
// failure, reusing one cell definition per step (fresh fabric each —
// no cross-step queue leakage). The knee-finding resolution is about
// ±12% of the knee, which is below run-to-run jitter on a loaded
// machine; the regression gate compares against it with a 10% band on
// top.
func FindSLO(cfg OpenLoopConfig, sloP99 time.Duration, base, cap float64) (OpenLoopSLO, error) {
	if base <= 0 || cap < base {
		return OpenLoopSLO{}, fmt.Errorf("openloop: bad SLO search range [%v, %v]", base, cap)
	}
	out := OpenLoopSLO{}
	run := func(rps float64) (OpenLoopResult, error) {
		c := cfg
		c.RPS = rps
		if c.SLO == 0 {
			c.SLO = sloP99 // goodput counts what the search checks
		}
		out.Cells++
		return RunOpenLoop(c)
	}
	pass, fail := 0.0, 0.0
	for rps := base; ; rps *= 2 {
		if rps > cap {
			rps = cap
		}
		res, err := run(rps)
		if err != nil {
			return out, err
		}
		if res.Sustains(sloP99) {
			pass = rps
			out.MaxRPS, out.Goodput, out.P99MS = rps, res.Goodput, res.Sojourn.P99
			if rps >= cap {
				return out, nil
			}
		} else {
			fail = rps
			out.FailRPS = rps
			break
		}
	}
	if pass == 0 {
		return out, nil // even base failed: MaxRPS 0, FailRPS base
	}
	for i := 0; i < 2; i++ {
		mid := (pass + fail) / 2
		res, err := run(mid)
		if err != nil {
			return out, err
		}
		if res.Sustains(sloP99) {
			pass = mid
			out.MaxRPS, out.Goodput, out.P99MS = mid, res.Goodput, res.Sojourn.P99
		} else {
			fail = mid
			out.FailRPS = mid
		}
	}
	return out, nil
}

// openLoopSLOTarget is the tier's p99 SLO: well above the fabric's
// uncongested sojourn (hundreds of microseconds) and well below the
// collapse signature (sojourns clamped at the 1s timeout), so the
// pass/fail boundary is the knee, not noise.
const openLoopSLOTarget = 50 * time.Millisecond

// openLoopAdmitTarget is the Adaptive grant-latency target of the
// tier's cells: a fifth of the SLO. Probing showed deeper targets are
// strictly worse here — a deeper admitted queue both lengthens the
// survivors' sojourns and (by slowing every slot's grant/release round
// trip) lowers the admitted rate, so the rest of the SLO is left for
// wire round trips, fan-out and scheduling noise.
const openLoopAdmitTarget = 10 * time.Millisecond

// openLoopScenario is one fixed-rate cell as a report row.
func openLoopScenario(nodes int, policy serve.Policy, rps float64) Scenario {
	name := fmt.Sprintf("openloop/n%d/%s/r%d", nodes, policy, int(rps))
	return Scenario{Name: name, Run: func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var last OpenLoopResult
		for i := 0; i < b.N; i++ {
			cfg := OpenLoopConfig{Nodes: nodes, Policy: policy, RPS: rps, Seed: 7}
			if policy == serve.Adaptive {
				cfg.AdmitTarget = openLoopAdmitTarget
			}
			res, err := RunOpenLoop(cfg)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.StopTimer()
		reportOpenLoop(b, last)
	}}
}

func reportOpenLoop(b *testing.B, res OpenLoopResult) {
	b.ReportMetric(res.Offered, "offered_rps")
	b.ReportMetric(res.Throughput, "grant_rps")
	b.ReportMetric(res.Goodput, "goodput_rps")
	b.ReportMetric(res.ShedRate, "shed_rate")
	b.ReportMetric(res.Sojourn.Mean, "wait_mean_ms")
	b.ReportMetric(res.Sojourn.P50, "wait_p50_ms")
	b.ReportMetric(res.Sojourn.P95, "wait_p95_ms")
	b.ReportMetric(res.Sojourn.P99, "wait_p99_ms")
}

// openLoopSLOScenario is one configuration's knee search as a report
// row: slo_max_rps is the highest offered rate sustaining the tier
// SLO, goodput/quantiles are the passing cell's.
func openLoopSLOScenario(nodes int, policy serve.Policy, base, cap float64) Scenario {
	name := fmt.Sprintf("openloop/n%d/%s/slo", nodes, policy)
	return Scenario{Name: name, Run: func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var last OpenLoopSLO
		for i := 0; i < b.N; i++ {
			cfg := OpenLoopConfig{Nodes: nodes, Policy: policy, Seed: 7}
			if policy == serve.Adaptive {
				cfg.AdmitTarget = openLoopAdmitTarget
			}
			slo, err := FindSLO(cfg, openLoopSLOTarget, base, cap)
			if err != nil {
				b.Fatal(err)
			}
			last = slo
		}
		b.StopTimer()
		b.ReportMetric(last.MaxRPS, "slo_max_rps")
		b.ReportMetric(last.Goodput, "goodput_rps")
		b.ReportMetric(last.P99MS, "wait_p99_ms")
	}}
}

// openLoopRates is the committed rate ladder. The loopback fabric's
// open-loop knee sits at roughly half its closed-loop capacity (the
// tcploop rows): the low rung is far below it, the middle rung just
// below it, and the top rung is past it, so the report shows the same
// fabric before, at, and beyond the knee.
var openLoopRates = []float64{2000, 12000, 30000}

// OpenLoopGrid is the open-loop tier: the rate ladder under unbounded
// FIFO (the collapse exhibit) and under Adaptive (which must hold p99
// by shedding), plus each configuration's SLO knee search.
func OpenLoopGrid() []Scenario {
	var out []Scenario
	for _, policy := range []serve.Policy{serve.FIFO, serve.Adaptive} {
		for _, rps := range openLoopRates {
			out = append(out, openLoopScenario(4, policy, rps))
		}
		out = append(out, openLoopSLOScenario(4, policy, 1000, 32000))
	}
	return out
}
