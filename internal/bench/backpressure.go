package bench

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/wire"
)

// The backpressure tier: the stalled-peer cell. A coalescing writer
// feeds a deliberately slow sink — the stand-in for a peer that reads
// far slower than we produce — under a byte budget. Pre-budget, the
// queue grew without bound (the one known OOM path); the cell asserts
// the queue stays pinned under budget + one frame while measuring what
// the blocking costs. Budget stalls ride the events column.

// slowSink models a peer draining at a fixed per-write latency.
type slowSink struct {
	delay   time.Duration
	written atomic.Int64
}

func (s *slowSink) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	s.written.Add(int64(len(p)))
	return len(p), nil
}

// backpressureScenario appends b.N one-KiB frames against the budget.
// One op is one admitted frame; the scenario fails outright if the
// queue ever exceeds the bound the budget promises.
func backpressureScenario(budget int64, delay time.Duration) Scenario {
	const frameLen = 1024
	s := Scenario{Name: fmt.Sprintf("backpressure/stall/b%dk", budget>>10)}
	s.Run = func(b *testing.B) {
		sink := &slowSink{delay: delay}
		co := wire.NewCoalescer(sink, 0, func(error) {})
		co.SetByteBudget(budget)
		payload := make([]byte, frameLen)
		b.ReportAllocs()
		b.ResetTimer()
		var peak int64
		for i := 0; i < b.N; i++ {
			if !co.Append(payload) {
				b.Fatal("append refused")
			}
			if q := co.QueuedBytes(); q > peak {
				peak = q
			}
		}
		b.StopTimer()
		if err := co.Close(); err != nil {
			b.Fatal(err)
		}
		if lim := budget + frameLen + 32; peak > lim {
			b.Fatalf("queued %d bytes exceeds the budget bound %d", peak, lim)
		}
		st := co.Stats()
		n := float64(b.N)
		b.ReportMetric(float64(st.Writes)/n, "writes_per_op")
		b.ReportMetric(float64(st.Bytes)/n, "wire_bytes_per_op")
		if st.Flushes > 0 {
			b.ReportMetric(float64(st.Frames)/float64(st.Flushes), "avg_batch_frames")
		}
		b.ReportMetric(float64(st.Stalls), "events_per_op")
	}
	return s
}

// BackpressureGrid is the stalled-peer cell at the default-shaped
// budget ratio (64 KiB budget, 20µs per sink write — a sink roughly
// 50× slower than loopback).
func BackpressureGrid() []Scenario {
	return []Scenario{backpressureScenario(64<<10, 20*time.Microsecond)}
}
