package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/transport"
	"mralloc/internal/wire"
)

// The largeN tier: real loopback sockets at cluster sizes where token
// state dominates the wire. A token carries two N-sized stamp vectors,
// so at N∈{128,512} every LASS.Response ships hundreds to thousands of
// bytes of mostly-unchanged state — exactly what the delta-encoded
// token path exists to cut. Each cell assembles two in-process daemons
// (one TCP peer endpoint per half, every cross-half protocol message
// over a real socket) and drives concurrent acquire/release cycles
// straight through the live clusters.
//
// Twins per N, each toggling exactly one payload-path axis:
//
//	delta   — delta tokens on,  writev on  (the full payload path)
//	nodelta — delta tokens off, writev on  (isolates the delta win)
//	copy    — delta tokens on,  writev off (isolates the writev win)
//
// The workload and protocol traffic are identical across twins
// (msg_per_cs matches within run jitter); wire_bytes_per_op is the
// column the delta/nodelta pair pins, writes_per_op and ns/op the
// writev/copy pair.

// largeNM is the tier's resource universe; requests take 2 resources.
const largeNM = 32

// largeNSessions is the concurrent driver count per cell.
const largeNSessions = 32

type largeNCell struct {
	trs      []*transport.TCP
	clusters []*live.Cluster
}

func startLargeNCell(b *testing.B, nodes int, wireOpts transport.WireOptions) *largeNCell {
	b.Helper()
	half := nodes / 2
	locals := [2][]int{}
	for i := 0; i < nodes; i++ {
		if i < half {
			locals[0] = append(locals[0], i)
		} else {
			locals[1] = append(locals[1], i)
		}
	}
	cell := &largeNCell{}
	addrs := make([]string, nodes)
	for d := 0; d < 2; d++ {
		tr, err := transport.ListenTCP("127.0.0.1:0", nodes, locals[d]...)
		if err != nil {
			b.Fatal(err)
		}
		cell.trs = append(cell.trs, tr)
		for _, id := range locals[d] {
			addrs[id] = tr.Addr()
		}
	}
	for d := 0; d < 2; d++ {
		if err := cell.trs[d].Connect(addrs); err != nil {
			b.Fatal(err)
		}
		c, err := live.New(live.Config{
			Nodes:     nodes,
			Resources: largeNM,
			Transport: cell.trs[d],
			Local:     locals[d],
			Wire:      wireOpts,
		}, core.NewFactory(core.WithLoan()))
		if err != nil {
			b.Fatal(err)
		}
		cell.clusters = append(cell.clusters, c)
	}
	return cell
}

func (c *largeNCell) close() {
	for _, cl := range c.clusters {
		cl.Close() // closes its transport
	}
}

func (c *largeNCell) wireStats() wire.CoalescerStats {
	var total wire.CoalescerStats
	for _, tr := range c.trs {
		total.Add(tr.WireStats())
	}
	return total
}

func (c *largeNCell) peerMsgs() int64 {
	var total int64
	for _, tr := range c.trs {
		for _, v := range tr.Stats() {
			total += v
		}
	}
	return total
}

// largeNScenario benchmarks largeNSessions concurrent workers driving
// acquire/release cycles of 2 resources each across both halves. One
// op is one granted-and-released acquisition.
func largeNScenario(nodes int, tag string, wireOpts transport.WireOptions) Scenario {
	s := Scenario{Name: fmt.Sprintf("largeN/n%d/%s", nodes, tag)}
	var lastHist string
	s.Run = func(b *testing.B) {
		cell := startLargeNCell(b, nodes, wireOpts)
		defer cell.close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		wireBase, msgBase := cell.wireStats(), cell.peerMsgs()

		var next atomic.Int64
		var wg sync.WaitGroup
		var failed atomic.Bool
		for w := 0; w < largeNSessions; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) || failed.Load() {
						return
					}
					node := int(i+int64(w*13)) % nodes
					cl := cell.clusters[node*2/nodes]
					r1 := int(i+int64(w*7)) % largeNM
					r2 := (r1 + 11) % largeNM
					release, err := cl.Acquire(ctx, node, r1, r2)
					if err != nil {
						// b.Fatal would Goexit a non-benchmark goroutine,
						// which the testing package forbids.
						b.Error(err)
						failed.Store(true)
						return
					}
					release()
				}
			}()
		}
		wg.Wait()
		b.StopTimer()

		wireNow, msgNow := cell.wireStats(), cell.peerMsgs()
		writes := wireNow.Writes - wireBase.Writes
		flushes := wireNow.Flushes - wireBase.Flushes
		frames := wireNow.Frames - wireBase.Frames
		bytes := wireNow.Bytes - wireBase.Bytes
		n := float64(b.N)
		b.ReportMetric(float64(writes)/n, "writes_per_op")
		b.ReportMetric(float64(bytes)/n, "wire_bytes_per_op")
		if flushes > 0 {
			b.ReportMetric(float64(frames)/float64(flushes), "avg_batch_frames")
		}
		b.ReportMetric(float64(msgNow-msgBase)/n, "msg_per_cs")
		b.ReportMetric(1, "grants_per_op")
		var histDelta wire.CoalescerStats
		for i := range histDelta.Hist {
			histDelta.Hist[i] = wireNow.Hist[i] - wireBase.Hist[i]
		}
		lastHist = histDelta.HistString()
	}
	s.Post = func(r *Result) { r.BatchHist = lastHist }
	return s
}

// LargeNGrid is the payload-path tier: N∈{128,512}, one twin per
// toggled axis.
func LargeNGrid() []Scenario {
	var out []Scenario
	for _, n := range []int{128, 512} {
		out = append(out,
			largeNScenario(n, "delta", transport.WireOptions{Delta: true}),
			largeNScenario(n, "nodelta", transport.WireOptions{Delta: false}),
			largeNScenario(n, "copy", transport.WireOptions{Delta: true, NoVectored: true}),
		)
	}
	return out
}
