package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"mralloc/internal/serve"
)

func TestOpenLoopConfigValidation(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopConfig{Nodes: 3, Policy: serve.FIFO, RPS: 100}); err == nil {
		t.Error("odd node count accepted")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{Nodes: 4, Policy: serve.FIFO}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{Nodes: 4, Policy: "bogus", RPS: 100}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := FindSLO(OpenLoopConfig{Nodes: 4, Policy: serve.FIFO}, time.Second, 1000, 500); err == nil {
		t.Error("inverted SLO search range accepted")
	}
}

func TestMergeReportsKeepsPriorRows(t *testing.T) {
	prior := Report{
		Schema:  Schema,
		Notes:   []string{"old note"},
		Current: []Result{{Scenario: "a", NsPerOp: 1}, {Scenario: "b", NsPerOp: 2}},
		Deltas:  []Delta{{Scenario: "a", NsRatio: 1}},
	}
	next := Report{
		Notes:   []string{"old note", "new note"},
		Current: []Result{{Scenario: "b", NsPerOp: 99}, {Scenario: "c", NsPerOp: 3}},
		Deltas:  []Delta{{Scenario: "c", NsRatio: 2}},
	}
	got := MergeReports(prior, next)
	if len(got.Current) != 3 || got.Current[0].Scenario != "a" || got.Current[1].NsPerOp != 2 || got.Current[2].Scenario != "c" {
		t.Fatalf("merged rows wrong: %+v", got.Current)
	}
	if len(got.Notes) != 2 || got.Notes[1] != "new note" {
		t.Fatalf("merged notes wrong: %v", got.Notes)
	}
	if len(got.Deltas) != 2 {
		t.Fatalf("merged deltas wrong: %+v", got.Deltas)
	}
}

// TestOpenLoopCollapseVsAdaptive is the tier's pinned claim: offered
// load strictly past capacity collapses an unbounded FIFO queue (p99
// at timeout scale) while the Adaptive policy sheds early and holds
// the survivors' p99 inside the SLO — at a goodput (grants within the
// SLO) no worse than FIFO's, whose grants arrive too late to count.
// The rate is placed relative to this machine's measured closed-loop
// capacity, so the cell is past the knee on any hardware.
func TestOpenLoopCollapseVsAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop cells need real wall-clock windows")
	}
	capacity, err := CalibrateOpenLoopCapacity(4, 16, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rate := 1.1 * capacity
	t.Logf("closed-loop capacity ≈ %.0f/s, offering %.0f/s", capacity, rate)
	run := func(policy serve.Policy) OpenLoopResult {
		cfg := OpenLoopConfig{Nodes: 4, Policy: policy, RPS: rate, Seed: 7,
			Warmup: 200 * time.Millisecond, Window: 600 * time.Millisecond,
			Timeout: 500 * time.Millisecond}
		if policy == serve.Adaptive {
			cfg.AdmitTarget = openLoopAdmitTarget
		}
		res, err := RunOpenLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-8s offered=%.0f grant=%.0f goodput=%.0f shed=%.3f p50=%.1f p99=%.1fms",
			policy, res.Offered, res.Throughput, res.Goodput, res.ShedRate,
			res.Sojourn.P50, res.Sojourn.P99)
		return res
	}
	fifo := run(serve.FIFO)
	adaptive := run(serve.Adaptive)

	slo := float64(openLoopSLOTarget) / float64(time.Millisecond)
	if fifo.Sojourn.P99 < 3*slo {
		t.Errorf("FIFO past the knee should collapse: p99 = %.1fms, want ≥ %.0fms", fifo.Sojourn.P99, 3*slo)
	}
	if adaptive.Sojourn.P99 > 3*slo {
		t.Errorf("adaptive p99 = %.1fms, want ≤ %.0fms", adaptive.Sojourn.P99, 3*slo)
	}
	if adaptive.Goodput < fifo.Goodput {
		t.Errorf("adaptive goodput %.0f/s below FIFO's %.0f/s", adaptive.Goodput, fifo.Goodput)
	}
	if adaptive.Shed == 0 {
		t.Error("adaptive shed nothing past the knee — it must deny, not queue unboundedly")
	}
	if fifo.Shed != 0 {
		t.Errorf("unbounded FIFO has no shedding edge, yet shed %d", fifo.Shed)
	}
}

// TestOpenLoopSmoke is the CI regression gate over the committed
// BENCH_4.json: the openloop rows must exist with the tier's columns
// (schema drift fails), and a capped SLO search on this machine must
// sustain at least 90% of min(committed adaptive slo_max_rps, cap).
// The cap keeps the gate meaningful across hardware: it checks "the
// fabric still sustains a modest rate within the SLO", not "this
// runner is as fast as the one that wrote the report".
func TestOpenLoopSmoke(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_4.json")
	if err != nil {
		t.Fatalf("committed report missing: %v", err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_4.json: %v", err)
	}
	if report.Schema != Schema {
		t.Fatalf("BENCH_4.json schema %q, want %q", report.Schema, Schema)
	}
	rows := map[string]Result{}
	for _, r := range report.Current {
		rows[r.Scenario] = r
	}
	var committedSLO float64
	for _, s := range OpenLoopGrid() {
		r, ok := rows[s.Name]
		if !ok {
			t.Errorf("BENCH_4.json lacks committed row %q", s.Name)
			continue
		}
		switch {
		case s.Name == "openloop/n4/adaptive/slo":
			committedSLO = r.SLOMaxRPS
			fallthrough
		case s.Name == "openloop/n4/fifo/slo":
			if r.SLOMaxRPS <= 0 {
				t.Errorf("row %q has no slo_max_rps", s.Name)
			}
		default:
			if r.OfferedRPS <= 0 || r.WaitP99MS <= 0 {
				t.Errorf("row %q lacks tier columns (offered_rps=%v wait_p99_ms=%v)",
					s.Name, r.OfferedRPS, r.WaitP99MS)
			}
		}
	}
	if t.Failed() || testing.Short() {
		return
	}

	const searchCap = 6000.0
	want := committedSLO
	if want > searchCap {
		want = searchCap
	}
	cfg := OpenLoopConfig{Nodes: 4, Policy: serve.Adaptive, AdmitTarget: openLoopAdmitTarget, Seed: 7,
		Warmup: 200 * time.Millisecond, Window: 600 * time.Millisecond, Timeout: 500 * time.Millisecond}
	slo, err := FindSLO(cfg, openLoopSLOTarget, 750, searchCap)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive sustains %.0f RPS within %v (goodput %.0f/s, p99 %.1fms, %d cells; committed %.0f)",
		slo.MaxRPS, openLoopSLOTarget, slo.Goodput, slo.P99MS, slo.Cells, committedSLO)
	if slo.MaxRPS < 0.9*want {
		t.Errorf("sustained RPS at SLO regressed: %.0f < 90%% of %.0f", slo.MaxRPS, want)
	}
}
