// Package bench is the reproducible performance harness behind
// BENCH_*.json. It defines a fixed scenario grid over the simulation
// kernel, the LASS hot paths, and the live goroutine runtime, measures
// each cell with testing.Benchmark, and renders the results against the
// frozen pre-optimization baseline (baseline.go).
//
// The grid is deterministic: scenario names, workload seeds, and the
// protocol-level metrics (messages per critical section, grants,
// simulator events) reproduce exactly across runs. Wall-clock metrics
// (ns/op, allocs/op, CS/s) vary with the machine; the baseline column
// records them once, on the same machine state as the first optimized
// run, so the ratios in the report are meaningful.
package bench

import (
	"fmt"
	"testing"

	"mralloc/internal/core"
	"mralloc/internal/driver"
	"mralloc/internal/experiments"
	"mralloc/internal/live"
	"mralloc/internal/resource"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"mralloc/internal/workload"

	"context"
)

// Scenario is one cell of the benchmark grid.
type Scenario struct {
	// Name is the stable identifier, e.g. "sim/n128/loan".
	Name string
	// Run executes the scenario under b and attaches extra metrics via
	// b.ReportMetric (msg_per_cs, grants_per_op, events_per_op).
	Run func(b *testing.B)
	// Post, when non-nil, decorates the measured Result with metrics
	// that cannot ride b.ReportMetric (strings — the batch histogram).
	Post func(r *Result)
}

// simWorkload is the paper-standard workload at the given cluster size.
// M, φ, α, γ and ρ are the high-load constants of §5.1; only N varies
// across the grid.
func simWorkload(n int) workload.Config {
	return workload.Config{
		N: n, M: 80, Phi: 16,
		AlphaMin: 5 * sim.Millisecond,
		AlphaMax: 35 * sim.Millisecond,
		Gamma:    600 * sim.Microsecond,
		Rho:      0.1,
		Seed:     7,
	}
}

// simHorizon bounds the simulated span per iteration. Larger clusters
// process proportionally more messages per simulated second, so the
// horizon shrinks with N to keep one iteration comparable.
func simHorizon(n int) sim.Time {
	switch {
	case n >= 512:
		return 300 * sim.Millisecond
	case n >= 128:
		return 600 * sim.Millisecond
	default:
		return 1 * sim.Second
	}
}

// simScenario benchmarks one full driver.Run per iteration.
func simScenario(name string, wl workload.Config, opt core.Options) Scenario {
	return Scenario{Name: name, Run: func(b *testing.B) {
		cfg := driver.Config{
			Workload:   wl,
			Processing: experiments.Proc,
			Warmup:     20 * sim.Millisecond,
			Horizon:    simHorizon(wl.N),
		}
		factory := core.NewFactory(opt)
		b.ReportAllocs()
		b.ResetTimer()
		var last driver.Result
		for i := 0; i < b.N; i++ {
			res, err := driver.Run(cfg, factory)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.MsgPerGrant, "msg_per_cs")
		b.ReportMetric(float64(last.Grants), "grants_per_op")
		b.ReportMetric(float64(last.Events), "events_per_op")
		reportWait(b, last)
	}}
}

// reportWait attaches the wait-time distribution of a driver run to
// the benchmark record (enqueue→grant, milliseconds).
func reportWait(b *testing.B, res driver.Result) {
	b.ReportMetric(res.Waiting.Mean, "wait_mean_ms")
	b.ReportMetric(res.Waiting.P50, "wait_p50_ms")
	b.ReportMetric(res.Waiting.P95, "wait_p95_ms")
	b.ReportMetric(res.Waiting.P99, "wait_p99_ms")
}

// SimGrid is the cluster-size × loan grid plus the zones and skew
// workloads from internal/workload.
func SimGrid() []Scenario {
	var out []Scenario
	for _, n := range []int{32, 128, 512} {
		for _, loan := range []bool{false, true} {
			opt, tag := core.WithoutLoan(), "noloan"
			if loan {
				opt, tag = core.WithLoan(), "loan"
			}
			out = append(out, simScenario(fmt.Sprintf("sim/n%d/%s", n, tag), simWorkload(n), opt))
		}
	}
	zones := simWorkload(32)
	zones.Zones, zones.LocalBias = 4, 0.8
	out = append(out, simScenario("sim/n32/zones4", zones, core.WithLoan()))
	skew := simWorkload(32)
	skew.Skew = 1.0
	out = append(out, simScenario("sim/n32/skew", skew, core.WithLoan()))
	return out
}

// serveWorkload is the multiplexed-sessions workload: the paper's M/φ
// shape at light per-session load (high ρ), so a single session leaves
// a node mostly thinking and the sessions axis — not raw protocol
// saturation — is what moves the needle. That is the regime the serve
// layer exists for: many mostly-idle clients multiplexed onto few
// protocol nodes.
func serveWorkload(n int) workload.Config {
	wl := simWorkload(n)
	wl.Phi = 8
	wl.Rho = 8
	return wl
}

// ServeCell runs one sessions-per-node cell: n nodes × sessions
// concurrent sessions per node under the given admission policy, over
// the serveWorkload, measuring enqueue→grant waiting (the queue wait
// is the point). Exported so the CI bench-smoke test can run the same
// cells with a tiny horizon.
func ServeCell(n, sessions int, policy serve.Policy, horizon sim.Time) (driver.Result, error) {
	return driver.Run(driver.Config{
		Workload:   serveWorkload(n),
		Sessions:   sessions,
		Policy:     policy,
		Processing: experiments.Proc,
		Warmup:     20 * sim.Millisecond,
		Horizon:    horizon,
	}, core.NewFactory(core.WithLoan()))
}

// serveScenario benchmarks one ServeCell per iteration.
func serveScenario(n, sessions int, policy serve.Policy) Scenario {
	name := fmt.Sprintf("serve/n%d/s%d/%s", n, sessions, policy)
	horizon := simHorizon(n)
	return Scenario{Name: name, Run: func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var last driver.Result
		for i := 0; i < b.N; i++ {
			res, err := ServeCell(n, sessions, policy, horizon)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.MsgPerGrant, "msg_per_cs")
		b.ReportMetric(float64(last.Grants), "grants_per_op")
		b.ReportMetric(float64(last.Events), "events_per_op")
		reportWait(b, last)
	}}
}

// ServeGrid is the sessions-per-node grid: S∈{1,8,64} sessions × N
// nodes × policy. FIFO and SSF cover every cell (the two policies the
// scaling claim is reported over); EDF is sampled at the heaviest cell.
func ServeGrid() []Scenario {
	var out []Scenario
	for _, n := range []int{8, 32} {
		for _, s := range []int{1, 8, 64} {
			for _, p := range []serve.Policy{serve.FIFO, serve.SSF} {
				out = append(out, serveScenario(n, s, p))
			}
		}
	}
	out = append(out, serveScenario(8, 64, serve.EDF))
	return out
}

// MicroGrid isolates the two allocation-heavy kernels under the sim
// scenarios: event scheduling in sim.Engine and request sampling in
// workload.Generator.
func MicroGrid() []Scenario {
	engine := Scenario{Name: "micro/engine/schedule", Run: func(b *testing.B) {
		const k = 65536
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			var fn func()
			n := 0
			fn = func() {
				if n < k {
					n++
					e.After(sim.Microsecond, fn)
				}
			}
			e.After(sim.Microsecond, fn)
			e.Run()
		}
		b.ReportMetric(k, "events_per_op")
	}}
	cancel := Scenario{Name: "micro/engine/cancel", Run: func(b *testing.B) {
		// Schedule k events, cancel every other one, drain: exercises
		// the canceled-head discard path and event recycling.
		const k = 65536
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			for j := 0; j < k; j++ {
				ev := e.At(sim.Time(j), func() {})
				if j%2 == 0 {
					e.Cancel(ev)
				}
			}
			e.Run()
		}
		b.ReportMetric(k, "events_per_op")
	}}
	sample := Scenario{Name: "micro/workload/next", Run: func(b *testing.B) {
		g := workload.NewGenerator(simWorkload(32), 3)
		b.ReportAllocs()
		b.ResetTimer()
		size := 0
		for i := 0; i < b.N; i++ {
			size += g.Next().Size
		}
		_ = size
	}}
	set := Scenario{Name: "micro/resource/sample", Run: func(b *testing.B) {
		r := sim.Stream(7, "bench/sample")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := resource.Sample(r, 80, 16)
			if s.Len() != 16 {
				b.Fatal("bad sample")
			}
		}
	}}
	// wqueue.Insert is on the token hot path and its cost scales with
	// queue depth; the 512-entry cell pins the binary-search insertion
	// at the largeN regime the payload-path work targets.
	wq := Scenario{Name: "micro/wqueue/insert512", Run: func(b *testing.B) {
		qb := core.NewQueueBench(512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qb.Round()
		}
		b.ReportMetric(float64(qb.Ops()), "events_per_op")
	}}
	return []Scenario{engine, cancel, sample, set, wq}
}

// LiveGrid measures the goroutine runtime: end-to-end Acquire/Release
// throughput on a contended in-process cluster.
func LiveGrid() []Scenario {
	throughput := Scenario{Name: "live/acquire/n8", Run: func(b *testing.B) {
		c, err := live.New(live.Config{Nodes: 8, Resources: 32}, core.NewFactory(core.WithLoan()))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			release, err := c.Acquire(ctx, i%8, i%32, (i+11)%32)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
	}}
	parallel := Scenario{Name: "live/acquire/n8/parallel", Run: func(b *testing.B) {
		c, err := live.New(live.Config{Nodes: 8, Resources: 32}, core.NewFactory(core.WithLoan()))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				node := i % 8
				release, err := c.Acquire(ctx, node, (node*7+i)%32)
				if err != nil {
					// b.Fatal would Goexit a non-benchmark goroutine,
					// which the testing package forbids.
					b.Error(err)
					return
				}
				release()
			}
		})
	}}
	return []Scenario{throughput, parallel}
}

// Grid is the full scenario grid of the checked-in BENCH report, in
// report order.
func Grid() []Scenario {
	var out []Scenario
	out = append(out, SimGrid()...)
	out = append(out, ServeGrid()...)
	out = append(out, MicroGrid()...)
	out = append(out, LiveGrid()...)
	out = append(out, TCPLoopGrid()...)
	out = append(out, LargeNGrid()...)
	out = append(out, BackpressureGrid()...)
	out = append(out, OpenLoopGrid()...)
	out = append(out, RecoveryGrid()...)
	out = append(out, ShardedGrid()...)
	return out
}

// Measure runs one scenario and converts its benchmark result into a
// schema Result row.
func Measure(s Scenario) Result {
	r := testing.Benchmark(s.Run)
	res := Result{
		Scenario:    s.Name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if v, ok := r.Extra["msg_per_cs"]; ok {
		res.MsgPerCS = round3(v)
	}
	if v, ok := r.Extra["grants_per_op"]; ok {
		res.GrantsPerOp = int64(v)
	}
	if v, ok := r.Extra["events_per_op"]; ok {
		res.EventsPerOp = int64(v)
	}
	if v, ok := r.Extra["wait_mean_ms"]; ok {
		res.WaitMeanMS = round3(v)
	}
	if v, ok := r.Extra["wait_p50_ms"]; ok {
		res.WaitP50MS = round3(v)
	}
	if v, ok := r.Extra["wait_p95_ms"]; ok {
		res.WaitP95MS = round3(v)
	}
	if v, ok := r.Extra["wait_p99_ms"]; ok {
		res.WaitP99MS = round3(v)
	}
	if v, ok := r.Extra["writes_per_op"]; ok {
		res.WritesPerOp = round3(v)
	}
	if v, ok := r.Extra["wire_bytes_per_op"]; ok {
		res.WireBytesPerOp = round3(v)
	}
	if v, ok := r.Extra["avg_batch_frames"]; ok {
		res.AvgBatchFrames = round3(v)
	}
	if v, ok := r.Extra["offered_rps"]; ok {
		res.OfferedRPS = round3(v)
	}
	if v, ok := r.Extra["grant_rps"]; ok {
		res.GrantRPS = round3(v)
	}
	if v, ok := r.Extra["goodput_rps"]; ok {
		res.GoodputRPS = round3(v)
	}
	if v, ok := r.Extra["shed_rate"]; ok {
		res.ShedRate = round3(v)
	}
	if v, ok := r.Extra["slo_max_rps"]; ok {
		res.SLOMaxRPS = round3(v)
	}
	if v, ok := r.Extra["retransmits_per_op"]; ok {
		res.RetransmitsPerOp = round3(v)
	}
	if v, ok := r.Extra["dups_dropped_per_op"]; ok {
		res.DupsDroppedPerOp = round3(v)
	}
	if res.NsPerOp > 0 {
		ops := 1e9 / float64(res.NsPerOp)
		if res.GrantsPerOp > 0 {
			// Wall-clock critical sections per second: how many CS the
			// harness pushes through one real second of simulation.
			res.CSPerSec = round3(ops * float64(res.GrantsPerOp))
		}
	}
	if s.Post != nil {
		s.Post(&res)
	}
	return res
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
