package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestShardedSmoke is the CI gate for the sharded tier: it measures
// the G=1 and G=4 single-shard cells fresh — same machine, same run —
// and fails if the G=4 speedup falls below 90% of min(committed
// BENCH_6.json ratio, the 2.5× tier claim), or if the report schema
// drifted. The gate compares the speedup ratio, not raw ns/op: the
// ratio is what the tier claims (per-shard allocator parallelism) and
// it is stable across machines where wall clock is not. The min()
// keeps a fast committed record from tightening the gate, and the
// best-of-three retry absorbs scheduler noise (the G=1 cell's egress
// batching is timing-sensitive, so single samples jitter ~±20%).
func TestShardedSmoke(t *testing.T) {
	var g1, g4 Scenario
	for _, c := range ShardedGrid() {
		switch c.Name {
		case "sharded/g1/single":
			g1 = c
		case "sharded/g4/single":
			g4 = c
		}
	}
	if g1.Run == nil || g4.Run == nil {
		t.Fatal("sharded/g1/single or sharded/g4/single missing from the grid")
	}
	var r1, r4 Result
	fresh := 0.0
	for round := 0; round < 3 && fresh < 2.5; round++ {
		r1, r4 = Measure(g1), Measure(g4)
		for _, r := range []Result{r1, r4} {
			if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 {
				t.Fatalf("%s: no wall-clock measurement: %+v", r.Scenario, r)
			}
			if r.MsgPerCS <= 0 {
				t.Fatalf("%s: no protocol traffic — the contention pattern collapsed to the local fast path: %+v", r.Scenario, r)
			}
			if r.CSPerSec <= 0 {
				t.Fatalf("%s: no cs_per_sec: %+v", r.Scenario, r)
			}
			if r.WaitP50MS > r.WaitP95MS || r.WaitP95MS > r.WaitP99MS {
				t.Fatalf("%s: wait quantiles not monotone: %+v", r.Scenario, r)
			}
		}
		if v := float64(r1.NsPerOp) / float64(r4.NsPerOp); v > fresh {
			fresh = v
		}
		t.Logf("round %d: g1 %d ns/op, g4 %d ns/op, best speedup %.2f×", round, r1.NsPerOp, r4.NsPerOp, fresh)
	}

	// Regression gate against the committed report.
	data, err := os.ReadFile("../../BENCH_6.json")
	if err != nil {
		t.Fatalf("committed report missing: %v", err)
	}
	var committed Report
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("committed report unreadable: %v", err)
	}
	if committed.Schema != Schema {
		t.Fatalf("committed schema %q, code says %q (schema drift)", committed.Schema, Schema)
	}
	var ref1, ref4 *Result
	tierRows := 0
	for i, row := range committed.Current {
		if strings.HasPrefix(row.Scenario, "sharded/") {
			tierRows++
		}
		switch row.Scenario {
		case "sharded/g1/single":
			ref1 = &committed.Current[i]
		case "sharded/g4/single":
			ref4 = &committed.Current[i]
		}
	}
	if tierRows < 7 {
		t.Fatalf("committed report has %d sharded rows, want the full 3-single + 2×2-cross tier", tierRows)
	}
	if ref1 == nil || ref4 == nil {
		t.Fatal("committed report lacks the sharded/g{1,4}/single rows")
	}
	if ref1.CSPerSec <= 0 || ref4.CSPerSec <= 0 {
		t.Fatalf("committed rows have no cs_per_sec: %+v / %+v", ref1, ref4)
	}
	ratio := float64(ref1.NsPerOp) / float64(ref4.NsPerOp)
	if ratio < 2.5 {
		t.Fatalf("committed G=4 speedup %.2f× below the 2.5× tier claim", ratio)
	}
	gate := ratio
	if gate > 2.5 {
		gate = 2.5
	}
	if fresh < gate*0.90 {
		t.Fatalf("G=4 speedup regressed: best of 3 measured %.2f× vs gate %.2f× (90%% of min(committed %.2f×, claimed 2.5×))",
			fresh, gate*0.90, ratio)
	}

	// Schema drift gate: the measured row must round-trip with the
	// tier's keys intact under the frozen schema string.
	rep := NewReport([]Result{r4})
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != Schema {
		t.Fatalf("schema = %v, want %v", raw["schema"], Schema)
	}
	row := raw["current"].([]any)[0].(map[string]any)
	for _, key := range []string{"scenario", "ns_per_op", "allocs_per_op", "msg_per_cs",
		"grants_per_op", "cs_per_sec", "wait_mean_ms", "wait_p50_ms", "wait_p95_ms", "wait_p99_ms"} {
		if _, ok := row[key]; !ok {
			t.Errorf("report row missing %q (schema drift): %v", key, row)
		}
	}
}

// TestShardedCrossTwins smoke-runs the G=4 cross-shard twins: both
// composition strategies must move real cross-shard traffic and report
// sane waits. It asserts shape, not which twin wins — the ordering is
// the committed report's story, not a per-machine invariant.
func TestShardedCrossTwins(t *testing.T) {
	if testing.Short() {
		t.Skip("two benchmark cells in -short mode")
	}
	var ordered, twophase Scenario
	for _, c := range ShardedGrid() {
		switch c.Name {
		case "sharded/g4/cross/ordered":
			ordered = c
		case "sharded/g4/cross/twophase":
			twophase = c
		}
	}
	for _, s := range []Scenario{ordered, twophase} {
		if s.Run == nil {
			t.Fatal("cross twin missing from the grid")
		}
		r := Measure(s)
		if r.NsPerOp <= 0 || r.CSPerSec <= 0 || r.MsgPerCS <= 0 {
			t.Fatalf("%s: incomplete measurement: %+v", r.Scenario, r)
		}
		if r.WaitP50MS > r.WaitP95MS || r.WaitP95MS > r.WaitP99MS {
			t.Fatalf("%s: wait quantiles not monotone: %+v", r.Scenario, r)
		}
	}
}
