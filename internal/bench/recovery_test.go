package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRecoverySmoke runs the faulted recovery cell end to end — real
// sockets, chaos-injected drop and duplication, the lease-armed
// reliable stack — and gates the schema: the recovery columns the tier
// exists to record must be present, non-zero under injected faults,
// and survive a JSON round trip under the frozen schema name.
func TestRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	var s Scenario
	for _, c := range RecoveryGrid() {
		if strings.HasSuffix(c.Name, "/drop2dup2") {
			s = c
			break
		}
	}
	if s.Run == nil {
		t.Fatal("no faulted recovery scenario in the grid")
	}
	r := Measure(s)
	if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 {
		t.Fatalf("no wall-clock measurement: %+v", r)
	}
	if r.RetransmitsPerOp <= 0 {
		t.Fatalf("faults injected but no retransmits recorded: %+v", r)
	}
	if r.DupsDroppedPerOp <= 0 {
		t.Fatalf("duplication injected but no dups dropped: %+v", r)
	}
	rep := NewReport([]Result{r})
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != Schema {
		t.Fatalf("schema = %v, want %v", raw["schema"], Schema)
	}
	row := raw["current"].([]any)[0].(map[string]any)
	for _, key := range []string{"scenario", "ns_per_op",
		"retransmits_per_op", "dups_dropped_per_op"} {
		if _, ok := row[key]; !ok {
			t.Errorf("report row missing %q (schema drift): %v", key, row)
		}
	}
}
