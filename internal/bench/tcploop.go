package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/serve"
	"mralloc/internal/transport"
	"mralloc/internal/wire"
)

// The tcp-loopback tier: real daemons on 127.0.0.1. Each cell
// assembles what two mrallocd processes would be — a TCP peer
// transport per daemon (so every cross-half protocol message crosses a
// real socket), a live cluster hosting half the nodes, a client port,
// and serve.Clients driving concurrent sessions through the wire
// protocol. This is the ROADMAP's missing multi-process bench
// scenario: the sim grid measures the algorithms, this tier measures
// the wire path under them.
//
// Every cell runs twice, batch and nobatch: identical workload and
// protocol traffic (msg/cs must match), differing only in whether the
// coalescing writers may pack more than one frame per flush. The
// writes/op and bytes/op columns pin what the batching buys.

// tcpLoopM is the resource universe of the tier; requests take 2
// resources, so conflicts are common but not total at 32.
const tcpLoopM = 32

// tcpLoopCell is one assembled two-daemon loopback deployment.
type tcpLoopCell struct {
	trs      []*transport.TCP
	clusters []*live.Cluster
	servers  []*serve.Server
	clients  []*serve.Client
}

func startTCPLoopCell(b *testing.B, nodes int, batching bool, wireFor func(d int) transport.WireOptions) *tcpLoopCell {
	b.Helper()
	half := nodes / 2
	locals := [2][]int{}
	for i := 0; i < nodes; i++ {
		if i < half {
			locals[0] = append(locals[0], i)
		} else {
			locals[1] = append(locals[1], i)
		}
	}
	cell := &tcpLoopCell{}
	addrs := make([]string, nodes)
	for d := 0; d < 2; d++ {
		tr, err := transport.ListenTCP("127.0.0.1:0", nodes, locals[d]...)
		if err != nil {
			b.Fatal(err)
		}
		tr.SetBatching(batching)
		if wireFor != nil {
			tr.Tune(wireFor(d))
		}
		cell.trs = append(cell.trs, tr)
		for _, id := range locals[d] {
			addrs[id] = tr.Addr()
		}
	}
	for d := 0; d < 2; d++ {
		if err := cell.trs[d].Connect(addrs); err != nil {
			b.Fatal(err)
		}
		c, err := live.New(live.Config{
			Nodes:     nodes,
			Resources: tcpLoopM,
			Transport: cell.trs[d],
			Local:     locals[d],
		}, core.NewFactory(core.WithLoan()))
		if err != nil {
			b.Fatal(err)
		}
		cell.clusters = append(cell.clusters, c)
		srv, err := serve.NewServer(serve.ServerConfig{
			Listen:          "127.0.0.1:0",
			Nodes:           nodes,
			Resources:       tcpLoopM,
			Local:           locals[d],
			Open:            func(node int) (serve.BackendSession, error) { return c.NewSession(node) },
			DisableCoalesce: !batching,
		})
		if err != nil {
			b.Fatal(err)
		}
		cell.servers = append(cell.servers, srv)
		cl, err := serve.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		cl.SetBatching(batching)
		cell.clients = append(cell.clients, cl)
	}
	return cell
}

func (c *tcpLoopCell) close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	for _, cl := range c.clusters {
		cl.Close() // closes its transport
	}
}

// wireStats sums the egress counters of every coalescing writer in
// the deployment: peer transports, client ports, and clients.
func (c *tcpLoopCell) wireStats() wire.CoalescerStats {
	var total wire.CoalescerStats
	for _, tr := range c.trs {
		total.Add(tr.WireStats())
	}
	for _, s := range c.servers {
		total.Add(s.WireStats())
	}
	for _, cl := range c.clients {
		total.Add(cl.WireStats())
	}
	return total
}

// peerMsgs sums the per-kind protocol message counters of both peer
// endpoints.
func (c *tcpLoopCell) peerMsgs() int64 {
	var total int64
	for _, tr := range c.trs {
		for _, v := range tr.Stats() {
			total += v
		}
	}
	return total
}

// tcpLoopScenario benchmarks sessions concurrent client sessions
// driving acquire/release cycles through the two-daemon loopback
// deployment. One op is one granted-and-released acquisition of two
// resources on a daemon-picked node.
func tcpLoopScenario(nodes, sessions int, batching bool) Scenario {
	tag := "nobatch"
	if batching {
		tag = "batch"
	}
	return tcpLoopWireScenario(nodes, sessions, batching, tag, nil)
}

// tcpLoopHeteroScenario is the heterogeneous-feature twin: daemon 0 a
// full-featured build (delta tokens, adaptive flush), daemon 1 a
// feature-disabled build (no delta, no writev). Every cross-daemon
// link negotiates down to the common subset in its hello exchange; the
// columns pin what the mixture costs next to the homogeneous batch
// cell on identical workload.
func tcpLoopHeteroScenario(nodes, sessions int) Scenario {
	return tcpLoopWireScenario(nodes, sessions, true, "hetero", func(d int) transport.WireOptions {
		if d == 0 {
			return transport.WireOptions{
				Delta:         true,
				FlushDelay:    50 * time.Microsecond,
				FlushDelayMax: 2 * time.Millisecond,
			}
		}
		return transport.WireOptions{NoVectored: true}
	})
}

func tcpLoopWireScenario(nodes, sessions int, batching bool, tag string, wireFor func(d int) transport.WireOptions) Scenario {
	s := Scenario{Name: fmt.Sprintf("tcploop/n%d/s%d/%s", nodes, sessions, tag)}
	var lastHist string
	s.Run = func(b *testing.B) {
		cell := startTCPLoopCell(b, nodes, batching, wireFor)
		defer cell.close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		wireBase, msgBase := cell.wireStats(), cell.peerMsgs()

		var next atomic.Int64
		var wg sync.WaitGroup
		var failed atomic.Bool
		for w := 0; w < sessions; w++ {
			w := w
			cl := cell.clients[w%len(cell.clients)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) || failed.Load() {
						return
					}
					r1 := int(i+int64(w*7)) % tcpLoopM
					r2 := (r1 + 11) % tcpLoopM
					release, err := cl.Acquire(ctx, serve.AnyNode, r1, r2)
					if err != nil {
						// b.Fatal would Goexit a non-benchmark goroutine,
						// which the testing package forbids.
						b.Error(err)
						failed.Store(true)
						return
					}
					release()
				}
			}()
		}
		wg.Wait()
		b.StopTimer()

		wireNow, msgNow := cell.wireStats(), cell.peerMsgs()
		writes := wireNow.Writes - wireBase.Writes
		flushes := wireNow.Flushes - wireBase.Flushes
		frames := wireNow.Frames - wireBase.Frames
		bytes := wireNow.Bytes - wireBase.Bytes
		n := float64(b.N)
		b.ReportMetric(float64(writes)/n, "writes_per_op")
		b.ReportMetric(float64(bytes)/n, "wire_bytes_per_op")
		if flushes > 0 {
			b.ReportMetric(float64(frames)/float64(flushes), "avg_batch_frames")
		}
		b.ReportMetric(float64(msgNow-msgBase)/n, "msg_per_cs")
		b.ReportMetric(1, "grants_per_op")
		// Delta histogram: like the other wire columns, exclude the
		// cell's setup traffic so sum(hist) matches the flush delta.
		var histDelta wire.CoalescerStats
		for i := range histDelta.Hist {
			histDelta.Hist[i] = wireNow.Hist[i] - wireBase.Hist[i]
		}
		lastHist = histDelta.HistString()
	}
	s.Post = func(r *Result) { r.BatchHist = lastHist }
	return s
}

// TCPLoopGrid is the tcp-loopback tier: 4 nodes split across two
// daemons, a light and a heavy sessions count, each with batching on
// and off so BENCH_*.json pins the before/after on identical traffic,
// plus the heterogeneous-feature twin (mixed builds negotiating the
// common feature subset per link).
func TCPLoopGrid() []Scenario {
	var out []Scenario
	for _, sessions := range []int{8, 32} {
		for _, batching := range []bool{true, false} {
			out = append(out, tcpLoopScenario(4, sessions, batching))
		}
	}
	out = append(out, tcpLoopHeteroScenario(4, 8))
	return out
}
