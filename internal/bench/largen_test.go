package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestLargeNDeltaSmoke is the CI gate for the payload-path tier: it
// runs the smallest largeN cell end to end (real sockets, delta
// tokens, vectored egress) and fails if wire_bytes_per_op regresses
// more than 10% against the committed BENCH_3.json, or if the report
// schema drifted. Wire bytes per op is protocol traffic, not wall
// clock, so it is stable enough across machines to gate on.
func TestLargeNDeltaSmoke(t *testing.T) {
	const cellName = "largeN/n128/delta"
	var s Scenario
	for _, c := range LargeNGrid() {
		if c.Name == cellName {
			s = c
		}
	}
	if s.Run == nil {
		t.Fatalf("no %s scenario in the grid", cellName)
	}
	r := Measure(s)
	if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 {
		t.Fatalf("no wall-clock measurement: %+v", r)
	}
	if r.WritesPerOp <= 0 || r.WireBytesPerOp <= 0 || r.MsgPerCS <= 0 {
		t.Fatalf("wire-path metrics missing: %+v", r)
	}

	// Regression gate against the committed report.
	data, err := os.ReadFile("../../BENCH_3.json")
	if err != nil {
		t.Fatalf("committed report missing: %v", err)
	}
	var committed Report
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("committed report unreadable: %v", err)
	}
	if committed.Schema != Schema {
		t.Fatalf("committed schema %q, code says %q (schema drift)", committed.Schema, Schema)
	}
	var ref *Result
	tierRows := 0
	for i, row := range committed.Current {
		if strings.HasPrefix(row.Scenario, "largeN/") {
			tierRows++
		}
		if row.Scenario == cellName {
			ref = &committed.Current[i]
		}
	}
	if tierRows < 6 {
		t.Fatalf("committed report has %d largeN rows, want the full 2×3 twin grid", tierRows)
	}
	if ref == nil {
		t.Fatalf("committed report has no %s row", cellName)
	}
	if ref.WireBytesPerOp <= 0 {
		t.Fatalf("committed %s row has no wire_bytes_per_op", cellName)
	}
	if r.WireBytesPerOp > ref.WireBytesPerOp*1.10 {
		t.Fatalf("wire_bytes_per_op regressed: measured %.1f vs committed %.1f (>10%%)",
			r.WireBytesPerOp, ref.WireBytesPerOp)
	}

	// Schema drift gate: the measured row must round-trip with its
	// wire-path keys intact under the frozen schema string.
	rep := NewReport([]Result{r})
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != Schema {
		t.Fatalf("schema = %v, want %v", raw["schema"], Schema)
	}
	row := raw["current"].([]any)[0].(map[string]any)
	for _, key := range []string{"scenario", "ns_per_op", "allocs_per_op",
		"writes_per_op", "wire_bytes_per_op", "avg_batch_frames", "batch_hist", "msg_per_cs"} {
		if _, ok := row[key]; !ok {
			t.Errorf("report row missing %q (schema drift): %v", key, row)
		}
	}
}

// TestLargeNDeltaCutsBytes pins the tier's headline inside the test
// suite at the small N (the N=512 ≥25% claim is pinned by the
// committed BENCH_3.json twins): on identical workloads, the delta
// twin must move fewer bytes per op than the nodelta twin.
func TestLargeNDeltaCutsBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("two benchmark cells in -short mode")
	}
	var delta, nodelta Scenario
	for _, c := range LargeNGrid() {
		switch c.Name {
		case "largeN/n128/delta":
			delta = c
		case "largeN/n128/nodelta":
			nodelta = c
		}
	}
	d, nd := Measure(delta), Measure(nodelta)
	if d.WireBytesPerOp <= 0 || nd.WireBytesPerOp <= 0 {
		t.Fatalf("wire bytes missing: %+v / %+v", d, nd)
	}
	if d.WireBytesPerOp >= nd.WireBytesPerOp {
		t.Fatalf("delta twin moved %.1f bytes/op vs nodelta %.1f — no saving",
			d.WireBytesPerOp, nd.WireBytesPerOp)
	}
}
