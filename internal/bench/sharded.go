package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/metrics"
)

// The sharded tier: the same contended workload on the same cluster
// shape (N nodes, M resources, the in-process fabric with a fixed
// per-link delivery latency), varying only the shard count G. The
// latency fabric serializes each (shard, sender, destination) link —
// one delivery per 200µs — so a flat universe funnels every block's
// protocol traffic through one link pair while G shards pipeline G
// link pairs; the tier prices exactly that, on one core, as critical
// sections per second.
//
// The workload is identical across G: the M=64 universe is cut into 16
// G16-aligned blocks of 4, every draw stays inside its worker's block
// (single rows) or spans a fixed block pair (cross rows), and the
// resource ids drawn at iteration i do not depend on G. Two workers
// per block — one per node — contend for it, so tokens ping-pong over
// the fabric on every critical section and the links stay on the
// critical path; without the contention the loan protocol parks the
// tokens locally and every row collapses to the message-free fast
// path.
//
// Cross rows span two blocks 8 apart, which land in different shards
// at every G>1, and come in twins: ordered (ascending shard locking)
// vs twophase (parallel submit, timed back-off). One op is one
// granted-and-released acquisition; grants_per_op is 1 so cs_per_sec
// is directly comparable across rows, and the wait quantiles are the
// per-worker accumulators merged (metrics.Accum.Merge).
const (
	shardedM       = 64
	shardedBlocks  = 16 // one block = one G16 shard
	shardedBlockSz = shardedM / shardedBlocks
	shardedLatency = 200 * time.Microsecond
)

// shardedDraw yields worker w's resource pair at iteration i. The
// draw must not depend on G — that is what makes rows comparable.
type shardedDraw func(w int, i int64) (r1, r2 int)

// singleDraw keeps both resources inside worker w's own block, so the
// acquisition is single-shard at every G.
func singleDraw(w int, i int64) (int, int) {
	lo := (w / 2) * shardedBlockSz
	return lo + int(i)%shardedBlockSz, lo + (int(i)+2)%shardedBlockSz
}

// crossDraw spans blocks p and p+8: different shards at G=4 (shards
// p/4 and p/4+2) and at G=16 (shards p and p+8), one part at G=1.
func crossDraw(w int, i int64) (int, int) {
	p := w / 2
	return p*shardedBlockSz + int(i)%shardedBlockSz,
		(p+shardedBlocks/2)*shardedBlockSz + int(i)%shardedBlockSz
}

func shardedScenario(name string, g int, twoPhase bool, workers int, draw shardedDraw) Scenario {
	return Scenario{Name: name, Run: func(b *testing.B) {
		c, err := live.New(live.Config{
			Nodes:              2,
			Resources:          shardedM,
			Latency:            shardedLatency,
			Shards:             g,
			CrossShardTwoPhase: twoPhase,
		}, core.NewFactory(core.WithLoan()))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		base := sumStats(c.Stats())
		accums := make([]*metrics.Accum, workers)
		b.ReportAllocs()
		b.ResetTimer()

		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			acc := new(metrics.Accum)
			accums[w] = acc
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) || failed.Load() {
						return
					}
					r1, r2 := draw(w, i)
					start := time.Now()
					release, err := c.Acquire(ctx, w%2, r1, r2)
					if err != nil {
						// b.Fatal would Goexit a non-benchmark goroutine,
						// which the testing package forbids.
						b.Error(err)
						failed.Store(true)
						return
					}
					acc.Add(float64(time.Since(start)) / float64(time.Millisecond))
					release()
				}
			}()
		}
		wg.Wait()
		b.StopTimer()

		var wait metrics.Accum
		for _, a := range accums {
			wait.Merge(a)
		}
		s := wait.Summary()
		b.ReportMetric(s.Mean, "wait_mean_ms")
		b.ReportMetric(s.P50, "wait_p50_ms")
		b.ReportMetric(s.P95, "wait_p95_ms")
		b.ReportMetric(s.P99, "wait_p99_ms")
		b.ReportMetric(float64(sumStats(c.Stats())-base)/float64(b.N), "msg_per_cs")
		b.ReportMetric(1, "grants_per_op")
	}}
}

func sumStats(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// ShardedGrid is the sharded tier: the single-shard workload at
// G∈{1,4,16} (the parallel-allocators scaling claim), and the
// cross-shard block-pair workload at G∈{4,16} under both composition
// strategies.
func ShardedGrid() []Scenario {
	var out []Scenario
	for _, g := range []int{1, 4, 16} {
		out = append(out, shardedScenario(
			fmt.Sprintf("sharded/g%d/single", g), g, false, 2*shardedBlocks, singleDraw))
	}
	for _, g := range []int{4, 16} {
		out = append(out, shardedScenario(
			fmt.Sprintf("sharded/g%d/cross/ordered", g), g, false, shardedBlocks, crossDraw))
		out = append(out, shardedScenario(
			fmt.Sprintf("sharded/g%d/cross/twophase", g), g, true, shardedBlocks, crossDraw))
	}
	return out
}
