package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/sim"
	"mralloc/internal/transport"
)

// The recovery tier: the tcploop deployment with the crash-recovery
// stack armed — every endpoint is live → Reliable → Chaos → TCP, the
// counter algorithm runs with token leases, and the chaotic cell
// injects drop and duplication at the fabric. One op is one
// granted-and-released two-resource acquisition driven directly
// against the clusters. The clean cell prices the wrapper itself
// (sequence/ack bookkeeping, heartbeat traffic, zero faults); the
// chaotic cell shows the recovery machinery earning its keep, with
// retransmits/op and duplicates dropped/op on the row.

const recoveryM = 32

// recoveryCell is one assembled two-daemon loopback deployment with
// the reliability stack in place.
type recoveryCell struct {
	trs      []*transport.TCP
	chs      []*transport.Chaos
	rels     []*transport.Reliable
	clusters []*live.Cluster
}

func startRecoveryCell(b *testing.B, nodes int, faults transport.Faults) *recoveryCell {
	b.Helper()
	half := nodes / 2
	locals := [2][]int{}
	for i := 0; i < nodes; i++ {
		if i < half {
			locals[0] = append(locals[0], i)
		} else {
			locals[1] = append(locals[1], i)
		}
	}
	cell := &recoveryCell{}
	addrs := make([]string, nodes)
	for d := 0; d < 2; d++ {
		tr, err := transport.ListenTCP("127.0.0.1:0", nodes, locals[d]...)
		if err != nil {
			b.Fatal(err)
		}
		cell.trs = append(cell.trs, tr)
		for _, id := range locals[d] {
			addrs[id] = tr.Addr()
		}
	}
	opt := core.WithLoan()
	opt.LeaseTTL = 250 * sim.Millisecond
	for d := 0; d < 2; d++ {
		if err := cell.trs[d].Connect(addrs); err != nil {
			b.Fatal(err)
		}
		ch := transport.NewChaos(cell.trs[d], 0xbe9c4+int64(d))
		rel := transport.NewReliable(ch)
		rel.SetRetransmit(2*time.Millisecond, 50*time.Millisecond)
		cell.chs = append(cell.chs, ch)
		cell.rels = append(cell.rels, rel)
		c, err := live.New(live.Config{
			Nodes:     nodes,
			Resources: recoveryM,
			Transport: rel,
			Local:     locals[d],
			Tick:      20 * time.Millisecond,
		}, core.NewFactory(opt))
		if err != nil {
			b.Fatal(err)
		}
		cell.clusters = append(cell.clusters, c)
	}
	for _, ch := range cell.chs {
		ch.SetFaults(faults)
	}
	return cell
}

func (c *recoveryCell) close() {
	for _, cl := range c.clusters {
		cl.Close() // closes its transport stack
	}
}

func (c *recoveryCell) relStats() transport.RelStats {
	var total transport.RelStats
	for _, r := range c.rels {
		s := r.RelStats()
		total.Retransmits += s.Retransmits
		total.Acked += s.Acked
		total.DupsDropped += s.DupsDropped
		total.Gaps += s.Gaps
		total.AcksSent += s.AcksSent
	}
	return total
}

func recoveryScenario(nodes int, tag string, faults transport.Faults) Scenario {
	s := Scenario{Name: fmt.Sprintf("recovery/chaosloop/n%d/%s", nodes, tag)}
	s.Run = func(b *testing.B) {
		cell := startRecoveryCell(b, nodes, faults)
		defer cell.close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		base := cell.relStats()

		var next atomic.Int64
		var wg sync.WaitGroup
		var failed atomic.Bool
		workers := nodes
		for w := 0; w < workers; w++ {
			w := w
			cl := cell.clusters[0]
			if w >= nodes/2 {
				cl = cell.clusters[1]
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) || failed.Load() {
						return
					}
					r1 := int(i+int64(w*7)) % recoveryM
					r2 := (r1 + 11) % recoveryM
					release, err := cl.Acquire(ctx, w, r1, r2)
					if err != nil {
						// b.Fatal would Goexit a non-benchmark goroutine,
						// which the testing package forbids.
						b.Error(err)
						failed.Store(true)
						return
					}
					release()
				}
			}()
		}
		wg.Wait()
		b.StopTimer()

		now := cell.relStats()
		n := float64(b.N)
		b.ReportMetric(float64(now.Retransmits-base.Retransmits)/n, "retransmits_per_op")
		b.ReportMetric(float64(now.DupsDropped-base.DupsDropped)/n, "dups_dropped_per_op")
	}
	return s
}

// RecoveryGrid is the recovery tier: the reliable/lease stack clean,
// then under drop+duplication faults.
func RecoveryGrid() []Scenario {
	return []Scenario{
		recoveryScenario(4, "clean", transport.Faults{}),
		recoveryScenario(4, "drop2dup2", transport.Faults{
			Drop: 0.02, Dup: 0.02, DelayMax: 100 * time.Microsecond,
		}),
	}
}
