package bench

import (
	"encoding/json"
	"mralloc/internal/serve"
	"mralloc/internal/sim"
	"strings"
	"testing"
)

func TestGridNamesUniqueAndBaselineCovered(t *testing.T) {
	names := make(map[string]bool)
	for _, s := range Grid() {
		if s.Name == "" || s.Run == nil {
			t.Fatalf("malformed scenario %+v", s)
		}
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
	}
	// Schema stability: every frozen baseline row must still name a
	// scenario the grid can regenerate.
	for _, b := range Baseline {
		if !names[b.Scenario] {
			t.Errorf("baseline row %q has no scenario in the grid", b.Scenario)
		}
	}
}

func TestReportDeltasAndMarshal(t *testing.T) {
	current := []Result{
		{Scenario: Baseline[0].Scenario, NsPerOp: Baseline[0].NsPerOp / 2, AllocsPerOp: Baseline[0].AllocsPerOp / 4},
		{Scenario: "not/in/baseline", NsPerOp: 10},
	}
	r := NewReport(current)
	if r.Schema != Schema || r.Module != "mralloc" {
		t.Fatalf("report header %+v", r)
	}
	if len(r.Deltas) != 1 {
		t.Fatalf("deltas = %+v, want exactly the baseline-covered scenario", r.Deltas)
	}
	d := r.Deltas[0]
	if d.NsRatio < 0.45 || d.NsRatio > 0.55 {
		t.Fatalf("ns ratio = %v, want ≈0.5", d.NsRatio)
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Baseline) != len(Baseline) {
		t.Fatal("report does not round-trip")
	}
	if !strings.Contains(r.Table(), Baseline[0].Scenario) {
		t.Fatal("table missing scenario row")
	}
}

// TestTCPLoopbackSmoke runs one tcp-loopback cell end to end — real
// sockets, real daemons, real serve.Clients — and gates the report schema:
// the wire-path fields the tier exists to record must be present and
// sane, and must survive a JSON round trip under the frozen schema
// name. This is the CI bench-delta job: a short run that fails on
// schema drift rather than on machine-dependent numbers.
func TestTCPLoopbackSmoke(t *testing.T) {
	grid := TCPLoopGrid()
	if len(grid) == 0 {
		t.Fatal("empty tcploop grid")
	}
	// One batched cell is enough for CI; the full grid runs via
	// cmd/bench.
	var s Scenario
	for _, c := range grid {
		if strings.HasSuffix(c.Name, "/batch") {
			s = c
			break
		}
	}
	if s.Run == nil {
		t.Fatal("no batched tcploop scenario in the grid")
	}
	r := Measure(s)
	if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 {
		t.Fatalf("no wall-clock measurement: %+v", r)
	}
	if r.WritesPerOp <= 0 || r.WireBytesPerOp <= 0 {
		t.Fatalf("wire-path metrics missing: %+v", r)
	}
	if r.AvgBatchFrames < 1 {
		t.Fatalf("avg batch below one frame per flush: %+v", r)
	}
	if r.MsgPerCS <= 0 {
		t.Fatalf("no protocol traffic recorded: %+v", r)
	}
	if r.BatchHist == "" {
		t.Fatalf("batch histogram missing: %+v", r)
	}
	// Schema drift gate: the row must round-trip with its wire-path
	// keys intact under the frozen schema string.
	rep := NewReport([]Result{r})
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != Schema {
		t.Fatalf("schema = %v, want %v", raw["schema"], Schema)
	}
	row := raw["current"].([]any)[0].(map[string]any)
	for _, key := range []string{"scenario", "ns_per_op", "allocs_per_op",
		"writes_per_op", "wire_bytes_per_op", "avg_batch_frames", "batch_hist"} {
		if _, ok := row[key]; !ok {
			t.Errorf("report row missing %q (schema drift): %v", key, row)
		}
	}
}

// TestMeasureDeterministicMetrics runs one sim scenario twice and
// checks the protocol-level metrics reproduce exactly — the property
// that makes BENCH_*.json regenerable. Wall-clock fields only need to
// be positive.
func TestMeasureDeterministicMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	var s Scenario
	for _, c := range SimGrid() {
		if c.Name == "sim/n32/skew" {
			s = c
		}
	}
	if s.Run == nil {
		t.Fatal("scenario sim/n32/skew missing from grid")
	}
	a, b := Measure(s), Measure(s)
	if a.NsPerOp <= 0 || a.AllocsPerOp <= 0 {
		t.Fatalf("no wall-clock measurement: %+v", a)
	}
	if a.MsgPerCS <= 0 || a.GrantsPerOp <= 0 || a.EventsPerOp <= 0 {
		t.Fatalf("missing protocol metrics: %+v", a)
	}
	if a.MsgPerCS != b.MsgPerCS || a.GrantsPerOp != b.GrantsPerOp || a.EventsPerOp != b.EventsPerOp {
		t.Fatalf("protocol metrics not deterministic:\n  %+v\n  %+v", a, b)
	}
}

// TestMicroAndLiveMeasure smoke-runs one micro and one live scenario
// end to end (the full grid runs via cmd/bench, not in tests).
func TestMicroAndLiveMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	for _, grid := range [][]Scenario{MicroGrid(), LiveGrid()} {
		r := Measure(grid[len(grid)-1])
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: no measurement: %+v", r.Scenario, r)
		}
	}
}

// TestServeGridSmoke runs every cell of the sessions-per-node grid
// with a tiny horizon — the CI bench-smoke job, catching schema or
// crash regressions in minutes-not-hours. It asserts the shape of the
// output (grants happen, quantiles are monotone and present), not its
// wall-clock values.
func TestServeGridSmoke(t *testing.T) {
	for _, n := range []int{8, 32} {
		for _, s := range []int{1, 8, 64} {
			for _, p := range []serve.Policy{serve.FIFO, serve.SSF, serve.EDF} {
				res, err := ServeCell(n, s, p, 60*sim.Millisecond)
				if err != nil {
					t.Fatalf("n%d/s%d/%s: %v", n, s, p, err)
				}
				if res.Grants <= 0 {
					t.Errorf("n%d/s%d/%s: no grants", n, s, p)
				}
				w := res.Waiting
				if w.P50 > w.P95 || w.P95 > w.P99 || w.P99 > w.Max {
					t.Errorf("n%d/s%d/%s: quantiles not monotone: %+v", n, s, p, w)
				}
			}
		}
	}
}

// TestServeGridScales pins the scaling claim the grid exists to
// measure: at fixed horizon, more sessions per node must complete
// more critical sections, and queue waits must grow.
func TestServeGridScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell comparison in -short mode")
	}
	one, err := ServeCell(8, 1, serve.FIFO, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	many, err := ServeCell(8, 64, serve.FIFO, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if many.Grants <= 2*one.Grants {
		t.Errorf("64 sessions granted %d vs %d single-session — multiplexing not engaging", many.Grants, one.Grants)
	}
	if many.Waiting.P99 <= one.Waiting.P99 {
		t.Errorf("p99 wait did not grow under 64× multiplexing: %v vs %v", many.Waiting.P99, one.Waiting.P99)
	}
}

// TestHeteroLoopbackSmoke runs the heterogeneous-feature twin once:
// mixed builds must negotiate per-link feature subsets and still move
// real traffic with sane wire-path columns.
func TestHeteroLoopbackSmoke(t *testing.T) {
	var s Scenario
	for _, c := range TCPLoopGrid() {
		if strings.HasSuffix(c.Name, "/hetero") {
			s = c
			break
		}
	}
	if s.Run == nil {
		t.Fatal("no hetero tcploop scenario in the grid")
	}
	r := Measure(s)
	if r.WritesPerOp <= 0 || r.WireBytesPerOp <= 0 || r.MsgPerCS <= 0 {
		t.Fatalf("hetero cell produced no wire traffic: %+v", r)
	}
}

// TestBackpressureSmoke runs the stalled-peer cell once: the scenario
// itself fails if the coalescer queue ever exceeds the byte budget, so
// a passing run is the bounded-memory proof.
func TestBackpressureSmoke(t *testing.T) {
	grid := BackpressureGrid()
	if len(grid) == 0 {
		t.Fatal("empty backpressure grid")
	}
	r := Measure(grid[0])
	if r.WritesPerOp <= 0 || r.WireBytesPerOp <= 0 {
		t.Fatalf("backpressure cell recorded no writes: %+v", r)
	}
}
