package manager

import (
	"testing"
	"testing/quick"

	"mralloc/internal/driver"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func cfg(seed int64) driver.Config {
	return driver.Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 6,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     seed,
		},
		Warmup:  50 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

func TestSafetyAndLiveness(t *testing.T) {
	res, err := driver.Run(cfg(1), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 || res.Ungranted != 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

func TestManySeeds(t *testing.T) {
	prop := func(seed int64) bool {
		c := cfg(seed)
		c.Horizon = 500 * sim.Millisecond
		res, err := driver.Run(c, NewFactory())
		return err == nil && res.Ungranted == 0 && res.Grants > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHighContentionTinyPool(t *testing.T) {
	c := cfg(2)
	c.Workload.M = 4
	c.Workload.Phi = 3
	c.Workload.Rho = 0.1
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants == 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestSelfManagedShortcut: with N ≥ M every resource has a distinct
// manager, and some requests include resources managed by the
// requester itself — those must not generate messages.
func TestSelfManagedShortcut(t *testing.T) {
	c := cfg(3)
	c.Workload.N = 16
	c.Workload.M = 16
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d starved", res.Ungranted)
	}
	// Crude upper bound: 3 messages per (resource, grant) if nothing
	// were local; self-managed traffic must keep us below it.
	maxMsgs := 3.0 * 3.5 // 3 msgs × mean request size
	if res.MsgPerGrant >= maxMsgs {
		t.Fatalf("msg/grant %.2f suggests self-managed path is not local", res.MsgPerGrant)
	}
}

func TestMessageKinds(t *testing.T) {
	res, err := driver.Run(cfg(4), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"Mgr.Lock", "Mgr.Grant", "Mgr.Unlock"} {
		if res.Messages.ByKind[k] == 0 {
			t.Errorf("no %s traffic: %v", k, res.Messages)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := driver.Run(cfg(5), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.Run(cfg(5), NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.Messages.Total != b.Messages.Total {
		t.Fatal("same seed diverged")
	}
}

func TestFullWidthRequests(t *testing.T) {
	c := cfg(6)
	c.Workload.M = 6
	c.Workload.Phi = 6
	res, err := driver.Run(c, NewFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d starved", res.Ungranted)
	}
}
