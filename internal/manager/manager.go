// Package manager implements a coordinator-based comparator inspired
// by Rhee's modular resource allocator (Distributed Computing 11(3),
// 1998), the remaining family of the paper's related work (§2.2):
// "each process is a manager of a resource. Each manager locally keeps
// a queue… This approach requires several dedicated managers which can
// become potential bottlenecks."
//
// Every resource r has a statically assigned manager site (r mod N)
// holding r's FIFO queue. A requester locks its resources one at a
// time in ascending identifier order — the incremental family's
// deadlock-avoidance discipline — by exchanging lock/grant/unlock
// messages with each manager. Compared to the token algorithms, state
// never migrates: managers are fixed, so hot resources hammer a fixed
// site, which is precisely the bottleneck the paper attributes to this
// family.
//
// Simplification versus Rhee's full algorithm: Rhee reschedules queued
// requests among managers to shorten waits; this implementation keeps
// plain FIFO queues (the rescheduling idea is what the paper's own
// loan mechanism generalizes in a fully decentralized way).
package manager

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// lockReq asks r's manager for exclusive access.
type lockReq struct {
	R  resource.ID
	ID int64
}

// Kind implements network.Message.
func (lockReq) Kind() string { return "Mgr.Lock" }

// lockGrant tells the requester it now holds r.
type lockGrant struct {
	R  resource.ID
	ID int64
}

// Kind implements network.Message.
func (lockGrant) Kind() string { return "Mgr.Grant" }

// unlockMsg returns r to its manager.
type unlockMsg struct{ R resource.ID }

// Kind implements network.Message.
func (unlockMsg) Kind() string { return "Mgr.Unlock" }

// Node is one site: simultaneously a requester and the manager of the
// resources assigned to it.
type Node struct {
	env alg.Env

	// Requester side.
	todo []resource.ID // still to acquire, ascending
	held []resource.ID
	id   int64
	inCS bool

	// Manager side, for resources r with r mod N == self.
	busy   map[resource.ID]network.NodeID // current holder
	queues map[resource.ID][]queued
}

type queued struct {
	Site network.NodeID
	ID   int64
}

// NewFactory returns the driver factory.
func NewFactory() alg.Factory {
	return func(n, m int) []alg.Node {
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{}
		}
		return nodes
	}
}

// Attach implements alg.Node.
func (nd *Node) Attach(env alg.Env) {
	nd.env = env
	nd.busy = make(map[resource.ID]network.NodeID)
	nd.queues = make(map[resource.ID][]queued)
}

func (nd *Node) manager(r resource.ID) network.NodeID {
	return network.NodeID(int(r) % nd.env.N())
}

// Request implements alg.Node: ordered, one-at-a-time acquisition.
func (nd *Node) Request(rs resource.Set) {
	if len(nd.todo) != 0 || nd.inCS {
		panic(fmt.Sprintf("manager: s%d requested while busy", nd.env.ID()))
	}
	nd.id++
	nd.todo = rs.Members()
	nd.held = nd.held[:0]
	nd.next()
}

func (nd *Node) next() {
	if len(nd.todo) == 0 {
		nd.inCS = true
		nd.env.Granted()
		return
	}
	r := nd.todo[0]
	if nd.manager(r) == nd.env.ID() {
		nd.lock(r, nd.env.ID(), nd.id) // self-managed: no message
	} else {
		nd.env.Send(nd.manager(r), lockReq{R: r, ID: nd.id})
	}
}

// lock runs the manager-side admission for r on behalf of site/id.
func (nd *Node) lock(r resource.ID, site network.NodeID, id int64) {
	if _, taken := nd.busy[r]; taken {
		nd.queues[r] = append(nd.queues[r], queued{Site: site, ID: id})
		return
	}
	nd.busy[r] = site
	nd.grant(r, site, id)
}

// grant notifies the new holder (locally when it is the manager itself).
func (nd *Node) grant(r resource.ID, site network.NodeID, id int64) {
	if site == nd.env.ID() {
		nd.acquired(r, id)
	} else {
		nd.env.Send(site, lockGrant{R: r, ID: id})
	}
}

// acquired is the requester-side grant handler.
func (nd *Node) acquired(r resource.ID, id int64) {
	if id != nd.id {
		panic(fmt.Sprintf("manager: s%d got stale grant for %d", nd.env.ID(), r))
	}
	if len(nd.todo) == 0 || nd.todo[0] != r {
		panic(fmt.Sprintf("manager: s%d acquired %d out of order (todo %v)", nd.env.ID(), r, nd.todo))
	}
	nd.held = append(nd.held, r)
	nd.todo = nd.todo[1:]
	nd.next()
}

// Release implements alg.Node.
func (nd *Node) Release() {
	if !nd.inCS {
		panic(fmt.Sprintf("manager: s%d released outside CS", nd.env.ID()))
	}
	nd.inCS = false
	for _, r := range nd.held {
		if nd.manager(r) == nd.env.ID() {
			nd.unlock(r)
		} else {
			nd.env.Send(nd.manager(r), unlockMsg{R: r})
		}
	}
	nd.held = nd.held[:0]
}

// unlock runs the manager-side release for r.
func (nd *Node) unlock(r resource.ID) {
	if _, taken := nd.busy[r]; !taken {
		panic(fmt.Sprintf("manager: s%d freeing free resource %d", nd.env.ID(), r))
	}
	delete(nd.busy, r)
	if q := nd.queues[r]; len(q) > 0 {
		head := q[0]
		nd.queues[r] = q[1:]
		nd.busy[r] = head.Site
		nd.grant(r, head.Site, head.ID)
	}
}

// Deliver implements alg.Node.
func (nd *Node) Deliver(from network.NodeID, m network.Message) {
	switch msg := m.(type) {
	case lockReq:
		nd.lock(msg.R, from, msg.ID)
	case lockGrant:
		nd.acquired(msg.R, msg.ID)
	case unlockMsg:
		nd.unlock(msg.R)
	default:
		panic(fmt.Sprintf("manager: unexpected message %T", m))
	}
}
