package verify

import (
	"strings"
	"testing"

	"mralloc/internal/resource"
)

func collect() (*[]Violation, func(Violation)) {
	var vs []Violation
	return &vs, func(v Violation) { vs = append(vs, v) }
}

func TestCleanRun(t *testing.T) {
	vs, report := collect()
	m := New(4, report)
	rs := resource.FromIDs(4, 0, 2)
	m.Requested(1, 10)
	m.Granted(1, rs, 20)
	m.Released(1, rs, 30)
	m.CheckQuiescent(40)
	if len(*vs) != 0 {
		t.Fatalf("violations on clean run: %v", *vs)
	}
	if m.Grants() != 1 {
		t.Fatalf("grants = %d", m.Grants())
	}
}

func TestSafetyViolationDetected(t *testing.T) {
	vs, report := collect()
	m := New(4, report)
	a := resource.FromIDs(4, 1)
	m.Requested(0, 1)
	m.Granted(0, a, 2)
	m.Requested(2, 3)
	m.Granted(2, a, 4) // resource 1 double-granted
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "safety") {
		t.Fatalf("violations = %v", *vs)
	}
	if !strings.Contains((*vs)[0].Error(), "invariant violated") {
		t.Fatalf("Error() = %q", (*vs)[0].Error())
	}
}

func TestHypothesis4ViolationDetected(t *testing.T) {
	vs, report := collect()
	m := New(2, report)
	m.Requested(0, 1)
	m.Requested(0, 2)
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "hypothesis 4") {
		t.Fatalf("violations = %v", *vs)
	}
}

func TestGrantWithoutRequestDetected(t *testing.T) {
	vs, report := collect()
	m := New(2, report)
	m.Granted(0, resource.FromIDs(2, 0), 5)
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "without a pending request") {
		t.Fatalf("violations = %v", *vs)
	}
}

func TestForeignReleaseDetected(t *testing.T) {
	vs, report := collect()
	m := New(2, report)
	rs := resource.FromIDs(2, 0)
	m.Requested(0, 1)
	m.Granted(0, rs, 2)
	m.Released(1, rs, 3)
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "released resource") {
		t.Fatalf("violations = %v", *vs)
	}
}

func TestLivenessViolationAtQuiescence(t *testing.T) {
	vs, report := collect()
	m := New(2, report)
	m.Requested(3, 7)
	m.CheckQuiescent(100)
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "liveness") {
		t.Fatalf("violations = %v", *vs)
	}
}

func TestHeldAtQuiescenceDetected(t *testing.T) {
	vs, report := collect()
	m := New(2, report)
	rs := resource.FromIDs(2, 1)
	m.Requested(0, 1)
	m.Granted(0, rs, 2)
	m.CheckQuiescent(50)
	if len(*vs) != 1 || !strings.Contains((*vs)[0].Desc, "still held") {
		t.Fatalf("violations = %v", *vs)
	}
}

func TestPendingIntrospection(t *testing.T) {
	_, report := collect()
	m := New(2, report)
	if _, ok := m.OldestPending(); ok {
		t.Fatal("fresh monitor has pending requests")
	}
	m.Requested(4, 40)
	m.Requested(2, 20)
	at, ok := m.OldestPending()
	if !ok || at != 20 {
		t.Fatalf("OldestPending = %v, %v", at, ok)
	}
	p := m.PendingRequests()
	if len(p) != 2 || p[4] != 40 {
		t.Fatalf("PendingRequests = %v", p)
	}
	// The returned map is a copy.
	delete(p, 4)
	if len(m.PendingRequests()) != 2 {
		t.Fatal("PendingRequests exposed internal state")
	}
}
