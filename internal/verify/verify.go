// Package verify checks at runtime the two correctness properties the
// paper proves in Annex B, plus the concurrency property:
//
//   - safety: two conflicting processes are never simultaneously in
//     their critical sections — equivalently, every resource has at
//     most one holder at any instant (Theorem 1);
//   - liveness: every issued request is eventually granted (Theorem 3),
//     checked as "no request outlives the run".
//
// The monitor is driven by the same grant/release notifications the
// metrics layer receives, so any interleaving a simulation explores is
// checked exhaustively, not sampled.
package verify

import (
	"fmt"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// Violation describes a broken invariant. It is delivered to the
// configured report function (tests fail, CLIs abort).
type Violation struct {
	At   sim.Time
	Desc string
}

func (v Violation) Error() string {
	return fmt.Sprintf("invariant violated at %v: %s", v.At, v.Desc)
}

// Monitor observes grant and release events.
type Monitor struct {
	holder  []network.NodeID // per resource; None when free
	pending map[network.NodeID]sim.Time
	report  func(Violation)
	grants  int
}

// New creates a monitor for m resources. report receives violations; it
// may panic or record, but the monitor keeps a best-effort state either
// way.
func New(m int, report func(Violation)) *Monitor {
	h := make([]network.NodeID, m)
	for i := range h {
		h[i] = network.None
	}
	return &Monitor{holder: h, pending: make(map[network.NodeID]sim.Time), report: report}
}

// Requested notes that site s issued a request at time t.
func (mo *Monitor) Requested(s network.NodeID, t sim.Time) {
	if prev, dup := mo.pending[s]; dup {
		mo.report(Violation{t, fmt.Sprintf("site %d issued a new request while one from %v is pending (hypothesis 4)", s, prev)})
	}
	mo.pending[s] = t
}

// Granted notes that site s entered its CS holding rs at time t.
func (mo *Monitor) Granted(s network.NodeID, rs resource.Set, t sim.Time) {
	if _, ok := mo.pending[s]; !ok {
		mo.report(Violation{t, fmt.Sprintf("site %d granted without a pending request", s)})
	}
	delete(mo.pending, s)
	mo.grants++
	rs.ForEach(func(r resource.ID) {
		if h := mo.holder[r]; h != network.None {
			mo.report(Violation{t, fmt.Sprintf("resource %d granted to site %d while held by site %d (safety)", r, s, h)})
		}
		mo.holder[r] = s
	})
}

// Released notes that site s left its CS, freeing rs, at time t.
func (mo *Monitor) Released(s network.NodeID, rs resource.Set, t sim.Time) {
	rs.ForEach(func(r resource.ID) {
		if h := mo.holder[r]; h != s {
			mo.report(Violation{t, fmt.Sprintf("site %d released resource %d held by %d", s, r, h)})
		}
		mo.holder[r] = network.None
	})
}

// Grants reports how many critical sections completed admission.
func (mo *Monitor) Grants() int { return mo.grants }

// CheckQuiescent verifies liveness at the end of a drained run: with no
// events left, every request must have been granted and every resource
// freed. Runs truncated at a horizon should use PendingRequests instead.
func (mo *Monitor) CheckQuiescent(t sim.Time) {
	for s, since := range mo.pending {
		mo.report(Violation{t, fmt.Sprintf("request from site %d issued at %v never granted (liveness)", s, since)})
	}
	for r, h := range mo.holder {
		if h != network.None {
			mo.report(Violation{t, fmt.Sprintf("resource %d still held by site %d at quiescence", r, h)})
		}
	}
}

// CheckLiveness verifies that at time t no pending request has waited
// longer than bound — the bounded-liveness assertion for fault-injection
// runs, where CheckQuiescent's fully-drained form only applies after
// the faults stop. bound must cover the configured recovery horizon
// (retransmission backoff, lease expiry plus regeneration).
func (mo *Monitor) CheckLiveness(t, bound sim.Time) {
	for s, since := range mo.pending {
		if t-since > bound {
			mo.report(Violation{t, fmt.Sprintf("request from site %d pending for %v, bound %v (liveness under faults)", s, t-since, bound)})
		}
	}
}

// PendingRequests reports the requests not yet granted (expected to be
// small and recent when a run is cut off at its horizon).
func (mo *Monitor) PendingRequests() map[network.NodeID]sim.Time {
	out := make(map[network.NodeID]sim.Time, len(mo.pending))
	for k, v := range mo.pending {
		out[k] = v
	}
	return out
}

// OldestPending returns the issue time of the oldest ungranted request
// and whether one exists — the starvation watchdog used by long runs.
func (mo *Monitor) OldestPending() (sim.Time, bool) {
	var oldest sim.Time
	found := false
	for _, t := range mo.pending {
		if !found || t < oldest {
			oldest = t
			found = true
		}
	}
	return oldest, found
}
