package experiments

import (
	"runtime"
	"sync"
)

// job is one cell evaluation in a sweep.
type job struct {
	point Point
	out   *Cell
	err   *error
}

// sweep evaluates cells concurrently: each cell is an independent
// deterministic simulation, so the fan-out is embarrassingly parallel.
// Results land in the caller-provided slots, keeping output order
// independent of scheduling.
func sweep(sc Scale, jobs []job) error {
	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cell, err := RunCell(j.point, sc)
				*j.out = cell
				*j.err = err
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, j := range jobs {
		if *j.err != nil {
			return *j.err
		}
	}
	return nil
}
