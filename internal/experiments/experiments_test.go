package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mralloc/internal/driver"
	"mralloc/internal/network"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

// tiny is a fast scale for tests; relative orderings asserted here are
// robust even at this size.
var tiny = Scale{Warmup: 100 * sim.Millisecond, Horizon: 1500 * sim.Millisecond, Seeds: 1}

func TestFactoryCoversAllAlgorithms(t *testing.T) {
	for _, a := range fig5Algorithms {
		nodes := Factory(a)(4, 8)
		if len(nodes) != 4 {
			t.Fatalf("%s factory built %d nodes", a, len(nodes))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm accepted")
		}
	}()
	Factory("nope")
}

func TestLoadRho(t *testing.T) {
	if MediumLoad.Rho() != 1 || HighLoad.Rho() != 0.1 {
		t.Fatal("load mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown load accepted")
		}
	}()
	Load("x").Rho()
}

func TestRunPointAllAlgorithms(t *testing.T) {
	for _, a := range fig5Algorithms {
		res, err := Run(Point{Alg: a, Phi: 8, Load: HighLoad, Seed: 3}, tiny)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Grants == 0 {
			t.Fatalf("%s made no progress", a)
		}
		if res.UseRate <= 0 || res.UseRate > 1 {
			t.Fatalf("%s use rate %v", a, res.UseRate)
		}
	}
}

func TestRunCellAveragesSeeds(t *testing.T) {
	sc := tiny
	sc.Seeds = 2
	c, err := RunCell(Point{Alg: WithLoan, Phi: 8, Load: HighLoad}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Grants == 0 || c.UseRate <= 0 {
		t.Fatalf("cell = %+v", c)
	}
}

// TestHeadlineOrdering asserts the paper's central claims at small
// scale with generous slack: at high load and moderate request sizes,
// the counter algorithms beat Bouabdallah–Laforest on use rate, and the
// shared-memory bound beats everyone.
func TestHeadlineOrdering(t *testing.T) {
	// φ=16: at φ=8 the use-rate gap between the counter algorithm and
	// the global lock is ~1% and flips with the workload draw; from
	// φ=16 up the paper's ordering is robust even at the tiny scale.
	get := func(a Algorithm) Cell {
		t.Helper()
		c, err := RunCell(Point{Alg: a, Phi: 16, Load: HighLoad}, tiny)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	bl := get(Bouabdallah)
	noLoan := get(WithoutLoan)
	shared := get(SharedMem)
	if noLoan.UseRate <= bl.UseRate {
		t.Errorf("counter algorithm (%.3f) did not beat the global lock (%.3f) at φ=16 high load",
			noLoan.UseRate, bl.UseRate)
	}
	if shared.UseRate < noLoan.UseRate*0.95 {
		t.Errorf("shared-memory bound (%.3f) below the distributed algorithm (%.3f)",
			shared.UseRate, noLoan.UseRate)
	}
	if noLoan.WaitMean >= bl.WaitMean {
		t.Errorf("counter algorithm waiting (%.1f ms) not below global lock (%.1f ms)",
			noLoan.WaitMean, bl.WaitMean)
	}
}

func TestFigure6Shape(t *testing.T) {
	tab, err := Figure6(HighLoad, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Header) != 6 {
		t.Fatalf("table shape %dx%d, want 3x6 (mean, stddev, p50/p95/p99)", len(tab.Rows), len(tab.Header))
	}
	if !strings.Contains(tab.String(), "Bouabdallah") {
		t.Fatal("table missing algorithm name")
	}
}

func TestFigure7Shape(t *testing.T) {
	tab, err := Figure7(MediumLoad, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Header) != 1+len(Fig7Buckets) {
		t.Fatalf("header = %v", tab.Header)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("x", "y")
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "2.5", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2.5\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := Point{Alg: WithLoan, Phi: 0, Load: HighLoad} // invalid φ
	var cell Cell
	var err error
	if e := sweep(tiny, []job{{point: bad, out: &cell, err: &err}}); e == nil {
		t.Fatal("sweep swallowed the error")
	}
}

func TestMaddiFactoryAndRun(t *testing.T) {
	res, err := Run(Point{Alg: Maddi, Phi: 4, Load: HighLoad, Seed: 2}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants == 0 {
		t.Fatal("broadcast baseline made no progress")
	}
	if res.Messages.ByKind["Maddi.Request"] == 0 {
		t.Fatalf("messages = %v", res.Messages)
	}
}

// TestMessageComplexityOrdering pins the §1–§2 claims: the broadcast
// baseline costs far more messages per CS than any tree-routed
// algorithm, at every φ.
func TestMessageComplexityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tab, err := MessageComplexity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || len(tab.Header) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	// Row 0 is Maddi; compare column-wise against every other row.
	parse := func(s string) float64 {
		var f float64
		if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
			t.Fatalf("cell %q: %v", s, err)
		}
		return f
	}
	for col := 1; col < len(tab.Header); col++ {
		maddi := parse(tab.Rows[0][col])
		for row := 1; row < len(tab.Rows); row++ {
			other := parse(tab.Rows[row][col])
			if maddi <= other {
				t.Errorf("%s: broadcast %v not above %s's %v",
					tab.Header[col], maddi, tab.Rows[row][0], other)
			}
		}
	}
}

// TestFairness pins the fairness findings: the counter algorithms stay
// near-perfectly fair (Jain > 0.9) while the incremental baseline's
// domino effect is visibly unfair.
func TestFairness(t *testing.T) {
	tab, err := FairnessSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(name string) (float64, float64) {
		t.Helper()
		for _, row := range tab.Rows {
			if row[0] == name {
				var jw, jt float64
				fmt.Sscanf(row[1], "%g", &jw)
				fmt.Sscanf(row[2], "%g", &jt)
				return jw, jt
			}
		}
		t.Fatalf("row %q missing", name)
		return 0, 0
	}
	withLoanJW, withLoanJT := get(string(WithLoan))
	incJW, _ := get(string(Incremental))
	if withLoanJW < 0.9 || withLoanJT < 0.9 {
		t.Errorf("counter algorithm unfair: jain wait %.3f throughput %.3f", withLoanJW, withLoanJT)
	}
	if incJW >= withLoanJW {
		t.Errorf("incremental (%.3f) not less fair than counter (%.3f)", incJW, withLoanJW)
	}
}

// TestAllAlgorithmsUnderJitter reruns every algorithm with a jittered
// latency model (FIFO restored by the network layer): correctness must
// not depend on deterministic delays.
func TestAllAlgorithmsUnderJitter(t *testing.T) {
	for _, a := range []Algorithm{Incremental, Bouabdallah, WithoutLoan, WithLoan, Maddi, Manager} {
		p := Point{
			Alg: a, Phi: 6, Load: HighLoad, Seed: 9,
			Latency: network.Uniform{Min: 100 * sim.Microsecond, Max: 3 * sim.Millisecond},
		}
		res, err := Run(p, tiny)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Grants == 0 {
			t.Fatalf("%s stalled under jitter", a)
		}
	}
}

// TestAllAlgorithmsOnHierarchy reruns every algorithm on the two-zone
// topology with zoned workloads.
func TestAllAlgorithmsOnHierarchy(t *testing.T) {
	lat := network.Hierarchical{
		Zone:   network.TwoZones(32),
		Local:  network.Constant{D: 100 * sim.Microsecond},
		Remote: network.Constant{D: 2 * sim.Millisecond},
	}
	for _, a := range []Algorithm{Incremental, Bouabdallah, WithoutLoan, WithLoan, Maddi, Manager} {
		p := Point{Alg: a, Phi: 6, Load: HighLoad, Seed: 3, Latency: lat, Zones: 2, LocalBias: 0.8}
		res, err := Run(p, tiny)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Grants == 0 {
			t.Fatalf("%s stalled on hierarchy", a)
		}
	}
}

// TestScalesBeyondPaper doubles the paper's system (N=64, M=160) for
// every algorithm: correctness must not be an artifact of the 32/80
// shape. Guarded by -short because each run simulates a full second on
// a bigger event volume.
func TestScalesBeyondPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling run")
	}
	for _, a := range []Algorithm{Incremental, Bouabdallah, WithoutLoan, WithLoan, SharedMem, Maddi, Manager} {
		cfg := driver.Config{
			Workload: workload.Config{
				N: 64, M: 160, Phi: 12,
				AlphaMin: 5 * sim.Millisecond,
				AlphaMax: 35 * sim.Millisecond,
				Gamma:    600 * sim.Microsecond,
				Rho:      0.3,
				Seed:     13,
			},
			Processing: Proc,
			Warmup:     100 * sim.Millisecond,
			Horizon:    1 * sim.Second,
			Drain:      true,
		}
		res, err := driver.Run(cfg, Factory(a))
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Ungranted != 0 || res.Grants == 0 {
			t.Fatalf("%s at N=64: grants=%d ungranted=%d", a, res.Grants, res.Ungranted)
		}
	}
}

// TestFigure5Shape runs the full five-algorithm sweep on a reduced φ
// grid (restored afterwards) and sanity-checks every cell.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	old := PhiGrid
	PhiGrid = []int{1, 8, 40}
	defer func() { PhiGrid = old }()
	tab, err := Figure5(HighLoad, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Header) != 6 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	for _, row := range tab.Rows {
		for col := 1; col < len(row); col++ {
			var v float64
			if _, err := fmt.Sscanf(row[col], "%g", &v); err != nil {
				t.Fatalf("cell %q: %v", row[col], err)
			}
			if v <= 0 || v > 100 {
				t.Fatalf("use rate %v%% out of range in %v", v, row)
			}
		}
	}
}

func TestThresholdSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tab, err := ThresholdSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || tab.Rows[0][0] != "0" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if len(tab.Notes) == 0 {
		t.Fatal("threshold table should explain its baseline row")
	}
}

func TestMarkSweepShape(t *testing.T) {
	tab, err := MarkSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || !strings.Contains(tab.Rows[0][0], "avg") {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestOptsSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tab, err := OptsSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 6 variants × 2 φ
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The all-off variant must cost more messages than all-on at φ=16.
	var on, off float64
	for _, row := range tab.Rows {
		if row[1] != "16" {
			continue
		}
		switch row[0] {
		case "all on (paper)":
			fmt.Sscanf(row[2], "%g", &on)
		case "all off":
			fmt.Sscanf(row[2], "%g", &off)
		}
	}
	if on <= 0 || off <= on {
		t.Fatalf("optimizations not visible: on=%v off=%v", on, off)
	}
}

func TestCloudExperimentShape(t *testing.T) {
	tab, err := CloudExperiment(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The headline of extension E2: the counter algorithm beats BL on
	// use rate when traffic is zone-local.
	var bl, counter float64
	fmt.Sscanf(tab.Rows[0][1], "%g", &bl)
	fmt.Sscanf(tab.Rows[1][1], "%g", &counter)
	if counter <= bl {
		t.Fatalf("cloud: counter (%v%%) did not beat the control token (%v%%)", counter, bl)
	}
}

func TestHotspotSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tab, err := HotspotSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 algorithms × 3 skews
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Skew must hurt: for each algorithm, use rate at skew 1.5 below
	// skew 0.
	for i := 0; i < 3; i++ {
		var at0, at15 float64
		fmt.Sscanf(tab.Rows[3*i][2], "%g", &at0)
		fmt.Sscanf(tab.Rows[3*i+2][2], "%g", &at15)
		if at15 >= at0 {
			t.Errorf("%s: hot spots did not reduce use rate (%v → %v)", tab.Rows[3*i][0], at0, at15)
		}
	}
}
