// Package experiments defines the paper's evaluation (§5) as runnable
// configurations: every figure of the evaluation section, the future-work
// extensions (loan threshold, hierarchical topology) and two ablations
// (choice of A, the §4.2.2/§4.6 optimizations). cmd/paperfig regenerates
// the figures; bench_test.go wraps each one in a testing.B benchmark.
//
// The paper's constants: N = 32 processes, M = 80 resources, critical
// sections of 5–35 ms, γ ≈ 0.6 ms network latency. The paper
// parameterizes load by ρ = β/(α+γ) without publishing the exact values
// for its "medium" and "high" regimes; this harness uses ρ = 1 and
// ρ = 0.1 (see DESIGN.md).
package experiments

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/bouabdallah"
	"mralloc/internal/centralized"
	"mralloc/internal/core"
	"mralloc/internal/driver"
	"mralloc/internal/incremental"
	"mralloc/internal/maddi"
	"mralloc/internal/manager"
	"mralloc/internal/network"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

// Algorithm names one competitor of the evaluation.
type Algorithm string

// The five systems of Figure 5 (waiting-time figures use the middle three).
const (
	Incremental Algorithm = "Incremental"
	Bouabdallah Algorithm = "Bouabdallah-Laforest"
	WithoutLoan Algorithm = "Without loan"
	WithLoan    Algorithm = "With loan"
	SharedMem   Algorithm = "in shared memory"

	// Maddi is the broadcast comparator from the related work (§2.2,
	// [14]): per-resource Suzuki–Kasami tokens, requests broadcast to
	// every site. It is not one of Figure 5's curves; the
	// message-complexity experiment uses it.
	Maddi Algorithm = "Maddi (broadcast)"

	// Manager is the coordinator comparator from the related work
	// (§2.2, [23], Rhee-style): a fixed manager per resource with FIFO
	// queues, ordered acquisition. Used by the message-complexity and
	// fairness experiments.
	Manager Algorithm = "Manager (Rhee-style)"
)

// Factory returns the node factory for an algorithm.
func Factory(a Algorithm) alg.Factory {
	switch a {
	case Incremental:
		return incremental.NewFactory()
	case Bouabdallah:
		return bouabdallah.NewFactory()
	case WithoutLoan:
		return core.NewFactory(core.WithoutLoan())
	case WithLoan:
		return core.NewFactory(core.WithLoan())
	case SharedMem:
		return centralized.NewFactory()
	case Maddi:
		return maddi.NewFactory()
	case Manager:
		return manager.NewFactory()
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %q", a))
	}
}

// Load selects the request-frequency regime.
type Load string

// The two regimes of every figure.
const (
	MediumLoad Load = "medium" // ρ = 1
	HighLoad   Load = "high"   // ρ = 0.1
)

// Rho maps a load regime to the paper's ρ parameter.
func (l Load) Rho() float64 {
	switch l {
	case MediumLoad:
		return 1
	case HighLoad:
		return 0.1
	default:
		panic(fmt.Sprintf("experiments: unknown load %q", l))
	}
}

// Scale sets how long each simulated run lasts. Figures in the paper
// ran minutes on a cluster; Full is the faithful setting, Quick is for
// benchmarks and smoke tests.
type Scale struct {
	Warmup  sim.Time
	Horizon sim.Time
	Seeds   int
}

// The standard scales.
var (
	Full  = Scale{Warmup: 1 * sim.Second, Horizon: 16 * sim.Second, Seeds: 3}
	Std   = Scale{Warmup: 500 * sim.Millisecond, Horizon: 6 * sim.Second, Seeds: 2}
	Quick = Scale{Warmup: 200 * sim.Millisecond, Horizon: 2 * sim.Second, Seeds: 1}
)

// Point is one cell of one figure: an algorithm under one workload.
type Point struct {
	Alg  Algorithm
	Phi  int
	Load Load
	Seed int64

	// Overrides for the extension/ablation experiments; zero values
	// mean "the paper's configuration".
	CoreOptions *core.Options        // custom LASS options (threshold, A, opts)
	Latency     network.LatencyModel // custom topology (cloud experiment)
	WaitBuckets []int                // waiting-time buckets (Figure 7)
	Zones       int                  // zoned workload (cloud experiment)
	LocalBias   float64
	Skew        float64 // Zipf resource popularity (hot-spot experiment)
}

// Workload builds the paper-standard workload for the point.
func (p Point) Workload() workload.Config {
	return workload.Config{
		N: 32, M: 80, Phi: p.Phi,
		AlphaMin:  5 * sim.Millisecond,
		AlphaMax:  35 * sim.Millisecond,
		Gamma:     600 * sim.Microsecond,
		Rho:       p.Load.Rho(),
		Zones:     p.Zones,
		LocalBias: p.LocalBias,
		Skew:      p.Skew,
		Seed:      p.Seed,
	}
}

func (p Point) factory() alg.Factory {
	if p.CoreOptions != nil {
		return core.NewFactory(*p.CoreOptions)
	}
	return Factory(p.Alg)
}

// Proc is the per-message processing time δ at a receiving node. The
// paper's testbed (C++/OpenMPI on 2.4 GHz Xeons) does not publish it;
// this value is calibrated so that a node saturates at a few thousand
// messages per second, which is what makes the global control token of
// Bouabdallah–Laforest queue under load — the effect the paper
// measures. See DESIGN.md (substitutions) and EXPERIMENTS.md.
const Proc = 600 * sim.Microsecond

// Run executes one point at the given scale.
func Run(p Point, sc Scale) (driver.Result, error) {
	cfg := driver.Config{
		Workload:    p.Workload(),
		Latency:     p.Latency,
		Processing:  Proc,
		Warmup:      sc.Warmup,
		Horizon:     sc.Horizon,
		WaitBuckets: p.WaitBuckets,
	}
	return driver.Run(cfg, p.factory())
}

// Cell aggregates one point over the scale's seeds.
type Cell struct {
	UseRate     float64 // mean over seeds, in [0,1]
	WaitMean    float64 // milliseconds
	WaitStd     float64 // milliseconds (mean of per-seed stddevs)
	WaitP50     float64 // milliseconds (mean of per-seed P² estimates)
	WaitP95     float64
	WaitP99     float64
	MsgPerGrant float64
	Grants      int
	JainWait    float64                // fairness of per-site mean waits
	JainGrants  float64                // fairness of per-site throughput
	Buckets     []driver.BucketSummary // from the last seed shape, means averaged
}

// RunCell runs a point across seeds and averages. Fairness indices are
// averaged alongside the headline metrics.
func RunCell(p Point, sc Scale) (Cell, error) {
	var c Cell
	var bucketMeans [][]float64
	var bucketStds [][]float64
	for s := 0; s < sc.Seeds; s++ {
		p.Seed = int64(1000*s) + 7
		res, err := Run(p, sc)
		if err != nil {
			return Cell{}, err
		}
		c.UseRate += res.UseRate
		c.WaitMean += res.Waiting.Mean
		c.WaitStd += res.Waiting.StdDev
		c.WaitP50 += res.Waiting.P50
		c.WaitP95 += res.Waiting.P95
		c.WaitP99 += res.Waiting.P99
		c.MsgPerGrant += res.MsgPerGrant
		c.Grants += res.Grants
		c.JainWait += res.JainWait
		c.JainGrants += res.JainGrants
		if len(res.WaitBuckets) > 0 {
			if c.Buckets == nil {
				c.Buckets = res.WaitBuckets
				bucketMeans = make([][]float64, len(res.WaitBuckets))
				bucketStds = make([][]float64, len(res.WaitBuckets))
			}
			for i, b := range res.WaitBuckets {
				bucketMeans[i] = append(bucketMeans[i], b.Summary.Mean)
				bucketStds[i] = append(bucketStds[i], b.Summary.StdDev)
			}
		}
	}
	n := float64(sc.Seeds)
	c.UseRate /= n
	c.WaitMean /= n
	c.WaitStd /= n
	c.WaitP50 /= n
	c.WaitP95 /= n
	c.WaitP99 /= n
	c.MsgPerGrant /= n
	c.JainWait /= n
	c.JainGrants /= n
	for i := range c.Buckets {
		var sum, sumStd float64
		for _, v := range bucketMeans[i] {
			sum += v
		}
		for _, v := range bucketStds[i] {
			sumStd += v
		}
		c.Buckets[i].Summary.Mean = sum / float64(len(bucketMeans[i]))
		c.Buckets[i].Summary.StdDev = sumStd / float64(len(bucketStds[i]))
	}
	return c, nil
}

// PhiGrid is the x-axis of Figure 5 (maximum request size).
var PhiGrid = []int{1, 4, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80}

// Fig7Buckets are the request-size groups of Figure 7.
var Fig7Buckets = []int{1, 17, 33, 49, 65, 80}
