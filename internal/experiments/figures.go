package experiments

import (
	"fmt"

	"mralloc/internal/core"
	"mralloc/internal/network"
	"mralloc/internal/sim"
)

// fig5Algorithms are the five curves of Figure 5, in the paper's legend
// order.
var fig5Algorithms = []Algorithm{Incremental, Bouabdallah, WithoutLoan, WithLoan, SharedMem}

// waitAlgorithms are the three bars of Figures 6 and 7 (the paper drops
// the incremental algorithm — "the average waiting time was too high" —
// and the shared-memory bound, which has no meaningful waiting time).
var waitAlgorithms = []Algorithm{Bouabdallah, WithoutLoan, WithLoan}

// Figure5 regenerates Figure 5: resource-use rate (percent) as a
// function of the maximum request size φ, one column per algorithm.
func Figure5(load Load, sc Scale) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Figure 5 (%s load): resource use rate (%%) vs maximum request size φ", load),
		Header: []string{"phi"},
	}
	for _, a := range fig5Algorithms {
		t.Header = append(t.Header, string(a))
	}
	cells := make([][]Cell, len(PhiGrid))
	errs := make([][]error, len(PhiGrid))
	var jobs []job
	for i, phi := range PhiGrid {
		cells[i] = make([]Cell, len(fig5Algorithms))
		errs[i] = make([]error, len(fig5Algorithms))
		for j, a := range fig5Algorithms {
			jobs = append(jobs, job{
				point: Point{Alg: a, Phi: phi, Load: load},
				out:   &cells[i][j],
				err:   &errs[i][j],
			})
		}
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, phi := range PhiGrid {
		row := []any{phi}
		for j := range fig5Algorithms {
			row = append(row, 100*cells[i][j].UseRate)
		}
		t.Add(row...)
	}
	return t, nil
}

// Figure6 regenerates Figure 6: average waiting time (ms) with standard
// deviation at φ = 4, for the three token algorithms.
func Figure6(load Load, sc Scale) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Figure 6 (%s load): average waiting time (ms), φ = 4", load),
		Header: []string{"algorithm", "wait_ms", "stddev_ms", "p50_ms", "p95_ms", "p99_ms"},
		Notes:  []string{"quantiles are streaming P² estimates, averaged over seeds (not in the paper's figure)"},
	}
	cells := make([]Cell, len(waitAlgorithms))
	errs := make([]error, len(waitAlgorithms))
	var jobs []job
	for i, a := range waitAlgorithms {
		jobs = append(jobs, job{
			point: Point{Alg: a, Phi: 4, Load: load},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range waitAlgorithms {
		t.Add(string(a), cells[i].WaitMean, cells[i].WaitStd, cells[i].WaitP50, cells[i].WaitP95, cells[i].WaitP99)
	}
	return t, nil
}

// Figure7 regenerates Figure 7: average waiting time (ms) by request
// size bucket at φ = 80, for the three token algorithms.
func Figure7(load Load, sc Scale) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Figure 7 (%s load): waiting time (ms) by request size, φ = 80", load),
		Header: []string{"algorithm"},
	}
	for _, e := range Fig7Buckets {
		t.Header = append(t.Header, fmt.Sprintf("%dres", e))
	}
	cells := make([]Cell, len(waitAlgorithms))
	errs := make([]error, len(waitAlgorithms))
	var jobs []job
	for i, a := range waitAlgorithms {
		jobs = append(jobs, job{
			point: Point{Alg: a, Phi: 80, Load: load, WaitBuckets: Fig7Buckets},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range waitAlgorithms {
		row := []any{string(a)}
		for _, b := range cells[i].Buckets {
			row = append(row, fmt.Sprintf("%.0f±%.0f", b.Summary.Mean, b.Summary.StdDev))
		}
		t.Add(row...)
	}
	return t, nil
}

// ThresholdSweep is extension E1 (the paper's future work §6): the
// impact of the loan threshold on use rate and waiting time, φ = 16,
// high load.
func ThresholdSweep(sc Scale) (Table, error) {
	t := Table{
		Title:  "Extension E1: loan threshold sweep (φ = 16, high load)",
		Header: []string{"threshold", "use_rate_%", "wait_ms", "msg_per_cs"},
		Notes:  []string{"threshold 0 row is the loan-disabled baseline"},
	}
	thresholds := []int{0, 1, 2, 3, 4, 6}
	cells := make([]Cell, len(thresholds))
	errs := make([]error, len(thresholds))
	var jobs []job
	for i, th := range thresholds {
		opt := core.Options{Loan: th > 0, LoanThreshold: th}
		jobs = append(jobs, job{
			point: Point{Alg: WithLoan, Phi: 16, Load: HighLoad, CoreOptions: &opt},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, th := range thresholds {
		t.Add(th, 100*cells[i].UseRate, cells[i].WaitMean, cells[i].MsgPerGrant)
	}
	return t, nil
}

// MarkSweep is ablation A1: the scheduling policy A, φ = 16, high load.
func MarkSweep(sc Scale) (Table, error) {
	t := Table{
		Title:  "Ablation A1: choice of the scheduling function A (φ = 16, high load)",
		Header: []string{"A", "use_rate_%", "wait_ms", "wait_std_ms"},
	}
	marks := []struct {
		name string
		fn   core.MarkFunc
	}{
		{"avg-nonzero (paper)", core.AvgNonZero},
		{"max", core.MaxNonZero},
		{"sum", core.SumNonZero},
		{"min-nonzero", core.MinNonZero},
	}
	cells := make([]Cell, len(marks))
	errs := make([]error, len(marks))
	var jobs []job
	for i, mk := range marks {
		opt := core.Options{Loan: true, LoanThreshold: 1, Mark: mk.fn}
		jobs = append(jobs, job{
			point: Point{Alg: WithLoan, Phi: 16, Load: HighLoad, CoreOptions: &opt},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, mk := range marks {
		t.Add(mk.name, 100*cells[i].UseRate, cells[i].WaitMean, cells[i].WaitStd)
	}
	return t, nil
}

// OptsSweep is ablation A2: the message-count impact of §4.2.2
// aggregation and the §4.6 optimizations.
func OptsSweep(sc Scale) (Table, error) {
	t := Table{
		Title:  "Ablation A2: §4.2.2/§4.6 optimizations (high load)",
		Header: []string{"configuration", "phi", "msg_per_cs", "wait_ms"},
	}
	type variant struct {
		name string
		opt  core.Options
	}
	variants := []variant{
		{"all on (paper)", core.Options{Loan: true, LoanThreshold: 1}},
		{"no aggregation", core.Options{Loan: true, LoanThreshold: 1, DisableAggregation: true}},
		{"no single-resource fast path", core.Options{Loan: true, LoanThreshold: 1, DisableSingleResOpt: true}},
		{"no path shortcut", core.Options{Loan: true, LoanThreshold: 1, DisableShortcut: true}},
		{"no forward stop", core.Options{Loan: true, LoanThreshold: 1, DisableForwardStop: true}},
		{"all off", core.Options{Loan: true, LoanThreshold: 1, DisableAggregation: true, DisableSingleResOpt: true, DisableShortcut: true, DisableForwardStop: true}},
	}
	phis := []int{4, 16}
	cells := make([][]Cell, len(variants))
	errs := make([][]error, len(variants))
	var jobs []job
	for i, v := range variants {
		cells[i] = make([]Cell, len(phis))
		errs[i] = make([]error, len(phis))
		for j, phi := range phis {
			opt := v.opt
			jobs = append(jobs, job{
				point: Point{Alg: WithLoan, Phi: phi, Load: HighLoad, CoreOptions: &opt},
				out:   &cells[i][j],
				err:   &errs[i][j],
			})
		}
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, v := range variants {
		for j, phi := range phis {
			t.Add(v.name, phi, cells[i][j].MsgPerGrant, cells[i][j].WaitMean)
		}
	}
	return t, nil
}

// CloudExperiment is extension E2 (the paper's conclusion): a two-zone
// hierarchical topology with expensive inter-zone links, under a zoned
// workload (90% of requests touch only home-zone resources — cloud
// jobs are mostly local). The global control token of
// Bouabdallah–Laforest crosses zones regardless of locality; the
// counter mechanism only pays inter-zone latency on real cross-zone
// conflicts.
func CloudExperiment(sc Scale) (Table, error) {
	t := Table{
		Title:  "Extension E2: two-zone cloud topology (φ = 8, high load, 90% zone-local requests, γ_local = 0.1 ms, γ_remote = 5 ms)",
		Header: []string{"algorithm", "use_rate_%", "wait_ms", "msg_per_cs"},
	}
	lat := network.Hierarchical{
		Zone:   network.TwoZones(32),
		Local:  network.Constant{D: 100 * sim.Microsecond},
		Remote: network.Constant{D: 5 * sim.Millisecond},
	}
	algs := []Algorithm{Bouabdallah, WithoutLoan, WithLoan}
	cells := make([]Cell, len(algs))
	errs := make([]error, len(algs))
	var jobs []job
	for i, a := range algs {
		jobs = append(jobs, job{
			point: Point{Alg: a, Phi: 8, Load: HighLoad, Latency: lat, Zones: 2, LocalBias: 0.9},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range algs {
		t.Add(string(a), 100*cells[i].UseRate, cells[i].WaitMean, cells[i].MsgPerGrant)
	}
	return t, nil
}

// MessageComplexity quantifies the §1–§2 discussion: messages per
// critical section for every algorithm family — broadcast (Maddi),
// M × Naimi–Tréhel (incremental), global control token (BL) and the
// counter algorithm — across request sizes, at high load.
func MessageComplexity(sc Scale) (Table, error) {
	t := Table{
		Title:  "Message complexity: protocol messages per critical section (high load)",
		Header: []string{"algorithm"},
		Notes: []string{
			"Maddi broadcasts every request to all N-1 sites: Θ(x·N) per CS.",
			"the counter algorithm batches per destination (§4.2.2), so one message may carry several requests",
		},
	}
	phis := []int{1, 4, 16, 64}
	for _, phi := range phis {
		t.Header = append(t.Header, fmt.Sprintf("phi=%d", phi))
	}
	algs := []Algorithm{Maddi, Manager, Incremental, Bouabdallah, WithoutLoan, WithLoan}
	cells := make([][]Cell, len(algs))
	errs := make([][]error, len(algs))
	var jobs []job
	for i, a := range algs {
		cells[i] = make([]Cell, len(phis))
		errs[i] = make([]error, len(phis))
		for j, phi := range phis {
			jobs = append(jobs, job{
				point: Point{Alg: a, Phi: phi, Load: HighLoad},
				out:   &cells[i][j],
				err:   &errs[i][j],
			})
		}
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range algs {
		row := []any{string(a)}
		for j := range phis {
			row = append(row, cells[i][j].MsgPerGrant)
		}
		t.Add(row...)
	}
	return t, nil
}

// FairnessSweep checks that the dynamic scheduling of the counter
// algorithm — which deliberately reorders requests — does not come at
// the price of per-site fairness. Jain's index over per-site mean
// waiting time and per-site throughput: 1.0 is perfectly fair.
func FairnessSweep(sc Scale) (Table, error) {
	t := Table{
		Title:  "Fairness: Jain's index over per-site service (φ = 16, high load)",
		Header: []string{"algorithm", "jain_wait", "jain_throughput", "wait_ms"},
	}
	algs := []Algorithm{Maddi, Manager, Incremental, Bouabdallah, WithoutLoan, WithLoan}
	cells := make([]Cell, len(algs))
	errs := make([]error, len(algs))
	var jobs []job
	for i, a := range algs {
		jobs = append(jobs, job{
			point: Point{Alg: a, Phi: 16, Load: HighLoad},
			out:   &cells[i],
			err:   &errs[i],
		})
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range algs {
		t.Add(string(a), cells[i].JainWait, cells[i].JainGrants, cells[i].WaitMean)
	}
	return t, nil
}

// HotspotSweep is extension E5: Zipf-skewed resource popularity. The
// paper's Figure 7 discussion notes that "a highly requested resource
// will have a higher counter value", penalizing requests that touch hot
// resources; this sweep measures how each algorithm degrades as a few
// resources absorb most of the demand (skew s: resource r drawn with
// weight (r+1)^-s).
func HotspotSweep(sc Scale) (Table, error) {
	t := Table{
		Title:  "Extension E5: Zipf hot-spot workloads (φ = 8, high load)",
		Header: []string{"algorithm", "skew", "use_rate_%", "wait_ms", "jain_wait"},
	}
	algs := []Algorithm{Bouabdallah, WithoutLoan, WithLoan}
	skews := []float64{0, 0.8, 1.5}
	cells := make([][]Cell, len(algs))
	errs := make([][]error, len(algs))
	var jobs []job
	for i, a := range algs {
		cells[i] = make([]Cell, len(skews))
		errs[i] = make([]error, len(skews))
		for j, sk := range skews {
			jobs = append(jobs, job{
				point: Point{Alg: a, Phi: 8, Load: HighLoad, Skew: sk},
				out:   &cells[i][j],
				err:   &errs[i][j],
			})
		}
	}
	if err := sweep(sc, jobs); err != nil {
		return Table{}, err
	}
	for i, a := range algs {
		for j, sk := range skews {
			t.Add(string(a), sk, 100*cells[i][j].UseRate, cells[i][j].WaitMean, cells[i][j].JainWait)
		}
	}
	return t, nil
}
