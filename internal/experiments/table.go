package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: what the paper shows as a
// figure, printed as aligned rows (and convertible to CSV).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends one row; values are formatted with %v, floats with %.4g.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders an aligned ASCII table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
