package pmutex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mralloc/internal/network"
	"mralloc/internal/sim"
)

// harness wires N lock endpoints over the simulated network.
type harness struct {
	eng   *sim.Engine
	nw    *network.Network
	nodes []*Node
	order []network.NodeID
	inCS  network.NodeID
	count int
}

type env struct {
	h  *harness
	id network.NodeID
}

func (e *env) ID() network.NodeID { return e.id }
func (e *env) N() int             { return len(e.h.nodes) }
func (e *env) Send(to network.NodeID, m network.Message) {
	e.h.nw.Send(e.id, to, m)
}

func newHarness(t *testing.T, n int, hold sim.Time) *harness {
	t.Helper()
	h := &harness{eng: sim.New(), inCS: network.None}
	h.nw = network.New(h.eng, n, network.Constant{D: sim.Millisecond}, nil)
	h.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		id := network.NodeID(i)
		h.nodes[i] = New(&env{h: h, id: id}, 0, func() {
			if h.inCS != network.None {
				t.Fatalf("s%d locked while s%d inside", id, h.inCS)
			}
			h.inCS = id
			h.order = append(h.order, id)
			h.eng.After(hold, func() {
				h.inCS = network.None
				h.count++
				h.nodes[id].Unlock()
			})
		})
		h.nw.Bind(id, h.nodes[id].Deliver)
	}
	return h
}

func TestRootLocksImmediately(t *testing.T) {
	h := newHarness(t, 3, sim.Millisecond)
	h.nodes[0].Lock(1)
	if h.nodes[0].State() != Locked {
		t.Fatal("idle root did not lock synchronously")
	}
	h.eng.Run()
	if h.count != 1 {
		t.Fatalf("count = %d", h.count)
	}
}

func TestPriorityOrdersService(t *testing.T) {
	h := newHarness(t, 4, 20*sim.Millisecond)
	// Node 0 locks first (it is the root); 1, 2, 3 request while 0 is
	// inside, with priorities that invert their arrival order.
	h.eng.At(0, func() { h.nodes[0].Lock(5) })
	h.eng.At(sim.Millisecond, func() { h.nodes[1].Lock(30) })
	h.eng.At(2*sim.Millisecond, func() { h.nodes[2].Lock(10) })
	h.eng.At(3*sim.Millisecond, func() { h.nodes[3].Lock(20) })
	h.eng.Run()
	want := []network.NodeID{0, 2, 3, 1} // by priority 5, 10, 20, 30
	if len(h.order) != len(want) {
		t.Fatalf("order = %v", h.order)
	}
	for i, w := range want {
		if h.order[i] != w {
			t.Fatalf("service order %v, want %v", h.order, want)
		}
	}
}

func TestLateHighPriorityOvertakesQueuedLow(t *testing.T) {
	h := newHarness(t, 3, 100*sim.Millisecond)
	// Token starts at node 0; node 2 takes it into a long CS. While it
	// is locked, node 1 queues with low priority 40, and only then
	// node 0 arrives with priority 2: despite requesting last, node 0
	// must be served first when node 2 unlocks.
	h.eng.At(0, func() { h.nodes[2].Lock(1) })
	h.eng.At(20*sim.Millisecond, func() { h.nodes[1].Lock(40) })
	h.eng.At(40*sim.Millisecond, func() { h.nodes[0].Lock(2) })
	h.eng.Run()
	want := []network.NodeID{2, 0, 1}
	if len(h.order) != len(want) {
		t.Fatalf("order = %v", h.order)
	}
	for i, w := range want {
		if h.order[i] != w {
			t.Fatalf("service order %v, want %v", h.order, want)
		}
	}
}

func TestTieBreakBySite(t *testing.T) {
	h := newHarness(t, 3, 20*sim.Millisecond)
	h.eng.At(0, func() { h.nodes[0].Lock(1) })
	h.eng.At(sim.Millisecond, func() { h.nodes[2].Lock(7) })
	h.eng.At(2*sim.Millisecond, func() { h.nodes[1].Lock(7) })
	h.eng.Run()
	want := []network.NodeID{0, 1, 2} // tie on 7 broken by site order
	for i, w := range want {
		if h.order[i] != w {
			t.Fatalf("order %v, want %v", h.order, want)
		}
	}
}

// TestRandomWorkloadSafetyLiveness drives random lock/unlock cycles
// and checks every request completes and exclusion never breaks (the
// harness panics on overlap).
func TestRandomWorkloadSafetyLiveness(t *testing.T) {
	prop := func(seed int64) bool {
		const n, rounds = 5, 4
		h := newHarness(t, n, 2*sim.Millisecond)
		r := rand.New(rand.NewSource(seed))
		var issue func(id network.NodeID, left int)
		issue = func(id network.NodeID, left int) {
			if left == 0 {
				return
			}
			h.eng.After(sim.Time(r.Intn(10000))*sim.Microsecond, func() {
				if h.nodes[id].State() != Idle {
					issue(id, left)
					return
				}
				h.nodes[id].Lock(Priority(r.Intn(50)))
				issue(id, left-1)
			})
		}
		for i := 0; i < n; i++ {
			issue(network.NodeID(i), rounds)
		}
		h.eng.Run()
		return h.count == n*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactlyOneToken(t *testing.T) {
	h := newHarness(t, 5, 2*sim.Millisecond)
	for i := 0; i < 5; i++ {
		i := i
		h.eng.At(sim.Time(i)*sim.Microsecond, func() { h.nodes[i].Lock(Priority(i)) })
	}
	for h.eng.Step() {
		holders := 0
		for _, nd := range h.nodes {
			if nd.HasToken() {
				holders++
			}
		}
		if holders > 1 {
			t.Fatal("two token holders")
		}
	}
	if h.count != 5 {
		t.Fatalf("count = %d", h.count)
	}
}

func TestMisusePanics(t *testing.T) {
	h := newHarness(t, 2, sim.Millisecond)
	h.nodes[0].Lock(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double lock did not panic")
			}
		}()
		h.nodes[0].Lock(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unlock while idle did not panic")
			}
		}()
		h.nodes[1].Unlock()
	}()
}
