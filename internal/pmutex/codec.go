package pmutex

import (
	"unsafe"

	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// Wire codecs for the standalone prioritized mutex, so that embedders
// running it over a real transport (and the codec test battery) cover
// its two message kinds alongside the multi-resource protocols.

func init() {
	wire.Register("PMutex.Request",
		func(e *wire.Enc, m network.Message) {
			r := m.(reqMsg)
			e.Node(r.Site)
			e.Varint(r.ID)
			e.F64(float64(r.Pri))
			e.Nodes(r.Visited)
		},
		func(d *wire.Dec) network.Message {
			return reqMsg{Site: d.Site(), ID: d.Varint(), Pri: Priority(d.F64()), Visited: d.Nodes()}
		})
	wire.Register("PMutex.Token",
		func(e *wire.Enc, m network.Message) {
			t := m.(tokMsg)
			e.Uvarint(uint64(len(t.Queue)))
			for _, q := range t.Queue {
				e.Node(q.Site)
				e.Varint(q.ID)
				e.F64(float64(q.Pri))
			}
			e.Int64s(t.Served)
		},
		func(d *wire.Dec) network.Message {
			var t tokMsg
			n := d.Count()
			if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(entry{}))) {
				return t
			}
			if n > 0 {
				t.Queue = make([]entry, 0, n)
				for i := 0; i < n; i++ {
					q := entry{Site: d.Site(), ID: d.Varint(), Pri: Priority(d.F64())}
					if d.Err() != nil {
						return t
					}
					t.Queue = append(t.Queue, q)
				}
			}
			t.Served = d.Int64s()
			// Served is indexed by site id; under shape validation it
			// must be exactly N long.
			if nn, _ := d.Shape(); nn > 0 && d.Err() == nil && len(t.Served) != nn {
				d.Fail("served vector of %d entries in a cluster of %d", len(t.Served), nn)
			}
			return t
		})
	wire.RegisterSamples(
		reqMsg{Site: 4, ID: 11, Pri: 2.5, Visited: []network.NodeID{4, 1}},
		tokMsg{Queue: []entry{{Site: 1, ID: 3, Pri: 0.5}, {Site: 2, ID: 1, Pri: 1}}, Served: []int64{0, 3, 1}},
		tokMsg{},
	)
}
