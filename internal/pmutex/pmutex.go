// Package pmutex is a standalone prioritized distributed mutual
// exclusion lock — the "simplified version of the Mueller algorithm"
// (RTSS 1999) that the paper instantiates once per resource (§4). The
// multi-resource algorithm in internal/core embeds this machinery with
// its counter/loan extensions; this package exposes the bare substrate
// for reuse and for studying it in isolation.
//
// Like Naimi–Tréhel, the nodes form a dynamic logical tree whose root
// holds the token; unlike it, every request carries a priority, the
// token carries a queue sorted by priority, and a waiting root yields
// the token to a higher-priority newcomer (enqueueing itself). Requests
// travel toward the root along father pointers; because the tree
// mutates while requests are in flight, each request records the sites
// it visited (a message whose next hop was already visited stops and
// waits in that site's local history, replayed when the token arrives)
// and the token carries per-site stamps that invalidate obsolete
// replays — the §4.2.1 machinery, single-resource edition.
package pmutex

import (
	"fmt"

	"mralloc/internal/network"
)

// Priority orders requests; smaller wins. Ties break by site id (the
// paper's ≺). The zero Priority is the highest.
type Priority float64

// entry is one queued request.
type entry struct {
	Site network.NodeID
	ID   int64
	Pri  Priority
}

func (a entry) precedes(b entry) bool {
	if a.Pri != b.Pri {
		return a.Pri < b.Pri
	}
	return a.Site < b.Site
}

// reqMsg travels toward the token holder.
type reqMsg struct {
	Site    network.NodeID
	ID      int64
	Pri     Priority
	Visited []network.NodeID
}

// Kind implements network.Message.
func (reqMsg) Kind() string { return "PMutex.Request" }

// tokMsg transfers the token: the sorted queue plus last-served stamps.
type tokMsg struct {
	Queue  []entry
	Served []int64
}

// Kind implements network.Message.
func (tokMsg) Kind() string { return "PMutex.Token" }

// State is the lock's request lifecycle.
type State uint8

// The lock states.
const (
	Idle State = iota
	Waiting
	Locked
)

// Node is one site's endpoint of the lock.
type Node struct {
	env alg

	st     State
	father network.NodeID // None when root (token here)
	token  bool

	id     int64
	pri    Priority
	queue  []entry // authoritative only while token present
	served []int64
	hist   []reqMsg // local history of forwarded requests (§4.2.1)

	granted func()
}

// alg is the small environment surface the lock needs (a subset of
// internal/alg.Env, kept local so the package stands alone).
type alg interface {
	ID() network.NodeID
	N() int
	Send(to network.NodeID, m network.Message)
}

// New creates an endpoint. root names the initial token holder, the
// same at every site; granted fires on lock acquisition.
func New(env alg, root network.NodeID, granted func()) *Node {
	nd := &Node{env: env, father: root, granted: granted}
	if env.ID() == root {
		nd.father = network.None
		nd.token = true
		nd.served = make([]int64, env.N())
	}
	return nd
}

// State reports the lock's current lifecycle state.
func (nd *Node) State() State { return nd.st }

// HasToken reports whether the token is at this site.
func (nd *Node) HasToken() bool { return nd.token }

// Lock requests the critical section with the given priority. The node
// must be Idle; the grant callback may fire synchronously.
func (nd *Node) Lock(pri Priority) {
	if nd.st != Idle {
		panic(fmt.Sprintf("pmutex: s%d locked twice", nd.env.ID()))
	}
	nd.id++
	nd.pri = pri
	nd.st = Waiting
	if nd.token {
		nd.enter()
		return
	}
	nd.env.Send(nd.father, reqMsg{
		Site: nd.env.ID(), ID: nd.id, Pri: pri,
		Visited: []network.NodeID{nd.env.ID()},
	})
}

// Unlock releases the critical section, forwarding the token to the
// highest-priority waiter if any.
func (nd *Node) Unlock() {
	if nd.st != Locked {
		panic(fmt.Sprintf("pmutex: s%d unlocked while not locked", nd.env.ID()))
	}
	nd.st = Idle
	nd.served[nd.env.ID()] = nd.id
	nd.serveHead()
}

func (nd *Node) enter() {
	nd.st = Locked
	nd.granted()
}

// serveHead sends the token to the queue head, skipping obsolete
// entries. The token stays put when nobody waits.
func (nd *Node) serveHead() {
	for len(nd.queue) > 0 {
		head := nd.queue[0]
		nd.queue = nd.queue[1:]
		if head.ID <= nd.served[head.Site] {
			continue
		}
		nd.sendToken(head.Site)
		return
	}
}

func (nd *Node) sendToken(to network.NodeID) {
	if to == nd.env.ID() {
		panic("pmutex: sending token to self")
	}
	nd.token = false
	nd.father = to
	q, s := nd.queue, nd.served
	nd.queue, nd.served = nil, nil
	nd.env.Send(to, tokMsg{Queue: q, Served: s})
}

// insert adds e in priority order, deduplicating by (site, id).
func (nd *Node) insert(e entry) {
	for _, x := range nd.queue {
		if x.Site == e.Site && x.ID == e.ID {
			return
		}
	}
	i := 0
	for i < len(nd.queue) && nd.queue[i].precedes(e) {
		i++
	}
	nd.queue = append(nd.queue, entry{})
	copy(nd.queue[i+1:], nd.queue[i:])
	nd.queue[i] = e
}

// Deliver processes a protocol message.
func (nd *Node) Deliver(_ network.NodeID, m network.Message) {
	switch msg := m.(type) {
	case reqMsg:
		nd.onRequest(msg)
	case tokMsg:
		nd.onToken(msg)
	default:
		panic(fmt.Sprintf("pmutex: unexpected message %T", m))
	}
}

func (nd *Node) onRequest(msg reqMsg) {
	e := entry{Site: msg.Site, ID: msg.ID, Pri: msg.Pri}
	if nd.token {
		if e.ID <= nd.served[e.Site] {
			return // obsolete replay
		}
		switch nd.st {
		case Idle:
			nd.sendToken(e.Site)
		case Waiting:
			my := entry{Site: nd.env.ID(), ID: nd.id, Pri: nd.pri}
			if e.precedes(my) {
				// Priority preemption: yield, queueing ourselves.
				nd.insert(my)
				nd.sendToken(e.Site)
			} else {
				nd.insert(e)
			}
		case Locked:
			nd.insert(e)
		}
		return
	}
	// Not the root: forward along the tree unless the next hop already
	// saw this request; either way remember it for replay.
	nd.hist = append(nd.hist, msg)
	next := nd.father
	for _, v := range msg.Visited {
		if v == next {
			return
		}
	}
	fwd := msg
	fwd.Visited = append(append([]network.NodeID(nil), msg.Visited...), nd.env.ID())
	nd.env.Send(next, fwd)
}

func (nd *Node) onToken(msg tokMsg) {
	if nd.token {
		panic(fmt.Sprintf("pmutex: s%d received duplicate token", nd.env.ID()))
	}
	nd.token = true
	nd.father = network.None
	nd.queue = msg.Queue
	nd.served = msg.Served
	// Replay the local history (§4.2.1), then drop our own entries —
	// the token being here serves us.
	hist := nd.hist
	nd.hist = nil
	for _, h := range hist {
		e := entry{Site: h.Site, ID: h.ID, Pri: h.Pri}
		if e.Site != nd.env.ID() && e.ID > nd.served[e.Site] {
			nd.insert(e)
		}
	}
	q := nd.queue[:0]
	for _, e := range nd.queue {
		if e.Site != nd.env.ID() {
			q = append(q, e)
		}
	}
	nd.queue = q

	if nd.st == Waiting {
		// A queued request may still outrank us (we yielded before).
		if len(nd.queue) > 0 {
			head := nd.queue[0]
			my := entry{Site: nd.env.ID(), ID: nd.id, Pri: nd.pri}
			if head.precedes(my) && head.ID > nd.served[head.Site] {
				nd.queue = nd.queue[1:]
				nd.insert(my)
				nd.sendToken(head.Site)
				return
			}
		}
		nd.enter()
		return
	}
	// Token arrived while idle (a stale replay routed it here): pass it
	// on or keep it.
	nd.serveHead()
}
