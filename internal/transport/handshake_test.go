package transport_test

import (
	"bufio"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/wire"
)

// listenPair builds a two-process cluster: endpoint a hosts node 0,
// endpoint b hosts node 1, tuned before any connection is dialed.
func listenPair(t *testing.T, tuneA, tuneB transport.WireOptions) (a, b *transport.TCP) {
	t.Helper()
	a, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err = transport.ListenTCP("127.0.0.1:0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Tune(tuneA)
	b.Tune(tuneB)
	addrs := []string{a.Addr(), b.Addr()}
	if err := a.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func waitErr(t *testing.T, tr *transport.TCP, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := tr.Err(); err != nil {
			if !strings.Contains(err.Error(), substr) {
				t.Fatalf("error %q does not mention %q", err, substr)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no transport error mentioning %q", substr)
}

func waitDelivery(t *testing.T, ch <-chan network.Message) network.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
		return nil
	}
}

// TestHandshakeNegotiates: two same-build endpoints exchange hellos,
// agree on the full feature set and the default window, and traffic
// flows.
func TestHandshakeNegotiates(t *testing.T) {
	a, b := listenPair(t, transport.WireOptions{Delta: true}, transport.WireOptions{Delta: true})
	got := make(chan network.Message, 1)
	b.Bind(1, func(from network.NodeID, m network.Message) { got <- m })
	a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	waitDelivery(t, got)
	peer, ok := a.Negotiated(b.Addr())
	if !ok {
		t.Fatal("connection not negotiated")
	}
	if peer.Features&wire.FeatDelta == 0 || peer.Features&wire.FeatWritev == 0 {
		t.Fatalf("peer features %b missing delta or writev", peer.Features)
	}
	if peer.Window != transport.DefaultWindow {
		t.Fatalf("peer window %d, want default %d", peer.Window, transport.DefaultWindow)
	}
	if peer.Nodes != 2 {
		t.Fatalf("peer reports %d nodes", peer.Nodes)
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeFeatureIntersection: a full-featured dialer against a
// feature-disabled acceptor must land on the common subset — delta
// suppressed on the wire — and still deliver.
func TestHandshakeFeatureIntersection(t *testing.T) {
	a, b := listenPair(t,
		transport.WireOptions{Delta: true},
		transport.WireOptions{Delta: false, NoVectored: true})
	got := make(chan network.Message, 1)
	b.Bind(1, func(from network.NodeID, m network.Message) { got <- m })
	a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 7})
	m := waitDelivery(t, got)
	if m.(transporttest.Msg).Seq != 7 {
		t.Fatalf("delivered %#v", m)
	}
	peer, ok := a.Negotiated(b.Addr())
	if !ok {
		t.Fatal("connection not negotiated")
	}
	if peer.Features&wire.FeatDelta != 0 {
		t.Fatal("feature-disabled peer advertised delta")
	}
	if peer.Features&wire.FeatWritev != 0 {
		t.Fatal("no-writev peer advertised writev")
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeNodesMismatch: a dialer configured for a different
// cluster size must be rejected with a reason, not served garbage.
func TestHandshakeNodesMismatch(t *testing.T) {
	a, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("127.0.0.1:0", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Connect([]string{a.Addr(), b.Addr()}); err != nil {
		t.Fatal(err)
	}
	a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	waitErr(t, a, "rejected")
	waitErr(t, b, "nodes")
}

// TestHandshakeResourceMismatch: both sides know their resource
// universe and disagree — rejected. One side not knowing (zero) is
// fine: the shape check only binds where both sides have announced.
func TestHandshakeResourceMismatch(t *testing.T) {
	a, b := listenPair(t, transport.WireOptions{}, transport.WireOptions{})
	a.SetShape(2, 8)
	b.SetShape(2, 9)
	a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	waitErr(t, a, "rejected")
	waitErr(t, b, "resource universe")
}

// TestHandshakeVersionMismatch: a raw dialer announcing a future
// protocol version gets a CtrlReject naming the version, and the
// acceptor records the failure.
func TestHandshakeVersionMismatch(t *testing.T) {
	b, err := transport.ListenTCP("127.0.0.1:0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := wire.Hello{Version: wire.ProtoVersion + 41, Nodes: 2}
	if _, err := c.Write(wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, h))); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	ctl, err := wire.ReadControl(bufio.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Code != wire.CtrlReject {
		t.Fatalf("got control %d, want CtrlReject", ctl.Code)
	}
	reason, err := wire.ParseReject(ctl.Payload)
	if err != nil || !strings.Contains(reason, "version") {
		t.Fatalf("reject reason %q, %v", reason, err)
	}
	waitErr(t, b, "version")
}

// TestHandshakeHostile: a garbage hello payload and a duplicate hello
// both kill the connection with a recorded error; nothing is delivered.
func TestHandshakeHostile(t *testing.T) {
	t.Run("garbage payload", func(t *testing.T) {
		b, err := transport.ListenTCP("127.0.0.1:0", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		c, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(wire.AppendControl(nil, wire.CtrlHello, []byte{0xFF})); err != nil {
			t.Fatal(err)
		}
		waitErr(t, b, "hello")
	})
	t.Run("duplicate hello", func(t *testing.T) {
		b, err := transport.ListenTCP("127.0.0.1:0", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		c, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		h := wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Nodes: 2})
		hello := wire.AppendControl(nil, wire.CtrlHello, h)
		if _, err := c.Write(append(append([]byte{}, hello...), hello...)); err != nil {
			t.Fatal(err)
		}
		waitErr(t, b, "hello after")
	})
}

// TestLegacyDialerServed: a peer that never sends a hello (a pre-
// negotiation build) is detected and served byte-for-byte in legacy
// mode — its frames delivered, and not one byte sent back to it.
func TestLegacyDialerServed(t *testing.T) {
	b, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetShape(2, 8)
	got := make(chan network.Message, 1)
	b.Bind(0, func(from network.NodeID, m network.Message) { got <- m })

	c, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The exact pre-negotiation stream: a bare frame, no hello.
	payload := binary.AppendVarint(nil, 1) // from node 1
	payload = binary.AppendVarint(payload, 0)
	payload, err = wire.Append(payload, transporttest.Msg{K: transporttest.KindA, From: 1, Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	if _, err := c.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	m := waitDelivery(t, got)
	if m.(transporttest.Msg).Seq != 3 {
		t.Fatalf("delivered %#v", m)
	}
	// The reverse path must stay silent: a legacy peer's reader would
	// choke on any control we emitted.
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 1)
	if n, err := c.Read(buf); n != 0 || err == nil {
		t.Fatalf("legacy connection received %d reverse-path bytes (err=%v)", n, err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyAcceptorNoHello: NoHello dials a connection that skips
// negotiation entirely — the escape hatch for pre-negotiation
// acceptors — and traffic still flows, uncredited but byte-budgeted.
func TestLegacyAcceptorNoHello(t *testing.T) {
	a, b := listenPair(t, transport.WireOptions{NoHello: true}, transport.WireOptions{})
	got := make(chan network.Message, 1)
	b.Bind(1, func(from network.NodeID, m network.Message) { got <- m })
	a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 9})
	waitDelivery(t, got)
	if _, ok := a.Negotiated(b.Addr()); ok {
		t.Fatal("NoHello connection claims negotiation")
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowStallsSender is the end-to-end flow-control test: a peer
// that grants a tiny window and then stops crediting must stall the
// sender's egress near that window; a later credit resumes it.
func TestWindowStallsSender(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const window = 4096
	credit := make(chan struct{})
	acceptErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		if _, err := wire.ReadControl(br); err != nil { // the dialer's hello
			acceptErr <- err
			return
		}
		h := wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, Window: window})
		if _, err := c.Write(wire.AppendControl(nil, wire.CtrlHello, h)); err != nil {
			acceptErr <- err
			return
		}
		// Stop reading: the window is granted but never replenished.
		<-credit
		u := wire.AppendWindowUpdate(nil, 1<<20)
		c.Write(wire.AppendControl(nil, wire.CtrlWindow, u))
		<-credit // hold the conn open until the test is done
	}()

	a, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Connect([]string{a.Addr(), ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	// Paced single sends keep each flush small, so egress drains group
	// by group until the window is exhausted.
	for i := 0; i < 400; i++ {
		a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: int64(i)})
		time.Sleep(500 * time.Microsecond)
	}
	st := a.WireStats()
	if st.Bytes > window+512 {
		t.Fatalf("wrote %d bytes against a %d-byte window", st.Bytes, window)
	}
	if st.Bytes == 0 {
		t.Fatal("nothing written: window never opened")
	}
	if st.Stalls == 0 {
		t.Fatal("no egress stalls recorded")
	}
	select {
	case err := <-acceptErr:
		t.Fatal(err)
	default:
	}

	credit <- struct{}{} // replenish: egress must resume
	deadline := time.Now().Add(5 * time.Second)
	for a.WireStats().Bytes <= st.Bytes {
		if time.Now().After(deadline) {
			t.Fatalf("egress never resumed past %d bytes after credit", st.Bytes)
		}
		time.Sleep(time.Millisecond)
	}
	close(credit)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
}
