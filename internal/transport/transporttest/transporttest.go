// Package transporttest is the reusable conformance suite for
// transport.Transport implementations. Any transport that carries a
// live cluster must pass TestTransport: it asserts exactly the
// guarantees the algorithms assume — reliable delivery, FIFO per
// ordered node pair, no duplication, accurate per-kind statistics, and
// clean close semantics.
//
// The suite drives the transport through the same endpoint topology a
// cluster would: a Factory returns one endpoint per node (an
// in-process transport returns the same endpoint N times; a socket
// transport returns N connected endpoints). Message codecs for the
// suite's own test messages are registered with internal/wire, so a
// codec-backed transport needs no special support.
package transporttest

import (
	"sync"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/wire"
)

// Msg is the suite's test message. K discriminates the two registered
// kinds so that per-kind statistics can be checked.
type Msg struct {
	K    string
	From network.NodeID
	Seq  int64
}

// The two kinds the suite sends.
const (
	KindA = "TT.A"
	KindB = "TT.B"
)

// Kind implements network.Message.
func (m Msg) Kind() string { return m.K }

func init() {
	enc := func(e *wire.Enc, nm network.Message) {
		m := nm.(Msg)
		e.String(m.K)
		e.Node(m.From)
		e.Varint(m.Seq)
	}
	dec := func(d *wire.Dec) network.Message {
		m := Msg{K: d.String(), From: d.Site(), Seq: d.Varint()}
		if m.K != KindA && m.K != KindB && d.Err() == nil {
			d.Fail("transporttest: bad kind %q in payload", m.K)
		}
		return m
	}
	wire.Register(KindA, enc, dec)
	wire.Register(KindB, enc, dec)
}

// Factory builds a connected transport fabric for n nodes and returns
// node i's endpoint at index i. Endpoints may repeat (one in-process
// endpoint hosting every node). The suite closes each distinct
// endpoint itself.
type Factory func(t *testing.T, n int) []transport.Transport

// TestTransport runs the conformance suite against one implementation.
func TestTransport(t *testing.T, factory Factory) {
	t.Run("FIFONoLossNoDup", func(t *testing.T) { testFIFO(t, factory) })
	t.Run("BatchFIFOAcrossBoundaries", func(t *testing.T) { testBatchFIFO(t, factory) })
	t.Run("PerKindStats", func(t *testing.T) { testStats(t, factory) })
	t.Run("BindBuffersEarlyTraffic", func(t *testing.T) { testLateBind(t, factory) })
	t.Run("CleanClose", func(t *testing.T) { testClose(t, factory) })
}

// distinct returns the unique endpoints of a fabric, in first-use order.
func distinct(eps []transport.Transport) []transport.Transport {
	var out []transport.Transport
	for _, ep := range eps {
		dup := false
		for _, d := range out {
			if d == ep {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, ep)
		}
	}
	return out
}

func closeAll(t *testing.T, eps []transport.Transport) {
	t.Helper()
	for _, ep := range distinct(eps) {
		if err := ep.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// recorder tracks, per ordered pair, the last sequence number seen, and
// fails on any gap, reordering, or duplicate.
type recorder struct {
	t       *testing.T
	n       int
	mu      sync.Mutex
	lastSeq [][]int64 // [to][from]
	total   int
}

func newRecorder(t *testing.T, n int) *recorder {
	r := &recorder{t: t, n: n, lastSeq: make([][]int64, n)}
	for i := range r.lastSeq {
		r.lastSeq[i] = make([]int64, n)
	}
	return r
}

func (r *recorder) handler(to network.NodeID) transport.Handler {
	return func(from network.NodeID, nm network.Message) {
		m, ok := nm.(Msg)
		if !ok {
			r.t.Errorf("node %d received %T, want Msg", to, nm)
			return
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if m.From != from {
			r.t.Errorf("node %d: envelope sender %d but payload sender %d", to, from, m.From)
		}
		if want := r.lastSeq[to][from] + 1; m.Seq != want {
			r.t.Errorf("link %d→%d: got seq %d, want %d (loss, duplication or reordering)",
				from, to, m.Seq, want)
		}
		r.lastSeq[to][from] = m.Seq
		r.total++
	}
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// waitFor polls until the recorder has seen want messages or the
// deadline passes — transports deliver asynchronously.
func (r *recorder) waitFor(want int, d time.Duration) {
	r.t.Helper()
	deadline := time.Now().Add(d)
	for r.count() < want {
		if time.Now().After(deadline) {
			r.t.Fatalf("delivered %d/%d messages within %v (message loss)", r.count(), want, d)
		}
		time.Sleep(time.Millisecond)
	}
	// Settle briefly so late duplicates would still be caught.
	time.Sleep(5 * time.Millisecond)
	if got := r.count(); got != want {
		r.t.Fatalf("delivered %d messages, want exactly %d (duplication)", got, want)
	}
}

// testFIFO hammers every ordered pair concurrently: one sender
// goroutine per pair, interleaved kinds, sequence numbers checked at
// the receiver.
func testFIFO(t *testing.T, factory Factory) {
	const n, msgs = 4, 200
	eps := factory(t, n)
	defer closeAll(t, eps)
	rec := newRecorder(t, n)
	for i := 0; i < n; i++ {
		eps[i].Bind(network.NodeID(i), rec.handler(network.NodeID(i)))
	}
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			from, to := network.NodeID(from), network.NodeID(to)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := int64(1); s <= msgs; s++ {
					k := KindA
					if s%3 == 0 {
						k = KindB
					}
					eps[from].Send(from, to, Msg{K: k, From: from, Seq: s})
				}
			}()
		}
	}
	wg.Wait()
	rec.waitFor(n*(n-1)*msgs, 10*time.Second)
}

// testBatchFIFO interleaves single Sends with SendBatch runs of
// varying sizes on every ordered pair: sequence numbers must still
// arrive gapless and in order — batch boundaries (and however the
// transport coalesces them on the wire) must be invisible to delivery
// order. Transports without BatchSender are exercised through plain
// Sends so the suite stays implementation-agnostic.
func testBatchFIFO(t *testing.T, factory Factory) {
	const n, rounds = 3, 60
	eps := factory(t, n)
	defer closeAll(t, eps)
	rec := newRecorder(t, n)
	for i := 0; i < n; i++ {
		eps[i].Bind(network.NodeID(i), rec.handler(network.NodeID(i)))
	}
	total := 0
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			from, to := network.NodeID(from), network.NodeID(to)
			bs, _ := eps[from].(transport.BatchSender)
			// Per pair: rounds of [1 single, batch of (r%5)+2, 1 single].
			count := 0
			for r := 0; r < rounds; r++ {
				count += 1 + (r%5 + 2) + 1
			}
			total += count
			wg.Add(1)
			go func() {
				defer wg.Done()
				seq := int64(0)
				next := func(k string) Msg {
					seq++
					return Msg{K: k, From: from, Seq: seq}
				}
				batch := make([]network.Message, 0, 8)
				for r := 0; r < rounds; r++ {
					eps[from].Send(from, to, next(KindA))
					batch = batch[:0]
					for i := 0; i < r%5+2; i++ {
						k := KindA
						if i%2 == 1 {
							k = KindB
						}
						batch = append(batch, next(k))
					}
					if bs != nil {
						bs.SendBatch(from, to, batch)
					} else {
						for _, m := range batch {
							eps[from].Send(from, to, m)
						}
					}
					eps[from].Send(from, to, next(KindB))
				}
			}()
		}
	}
	wg.Wait()
	rec.waitFor(total, 10*time.Second)
}

// testStats sends known per-kind counts and checks the aggregated
// endpoint statistics match exactly.
func testStats(t *testing.T, factory Factory) {
	const n = 3
	eps := factory(t, n)
	defer closeAll(t, eps)
	rec := newRecorder(t, n)
	for i := 0; i < n; i++ {
		eps[i].Bind(network.NodeID(i), rec.handler(network.NodeID(i)))
	}
	if got := eps[0].N(); got != n {
		t.Fatalf("N() = %d, want %d", got, n)
	}
	wantA, wantB := 0, 0
	seq := make([][]int64, n)
	for i := range seq {
		seq[i] = make([]int64, n)
	}
	send := func(from, to int, k string) {
		seq[from][to]++
		eps[from].Send(network.NodeID(from), network.NodeID(to),
			Msg{K: k, From: network.NodeID(from), Seq: seq[from][to]})
		if k == KindA {
			wantA++
		} else {
			wantB++
		}
	}
	for i := 0; i < 7; i++ {
		send(0, 1, KindA)
		send(1, 2, KindB)
	}
	send(2, 0, KindA)
	rec.waitFor(wantA+wantB, 10*time.Second)

	gotA, gotB := int64(0), int64(0)
	other := map[string]int64{}
	for _, ep := range distinct(eps) {
		for k, v := range ep.Stats() {
			switch k {
			case KindA:
				gotA += v
			case KindB:
				gotB += v
			default:
				other[k] += v
			}
		}
	}
	if gotA != int64(wantA) || gotB != int64(wantB) {
		t.Errorf("stats %s=%d %s=%d, want %d/%d", KindA, gotA, KindB, gotB, wantA, wantB)
	}
	if len(other) != 0 {
		t.Errorf("unexpected kinds in stats: %v", other)
	}
}

// testLateBind sends to a node before its handler is bound; a reliable
// transport buffers and delivers in order at Bind time.
func testLateBind(t *testing.T, factory Factory) {
	const n, early = 2, 50
	eps := factory(t, n)
	defer closeAll(t, eps)
	rec := newRecorder(t, n)
	eps[0].Bind(0, rec.handler(0))
	for s := int64(1); s <= early; s++ {
		eps[0].Send(0, 1, Msg{K: KindA, From: 0, Seq: s})
	}
	// Give an async transport time to get the early traffic in flight,
	// then bind: everything must arrive, in order.
	time.Sleep(20 * time.Millisecond)
	eps[1].Bind(1, rec.handler(1))
	for s := int64(early + 1); s <= 2*early; s++ {
		eps[0].Send(0, 1, Msg{K: KindA, From: 0, Seq: s})
	}
	rec.waitFor(2*early, 10*time.Second)
}

// testClose: Close is idempotent, terminates, and later Sends neither
// panic nor deliver.
func testClose(t *testing.T, factory Factory) {
	const n = 2
	eps := factory(t, n)
	rec := newRecorder(t, n)
	for i := 0; i < n; i++ {
		eps[i].Bind(network.NodeID(i), rec.handler(network.NodeID(i)))
	}
	eps[0].Send(0, 1, Msg{K: KindA, From: 0, Seq: 1})
	rec.waitFor(1, 10*time.Second)
	closeAll(t, eps)
	closeAll(t, eps) // idempotent
	eps[0].Send(0, 1, Msg{K: KindA, From: 0, Seq: 2})
	time.Sleep(10 * time.Millisecond)
	if got := rec.count(); got != 1 {
		t.Fatalf("message delivered after Close (count %d)", got)
	}
}
