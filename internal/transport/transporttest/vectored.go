package transporttest

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"mralloc/internal/wire"
)

// VecShortConn is a net.Conn stub whose vectored write path
// (wire.VectorWriter) consumes at most k bytes per call and — like a
// flaky conn wrapper, violating the usual contract — reports the
// short count with a nil error. Plain Writes are capped the same way.
// The coalescing writer must tolerate both explicitly: a silently
// dropped suffix desyncs the framed stream for good, and with
// vectored writes the partial consumption can land mid-buffer, across
// buffers, or on the in-place envelope header itself.
type VecShortConn struct {
	k  int
	mu sync.Mutex
	b  bytes.Buffer

	vecCalls  int // WriteVec invocations
	vecBufMax int // most buffers seen in one call
}

// NewVecShortConn returns a stub accepting at most k bytes per write.
func NewVecShortConn(k int) *VecShortConn { return &VecShortConn{k: k} }

// WriteVec implements wire.VectorWriter with partial consumption.
func (c *VecShortConn) WriteVec(bufs [][]byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vecCalls++
	if len(bufs) > c.vecBufMax {
		c.vecBufMax = len(bufs)
	}
	n := 0
	for _, b := range bufs {
		take := len(b)
		if take > c.k-n {
			take = c.k - n
		}
		c.b.Write(b[:take])
		n += take
		if n == c.k {
			break
		}
	}
	return n, nil
}

func (c *VecShortConn) Write(p []byte) (int, error) {
	if len(p) > c.k {
		p = p[:c.k]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.b.Write(p)
}

// Bytes snapshots the stream written so far.
func (c *VecShortConn) Bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.b.Bytes()...)
}

// Stats reports how the vectored path was exercised.
func (c *VecShortConn) Stats() (calls, bufMax int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vecCalls, c.vecBufMax
}

func (c *VecShortConn) Read(p []byte) (int, error)       { select {} }
func (c *VecShortConn) Close() error                     { return nil }
func (c *VecShortConn) LocalAddr() net.Addr              { return nil }
func (c *VecShortConn) RemoteAddr() net.Addr             { return nil }
func (c *VecShortConn) SetDeadline(time.Time) error      { return nil }
func (c *VecShortConn) SetReadDeadline(time.Time) error  { return nil }
func (c *VecShortConn) SetWriteDeadline(time.Time) error { return nil }

// TestVectoredEgressShortWrites drives the exact owned-frame egress
// path a TCP outConn uses — peer header + codec payload encoded into
// pooled frames, finished with FinishFrame, queued with AppendOwned —
// through a vectored coalescing writer over a short-writing net.Conn,
// then decodes the resulting stream and requires every frame intact
// and in order. It is part of the conformance surface: any transport
// reusing the coalescer's vectored egress inherits exactly this
// tolerance.
func TestVectoredEgressShortWrites(t *testing.T) {
	const n, msgs = 4, 150
	conn := NewVecShortConn(7)
	co := wire.NewCoalescer(conn, 0, func(err error) { t.Errorf("write error: %v", err) })

	for s := int64(1); s <= msgs; s++ {
		buf := wire.GetFrame(256)[:wire.FrameDataOff]
		buf = binary.AppendVarint(buf, 1) // from
		buf = binary.AppendVarint(buf, 2) // to
		frame, err := wire.AppendStream(buf, Msg{K: KindA, From: 1, Seq: s}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !co.AppendOwned(frame, wire.FinishFrame(frame)) {
			t.Fatal("AppendOwned refused")
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	fr := wire.NewFrameReader(bytes.NewReader(conn.Bytes()), 1<<20)
	for s := int64(1); s <= msgs; s++ {
		frame, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", s, err)
		}
		d := wire.NewDecFor(frame, n, 0)
		if from, to := d.Site(), d.Site(); from != 1 || to != 2 {
			t.Fatalf("frame %d routed %d→%d, want 1→2", s, from, to)
		}
		m, err := wire.DecodeFor(d.Rest(), n, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", s, err)
		}
		if got := m.(Msg).Seq; got != s {
			t.Fatalf("frame %d carries seq %d (loss or reordering across short vectored writes)", s, got)
		}
	}
	st := co.Stats()
	if st.Frames != msgs {
		t.Fatalf("stats.Frames = %d, want %d", st.Frames, msgs)
	}
	if st.Batches == 0 {
		t.Fatal("no batch envelope flushed: the vectored path was not exercised")
	}
	calls, bufMax := conn.Stats()
	if calls == 0 || bufMax < 2 {
		t.Fatalf("vectored writes not driven (calls=%d, max bufs=%d)", calls, bufMax)
	}
	// Every write was capped at 7 bytes, so writes must far exceed
	// flushes — the consume-and-retry loop, not luck, delivered the
	// stream.
	if st.Writes <= st.Flushes {
		t.Fatalf("writes=%d flushes=%d: short writes were not exercised", st.Writes, st.Flushes)
	}
}
