package transport_test

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/wire"
)

// shortConn is a net.Conn stub that accepts at most k bytes per Write
// and — violating the io.Writer contract — reports the short write
// with a nil error. The old per-frame `conn.Write(frame)` egress
// trusted the contract implicitly; the coalesced egress must tolerate
// the violation explicitly, because a silently dropped suffix desyncs
// the framed stream for good.
type shortConn struct {
	k  int
	mu sync.Mutex
	b  bytes.Buffer
}

func (c *shortConn) Write(p []byte) (int, error) {
	if len(p) > c.k {
		p = p[:c.k]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.b.Write(p)
}

func (c *shortConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.b.Bytes()...)
}

func (c *shortConn) Read(p []byte) (int, error)       { select {} }
func (c *shortConn) Close() error                     { return nil }
func (c *shortConn) LocalAddr() net.Addr              { return nil }
func (c *shortConn) RemoteAddr() net.Addr             { return nil }
func (c *shortConn) SetDeadline(time.Time) error      { return nil }
func (c *shortConn) SetReadDeadline(time.Time) error  { return nil }
func (c *shortConn) SetWriteDeadline(time.Time) error { return nil }

// TestEgressSurvivesShortWrites drives the exact egress path an
// outConn uses — peer header + codec payload per frame, pushed through
// a coalescing writer — over a connection that only accepts 5 bytes at
// a time, then decodes the resulting stream and requires every frame
// intact and in order.
func TestEgressSurvivesShortWrites(t *testing.T) {
	const n, msgs = 4, 120
	conn := &shortConn{k: 5}
	co := wire.NewCoalescer(conn, 0, func(err error) { t.Errorf("write error: %v", err) })

	buf := wire.GetFrame(64)
	for s := int64(1); s <= msgs; s++ {
		buf = buf[:0]
		buf = binary.AppendVarint(buf, 1) // from
		buf = binary.AppendVarint(buf, 2) // to
		payload, err := wire.Append(buf, transporttest.Msg{K: transporttest.KindA, From: 1, Seq: s})
		if err != nil {
			t.Fatal(err)
		}
		buf = payload
		if !co.Append(payload) {
			t.Fatal("Append refused")
		}
	}
	wire.ReleaseFrame(buf)
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	fr := wire.NewFrameReader(bytes.NewReader(conn.bytes()), 1<<20)
	for s := int64(1); s <= msgs; s++ {
		frame, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", s, err)
		}
		d := wire.NewDecFor(frame, n, 0)
		if from, to := d.Site(), d.Site(); from != 1 || to != 2 {
			t.Fatalf("frame %d routed %d→%d, want 1→2", s, from, to)
		}
		m, err := wire.DecodeFor(d.Rest(), n, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", s, err)
		}
		if got := m.(transporttest.Msg).Seq; got != s {
			t.Fatalf("frame %d carries seq %d (loss or reordering across short writes)", s, got)
		}
	}
	st := co.Stats()
	if st.Frames != msgs {
		t.Fatalf("stats.Frames = %d, want %d", st.Frames, msgs)
	}
	// Every write was capped at 5 bytes, so writes must far exceed
	// flushes — the tolerance loop, not luck, delivered the stream.
	if st.Writes <= st.Flushes {
		t.Fatalf("writes=%d flushes=%d: short writes were not exercised", st.Writes, st.Flushes)
	}
}

// TestVectoredEgressShortWrites runs the transporttest conformance
// case: the owned-frame writev egress through a short-writing net.Conn
// whose vectored writes consume partially with a nil error.
func TestVectoredEgressShortWrites(t *testing.T) {
	transporttest.TestVectoredEgressShortWrites(t)
}

// TestTCPDeliveryOverLoopback is the socket-level regression: a real
// TCP pair under bursty load (which exercises batch envelopes end to
// end) must deliver every frame in order. The loopback kernel path
// never short-writes, so the stub test above covers that half; this
// one pins the integration.
func TestTCPDeliveryOverLoopback(t *testing.T) {
	eps := tcpFactory(t, 2)
	defer closeAll(t, eps)
	got := make(chan int64, 4096)
	eps[1].Bind(1, func(from network.NodeID, m network.Message) {
		got <- m.(transporttest.Msg).Seq
	})
	const msgs = 2000
	for s := int64(1); s <= msgs; s++ {
		eps[0].Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: s})
	}
	for s := int64(1); s <= msgs; s++ {
		select {
		case seq := <-got:
			if seq != s {
				t.Fatalf("got seq %d, want %d", seq, s)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at seq %d", s)
		}
	}
}

func closeAll(t *testing.T, eps []transport.Transport) {
	t.Helper()
	seen := map[transport.Transport]bool{}
	for _, ep := range eps {
		if !seen[ep] {
			seen[ep] = true
			if err := ep.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}
	}
}
