package transport

import (
	"fmt"
	"sync"
	"time"

	"mralloc/internal/network"
)

// Mem is the in-process transport: all N nodes live on this endpoint
// and a Send is a direct (per-destination-serialized) handler call, so
// messages never leave the process and never serialize. This is the
// channel fabric internal/live always ran on, extracted behind the
// Transport interface; its zero-latency path is the production
// in-process lock-manager configuration.
//
// A positive latency delays every delivery by that amount while
// preserving FIFO per ordered pair: each (sender, destination) link
// gets one forwarding queue drained by one goroutine, so equal
// per-message delays cannot reorder a link.
type Mem struct {
	n       int
	latency time.Duration
	binder  *binder
	stats   kindStats

	closeMu sync.Mutex
	closed  chan struct{}

	// links maps sender*n+destination to that link's delay queue
	// (latency mode only, created lazily).
	linkMu sync.Mutex
	links  map[int]chan pendingMsg
	wg     sync.WaitGroup
}

// NewMem creates an in-process transport for n nodes. A positive
// latency delays every delivery (demos, protocol-visibility tests).
func NewMem(n int, latency time.Duration) *Mem {
	if n < 1 {
		panic(fmt.Sprintf("transport: need ≥1 node, got %d", n))
	}
	return &Mem{
		n:       n,
		latency: latency,
		binder:  newBinder(n),
		closed:  make(chan struct{}),
	}
}

// N implements Transport.
func (t *Mem) N() int { return t.n }

// Hosts implements Transport: every node is local to the in-process
// fabric.
func (t *Mem) Hosts(id network.NodeID) bool { return id >= 0 && int(id) < t.n }

// Bind implements Transport.
func (t *Mem) Bind(id network.NodeID, h Handler) {
	t.binder.bind(id, h)
}

// Send implements Transport.
func (t *Mem) Send(from, to network.NodeID, m network.Message) {
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	select {
	case <-t.closed:
		return
	default:
	}
	t.stats.count(m.Kind())
	if t.latency <= 0 {
		t.binder.deliver(to, from, m)
		return
	}
	select {
	case t.link(from, to) <- pendingMsg{from, m}:
	case <-t.closed:
		// Closed mid-send: the link's forwarder may be gone; drop.
	}
}

// link returns the delay queue of one ordered pair, starting its
// forwarding goroutine on first use.
func (t *Mem) link(from, to network.NodeID) chan pendingMsg {
	key := int(from)*t.n + int(to)
	t.linkMu.Lock()
	defer t.linkMu.Unlock()
	if t.links == nil {
		t.links = make(map[int]chan pendingMsg)
	}
	ch, ok := t.links[key]
	if !ok {
		ch = make(chan pendingMsg, 1024)
		t.links[key] = ch
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				select {
				case p := <-ch:
					time.Sleep(t.latency)
					t.binder.deliver(to, p.from, p.m)
				case <-t.closed:
					return
				}
			}
		}()
	}
	return ch
}

// Stats implements Transport.
func (t *Mem) Stats() map[string]int64 { return t.stats.snapshot() }

// Close implements Transport.
func (t *Mem) Close() error {
	t.closeMu.Lock()
	select {
	case <-t.closed:
		t.closeMu.Unlock()
		return nil
	default:
	}
	close(t.closed)
	t.closeMu.Unlock()
	t.wg.Wait()
	return nil
}
