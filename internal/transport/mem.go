package transport

import (
	"fmt"
	"sync"
	"time"

	"mralloc/internal/network"
)

// Mem is the in-process transport: all N nodes live on this endpoint
// and a Send is a direct (per-destination-serialized) handler call, so
// messages never leave the process and never serialize. This is the
// channel fabric internal/live always ran on, extracted behind the
// Transport interface; its zero-latency path is the production
// in-process lock-manager configuration.
//
// Batches (SendBatch) are delivered as a unit: the whole run crosses
// into the destination under one binder-lock acquisition — and, in
// latency mode, under one delay — mirroring how the TCP fabric ships
// a run as one envelope.
//
// A positive latency delays every delivery by that amount while
// preserving FIFO per ordered pair: each (sender, destination) link
// gets one forwarding queue drained by one goroutine, so equal
// per-message delays cannot reorder a link.
type Mem struct {
	n       int
	latency time.Duration
	binder  *binder
	stats   kindStats

	closeMu sync.Mutex
	closed  chan struct{}

	// links maps (shard*n+sender)*n+destination to that link's delay
	// queue (latency mode only, created lazily).
	linkMu sync.Mutex
	links  map[int]chan linkItem
	wg     sync.WaitGroup

	// shardBinders holds one binder per shard beyond the first
	// (SetShards); shard 0 is the legacy binder. Written once before
	// any sharded traffic, read-only after.
	shardMu      sync.RWMutex
	shardBinders []*binder
}

// linkItem is one delay-queue entry: a single message (msgs nil) or a
// batch shipped as a unit.
type linkItem struct {
	from network.NodeID
	m    network.Message
	msgs []network.Message
}

// NewMem creates an in-process transport for n nodes. A positive
// latency delays every delivery (demos, protocol-visibility tests).
func NewMem(n int, latency time.Duration) *Mem {
	if n < 1 {
		panic(fmt.Sprintf("transport: need ≥1 node, got %d", n))
	}
	return &Mem{
		n:       n,
		latency: latency,
		binder:  newBinder(n),
		closed:  make(chan struct{}),
	}
}

// N implements Transport.
func (t *Mem) N() int { return t.n }

// Hosts implements Transport: every node is local to the in-process
// fabric.
func (t *Mem) Hosts(id network.NodeID) bool { return id >= 0 && int(id) < t.n }

// Bind implements Transport.
func (t *Mem) Bind(id network.NodeID, h Handler) {
	t.binder.bind(id, h)
}

// Send implements Transport.
func (t *Mem) Send(from, to network.NodeID, m network.Message) {
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	select {
	case <-t.closed:
		return
	default:
	}
	t.stats.count(m.Kind())
	if t.latency <= 0 {
		t.binder.deliver(to, from, m)
		return
	}
	select {
	case t.link(from, to) <- linkItem{from: from, m: m}:
	case <-t.closed:
		// Closed mid-send: the link's forwarder may be gone; drop.
	}
}

// SendBatch implements BatchSender: the run is delivered under one
// binder-lock acquisition (zero latency) or one delay (latency mode —
// the batch travels as a unit, like one envelope on a wire). The
// caller's slice is copied in latency mode, never retained.
func (t *Mem) SendBatch(from, to network.NodeID, msgs []network.Message) {
	if len(msgs) == 0 {
		return
	}
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	select {
	case <-t.closed:
		return
	default:
	}
	for _, m := range msgs {
		t.stats.count(m.Kind())
	}
	if t.latency <= 0 {
		t.binder.deliverBatch(to, from, msgs)
		return
	}
	cp := append([]network.Message(nil), msgs...)
	select {
	case t.link(from, to) <- linkItem{from: from, msgs: cp}:
	case <-t.closed:
	}
}

// SetShards implements Sharder. The in-process fabric only needs the
// shard count — there is no codec to validate per-shard universes
// against — but takes the sizes for interface uniformity.
func (t *Mem) SetShards(sizes []int) {
	if len(sizes) == 0 {
		return
	}
	t.shardMu.Lock()
	defer t.shardMu.Unlock()
	t.shardBinders = make([]*binder, len(sizes))
	t.shardBinders[0] = t.binder
	for s := 1; s < len(sizes); s++ {
		t.shardBinders[s] = newBinder(t.n)
	}
}

// shardBinder resolves the binder of one shard, panicking on a shard
// the endpoint was never configured for — that is a wiring bug, not a
// runtime condition.
func (t *Mem) shardBinder(shard int) *binder {
	t.shardMu.RLock()
	defer t.shardMu.RUnlock()
	if shard < 0 || shard >= len(t.shardBinders) {
		panic(fmt.Sprintf("transport: shard %d on an endpoint with %d shards", shard, len(t.shardBinders)))
	}
	return t.shardBinders[shard]
}

// BindShard implements Sharder.
func (t *Mem) BindShard(shard int, id network.NodeID, h Handler) {
	t.shardBinder(shard).bind(id, h)
}

// SendShard implements Sharder: Send within one shard's namespace.
// Each (shard, sender, destination) triple is its own FIFO delay link,
// so shard traffic pipelines instead of queueing behind other shards'
// latency.
func (t *Mem) SendShard(shard int, from, to network.NodeID, m network.Message) {
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	b := t.shardBinder(shard)
	select {
	case <-t.closed:
		return
	default:
	}
	t.stats.count(m.Kind())
	if t.latency <= 0 {
		b.deliver(to, from, m)
		return
	}
	select {
	case t.shardLink(shard, from, to, b) <- linkItem{from: from, m: m}:
	case <-t.closed:
	}
}

// SendShardBatch implements Sharder.
func (t *Mem) SendShardBatch(shard int, from, to network.NodeID, msgs []network.Message) {
	if len(msgs) == 0 {
		return
	}
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	b := t.shardBinder(shard)
	select {
	case <-t.closed:
		return
	default:
	}
	for _, m := range msgs {
		t.stats.count(m.Kind())
	}
	if t.latency <= 0 {
		b.deliverBatch(to, from, msgs)
		return
	}
	cp := append([]network.Message(nil), msgs...)
	select {
	case t.shardLink(shard, from, to, b) <- linkItem{from: from, msgs: cp}:
	case <-t.closed:
	}
}

// link returns the delay queue of one ordered pair, starting its
// forwarding goroutine on first use.
func (t *Mem) link(from, to network.NodeID) chan linkItem {
	return t.shardLink(0, from, to, t.binder)
}

// shardLink is link keyed by (shard, sender, destination), delivering
// into the shard's binder.
func (t *Mem) shardLink(shard int, from, to network.NodeID, b *binder) chan linkItem {
	key := (shard*t.n+int(from))*t.n + int(to)
	t.linkMu.Lock()
	defer t.linkMu.Unlock()
	if t.links == nil {
		t.links = make(map[int]chan linkItem)
	}
	ch, ok := t.links[key]
	if !ok {
		ch = make(chan linkItem, 1024)
		t.links[key] = ch
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				select {
				case p := <-ch:
					time.Sleep(t.latency)
					if p.msgs != nil {
						b.deliverBatch(to, p.from, p.msgs)
					} else {
						b.deliver(to, p.from, p.m)
					}
				case <-t.closed:
					return
				}
			}
		}()
	}
	return ch
}

// Tune implements WireTuner as a no-op: the in-process fabric has no
// wire path, but accepting the call lets callers hold wire options as
// a plain value and tune every fabric uniformly.
func (t *Mem) Tune(WireOptions) {}

// Stats implements Transport.
func (t *Mem) Stats() map[string]int64 { return t.stats.snapshot() }

// Close implements Transport.
func (t *Mem) Close() error {
	t.closeMu.Lock()
	select {
	case <-t.closed:
		t.closeMu.Unlock()
		return nil
	default:
	}
	close(t.closed)
	t.closeMu.Unlock()
	t.wg.Wait()
	return nil
}
