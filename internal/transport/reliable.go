// Reliable delivery over a lossy fabric: a Transport wrapper that
// sequence-numbers every frame per ordered node pair, acknowledges
// cumulatively, retransmits on a jittered timer, and deduplicates at
// the receiver — the go-back-N discipline that upgrades the chaos
// fabric's "safety only" caveat to safety and liveness.
//
// The stack composes as live → Reliable → Chaos → TCP/Mem, so
// retransmitted frames re-traverse the fault injector like any other
// traffic: a retransmission can itself be dropped, delayed, or
// duplicated, and the discipline must (and does) converge anyway.
//
// Design notes, hard-won:
//
//   - Payloads are wrapped in a Rel.Data envelope whose nested message
//     is encoded statelessly (wire.Enc.Message): retransmission must
//     re-encode byte-identically and duplicate delivery must be
//     side-effect free, both of which per-stream delta caches would
//     break. Delta savings on wrapped links are deliberately forgone.
//   - Acks are never sent inline from the receive handler. Over the
//     zero-latency Mem fabric Send is a synchronous handler call, so
//     an inline ack on a self-link would re-enter the binder slot lock
//     and deadlock. A background acker goroutine coalesces and sends
//     cumulative acks instead.
//   - Stats() reports the logical kinds only (what the caller sent),
//     never Rel.* envelope counts: the transport contract's per-kind
//     accounting is about protocol cost, and the conformance suite
//     rejects any extra kind. Recovery traffic is accounted separately
//     in RelStats.
package transport

import (
	"math/rand"
	"sync"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// relData is the sequenced envelope around one logical message.
type relData struct {
	Seq uint64
	M   network.Message
}

func (relData) Kind() string { return "Rel.Data" }

// relAck cumulatively acknowledges every sequence number ≤ Cum on the
// reverse of the link it travels (an ack from b to a covers a→b data).
type relAck struct {
	Cum uint64
}

func (relAck) Kind() string { return "Rel.Ack" }

func init() {
	wire.Register("Rel.Data",
		func(e *wire.Enc, m network.Message) {
			d := m.(relData)
			e.Uvarint(d.Seq)
			e.Message(d.M)
		},
		func(d *wire.Dec) network.Message {
			var out relData
			out.Seq = d.Uvarint()
			out.M = d.Message()
			return out
		})
	wire.Register("Rel.Ack",
		func(e *wire.Enc, m network.Message) {
			e.Uvarint(m.(relAck).Cum)
		},
		func(d *wire.Dec) network.Message {
			return relAck{Cum: d.Uvarint()}
		})
	// The data sample nests an ack so the corpus stays self-contained
	// in this package (no dependency on any protocol package's kinds).
	wire.RegisterSamples(
		relAck{Cum: 0},
		relAck{Cum: 1 << 40},
		relData{Seq: 3, M: relAck{Cum: 2}},
	)
}

// Retransmit timer defaults: the base must exceed a healthy link's
// round trip (loopback plus chaos delays of a few hundred µs) so acks
// usually win the race, and the cap bounds how long a healed link
// stays idle. Same equal-jitter discipline as serve.Backoff.
const (
	DefaultRetransmitBase = 10 * time.Millisecond
	DefaultRetransmitMax  = 250 * time.Millisecond
)

// RelStats counts the recovery layer's own work, separately from the
// logical per-kind Stats: these are the observability counters the
// chaos bench rows and the mrallocd shutdown summary surface.
type RelStats struct {
	// Retransmits counts data frames re-sent by the timer.
	Retransmits int64
	// Acked counts data frames confirmed delivered (cumulative-ack
	// progress on the send side).
	Acked int64
	// DupsDropped counts received data frames discarded as duplicates
	// (sequence number below the next expected one).
	DupsDropped int64
	// Gaps counts received data frames discarded as out-of-order
	// (sequence number above the next expected one — an earlier frame
	// was lost and go-back-N will refill the hole).
	Gaps int64
	// AcksSent counts Rel.Ack frames sent by the acker.
	AcksSent int64
}

type relLinkKey struct{ from, to network.NodeID }

// relSend is the send half of one ordered link: frames outstanding
// toward one destination.
type relSend struct {
	mu      sync.Mutex
	nextSeq uint64 // next sequence number to assign (first frame is 1)
	unacked []relData
	// attempt counts consecutive retransmission rounds without ack
	// progress; deadline is when the next round fires.
	attempt  int
	deadline time.Time
}

// relRecv is the receive half of one ordered link.
type relRecv struct {
	mu       sync.Mutex
	expected uint64 // next sequence number to deliver (starts at 1)
	ackDue   bool
}

// Reliable wraps an inner Transport with per-link acked, retransmitted,
// deduplicated delivery. It owns the inner transport: closing the
// Reliable closes it. See the package comment on reliable.go for the
// design constraints.
type Reliable struct {
	inner Transport
	bind  *binder
	stats kindStats // logical kinds, as the caller sent them

	base, max time.Duration
	rngMu     sync.Mutex
	rng       *rand.Rand

	mu    sync.Mutex
	send  map[relLinkKey]*relSend
	recv  map[relLinkKey]*relRecv
	relMu sync.Mutex
	rel   RelStats

	ackKick chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewReliable wraps inner in the ack/retransmit discipline. Both
// endpoints of every link must be wrapped (the envelope kinds are not
// understood by a bare endpoint's protocol handlers). The wrapper owns
// inner and closes it on Close.
// LossRecoverer is implemented by transports that can treat broken
// writes as recoverable instead of fatal. The Reliable wrapper arms it
// on construction: everything lost with a dead connection is
// retransmitted after the redial, so a failed write is part of normal
// recovery, not a silently dropped frame.
type LossRecoverer interface {
	SetLossRecovery(on bool)
}

func NewReliable(inner Transport) *Reliable {
	r := &Reliable{
		inner:   inner,
		bind:    newBinder(inner.N()),
		base:    DefaultRetransmitBase,
		max:     DefaultRetransmitMax,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		send:    make(map[relLinkKey]*relSend),
		recv:    make(map[relLinkKey]*relRecv),
		ackKick: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	if lr, ok := inner.(LossRecoverer); ok {
		lr.SetLossRecovery(true)
	}
	// Install the unwrapping handler for every hosted node now; the
	// wrapper's own binder buffers traffic that beats the caller's Bind.
	for id := 0; id < inner.N(); id++ {
		if inner.Hosts(network.NodeID(id)) {
			id := network.NodeID(id)
			inner.Bind(id, func(from network.NodeID, m network.Message) {
				r.onRecv(from, id, m)
			})
		}
	}
	r.wg.Add(2)
	go r.acker()
	go r.retransmitter()
	return r
}

// SetRetransmit tunes the retransmission timer (equal jitter in
// [d/2, d], d = min(max, base·2ⁿ) after n fruitless rounds). Call
// before traffic; zero or negative values select the defaults.
func (r *Reliable) SetRetransmit(base, max time.Duration) {
	if base > 0 {
		r.base = base
	}
	if max > 0 {
		r.max = max
	}
}

// N reports the cluster size of the wrapped endpoint.
func (r *Reliable) N() int { return r.inner.N() }

// Hosts reports whether the wrapped endpoint hosts id.
func (r *Reliable) Hosts(id network.NodeID) bool { return r.inner.Hosts(id) }

// Bind installs the delivery handler for a hosted node; deliveries
// that arrived first are flushed to it in order.
func (r *Reliable) Bind(id network.NodeID, h Handler) { r.bind.bind(id, h) }

func (r *Reliable) sendLink(k relLinkKey) *relSend {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.send[k]
	if l == nil {
		l = &relSend{nextSeq: 1}
		r.send[k] = l
	}
	return l
}

func (r *Reliable) recvLink(k relLinkKey) *relRecv {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.recv[k]
	if l == nil {
		l = &relRecv{expected: 1}
		r.recv[k] = l
	}
	return l
}

// Send wraps m in a sequenced envelope and transmits it, retaining it
// for retransmission until acknowledged.
func (r *Reliable) Send(from, to network.NodeID, m network.Message) {
	r.sendEnvelopes(from, to, []network.Message{m})
}

// SendBatch sequences and transmits a run of messages as a unit,
// forwarding to the inner fabric's batch path when it has one.
func (r *Reliable) SendBatch(from, to network.NodeID, msgs []network.Message) {
	r.sendEnvelopes(from, to, msgs)
}

func (r *Reliable) sendEnvelopes(from, to network.NodeID, msgs []network.Message) {
	if len(msgs) == 0 || r.isClosed() {
		return
	}
	l := r.sendLink(relLinkKey{from, to})
	// The link lock is held across the inner send so envelope sequence
	// numbers hit the wire in order on a healthy link (go-back-N
	// tolerates reordering, but not wasting it on the common case).
	l.mu.Lock()
	defer l.mu.Unlock()
	envs := make([]network.Message, len(msgs))
	for i, m := range msgs {
		env := relData{Seq: l.nextSeq, M: m}
		l.nextSeq++
		l.unacked = append(l.unacked, env)
		envs[i] = env
		r.stats.count(m.Kind())
	}
	if l.deadline.IsZero() {
		l.deadline = time.Now().Add(r.jitter(l.attempt))
	}
	if bs, ok := r.inner.(BatchSender); ok && len(envs) > 1 {
		bs.SendBatch(from, to, envs)
	} else {
		for _, env := range envs {
			r.inner.Send(from, to, env)
		}
	}
}

// onRecv unwraps inner deliveries addressed to hosted node `to`.
func (r *Reliable) onRecv(from, to network.NodeID, m network.Message) {
	switch env := m.(type) {
	case relData:
		k := relLinkKey{from, to} // data link: from → to
		l := r.recvLink(k)
		l.mu.Lock()
		switch {
		case env.Seq == l.expected:
			l.expected++
			l.ackDue = true
			l.mu.Unlock()
			// Deliver while no link lock is held: the caller's handler
			// may send (live's does not, but the contract allows it).
			r.bind.deliver(to, from, env.M)
			r.kickAcker()
			return
		case env.Seq < l.expected:
			// Duplicate (chaos Dup, or a retransmission that raced its
			// own ack): drop the payload, but re-ack so a sender whose
			// ack was lost still advances.
			l.ackDue = true
			l.mu.Unlock()
			r.addRel(func(s *RelStats) { s.DupsDropped++ })
			r.kickAcker()
			return
		default:
			// Gap: an earlier frame was lost. Discard and re-ack the
			// prefix; the sender's timer refills the hole in order.
			l.ackDue = true
			l.mu.Unlock()
			r.addRel(func(s *RelStats) { s.Gaps++ })
			r.kickAcker()
			return
		}
	case relAck:
		// Ack for data we sent to `from`: the link is to → from.
		l := r.sendLink(relLinkKey{to, from})
		l.mu.Lock()
		n := 0
		for n < len(l.unacked) && l.unacked[n].Seq <= env.Cum {
			n++
		}
		if n > 0 {
			rest := l.unacked[n:]
			copy(l.unacked, rest)
			for i := len(rest); i < len(l.unacked); i++ {
				l.unacked[i] = relData{}
			}
			l.unacked = l.unacked[:len(rest)]
			// Progress: restart the backoff schedule.
			l.attempt = 0
			if len(l.unacked) == 0 {
				l.deadline = time.Time{}
			} else {
				l.deadline = time.Now().Add(r.jitter(0))
			}
		}
		l.mu.Unlock()
		if n > 0 {
			r.addRel(func(s *RelStats) { s.Acked += int64(n) })
		}
	default:
		// A frame from an unwrapped peer (misconfiguration): deliver it
		// rather than wedge — safety degrades to the inner fabric's.
		r.bind.deliver(to, from, m)
	}
}

func (r *Reliable) kickAcker() {
	select {
	case r.ackKick <- struct{}{}:
	default:
	}
}

// acker drains pending cumulative acks in the background (never inline
// from a receive handler — see the package comment).
func (r *Reliable) acker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case <-r.ackKick:
		}
		r.mu.Lock()
		links := make([]relLinkKey, 0, len(r.recv))
		for k := range r.recv {
			links = append(links, k)
		}
		r.mu.Unlock()
		for _, k := range links {
			l := r.recvLink(k)
			l.mu.Lock()
			due, cum := l.ackDue, l.expected-1
			l.ackDue = false
			l.mu.Unlock()
			if !due || r.isClosed() {
				continue
			}
			// The ack travels the reverse direction: receiver (k.to)
			// back to the data's sender (k.from).
			r.inner.Send(k.to, k.from, relAck{Cum: cum})
			r.addRel(func(s *RelStats) { s.AcksSent++ })
		}
	}
}

// retransmitter periodically rescans send links and re-sends every
// unacked frame of any link whose timer expired (go-back-N).
func (r *Reliable) retransmitter() {
	defer r.wg.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		r.mu.Lock()
		links := make([]relLinkKey, 0, len(r.send))
		for k := range r.send {
			links = append(links, k)
		}
		r.mu.Unlock()
		for _, k := range links {
			l := r.sendLink(k)
			l.mu.Lock()
			if len(l.unacked) == 0 || l.deadline.IsZero() || now.Before(l.deadline) {
				l.mu.Unlock()
				continue
			}
			resend := make([]network.Message, len(l.unacked))
			for i, env := range l.unacked {
				resend[i] = env
			}
			l.attempt++
			l.deadline = now.Add(r.jitter(l.attempt))
			// Hold the link lock across the re-send so a concurrent
			// fresh Send cannot interleave a higher sequence number
			// into the middle of the retransmitted run.
			if r.isClosed() {
				l.mu.Unlock()
				return
			}
			if bs, ok := r.inner.(BatchSender); ok && len(resend) > 1 {
				bs.SendBatch(k.from, k.to, resend)
			} else {
				for _, env := range resend {
					r.inner.Send(k.from, k.to, env)
				}
			}
			l.mu.Unlock()
			r.addRel(func(s *RelStats) { s.Retransmits += int64(len(resend)) })
		}
	}
}

// jitter computes the equal-jitter deadline delay after `attempt`
// fruitless retransmission rounds: uniform in [d/2, d] with
// d = min(max, base·2ⁿ).
func (r *Reliable) jitter(attempt int) time.Duration {
	d := r.base
	for i := 0; i < attempt && d < r.max; i++ {
		d *= 2
	}
	if d > r.max {
		d = r.max
	}
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

func (r *Reliable) addRel(f func(*RelStats)) {
	r.relMu.Lock()
	f(&r.rel)
	r.relMu.Unlock()
}

// RelStats snapshots the recovery layer's counters.
func (r *Reliable) RelStats() RelStats {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	return r.rel
}

// Stats reports the logical per-kind counters — the messages the
// caller sent, not the Rel.* envelopes and acks that carried them
// (those are RelStats' business).
func (r *Reliable) Stats() map[string]int64 { return r.stats.snapshot() }

// Tune forwards egress wire options to the inner fabric.
func (r *Reliable) Tune(o WireOptions) {
	if t, ok := r.inner.(WireTuner); ok {
		t.Tune(o)
	}
}

// SetShape forwards cluster-shape validation to the inner fabric (the
// nested payload decodes under the same shape as its envelope).
func (r *Reliable) SetShape(nodes, resources int) {
	if s, ok := r.inner.(ShapeValidator); ok {
		s.SetShape(nodes, resources)
	}
}

// AbortConns forwards to the inner fabric's connection killer; frames
// lost to the abort are exactly what the retransmission timer repairs.
func (r *Reliable) AbortConns() int {
	if k, ok := r.inner.(ConnKiller); ok {
		return k.AbortConns()
	}
	return 0
}

// Err reports the inner fabric's background error, if it tracks one.
func (r *Reliable) Err() error {
	if e, ok := r.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func (r *Reliable) isClosed() bool {
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	return r.closed
}

// Close stops the recovery goroutines and closes the inner transport.
// Idempotent; unacked frames are abandoned (the cluster is going away).
func (r *Reliable) Close() error {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return nil
	}
	r.closed = true
	r.closeMu.Unlock()
	close(r.stop)
	r.wg.Wait()
	return r.inner.Close()
}
