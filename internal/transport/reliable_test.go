package transport_test

import (
	"testing"
	"time"

	"mralloc/internal/leakcheck"
	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
)

// reliableMemFactory: every node on one Mem endpoint behind one
// Reliable wrapper — the wrapper must be a conformant Transport even
// when the fabric underneath is already perfect.
func reliableMemFactory(t *testing.T, n int) []transport.Transport {
	r := transport.NewReliable(transport.NewMem(n, 0))
	eps := make([]transport.Transport, n)
	for i := range eps {
		eps[i] = r
	}
	return eps
}

// reliableTCPFactory: one TCP endpoint per node, each behind its own
// Reliable wrapper — envelopes and acks cross real sockets.
func reliableTCPFactory(t *testing.T, n int) []transport.Transport {
	raw := make([]*transport.TCP, n)
	addrs := make([]string, n)
	for i := range raw {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = tr
		addrs[i] = tr.Addr()
	}
	eps := make([]transport.Transport, n)
	for i, tr := range raw {
		if err := tr.Connect(addrs); err != nil {
			t.Fatal(err)
		}
		eps[i] = transport.NewReliable(tr)
	}
	return eps
}

// reliableLossyFactory: Reliable over a chaos fabric dropping,
// duplicating, and delaying frames. The conformance suite's guarantees
// (no loss, FIFO, no duplication) must hold anyway — this is the
// wrapper's whole reason to exist.
func reliableLossyFactory(t *testing.T, n int) []transport.Transport {
	ch := transport.NewChaos(transport.NewMem(n, 0), 0x10552)
	ch.SetFaults(transport.Faults{
		Drop:     0.10,
		Dup:      0.10,
		DelayMin: 0,
		DelayMax: 200 * time.Microsecond,
	})
	r := transport.NewReliable(ch)
	r.SetRetransmit(2*time.Millisecond, 50*time.Millisecond)
	eps := make([]transport.Transport, n)
	for i := range eps {
		eps[i] = r
	}
	return eps
}

func TestReliableMemConformance(t *testing.T) {
	transporttest.TestTransport(t, reliableMemFactory)
}

func TestReliableTCPConformance(t *testing.T) {
	transporttest.TestTransport(t, reliableTCPFactory)
}

func TestReliableLossyConformance(t *testing.T) {
	transporttest.TestTransport(t, reliableLossyFactory)
}

// TestReliableDupExactlyOnce is the deterministic dup regression: with
// the chaos fabric duplicating every single frame (Dup = 1), each
// message must still be delivered exactly once, in order, and the
// wrapper must account the discarded copies.
func TestReliableDupExactlyOnce(t *testing.T) {
	ch := transport.NewChaos(transport.NewMem(2, 0), 7)
	ch.SetFaults(transport.Faults{Dup: 1.0})
	r := transport.NewReliable(ch)
	defer r.Close()

	const msgs = 50
	got := make(chan transporttest.Msg, 4*msgs)
	r.Bind(1, func(from network.NodeID, m network.Message) {
		got <- m.(transporttest.Msg)
	})
	r.Bind(0, func(network.NodeID, network.Message) {})
	for i := 1; i <= msgs; i++ {
		r.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: int64(i)})
	}
	for i := 1; i <= msgs; i++ {
		select {
		case m := <-got:
			if m.Seq != int64(i) {
				t.Fatalf("delivery %d: got seq %d (dup or reorder leaked through)", i, m.Seq)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
	// No extra deliveries may trail in: every duplicate was dropped.
	select {
	case m := <-got:
		t.Fatalf("duplicate delivered: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	if rs := r.RelStats(); rs.DupsDropped == 0 {
		t.Fatalf("every frame was duplicated but DupsDropped = 0 (stats: %+v)", rs)
	}
}

// TestReliableRetransmitAfterTotalLoss wedges a link completely (Drop
// = 1), then heals it: the retransmission timer must deliver the
// frames sent into the black hole, in order, with no caller action.
func TestReliableRetransmitAfterTotalLoss(t *testing.T) {
	ch := transport.NewChaos(transport.NewMem(2, 0), 11)
	ch.SetFaults(transport.Faults{Drop: 1.0})
	r := transport.NewReliable(ch)
	r.SetRetransmit(2*time.Millisecond, 20*time.Millisecond)
	defer r.Close()

	got := make(chan transporttest.Msg, 16)
	r.Bind(1, func(from network.NodeID, m network.Message) {
		got <- m.(transporttest.Msg)
	})
	r.Bind(0, func(network.NodeID, network.Message) {})
	for i := 1; i <= 3; i++ {
		r.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: int64(i)})
	}
	select {
	case m := <-got:
		t.Fatalf("delivery through a fully dropping link: %+v", m)
	case <-time.After(30 * time.Millisecond):
	}
	ch.StopFaults()
	for i := 1; i <= 3; i++ {
		select {
		case m := <-got:
			if m.Seq != int64(i) {
				t.Fatalf("post-heal delivery %d: got seq %d", i, m.Seq)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("frame %d lost despite retransmission", i)
		}
	}
	if rs := r.RelStats(); rs.Retransmits == 0 {
		t.Fatalf("link healed by retransmission but Retransmits = 0 (stats: %+v)", rs)
	}
}

// TestReliableCloseLeaksNothing pins the wrapper's goroutine hygiene:
// acker and retransmitter must exit on Close even with unacked frames
// outstanding.
func TestReliableCloseLeaksNothing(t *testing.T) {
	defer leakcheck.Check(t)()
	ch := transport.NewChaos(transport.NewMem(2, 0), 13)
	ch.SetFaults(transport.Faults{Drop: 1.0})
	r := transport.NewReliable(ch)
	r.SetRetransmit(time.Millisecond, 5*time.Millisecond)
	r.Bind(0, func(network.NodeID, network.Message) {})
	r.Bind(1, func(network.NodeID, network.Message) {})
	r.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	time.Sleep(10 * time.Millisecond) // let at least one retransmission fire
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
