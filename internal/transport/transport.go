// Package transport abstracts the communication substrate of a live
// cluster (internal/live) behind a small interface, so the same
// alg.Node state machines run over in-process channels or real
// sockets without change.
//
// A Transport connects the N nodes of one cluster. Implementations
// must provide the guarantees the algorithms assume (the paper's
// hypotheses 1–3), which are exactly what the conformance suite in
// transporttest asserts:
//
//   - reliability: while the transport is open, every Send is
//     eventually delivered to the destination's handler;
//   - FIFO per ordered pair: messages from node a to node b are
//     delivered in send order (no ordering is promised across pairs);
//   - no duplication: each Send is delivered exactly once;
//   - per-kind accounting: Stats counts every sent message under its
//     Kind, the synchronization cost the evaluation measures;
//   - clean close: Close is idempotent, terminates the transport's
//     goroutines, and later Sends are dropped rather than panicking.
//
// Handlers may be invoked concurrently for different senders and must
// not block for long — the live runtime's handlers only append to an
// unbounded per-node mailbox, and custom transports should assume no
// more than that.
package transport

import (
	"sync"
	"time"

	"mralloc/internal/network"
)

// Handler consumes a message delivered to a locally hosted node.
type Handler func(from network.NodeID, m network.Message)

// Transport is one process's endpoint of a cluster's message fabric.
// An in-process cluster hosts all N nodes on one endpoint; a
// multi-process cluster hosts a subset on each.
type Transport interface {
	// N reports the cluster size the transport connects.
	N() int
	// Hosts reports whether node id is hosted by this endpoint —
	// i.e. whether Bind(id, ...) is legal here.
	Hosts(id network.NodeID) bool
	// Bind installs the delivery handler for a locally hosted node.
	// Messages arriving for a node before its Bind are buffered and
	// delivered, in order, when the handler is installed.
	Bind(id network.NodeID, h Handler)
	// Send transmits m from a locally hosted node to any node. It may
	// block briefly (backpressure) but must not block indefinitely
	// while the transport is open; after Close it is a no-op.
	Send(from, to network.NodeID, m network.Message)
	// Stats snapshots the per-kind counters of messages sent through
	// this endpoint.
	Stats() map[string]int64
	// Close tears the endpoint down. Idempotent.
	Close() error
}

// WireOptions tunes the egress wire path of a socket transport. Every
// knob is independently disableable so benchmarks can isolate each
// optimization's effect, and the zero value of every field selects the
// default behavior — setting one knob never silently flips another.
type WireOptions struct {
	// Delta enables delta-encoded token state (wire.CtrlTokenDelta):
	// connections dialed after the call announce the control and ship
	// token deltas instead of full snapshots. Both ends of every peer
	// link must run a delta-aware build; leave it off to interoperate
	// with pre-delta peers.
	Delta bool
	// NoVectored disables the writev egress for batched frames
	// (on by default), restoring the copy-assemble flush for
	// before/after runs.
	NoVectored bool
	// FlushDelay is the egress micro-delay: a flusher waking on a
	// non-empty queue waits this long before draining, trading bounded
	// latency for bigger batches. Zero flushes on wakeup.
	FlushDelay time.Duration
	// FlushDelayMax, when above FlushDelay, enables the adaptive
	// scheduler: the delay widens toward FlushDelayMax while small
	// flushes pile up under high fan-in and narrows back otherwise.
	FlushDelayMax time.Duration
	// Window is the receive window this endpoint announces in its hello
	// (bytes the peer may have in flight before waiting for credit).
	// Zero selects DefaultWindow; a negative value disables crediting
	// (the peer sends unbounded, as pre-hello builds did).
	Window int64
	// NoHello suppresses the connection hello on dialed connections,
	// for interoperating with pre-negotiation acceptors that would not
	// answer one. Feature negotiation and flow-control crediting are
	// unavailable on such connections; the egress byte budget still
	// bounds sender memory.
	NoHello bool
}

// WireTuner is implemented by transports whose egress wire path is
// tunable (the TCP transport); the live runtime forwards
// live.Config.Wire through it. Fabrics without a wire path (Mem)
// simply do not implement it.
type WireTuner interface {
	Tune(WireOptions)
}

// ShapeValidator is implemented by transports that validate inbound
// frames against the cluster shape (node and resource counts); the
// live runtime announces the shape through it so that frames from a
// differently-configured peer are rejected at the codec instead of
// crashing a protocol state machine.
type ShapeValidator interface {
	SetShape(nodes, resources int)
}

// BatchSender is implemented by transports that can accept a run of
// messages from one sender to one destination in a single call — the
// live runtime's event loop drains its outbox into per-destination
// batches and hands each over whole, so the fabric can deliver (Mem)
// or encode and flush (TCP) the run as a unit instead of paying the
// per-message overhead len(msgs) times.
//
// SendBatch is equivalent to calling Send for each message in order:
// same FIFO, reliability, and per-kind accounting guarantees. The
// transport must not retain msgs after the call returns (callers
// recycle the slice).
type BatchSender interface {
	SendBatch(from, to network.NodeID, msgs []network.Message)
}

// Sharder is implemented by transports that can route the traffic of
// G independent resource shards over one fabric. Each shard is its own
// token universe with its own allocator instances; shard-s traffic
// obeys the same reliability/FIFO/no-duplication guarantees as the
// flat transport, per (shard, sender, destination) — no ordering is
// promised across shards, which is exactly what lets them proceed in
// parallel.
//
// Shard 0 is the legacy namespace: BindShard(0, ...) and SendShard(0,
// ...) are Bind and Send — on a socket fabric, shard-0 frames are
// byte-for-byte the flat single-universe encoding, and shards s > 0
// ride a shard tag ahead of the frame header (wire.AppendShardTag).
//
// SetShards must be called before the first BindShard/SendShard, with
// the local resource-universe size of every shard; a socket fabric
// validates inbound shard-s frames against sizes[s] and announces
// len(sizes) in its hello.
type Sharder interface {
	SetShards(sizes []int)
	BindShard(shard int, id network.NodeID, h Handler)
	SendShard(shard int, from, to network.NodeID, m network.Message)
	SendShardBatch(shard int, from, to network.NodeID, msgs []network.Message)
}

// kindStats is the shared per-kind message counter.
type kindStats struct {
	mu sync.Mutex
	m  map[string]int64
}

func (s *kindStats) count(kind string) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]int64)
	}
	s.m[kind]++
	s.mu.Unlock()
}

func (s *kindStats) snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// binder maps locally hosted nodes to their handlers and buffers
// deliveries that race ahead of Bind: a peer process may legitimately
// start sending before this process has attached its nodes, and a
// reliable transport must not drop those messages. Per-node locking
// keeps delivery FIFO per destination without serializing the whole
// endpoint.
type binder struct {
	slots []binderSlot
}

type binderSlot struct {
	mu      sync.Mutex
	h       Handler
	pending []pendingMsg
}

type pendingMsg struct {
	from network.NodeID
	m    network.Message
}

func newBinder(n int) *binder { return &binder{slots: make([]binderSlot, n)} }

func (b *binder) bind(id network.NodeID, h Handler) {
	s := &b.slots[id]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
	for _, p := range s.pending {
		h(p.from, p.m)
	}
	s.pending = nil
}

// deliver hands a message to id's handler, or buffers it until Bind.
// The slot lock is held across the handler call so that a concurrent
// bind cannot reorder a buffered prefix after a direct delivery.
func (b *binder) deliver(id, from network.NodeID, m network.Message) {
	s := &b.slots[id]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.h == nil {
		s.pending = append(s.pending, pendingMsg{from, m})
		return
	}
	s.h(from, m)
}

// deliverBatch hands a run of messages from one sender to id's handler
// under a single slot-lock acquisition — the in-process half of batch
// delivery.
func (b *binder) deliverBatch(id, from network.NodeID, msgs []network.Message) {
	s := &b.slots[id]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.h == nil {
		for _, m := range msgs {
			s.pending = append(s.pending, pendingMsg{from, m})
		}
		return
	}
	for _, m := range msgs {
		s.h(from, m)
	}
}
