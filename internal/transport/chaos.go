package transport

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mralloc/internal/network"
)

// Faults is one link's fault profile. The zero value injects nothing.
//
// Drop and Dup deliberately violate the transport contract (reliability
// and no-duplication are the paper's channel hypotheses 1 and 3): with
// them armed the algorithms' guarantees no longer all hold, which is
// the point — the stress tier asserts which ones survive. Delay alone
// preserves every contract guarantee (messages are late, never lost,
// reordered only across links), so a delay-only schedule may still
// assert liveness once the fault window closes.
type Faults struct {
	// Drop is the probability a message (or a whole batch — one batch
	// is one wire envelope, so it is one fault decision) is silently
	// discarded.
	Drop float64
	// Dup is the probability a message is delivered twice, back to
	// back. Per-link FIFO is kept (the duplicate follows the original
	// immediately); exactly-once is not.
	Dup float64
	// DelayMin/DelayMax bound the uniform per-message delivery delay.
	// Delays are drawn per message but applied by one forwarder per
	// ordered link, so a link is never reordered with itself — delay
	// reorders deliveries only across links (and across connections),
	// like real queueing would.
	DelayMin, DelayMax time.Duration
}

// active reports whether the profile injects anything.
func (f Faults) active() bool { return f.Drop > 0 || f.Dup > 0 || f.DelayMax > 0 }

// ChaosStats counts injected faults.
type ChaosStats struct {
	Dropped    int64 // messages discarded (batch counted per message)
	Duplicated int64 // extra deliveries injected
	Delayed    int64 // deliveries held by a drawn delay
	Killed     int64 // connections forcibly closed via KillConns
}

// ConnKiller is implemented by transports whose live connections can be
// forcibly closed mid-stream (the TCP transport's AbortConns); the
// chaos wrapper uses it to exercise the broken-connection redial path
// under load.
type ConnKiller interface {
	AbortConns() int
}

// Chaos wraps a Transport with deterministic, seeded fault injection:
// per-link drop/duplicate/delay, directed partitions (a→b severed while
// b→a still flows), and — when the inner transport supports it —
// connection kills. It forwards the optional transport faces
// (BatchSender, WireTuner, ShapeValidator), so it slots in anywhere a
// Mem or TCP endpoint does.
//
// With no fault ever armed, Chaos is a pure passthrough: every Send and
// SendBatch delegates directly, byte- and stats-identical, which is
// what lets the conformance suite run against a wrapped fabric
// unchanged. Arming any fault (SetFaults, SetLinkFaults, Partition)
// permanently routes traffic through one FIFO queue per ordered link,
// each drained by its own forwarder goroutine — the structure that
// keeps per-link FIFO intact while faults reorder traffic across links.
// Arm before the link carries traffic; arming concurrently with
// in-flight Sends on the same link can reorder that instant's messages.
//
// Determinism: every fault decision is drawn from a per-link RNG seeded
// from (seed, from, to) in per-link send order, so a single-threaded
// driver replays a schedule exactly; Trace serializes the decisions
// for byte-identical comparison. Under concurrent senders the decision
// sequence per link still depends only on that link's send order.
type Chaos struct {
	inner Transport
	seed  int64

	armed atomic.Bool

	mu    sync.RWMutex
	def   Faults
	over  map[linkKey]Faults // per-link overrides
	links map[linkKey]*chaosLink

	dropped kindStats // per-kind counts of discarded messages

	nDropped    atomic.Int64
	nDuplicated atomic.Int64
	nDelayed    atomic.Int64
	nKilled     atomic.Int64

	closeMu sync.Mutex
	closed  chan struct{}
	wg      sync.WaitGroup
}

type linkKey struct {
	from, to network.NodeID
}

// chaosItem is one queued delivery: a single message (msgs nil) or a
// batch shipped as a unit.
type chaosItem struct {
	from, to network.NodeID
	m        network.Message
	msgs     []network.Message
	delay    time.Duration
}

// chaosLink is one ordered pair's fault pipeline: a FIFO queue, a
// forwarder goroutine, a partition flag, and the link's decision RNG
// plus trace.
type chaosLink struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []chaosItem
	severed bool
	closed  bool
	rng     *rand.Rand
	trace   []byte
}

// Trace decision actions.
const (
	chaosDeliver = 0
	chaosDrop    = 1
	chaosDup     = 2
)

// NewChaos wraps inner with fault injection drawn from seed. The
// wrapper owns inner: Close closes it.
func NewChaos(inner Transport, seed int64) *Chaos {
	return &Chaos{
		inner:  inner,
		seed:   seed,
		over:   make(map[linkKey]Faults),
		links:  make(map[linkKey]*chaosLink),
		closed: make(chan struct{}),
	}
}

// SetFaults installs the default fault profile for every link (links
// with a SetLinkFaults override keep it) and arms the fault pipeline.
func (c *Chaos) SetFaults(f Faults) {
	c.mu.Lock()
	c.def = f
	c.mu.Unlock()
	c.armed.Store(true)
}

// SetLinkFaults overrides the fault profile of one ordered link and
// arms the fault pipeline.
func (c *Chaos) SetLinkFaults(from, to network.NodeID, f Faults) {
	c.mu.Lock()
	c.over[linkKey{from, to}] = f
	c.mu.Unlock()
	c.armed.Store(true)
}

// StopFaults ends the fault window: the default profile and every
// per-link override are zeroed and every partition healed, so all
// queued traffic drains and subsequent sends pass undisturbed (still
// through the FIFO pipeline, which keeps ordering consistent). Delays
// already drawn for queued messages still apply — the window is fully
// over once they elapse, at most DelayMax later.
func (c *Chaos) StopFaults() {
	c.mu.Lock()
	c.def = Faults{}
	for k := range c.over {
		delete(c.over, k)
	}
	links := make([]*chaosLink, 0, len(c.links))
	for _, l := range c.links {
		links = append(links, l)
	}
	c.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		l.severed = false
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Partition severs the directed link from→to: messages queue (FIFO)
// and deliver only after Heal. The reverse link is untouched — a
// directed partition, the asymmetric failure a bidirectional "cut"
// model cannot express. Arms the fault pipeline.
func (c *Chaos) Partition(from, to network.NodeID) {
	c.armed.Store(true)
	l := c.link(linkKey{from, to})
	if l == nil {
		return
	}
	l.mu.Lock()
	l.severed = true
	l.mu.Unlock()
}

// Heal reopens the directed link from→to; everything queued while it
// was severed delivers in order.
func (c *Chaos) Heal(from, to network.NodeID) {
	c.mu.RLock()
	l := c.links[linkKey{from, to}]
	c.mu.RUnlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	l.severed = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// KillConns forcibly closes every live connection of the inner
// transport (ConnKiller), reporting how many died; zero when the inner
// fabric has no connections to kill (Mem). The frames queued or in
// flight on a killed connection are lost; the next send to that peer
// redials.
func (c *Chaos) KillConns() int {
	k, ok := c.inner.(ConnKiller)
	if !ok {
		return 0
	}
	n := k.AbortConns()
	c.nKilled.Add(int64(n))
	return n
}

// ChaosStats snapshots the injected-fault counters.
func (c *Chaos) ChaosStats() ChaosStats {
	return ChaosStats{
		Dropped:    c.nDropped.Load(),
		Duplicated: c.nDuplicated.Load(),
		Delayed:    c.nDelayed.Load(),
		Killed:     c.nKilled.Load(),
	}
}

// N implements Transport.
func (c *Chaos) N() int { return c.inner.N() }

// Hosts implements Transport.
func (c *Chaos) Hosts(id network.NodeID) bool { return c.inner.Hosts(id) }

// Bind implements Transport.
func (c *Chaos) Bind(id network.NodeID, h Handler) { c.inner.Bind(id, h) }

// Stats implements Transport. Dropped messages are counted under their
// kind even though they never reached the inner fabric (a Send
// happened; the fault ate it), so per-kind totals still account for
// every Send. Duplicates count twice — both deliveries really crossed.
func (c *Chaos) Stats() map[string]int64 {
	out := c.inner.Stats()
	for k, v := range c.dropped.snapshot() {
		out[k] += v
	}
	return out
}

// Err forwards the inner transport's first asynchronous error, when it
// exposes one (the TCP fabric).
func (c *Chaos) Err() error {
	if e, ok := c.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// SetLossRecovery implements LossRecoverer by forwarding, so a
// Reliable wrapper stacked above the chaos layer still reaches the
// TCP fabric underneath.
func (c *Chaos) SetLossRecovery(on bool) {
	if lr, ok := c.inner.(LossRecoverer); ok {
		lr.SetLossRecovery(on)
	}
}

// Tune implements WireTuner by forwarding when the inner transport is
// tunable, so live.Config.Wire reaches a wrapped TCP fabric unchanged.
func (c *Chaos) Tune(o WireOptions) {
	if wt, ok := c.inner.(WireTuner); ok {
		wt.Tune(o)
	}
}

// SetShape implements ShapeValidator by forwarding.
func (c *Chaos) SetShape(nodes, resources int) {
	if sv, ok := c.inner.(ShapeValidator); ok {
		sv.SetShape(nodes, resources)
	}
}

// Send implements Transport.
func (c *Chaos) Send(from, to network.NodeID, m network.Message) {
	if !c.armed.Load() {
		c.inner.Send(from, to, m)
		return
	}
	c.dispatch(chaosItem{from: from, to: to, m: m}, m.Kind(), 1)
}

// SendBatch implements BatchSender. One batch is one wire envelope, so
// it is one fault decision: dropped whole, duplicated whole, or
// delivered whole after one delay — mirroring what killing or delaying
// one socket write would do to a coalesced flush.
func (c *Chaos) SendBatch(from, to network.NodeID, msgs []network.Message) {
	if len(msgs) == 0 {
		return
	}
	if !c.armed.Load() {
		c.innerSendBatch(from, to, msgs)
		return
	}
	cp := append([]network.Message(nil), msgs...)
	c.dispatch(chaosItem{from: from, to: to, msgs: cp}, "", len(cp))
}

// dispatch draws the link's next fault decision for one queued
// delivery and enqueues it (once, twice, or not at all).
func (c *Chaos) dispatch(it chaosItem, kind string, count int) {
	select {
	case <-c.closed:
		return
	default:
	}
	l := c.link(linkKey{it.from, it.to})
	if l == nil {
		return // closed
	}
	f := c.faultsFor(it.from, it.to)
	l.mu.Lock()
	action, delay := l.decide(f, count)
	if action == chaosDrop {
		l.mu.Unlock()
		c.nDropped.Add(int64(count))
		if it.msgs != nil {
			for _, m := range it.msgs {
				c.dropped.count(m.Kind())
			}
		} else {
			c.dropped.count(kind)
		}
		return
	}
	it.delay = delay
	if delay > 0 {
		c.nDelayed.Add(1)
	}
	l.queue = append(l.queue, it)
	if action == chaosDup {
		c.nDuplicated.Add(int64(count))
		l.queue = append(l.queue, it)
	}
	l.cond.Signal()
	l.mu.Unlock()
}

// faultsFor resolves the fault profile of one ordered link.
func (c *Chaos) faultsFor(from, to network.NodeID) Faults {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if f, ok := c.over[linkKey{from, to}]; ok {
		return f
	}
	return c.def
}

// decide draws one fault decision from the link's RNG and records it in
// the trace (l.mu held). The draw sequence depends only on the fault
// profile and the link's send order, which is what makes a seeded
// schedule replay.
func (l *chaosLink) decide(f Faults, count int) (action byte, delay time.Duration) {
	if f.Drop > 0 && l.rng.Float64() < f.Drop {
		action = chaosDrop
	} else if f.Dup > 0 && l.rng.Float64() < f.Dup {
		action = chaosDup
	}
	if action != chaosDrop && f.DelayMax > 0 {
		delay = f.DelayMin
		if span := f.DelayMax - f.DelayMin; span > 0 {
			delay += time.Duration(l.rng.Int63n(int64(span) + 1))
		}
	}
	l.trace = append(l.trace, action)
	l.trace = binary.AppendUvarint(l.trace, uint64(count))
	l.trace = binary.AppendUvarint(l.trace, uint64(delay))
	return action, delay
}

// link returns (creating on first use) the fault pipeline of one
// ordered pair, or nil when the wrapper is closed.
func (c *Chaos) link(k linkKey) *chaosLink {
	c.mu.RLock()
	l, ok := c.links[k]
	c.mu.RUnlock()
	if ok {
		return l
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok = c.links[k]; ok {
		return l
	}
	select {
	case <-c.closed:
		return nil
	default:
	}
	l = &chaosLink{rng: rand.New(rand.NewSource(linkSeed(c.seed, k)))}
	l.cond.L = &l.mu
	c.links[k] = l
	c.wg.Add(1)
	go c.forward(l)
	return l
}

// linkSeed derives one link's RNG seed from the schedule seed and the
// ordered pair — distinct per link, stable across runs.
func linkSeed(seed int64, k linkKey) int64 {
	return seed ^ (int64(k.from)+1)*1_000_003 ^ (int64(k.to)+1)*7_919_999
}

// forward drains one link's queue in FIFO order: wait out the severed
// flag, then the item's drawn delay, then deliver through the inner
// transport. One forwarder per ordered link is what preserves per-link
// FIFO while faults reorder across links.
func (c *Chaos) forward(l *chaosLink) {
	defer c.wg.Done()
	for {
		l.mu.Lock()
		for (len(l.queue) == 0 || l.severed) && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.queue = nil
			l.mu.Unlock()
			return
		}
		it := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		if it.delay > 0 {
			t := time.NewTimer(it.delay)
			select {
			case <-t.C:
			case <-c.closed:
				t.Stop()
				return
			}
		}
		if it.msgs != nil {
			c.innerSendBatch(it.from, it.to, it.msgs)
		} else {
			c.inner.Send(it.from, it.to, it.m)
		}
	}
}

// innerSendBatch delivers a run through the inner transport's batch
// path when it has one.
func (c *Chaos) innerSendBatch(from, to network.NodeID, msgs []network.Message) {
	if bs, ok := c.inner.(BatchSender); ok {
		bs.SendBatch(from, to, msgs)
		return
	}
	for _, m := range msgs {
		c.inner.Send(from, to, m)
	}
}

// Trace serializes every link's decision log: links sorted by (from,
// to), each as from, to, byte length, then the decisions in draw order
// (action byte, message count, delay nanoseconds). Two runs with the
// same seed, fault schedule, and per-link send order produce identical
// bytes — the replay check the chaos tier pins.
func (c *Chaos) Trace() []byte {
	c.mu.RLock()
	keys := make([]linkKey, 0, len(c.links))
	for k := range c.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	var out []byte
	for _, k := range keys {
		l := c.links[k]
		l.mu.Lock()
		tr := append([]byte(nil), l.trace...)
		l.mu.Unlock()
		out = binary.AppendVarint(out, int64(k.from))
		out = binary.AppendVarint(out, int64(k.to))
		out = binary.AppendUvarint(out, uint64(len(tr)))
		out = append(out, tr...)
	}
	c.mu.RUnlock()
	return out
}

// Close implements Transport: stops every forwarder (undelivered queued
// items are dropped, like frames on a closing socket) and closes the
// inner transport. Idempotent.
func (c *Chaos) Close() error {
	c.closeMu.Lock()
	select {
	case <-c.closed:
		c.closeMu.Unlock()
		return nil
	default:
	}
	close(c.closed)
	c.closeMu.Unlock()
	c.mu.RLock()
	links := make([]*chaosLink, 0, len(c.links))
	for _, l := range c.links {
		links = append(links, l)
	}
	c.mu.RUnlock()
	for _, l := range links {
		l.mu.Lock()
		l.closed = true
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	c.wg.Wait()
	return c.inner.Close()
}

// Spec is a serializable chaos schedule: the seed plus the default
// fault profile and the connection-kill period. Its binary encoding
// (Append/ParseSpec, or the hex String form mrallocd prints and
// accepts) lets one run's schedule replay elsewhere: same spec + same
// per-link send order = same fault decisions.
type Spec struct {
	Seed int64
	Faults
	// KillEvery, when positive, kills every live connection of the
	// wrapped transport at this period (needs a ConnKiller inner).
	KillEvery time.Duration
}

// specVersion versions the Spec encoding.
const specVersion = 1

// Append encodes s.
func (s Spec) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, specVersion)
	dst = binary.AppendVarint(dst, s.Seed)
	dst = binary.AppendUvarint(dst, math.Float64bits(s.Drop))
	dst = binary.AppendUvarint(dst, math.Float64bits(s.Dup))
	dst = binary.AppendUvarint(dst, uint64(s.DelayMin))
	dst = binary.AppendUvarint(dst, uint64(s.DelayMax))
	dst = binary.AppendUvarint(dst, uint64(s.KillEvery))
	return dst
}

// String renders the spec as hex — the replay handle mrallocd prints
// and its -chaos-spec flag parses back.
func (s Spec) String() string { return hex.EncodeToString(s.Append(nil)) }

// ParseSpec decodes and validates a Spec encoding.
func ParseSpec(b []byte) (Spec, error) {
	var s Spec
	v, n := binary.Uvarint(b)
	if n <= 0 || v != specVersion {
		return s, fmt.Errorf("transport: chaos spec version %d, want %d", v, specVersion)
	}
	b = b[n:]
	seed, n := binary.Varint(b)
	if n <= 0 {
		return s, fmt.Errorf("transport: chaos spec: truncated seed")
	}
	b = b[n:]
	s.Seed = seed
	fields := []struct {
		name string
		f    *float64
		d    *time.Duration
	}{
		{"drop", &s.Drop, nil},
		{"dup", &s.Dup, nil},
		{"delay-min", nil, &s.DelayMin},
		{"delay-max", nil, &s.DelayMax},
		{"kill-every", nil, &s.KillEvery},
	}
	for _, fl := range fields {
		u, n := binary.Uvarint(b)
		if n <= 0 {
			return Spec{}, fmt.Errorf("transport: chaos spec: truncated %s", fl.name)
		}
		b = b[n:]
		if fl.f != nil {
			p := math.Float64frombits(u)
			if math.IsNaN(p) || p < 0 || p > 1 {
				return Spec{}, fmt.Errorf("transport: chaos spec: %s %v outside [0,1]", fl.name, p)
			}
			*fl.f = p
		} else {
			if u > math.MaxInt64 {
				return Spec{}, fmt.Errorf("transport: chaos spec: %s overflows", fl.name)
			}
			*fl.d = time.Duration(u)
		}
	}
	if len(b) != 0 {
		return Spec{}, fmt.Errorf("transport: chaos spec: %d trailing bytes", len(b))
	}
	if s.DelayMax < s.DelayMin {
		return Spec{}, fmt.Errorf("transport: chaos spec: delay-max %v below delay-min %v", s.DelayMax, s.DelayMin)
	}
	return s, nil
}

// ParseSpecHex parses the hex form String produced.
func ParseSpecHex(h string) (Spec, error) {
	b, err := hex.DecodeString(h)
	if err != nil {
		return Spec{}, fmt.Errorf("transport: chaos spec hex: %w", err)
	}
	return ParseSpec(b)
}

// Apply arms the wrapper with the spec's default fault profile and,
// when KillEvery is positive, starts the connection killer.
func (c *Chaos) Apply(s Spec) {
	if s.Faults.active() {
		c.SetFaults(s.Faults)
	}
	if s.KillEvery > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTicker(s.KillEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.KillConns()
				case <-c.closed:
					return
				}
			}
		}()
	}
}
