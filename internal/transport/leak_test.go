package transport_test

import (
	"testing"
	"time"

	"mralloc/internal/leakcheck"
	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
)

// The coalesced egress puts a flusher goroutine behind every dialed
// connection; these tests pin the Close contract — no flusher (or
// accept/serve/forwarder goroutine) outlives its fabric, whichever
// state the connection is in when Close runs.

func TestTCPCloseLeaksNoGoroutines(t *testing.T) {
	check := leakcheck.Check(t)
	eps := tcpFactory(t, 3)
	done := make(chan struct{}, 64)
	for i := 0; i < 3; i++ {
		id := network.NodeID(i)
		eps[i].Bind(id, func(network.NodeID, network.Message) { done <- struct{}{} })
	}
	// Traffic on several pairs: dials conns, starts flushers both ways.
	want := 0
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			want++
			eps[from].Send(network.NodeID(from), network.NodeID(to),
				transporttest.Msg{K: transporttest.KindA, From: network.NodeID(from), Seq: 1})
		}
	}
	for i := 0; i < want; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("delivery timed out")
		}
	}
	closeAll(t, eps)
	check()
}

// TestTCPCloseMidTrafficLeaksNoGoroutines closes while senders still
// queue frames: flushers must drain-or-abandon and exit either way.
func TestTCPCloseMidTrafficLeaksNoGoroutines(t *testing.T) {
	check := leakcheck.Check(t)
	eps := tcpFactory(t, 2)
	eps[1].Bind(1, func(network.NodeID, network.Message) {})
	eps[0].Bind(0, func(network.NodeID, network.Message) {})
	stop := make(chan struct{})
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		var seq int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			eps[0].Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: seq})
		}
	}()
	time.Sleep(20 * time.Millisecond) // let a backlog form
	closeAll(t, eps)
	close(stop)
	<-sent
	check()
}

func TestMemLatencyCloseLeaksNoGoroutines(t *testing.T) {
	check := leakcheck.Check(t)
	m := transport.NewMem(4, 100*time.Microsecond)
	got := make(chan struct{}, 64)
	for i := 0; i < 4; i++ {
		m.Bind(network.NodeID(i), func(network.NodeID, network.Message) { got <- struct{}{} })
	}
	msgs := []network.Message{
		transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1},
		transporttest.Msg{K: transporttest.KindB, From: 0, Seq: 2},
	}
	m.SendBatch(0, 1, msgs) // starts the 0→1 forwarder
	m.Send(0, 2, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	for i := 0; i < 3; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("delivery timed out")
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}
