package transport_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/wire"
)

// memFactory: one in-process endpoint hosts every node.
func memFactory(latency time.Duration) transporttest.Factory {
	return func(t *testing.T, n int) []transport.Transport {
		m := transport.NewMem(n, latency)
		eps := make([]transport.Transport, n)
		for i := range eps {
			eps[i] = m
		}
		return eps
	}
}

// tcpFactory: one endpoint per node, each with its own loopback
// listener — the maximally distributed topology.
func tcpFactory(t *testing.T, n int) []transport.Transport {
	eps := make([]transport.Transport, n)
	addrs := make([]string, n)
	for i := range eps {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = tr
		addrs[i] = tr.Addr()
	}
	for _, ep := range eps {
		if err := ep.(*transport.TCP).Connect(addrs); err != nil {
			t.Fatal(err)
		}
	}
	return eps
}

// tcpPairedFactory: two endpoints each hosting half the nodes, so the
// suite also exercises node pairs that share a process (in-memory
// short-circuit) next to pairs that cross the wire.
func tcpPairedFactory(t *testing.T, n int) []transport.Transport {
	half := n / 2
	lo := make([]int, 0, half)
	hi := make([]int, 0, n-half)
	for i := 0; i < n; i++ {
		if i < half {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	a, err := transport.ListenTCP("127.0.0.1:0", n, lo...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.ListenTCP("127.0.0.1:0", n, hi...)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		if i < half {
			addrs[i] = a.Addr()
			eps[i] = a
		} else {
			addrs[i] = b.Addr()
			eps[i] = b
		}
	}
	if err := a.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	return eps
}

// tcpHeteroFactory: the tcpPairedFactory topology with endpoint a
// running every wire feature and endpoint b a feature-disabled build
// (no delta, no writev) — negotiation must land each link on the
// common subset while every transport guarantee still holds.
func tcpHeteroFactory(t *testing.T, n int) []transport.Transport {
	eps := tcpPairedFactory(t, n)
	distinct := map[transport.Transport]bool{}
	var uniq []*transport.TCP
	for _, ep := range eps {
		if !distinct[ep] {
			distinct[ep] = true
			uniq = append(uniq, ep.(*transport.TCP))
		}
	}
	uniq[0].Tune(transport.WireOptions{Delta: true})
	if len(uniq) > 1 {
		uniq[1].Tune(transport.WireOptions{Delta: false, NoVectored: true})
	}
	return eps
}

// TestTCPRejectsMisshapenFrames plays a peer from a differently
// configured (or hostile) cluster: raw frames with out-of-range site
// ids must be rejected at the codec — error recorded, connection
// dropped, process alive — never delivered into a state machine.
func TestTCPRejectsMisshapenFrames(t *testing.T) {
	tr, err := transport.ListenTCP("127.0.0.1:0", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetShape(3, 8)
	delivered := make(chan network.Message, 1)
	tr.Bind(0, func(from network.NodeID, m network.Message) { delivered <- m })

	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A frame claiming to come from node 5 of a 6-node cluster.
	payload := binary.AppendVarint(nil, 5) // from: out of range here
	payload = binary.AppendVarint(payload, 0)
	payload, err = wire.Append(payload, transporttest.Msg{K: transporttest.KindA, From: 5, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	if _, err := c.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for tr.Err() == nil {
		select {
		case m := <-delivered:
			t.Fatalf("misshapen frame delivered: %#v", m)
		case <-deadline:
			t.Fatal("frame neither rejected nor delivered")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case m := <-delivered:
		t.Fatalf("misshapen frame delivered: %#v", m)
	default:
	}
}

func TestMemConformance(t *testing.T) {
	transporttest.TestTransport(t, memFactory(0))
}

func TestMemLatencyConformance(t *testing.T) {
	transporttest.TestTransport(t, memFactory(200*time.Microsecond))
}

func TestTCPConformance(t *testing.T) {
	transporttest.TestTransport(t, tcpFactory)
}

func TestTCPPairedConformance(t *testing.T) {
	transporttest.TestTransport(t, tcpPairedFactory)
}

func TestTCPHeteroConformance(t *testing.T) {
	transporttest.TestTransport(t, tcpHeteroFactory)
}
