package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/wire"
)

// maxFrame bounds one wire frame or batch envelope. Real protocol
// messages are a few KB at most (a token carries two N-sized stamp
// vectors), and the coalescing writer splits envelopes at
// wire.MaxEnvelope, well below this; the cap only keeps a corrupt or
// hostile length prefix from demanding gigabytes.
const maxFrame = 1 << 24

// defaultDialWindow is how long a Send retries dialing a peer that is
// not up yet, which absorbs multi-process startup races on loopback.
// SetDialWindow overrides it per endpoint.
const defaultDialWindow = 10 * time.Second

// closeFlushTimeout bounds how long Close waits for each connection's
// coalescing writer to drain frames queued before the close.
const closeFlushTimeout = 2 * time.Second

// DefaultWindow is the receive window an endpoint announces in its
// hello when WireOptions.Window is zero: the peer may have this many
// stream bytes in flight before it must wait for a CtrlWindow credit.
const DefaultWindow = 8 << 20

// MinWindow floors any positive configured window at two maximum batch
// envelopes, so a single full-size batch can always be credited and a
// too-small window cannot deadlock the link.
const MinWindow = 2 * wire.MaxEnvelope

// DefaultBudget bounds the bytes queued inside one connection's
// coalescing writer. Unlike the credit window (negotiated, may be
// absent on legacy links) the budget is always armed: a peer that
// stops reading costs this much sender memory and blocked Sends,
// never an OOM.
const DefaultBudget = 16 << 20

// handshakeTimeout bounds the dial-side wait for the peer's hello
// reply. A pre-negotiation acceptor never answers (dial it with
// WireOptions.NoHello instead), so the dial must fail promptly rather
// than hang.
const handshakeTimeout = 5 * time.Second

// TCP is the socket transport: one endpoint per process, hosting a
// subset of the cluster's nodes, every message encoded by internal/wire
// and framed with a length prefix plus sender/receiver identifiers.
//
// Topology: each endpoint listens on one address; Connect supplies the
// address of every node's host process. Connections are dialed lazily,
// one per ordered pair of processes, and all traffic from this process
// to one peer shares that connection — which is what makes FIFO per
// ordered node pair hold: a sending node's messages enter the
// connection in send order, and the receiver drains frames
// sequentially.
//
// Egress is coalesced: a Send encodes its frame into a pooled buffer
// and appends it to the connection's coalescing writer
// (wire.Coalescer); a dedicated flusher per connection drains
// everything queued since its last wakeup into one write — one frame
// alone travels in the legacy single-frame format, a backlog travels
// as one batch envelope. One write syscall then carries a whole burst
// instead of one message, without adding latency when there is no
// burst. WireStats exposes the write/frame/batch counters.
//
// Sends to a node hosted by this same endpoint short-circuit through
// memory without touching the codec; per-kind stats count them all the
// same, so an in-process and a multi-process cluster report identical
// message costs for identical protocol runs.
type TCP struct {
	n      int
	local  map[network.NodeID]bool
	ln     net.Listener
	binder *binder
	stats  kindStats

	// noBatch, when set (SetBatching(false)), pins every coalescing
	// writer to one frame per flush — the pre-batching wire behavior,
	// kept selectable so benchmarks can pin the before/after.
	noBatch atomic.Bool

	// lossRecovered, when set (SetLossRecovery), marks broken writes as
	// recoverable: a reliability layer above retransmits whatever died
	// with the connection, so a failed write drops the conn for redial
	// without poisoning Err — the frame was neither silent nor lost.
	lossRecovered atomic.Bool

	// Wire tuning (Tune): delta token encoding, vectored egress, flush
	// scheduling, receive window and hello suppression. Like noBatch,
	// they apply to connections dialed after the call. Vectored egress
	// and the hello default on, so noVec and noHello are negated flags.
	delta   atomic.Bool
	noVec   atomic.Bool
	noHello atomic.Bool
	tuneMu  sync.Mutex
	fDelay  time.Duration
	fDelayM time.Duration
	window  int64
	dialWin time.Duration // 0 = defaultDialWindow

	peersMu sync.RWMutex
	peers   []string // per node; nil until Connect

	// resources, when set via SetShape, tightens inbound frame
	// validation to the cluster's resource universe. shardSizes, when
	// set via SetShards, declares the per-shard universes: inbound
	// shard-s frames validate against shardSizes[s], the hello
	// announces len(shardSizes), and shardBinders[s] routes shard-s
	// deliveries (shard 0 is the legacy binder).
	shapeMu      sync.RWMutex
	resources    int
	shardSizes   []int
	shardBinders []*binder

	connMu sync.Mutex
	conns  map[string]*outConn

	wireMu    sync.Mutex
	wireAccum wire.CoalescerStats // stats of retired connections

	closeMu sync.Mutex
	closed  chan struct{}
	wg      sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// outConn is one dialed connection plus its coalescing writer.
type outConn struct {
	c      net.Conn
	co     *wire.Coalescer
	strm   *wire.Stream // egress codec context; nil unless delta is on
	broken atomic.Bool  // write failed; next Send to this peer redials
	// strms are the per-shard egress codec contexts of sharded sends
	// (lazily created; shard 0 aliases strm). Delta caches are keyed by
	// resource id, and shard-local ids collide across shards — each
	// shard therefore gets its own Stream per connection direction.
	strmMu sync.Mutex
	strms  []*wire.Stream
	// negotiated records a completed hello exchange and the peer's
	// hello; both are set before the connection is registered and
	// read-only after, so no lock guards them.
	negotiated bool
	peer       wire.Hello
	// retired marks the stats folded into wireAccum; guarded by the
	// endpoint's wireMu so a snapshot can never miss or double-count a
	// connection retiring concurrently.
	retired bool
}

// ListenTCP opens an endpoint for a cluster of n nodes, hosting the
// given local node ids (all ids when none are given). The address may
// use port 0; Addr reports the bound address to hand to peers. Call
// Connect before the first Send.
func ListenTCP(addr string, n int, local ...int) (*TCP, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need ≥1 node, got %d", n)
	}
	loc := make(map[network.NodeID]bool, len(local))
	if len(local) == 0 {
		for i := 0; i < n; i++ {
			loc[network.NodeID(i)] = true
		}
	}
	for _, id := range local {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("transport: local node %d outside [0,%d)", id, n)
		}
		loc[network.NodeID(id)] = true
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		n:      n,
		local:  loc,
		ln:     ln,
		binder: newBinder(n),
		conns:  make(map[string]*outConn),
		closed: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr reports the endpoint's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Connect supplies the address of every node's host process (addrs[i]
// hosts node i). Local nodes may carry any placeholder — they are
// delivered in memory.
func (t *TCP) Connect(addrs []string) error {
	if len(addrs) != t.n {
		return fmt.Errorf("transport: got %d peer addresses for %d nodes", len(addrs), t.n)
	}
	t.peersMu.Lock()
	t.peers = append([]string(nil), addrs...)
	t.peersMu.Unlock()
	return nil
}

// N implements Transport.
func (t *TCP) N() int { return t.n }

// Hosts implements Transport.
func (t *TCP) Hosts(id network.NodeID) bool { return t.local[id] }

// SetShape implements ShapeValidator: inbound frames must then carry
// site ids below nodes (checked against the listen-time n regardless)
// and resource ids/universes matching resources.
func (t *TCP) SetShape(nodes, resources int) {
	t.shapeMu.Lock()
	t.resources = resources
	t.shapeMu.Unlock()
}

// SetShards implements Sharder: declares the per-shard resource
// universes (len(sizes) = G, sizes[s] = shard s's local universe).
// Must run before the first Bind/Send — connections negotiated earlier
// announced a different shard count. Announcing shards arms shard
// validation on the hello: peers claiming a different non-zero shard
// count are rejected, and a legacy peer (no shards field) interops
// only with a single-shard configuration.
func (t *TCP) SetShards(sizes []int) {
	if len(sizes) == 0 {
		return
	}
	binders := make([]*binder, len(sizes))
	binders[0] = t.binder
	for s := 1; s < len(sizes); s++ {
		binders[s] = newBinder(t.n)
	}
	t.shapeMu.Lock()
	t.shardSizes = append([]int(nil), sizes...)
	t.shardBinders = binders
	t.shapeMu.Unlock()
}

// shardConfig snapshots the sharding configuration (nil sizes =
// unsharded endpoint).
func (t *TCP) shardConfig() (sizes []int, binders []*binder) {
	t.shapeMu.RLock()
	defer t.shapeMu.RUnlock()
	return t.shardSizes, t.shardBinders
}

// SetBatching toggles egress coalescing (on by default). Turning it
// off pins every flush to a single frame — the pre-batching wire
// behavior — so benchmarks can measure the batching win on identical
// workloads. It only affects connections dialed after the call, so
// set it before the first Send.
func (t *TCP) SetBatching(on bool) { t.noBatch.Store(!on) }

// Tune implements WireTuner: delta token encoding, vectored egress,
// flush scheduling, receive window and hello suppression for the
// coalescing writers. Like SetBatching it only affects connections
// dialed after the call — set it before the first Send.
func (t *TCP) Tune(o WireOptions) {
	t.delta.Store(o.Delta)
	t.noVec.Store(o.NoVectored)
	t.noHello.Store(o.NoHello)
	t.tuneMu.Lock()
	t.fDelay, t.fDelayM = o.FlushDelay, o.FlushDelayMax
	t.window = o.Window
	t.tuneMu.Unlock()
}

// localHello assembles the hello this endpoint sends (dial side) or
// answers with (accept side): protocol version, cluster shape, the
// locally enabled feature set, and the receive window it grants.
func (t *TCP) localHello() wire.Hello {
	t.shapeMu.RLock()
	res := t.resources
	shards := len(t.shardSizes)
	t.shapeMu.RUnlock()
	var feat uint64
	if t.delta.Load() {
		feat |= wire.FeatDelta
	}
	if !t.noVec.Load() {
		feat |= wire.FeatWritev
	}
	t.tuneMu.Lock()
	fd, fdm, win := t.fDelay, t.fDelayM, t.window
	t.tuneMu.Unlock()
	if fd > 0 || fdm > 0 {
		feat |= wire.FeatFlushDelay
	}
	return wire.Hello{
		Version:   wire.ProtoVersion,
		Nodes:     t.n,
		Resources: res,
		Features:  feat,
		Window:    resolveWindow(win),
		Shards:    shards,
	}
}

// resolveWindow maps the WireOptions.Window knob onto the announced
// window: zero selects the default, negative disables crediting, and
// a positive value is floored at MinWindow.
func resolveWindow(w int64) uint64 {
	switch {
	case w < 0:
		return 0
	case w == 0:
		return DefaultWindow
	case w < MinWindow:
		return MinWindow
	default:
		return uint64(w)
	}
}

// checkPeer validates a peer hello against this endpoint: the protocol
// version must match exactly, and the cluster shape must agree
// wherever both sides know it (a zero count means unknown).
func (t *TCP) checkPeer(peer wire.Hello) error {
	if peer.Version != wire.ProtoVersion {
		return fmt.Errorf("protocol version %d, want %d", peer.Version, wire.ProtoVersion)
	}
	if peer.Nodes != 0 && peer.Nodes != t.n {
		return fmt.Errorf("cluster of %d nodes, this endpoint connects %d", peer.Nodes, t.n)
	}
	t.shapeMu.RLock()
	res := t.resources
	shards := len(t.shardSizes)
	t.shapeMu.RUnlock()
	if peer.Resources != 0 && res != 0 && peer.Resources != res {
		return fmt.Errorf("resource universe of %d, this endpoint %d", peer.Resources, res)
	}
	// Shard counts must agree once this endpoint is shard-configured. A
	// hello without the field (Shards 0 — a legacy or flat build) means
	// the flat single-universe protocol, interoperable with exactly one
	// shard; an endpoint not yet shard-configured leaves the claim
	// unchecked, like an unknown resource universe.
	if shards > 0 {
		peerShards := peer.Shards
		if peerShards == 0 {
			peerShards = 1
		}
		if peerShards != shards {
			return fmt.Errorf("%d resource shards, this endpoint %d", peerShards, shards)
		}
	}
	return nil
}

// Negotiated reports the hello received from the peer at addr, if a
// negotiated connection to it is currently open — the test hook for
// asserting what a heterogeneous pair agreed on.
func (t *TCP) Negotiated(addr string) (wire.Hello, bool) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	oc, ok := t.conns[addr]
	if !ok || !oc.negotiated {
		return wire.Hello{}, false
	}
	return oc.peer, true
}

// Bind implements Transport.
func (t *TCP) Bind(id network.NodeID, h Handler) {
	if !t.local[id] {
		panic(fmt.Sprintf("transport: binding node %d not hosted by this endpoint", id))
	}
	t.binder.bind(id, h)
}

// BindShard implements Sharder. Shard 0 is the legacy binder — the
// same handler slot Bind installs — so untagged frames from flat peers
// and shard-0 traffic are one namespace.
func (t *TCP) BindShard(shard int, id network.NodeID, h Handler) {
	if !t.local[id] {
		panic(fmt.Sprintf("transport: binding node %d not hosted by this endpoint", id))
	}
	t.shardBinderFor(shard).bind(id, h)
}

// shardBinderFor resolves a shard's delivery binder, panicking on a
// shard the endpoint was never configured for — a wiring bug, not a
// runtime condition.
func (t *TCP) shardBinderFor(shard int) *binder {
	if shard == 0 {
		return t.binder
	}
	_, binders := t.shardConfig()
	if shard < 0 || shard >= len(binders) {
		panic(fmt.Sprintf("transport: shard %d on an endpoint with %d shards", shard, len(binders)))
	}
	return binders[shard]
}

// shardStream resolves the egress codec context of one shard on this
// connection. A lazily created stream inherits the connection stream's
// delta flag — the control is announced once per connection, and the
// per-shard stream only scopes the shadow caches, whose resource-id
// keys collide across shards.
func (oc *outConn) shardStream(shard int) *wire.Stream {
	if shard == 0 || oc.strm == nil {
		return oc.strm
	}
	oc.strmMu.Lock()
	defer oc.strmMu.Unlock()
	for len(oc.strms) <= shard {
		oc.strms = append(oc.strms, nil)
	}
	if oc.strms[shard] == nil {
		s := wire.NewStream()
		if oc.strm.HasFlag(wire.CtrlTokenDelta) {
			s.SetFlag(wire.CtrlTokenDelta)
		}
		oc.strms[shard] = s
	}
	return oc.strms[shard]
}

// SendShard implements Sharder: Send within one shard's namespace.
// Shard 0 is exactly Send — untagged legacy frames; shards above ride
// a shard tag ahead of the unchanged frame header.
func (t *TCP) SendShard(shard int, from, to network.NodeID, m network.Message) {
	if shard == 0 {
		t.Send(from, to, m)
		return
	}
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	b := t.shardBinderFor(shard)
	select {
	case <-t.closed:
		return
	default:
	}
	t.stats.count(m.Kind())
	if t.local[to] {
		b.deliver(to, from, m)
		return
	}
	oc := t.connFor(to)
	if oc == nil {
		return
	}
	buf := wire.GetFrame(256)[:wire.FrameDataOff]
	buf = wire.AppendShardTag(buf, shard)
	buf = binary.AppendVarint(buf, int64(from))
	buf = binary.AppendVarint(buf, int64(to))
	frame, err := wire.AppendStream(buf, m, oc.shardStream(shard))
	if err != nil {
		wire.ReleaseFrame(frame)
		t.fail(err)
		return
	}
	oc.co.AppendOwned(frame, wire.FinishFrame(frame))
}

// SendShardBatch implements Sharder.
func (t *TCP) SendShardBatch(shard int, from, to network.NodeID, msgs []network.Message) {
	if shard == 0 {
		t.SendBatch(from, to, msgs)
		return
	}
	if len(msgs) == 0 {
		return
	}
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	b := t.shardBinderFor(shard)
	select {
	case <-t.closed:
		return
	default:
	}
	for _, m := range msgs {
		t.stats.count(m.Kind())
	}
	if t.local[to] {
		b.deliverBatch(to, from, msgs)
		return
	}
	oc := t.connFor(to)
	if oc == nil {
		return
	}
	strm := oc.shardStream(shard)
	for _, m := range msgs {
		buf := wire.GetFrame(256)[:wire.FrameDataOff]
		buf = wire.AppendShardTag(buf, shard)
		buf = binary.AppendVarint(buf, int64(from))
		buf = binary.AppendVarint(buf, int64(to))
		frame, err := wire.AppendStream(buf, m, strm)
		if err != nil {
			wire.ReleaseFrame(frame)
			t.fail(err)
			return
		}
		if !oc.co.AppendOwned(frame, wire.FinishFrame(frame)) {
			return
		}
	}
}

// Send implements Transport.
func (t *TCP) Send(from, to network.NodeID, m network.Message) {
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	select {
	case <-t.closed:
		return
	default:
	}
	t.stats.count(m.Kind())
	if t.local[to] {
		t.binder.deliver(to, from, m)
		return
	}
	oc := t.connFor(to)
	if oc == nil {
		return // closed or unreachable; error recorded
	}
	// Owned-frame egress: the frame is encoded once, into a pooled
	// buffer the coalescing writer writes from directly and releases
	// after the flush — no copy between encode and syscall.
	buf := wire.GetFrame(256)[:wire.FrameDataOff]
	buf = binary.AppendVarint(buf, int64(from))
	buf = binary.AppendVarint(buf, int64(to))
	frame, err := wire.AppendStream(buf, m, oc.strm)
	if err != nil {
		wire.ReleaseFrame(frame)
		t.fail(err)
		return
	}
	oc.co.AppendOwned(frame, wire.FinishFrame(frame))
}

// SendBatch implements BatchSender: the run is encoded into the
// connection's coalescing writer in one pass (one pooled scratch
// buffer, no syscall until the flusher wakes), or delivered to a local
// node under one binder lock.
func (t *TCP) SendBatch(from, to network.NodeID, msgs []network.Message) {
	if len(msgs) == 0 {
		return
	}
	if to < 0 || int(to) >= t.n {
		panic(fmt.Sprintf("transport: send to invalid node %d", to))
	}
	select {
	case <-t.closed:
		return
	default:
	}
	for _, m := range msgs {
		t.stats.count(m.Kind())
	}
	if t.local[to] {
		t.binder.deliverBatch(to, from, msgs)
		return
	}
	oc := t.connFor(to)
	if oc == nil {
		return
	}
	for _, m := range msgs {
		// One owned pooled buffer per frame: ownership passes to the
		// coalescing writer, which releases it after the flush.
		buf := wire.GetFrame(256)[:wire.FrameDataOff]
		buf = binary.AppendVarint(buf, int64(from))
		buf = binary.AppendVarint(buf, int64(to))
		frame, err := wire.AppendStream(buf, m, oc.strm)
		if err != nil {
			wire.ReleaseFrame(frame)
			t.fail(err)
			return
		}
		if !oc.co.AppendOwned(frame, wire.FinishFrame(frame)) {
			return // connection broke mid-batch; error recorded by onErr
		}
	}
}

// connFor resolves the outbound connection for a destination node.
func (t *TCP) connFor(to network.NodeID) *outConn {
	t.peersMu.RLock()
	peers := t.peers
	t.peersMu.RUnlock()
	if peers == nil {
		t.fail(fmt.Errorf("transport: Send before Connect"))
		return nil
	}
	return t.conn(peers[to])
}

// SetDialWindow overrides how long a Send retries dialing an
// unreachable peer (the default absorbs multi-process startup races;
// chaos and failover tests shorten it so a killed peer costs bounded
// retry time). Non-positive restores the default.
func (t *TCP) SetDialWindow(d time.Duration) {
	t.tuneMu.Lock()
	t.dialWin = d
	t.tuneMu.Unlock()
}

func (t *TCP) dialWindow() time.Duration {
	t.tuneMu.Lock()
	defer t.tuneMu.Unlock()
	if t.dialWin > 0 {
		return t.dialWin
	}
	return defaultDialWindow
}

// conn returns the (dialed) connection to addr, dialing with retries
// inside the dial window so that peers still starting up are absorbed.
// Every wait in the retry loop — the dial itself, the handshake, the
// backoff sleep — observes Close, so a Send blocked behind a dead peer
// unwinds the moment the transport shuts down instead of riding out
// the window.
func (t *TCP) conn(addr string) *outConn {
	t.connMu.Lock()
	oc, ok := t.conns[addr]
	t.connMu.Unlock()
	if ok && !oc.broken.Load() {
		return oc
	}
	// ctx ends when the transport closes or this attempt gives up; the
	// watcher goroutine lives exactly as long as the call.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(t.dialWindow()))
	defer cancel()
	go func() {
		select {
		case <-t.closed:
			cancel()
		case <-ctx.Done():
		}
	}()
	var lastErr error
	for {
		select {
		case <-t.closed:
			return nil
		default:
		}
		c, err := t.dialOnce(ctx, addr)
		if err == nil {
			hs, err := t.dialHandshake(c)
			if err != nil {
				c.Close()
				select {
				case <-t.closed: // a handshake cut short by Close is not a failure
				default:
					t.fail(err)
				}
				return nil
			}
			t.connMu.Lock()
			select {
			case <-t.closed:
				// Close ran while the dial was in flight and has already
				// swept t.conns; registering now would leak the socket.
				t.connMu.Unlock()
				c.Close()
				return nil
			default:
			}
			if existing, ok := t.conns[addr]; ok && !existing.broken.Load() {
				t.connMu.Unlock()
				c.Close() // lost a dial race; use the winner
				return existing
			}
			// No usable connection — either none, or a broken one still
			// awaiting its writeFailed sweep; the fresh one replaces it
			// (dropConn deletes by identity, so the sweep cannot evict
			// this registration).
			oc = t.newOutConn(c, hs)
			t.conns[addr] = oc
			t.connMu.Unlock()
			return oc
		}
		lastErr = err
		select {
		case <-ctx.Done():
			select {
			case <-t.closed:
			default:
				t.fail(fmt.Errorf("transport: dial %s: %w", addr, lastErr))
			}
			return nil
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// dialOnce is one bounded dial attempt that aborts when ctx ends —
// the transport closing or the dial window expiring.
func (t *TCP) dialOnce(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	var d net.Dialer
	return d.DialContext(dctx, "tcp", addr)
}

// negotiated carries a dial handshake's outcome into connection setup:
// whether a hello was exchanged, the peer's hello, and the reverse-path
// reader (which may hold buffered bytes past the hello reply and must
// therefore keep serving the credit loop).
type negotiated struct {
	done bool
	peer wire.Hello
	br   *bufio.Reader
}

// dialHandshake runs the dial side of connection negotiation: send our
// hello, wait (bounded) for the peer's hello or rejection. With
// NoHello set the exchange is skipped entirely — the connection then
// carries exactly the pre-negotiation byte stream, for dialing legacy
// acceptors that would choke on a control they do not know.
func (t *TCP) dialHandshake(c net.Conn) (negotiated, error) {
	if t.noHello.Load() {
		return negotiated{}, nil
	}
	// The handshake deadline caps a silent peer, but a transport
	// shutting down must not ride it out: closing the socket unblocks
	// the exchange the moment Close runs.
	hsDone := make(chan struct{})
	defer close(hsDone)
	go func() {
		select {
		case <-t.closed:
			c.Close()
		case <-hsDone:
		}
	}()
	mine := t.localHello()
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})
	hello := wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, mine))
	if _, err := c.Write(hello); err != nil {
		return negotiated{}, fmt.Errorf("transport: hello to %s: %w", c.RemoteAddr(), err)
	}
	br := bufio.NewReader(c)
	for {
		ctl, err := wire.ReadControl(br)
		if err != nil {
			return negotiated{}, fmt.Errorf("transport: hello reply from %s: %w", c.RemoteAddr(), err)
		}
		switch ctl.Code {
		case wire.CtrlHello:
			peer, err := wire.ParseHello(ctl.Payload)
			if err != nil {
				return negotiated{}, fmt.Errorf("transport: hello from %s: %w", c.RemoteAddr(), err)
			}
			if err := t.checkPeer(peer); err != nil {
				return negotiated{}, fmt.Errorf("transport: peer %s: %w", c.RemoteAddr(), err)
			}
			return negotiated{done: true, peer: peer, br: br}, nil
		case wire.CtrlReject:
			reason, _ := wire.ParseReject(ctl.Payload)
			return negotiated{}, fmt.Errorf("transport: peer %s rejected handshake: %s", c.RemoteAddr(), reason)
		default:
			// A control ahead of the hello reply from a future build:
			// skip it, same forward-compatibility rule as FrameReader.
		}
	}
}

// newOutConn builds the coalescing writer for a freshly dialed
// connection, intersecting the locally enabled features with what the
// peer advertised (a legacy, non-negotiated connection trusts local
// configuration alone, exactly as pre-hello builds did). Caller holds
// connMu — which is what makes the credit loop's wg.Add ordered
// before Close's Wait.
func (t *TCP) newOutConn(c net.Conn, hs negotiated) *outConn {
	oc := &outConn{c: c, negotiated: hs.done, peer: hs.peer}
	maxFrames := 0
	if t.noBatch.Load() {
		maxFrames = 1
	}
	oc.co = wire.NewCoalescer(c, maxFrames, func(err error) {
		t.writeFailed(oc, err)
	})
	useDelta := t.delta.Load()
	vectored := !t.noVec.Load()
	if hs.done {
		useDelta = useDelta && hs.peer.Features&wire.FeatDelta != 0
		vectored = vectored && hs.peer.Features&wire.FeatWritev != 0
	}
	if !vectored {
		oc.co.SetVectored(false)
	}
	t.tuneMu.Lock()
	fd, fdm := t.fDelay, t.fDelayM
	t.tuneMu.Unlock()
	if fdm > fd {
		oc.co.SetFlushAdaptive(fd, fdm)
	} else if fd > 0 {
		oc.co.SetFlushDelay(fd)
	}
	if useDelta {
		// Announce delta-encoded token state ahead of the first
		// frame; the per-connection stream carries the encoder's
		// shadow cache from here on.
		oc.strm = wire.NewStream()
		oc.strm.SetFlag(wire.CtrlTokenDelta)
		oc.co.SetPreamble(wire.AppendControl(nil, wire.CtrlTokenDelta, nil))
	}
	// The byte budget is always armed — negotiated or legacy, a stalled
	// peer costs bounded memory, never an OOM.
	oc.co.SetByteBudget(DefaultBudget)
	if hs.done && hs.peer.Window > 0 {
		oc.co.SetWindow(int64(hs.peer.Window))
		t.wg.Add(1)
		go t.creditLoop(oc, hs.br)
	}
	return oc
}

// creditLoop drains the reverse path of a dialed connection for
// CtrlWindow credits and feeds them to the coalescing writer. On any
// read error it grants unbounded credit before exiting: a dying
// reverse path must never wedge the flusher — the next forward write
// fails normally instead, and the connection is redialed.
func (t *TCP) creditLoop(oc *outConn, br *bufio.Reader) {
	defer t.wg.Done()
	defer oc.co.AddCredit(1 << 62)
	for {
		ctl, err := wire.ReadControl(br)
		if err != nil {
			return
		}
		switch ctl.Code {
		case wire.CtrlWindow:
			n, err := wire.ParseWindowUpdate(ctl.Payload)
			if err != nil {
				return
			}
			oc.co.AddCredit(int64(n))
		case wire.CtrlReject:
			return
		default:
			// Unknown reverse-path control from a future build: skip.
		}
	}
}

// AbortConns forcibly closes every currently dialed connection's
// socket without marking it broken — exactly what a peer crash or a
// cut cable does. The flusher's next write fails, which runs the
// broken-flag redial path: frames queued or in flight on the killed
// connection are lost, and the next Send to that peer dials fresh
// (new handshake, new per-connection codec state). Reports how many
// connections were killed. This is the chaos wrapper's ConnKiller
// hook; it is exported for tests driving kills directly.
func (t *TCP) AbortConns() int {
	t.connMu.Lock()
	conns := make([]*outConn, 0, len(t.conns))
	for _, oc := range t.conns {
		conns = append(conns, oc)
	}
	t.connMu.Unlock()
	for _, oc := range conns {
		oc.c.Close()
	}
	return len(conns)
}

// writeFailed runs on a connection's flusher goroutine when a write
// errors: the connection is dropped so the next Send to that peer
// redials, and the failure is recorded unless the transport is closing
// or a reliability layer above recovers lost frames (SetLossRecovery).
func (t *TCP) writeFailed(oc *outConn, err error) {
	if !oc.broken.CompareAndSwap(false, true) {
		return
	}
	t.dropConn(oc)
	if t.lossRecovered.Load() {
		return
	}
	select {
	case <-t.closed:
	default:
		t.fail(fmt.Errorf("transport: write to %s: %w", oc.c.RemoteAddr(), err))
	}
}

// dropConn removes a broken connection so the next Send redials, and
// folds its egress counters into the endpoint total.
func (t *TCP) dropConn(oc *outConn) {
	oc.c.Close()
	t.connMu.Lock()
	for addr, c := range t.conns {
		if c == oc {
			delete(t.conns, addr)
		}
	}
	t.connMu.Unlock()
	t.retire(oc)
}

// retire folds a connection's egress stats into the endpoint
// accumulator exactly once.
func (t *TCP) retire(oc *outConn) {
	st := oc.co.Stats()
	t.wireMu.Lock()
	if !oc.retired {
		oc.retired = true
		t.wireAccum.Add(st)
	}
	t.wireMu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.fail(fmt.Errorf("transport: accept: %w", err))
			}
			return
		}
		t.wg.Add(1)
		go t.serve(c)
	}
}

// serve drains one inbound connection, decoding frames sequentially —
// which is exactly what preserves per-link FIFO on the receive side.
// The frame reader is batch-aware: envelope boundaries are invisible,
// frames arrive in stream order either way.
func (t *TCP) serve(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	done := make(chan struct{})
	defer close(done)
	go func() { // unblock the pending Read when the transport closes
		select {
		case <-t.closed:
			c.Close()
		case <-done: // the connection ended first; don't outlive it
		}
	}()
	fr := wire.NewFrameReader(c, maxFrame)
	// The ingress codec context: stream controls the peer announces
	// (delta-encoded token state) flip flags here, and stateful codecs
	// keep their per-connection caches in it. Sharded frames get one
	// context per shard (delta caches key by shard-local resource id,
	// which collides across shards); shard 0 aliases the legacy one.
	strm := wire.NewStream()
	var shardStrms []*wire.Stream
	deltaOn := false
	ingressStream := func(shard int) *wire.Stream {
		if shard == 0 {
			return strm
		}
		for len(shardStrms) <= shard {
			shardStrms = append(shardStrms, nil)
		}
		if shardStrms[shard] == nil {
			s := wire.NewStream()
			if deltaOn {
				s.SetFlag(wire.CtrlTokenDelta)
			}
			shardStrms[shard] = s
		}
		return shardStrms[shard]
	}
	// Negotiation state. The hello reply and subsequent credits are the
	// only bytes this side ever writes, and both happen strictly after
	// a valid dialer hello arrives — a legacy dialer that never sends
	// one therefore sees a byte-for-byte legacy connection: no reply,
	// no credits, nothing on the reverse path at all.
	var (
		frames   int64  // frames seen; a hello after the first is hostile
		helloed  bool   // dialer hello received and answered
		window   uint64 // announced receive window; 0 = no crediting
		credited uint64 // Consumed() bytes already credited back
	)
	fr.OnControl(func(code uint64, payload []byte) error {
		switch code {
		case wire.CtrlTokenDelta:
			strm.SetFlag(code)
			deltaOn = true
			for _, s := range shardStrms {
				if s != nil {
					s.SetFlag(code)
				}
			}
			return nil
		case wire.CtrlHello:
			if frames > 0 || helloed {
				return fmt.Errorf("hello after %d frames (helloed=%v)", frames, helloed)
			}
			peer, err := wire.ParseHello(payload)
			if err != nil {
				return err
			}
			if err := t.checkPeer(peer); err != nil {
				// Tell the dialer why before dying: its handshake is
				// blocked on this reply and would otherwise time out.
				reject := wire.AppendReject(nil, err.Error())
				c.Write(wire.AppendControl(nil, wire.CtrlReject, reject))
				return err
			}
			mine := t.localHello()
			reply := wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, mine))
			if _, err := c.Write(reply); err != nil {
				return fmt.Errorf("hello reply: %w", err)
			}
			helloed = true
			window = mine.Window
			return nil
		default:
			return wire.ErrUnknownControl // forward compat: skip and count
		}
	})
	for {
		// Re-read the shape per frame: a peer may connect (and send)
		// before this process's cluster has announced it via SetShape.
		t.shapeMu.RLock()
		resources := t.resources
		t.shapeMu.RUnlock()
		frame, err := fr.Next()
		if err != nil {
			t.connErr(c, err)
			return
		}
		frames++
		// Credit consumed stream bytes back once half the window has
		// gone by — frequent enough that the sender never stalls on a
		// draining receiver, rare enough to stay off the hot path.
		if window > 0 && fr.Consumed()-credited >= window/2 {
			delta := fr.Consumed() - credited
			update := wire.AppendWindowUpdate(nil, delta)
			if _, err := c.Write(wire.AppendControl(nil, wire.CtrlWindow, update)); err != nil {
				t.connErr(c, fmt.Errorf("window update: %w", err))
				return
			}
			credited += delta
		}
		sizes, binders := t.shardConfig()
		d := wire.NewDecFor(frame, t.n, resources)
		shard := d.ShardTag()
		from := d.Site()
		to := d.Site()
		if d.Err() != nil {
			t.connErr(c, d.Err())
			return
		}
		// A shard-configured endpoint validates every frame against its
		// shard's local universe (shard 0 included — its universe is
		// sizes[0], not the announced global M); a tagged frame on an
		// unsharded endpoint is a peer speaking a protocol this side was
		// not configured for.
		deliverTo, decRes := t.binder, resources
		if shard > 0 || len(sizes) > 0 {
			if shard >= len(sizes) {
				t.connErr(c, fmt.Errorf("frame for shard %d, endpoint has %d shards", shard, len(sizes)))
				return
			}
			deliverTo, decRes = binders[shard], sizes[shard]
		}
		if !t.local[to] {
			t.connErr(c, fmt.Errorf("frame for node %d, not hosted here", to))
			return
		}
		m, err := wire.DecodeStream(d.Rest(), t.n, decRes, ingressStream(shard))
		if err != nil {
			t.connErr(c, err)
			return
		}
		deliverTo.deliver(to, from, m)
	}
}

// connErr records an inbound connection failure unless it is a normal
// shutdown (transport closed, or the peer simply closed its side).
func (t *TCP) connErr(c net.Conn, err error) {
	select {
	case <-t.closed:
		return
	default:
	}
	if errors.Is(err, io.EOF) {
		return
	}
	t.fail(fmt.Errorf("transport: conn from %s: %w", c.RemoteAddr(), err))
}

// fail records the first asynchronous transport error and announces it
// on stderr — a dropped frame in a token protocol surfaces as a silent
// hang, so the cause must be visible somewhere even when nobody polls
// Err.
func (t *TCP) fail(err error) {
	t.errMu.Lock()
	if t.firstErr == nil {
		t.firstErr = err
		fmt.Fprintln(os.Stderr, "mralloc/transport:", err)
	}
	t.errMu.Unlock()
}

// SetLossRecovery implements LossRecoverer: with a reliability layer
// stacked above, a frame that dies with a broken connection is
// retransmitted after the redial, so write failures stop counting as
// the endpoint's fatal first error. Dial failures and corrupt inbound
// frames still do — the layer above cannot recover those.
func (t *TCP) SetLossRecovery(on bool) { t.lossRecovered.Store(on) }

// Err reports the first asynchronous transport error observed (dial
// failure past the retry window, broken write, corrupt inbound frame),
// or nil. Also returned by Close.
func (t *TCP) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.firstErr
}

// Stats implements Transport.
func (t *TCP) Stats() map[string]int64 { return t.stats.snapshot() }

// WireStats aggregates the egress counters of every connection this
// endpoint has dialed: writes (the syscall proxy), flushes, frames,
// batch envelopes, bytes, and the flush-size histogram. Holding
// wireMu across the accumulator read and the live summation makes
// each connection count exactly once — either in wireAccum (retired)
// or live — even while retire runs concurrently, so successive
// snapshots are monotonic.
func (t *TCP) WireStats() wire.CoalescerStats {
	t.connMu.Lock()
	conns := make([]*outConn, 0, len(t.conns))
	for _, oc := range t.conns {
		conns = append(conns, oc)
	}
	t.connMu.Unlock()
	t.wireMu.Lock()
	defer t.wireMu.Unlock()
	total := t.wireAccum
	for _, oc := range conns {
		if !oc.retired {
			total.Add(oc.co.Stats())
		}
	}
	return total
}

// Close implements Transport. It reports the first asynchronous
// transport error observed during the endpoint's lifetime, if any.
func (t *TCP) Close() error {
	t.closeMu.Lock()
	select {
	case <-t.closed:
		t.closeMu.Unlock()
	default:
		close(t.closed)
		t.closeMu.Unlock()
		t.ln.Close()
		t.connMu.Lock()
		conns := make([]*outConn, 0, len(t.conns))
		for addr, oc := range t.conns {
			conns = append(conns, oc)
			delete(t.conns, addr)
		}
		t.connMu.Unlock()
		for _, oc := range conns {
			// Flush what was queued before the close, but bound the
			// attempt twice over: the write deadline unwinds a flusher
			// blocked mid-Write, and the bounded close join covers
			// writers that ignore deadlines (wrapped conns) — Close must
			// never hang behind a stuck peer.
			oc.c.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
			oc.co.CloseWithin(2 * closeFlushTimeout)
			oc.c.Close()
			t.retire(oc)
		}
		t.wg.Wait()
	}
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.firstErr
}
