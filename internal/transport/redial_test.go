package transport_test

import (
	"net"
	"testing"
	"time"

	"mralloc/internal/leakcheck"
	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
)

// TestDialObservesClose: a Send blocked in the dial path — here inside
// the handshake wait against a peer that accepted but never answers —
// must unwind the moment the transport closes, not ride out the
// handshake timeout (5s) or the dial window (10s), and must leave no
// dialer goroutine behind.
func TestDialObservesClose(t *testing.T) {
	check := leakcheck.Check(t)
	// A listener that accepts and then says nothing: the dial succeeds
	// and the handshake blocks waiting for the hello reply.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	tr, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Connect([]string{tr.Addr(), ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	}()
	select {
	case <-done:
		t.Fatal("Send returned before Close against a silent peer")
	case <-time.After(200 * time.Millisecond):
	}
	start := time.Now()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Send still blocked 2s after Close (dial path ignores shutdown)")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v behind a dead peer", d)
	}
	ln.Close() // stop the silent acceptor before counting goroutines
	check()
}

// TestDialRetryObservesClose: the dial retry loop against a dead
// address (instant refusals, 50ms backoff sleeps) must also observe
// Close, with a window long enough that riding it out would be
// visible.
func TestDialRetryObservesClose(t *testing.T) {
	check := leakcheck.Check(t)
	// Grab a port and release it: dials get ECONNREFUSED instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	tr, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetDialWindow(30 * time.Second)
	if err := tr.Connect([]string{tr.Addr(), dead}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 1})
	}()
	time.Sleep(150 * time.Millisecond) // let it enter the retry loop
	tr.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Send still retrying 2s after Close")
	}
	check()
}

// TestAbortConnsRedial is the kill-then-redial pin at the transport
// level: after AbortConns kills a live connection mid-use, the next
// Sends must discover the corpse (losing only what was already queued
// on it), dial fresh, re-handshake, and deliver — the broken-flag
// redial path end to end.
func TestAbortConnsRedial(t *testing.T) {
	a, err := transport.ListenTCP("127.0.0.1:0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("127.0.0.1:0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := []string{a.Addr(), b.Addr()}
	if err := a.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	got := make(chan transporttest.Msg, 16)
	b.Bind(1, func(from network.NodeID, m network.Message) { got <- m.(transporttest.Msg) })

	send := func(seq int64) {
		a.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: seq})
	}
	expect := func(seq int64) {
		t.Helper()
		select {
		case m := <-got:
			if m.Seq != seq {
				t.Fatalf("got seq %d, want %d", m.Seq, seq)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("message %d never delivered", seq)
		}
	}

	send(1)
	expect(1)
	if killed := a.AbortConns(); killed != 1 {
		t.Fatalf("AbortConns killed %d connections, want 1", killed)
	}
	// The first write onto the corpse fails and is lost — that is the
	// fault being injected — and the failure drops the connection.
	send(2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, open := a.Negotiated(b.Addr()); !open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killed connection never swept from the conn table")
		}
		time.Sleep(time.Millisecond)
	}
	// Everything after the sweep redials and must arrive, in order.
	send(3)
	send(4)
	expect(3)
	expect(4)
	if _, open := a.Negotiated(b.Addr()); !open {
		t.Fatal("no negotiated connection after redial")
	}
}
