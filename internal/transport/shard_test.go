package transport_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
	"mralloc/internal/wire"
)

// Both fabrics carry sharded traffic.
var (
	_ transport.Sharder = (*transport.Mem)(nil)
	_ transport.Sharder = (*transport.TCP)(nil)
)

// setMsg is a shard-universe-sized test message: its Set decodes only
// when the frame is validated against the right per-shard universe, so
// a misrouted or misvalidated shard frame fails loudly.
type setMsg struct {
	RS resource.Set
}

const kindSet = "TT.Set"

func (m setMsg) Kind() string { return kindSet }

func init() {
	wire.Register(kindSet,
		func(e *wire.Enc, nm network.Message) { e.Set(nm.(setMsg).RS) },
		func(d *wire.Dec) network.Message { return setMsg{RS: d.Set()} })
}

// shardSink binds one (shard, node) slot and collects deliveries.
type shardSink struct {
	mu   sync.Mutex
	got  []network.Message
	from []network.NodeID
}

func (s *shardSink) handler() transport.Handler {
	return func(from network.NodeID, m network.Message) {
		s.mu.Lock()
		s.got = append(s.got, m)
		s.from = append(s.from, from)
		s.mu.Unlock()
	}
}

func (s *shardSink) wait(t *testing.T, n int) []network.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]network.Message(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Fatalf("wanted %d deliveries, got %d", n, len(s.got))
	return nil
}

// testShardedFIFO drives G shards concurrently over one fabric: every
// shard's (sender, destination) stream must arrive complete, in order,
// and in the right shard's binder — with no leakage across shards.
func testShardedFIFO(t *testing.T, eps []transport.Transport, sizes []int) {
	t.Helper()
	n := eps[0].N()
	g := len(sizes)
	const per = 200
	sinks := make([][]*shardSink, g)
	for s := 0; s < g; s++ {
		sinks[s] = make([]*shardSink, n)
		for id := 0; id < n; id++ {
			sinks[s][id] = &shardSink{}
			eps[id].(transport.Sharder).BindShard(s, network.NodeID(id), sinks[s][id].handler())
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < g; s++ {
		for from := 0; from < n; from++ {
			wg.Add(1)
			go func(s, from int) {
				defer wg.Done()
				to := network.NodeID((from + 1) % n)
				sh := eps[from].(transport.Sharder)
				for seq := 0; seq < per; seq++ {
					m := transporttest.Msg{K: transporttest.KindA, From: network.NodeID(from), Seq: int64(s*per + seq)}
					if seq%3 == 0 {
						sh.SendShardBatch(s, network.NodeID(from), to, []network.Message{m})
					} else {
						sh.SendShard(s, network.NodeID(from), to, m)
					}
				}
			}(s, from)
		}
	}
	wg.Wait()
	for s := 0; s < g; s++ {
		for to := 0; to < n; to++ {
			from := (to + n - 1) % n
			got := sinks[s][to].wait(t, per)
			if len(got) != per {
				t.Fatalf("shard %d node %d: %d messages, want %d", s, to, len(got), per)
			}
			for i, nm := range got {
				m := nm.(transporttest.Msg)
				if m.From != network.NodeID(from) || m.Seq != int64(s*per+i) {
					t.Fatalf("shard %d node %d msg %d: from %d seq %d (want from %d seq %d)",
						s, to, i, m.From, m.Seq, from, s*per+i)
				}
			}
		}
	}
}

func TestMemSharded(t *testing.T) {
	for _, latency := range []time.Duration{0, 200 * time.Microsecond} {
		t.Run(fmt.Sprintf("latency=%v", latency), func(t *testing.T) {
			const n = 3
			m := transport.NewMem(n, latency)
			defer m.Close()
			sizes := []int{4, 3, 3}
			m.SetShards(sizes)
			eps := make([]transport.Transport, n)
			for i := range eps {
				eps[i] = m
			}
			testShardedFIFO(t, eps, sizes)
		})
	}
}

// shardedPair builds a two-endpoint TCP fabric with both ends
// configured for the same shard layout.
func shardedPair(t *testing.T, sizes []int, tune transport.WireOptions) (a, b *transport.TCP) {
	t.Helper()
	a, b = listenPair(t, tune, tune)
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	a.SetShape(2, total)
	b.SetShape(2, total)
	a.SetShards(sizes)
	b.SetShards(sizes)
	return a, b
}

func TestTCPSharded(t *testing.T) {
	for _, tune := range []transport.WireOptions{{}, {Delta: true}} {
		t.Run(fmt.Sprintf("delta=%v", tune.Delta), func(t *testing.T) {
			sizes := []int{4, 3, 3}
			a, b := shardedPair(t, sizes, tune)
			testShardedFIFO(t, []transport.Transport{a, b}, sizes)
		})
	}
}

// TestTCPShardedSetValidation pins per-shard codec validation: a set
// over shard 1's local universe (3 resources) crosses the wire intact
// even though the endpoint's global universe is 10 — the shard tag
// selects sizes[1] as the decode bound — and the legacy shard-0 path
// validates against sizes[0], not the global M.
func TestTCPShardedSetValidation(t *testing.T) {
	sizes := []int{4, 3, 3}
	a, b := shardedPair(t, sizes, transport.WireOptions{})
	for shard, sz := range sizes {
		sink := &shardSink{}
		b.BindShard(shard, 1, sink.handler())
		rs := resource.FromIDs(sz, 0, resource.ID(sz-1))
		a.SendShard(shard, 0, 1, setMsg{RS: rs})
		got := sink.wait(t, 1)
		if got[0].(setMsg).RS.String() != rs.String() {
			t.Fatalf("shard %d: set %v, want %v", shard, got[0].(setMsg).RS, rs)
		}
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPShardCountMismatch: an endpoint configured for 3 shards
// rejects a flat (unannounced = single-shard) peer at the handshake —
// the configured acceptor records the mismatch and the flat dialer
// learns it was rejected.
func TestTCPShardCountMismatch(t *testing.T) {
	a, b := listenPair(t, transport.WireOptions{}, transport.WireOptions{})
	a.SetShards([]int{4, 3, 3})
	b.Send(1, 0, transporttest.Msg{K: transporttest.KindA, From: 1, Seq: 1})
	waitErr(t, b, "rejected")
	waitErr(t, a, "shards")
}

// TestTCPShardFrameOnFlatEndpoint: a tagged frame arriving at an
// endpoint that never configured shards is a protocol violation, not a
// silent misroute into the flat namespace. The handshake already
// blocks sharded endpoints from connecting here, so play a raw dialer
// that skips the hello (legacy dialers are served without one).
func TestTCPShardFrameOnFlatEndpoint(t *testing.T) {
	b, err := transport.ListenTCP("127.0.0.1:0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sink := &shardSink{}
	b.Bind(1, sink.handler())

	c, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := wire.AppendShardTag(nil, 2)
	payload = binary.AppendVarint(payload, 0) // from
	payload = binary.AppendVarint(payload, 1) // to
	payload, err = wire.Append(payload, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: 9})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	if _, err := c.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	waitErr(t, b, "shard")
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.got) != 0 {
		t.Fatalf("tagged frame delivered to flat endpoint: %v", sink.got)
	}
}
