package transport_test

import (
	"bytes"
	"testing"
	"time"

	"mralloc/internal/network"
	"mralloc/internal/transport"
	"mralloc/internal/transport/transporttest"
)

// chaosMemFactory wraps the in-process fabric in a Chaos with no fault
// armed: the wrapper must be a pure passthrough, so the full
// conformance suite runs against it unchanged. One wrapper is shared
// by every node, like the Mem it wraps, so stats count once.
func chaosMemFactory(t *testing.T, n int) []transport.Transport {
	ch := transport.NewChaos(transport.NewMem(n, 0), 1)
	eps := make([]transport.Transport, n)
	for i := range eps {
		eps[i] = ch
	}
	return eps
}

// chaosMemArmedFactory arms the fault pipeline with an all-zero
// profile: traffic routes through the per-link forwarder queues, and
// every transport guarantee must still hold — the pipeline itself may
// not lose, duplicate, or reorder a link.
func chaosMemArmedFactory(t *testing.T, n int) []transport.Transport {
	ch := transport.NewChaos(transport.NewMem(n, 0), 1)
	ch.SetFaults(transport.Faults{})
	eps := make([]transport.Transport, n)
	for i := range eps {
		eps[i] = ch
	}
	return eps
}

// chaosTCPFactory wraps every TCP endpoint of the maximally
// distributed topology in its own unarmed Chaos.
func chaosTCPFactory(t *testing.T, n int) []transport.Transport {
	eps := make([]transport.Transport, n)
	addrs := make([]string, n)
	tcps := make([]*transport.TCP, n)
	for i := range eps {
		tr, err := transport.ListenTCP("127.0.0.1:0", n, i)
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr()
		eps[i] = transport.NewChaos(tr, int64(i))
	}
	for _, tr := range tcps {
		if err := tr.Connect(addrs); err != nil {
			t.Fatal(err)
		}
	}
	return eps
}

func TestChaosMemConformance(t *testing.T) {
	transporttest.TestTransport(t, chaosMemFactory)
}

func TestChaosMemArmedConformance(t *testing.T) {
	transporttest.TestTransport(t, chaosMemArmedFactory)
}

func TestChaosTCPConformance(t *testing.T) {
	transporttest.TestTransport(t, chaosTCPFactory)
}

// TestChaosScheduleReplay pins determinism: the same seed, fault
// profile, and per-link send order must draw the identical decision
// schedule, byte for byte — which is what makes a chaotic failure
// reproducible from its spec alone. A different seed must not.
func TestChaosScheduleReplay(t *testing.T) {
	f := transport.Faults{Drop: 0.3, Dup: 0.2, DelayMin: 0, DelayMax: 100 * time.Microsecond}
	run := func(seed int64) ([]byte, transport.ChaosStats) {
		const n = 3
		ch := transport.NewChaos(transport.NewMem(n, 0), seed)
		defer ch.Close()
		for i := 0; i < n; i++ {
			ch.Bind(network.NodeID(i), func(network.NodeID, network.Message) {})
		}
		ch.SetFaults(f)
		// A fixed single-threaded drive over three links, batches
		// included: the decision sequence depends only on per-link
		// send order, which this fixes exactly.
		for s := int64(0); s < 200; s++ {
			ch.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: s})
			if s%3 == 0 {
				ch.Send(1, 2, transporttest.Msg{K: transporttest.KindB, From: 1, Seq: s})
			}
			if s%5 == 0 {
				ch.SendBatch(2, 0, []network.Message{
					transporttest.Msg{K: transporttest.KindA, From: 2, Seq: s},
					transporttest.Msg{K: transporttest.KindB, From: 2, Seq: s + 1},
				})
			}
		}
		return ch.Trace(), ch.ChaosStats()
	}
	tr1, st1 := run(42)
	tr2, st2 := run(42)
	tr3, _ := run(43)
	if len(tr1) == 0 {
		t.Fatal("empty decision trace")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Fatalf("same seed produced different schedules:\n%x\n%x", tr1, tr2)
	}
	if bytes.Equal(tr1, tr3) {
		t.Fatal("different seeds produced the identical schedule")
	}
	if st1 != st2 {
		t.Fatalf("same seed produced different fault counts: %+v vs %+v", st1, st2)
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 || st1.Delayed == 0 {
		t.Fatalf("schedule exercised no faults: %+v", st1)
	}
}

// TestChaosDirectedPartition: severing a→b queues that link's traffic
// (FIFO) while b→a still flows; Heal delivers everything queued, in
// order — the asymmetric failure mode a bidirectional cut cannot
// model.
func TestChaosDirectedPartition(t *testing.T) {
	const n = 2
	ch := transport.NewChaos(transport.NewMem(n, 0), 7)
	defer ch.Close()
	got := make(chan transporttest.Msg, 64)
	ch.Bind(0, func(from network.NodeID, m network.Message) { got <- m.(transporttest.Msg) })
	ch.Bind(1, func(from network.NodeID, m network.Message) { got <- m.(transporttest.Msg) })

	ch.Partition(0, 1)
	for s := int64(1); s <= 5; s++ {
		ch.Send(0, 1, transporttest.Msg{K: transporttest.KindA, From: 0, Seq: s})
	}
	// The reverse link must be untouched.
	ch.Send(1, 0, transporttest.Msg{K: transporttest.KindB, From: 1, Seq: 100})
	select {
	case m := <-got:
		if m.From != 1 {
			t.Fatalf("severed-link message delivered during partition: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reverse link blocked by a directed partition")
	}
	select {
	case m := <-got:
		t.Fatalf("message %+v crossed a severed link", m)
	case <-time.After(50 * time.Millisecond):
	}

	ch.Heal(0, 1)
	for s := int64(1); s <= 5; s++ {
		select {
		case m := <-got:
			if m.Seq != s {
				t.Fatalf("post-heal delivery out of order: got seq %d, want %d", m.Seq, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never delivered after heal", s)
		}
	}
}

// TestChaosSpecRoundTrip pins the schedule encoding: encode → parse →
// re-encode must be the identity, and malformed inputs must be
// rejected rather than panic.
func TestChaosSpecRoundTrip(t *testing.T) {
	specs := []transport.Spec{
		{},
		{Seed: -12345},
		{Seed: 42, Faults: transport.Faults{Drop: 0.05, Dup: 0.01, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond}, KillEvery: 250 * time.Millisecond},
		{Seed: 1 << 60, Faults: transport.Faults{Drop: 1, Dup: 1, DelayMax: time.Hour}},
	}
	for _, s := range specs {
		enc := s.Append(nil)
		got, err := transport.ParseSpec(enc)
		if err != nil {
			t.Fatalf("ParseSpec(%+v): %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip changed spec: %+v -> %+v", s, got)
		}
		hexGot, err := transport.ParseSpecHex(s.String())
		if err != nil || hexGot != s {
			t.Fatalf("hex round trip: %+v -> %+v (%v)", s, hexGot, err)
		}
	}
	bad := [][]byte{
		nil,
		{0xff},
		transport.Spec{Faults: transport.Faults{DelayMin: 2, DelayMax: 1}}.Append(nil),
		append(transport.Spec{}.Append(nil), 0),
	}
	for _, b := range bad {
		if _, err := transport.ParseSpec(b); err == nil {
			t.Fatalf("ParseSpec accepted malformed input %x", b)
		}
	}
}

// FuzzChaosSpec: ParseSpec must never panic, and anything it accepts
// must survive a re-encode/re-parse round trip unchanged — the replay
// handle a spec is must mean the same schedule wherever it lands.
func FuzzChaosSpec(f *testing.F) {
	f.Add(transport.Spec{}.Append(nil))
	f.Add(transport.Spec{Seed: 42, Faults: transport.Faults{Drop: 0.05, Dup: 0.01, DelayMax: 5 * time.Millisecond}, KillEvery: 100 * time.Millisecond}.Append(nil))
	f.Add(transport.Spec{Seed: -1, Faults: transport.Faults{Drop: 1, Dup: 1, DelayMin: 1, DelayMax: 1}}.Append(nil))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := transport.ParseSpec(b)
		if err != nil {
			return
		}
		again, err := transport.ParseSpec(s.Append(nil))
		if err != nil {
			t.Fatalf("accepted %x but rejects its own re-encoding: %v", b, err)
		}
		if again != s {
			t.Fatalf("re-encode round trip changed spec: %+v -> %+v", s, again)
		}
	})
}
