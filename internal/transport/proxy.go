package transport

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Proxy is a TCP pass-through with a kill switch: it forwards every
// accepted connection to a fixed target and can sever all of them
// mid-stream on demand. The serve layer's client connections do not go
// through the Transport interface, so connection-kill chaos for them is
// injected here, between client and daemon, instead of inside an
// endpoint.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]bool // both halves of every live relay
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a loopback ephemeral port relaying to
// target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr reports the address clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			return
		}
		p.conns[c] = true
		p.conns[up] = true
		p.mu.Unlock()
		relay := func(dst, src net.Conn) {
			defer p.wg.Done()
			io.Copy(dst, src)
			// Either side dying severs the pair: half-open relays would
			// hide the failure the kill is supposed to inject.
			dst.Close()
			src.Close()
			p.mu.Lock()
			delete(p.conns, dst)
			delete(p.conns, src)
			p.mu.Unlock()
		}
		p.wg.Add(2)
		go relay(up, c)
		go relay(c, up)
	}
}

// KillConns forcibly closes every live relayed connection (both
// halves), reporting how many client connections died.
func (p *Proxy) KillConns() int {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns) / 2
}

// Close stops the proxy and severs every relay. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillConns()
	p.wg.Wait()
	return nil
}
