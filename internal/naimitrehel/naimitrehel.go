// Package naimitrehel implements the Naimi–Tréhel token-based mutual
// exclusion algorithm (ICDCS 1987), the O(log N)-message mutex the
// paper's evaluation uses twice: M independent instances form the
// incremental baseline, and a single instance manages the control token
// of Bouabdallah–Laforest.
//
// The algorithm maintains two distributed structures: a dynamic tree of
// "last" pointers (each node's guess at the last requester, along which
// requests travel and which requests rewire behind themselves) and an
// implicit queue of "next" pointers along which the token travels.
//
// An Instance is a pure state machine: the embedding protocol supplies
// the send and granted callbacks and delivers messages, so instances can
// be multiplexed by tagging Msg values with an instance index. The token
// may carry an opaque payload on behalf of the embedder (the
// Bouabdallah–Laforest control-token vector rides there).
package naimitrehel

import (
	"fmt"

	"mralloc/internal/network"
)

// MsgType discriminates the two protocol messages.
type MsgType uint8

// The protocol's message types.
const (
	MsgRequest MsgType = iota // forwarded along "last" pointers
	MsgToken                  // sent directly to the next holder
)

// Msg is one Naimi–Tréhel message. The embedder wraps it (typically
// adding an instance tag) into its own network.Message type.
type Msg struct {
	Type      MsgType
	Requester network.NodeID // MsgRequest: who wants the token
	Payload   any            // MsgToken: embedder state riding the token
}

// String renders the message for logs.
func (m Msg) String() string {
	if m.Type == MsgRequest {
		return fmt.Sprintf("NT.Request(from s%d)", m.Requester)
	}
	return "NT.Token"
}

// Instance is one node's endpoint of one mutex instance.
type Instance struct {
	id   network.NodeID
	last network.NodeID // probable last requester; None when self is root
	next network.NodeID // who receives the token at release; None if nobody

	hasToken   bool
	requesting bool
	inCS       bool
	payload    any

	send    func(to network.NodeID, m Msg)
	granted func(payload any)
}

// New creates one endpoint. root is the initially elected token holder
// (the same for every endpoint of the instance); it starts with the
// token and the given initial payload. granted fires when the critical
// section is entered and receives the payload carried by the token.
func New(id, root network.NodeID, initial any,
	send func(to network.NodeID, m Msg), granted func(payload any)) *Instance {
	x := &Instance{
		id:      id,
		last:    root,
		next:    network.None,
		send:    send,
		granted: granted,
	}
	if id == root {
		x.last = network.None
		x.hasToken = true
		x.payload = initial
	}
	return x
}

// HasToken reports whether this endpoint currently holds the token.
func (x *Instance) HasToken() bool { return x.hasToken }

// InCS reports whether this endpoint is inside its critical section.
func (x *Instance) InCS() bool { return x.inCS }

// Requesting reports whether a request is outstanding.
func (x *Instance) Requesting() bool { return x.requesting }

// Payload returns the embedder state the token carried here. Only
// meaningful while HasToken.
func (x *Instance) Payload() any { return x.payload }

// Request asks for the critical section. The instance must be idle.
// The grant may fire synchronously when this node is the idle root.
func (x *Instance) Request() {
	if x.requesting || x.inCS {
		panic(fmt.Sprintf("naimitrehel: s%d requested while busy", x.id))
	}
	x.requesting = true
	if x.last == network.None {
		// Idle root: it necessarily holds the token.
		x.enter()
		return
	}
	x.send(x.last, Msg{Type: MsgRequest, Requester: x.id})
	x.last = network.None // this node becomes the new root
}

// Release leaves the critical section, handing the token (carrying
// payload) to the next requester if one queued behind us.
func (x *Instance) Release(payload any) {
	if !x.inCS {
		panic(fmt.Sprintf("naimitrehel: s%d released outside CS", x.id))
	}
	x.inCS = false
	x.requesting = false
	x.payload = payload
	if x.next != network.None {
		to := x.next
		x.next = network.None
		x.hasToken = false
		pl := x.payload
		x.payload = nil
		x.send(to, Msg{Type: MsgToken, Payload: pl})
	}
}

// Deliver processes one protocol message addressed to this endpoint.
func (x *Instance) Deliver(m Msg) {
	switch m.Type {
	case MsgRequest:
		j := m.Requester
		if x.last == network.None {
			// This node is the root: j queues directly behind it.
			switch {
			case x.requesting || x.inCS:
				if x.next != network.None {
					panic(fmt.Sprintf("naimitrehel: s%d already has next s%d", x.id, x.next))
				}
				x.next = j
			case x.hasToken:
				x.hasToken = false
				pl := x.payload
				x.payload = nil
				x.send(j, Msg{Type: MsgToken, Payload: pl})
			default:
				// A root is either using/awaiting the token or holding
				// it; anything else is a protocol bug.
				panic(fmt.Sprintf("naimitrehel: s%d is root without token", x.id))
			}
		} else {
			x.send(x.last, m)
		}
		x.last = j
	case MsgToken:
		if !x.requesting {
			panic(fmt.Sprintf("naimitrehel: s%d received unsolicited token", x.id))
		}
		x.hasToken = true
		x.payload = m.Payload
		x.enter()
	default:
		panic("naimitrehel: unknown message type")
	}
}

func (x *Instance) enter() {
	x.inCS = true
	x.granted(x.payload)
}
