package naimitrehel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mralloc/internal/network"
	"mralloc/internal/sim"
)

// wire adapts Msg to network.Message for the test harness.
type wire struct{ M Msg }

func (w wire) Kind() string {
	if w.M.Type == MsgRequest {
		return "NT.Request"
	}
	return "NT.Token"
}

// harness runs one NT instance over a simulated network.
type harness struct {
	eng   *sim.Engine
	nw    *network.Network
	insts []*Instance
	inCS  network.NodeID // current CS occupant, None if free
	count int            // completed critical sections
	order []network.NodeID
	t     *testing.T
}

func newHarness(t *testing.T, n int, hold sim.Time) *harness {
	h := &harness{eng: sim.New(), inCS: network.None, t: t}
	h.nw = network.New(h.eng, n, network.Constant{D: sim.Millisecond}, nil)
	h.insts = make([]*Instance, n)
	for i := 0; i < n; i++ {
		id := network.NodeID(i)
		send := func(to network.NodeID, m Msg) { h.nw.Send(id, to, wire{m}) }
		granted := func(any) {
			if h.inCS != network.None {
				t.Fatalf("s%d entered CS while s%d inside (mutual exclusion)", id, h.inCS)
			}
			h.inCS = id
			h.order = append(h.order, id)
			h.eng.After(hold, func() {
				h.inCS = network.None
				h.count++
				h.insts[id].Release(nil)
			})
		}
		h.insts[i] = New(id, 0, nil, send, granted)
		h.nw.Bind(id, func(_ network.NodeID, m network.Message) {
			h.insts[id].Deliver(m.(wire).M)
		})
	}
	return h
}

func TestIdleRootGrantsImmediately(t *testing.T) {
	h := newHarness(t, 4, sim.Millisecond)
	h.insts[0].Request()
	if !h.insts[0].InCS() {
		t.Fatal("idle root did not enter CS synchronously")
	}
	h.eng.Run()
	if h.count != 1 {
		t.Fatalf("count = %d", h.count)
	}
}

func TestTokenTravelsToRequester(t *testing.T) {
	h := newHarness(t, 4, sim.Millisecond)
	h.insts[2].Request()
	h.eng.Run()
	if h.count != 1 || len(h.order) != 1 || h.order[0] != 2 {
		t.Fatalf("order = %v", h.order)
	}
	if !h.insts[2].HasToken() || h.insts[0].HasToken() {
		t.Fatal("token did not move to the last requester")
	}
}

func TestAllNodesRequestOnce(t *testing.T) {
	const n = 8
	h := newHarness(t, n, sim.Millisecond)
	for i := 0; i < n; i++ {
		i := i
		h.eng.At(sim.Time(i)*sim.Microsecond, func() { h.insts[i].Request() })
	}
	h.eng.Run()
	if h.count != n {
		t.Fatalf("completed %d/%d critical sections", h.count, n)
	}
	seen := map[network.NodeID]bool{}
	for _, id := range h.order {
		if seen[id] {
			t.Fatalf("s%d served twice: %v", id, h.order)
		}
		seen[id] = true
	}
}

func TestRepeatedRandomRequests(t *testing.T) {
	prop := func(seed int64) bool {
		const n, rounds = 6, 5
		h := newHarness(t, n, 500*sim.Microsecond)
		r := rand.New(rand.NewSource(seed))
		// Each node issues `rounds` requests at random instants; a node
		// re-requests only after its previous CS completed, which the
		// harness enforces by scheduling the next request from release.
		var scheduleNode func(id network.NodeID, remaining int)
		scheduleNode = func(id network.NodeID, remaining int) {
			if remaining == 0 {
				return
			}
			h.eng.After(sim.Time(r.Intn(5000))*sim.Microsecond, func() {
				if h.insts[id].Requesting() || h.insts[id].InCS() {
					// Previous cycle unfinished; retry shortly after.
					scheduleNode(id, remaining)
					return
				}
				h.insts[id].Request()
				scheduleNode(id, remaining-1)
			})
		}
		for i := 0; i < n; i++ {
			scheduleNode(network.NodeID(i), rounds)
		}
		h.eng.Run()
		return h.count == n*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactlyOneTokenAlways(t *testing.T) {
	const n = 8
	h := newHarness(t, n, sim.Millisecond)
	for i := n - 1; i >= 0; i-- {
		i := i
		h.eng.At(sim.Time(i)*sim.Microsecond, func() { h.insts[i].Request() })
	}
	for h.eng.Step() {
		holders := 0
		for _, x := range h.insts {
			if x.HasToken() {
				holders++
			}
		}
		if holders > 1 {
			t.Fatal("two token holders")
		}
	}
	if h.count != n {
		t.Fatalf("count = %d", h.count)
	}
}

func TestPayloadRidesToken(t *testing.T) {
	h := newHarness(t, 3, sim.Millisecond)
	// Rebuild instance callbacks so the payload is visible: root starts
	// with payload 100, each CS adds 1 and releases.
	var values []int
	for i := 0; i < 3; i++ {
		id := network.NodeID(i)
		send := func(to network.NodeID, m Msg) { h.nw.Send(id, to, wire{m}) }
		granted := func(p any) {
			v := p.(int)
			values = append(values, v)
			h.eng.After(sim.Millisecond, func() { h.insts[id].Release(v + 1) })
		}
		h.insts[i] = New(id, 0, 100, send, granted)
	}
	for i := 0; i < 3; i++ {
		i := i
		h.eng.At(sim.Time(i)*sim.Microsecond, func() { h.insts[i].Request() })
	}
	h.eng.Run()
	if len(values) != 3 || values[0] != 100 || values[1] != 101 || values[2] != 102 {
		t.Fatalf("payload chain = %v", values)
	}
}

func TestMessageComplexityIsModest(t *testing.T) {
	const n = 16
	h := newHarness(t, n, 100*sim.Microsecond)
	for i := 0; i < n; i++ {
		i := i
		h.eng.At(sim.Time(i*50)*sim.Microsecond, func() { h.insts[i].Request() })
	}
	h.eng.Run()
	st := h.nw.Stats()
	// Worst case is O(N) per request; the dynamic tree keeps the
	// average well below that. Allow a generous bound.
	if st.Total > int64(3*n*n) {
		t.Fatalf("%d messages for %d requests", st.Total, n)
	}
	if st.ByKind["NT.Token"] != n-1 {
		t.Fatalf("token transfers = %d, want %d", st.ByKind["NT.Token"], n-1)
	}
}

func TestMisusePanics(t *testing.T) {
	h := newHarness(t, 2, sim.Millisecond)
	h.insts[0].Request() // enters CS synchronously
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double request did not panic")
			}
		}()
		h.insts[0].Request()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("release outside CS did not panic")
			}
		}()
		h.insts[1].Release(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsolicited token did not panic")
			}
		}()
		h.insts[1].Deliver(Msg{Type: MsgToken})
	}()
}

func TestMsgString(t *testing.T) {
	if got := (Msg{Type: MsgRequest, Requester: 3}).String(); got != "NT.Request(from s3)" {
		t.Errorf("String = %q", got)
	}
	if got := (Msg{Type: MsgToken}).String(); got != "NT.Token" {
		t.Errorf("String = %q", got)
	}
}
