package core

import (
	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/wire"
)

// Token leases and epoch-fenced regeneration. The base protocol is
// crash-free: a token lost with its holder wedges every later request
// for that resource forever. With Options.LeaseTTL > 0 each resource
// gets a fixed steward — site r % N — and ownership becomes a lease
// renewed by heartbeat:
//
//   - Every owner heartbeats its holdings to their stewards each
//     HeartbeatInterval (and immediately on acquiring a token). The
//     steward echoes a grant carrying the heartbeat's own send time,
//     and only that echo extends the holder's lease: leaseUntil =
//     sentTime + TTL on the holder's clock. Clock *skew* between the
//     two sites therefore never inflates a lease; only their relative
//     rates matter.
//   - A node enters its critical section only while every required
//     lease is current (leaseReady). The steward declares an unheard
//     holder dead only after 4×TTL of silence, so a live holder's
//     lease always runs out at least 3×TTL before its steward can act
//     on the silence: critical sections shorter than that bound are
//     safe by construction.
//   - On expiry the steward regenerates the token from its stale
//     snapshot under a bumped Epoch and broadcasts the regeneration.
//     Every site re-aims its father pointer at the steward and
//     re-issues its in-flight request; a resurfacing copy of the old
//     token — or its stale ex-holder — is fenced by the epoch check
//     instead of splitting ownership.
//
// Lease traffic (LASS.HB, LASS.Lease, LASS.Regen) bypasses the §4.2.2
// aggregation outbox: it is low-rate, latency-sensitive control
// traffic, not protocol payload.

func init() {
	wire.Register("LASS.HB", encHB, decHB)
	wire.Register("LASS.Lease", encLease, decLease)
	wire.Register("LASS.Regen", encRegen, decRegen)
	wire.RegisterSamples(
		hbMsg{Sent: 5 * sim.Millisecond, Owned: []hbEntry{{R: 1, Epoch: 0}, {R: 3, Epoch: 2}}},
		hbMsg{},
		leaseMsg{Sent: 5 * sim.Millisecond, Rs: []resource.ID{1, 3}},
		regenMsg{R: 3, Epoch: 3, Owner: 1},
	)
}

// hbEntry names one held token and the epoch it was held under; a
// stale epoch tells the steward the heartbeat comes from a fenced
// ex-holder, not the live owner.
type hbEntry struct {
	R     resource.ID
	Epoch int64
}

// hbMsg is an owner's lease renewal: every resource it holds whose
// steward is the destination, stamped with the sender's own clock.
type hbMsg struct {
	Sent  sim.Time
	Owned []hbEntry
}

func (hbMsg) Kind() string { return "LASS.HB" }

// leaseMsg is the steward's grant echo. Sent is copied verbatim from
// the heartbeat being answered, so the holder computes its lease end
// on its own clock.
type leaseMsg struct {
	Sent sim.Time
	Rs   []resource.ID
}

func (leaseMsg) Kind() string { return "LASS.Lease" }

// regenMsg announces a regeneration: the token of R now exists only
// under Epoch, owned by the steward that rebuilt it.
type regenMsg struct {
	R     resource.ID
	Epoch int64
	Owner network.NodeID
}

func (regenMsg) Kind() string { return "LASS.Regen" }

func encHB(e *wire.Enc, m network.Message) {
	hb := m.(hbMsg)
	e.Varint(int64(hb.Sent))
	e.Uvarint(uint64(len(hb.Owned)))
	for _, x := range hb.Owned {
		e.Varint(int64(x.R))
		e.Varint(x.Epoch)
	}
}

func decHB(d *wire.Dec) network.Message {
	var hb hbMsg
	hb.Sent = sim.Time(d.Varint())
	if hb.Sent < 0 && d.Err() == nil {
		d.Fail("negative heartbeat timestamp %d", hb.Sent)
		return hb
	}
	n := d.Count()
	if d.Err() != nil {
		return hb
	}
	hb.Owned = make([]hbEntry, 0, n)
	for i := 0; i < n; i++ {
		var x hbEntry
		x.R = d.Res()
		x.Epoch = d.Varint()
		if x.Epoch < 0 && d.Err() == nil {
			d.Fail("negative epoch %d in heartbeat", x.Epoch)
		}
		if d.Err() != nil {
			return hb
		}
		hb.Owned = append(hb.Owned, x)
	}
	return hb
}

func encLease(e *wire.Enc, m network.Message) {
	l := m.(leaseMsg)
	e.Varint(int64(l.Sent))
	e.Uvarint(uint64(len(l.Rs)))
	for _, r := range l.Rs {
		e.Varint(int64(r))
	}
}

func decLease(d *wire.Dec) network.Message {
	var l leaseMsg
	l.Sent = sim.Time(d.Varint())
	if l.Sent < 0 && d.Err() == nil {
		d.Fail("negative lease timestamp %d", l.Sent)
		return l
	}
	n := d.Count()
	if d.Err() != nil {
		return l
	}
	l.Rs = make([]resource.ID, 0, n)
	for i := 0; i < n; i++ {
		r := d.Res()
		if d.Err() != nil {
			return l
		}
		l.Rs = append(l.Rs, r)
	}
	return l
}

func encRegen(e *wire.Enc, m network.Message) {
	rg := m.(regenMsg)
	e.Varint(int64(rg.R))
	e.Varint(rg.Epoch)
	e.Node(rg.Owner)
}

func decRegen(d *wire.Dec) network.Message {
	var rg regenMsg
	rg.R = d.Res()
	rg.Epoch = d.Varint()
	if rg.Epoch <= 0 && d.Err() == nil {
		// Epoch 0 is the genesis generation; it is never announced.
		d.Fail("regeneration epoch %d out of range", rg.Epoch)
		return rg
	}
	rg.Owner = d.Site()
	return rg
}

// steward is the fixed lease authority of r. The modulo spreads the
// duty evenly and every site can compute it locally.
func (nd *Node) steward(r resource.ID) network.NodeID {
	return network.NodeID(int(r) % nd.env.N())
}

// leasing reports whether the lease machinery is armed.
func (nd *Node) leasing() bool { return nd.opt.LeaseTTL > 0 }

// leaseReady reports whether every required resource is covered by a
// current lease; it is the CS-entry gate.
func (nd *Node) leaseReady() bool {
	now := nd.env.Now()
	ok := true
	nd.required.ForEach(func(r resource.ID) {
		if nd.leaseUntil[r] <= now {
			ok = false
		}
	})
	return ok
}

// maybeEnter enters the critical section, unless leases are armed and
// one of the required leases is not current — then the entry parks
// (entryHeld) and retries when a grant or a tick arrives. Every token
// stays owned meanwhile; only the entry itself waits.
func (nd *Node) maybeEnter() {
	if nd.leasing() && !nd.leaseReady() {
		nd.entryHeld = true
		return
	}
	nd.entryHeld = false
	nd.enterCS()
}

// retryEntry re-attempts a parked CS entry; grants and ticks call it.
func (nd *Node) retryEntry() {
	if nd.entryHeld && nd.st != stInCS && !nd.required.Empty() &&
		nd.required.SubsetOf(nd.owned) {
		nd.maybeEnter()
	}
}

// Tick implements alg.Ticker: the runtime's clock edge. All timed
// lease work happens here — heartbeat rounds, holder-side lease-lapse
// accounting, and the steward's expiry scan.
func (nd *Node) Tick(now sim.Time) {
	if !nd.leasing() {
		return
	}
	ttl := nd.opt.LeaseTTL
	if !nd.leaseInit {
		// First clock edge: stewards start the death countdown for
		// every token they cannot vouch for. Before this a steward has
		// no time base to judge silence against.
		nd.leaseInit = true
		for r := range nd.stewardDeadline {
			if nd.steward(resource.ID(r)) == nd.self() && !nd.owned.Has(resource.ID(r)) {
				nd.stewardDeadline[r] = now + 4*ttl
			}
		}
	}
	if now >= nd.nextHB {
		nd.nextHB = now + nd.opt.hbInterval()
		nd.ids = nd.owned.AppendMembers(nd.ids)
		nd.sendHeartbeats(now, nd.ids)
	}
	// Holder-side lapse edges: an owned lease running out is counted
	// once, not once per tick.
	nd.ids = nd.owned.AppendMembers(nd.ids)
	for _, r := range nd.ids {
		if nd.leaseUntil[r] > 0 && nd.leaseUntil[r] <= now && !nd.leaseLapsed[r] {
			nd.leaseLapsed[r] = true
			nd.stats.LeaseExpiries++
		}
	}
	// Steward expiry scan: regenerate what has been silent too long.
	for i := range nd.stewardDeadline {
		r := resource.ID(i)
		if nd.steward(r) != nd.self() || nd.owned.Has(r) {
			continue
		}
		if dl := nd.stewardDeadline[i]; dl > 0 && now >= dl {
			nd.regenerate(r, now)
		}
	}
	nd.retryEntry()
	nd.flushOwn()
}

// sendHeartbeats renews the leases of the given owned resources:
// self-stewarded ones locally, the rest with one heartbeat per
// steward. rs must be a snapshot of (a subset of) nd.owned.
func (nd *Node) sendHeartbeats(now sim.Time, rs []resource.ID) {
	ttl := nd.opt.LeaseTTL
	var byDest map[network.NodeID]*hbMsg
	for _, r := range rs {
		s := nd.steward(r)
		if s == nd.self() {
			nd.grantLease(r, now+ttl)
			continue
		}
		if byDest == nil {
			byDest = make(map[network.NodeID]*hbMsg, 4)
		}
		hb := byDest[s]
		if hb == nil {
			hb = &hbMsg{Sent: now}
			byDest[s] = hb
		}
		hb.Owned = append(hb.Owned, hbEntry{R: r, Epoch: nd.lastTok[r].Epoch})
	}
	for to, hb := range byDest {
		nd.stats.Heartbeats++
		nd.env.Send(to, *hb)
	}
}

// grantLease installs one lease end on the holder side, keeping the
// latest end when grants arrive out of order.
func (nd *Node) grantLease(r resource.ID, until sim.Time) {
	if until > nd.leaseUntil[r] {
		nd.leaseUntil[r] = until
	}
	nd.leaseLapsed[r] = false
}

// onHeartbeat is the steward side of a renewal: refresh the death
// countdown and echo a grant for every current-epoch holding. A stale
// epoch means the sender is a fenced ex-holder that missed the
// regeneration broadcast — re-announce it instead of granting.
func (nd *Node) onHeartbeat(from network.NodeID, hb hbMsg) {
	now := nd.env.Now()
	var grant []resource.ID
	for _, x := range hb.Owned {
		if nd.steward(x.R) != nd.self() {
			continue // misdirected; never grant what we do not steward
		}
		if x.Epoch < nd.curEpoch[x.R] {
			if nd.regenOwner[x.R] != network.None {
				nd.env.Send(from, regenMsg{R: x.R, Epoch: nd.curEpoch[x.R], Owner: nd.regenOwner[x.R]})
			}
			continue
		}
		if x.Epoch > nd.curEpoch[x.R] {
			nd.curEpoch[x.R] = x.Epoch
		}
		if !nd.owned.Has(x.R) {
			nd.stewardDeadline[x.R] = now + 4*nd.opt.LeaseTTL
		}
		grant = append(grant, x.R)
	}
	if len(grant) > 0 {
		nd.stats.LeaseGrants++
		nd.env.Send(from, leaseMsg{Sent: hb.Sent, Rs: grant})
	}
}

// onLease installs a grant echo: only resources still owned count (the
// token may have moved on while the grant was in flight), and a parked
// CS entry gets its retry.
func (nd *Node) onLease(l leaseMsg) {
	ttl := nd.opt.LeaseTTL
	for _, r := range l.Rs {
		if nd.owned.Has(r) {
			nd.grantLease(r, l.Sent+ttl)
		}
	}
	nd.retryEntry()
}

// regenerate rebuilds the token of r under a fresh epoch. The stale
// snapshot seeds counter and obsolescence stamps (conservative: stamps
// only grow, so replayed requests are never wrongly dropped), queues
// start empty, and every site re-issues its in-flight request when the
// broadcast arrives.
func (nd *Node) regenerate(r resource.ID, now sim.Time) {
	nd.stats.Regens++
	newE := nd.curEpoch[r] + 1
	nd.curEpoch[r] = newE
	t := newToken(r, nd.env.N())
	if snap := nd.lastTok[r]; snap != nil {
		t.Counter = snap.Counter + 1
		copy(t.LastReqC, snap.LastReqC)
		copy(t.LastCS, snap.LastCS)
		nd.snapFree = append(nd.snapFree, snap)
	}
	t.Epoch = newE
	nd.lastTok[r] = t
	nd.owned.Add(r)
	nd.tokDir[r] = network.None
	nd.stewardDeadline[r] = 0
	nd.regenOwner[r] = nd.self()
	nd.grantLease(r, now+nd.opt.LeaseTTL)
	self := nd.self()
	for i := 0; i < nd.env.N(); i++ {
		if to := network.NodeID(i); to != self {
			nd.env.Send(to, regenMsg{R: r, Epoch: newE, Owner: self})
		}
	}
	// The reborn token serves local history right away; scanQueues in
	// Tick's caller-free context would not run otherwise.
	nd.replayPending(t)
	nd.scanQueues()
}

// onRegen applies a regeneration announcement: fence any stale local
// ownership, re-aim the father pointer, and re-issue whatever request
// of ours was in flight toward the dead token.
func (nd *Node) onRegen(rg regenMsg) {
	r := rg.R
	if rg.Epoch < nd.curEpoch[r] {
		return // an older regeneration resurfacing; already superseded
	}
	// Same-epoch duplicates (a steward re-announcing to a stale
	// heartbeater) re-run everything below; each step is idempotent.
	nd.curEpoch[r] = rg.Epoch
	nd.regenOwner[r] = rg.Owner
	if nd.owned.Has(r) && nd.lastTok[r].Epoch < rg.Epoch {
		// We are the fenced ex-holder: ownership is gone, the full old
		// token collapses to a stale snapshot (its queue and loans are
		// re-issued by their initiators on this same broadcast).
		nd.stats.Fenced++
		nd.owned.Remove(r)
		nd.lent.Remove(r)
		nd.lastTok[r] = nd.lastTok[r].snapshotInto(nil)
	}
	if rg.Owner != nd.self() && !nd.owned.Has(r) {
		nd.tokDir[r] = rg.Owner
		nd.leaseUntil[r] = 0
		nd.leaseLapsed[r] = false
	}
	// Re-issue the in-flight request, if any: the dead token took every
	// queued claim with it.
	switch {
	case nd.entryHeld && nd.st != stInCS && nd.required.Has(r) && !nd.owned.Has(r):
		// An entry parked on a lapsed lease just lost one of its tokens
		// to the fence: chase the regenerated token.
		nd.reclaimParked(r)
	case nd.st == stWaitS && nd.cntNeeded.Has(r):
		nd.out.request(nd.tokDir[r], request{Kind: reqCnt, R: r, Init: nd.self(), ID: nd.curID})
	case nd.st == stWaitCS && nd.required.Has(r) && !nd.owned.Has(r):
		if nd.single {
			nd.out.request(nd.tokDir[r], request{Kind: reqCnt, R: r, Init: nd.self(), ID: nd.curID, Single: true})
		} else {
			nd.out.request(nd.tokDir[r], request{Kind: reqRes, R: r, Init: nd.self(), ID: nd.curID, Mark: nd.myMark})
		}
	}
}

// reclaimParked re-issues this node's claim on r after r's token was
// sent away while a lease-parked entry still needs it. The pre-lease
// protocol has no such window — an entry holding all its tokens enters
// the CS synchronously, so a token can never depart out from under it —
// but a parked entry holds tokens without using them, and serving a
// competing request from that position consumes no mark of ours: unless
// we re-issue here, no queue and no in-flight message records our
// interest and the entry is parked forever. The re-issued request rides
// to the token's new home (sendToken just re-aimed tokDir) and queues
// or is served under the ordinary priority rules.
func (nd *Node) reclaimParked(r resource.ID) {
	if !nd.entryHeld || nd.st == stInCS || !nd.required.Has(r) || nd.owned.Has(r) {
		return
	}
	// An entry can park in any waiting state — stIdle (single-resource
	// fast path), stWaitS (every counter was local), stWaitCS — but it
	// always parked holding all its tokens, which means myMark was
	// computed. The reclaim is therefore uniform: fall back to the
	// waitCS path and chase the departed token with an ordinary marked
	// resource request.
	nd.st = stWaitCS
	nd.out.request(nd.tokDir[r], request{Kind: reqRes, R: r, Init: nd.self(), ID: nd.curID, Mark: nd.myMark})
}

// Drain implements alg.Drainer: an orderly shutdown hands every owned
// token somewhere useful instead of taking it to the grave — the queue
// head if one waits, else the steward, else the next site around the
// ring. With leases armed this avoids a 4×TTL regeneration stall;
// without, it is the only thing standing between a restart and a
// wedged resource.
func (nd *Node) Drain() {
	if nd.env.N() == 1 {
		return
	}
	nd.ids = nd.owned.AppendMembers(nd.ids)
	for _, r := range nd.ids {
		if nd.st == stInCS && nd.required.Has(r) {
			continue // an active critical section cannot be handed off
		}
		t := nd.lastTok[r]
		var to network.NodeID
		if head, ok := t.Queue.Head(); ok && head.Site != nd.self() {
			t.Queue.PopHead()
			to = head.Site
		} else if s := nd.steward(r); s != nd.self() {
			to = s
		} else {
			to = network.NodeID((int(nd.self()) + 1) % nd.env.N())
		}
		nd.stats.Drained++
		nd.sendToken(to, r)
	}
	nd.flushOwn()
}
