package core

import (
	"fmt"

	"mralloc/internal/alg"
	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// state is the per-process machine state of §4.1 / Figure 2.
type state uint8

const (
	stIdle   state = iota // not requesting
	stWaitS               // waiting for counter values
	stWaitCS              // waiting for the right to access all resources
	stInCS                // in critical section
)

func (s state) String() string {
	switch s {
	case stIdle:
		return "Idle"
	case stWaitS:
		return "waitS"
	case stWaitCS:
		return "waitCS"
	case stInCS:
		return "inCS"
	}
	return "?"
}

// pruneThreshold bounds the per-resource pendingReq history: past it,
// entries provably obsolete under the stale local snapshot are dropped.
const pruneThreshold = 128

// Node is one site of the algorithm. All fields map one-to-one to the
// pseudo-code's local variables (Figure 9).
type Node struct {
	env  alg.Env
	opt  Options
	mark MarkFunc

	st        state
	tokDir    []network.NodeID // father per resource; None when owner
	lastTok   []*token         // authoritative iff owned; else stale snapshot
	owned     resource.Set     // TOwned
	required  resource.Set     // TRequired
	cntNeeded resource.Set     // CntNeeded
	lent      resource.Set     // TLent
	myVector  []int64          // MyVector
	scratch   []int64          // scratch vector for single-entry marks
	myMark    float64          // A(MyVector), cached entering waitCS
	curID     int64            // curId
	loanAsked bool
	single    bool // current request took the §4.6.1 fast path

	pending [][]request // pendingReq, per resource
	out     outbox
	stats   Counters

	// Reusable hot-path scratch. ids snapshots a set for iteration in
	// Release/scanQueues/processLoanQueues (never nested with each
	// other); lendIDs is canLend's own snapshot, which IS reached from
	// inside a processLoanQueues iteration. miss holds maybeAskLoan's
	// missing-set computation.
	ids     []resource.ID
	lendIDs []resource.ID
	miss    resource.Set

	// snapFree recycles stale token snapshots: sendToken needs one per
	// transfer, and the one an arriving token displaces in processUpdate
	// never escapes the node, so they cycle through this free list
	// instead of allocating two N-sized stamp arrays per transfer.
	snapFree []*token
}

// Counters exposes protocol-internal event counts that never cross the
// wire — how often the loan machinery and the optimizations actually
// fired. Tests and the ablation experiments read them.
type Counters struct {
	LoanAsks     int // ReqLoan initiations (pseudo line 249)
	LoansGranted int // successful canLend decisions
	LoanReturns  int // borrowed tokens bounced back (failed loans)
	Yields       int // tokens yielded to a higher-priority request
	SingleFast   int // requests served through the §4.6.1 fast path
}

// Counters returns a snapshot of the node's internal event counts.
func (nd *Node) Counters() Counters { return nd.stats }

// NewFactory builds the factory for driver.Run: n sites over m
// resources, site 0 initially owning every token ("elected node").
func NewFactory(opt Options) alg.Factory {
	return func(n, m int) []alg.Node {
		nodes := make([]alg.Node, n)
		for i := range nodes {
			nodes[i] = &Node{opt: opt, mark: opt.mark()}
		}
		return nodes
	}
}

// Attach implements alg.Node (pseudo-code Initialization).
func (nd *Node) Attach(env alg.Env) {
	nd.env = env
	n, m := env.N(), env.M()
	nd.tokDir = make([]network.NodeID, m)
	nd.lastTok = make([]*token, m)
	nd.owned = resource.NewSet(m)
	nd.required = resource.NewSet(m)
	nd.cntNeeded = resource.NewSet(m)
	nd.lent = resource.NewSet(m)
	nd.myVector = make([]int64, m)
	nd.scratch = make([]int64, m)
	nd.pending = make([][]request, m)
	nd.miss = resource.NewSet(m)
	const elected network.NodeID = 0
	for r := 0; r < m; r++ {
		if env.ID() == elected {
			nd.tokDir[r] = network.None
			nd.lastTok[r] = newToken(resource.ID(r), n)
			nd.owned.Add(resource.ID(r))
		} else {
			nd.tokDir[r] = elected
		}
	}
}

func (nd *Node) self() network.NodeID { return nd.env.ID() }

func (nd *Node) myRef() reqRef {
	return reqRef{Site: nd.self(), ID: nd.curID, Mark: nd.myMark}
}

// markSingle applies A to a vector whose only non-zero entry is val at
// position r — what the root computes in the §4.6.1 fast path.
func (nd *Node) markSingle(r resource.ID, val int64) float64 {
	nd.scratch[r] = val
	m := nd.mark(nd.scratch)
	nd.scratch[r] = 0
	return m
}

// obsolete implements the §4.2.1 staleness test against a token (or a
// stale snapshot, which is conservative: stamps only grow).
func (nd *Node) obsolete(req request, t *token) bool {
	if t == nil {
		return false
	}
	if req.ID <= t.LastCS[req.Init] {
		return true
	}
	if req.Kind == reqCnt && req.ID <= t.LastReqC[req.Init] {
		return true
	}
	return false
}

// flush ends an activation, transmitting buffered messages. visited is
// the visited-sites set stamped on request batches (§4.2.1).
func (nd *Node) flush(visited []network.NodeID) {
	nd.out.flush(nd.env, visited, !nd.opt.DisableAggregation)
}

func (nd *Node) flushOwn() {
	nd.flush([]network.NodeID{nd.self()})
}

// sendToken transfers ownership of r's token to another site: the
// authoritative token rides the wire, a stale snapshot stays behind for
// obsolescence pruning, and the father pointer follows the token.
func (nd *Node) sendToken(to network.NodeID, r resource.ID) {
	if to == nd.self() {
		panic(fmt.Sprintf("core: s%d sending token %d to itself", nd.self(), r))
	}
	t := nd.lastTok[r]
	nd.owned.Remove(r)
	var spare *token
	if n := len(nd.snapFree); n > 0 {
		spare = nd.snapFree[n-1]
		nd.snapFree[n-1] = nil
		nd.snapFree = nd.snapFree[:n-1]
	}
	nd.lastTok[r] = t.snapshotInto(spare)
	nd.tokDir[r] = to
	nd.out.token(to, t)
}

// Request implements alg.Node (pseudo-code Request_CS).
func (nd *Node) Request(rs resource.Set) {
	if nd.st != stIdle {
		panic(fmt.Sprintf("core: s%d requested in state %v", nd.self(), nd.st))
	}
	nd.curID++
	nd.required.CopyFrom(rs)
	nd.loanAsked = false
	nd.single = false

	// §4.6.1: a single-resource request skips the counter round-trip;
	// the root applies A itself and treats the ReqCnt as a ReqRes.
	if !nd.opt.DisableSingleResOpt && rs.Len() == 1 {
		nd.stats.SingleFast++
		r := rs.Min()
		if nd.owned.Has(r) {
			t := nd.lastTok[r]
			nd.myVector[r] = t.Counter
			t.LastReqC[nd.self()] = nd.curID
			t.Counter++
			nd.enterCS()
			return
		}
		nd.single = true
		nd.st = stWaitCS
		nd.cntNeeded.Add(r) // the arriving token will assign our counter
		nd.out.request(nd.tokDir[r], request{Kind: reqCnt, R: r, Init: nd.self(), ID: nd.curID, Single: true})
		nd.flushOwn()
		return
	}

	nd.st = stWaitS
	missingCnt := false
	nd.required.ForEach(func(r resource.ID) {
		if nd.owned.Has(r) {
			t := nd.lastTok[r]
			nd.myVector[r] = t.Counter
			t.Counter++
		} else {
			missingCnt = true
			nd.cntNeeded.Add(r)
			nd.out.request(nd.tokDir[r], request{Kind: reqCnt, R: r, Init: nd.self(), ID: nd.curID})
		}
	})
	nd.flushOwn()
	if !missingCnt {
		// Every counter was local, which means every token is: enter.
		nd.myMark = nd.mark(nd.myVector)
		nd.enterCS()
	}
}

func (nd *Node) enterCS() {
	if !nd.required.SubsetOf(nd.owned) {
		panic(fmt.Sprintf("core: s%d entering CS while missing %v", nd.self(), nd.required.Diff(nd.owned)))
	}
	nd.st = stInCS
	nd.env.Granted()
}

// processCntNeededEmpty is the waitS → waitCS transition: all counter
// values are known, so compute A and ask for every missing token.
func (nd *Node) processCntNeededEmpty() {
	nd.st = stWaitCS
	nd.myMark = nd.mark(nd.myVector)
	sent := false
	nd.required.ForEach(func(r resource.ID) {
		if !nd.owned.Has(r) {
			sent = true
			nd.out.request(nd.tokDir[r], request{
				Kind: reqRes, R: r, Init: nd.self(), ID: nd.curID, Mark: nd.myMark,
			})
		}
	})
	if !sent {
		// Defensive: every token arrived while we were still in waitS.
		nd.enterCS()
	}
}

// Release implements alg.Node (pseudo-code Release_CS).
func (nd *Node) Release() {
	if nd.st != stInCS {
		panic(fmt.Sprintf("core: s%d released in state %v", nd.self(), nd.st))
	}
	nd.st = stIdle
	nd.loanAsked = false
	nd.single = false
	nd.ids = nd.required.AppendMembers(nd.ids)
	for _, r := range nd.ids {
		t := nd.lastTok[r]
		t.LastCS[nd.self()] = nd.curID
		if t.Lender != network.None && t.Lender != nd.self() {
			// Borrowed: return straight to the lender, dropping any
			// stale queue entry of the lender itself (it owns the
			// token again the moment it arrives).
			lender := t.Lender
			t.Lender = network.None
			t.Queue.RemoveSite(lender)
			nd.sendToken(lender, r)
			continue
		}
		if head, ok := t.Queue.Head(); ok {
			if head.Site == nd.self() {
				panic(fmt.Sprintf("core: s%d is head of its own queue for %d", nd.self(), r))
			}
			t.Queue.PopHead()
			nd.sendToken(head.Site, r)
		}
	}
	nd.required.Clear()
	for i := range nd.myVector {
		nd.myVector[i] = 0
	}
	nd.flushOwn()
}

// Deliver implements alg.Node, dispatching the three receive handlers
// of Figure 12.
func (nd *Node) Deliver(from network.NodeID, m network.Message) {
	switch msg := m.(type) {
	case reqBatch:
		nd.onRequests(msg)
		if len(nd.out.reqs) > 0 {
			// Only build the forwarded visited set when a request batch
			// is actually being forwarded; an owned batch (wire-decoded,
			// or single-destination in process) extends in place.
			nd.flush(visitedAdd(msg.Visited, nd.self(), msg.owned))
		} else {
			nd.flush(nil)
		}
	case respBatch:
		nd.onCounters(from, msg.Counters)
		if len(msg.Tokens) > 0 {
			nd.onTokens(msg.Tokens)
		} else if nd.st == stWaitS && nd.cntNeeded.Empty() {
			nd.processCntNeededEmpty()
		}
		nd.flushOwn()
	default:
		panic(fmt.Sprintf("core: unexpected message %T", m))
	}
}

// onRequests implements "Receive Request" (pseudo lines 159-189).
func (nd *Node) onRequests(batch reqBatch) {
	for _, req := range batch.Reqs {
		r := req.R
		if nd.obsolete(req, nd.lastTok[r]) {
			continue
		}
		if nd.owned.Has(r) {
			nd.handleOwnedRequest(req)
			continue
		}
		// Not the owner: record in the local history, then forward
		// unless an optimization or the visited set stops us.
		nd.storePending(r, req)
		if nd.forwardStop(req) {
			continue
		}
		if visitedContains(batch.Visited, nd.tokDir[r]) {
			continue // §4.2.1: the token is heading to a visited site
		}
		nd.out.request(nd.tokDir[r], req)
	}
}

// forwardStop is optimization §4.6.2: stop forwarding a ReqRes when we
// know we will receive the token before the requester — either our own
// pending request for r has priority, or we lent the token and it must
// come back. The stored pendingReq copy is replayed on token arrival.
func (nd *Node) forwardStop(req request) bool {
	if nd.opt.DisableForwardStop || req.Kind != reqRes {
		return false
	}
	if nd.lent.Has(req.R) {
		return true
	}
	return !nd.single && nd.st == stWaitCS && nd.required.Has(req.R) &&
		nd.myRef().precedes(req.ref())
}

// storePending appends to the §4.2.1 local history, deduplicating and
// pruning provably obsolete entries when the history grows.
func (nd *Node) storePending(r resource.ID, req request) {
	for _, x := range nd.pending[r] {
		if x.Kind == req.Kind && x.Init == req.Init && x.ID == req.ID {
			return
		}
	}
	if len(nd.pending[r]) >= pruneThreshold {
		if snap := nd.lastTok[r]; snap != nil {
			kept := nd.pending[r][:0]
			for _, x := range nd.pending[r] {
				if !nd.obsolete(x, snap) {
					kept = append(kept, x)
				}
			}
			nd.pending[r] = kept
		}
	}
	nd.pending[r] = append(nd.pending[r], req)
}

// handleOwnedRequest decides a live request at the token owner
// (pseudo lines 167-184).
func (nd *Node) handleOwnedRequest(req request) {
	r := req.R
	t := nd.lastTok[r]
	isCnt := req.Kind == reqCnt && !req.Single

	switch {
	case req.Kind == reqLoan:
		nd.processReqLoan(req)

	case !nd.required.Has(r) || (nd.st == stWaitS && !isCnt):
		// Not competing for r (or still collecting counters and the
		// request wants the token): hand the token over directly.
		nd.sendToken(req.Init, r)

	case isCnt:
		// Competing for r but counters are cheap: answer and keep.
		t.LastReqC[req.Init] = req.ID
		nd.out.counter(req.Init, counterVal{R: r, Val: t.Counter, ID: req.ID})
		t.Counter++

	default:
		// A ReqRes (or a single fast-path ReqCnt converted here) while
		// we compete for r in waitCS or inCS.
		e := req.ref()
		if req.Single {
			t.LastReqC[req.Init] = req.ID
			e.Mark = nd.markSingle(r, t.Counter)
			t.Counter++
		}
		if t.Queue.contains(e.Site, e.ID) {
			return
		}
		if nd.st == stWaitCS && e.precedes(nd.myRef()) {
			// The newcomer outranks us: queue ourselves, yield.
			nd.stats.Yields++
			t.Queue.Insert(nd.myRef())
			nd.sendToken(e.Site, r)
		} else {
			t.Queue.Insert(e)
		}
	}
}

// contains reports queue membership by (Site, ID).
func (q wqueue) contains(s network.NodeID, id int64) bool {
	for _, x := range q {
		if x.Site == s && x.ID == id {
			return true
		}
	}
	return false
}

// canLend evaluates the five lending conditions of §4.5 (pseudo lines
// 117-132).
func (nd *Node) canLend(req request) bool {
	if !req.Missing.SubsetOf(nd.owned) {
		return false
	}
	nd.lendIDs = nd.owned.AppendMembers(nd.lendIDs)
	for _, r := range nd.lendIDs {
		if nd.lastTok[r].Lender != network.None {
			return false // we hold borrowed tokens ourselves
		}
	}
	if !nd.lent.Empty() || nd.st == stInCS {
		return false
	}
	if nd.st == stWaitCS {
		return !nd.loanAsked || req.ref().precedes(nd.myRef())
	}
	return true
}

// processReqLoan decides a loan request at the token owner (pseudo
// lines 190-207).
func (nd *Node) processReqLoan(req request) {
	if req.Init == nd.self() || nd.obsolete(req, nd.lastTok[req.R]) {
		// Own loan requests are moot once the token is here.
		return
	}
	if nd.canLend(req) {
		nd.stats.LoansGranted++
		nd.lent = req.Missing.Clone()
		self := nd.self()
		req.Missing.ForEach(func(r resource.ID) {
			t := nd.lastTok[r]
			t.Lender = self
			// The borrower is served through the loan: its queued
			// ReqRes entries and duplicate loan entries go away.
			t.Queue.RemoveSite(req.Init)
			t.removeLoans(req.Init)
			nd.sendToken(req.Init, r)
		})
		return
	}
	if !nd.required.Has(req.R) || nd.st == stWaitS {
		nd.sendToken(req.Init, req.R)
		return
	}
	t := nd.lastTok[req.R]
	if !t.hasLoan(req.ref(), req.R) {
		t.Loans = append(t.Loans, loanEntry{Ref: req.ref(), R: req.R, Missing: req.Missing})
	}
}

// onCounters implements "Receive Counter" (pseudo lines 255-262); the
// caller handles the CntNeeded-empty transition.
func (nd *Node) onCounters(from network.NodeID, cnts []counterVal) {
	for _, c := range cnts {
		if c.ID != nd.curID || !nd.cntNeeded.Has(c.R) {
			continue // stale reply (hardening deviation 1)
		}
		nd.myVector[c.R] = c.Val
		nd.cntNeeded.Remove(c.R)
		if !nd.opt.DisableShortcut {
			nd.tokDir[c.R] = from // §4.6.2: the replier held the token
		}
	}
}

// onTokens implements "Receive Token" (pseudo lines 208-254).
func (nd *Node) onTokens(toks []*token) {
	for _, t := range toks {
		nd.processUpdate(t)
	}

	waiting := nd.st == stWaitS || nd.st == stWaitCS
	if waiting && nd.required.SubsetOf(nd.owned) {
		nd.enterCS()
	} else if waiting {
		// Any borrowed token we cannot use right now means the loan
		// failed (we yielded other tokens in the meantime): bounce the
		// borrowed tokens straight back to the lender and restore our
		// queue position (hardening deviation 4).
		returned := false
		for _, r := range nd.owned.Members() {
			t := nd.lastTok[r]
			if t.Lender == network.None || t.Lender == nd.self() {
				continue
			}
			lender := t.Lender
			nd.sendToken(lender, r)
			nd.stats.LoanReturns++
			returned = true
			if nd.st == stWaitCS && nd.required.Has(r) {
				nd.out.request(nd.tokDir[r], request{
					Kind: reqRes, R: r, Init: nd.self(), ID: nd.curID, Mark: nd.myMark,
				})
			}
		}
		if returned {
			nd.loanAsked = false
		}
	}

	if nd.st == stWaitS && nd.cntNeeded.Empty() {
		nd.processCntNeededEmpty()
	}
	nd.scanQueues()
	nd.processLoanQueues()
	nd.maybeAskLoan()
}

// processUpdate installs an arriving token and replays the local
// history for its resource (pseudo lines 133-158).
func (nd *Node) processUpdate(t *token) {
	r := t.R
	self := nd.self()
	if t.Lender == self {
		t.Lender = network.None // returned home (hardening deviation 2)
	}
	// Owning the token serves us; stale replayed entries of our own —
	// queued ReqRes or a ReqLoan from a failed loan round — must not
	// survive into our own token, or a later processLoanQueues could
	// try to lend the token to ourselves (hardening, see DESIGN.md).
	t.Queue.RemoveSite(self)
	t.removeLoans(self)
	if old := nd.lastTok[r]; old != nil {
		// The displaced stale snapshot is node-private; recycle it for
		// the next sendToken.
		nd.snapFree = append(nd.snapFree, old)
	}
	nd.lastTok[r] = t
	nd.owned.Add(r)
	nd.tokDir[r] = network.None
	if nd.cntNeeded.Has(r) {
		nd.cntNeeded.Remove(r)
		nd.myVector[r] = t.Counter
		t.LastReqC[self] = nd.curID // hardening deviation 1
		t.Counter++
		if nd.single {
			nd.myMark = nd.markSingle(r, nd.myVector[r])
		}
	}
	nd.lent.Remove(r)

	reqs := nd.pending[r]
	nd.pending[r] = nil
	for _, req := range reqs {
		if nd.obsolete(req, t) {
			continue
		}
		switch {
		case req.Kind == reqCnt && !req.Single:
			t.LastReqC[req.Init] = req.ID
			nd.out.counter(req.Init, counterVal{R: r, Val: t.Counter, ID: req.ID})
			t.Counter++
		case req.Kind == reqCnt && req.Single:
			t.LastReqC[req.Init] = req.ID
			e := req.ref()
			e.Mark = nd.markSingle(r, t.Counter)
			t.Counter++
			t.Queue.Insert(e)
		case req.Kind == reqRes:
			t.Queue.Insert(req.ref())
		case req.Kind == reqLoan:
			if !t.hasLoan(req.ref(), r) {
				t.Loans = append(t.Loans, loanEntry{Ref: req.ref(), R: r, Missing: req.Missing})
			}
		}
	}
}

// scanQueues re-examines the queues of owned tokens after an arrival
// (pseudo lines 226-238): in waitS we never hold a token against its
// queue; in waitCS we yield to higher-priority heads; tokens we do not
// compete for go to their head directly.
func (nd *Node) scanQueues() {
	nd.ids = nd.owned.AppendMembers(nd.ids)
	for _, r := range nd.ids {
		t := nd.lastTok[r]
		head, ok := t.Queue.Head()
		if !ok {
			continue
		}
		switch {
		case !nd.required.Has(r) || nd.st == stWaitS:
			t.Queue.PopHead()
			nd.sendToken(head.Site, r)
		case nd.st == stWaitCS:
			if head.precedes(nd.myRef()) {
				nd.stats.Yields++
				t.Queue.PopHead()
				t.Queue.Insert(nd.myRef())
				nd.sendToken(head.Site, r)
			}
		}
		// inCS and required: keep until Release.
	}
}

// processLoanQueues re-examines pending loans after an arrival (pseudo
// lines 241-247).
func (nd *Node) processLoanQueues() {
	if nd.st == stInCS {
		return
	}
	nd.ids = nd.owned.AppendMembers(nd.ids)
	for _, r := range nd.ids {
		t := nd.lastTok[r]
		if len(t.Loans) == 0 {
			continue
		}
		loans := t.Loans
		t.Loans = nil
		for _, l := range loans {
			if !nd.owned.Has(l.R) {
				continue // lent away earlier in this very scan
			}
			nd.processReqLoan(request{
				Kind: reqLoan, R: l.R, Init: l.Ref.Site, ID: l.Ref.ID,
				Mark: l.Ref.Mark, Missing: l.Missing,
			})
		}
	}
}

// maybeAskLoan initiates a loan request when few enough resources are
// missing (pseudo lines 248-252).
func (nd *Node) maybeAskLoan() {
	if !nd.opt.Loan || nd.st != stWaitCS || nd.loanAsked || nd.single {
		return
	}
	nd.miss.CopyFrom(nd.required)
	nd.miss.DiffWith(nd.owned)
	if nd.miss.Empty() || nd.miss.Len() > nd.opt.threshold() {
		return
	}
	nd.loanAsked = true
	nd.stats.LoanAsks++
	// One copy of the missing set rides every ReqLoan of this round.
	// Receivers store and forward it by reference, so it must be
	// treated as immutable from here on — nothing may mutate a
	// request's Missing in place.
	missing := nd.miss.Clone()
	nd.miss.ForEach(func(r resource.ID) {
		nd.out.request(nd.tokDir[r], request{
			Kind: reqLoan, R: r, Init: nd.self(), ID: nd.curID,
			Mark: nd.myMark, Missing: missing,
		})
	})
}
