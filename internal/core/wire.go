package core

import (
	"fmt"

	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// reqKind discriminates the three request message types of §4.2.
type reqKind uint8

const (
	reqCnt  reqKind = iota // ask the current counter value
	reqRes                 // ask the resource token
	reqLoan                // ask a loan of the missing resources
)

func (k reqKind) String() string {
	switch k {
	case reqCnt:
		return "ReqCnt"
	case reqRes:
		return "ReqRes"
	case reqLoan:
		return "ReqLoan"
	}
	return "Req?"
}

// request is one request travelling toward a token holder.
type request struct {
	Kind reqKind
	R    resource.ID
	Init network.NodeID
	ID   int64
	// Mark is A's value for reqRes/reqLoan.
	Mark float64
	// Missing is the full missing set of a reqLoan.
	Missing resource.Set
	// Single marks the §4.6.1 fast path: a reqCnt the root converts
	// into a reqRes by applying A itself.
	Single bool
}

func (r request) ref() reqRef { return reqRef{Site: r.Init, ID: r.ID, Mark: r.Mark} }

func (r request) String() string {
	return fmt.Sprintf("%v[r%d s%d#%d]", r.Kind, r.R, r.Init, r.ID)
}

// reqBatch aggregates request messages to one destination (§4.2.2).
// All requests in a batch share the visited-sites set of §4.2.1.
//
// owned reports that the receiver of this batch exclusively owns
// Visited's backing array and may extend it in place (visitedAdd). It
// never crosses the wire: the decoder sets it (a decoded slice aliases
// nothing), and the in-process fabrics deliver the flag the sender
// computed — true exactly when no sibling batch of the same
// aggregation flush shares the slice. See visitedAdd for the rule.
type reqBatch struct {
	Visited []network.NodeID
	Reqs    []request
	owned   bool
}

// Kind implements network.Message.
func (reqBatch) Kind() string { return "LASS.Request" }

func visitedContains(v []network.NodeID, s network.NodeID) bool {
	for _, x := range v {
		if x == s {
			return true
		}
	}
	return false
}

// visitedAdd returns v ∪ {s}. The aliasing rule: one aggregation flush
// hands the same visited slice to every destination's batch, and an
// in-process fabric delivers those batches by reference — so distinct
// receivers may hold aliases of v concurrently, and extending v in
// place (writing v's backing array at len(v)) would race with them.
// visitedAdd therefore copies unless the caller owns v's backing
// exclusively (owned: a batch the wire decoder materialized for this
// delivery, or one the sender flushed to a single destination), in
// which case spare capacity is reused and the forwarding hop allocates
// nothing. Either way the result is exclusively the caller's.
func visitedAdd(v []network.NodeID, s network.NodeID, owned bool) []network.NodeID {
	if visitedContains(v, s) {
		if owned {
			return v
		}
		// s is already a member, but the contract still promises an
		// exclusively-owned result — the caller's flush may mark it
		// owned for the next hop, so a shared v must not leak through.
		out := make([]network.NodeID, len(v), len(v)+2)
		copy(out, v)
		return out
	}
	if owned && cap(v) > len(v) {
		return append(v, s)
	}
	// One slot of headroom: if this batch reaches its next hop with
	// ownership intact, that hop's visitedAdd extends in place.
	out := make([]network.NodeID, len(v)+1, len(v)+2)
	copy(out, v)
	out[len(v)] = s
	return out
}

// counterVal is one Counter reply: the value assigned to request ID of
// the destination site for resource R. (The id is a hardening deviation;
// see the package comment.)
type counterVal struct {
	R   resource.ID
	Val int64
	ID  int64
}

// respBatch aggregates response messages — counter replies and tokens —
// to one destination (§4.2.2).
type respBatch struct {
	Counters []counterVal
	Tokens   []*token
}

// Kind implements network.Message.
func (respBatch) Kind() string { return "LASS.Response" }
