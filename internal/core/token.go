package core

import (
	"fmt"
	"sort"

	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// reqRef identifies one critical-section request of one site, with the
// mark A assigned to it. It is the element type of wQueue.
type reqRef struct {
	Site network.NodeID
	ID   int64
	Mark float64
}

// precedes implements the paper's total order "/": by mark, ties broken
// by the site order ≺.
func (a reqRef) precedes(b reqRef) bool {
	if a.Mark != b.Mark {
		return a.Mark < b.Mark
	}
	return a.Site < b.Site
}

func (a reqRef) String() string {
	return fmt.Sprintf("(s%d#%d m=%.3f)", a.Site, a.ID, a.Mark)
}

// wqueue is a waiting queue sorted by "/" with (Site, ID) dedup — the
// paper's wQueue. It is small (bounded by N pending requests), so a
// sorted slice beats anything fancier.
type wqueue []reqRef

// Insert adds e keeping order; it reports false if an entry with the
// same (Site, ID) is already present (pseudo-code line 154).
//
// Insert is on the token hot path (every request that reaches an owner
// competing for the resource lands here, and queues grow with N), so
// both the position and the duplicate check use binary search instead
// of the old full linear scans. Precondition making that sound: a
// request's Mark is assigned once, at initiation, and never changes —
// so a duplicate (Site, ID) can only sort where e sorts, i.e. inside
// the run of order-equal entries at the insertion point. Protocol code
// upholds this everywhere (the mark rides the request unchanged along
// every forwarding path); queues decoded off the wire are installed
// verbatim, not built through Insert, so hostile input cannot break
// the invariant here.
func (q *wqueue) Insert(e reqRef) bool {
	i := sort.Search(len(*q), func(k int) bool { return !(*q)[k].precedes(e) })
	for j := i; j < len(*q) && !e.precedes((*q)[j]); j++ {
		if (*q)[j].Site == e.Site && (*q)[j].ID == e.ID {
			return false
		}
	}
	*q = append(*q, reqRef{})
	copy((*q)[i+1:], (*q)[i:])
	(*q)[i] = e
	return true
}

// Head returns the minimum entry; ok is false when empty.
func (q wqueue) Head() (reqRef, bool) {
	if len(q) == 0 {
		return reqRef{}, false
	}
	return q[0], true
}

// PopHead removes and returns the minimum entry.
func (q *wqueue) PopHead() reqRef {
	h := (*q)[0]
	*q = append((*q)[:0], (*q)[1:]...)
	return h
}

// RemoveSite deletes every entry of the given site, reporting how many
// were removed (used when lending and when returning a borrowed token).
func (q *wqueue) RemoveSite(s network.NodeID) int {
	kept := (*q)[:0]
	removed := 0
	for _, x := range *q {
		if x.Site == s {
			removed++
		} else {
			kept = append(kept, x)
		}
	}
	*q = kept
	return removed
}

// loanEntry is one pending loan request stored in a token's wLoan.
type loanEntry struct {
	Ref     reqRef
	R       resource.ID
	Missing resource.Set
}

// token is the unique movable state of one resource (pseudo-code type
// Token): its counter, obsolescence stamps, waiting queue, pending
// loans and lender.
type token struct {
	R        resource.ID
	Counter  int64
	LastReqC []int64 // per site: last counter-request id answered
	LastCS   []int64 // per site: last critical-section id satisfied
	Queue    wqueue
	Loans    []loanEntry
	Lender   network.NodeID // None unless currently lent
	// Epoch is the token's authority generation. It starts at 0 and is
	// bumped only by lease-expiry regeneration (node.go): a resurfacing
	// copy of the token from a dead epoch is fenced at install instead
	// of splitting ownership. Distinct from the delta codec's stream
	// epoch (delta.go), which names encoder cache generations — Epoch
	// is protocol state and travels inside the token itself.
	Epoch int64
}

func newToken(r resource.ID, n int) *token {
	return &token{
		R:        r,
		Counter:  1,
		LastReqC: make([]int64, n),
		LastCS:   make([]int64, n),
		Lender:   network.None,
	}
}

// snapshotInto returns a stale copy safe to keep after the
// authoritative token is sent away: stamps and counter for conservative
// obsolescence pruning, no queues (they travel with the token). A
// recycled record of matching shape is reused; pass nil to allocate.
func (t *token) snapshotInto(s *token) *token {
	if s == nil || len(s.LastReqC) != len(t.LastReqC) {
		s = &token{
			LastReqC: make([]int64, len(t.LastReqC)),
			LastCS:   make([]int64, len(t.LastCS)),
		}
	}
	s.R = t.R
	s.Counter = t.Counter
	copy(s.LastReqC, t.LastReqC)
	copy(s.LastCS, t.LastCS)
	s.Queue = nil
	s.Loans = nil
	s.Lender = network.None
	s.Epoch = t.Epoch
	return s
}

// hasLoan reports whether a loan with the same (Site, ID, R) is queued.
func (t *token) hasLoan(ref reqRef, r resource.ID) bool {
	for _, l := range t.Loans {
		if l.Ref.Site == ref.Site && l.Ref.ID == ref.ID && l.R == r {
			return true
		}
	}
	return false
}

// removeLoans drops every loan entry of the given site.
func (t *token) removeLoans(s network.NodeID) {
	kept := t.Loans[:0]
	for _, l := range t.Loans {
		if l.Ref.Site != s {
			kept = append(kept, l)
		}
	}
	t.Loans = kept
}
