package core

import (
	"unsafe"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/wire"
)

// The wire codecs for the two LASS message kinds. Tokens travel inside
// LASS.Response batches, so the token layout — counter, obsolescence
// stamps, waiting queue, loan queue, lender — is part of the Response
// encoding. Field order is load-bearing: changing it is a wire break.

func init() {
	wire.Register("LASS.Request", encReqBatch, decReqBatch)
	wire.Register("LASS.Response", encRespBatch, decRespBatch)
	wire.RegisterSamples(codecSamples()...)
}

func encReqBatch(e *wire.Enc, m network.Message) {
	b := m.(reqBatch)
	e.Nodes(b.Visited)
	e.Uvarint(uint64(len(b.Reqs)))
	for _, r := range b.Reqs {
		e.Uvarint(uint64(r.Kind))
		e.Varint(int64(r.R))
		e.Node(r.Init)
		e.Varint(r.ID)
		e.F64(r.Mark)
		e.Set(r.Missing)
		e.Bool(r.Single)
	}
}

func decReqBatch(d *wire.Dec) network.Message {
	var b reqBatch
	// A decoded batch is exclusively the receiver's; one slot of
	// headroom lets the forwarding hop append itself to the visited
	// set in place (see visitedAdd's aliasing rule).
	b.Visited = d.NodesPad(1)
	b.owned = true
	n := d.Count()
	if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(request{}))) {
		return b
	}
	b.Reqs = make([]request, 0, n)
	for i := 0; i < n; i++ {
		var r request
		k := d.Uvarint()
		if k > uint64(reqLoan) {
			d.Fail("request kind %d out of range", k)
			return b
		}
		r.Kind = reqKind(k)
		r.R = d.Res()
		r.Init = d.Site()
		r.ID = d.Varint()
		r.Mark = d.F64()
		r.Missing = d.Set()
		r.Single = d.Bool()
		if r.Kind == reqLoan && r.Missing.Universe() == 0 {
			// A loan request always names its missing set; protocol
			// code runs set algebra on it, which panics on a universe
			// mismatch the zero value would smuggle past shape checks.
			d.Fail("loan request without a missing set")
		}
		if d.Err() != nil {
			return b
		}
		b.Reqs = append(b.Reqs, r)
	}
	return b
}

func encRespBatch(e *wire.Enc, m network.Message) {
	b := m.(respBatch)
	e.Uvarint(uint64(len(b.Counters)))
	for _, c := range b.Counters {
		e.Varint(int64(c.R))
		e.Varint(c.Val)
		e.Varint(c.ID)
	}
	e.Uvarint(uint64(len(b.Tokens)))
	for _, t := range b.Tokens {
		encToken(e, t)
	}
}

func decRespBatch(d *wire.Dec) network.Message {
	var b respBatch
	n := d.Count()
	if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(counterVal{}))) {
		return b
	}
	if n > 0 {
		b.Counters = make([]counterVal, 0, n)
		for i := 0; i < n; i++ {
			var c counterVal
			c.R = d.Res()
			c.Val = d.Varint()
			c.ID = d.Varint()
			if d.Err() != nil {
				return b
			}
			b.Counters = append(b.Counters, c)
		}
	}
	n = d.Count()
	if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(token{}))) {
		return b
	}
	if st := decDeltaState(d); st != nil {
		st.beginFrame() // each resource's token at most once per frame
	}
	if n > 0 {
		b.Tokens = make([]*token, 0, n)
		for i := 0; i < n; i++ {
			t := decToken(d)
			if d.Err() != nil {
				return b
			}
			b.Tokens = append(b.Tokens, t)
		}
	}
	return b
}

// encToken puts one token on the wire. Off-stream (and on streams
// without the token-delta control) it is the legacy snapshot layout;
// on a delta-capable stream it dispatches to the stateful delta
// encoder (delta.go), which ships a full snapshot the first time a
// resource's token crosses the stream and field deltas afterwards.
func encToken(e *wire.Enc, t *token) {
	if st := encDeltaState(e); st != nil {
		st.encode(e, t)
		return
	}
	encTokenSnap(e, t)
}

func decToken(d *wire.Dec) *token {
	if st := decDeltaState(d); st != nil {
		return st.decode(d)
	}
	return decTokenSnap(d)
}

// encTokenSnap is the legacy full-snapshot token layout. Field order
// is load-bearing: changing it is a wire break.
func encTokenSnap(e *wire.Enc, t *token) {
	e.Varint(int64(t.R))
	e.Varint(t.Counter)
	e.Int64s(t.LastReqC)
	e.Int64s(t.LastCS)
	e.Uvarint(uint64(len(t.Queue)))
	for _, q := range t.Queue {
		encRef(e, q)
	}
	e.Uvarint(uint64(len(t.Loans)))
	for _, l := range t.Loans {
		encRef(e, l.Ref)
		e.Varint(int64(l.R))
		e.Set(l.Missing)
	}
	e.Node(t.Lender)
	e.Varint(t.Epoch)
}

func decTokenSnap(d *wire.Dec) *token {
	t := &token{}
	t.R = d.Res()
	t.Counter = d.Varint()
	t.LastReqC = d.Int64s()
	t.LastCS = d.Int64s()
	// The stamp vectors are indexed by site id all over the node code;
	// under shape validation they must be exactly N long.
	if nn, _ := d.Shape(); nn > 0 && d.Err() == nil &&
		(len(t.LastReqC) != nn || len(t.LastCS) != nn) {
		d.Fail("token stamp vectors of %d/%d entries in a cluster of %d",
			len(t.LastReqC), len(t.LastCS), nn)
		return t
	}
	n := d.Count()
	if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(reqRef{}))) {
		return t
	}
	if n > 0 {
		t.Queue = make(wqueue, 0, n)
		for i := 0; i < n; i++ {
			r := decRef(d)
			if d.Err() != nil {
				return t
			}
			t.Queue = append(t.Queue, r)
		}
	}
	n = d.Count()
	if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(loanEntry{}))) {
		return t
	}
	if n > 0 {
		t.Loans = make([]loanEntry, 0, n)
		for i := 0; i < n; i++ {
			var l loanEntry
			l.Ref = decRef(d)
			l.R = d.Res()
			l.Missing = d.Set()
			if l.Missing.Universe() == 0 && d.Err() == nil {
				d.Fail("loan entry without a missing set")
			}
			if d.Err() != nil {
				return t
			}
			t.Loans = append(t.Loans, l)
		}
	}
	t.Lender = d.Node()
	t.Epoch = d.Varint()
	if t.Epoch < 0 && d.Err() == nil {
		d.Fail("negative token epoch %d", t.Epoch)
	}
	return t
}

func encRef(e *wire.Enc, r reqRef) {
	e.Node(r.Site)
	e.Varint(r.ID)
	e.F64(r.Mark)
}

func decRef(d *wire.Dec) reqRef {
	return reqRef{Site: d.Site(), ID: d.Varint(), Mark: d.F64()}
}

// codecSamples builds one representative message per shape the LASS
// protocol produces: plain and loan requests, counter replies, and a
// token carrying queue, loans and lender state.
func codecSamples() []network.Message {
	missing := resource.FromIDs(8, 2, 5)
	tok := newToken(3, 4)
	tok.Counter = 17
	tok.LastReqC[1] = 6
	tok.LastCS[2] = 5
	tok.Queue.Insert(reqRef{Site: 1, ID: 7, Mark: 2.5})
	tok.Queue.Insert(reqRef{Site: 3, ID: 4, Mark: 1.25})
	tok.Loans = append(tok.Loans, loanEntry{Ref: reqRef{Site: 2, ID: 9, Mark: 3}, R: 3, Missing: missing})
	tok.Lender = 2
	tok.Epoch = 2 // a regenerated token's bumped authority generation
	return []network.Message{
		reqBatch{
			Visited: []network.NodeID{0, 2},
			Reqs: []request{
				{Kind: reqCnt, R: 1, Init: 0, ID: 3},
				{Kind: reqCnt, R: 2, Init: 0, ID: 3, Single: true},
				{Kind: reqRes, R: 4, Init: 2, ID: 8, Mark: 1.5},
				{Kind: reqLoan, R: 5, Init: 1, ID: 2, Mark: 0.5, Missing: missing},
			},
		},
		reqBatch{},
		respBatch{
			Counters: []counterVal{{R: 1, Val: 42, ID: 3}, {R: 2, Val: 7, ID: 3}},
			Tokens:   []*token{tok, newToken(0, 4)},
		},
		respBatch{Counters: []counterVal{{R: 0, Val: 1, ID: 1}}},
	}
}
