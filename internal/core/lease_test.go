package core

import (
	"testing"

	"mralloc/internal/network"
	"mralloc/internal/sim"
)

// Lease, regeneration and fencing tests run on the deterministic script
// harness (script_test.go): virtual time, constant 600µs latency, and
// explicit Tick scheduling stand in for the live runtime's clock.

// leaseOpts arms leases with a 10ms TTL (heartbeats every ~3.3ms).
func leaseOpts() Options {
	o := WithoutLoan()
	o.LeaseTTL = 10 * sim.Millisecond
	return o
}

// tickAll schedules a Tick for every node each everyMs in (0, untilMs],
// skipping nodes the alive filter (nil = all alive) rejects — the
// harness equivalent of live.Config.Tick plus crash simulation.
func (h *scriptHarness) tickAll(everyMs, untilMs float64, alive func(i int) bool) {
	for t := everyMs; t <= untilMs; t += everyMs {
		h.at(t, func() {
			for i, nd := range h.nodes {
				if alive == nil || alive(i) {
					nd.Tick(h.eng.Now())
				}
			}
		})
	}
}

// crash makes node i disappear: its inbound messages are dropped and
// (by the caller's alive filter) its clock stops. Its in-memory state
// survives for a later "resurrection" via revive.
func (h *scriptHarness) crash(i int) {
	h.nw.Bind(network.NodeID(i), func(network.NodeID, network.Message) {})
}

func (h *scriptHarness) revive(i int) {
	h.nw.Bind(network.NodeID(i), h.nodes[i].Deliver)
}

// TestLeaseGatesEntry: with leases armed, even the genesis owner of
// every token may not enter its critical section before a heartbeat
// round establishes its leases — and must enter right after.
func TestLeaseGatesEntry(t *testing.T) {
	h := newScript(t, 2, 2, leaseOpts())
	h.tickAll(2, 30, nil)

	h.at(1, func() {
		h.nodes[0].Request(ids(2, 0, 1)) // owns both, but no lease yet
		if h.nodes[0].st == stInCS {
			t.Fatal("entered CS without any lease")
		}
		if !h.nodes[0].entryHeld {
			t.Fatal("entry not parked on the missing lease")
		}
	})
	// Resource 0 is self-stewarded (0 % 2), resource 1 is stewarded by
	// node 1: the first tick renews one locally and heartbeats the
	// other; the grant echo completes the pair one round-trip later.
	h.at(10, func() {
		if h.nodes[0].st != stInCS {
			t.Fatalf("state %v after heartbeat round, want inCS", h.nodes[0].st)
		}
		h.nodes[0].Release()
	})
	h.eng.Run()
	if got := h.nodes[0].Counters(); got.Heartbeats == 0 {
		t.Fatalf("no heartbeat sent: %+v", got)
	}
	if got := h.nodes[1].Counters(); got.LeaseGrants == 0 {
		t.Fatalf("steward granted nothing: %+v", got)
	}
}

// TestLeaseRegenAfterCrash is the headline recovery scenario: a token
// dies with its holder, the steward regenerates it after the lease
// silence window, and a request wedged on the dead holder completes.
func TestLeaseRegenAfterCrash(t *testing.T) {
	h := newScript(t, 3, 3, leaseOpts())
	dead := false
	h.tickAll(2, 400, func(i int) bool { return i != 1 || !dead })

	// Move r0's token to node1 (steward of r0 is node0 = 0 % 3).
	h.at(5, func() { h.nodes[1].Request(ids(3, 0)) })
	h.at(20, func() {
		if h.nodes[1].st != stInCS {
			t.Fatalf("setup: node1 state %v", h.nodes[1].st)
		}
		h.nodes[1].Release()
	})

	// Crash the holder; the token of r0 is gone with it.
	h.at(50, func() { dead = true; h.crash(1) })

	// A request that routes through the dead holder wedges...
	base := 0
	h.at(60, func() {
		base = len(h.grants)
		h.nodes[2].Request(ids(3, 0))
	})
	h.at(85, func() {
		if len(h.grantedSince(base)) != 0 {
			t.Fatal("granted before the lease silence window elapsed — regeneration fired early")
		}
	})

	// ...until the steward's 4×TTL deadline passes (last heartbeat at
	// ~t=50, so regeneration lands near t=90) and the regenerated token
	// serves the replayed request.
	h.at(150, func() {
		got := h.grantedSince(base)
		if len(got) != 1 || got[0] != 2 {
			t.Fatalf("wedged request not served after regeneration: grants=%v, node2 state %v, node0 counters %+v",
				got, h.nodes[2].st, h.nodes[0].Counters())
		}
		if h.nodes[0].Counters().Regens != 1 {
			t.Fatalf("steward counters: %+v, want exactly one regeneration", h.nodes[0].Counters())
		}
		if h.nodes[2].lastTok[0].Epoch != 1 {
			t.Fatalf("served token epoch %d, want 1", h.nodes[2].lastTok[0].Epoch)
		}
		h.nodes[2].Release()
	})
	h.eng.Run()
}

// TestStaleHolderFencedOnResurface: the crashed ex-holder comes back
// after its token was regenerated. Its stale-epoch heartbeat must be
// answered with the regeneration announcement, after which it fences
// its own dead ownership instead of competing with the live token.
func TestStaleHolderFencedOnResurface(t *testing.T) {
	h := newScript(t, 3, 3, leaseOpts())
	dead := false
	h.tickAll(2, 400, func(i int) bool { return i != 1 || !dead })

	h.at(5, func() { h.nodes[1].Request(ids(3, 0)) })
	h.at(20, func() { h.nodes[1].Release() })
	h.at(50, func() { dead = true; h.crash(1) })

	// Regeneration happens around t=90; resurrect well after.
	h.at(200, func() {
		if h.nodes[0].Counters().Regens != 1 {
			t.Fatalf("precondition: %+v", h.nodes[0].Counters())
		}
		if !h.nodes[1].owned.Has(0) {
			t.Fatal("precondition: resurrected node must still believe it owns r0")
		}
		dead = false
		h.revive(1)
	})
	// Its next heartbeat carries epoch 0; the steward's regen reply
	// fences it.
	h.at(250, func() {
		nd := h.nodes[1]
		if nd.owned.Has(0) {
			t.Fatal("stale holder kept ownership after the fence")
		}
		if nd.Counters().Fenced == 0 {
			t.Fatalf("no fence recorded: %+v", nd.Counters())
		}
		if nd.curEpoch[0] != 1 {
			t.Fatalf("stale holder epoch view %d, want 1", nd.curEpoch[0])
		}
		// And it can still acquire the resource through the live token.
		nd.Request(ids(3, 0))
	})
	h.at(300, func() {
		if h.nodes[1].st != stInCS {
			t.Fatalf("resurrected node wedged: state %v", h.nodes[1].st)
		}
		h.nodes[1].Release()
	})
	h.eng.Run()
}

// TestFencedMidParkFallsBack: a locally-satisfied entry parked on a
// lapsed lease loses its token to a regeneration; the node must fall
// back to the remote request path and still complete.
func TestFencedMidParkFallsBack(t *testing.T) {
	h := newScript(t, 2, 2, leaseOpts())
	wedged := false
	// Node 0's clock stops at t=30 — it keeps receiving messages (a
	// partition of its *steward traffic* only would be equivalent) but
	// stops heartbeating, so node1 (steward of r1) regenerates r1.
	h.tickAll(2, 600, func(i int) bool { return i != 0 || !wedged })

	h.at(1, func() { h.nodes[0].Request(ids(2, 0, 1)) })
	h.at(10, func() { h.nodes[0].Release() })
	h.at(30, func() { wedged = true })

	// With its leases lapsing and no ticks, a fresh local request parks.
	h.at(60, func() {
		h.nodes[0].Request(ids(2, 1))
		if h.nodes[0].st == stInCS {
			t.Fatal("entered CS on a lapsed lease")
		}
	})
	// Node1 regenerates r1 around t ≈ 30+40; the broadcast both fences
	// node0 and makes it re-issue the parked entry remotely.
	h.at(200, func() {
		if h.nodes[1].Counters().Regens == 0 {
			t.Fatalf("steward never regenerated: %+v", h.nodes[1].Counters())
		}
		if h.nodes[0].st != stInCS {
			t.Fatalf("parked entry never recovered: state %v, counters %+v",
				h.nodes[0].st, h.nodes[0].Counters())
		}
		h.nodes[0].Release()
	})
	h.eng.Run()
	if h.nodes[0].Counters().Fenced == 0 {
		t.Fatalf("no fence recorded on node0: %+v", h.nodes[0].Counters())
	}
}

// TestProcessUpdateFencesStaleEpoch: unit-level fencing — a token from
// a dead epoch arriving at a node that has witnessed a newer one is
// dropped at install, not merged.
func TestProcessUpdateFencesStaleEpoch(t *testing.T) {
	h := newScript(t, 2, 2, leaseOpts())
	nd := h.nodes[1]
	nd.curEpoch[0] = 2
	stale := newToken(0, 2)
	stale.Epoch = 1
	nd.processUpdate(stale)
	if nd.owned.Has(0) {
		t.Fatal("stale-epoch token installed")
	}
	if nd.stats.Fenced != 1 {
		t.Fatalf("Fenced = %d, want 1", nd.stats.Fenced)
	}
	fresh := newToken(0, 2)
	fresh.Epoch = 2
	nd.processUpdate(fresh)
	if !nd.owned.Has(0) {
		t.Fatal("current-epoch token rejected")
	}
}

// TestDrainHandsOffTokens: an orderly Drain moves every owned token to
// its steward (or the next site when the drainer is the steward), so a
// restart never wedges a resource even without leases.
func TestDrainHandsOffTokens(t *testing.T) {
	h := newScript(t, 3, 3, WithoutLoan())
	h.at(1, func() { h.nodes[0].Drain() })
	h.eng.Run()
	nd := h.nodes[0]
	if !nd.owned.Empty() {
		t.Fatalf("drained node still owns %v", nd.owned)
	}
	if nd.Counters().Drained != 3 {
		t.Fatalf("Drained = %d, want 3", nd.Counters().Drained)
	}
	// Steward placement: r0 → steward is node0 itself → next site 1;
	// r1 → node1; r2 → node2.
	if !h.nodes[1].owned.Has(0) || !h.nodes[1].owned.Has(1) || !h.nodes[2].owned.Has(2) {
		t.Fatalf("tokens landed at owned sets %v / %v / %v",
			h.nodes[0].owned, h.nodes[1].owned, h.nodes[2].owned)
	}
	// The cluster still works: acquire through the moved tokens.
	h.at(2, func() { h.nodes[2].Request(ids(3, 0, 1, 2)) })
	h.eng.Run()
	if h.nodes[2].st != stInCS {
		t.Fatalf("post-drain acquire wedged: %v", h.nodes[2].st)
	}
	h.nodes[2].Release()
}

// TestDrainQueueHeadWins: a waiting queue head outranks the steward as
// the drain destination — the handoff should serve the waiter directly.
func TestDrainQueueHeadWins(t *testing.T) {
	h := newScript(t, 3, 3, WithoutLoan())
	// node1 holds r1 in CS; node2 queues behind it.
	h.at(1, func() { h.nodes[1].Request(ids(3, 1)) })
	h.at(10, func() { h.nodes[2].Request(ids(3, 1)) })
	h.at(20, func() {
		if !h.nodes[1].lastTok[1].Queue.contains(2, h.nodes[2].curID) {
			t.Fatalf("setup: node2 not queued at node1: %v", h.nodes[1].lastTok[1].Queue)
		}
		// node1 releases, then drains: the token must go to node2 (the
		// released queue head service already does this; drain the rest).
		h.nodes[1].Release()
	})
	h.eng.Run()
	if h.nodes[2].st != stInCS {
		t.Fatalf("queue head not served: %v", h.nodes[2].st)
	}
	h.nodes[2].Release()
}

// TestParkedEntryReclaimsStolenToken: node0 parks its genesis-owned
// entry on the missing lease; before the heartbeat round completes,
// node1's competing request takes the tokens away. The reclaim path
// must re-register node0's interest or the entry wedges forever.
func TestParkedEntryReclaimsStolenToken(t *testing.T) {
	h := newScript(t, 2, 3, leaseOpts())
	h.tickAll(2, 200, nil)

	h.at(0.1, func() {
		h.nodes[0].Request(ids(3, 0, 1, 2))
		if h.nodes[0].st == stInCS {
			t.Fatal("entered CS without a lease")
		}
	})
	// Node1 requests the same set while node0 is parked leaseless.
	h.at(0.2, func() { h.nodes[1].Request(ids(3, 0, 1, 2)) })
	// Whoever is granted releases on the next sweep, so both entries
	// get their turn in either order.
	for ms := 5.0; ms <= 180; ms += 5 {
		h.at(ms, func() {
			for _, nd := range h.nodes {
				if nd.st == stInCS {
					nd.Release()
				}
			}
		})
	}
	h.at(190, func() {
		n0, n1 := h.nodes[0], h.nodes[1]
		if n0.st != stIdle || n1.st != stIdle {
			t.Fatalf("wedged: node0 st=%v entryHeld=%v owned=%v; node1 st=%v owned=%v",
				n0.st, n0.entryHeld, n0.owned, n1.st, n1.owned)
		}
	})
	h.eng.Run()
	if len(h.grants) != 2 {
		t.Fatalf("grants=%v, want both nodes served", h.grants)
	}
}
