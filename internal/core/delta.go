package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"mralloc/internal/resource"
	"mralloc/internal/wire"
)

// Delta-encoded token state. A token carries two N-sized stamp
// vectors, so at large N the LASS.Response payload is dominated by
// bytes that barely change between transfers: one transfer typically
// bumps the counter a few times, touches a handful of stamp entries
// and moves one queue head. On a stream that announced
// wire.CtrlTokenDelta, both ends therefore keep a per-resource shadow
// of the last token state that crossed the stream: the first transfer
// of a resource's token ships the full snapshot, later transfers ship
// only the changed fields, and the decoder replays them onto its
// shadow to reconstruct the exact token.
//
// Wire forms (replacing the bare snapshot of encTokenSnap on
// delta-capable streams only — legacy streams are untouched):
//
//	full:  uvarint(0), uvarint(epoch), uvarint(seq), <snapshot fields>
//	delta: uvarint(1), varint(R), uvarint(epoch), uvarint(seq),
//	       varint(dCounter),
//	       2 × stamp-vector diff: uvarint(k), k × (uvarint(idxGap), varint(dVal)),
//	       queue diff: removals  uvarint(k), k × uvarint(idxGap)   — into the old queue
//	                   inserts   uvarint(k), k × (uvarint(idxGap), ref) — into the new queue
//	       bool loansChanged [uvarint(k), k × loan entry],
//	       bool lenderChanged [node]
//
// Index gaps are absolute for the first entry and ≥1 after, so both
// lists are strictly ascending by construction. Queue edits are
// positional on both sides — removals index the pre-edit queue,
// insertions the post-edit queue — which reproduces the encoder's
// queue bytes exactly even when entries tie under the (Mark, Site)
// order and a value-based merge would be ambiguous.
//
// Correctness leans on the transport contract: the stream is reliable
// FIFO, so the decoder's shadow after applying transfer k equals the
// encoder's shadow when it produced transfer k+1. epoch names the
// encoder's cache generation (a fresh one per stream and per cache
// reset) and seq counts transfers of one resource within it; a delta
// whose (epoch, seq) does not extend the decoder's shadow — a
// corrupted or crafted stream — fails the decode with a resync error
// instead of applying garbage, and the resource heals on the next full
// snapshot. The encoder never produces that situation: any state it
// does not have a live shadow for (first transfer, cache reset, epoch
// bump) automatically falls back to a full snapshot.

const (
	tokFull  = 0
	tokDelta = 1
)

// maxDeltaEntries bounds either side's per-stream shadow cache. The
// encoder resets (fresh epoch, all-full fallback) when it would grow
// past the bound; the decoder simply stops caching new resources, so a
// hostile stream can make later deltas fail but never make the cache
// grow without bound.
const maxDeltaEntries = 4096

// deltaEpochs hands out a distinct epoch per encoder cache generation,
// process-wide, so shadows from different generations can never be
// mistaken for each other.
var deltaEpochs atomic.Uint64

type (
	tokenDeltaEncKey struct{}
	tokenDeltaDecKey struct{}
)

// deltaShadow is one cached token state: the last state that crossed
// the stream for its resource, with the (epoch, seq) stamp it carried.
type deltaShadow struct {
	epoch, seq uint64
	tok        token
}

// copyTokenInto deep-copies src over dst, reusing dst's capacity. Loan
// missing-sets are cloned too: shadows must never share mutable state
// with tokens the protocol owns.
func copyTokenInto(dst, src *token) {
	dst.R = src.R
	dst.Counter = src.Counter
	dst.LastReqC = append(dst.LastReqC[:0], src.LastReqC...)
	dst.LastCS = append(dst.LastCS[:0], src.LastCS...)
	dst.Queue = append(dst.Queue[:0], src.Queue...)
	dst.Loans = dst.Loans[:0]
	for _, l := range src.Loans {
		l.Missing = l.Missing.Clone()
		dst.Loans = append(dst.Loans, l)
	}
	dst.Lender = src.Lender
	dst.Epoch = src.Epoch
}

// tokenDeltaEnc is the egress half: one per delta-capable stream,
// shared by every sender encoding onto that connection (hence the
// lock; token ownership serializes transfers of one resource, so the
// per-resource seq order always matches append order).
type tokenDeltaEnc struct {
	mu    sync.Mutex
	epoch uint64
	m     map[resource.ID]*deltaShadow

	// Queue edit-script scratch, reused across transfers (mu held for
	// the whole encode, so no further synchronization): the hot path
	// must not allocate per token.
	remIdx, insIdx []int
	insRef         []reqRef
}

func encDeltaState(e *wire.Enc) *tokenDeltaEnc {
	s := e.Stream()
	if !s.HasFlag(wire.CtrlTokenDelta) {
		return nil
	}
	return s.Value(tokenDeltaEncKey{}, func() any {
		return &tokenDeltaEnc{epoch: deltaEpochs.Add(1), m: make(map[resource.ID]*deltaShadow)}
	}).(*tokenDeltaEnc)
}

func (st *tokenDeltaEnc) encode(e *wire.Enc, t *token) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sh := st.m[t.R]
	if sh == nil || len(sh.tok.LastReqC) != len(t.LastReqC) {
		if sh == nil && len(st.m) >= maxDeltaEntries {
			// Reset rather than evict: an eviction the decoder cannot
			// observe would desync the caches, a fresh epoch
			// re-establishes every resource with a full snapshot.
			st.m = make(map[resource.ID]*deltaShadow)
			st.epoch = deltaEpochs.Add(1)
		}
		if sh == nil {
			sh = &deltaShadow{}
			st.m[t.R] = sh
		}
		sh.epoch, sh.seq = st.epoch, 1
		e.Uvarint(tokFull)
		e.Uvarint(sh.epoch)
		e.Uvarint(sh.seq)
		encTokenSnap(e, t)
		copyTokenInto(&sh.tok, t)
		return
	}
	sh.seq++
	e.Uvarint(tokDelta)
	e.Varint(int64(t.R))
	e.Uvarint(sh.epoch)
	e.Uvarint(sh.seq)
	st.encTokenDelta(e, &sh.tok, t)
	copyTokenInto(&sh.tok, t)
}

func (st *tokenDeltaEnc) encTokenDelta(e *wire.Enc, old, t *token) {
	e.Varint(t.Counter - old.Counter)
	encStampDelta(e, old.LastReqC, t.LastReqC)
	encStampDelta(e, old.LastCS, t.LastCS)
	st.encQueueDelta(e, old.Queue, t.Queue)
	if loansEqual(old.Loans, t.Loans) {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Uvarint(uint64(len(t.Loans)))
		for _, l := range t.Loans {
			encRef(e, l.Ref)
			e.Varint(int64(l.R))
			e.Set(l.Missing)
		}
	}
	if t.Lender == old.Lender {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Node(t.Lender)
	}
	// Authority-epoch delta, appended last: almost always 0 (one byte),
	// non-zero only when a regenerated token crosses a stream that had
	// already shadowed its predecessor.
	e.Varint(t.Epoch - old.Epoch)
}

func loansEqual(a, b []loanEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ref != b[i].Ref || a[i].R != b[i].R || !a[i].Missing.Equal(b[i].Missing) {
			return false
		}
	}
	return true
}

// encStampDelta writes the changed entries of one per-site stamp
// vector: count, then (index gap, value delta) pairs.
func encStampDelta(e *wire.Enc, old, cur []int64) {
	n := 0
	for i := range cur {
		if cur[i] != old[i] {
			n++
		}
	}
	e.Uvarint(uint64(n))
	prev := 0
	for i := range cur {
		if cur[i] != old[i] {
			e.Uvarint(uint64(i - prev))
			e.Varint(cur[i] - old[i])
			prev = i
		}
	}
}

// encQueueDelta writes the positional edit script from old to cur: the
// indices to delete from old (ascending), then the (final index, ref)
// insertions that yield cur.
func (st *tokenDeltaEnc) encQueueDelta(e *wire.Enc, old, cur wqueue) {
	// A sorted merge walk: matched entries advance both cursors,
	// everything else becomes a removal (old side) or an insertion (cur
	// side). Order-equal but unequal entries — same (Mark, Site),
	// different ID — are removal+insertion, keeping the walk total.
	remIdx, insIdx, insRef := st.remIdx[:0], st.insIdx[:0], st.insRef[:0]
	i, j := 0, 0
	for i < len(old) || j < len(cur) {
		switch {
		case i >= len(old):
			insIdx, insRef = append(insIdx, j), append(insRef, cur[j])
			j++
		case j >= len(cur) || old[i] != cur[j] && old[i].precedes(cur[j]):
			remIdx = append(remIdx, i)
			i++
		case old[i] == cur[j]:
			i++
			j++
		case cur[j].precedes(old[i]):
			insIdx, insRef = append(insIdx, j), append(insRef, cur[j])
			j++
		default:
			remIdx = append(remIdx, i)
			i++
		}
	}
	e.Uvarint(uint64(len(remIdx)))
	prev := 0
	for k, idx := range remIdx {
		if k == 0 {
			e.Uvarint(uint64(idx))
		} else {
			e.Uvarint(uint64(idx - prev))
		}
		prev = idx
	}
	e.Uvarint(uint64(len(insIdx)))
	prev = 0
	for k, idx := range insIdx {
		if k == 0 {
			e.Uvarint(uint64(idx))
		} else {
			e.Uvarint(uint64(idx - prev))
		}
		prev = idx
		encRef(e, insRef[k])
	}
	st.remIdx, st.insIdx, st.insRef = remIdx, insIdx, insRef
}

// tokenDeltaDec is the ingress half: one per delta-capable stream,
// owned by the connection's single decode goroutine. epoch mirrors
// the encoder's current cache generation: every message the encoder
// produces carries its current epoch, so a full snapshot arriving
// with a new one proves the encoder reset — all older-generation
// shadows are dead (the encoder re-fulls before ever delta-ing them)
// and are dropped wholesale, keeping the two caches the same size.
type tokenDeltaDec struct {
	epoch uint64
	m     map[resource.ID]*deltaShadow

	// seen lists the resources already decoded in the current frame
	// (reset by decRespBatch): a token may appear once per frame. An
	// honest sender cannot repeat one (ownership leaves with the
	// send), and the dedup is what bounds a frame's reconstruction
	// fan-out — a delta's expansion is deliberately not charged to the
	// frame budget (see decode), so without it a tiny frame packed
	// with repeated no-op deltas could re-materialize one big shadow
	// thousands of times. With it, a frame reconstructs at most the
	// distinct resources it names — under shape validation at most M,
	// exactly what an honest respBatch of that cluster could carry.
	seen []resource.ID
}

// beginFrame resets the per-frame dedup; decRespBatch calls it before
// decoding a frame's tokens.
func (st *tokenDeltaDec) beginFrame() { st.seen = st.seen[:0] }

// frameDup records r as decoded in this frame, reporting a duplicate.
func (st *tokenDeltaDec) frameDup(d *wire.Dec, r resource.ID) bool {
	for _, x := range st.seen {
		if x == r {
			d.Fail("token for resource %d appears twice in one frame", r)
			return true
		}
	}
	st.seen = append(st.seen, r)
	return false
}

func decDeltaState(d *wire.Dec) *tokenDeltaDec {
	s := d.Stream()
	if !s.HasFlag(wire.CtrlTokenDelta) {
		return nil
	}
	return s.Value(tokenDeltaDecKey{}, func() any {
		return &tokenDeltaDec{m: make(map[resource.ID]*deltaShadow)}
	}).(*tokenDeltaDec)
}

func (st *tokenDeltaDec) decode(d *wire.Dec) *token {
	switch mode := d.Uvarint(); mode {
	case tokFull:
		epoch := d.Uvarint()
		seq := d.Uvarint()
		t := decTokenSnap(d)
		if d.Err() != nil || st.frameDup(d, t.R) {
			return t
		}
		if epoch != st.epoch {
			// The encoder opened a new cache generation: its shadows
			// from the old one are gone, so ours are unreachable too.
			if len(st.m) > 0 {
				st.m = make(map[resource.ID]*deltaShadow)
			}
			st.epoch = epoch
		}
		sh := st.m[t.R]
		if sh == nil {
			if len(st.m) >= maxDeltaEntries {
				// Backstop for a stream that packs more same-epoch
				// snapshots than any honest encoder could (the encoder
				// resets — changing epoch — at this very bound): serve
				// the snapshot but do not shadow it; a later delta for
				// this resource then fails with a resync error.
				return t
			}
			sh = &deltaShadow{}
			st.m[t.R] = sh
		}
		sh.epoch, sh.seq = epoch, seq
		if !d.Charge(tokenBytes(t)) {
			delete(st.m, t.R)
			return t
		}
		copyTokenInto(&sh.tok, t)
		return t
	case tokDelta:
		t := &token{}
		r := d.Res()
		epoch := d.Uvarint()
		seq := d.Uvarint()
		if d.Err() != nil || st.frameDup(d, r) {
			return t
		}
		sh := st.m[r]
		switch {
		case sh == nil:
			d.Fail("token delta for resource %d without a base snapshot (resync needed)", r)
			return t
		case sh.epoch != epoch:
			d.Fail("token delta epoch %d against base epoch %d (resync needed)", epoch, sh.epoch)
			return t
		case sh.seq+1 != seq:
			d.Fail("token delta seq %d against base seq %d (resync needed)", seq, sh.seq)
			return t
		}
		applyTokenDelta(d, &sh.tok)
		if d.Err() != nil {
			// The shadow may be half-applied; only a fresh full
			// snapshot may resurrect this resource on this stream.
			delete(st.m, r)
			return t
		}
		sh.seq = seq
		// The reconstructed token is deliberately NOT charged against
		// this frame's allocation budget: a few-byte delta expanding to
		// an N-sized token is the entire point of the encoding. The
		// amplification is bounded instead by construction — the shadow
		// being copied was itself decoded (and budget-charged) from a
		// full snapshot on this stream, grown only by deltas the stream
		// paid for field by field, the cache holds at most
		// maxDeltaEntries of them, and the per-frame dedup (frameDup)
		// lets a frame re-materialize each one at most once.
		copyTokenInto(t, &sh.tok)
		return t
	default:
		d.Fail("token mode %d out of range", mode)
		return &token{}
	}
}

// tokenBytes estimates a token's memory footprint for the decode
// allocation budget.
func tokenBytes(t *token) int {
	return int(unsafe.Sizeof(token{})) +
		16*len(t.LastReqC) +
		len(t.Queue)*int(unsafe.Sizeof(reqRef{})) +
		len(t.Loans)*int(unsafe.Sizeof(loanEntry{}))
}

// applyTokenDelta replays one delta onto the shadow in place. Any
// malformed field fails the decode through the sticky error; the
// caller then discards the shadow.
func applyTokenDelta(d *wire.Dec, tok *token) {
	tok.Counter += d.Varint()
	applyStampDelta(d, tok.LastReqC)
	applyStampDelta(d, tok.LastCS)
	// Deltas accumulate into the shadow across frames, so unlike a
	// snapshot (whose size the frame's own budget pays for, and which
	// replaces rather than grows) the queue needs an absolute cap: an
	// honest wQueue holds pending requests, at most a few per site, so
	// 4N+64 (N from the shadow's own stamp vectors) is far above any
	// legitimate state while denying a hostile stream unbounded
	// amplification. Overflow is a resync error like any other.
	applyQueueDelta(d, &tok.Queue, 4*len(tok.LastReqC)+64)
	if d.Err() != nil {
		return
	}
	if d.Bool() { // loans replaced wholesale
		n := d.Count()
		if d.Err() != nil || !d.Charge(n*int(unsafe.Sizeof(loanEntry{}))) {
			return
		}
		tok.Loans = tok.Loans[:0]
		for i := 0; i < n; i++ {
			var l loanEntry
			l.Ref = decRef(d)
			l.R = d.Res()
			l.Missing = d.Set()
			if l.Missing.Universe() == 0 && d.Err() == nil {
				d.Fail("loan entry without a missing set")
			}
			if d.Err() != nil {
				return
			}
			tok.Loans = append(tok.Loans, l)
		}
	}
	if d.Bool() {
		tok.Lender = d.Node()
	}
	tok.Epoch += d.Varint()
	if tok.Epoch < 0 && d.Err() == nil {
		d.Fail("token delta yields negative epoch %d", tok.Epoch)
	}
}

func applyStampDelta(d *wire.Dec, v []int64) {
	n := d.Count()
	if d.Err() != nil {
		return
	}
	if n > len(v) {
		d.Fail("stamp delta with %d changes over %d entries", n, len(v))
		return
	}
	idx := -1
	for k := 0; k < n; k++ {
		gap := d.Uvarint()
		dv := d.Varint()
		if d.Err() != nil {
			return
		}
		if k > 0 && gap == 0 {
			d.Fail("stamp delta indices not ascending")
			return
		}
		if gap > uint64(len(v)) {
			d.Fail("stamp delta index gap %d outside vector of %d", gap, len(v))
			return
		}
		if k == 0 {
			idx = int(gap)
		} else {
			idx += int(gap)
		}
		if idx >= len(v) {
			d.Fail("stamp delta index %d outside vector of %d", idx, len(v))
			return
		}
		v[idx] += dv
	}
}

func applyQueueDelta(d *wire.Dec, q *wqueue, maxLen int) {
	// Removals: strictly ascending indices into the current queue.
	n := d.Count()
	if d.Err() != nil {
		return
	}
	if n > len(*q) {
		d.Fail("queue delta removes %d of %d entries", n, len(*q))
		return
	}
	kept := (*q)[:0]
	idx, prev := -1, 0
	for k := 0; k < n; k++ {
		gap := d.Uvarint()
		if d.Err() != nil {
			*q = append(kept, (*q)[prev:]...)
			return
		}
		if k > 0 && gap == 0 || gap > uint64(len(*q)) {
			d.Fail("queue removal indices malformed (gap %d over %d entries)", gap, len(*q))
			*q = append(kept, (*q)[prev:]...)
			return
		}
		if k == 0 {
			idx = int(gap)
		} else {
			idx += int(gap)
		}
		if idx >= len(*q) {
			d.Fail("queue removal index %d outside queue of %d", idx, len(*q))
			*q = append(kept, (*q)[prev:]...)
			return
		}
		kept = append(kept, (*q)[prev:idx]...)
		prev = idx + 1
	}
	*q = append(kept, (*q)[prev:]...)

	// Insertions: strictly ascending indices into the final queue.
	n = d.Count()
	if d.Err() != nil || n > 0 && !d.Charge(n*int(unsafe.Sizeof(reqRef{}))) {
		return
	}
	if len(*q)+n > maxLen {
		d.Fail("queue delta grows the queue to %d entries (cap %d, resync needed)", len(*q)+n, maxLen)
		return
	}
	idx = -1
	for k := 0; k < n; k++ {
		gap := d.Uvarint()
		if d.Err() != nil {
			return
		}
		if k > 0 && gap == 0 || gap > uint64(len(*q)+n) {
			d.Fail("queue insert indices malformed (gap %d into queue of %d)", gap, len(*q))
			return
		}
		if k == 0 {
			idx = int(gap)
		} else {
			idx += int(gap)
		}
		ref := decRef(d)
		if d.Err() != nil {
			return
		}
		if idx > len(*q) {
			d.Fail("queue insert index %d outside queue of %d", idx, len(*q))
			return
		}
		*q = append(*q, reqRef{})
		copy((*q)[idx+1:], (*q)[idx:])
		(*q)[idx] = ref
	}
}
