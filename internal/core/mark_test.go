package core

import (
	"testing"
	"testing/quick"
)

func TestMarkFunctions(t *testing.T) {
	v := []int64{0, 4, 0, 10, 1}
	cases := []struct {
		name string
		fn   MarkFunc
		want float64
	}{
		{"AvgNonZero", AvgNonZero, 5},
		{"MaxNonZero", MaxNonZero, 10},
		{"SumNonZero", SumNonZero, 15},
		{"MinNonZero", MinNonZero, 1},
	}
	for _, c := range cases {
		if got := c.fn(v); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.name, v, got, c.want)
		}
	}
}

func TestMarkFunctionsOnEmptyVector(t *testing.T) {
	zero := []int64{0, 0, 0}
	for _, fn := range []MarkFunc{AvgNonZero, MaxNonZero, SumNonZero, MinNonZero} {
		if got := fn(zero); got != 0 {
			t.Errorf("mark of zero vector = %v", got)
		}
	}
}

// Property: every mark function is monotone in each counter entry —
// the property hypothesis 6 (liveness) rests on, since counters only
// grow as requests are issued.
func TestMarkMonotoneProperty(t *testing.T) {
	funcs := map[string]MarkFunc{
		"AvgNonZero": AvgNonZero,
		"MaxNonZero": MaxNonZero,
		"SumNonZero": SumNonZero,
		"MinNonZero": MinNonZero,
	}
	for name, fn := range funcs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			prop := func(raw []uint8, idx uint8, bump uint8) bool {
				if len(raw) == 0 {
					return true
				}
				v := make([]int64, len(raw))
				for i, x := range raw {
					v[i] = int64(x) + 1 // strictly positive: a request's own entries
				}
				before := fn(v)
				v[int(idx)%len(v)] += int64(bump)
				return fn(v) >= before
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.threshold() != 1 {
		t.Fatalf("default threshold = %d", o.threshold())
	}
	if o.mark()([]int64{2, 4}) != 3 {
		t.Fatal("default mark is not AvgNonZero")
	}
	if !WithLoan().Loan || WithLoan().LoanThreshold != 1 {
		t.Fatal("WithLoan preset wrong")
	}
	if WithoutLoan().Loan {
		t.Fatal("WithoutLoan preset wrong")
	}
}
