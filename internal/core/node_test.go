package core

import (
	"testing"
	"testing/quick"

	"mralloc/internal/alg"
	"mralloc/internal/driver"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

func runCfg(seed int64) driver.Config {
	return driver.Config{
		Workload: workload.Config{
			N: 8, M: 16, Phi: 6,
			AlphaMin: 5 * sim.Millisecond,
			AlphaMax: 35 * sim.Millisecond,
			Gamma:    600 * sim.Microsecond,
			Rho:      1,
			Seed:     seed,
		},
		Warmup:  50 * sim.Millisecond,
		Horizon: 2 * sim.Second,
		Drain:   true,
	}
}

// captureFactory wraps NewFactory so tests can inspect node internals
// after a run.
func captureFactory(opt Options) (alg.Factory, *[]*Node) {
	nodes := new([]*Node)
	f := func(n, m int) []alg.Node {
		out := NewFactory(opt)(n, m)
		*nodes = (*nodes)[:0]
		for _, x := range out {
			*nodes = append(*nodes, x.(*Node))
		}
		return out
	}
	return f, nodes
}

func totals(nodes []*Node) Counters {
	var c Counters
	for _, nd := range nodes {
		s := nd.Counters()
		c.LoanAsks += s.LoanAsks
		c.LoansGranted += s.LoansGranted
		c.LoanReturns += s.LoanReturns
		c.Yields += s.Yields
		c.SingleFast += s.SingleFast
	}
	return c
}

func TestSafetyAndLivenessWithoutLoan(t *testing.T) {
	res, err := driver.Run(runCfg(1), NewFactory(WithoutLoan()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 || res.Ungranted != 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

func TestSafetyAndLivenessWithLoan(t *testing.T) {
	res, err := driver.Run(runCfg(1), NewFactory(WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants < 50 || res.Ungranted != 0 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestManySeedsBothVariants explores interleavings with the invariant
// monitor armed; any safety break panics, any starvation fails drain.
func TestManySeedsBothVariants(t *testing.T) {
	for _, opt := range []Options{WithoutLoan(), WithLoan()} {
		opt := opt
		prop := func(seed int64) bool {
			c := runCfg(seed)
			c.Horizon = 500 * sim.Millisecond
			res, err := driver.Run(c, NewFactory(opt))
			return err == nil && res.Ungranted == 0 && res.Grants > 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("loan=%v: %v", opt.Loan, err)
		}
	}
}

// TestHighContentionTinyPool maximizes conflicts (every request touches
// most of a 4-resource pool under saturation) — the regime where queue
// yields, pendingReq replay and loan inversions all fire.
func TestHighContentionTinyPool(t *testing.T) {
	for _, opt := range []Options{WithoutLoan(), WithLoan()} {
		c := runCfg(2)
		c.Workload.M = 4
		c.Workload.Phi = 3
		c.Workload.Rho = 0.1
		res, err := driver.Run(c, NewFactory(opt))
		if err != nil {
			t.Fatal(err)
		}
		if res.Ungranted != 0 || res.Grants == 0 {
			t.Fatalf("loan=%v grants=%d ungranted=%d", opt.Loan, res.Grants, res.Ungranted)
		}
	}
}

// TestAllOptimizationsDisabled checks the protocol stays correct
// without the §4.6 fast paths and §4.2.2 aggregation (ablation A2).
func TestAllOptimizationsDisabled(t *testing.T) {
	opt := Options{
		Loan:                true,
		DisableSingleResOpt: true,
		DisableShortcut:     true,
		DisableForwardStop:  true,
		DisableAggregation:  true,
	}
	res, err := driver.Run(runCfg(3), NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 || res.Grants < 50 {
		t.Fatalf("grants=%d ungranted=%d", res.Grants, res.Ungranted)
	}
}

// TestAggregationReducesMessages: identical workload, aggregation on vs
// off — on must send no more messages (it merges, never splits).
func TestAggregationReducesMessages(t *testing.T) {
	on, err := driver.Run(runCfg(4), NewFactory(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	off, err := driver.Run(runCfg(4), NewFactory(Options{DisableAggregation: true}))
	if err != nil {
		t.Fatal(err)
	}
	if on.Messages.Total > off.Messages.Total {
		t.Fatalf("aggregation increased traffic: %d > %d", on.Messages.Total, off.Messages.Total)
	}
}

// TestSingleResourceFastPath: with φ=1 every request is a single, so
// the fast path must carry all of them, and no separate Counter replies
// are needed (responses carry tokens only).
func TestSingleResourceFastPath(t *testing.T) {
	factory, nodes := captureFactory(Options{})
	c := runCfg(5)
	c.Workload.Phi = 1
	res, err := driver.Run(c, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatalf("%d starved", res.Ungranted)
	}
	tot := totals(*nodes)
	if tot.SingleFast == 0 {
		t.Fatal("fast path never used at φ=1")
	}
	// The fast path should make single-resource admission cheaper than
	// the two-round-trip base protocol.
	cOff := c
	off, err := driver.Run(cOff, NewFactory(Options{DisableSingleResOpt: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgPerGrant >= off.MsgPerGrant {
		t.Fatalf("fast path did not reduce messages: %.2f ≥ %.2f", res.MsgPerGrant, off.MsgPerGrant)
	}
}

// TestLoanMechanismFires: under saturation with mid-size requests the
// loan machinery must actually trigger across a handful of seeds (the
// paper's Figure 5(b) regime), and every borrowed token must come home
// (the drain succeeds with zero pending).
func TestLoanMechanismFires(t *testing.T) {
	asked, granted := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		factory, nodes := captureFactory(WithLoan())
		c := runCfg(seed)
		c.Workload.M = 12
		c.Workload.Phi = 6
		c.Workload.Rho = 0.1
		res, err := driver.Run(c, factory)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ungranted != 0 {
			t.Fatalf("seed %d: %d starved", seed, res.Ungranted)
		}
		tot := totals(*nodes)
		asked += tot.LoanAsks
		granted += tot.LoansGranted
		// Whatever was lent must have been returned by quiescence.
		for _, nd := range *nodes {
			if !nd.lent.Empty() {
				t.Fatalf("seed %d: node %d still has lent=%v at quiescence", seed, nd.self(), nd.lent)
			}
		}
	}
	if asked == 0 {
		t.Fatal("loan mechanism never asked across 5 saturated runs")
	}
	if granted == 0 {
		t.Fatal("loan mechanism never granted across 5 saturated runs")
	}
}

// TestQuiescentTokenState: after a drained run, exactly one site owns
// each token, no queue has leftovers, and nothing is marked lent.
func TestQuiescentTokenState(t *testing.T) {
	factory, nodes := captureFactory(WithLoan())
	res, err := driver.Run(runCfg(6), factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ungranted != 0 {
		t.Fatal("drain incomplete")
	}
	m := 16
	for r := 0; r < m; r++ {
		owners := 0
		for _, nd := range *nodes {
			if nd.owned.Has(resource.ID(r)) {
				owners++
				tok := nd.lastTok[r]
				if len(tok.Queue) != 0 {
					t.Errorf("resource %d: queue %v left at quiescence", r, tok.Queue)
				}
				if tok.Lender != -1 {
					t.Errorf("resource %d: lender %d left at quiescence", r, tok.Lender)
				}
			}
		}
		if owners != 1 {
			t.Errorf("resource %d has %d owners", r, owners)
		}
	}
}

func TestMarkFunctionVariantsAllCorrect(t *testing.T) {
	for _, mf := range []struct {
		name string
		fn   MarkFunc
	}{
		{"avg", AvgNonZero}, {"max", MaxNonZero}, {"sum", SumNonZero}, {"min", MinNonZero},
	} {
		c := runCfg(7)
		c.Horizon = 800 * sim.Millisecond
		res, err := driver.Run(c, NewFactory(Options{Loan: true, Mark: mf.fn}))
		if err != nil {
			t.Fatalf("%s: %v", mf.name, err)
		}
		if res.Ungranted != 0 || res.Grants == 0 {
			t.Fatalf("%s: grants=%d ungranted=%d", mf.name, res.Grants, res.Ungranted)
		}
	}
}

func TestLoanThresholdVariants(t *testing.T) {
	for _, th := range []int{1, 2, 4} {
		c := runCfg(8)
		c.Workload.Rho = 0.2
		c.Horizon = 800 * sim.Millisecond
		res, err := driver.Run(c, NewFactory(Options{Loan: true, LoanThreshold: th}))
		if err != nil {
			t.Fatalf("threshold %d: %v", th, err)
		}
		if res.Ungranted != 0 {
			t.Fatalf("threshold %d: %d starved", th, res.Ungranted)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := driver.Run(runCfg(9), NewFactory(WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.Run(runCfg(9), NewFactory(WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Grants != b.Grants || a.Messages.Total != b.Messages.Total ||
		a.UseRate != b.UseRate || a.Waiting.Mean != b.Waiting.Mean {
		t.Fatal("same seed diverged")
	}
}

func TestMessageKindsPresent(t *testing.T) {
	res, err := driver.Run(runCfg(10), NewFactory(WithLoan()))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"LASS.Request", "LASS.Response"} {
		if res.Messages.ByKind[k] == 0 {
			t.Errorf("no %s traffic: %v", k, res.Messages)
		}
	}
}

// TestLargeSystem scales to the paper's N=32, M=80 shape once, with
// both variants, under the full monitor.
func TestLargeSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("large system run")
	}
	for _, opt := range []Options{WithoutLoan(), WithLoan()} {
		c := driver.Config{
			Workload: workload.Config{
				N: 32, M: 80, Phi: 16,
				AlphaMin: 5 * sim.Millisecond,
				AlphaMax: 35 * sim.Millisecond,
				Gamma:    600 * sim.Microsecond,
				Rho:      0.5,
				Seed:     12,
			},
			Warmup:  100 * sim.Millisecond,
			Horizon: 2 * sim.Second,
			Drain:   true,
		}
		res, err := driver.Run(c, NewFactory(opt))
		if err != nil {
			t.Fatal(err)
		}
		if res.Ungranted != 0 || res.Grants < 100 {
			t.Fatalf("loan=%v grants=%d ungranted=%d", opt.Loan, res.Grants, res.Ungranted)
		}
	}
}

// TestFailedLoanPathExercised hunts across seeds for a run where a
// loan fails (the borrower yielded other tokens before the borrowed
// ones arrived and bounced them back — hardening deviation 4), then
// checks the run still drains with zero starvation. The seed scan is
// deterministic, so this is a stable regression test for the
// failed-loan return and re-request machinery.
func TestFailedLoanPathExercised(t *testing.T) {
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		factory, nodes := captureFactory(WithLoan())
		c := runCfg(seed)
		c.Workload.M = 10
		c.Workload.Phi = 5
		c.Workload.Rho = 0.05
		c.Horizon = 1500 * sim.Millisecond
		res, err := driver.Run(c, factory)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ungranted != 0 {
			t.Fatalf("seed %d: %d starved", seed, res.Ungranted)
		}
		if totals(*nodes).LoanReturns > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed exercised the failed-loan return in 60 tries — did the loan race disappear?")
	}
}

// TestConcurrencyProperty pins the paper's third property (§1): two
// processes with disjoint resource sets execute their critical
// sections concurrently — neither waits for the other.
func TestConcurrencyProperty(t *testing.T) {
	h := newScript(t, 3, 4, WithLoan())
	// Disjoint requests issued at the same instant; both tokensets live
	// at node 0 initially, so both requesters talk only to node 0.
	h.at(1, func() { h.nodes[1].Request(ids(4, 0, 1)) })
	h.at(1, func() { h.nodes[2].Request(ids(4, 2, 3)) })
	h.at(10, func() {
		if h.nodes[1].st != stInCS || h.nodes[2].st != stInCS {
			t.Fatalf("states %v/%v: disjoint requests must overlap in CS",
				h.nodes[1].st, h.nodes[2].st)
		}
	})
	h.eng.Run()
	h.nodes[1].Release()
	h.nodes[2].Release()
}
