package core

import (
	"fmt"
	"testing"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/wire"
)

// deltaPipe is one simulated delta-capable connection: an encoder-side
// and a decoder-side wire.Stream with the token-delta control active,
// as the transport would set them up after sending/receiving the
// CtrlTokenDelta stream control.
type deltaPipe struct {
	enc, dec *wire.Stream
}

func newDeltaPipe() *deltaPipe {
	p := &deltaPipe{enc: wire.NewStream(), dec: wire.NewStream()}
	p.enc.SetFlag(wire.CtrlTokenDelta)
	p.dec.SetFlag(wire.CtrlTokenDelta)
	return p
}

// send encodes a respBatch carrying tok through the pipe's encoder
// stream, returning the frame bytes.
func (p *deltaPipe) send(t *testing.T, toks ...*token) []byte {
	t.Helper()
	b, err := wire.AppendStream(nil, respBatch{Tokens: toks}, p.enc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// recv decodes one frame through the pipe's decoder stream.
func (p *deltaPipe) recv(frame []byte, nodes, resources int) (respBatch, error) {
	m, err := wire.DecodeStream(frame, nodes, resources, p.dec)
	if err != nil {
		return respBatch{}, err
	}
	return m.(respBatch), nil
}

func tokensEqual(a, b *token) error {
	if a.R != b.R || a.Counter != b.Counter || a.Lender != b.Lender {
		return fmt.Errorf("scalar fields differ: %+v vs %+v", a, b)
	}
	if len(a.LastReqC) != len(b.LastReqC) || len(a.LastCS) != len(b.LastCS) {
		return fmt.Errorf("stamp vector lengths differ")
	}
	for i := range a.LastReqC {
		if a.LastReqC[i] != b.LastReqC[i] || a.LastCS[i] != b.LastCS[i] {
			return fmt.Errorf("stamps differ at site %d", i)
		}
	}
	if len(a.Queue) != len(b.Queue) {
		return fmt.Errorf("queue lengths differ: %v vs %v", a.Queue, b.Queue)
	}
	for i := range a.Queue {
		if a.Queue[i] != b.Queue[i] {
			return fmt.Errorf("queue entry %d differs: %v vs %v", i, a.Queue[i], b.Queue[i])
		}
	}
	if len(a.Loans) != len(b.Loans) {
		return fmt.Errorf("loan counts differ")
	}
	for i := range a.Loans {
		if a.Loans[i].Ref != b.Loans[i].Ref || a.Loans[i].R != b.Loans[i].R ||
			!a.Loans[i].Missing.Equal(b.Loans[i].Missing) {
			return fmt.Errorf("loan entry %d differs", i)
		}
	}
	return nil
}

// TestTokenDeltaRoundTrip drives one resource's token through a
// sequence of realistic transfers — counter bumps, stamp updates,
// queue churn, a loan appearing and clearing, the lender toggling —
// and requires every decoded token to equal the sent one exactly.
func TestTokenDeltaRoundTrip(t *testing.T) {
	const n, m = 16, 8
	p := newDeltaPipe()
	tok := newToken(3, n)
	var fullLen int
	for step := 0; step < 12; step++ {
		switch step % 4 {
		case 0:
			tok.Counter += int64(step + 1)
			tok.LastReqC[step%n] += 2
		case 1:
			tok.Queue.Insert(reqRef{Site: network.NodeID(step % n), ID: int64(step), Mark: float64(step) * 0.5})
			tok.LastCS[(step*3)%n]++
		case 2:
			if len(tok.Queue) > 0 {
				tok.Queue.PopHead()
			}
			tok.Loans = append(tok.Loans, loanEntry{
				Ref: reqRef{Site: 2, ID: int64(step), Mark: 1.5}, R: 3,
				Missing: resource.FromIDs(m, 1, 4),
			})
			tok.Lender = 5
		case 3:
			tok.Loans = nil
			tok.Lender = network.None
		}
		frame := p.send(t, tok)
		if step == 0 {
			fullLen = len(frame)
		} else if len(frame) >= fullLen {
			t.Errorf("step %d: delta frame of %d bytes not smaller than the full %d", step, len(frame), fullLen)
		}
		got, err := p.recv(frame, n, m)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(got.Tokens) != 1 {
			t.Fatalf("step %d: %d tokens decoded", step, len(got.Tokens))
		}
		if err := tokensEqual(tok, got.Tokens[0]); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestTokenDeltaQueueTies pins the positional queue diff: entries that
// tie under the (Mark, Site) order but differ in ID are exactly the
// case where a value-based merge is ambiguous — the decoded queue must
// reproduce the encoder's ordering byte for byte anyway.
func TestTokenDeltaQueueTies(t *testing.T) {
	const n, m = 8, 4
	p := newDeltaPipe()
	tok := newToken(1, n)
	tok.Queue = wqueue{
		{Site: 2, ID: 10, Mark: 1.0},
		{Site: 2, ID: 11, Mark: 1.0}, // tied with the previous entry
		{Site: 5, ID: 3, Mark: 2.0},
	}
	if _, err := p.recv(p.send(t, tok), n, m); err != nil {
		t.Fatal(err)
	}
	// Swap the tied pair and drop the tail: a diff keyed on values
	// alone could not express this.
	tok.Queue = wqueue{
		{Site: 2, ID: 11, Mark: 1.0},
		{Site: 2, ID: 10, Mark: 1.0},
	}
	got, err := p.recv(p.send(t, tok), n, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tokensEqual(tok, got.Tokens[0]); err != nil {
		t.Fatal(err)
	}
}

// TestTokenDeltaMultipleResources interleaves two resources on one
// stream: each keeps its own shadow, each second transfer is a delta.
func TestTokenDeltaMultipleResources(t *testing.T) {
	const n, m = 8, 4
	p := newDeltaPipe()
	ta, tb := newToken(0, n), newToken(2, n)
	for step := 0; step < 3; step++ {
		ta.Counter++
		tb.LastCS[1] += 3
		got, err := p.recv(p.send(t, ta, tb), n, m)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := tokensEqual(ta, got.Tokens[0]); err != nil {
			t.Fatalf("step %d token a: %v", step, err)
		}
		if err := tokensEqual(tb, got.Tokens[1]); err != nil {
			t.Fatalf("step %d token b: %v", step, err)
		}
	}
}

// TestTokenDeltaResync exercises every resync path: a delta with no
// base, an epoch mismatch, a seq gap — each must fail the decode with
// an error (never apply), and a subsequent full snapshot must heal the
// stream.
func TestTokenDeltaResync(t *testing.T) {
	const n, m = 8, 4
	p := newDeltaPipe()
	tok := newToken(1, n)
	full := p.send(t, tok)
	tok.Counter++
	delta1 := p.send(t, tok)
	tok.Counter++
	delta2 := p.send(t, tok)

	// No base: a fresh decoder sees the delta first.
	fresh := newDeltaPipe()
	if _, err := fresh.recv(delta1, n, m); err == nil {
		t.Fatal("delta without a base snapshot decoded")
	}

	// Seq gap: skip delta1.
	gap := newDeltaPipe()
	if _, err := gap.recv(full, n, m); err != nil {
		t.Fatal(err)
	}
	if _, err := gap.recv(delta2, n, m); err == nil {
		t.Fatal("delta with a sequence gap decoded")
	}

	// Epoch mismatch: a base from one encoder generation, a delta from
	// another.
	other := newDeltaPipe()
	otherTok := newToken(1, n)
	cross := newDeltaPipe()
	if _, err := cross.recv(other.send(t, otherTok), n, m); err != nil {
		t.Fatal(err)
	}
	otherTok.Counter++
	// Decode p's delta1 (different epoch) against other's base.
	if _, err := cross.recv(delta1, n, m); err == nil {
		t.Fatal("delta from a different epoch decoded")
	}

	// Heal: after any of the failures above, a full snapshot
	// re-establishes the resource and deltas flow again.
	heal := newDeltaPipe()
	healTok := newToken(1, n)
	healTok.Counter = 40
	if _, err := heal.recv(heal.send(t, healTok), n, m); err != nil {
		t.Fatal(err)
	}
	healTok.Counter++
	got, err := heal.recv(heal.send(t, healTok), n, m)
	if err != nil {
		t.Fatalf("stream did not heal: %v", err)
	}
	if err := tokensEqual(healTok, got.Tokens[0]); err != nil {
		t.Fatal(err)
	}
}

// TestTokenDeltaEncoderResetHeals drives one stream through more
// distinct resources than either cache may hold: the encoder resets to
// a fresh epoch at the bound, and the decoder — seeing the new epoch
// on the next full snapshot — must drop its dead old-generation
// shadows and keep delta-decoding resources the old cache never held.
// (Regression: the decoder used to keep its full cache forever, so a
// stream touching > maxDeltaEntries resources had later deltas fail
// and the connection torn down in a loop.)
func TestTokenDeltaEncoderResetHeals(t *testing.T) {
	const n = 2
	p := newDeltaPipe()
	for r := 0; r <= maxDeltaEntries; r++ {
		tok := newToken(resource.ID(r), n)
		if _, err := p.recv(p.send(t, tok), n, 0); err != nil {
			t.Fatalf("resource %d: %v", r, err)
		}
	}
	// The encoder reset while sweeping; this resource lives in the new
	// generation only. Full, then delta — both must decode.
	late := newToken(maxDeltaEntries+1, n)
	if _, err := p.recv(p.send(t, late), n, 0); err != nil {
		t.Fatalf("post-reset full: %v", err)
	}
	late.Counter += 4
	late.Queue.Insert(reqRef{Site: 1, ID: 9, Mark: 0.25})
	got, err := p.recv(p.send(t, late), n, 0)
	if err != nil {
		t.Fatalf("post-reset delta: %v", err)
	}
	if err := tokensEqual(late, got.Tokens[0]); err != nil {
		t.Fatal(err)
	}
	// And a resource from the old generation comes back as a full
	// snapshot (encoder lost its shadow) that re-establishes deltas.
	early := newToken(3, n)
	early.Counter = 7
	if _, err := p.recv(p.send(t, early), n, 0); err != nil {
		t.Fatalf("old-generation resource re-full: %v", err)
	}
	early.Counter++
	if _, err := p.recv(p.send(t, early), n, 0); err != nil {
		t.Fatalf("old-generation resource delta: %v", err)
	}
}

// TestTokenDeltaQueueGrowthBounded: deltas accumulate into the
// decoder's shadow across frames, so a hostile stream of well-formed
// queue-insert deltas must hit the absolute queue cap (a resync
// error), not grow receiver memory without bound.
func TestTokenDeltaQueueGrowthBounded(t *testing.T) {
	const n = 4
	p := newDeltaPipe()
	tok := newToken(1, n)
	full := p.send(t, tok)
	if _, err := p.recv(full, n, 0); err != nil {
		t.Fatal(err)
	}
	// Recover the epoch/seq the full snapshot carried so the crafted
	// delta extends the decoder's shadow legitimately.
	d := wire.NewDec(full)
	_ = d.String()  // kind
	_ = d.Count()   // counters
	_ = d.Count()   // tokens
	_ = d.Uvarint() // mode: full
	epoch, seq := d.Uvarint(), d.Uvarint()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}

	// A well-formed delta appending far more queue entries than any
	// honest wQueue could hold (the cap is 4N+64).
	var e wire.Enc
	e.String("LASS.Response")
	e.Uvarint(0) // counters
	e.Uvarint(1) // tokens
	e.Uvarint(1) // mode: delta
	e.Varint(1)  // R
	e.Uvarint(epoch)
	e.Uvarint(seq + 1)
	e.Varint(0)  // counter delta
	e.Uvarint(0) // reqC changes
	e.Uvarint(0) // CS changes
	e.Uvarint(0) // removals
	const k = 4*n + 64 + 1
	e.Uvarint(k)
	for i := 0; i < k; i++ {
		if i == 0 {
			e.Uvarint(0)
		} else {
			e.Uvarint(1)
		}
		e.Node(0)
		e.Varint(int64(i))
		e.F64(float64(i))
	}
	e.Bool(false) // loans unchanged
	e.Bool(false) // lender unchanged
	if _, err := wire.DecodeStream(e.Bytes(), n, 0, p.dec); err == nil {
		t.Fatal("queue-growth delta past the cap decoded")
	}
	// The poisoned shadow is gone; a fresh encoder generation (what a
	// redial produces) heals the resource through a full snapshot.
	enc2 := wire.NewStream()
	enc2.SetFlag(wire.CtrlTokenDelta)
	tok.Counter = 9
	frame, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok}}, enc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeStream(frame, n, 0, p.dec); err != nil {
		t.Fatalf("stream did not heal after the overgrown delta: %v", err)
	}
}

// TestTokenDeltaFrameDedup: one frame may carry each resource's token
// at most once (an honest sender cannot repeat one — ownership leaves
// with the send). The dedup is what bounds a frame's reconstruction
// fan-out, since delta expansion is deliberately not charged to the
// frame budget: without it, a tiny frame repeating no-op deltas would
// re-materialize one big shadow thousands of times.
func TestTokenDeltaFrameDedup(t *testing.T) {
	const n = 4
	p := newDeltaPipe()
	tok := newToken(1, n)
	if _, err := p.recv(p.send(t, tok), n, 0); err != nil {
		t.Fatal(err)
	}
	// Two consecutive deltas for the same resource are fine across
	// frames...
	tok.Counter++
	d1 := p.send(t, tok)
	tok.Counter++
	d2 := p.send(t, tok)
	// ...but concatenated into ONE respBatch frame they must be
	// rejected. Build it by hand: both deltas are valid individually,
	// so only the per-frame dedup can refuse the pair.
	parse := func(frame []byte) []byte {
		d := wire.NewDec(frame)
		_ = d.String() // kind
		_ = d.Count()  // counters
		_ = d.Count()  // tokens
		return d.Rest()
	}
	var e wire.Enc
	e.String("LASS.Response")
	e.Uvarint(0) // counters
	e.Uvarint(2) // tokens
	combined := append(e.Bytes(), parse(d1)...)
	combined = append(combined, parse(d2)...)
	if _, err := wire.DecodeStream(combined, n, 0, p.dec); err == nil {
		t.Fatal("frame carrying the same resource's token twice decoded")
	}
	// The poisoned entry healed by a fresh generation's full snapshot.
	enc2 := wire.NewStream()
	enc2.SetFlag(wire.CtrlTokenDelta)
	frame, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok}}, enc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeStream(frame, n, 0, p.dec); err != nil {
		t.Fatalf("stream did not heal: %v", err)
	}
}

// TestTokenDeltaLegacyUnchanged: without the stream flag the encoding
// must be byte-identical to the legacy snapshot layout — delta-aware
// binaries stay wire-compatible with pre-delta peers by default.
func TestTokenDeltaLegacyUnchanged(t *testing.T) {
	tok := newToken(2, 4)
	tok.Counter = 9
	tok.Queue.Insert(reqRef{Site: 1, ID: 2, Mark: 0.5})
	msg := respBatch{Tokens: []*token{tok}}
	legacy, err := wire.Append(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	// A Stream without the flag must also produce the legacy bytes.
	plain, err := wire.AppendStream(nil, msg, wire.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	if string(legacy) != string(plain) {
		t.Fatal("flag-free stream encoding differs from the legacy layout")
	}
	if _, err := wire.Decode(legacy); err != nil {
		t.Fatal(err)
	}
}

// TestTokenDeltaSavingsAtLargeN pins the point of the exercise: at
// N=512, a steady-state transfer (few changed fields) must encode to
// well under half the full snapshot.
func TestTokenDeltaSavingsAtLargeN(t *testing.T) {
	const n = 512
	p := newDeltaPipe()
	tok := newToken(0, n)
	for i := range tok.LastReqC {
		tok.LastReqC[i] = int64(i % 7)
		tok.LastCS[i] = int64(i % 5)
	}
	full := p.send(t, tok)
	tok.Counter += 3
	tok.LastReqC[17] += 2
	tok.LastCS[401]++
	tok.Queue.Insert(reqRef{Site: 9, ID: 4, Mark: 2.25})
	delta := p.send(t, tok)
	if len(delta)*4 > len(full) {
		t.Fatalf("delta of %d bytes vs full %d: expected ≥4× saving", len(delta), len(full))
	}
	got, err := p.recv(full, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	got2, err := p.recv(delta, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tokensEqual(tok, got2.Tokens[0]); err != nil {
		t.Fatal(err)
	}
}

// FuzzTokenDelta: arbitrary bytes decoded as the second frame of a
// delta-capable stream — after a valid base snapshot primed the shadow
// — must never panic, and whatever they did to the stream, a valid
// full+delta pair afterwards must decode cleanly (resync on
// corruption).
func FuzzTokenDelta(f *testing.F) {
	const n, m = 8, 4
	seedTok := func() *token {
		tok := newToken(1, n)
		tok.Counter = 7
		tok.LastReqC[2] = 3
		tok.Queue.Insert(reqRef{Site: 4, ID: 1, Mark: 1.5})
		return tok
	}
	// Seeds: a valid delta, a valid full, and the empty input.
	{
		enc := wire.NewStream()
		enc.SetFlag(wire.CtrlTokenDelta)
		tok := seedTok()
		full, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok}}, enc)
		if err != nil {
			f.Fatal(err)
		}
		tok.Counter++
		tok.Queue.PopHead()
		delta, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok}}, enc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(full)
		f.Add(delta)
		f.Add([]byte{})
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		enc := wire.NewStream()
		enc.SetFlag(wire.CtrlTokenDelta)
		dec := wire.NewStream()
		dec.SetFlag(wire.CtrlTokenDelta)
		tok := seedTok()
		base, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok}}, enc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wire.DecodeStream(base, n, m, dec); err != nil {
			t.Fatalf("priming snapshot rejected: %v", err)
		}
		// The fuzz input plays the second frame; it may decode or fail,
		// it must not panic.
		_, _ = wire.DecodeStream(b, n, m, dec)
		// Resync: a fresh encoder generation heals the stream through a
		// full snapshot, whatever the input above did to the shadow.
		enc2 := wire.NewStream()
		enc2.SetFlag(wire.CtrlTokenDelta)
		tok2 := seedTok()
		tok2.Counter = 100
		full2, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok2}}, enc2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wire.DecodeStream(full2, n, m, dec); err != nil {
			t.Fatalf("full snapshot did not resync the stream: %v", err)
		}
		tok2.Counter++
		delta2, err := wire.AppendStream(nil, respBatch{Tokens: []*token{tok2}}, enc2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.DecodeStream(delta2, n, m, dec)
		if err != nil {
			t.Fatalf("delta after resync rejected: %v", err)
		}
		if err := tokensEqual(tok2, got.(respBatch).Tokens[0]); err != nil {
			t.Fatalf("post-resync token wrong: %v", err)
		}
	})
}
