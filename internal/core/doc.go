// Package core implements the paper's contribution: a fully
// decentralized multi-resource allocation algorithm (Lejeune, Arantes,
// Sopena, Sens — INRIA RR-8689 / ICPP 2015) that serializes conflicting
// requests with per-resource counters instead of a global lock, and
// dynamically reschedules nearly-satisfied requests with a loan
// mechanism.
//
// # Mechanism
//
// Every resource has a unique token holding: the resource counter, the
// queue of pending requests (wQueue) sorted by the total order "/", the
// pending loan requests (wLoan), obsolescence stamps (lastReqC, lastCS)
// and, while lent, the lender's identity. Tokens move along a dynamic
// tree per resource (father pointers tokDir), a simplified Mueller
// prioritized token algorithm: requests travel toward the root (the
// token holder), and responses — counter values and tokens — return
// directly.
//
// A request for resources D first collects the current counter value of
// every resource in D (state waitS), assembling a vector v ∈ N^M. The
// pluggable function A folds v into a real number; (A(v), site id)
// totally orders requests, so no deadlock can form, with zero
// communication between non-conflicting processes. The requester then
// asks for each token (state waitCS) and enters its critical section
// when it owns all of them.
//
// Tree mutation in flight is handled exactly as §4.2.1 prescribes:
// request messages carry the set of already-visited sites (forwarding
// stops on a cycle), every forwarding site keeps the request in a local
// pendingReq history replayed when a token arrives, and the stamps in
// the token discard obsolete replays.
//
// # Deviations from the paper's pseudo-code
//
// Five defensive deviations, each preserving the paper's semantics (see
// also DESIGN.md):
//
//  1. A site that assigns itself a counter value from a token it just
//     received also stamps lastReqC[self], and Counter replies carry the
//     request id; both kill the late duplicate Counter replies the
//     pseudo-code leaves floating (§4.2.1 clearly intends this).
//  2. A returned borrowed token clears its Lender field when it reaches
//     the lender; otherwise the lender would forever consider its own
//     token borrowed and refuse future loans.
//  3. Token receipt while Idle (a returning loan after the lender's
//     release) must not re-enter the critical section even though
//     TRequired ⊆ TOwned trivially holds for an empty TRequired.
//  4. When a loan fails (the borrower yielded other tokens in the
//     meantime and returns the borrowed ones), the borrower re-issues
//     ReqRes for the returned resources: the lender deleted the
//     borrower's queue entries when lending, and without re-issuing, a
//     borrower whose request message left no pendingReq copies behind
//     could starve.
//  5. A token arriving home strips the owner's own stale wQueue and
//     wLoan entries (re-inserted elsewhere by pendingReq replay);
//     without it a node can head its own queue, or — after a failed
//     loan reset loanAsked — pass canLend against its own replayed
//     loan request and try to lend the token to itself.
package core
