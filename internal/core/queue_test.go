package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mralloc/internal/network"
	"mralloc/internal/resource"
)

func TestPrecedesTotalOrder(t *testing.T) {
	a := reqRef{Site: 1, ID: 9, Mark: 2.0}
	b := reqRef{Site: 2, ID: 1, Mark: 3.0}
	c := reqRef{Site: 2, ID: 7, Mark: 2.0} // tie with a on mark
	if !a.precedes(b) || b.precedes(a) {
		t.Fatal("mark ordering wrong")
	}
	if !a.precedes(c) || c.precedes(a) {
		t.Fatal("site tie-break wrong (s1 ≺ s2)")
	}
	if a.precedes(a) {
		t.Fatal("irreflexive violated")
	}
}

// Property: precedes is a strict total order on distinct (Mark, Site)
// pairs: exactly one of a/b, b/a holds, and it is transitive.
func TestPrecedesProperties(t *testing.T) {
	gen := func(r *rand.Rand) reqRef {
		return reqRef{Site: network.NodeID(r.Intn(8)), ID: int64(r.Intn(100)), Mark: float64(r.Intn(6))}
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		sameAB := a.Mark == b.Mark && a.Site == b.Site
		if !sameAB && a.precedes(b) == b.precedes(a) {
			t.Fatalf("totality broken for %v %v", a, b)
		}
		if a.precedes(b) && b.precedes(c) && !a.precedes(c) {
			t.Fatalf("transitivity broken for %v %v %v", a, b, c)
		}
	}
}

func TestQueueInsertSortedAndDedup(t *testing.T) {
	var q wqueue
	if !q.Insert(reqRef{Site: 3, ID: 1, Mark: 5}) {
		t.Fatal("first insert refused")
	}
	q.Insert(reqRef{Site: 1, ID: 1, Mark: 7})
	q.Insert(reqRef{Site: 2, ID: 4, Mark: 5}) // tie on mark: site 2 < site 3
	if q.Insert(reqRef{Site: 3, ID: 1, Mark: 5}) {
		t.Fatal("duplicate (site,id) accepted")
	}
	if len(q) != 3 {
		t.Fatalf("len = %d", len(q))
	}
	wantSites := []network.NodeID{2, 3, 1}
	for i, w := range wantSites {
		if q[i].Site != w {
			t.Fatalf("queue order %v", q)
		}
	}
	h, ok := q.Head()
	if !ok || h.Site != 2 {
		t.Fatalf("head = %v", h)
	}
	if p := q.PopHead(); p.Site != 2 || len(q) != 2 {
		t.Fatalf("pop = %v, rest %v", p, q)
	}
}

func TestQueueRemoveSiteAndContains(t *testing.T) {
	var q wqueue
	q.Insert(reqRef{Site: 1, ID: 1, Mark: 1})
	q.Insert(reqRef{Site: 2, ID: 2, Mark: 2})
	q.Insert(reqRef{Site: 1, ID: 3, Mark: 3})
	if !q.contains(1, 3) || q.contains(1, 2) {
		t.Fatal("contains wrong")
	}
	if n := q.RemoveSite(1); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if len(q) != 1 || q[0].Site != 2 {
		t.Fatalf("queue after removal: %v", q)
	}
	if n := q.RemoveSite(9); n != 0 {
		t.Fatal("removing absent site reported removals")
	}
}

// Property: any insertion sequence yields a queue sorted by "/" and pops
// drain in non-decreasing order.
func TestQueueSortedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		var q wqueue
		for i, v := range raw {
			q.Insert(reqRef{
				Site: network.NodeID(v % 7),
				ID:   int64(i),
				Mark: float64(v % 13),
			})
		}
		var prev *reqRef
		for len(q) > 0 {
			h := q.PopHead()
			if prev != nil && h.precedes(*prev) {
				return false
			}
			cp := h
			prev = &cp
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenSnapshotIndependent(t *testing.T) {
	tok := newToken(3, 4)
	tok.Counter = 9
	tok.LastCS[2] = 5
	tok.Queue.Insert(reqRef{Site: 1, ID: 1, Mark: 1})
	s := tok.snapshotInto(nil)
	if s.Counter != 9 || s.LastCS[2] != 5 || s.R != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Queue) != 0 || s.Lender != network.None {
		t.Fatal("snapshot must not carry queue or lender")
	}
	s.LastCS[2] = 99
	if tok.LastCS[2] != 5 {
		t.Fatal("snapshot aliases token stamps")
	}
}

// TestTokenSnapshotIntoRecycles pins the free-list contract: reusing a
// dirty record must scrub its queue, loans and lender, and must not
// allocate fresh stamp arrays when the shape matches.
func TestTokenSnapshotIntoRecycles(t *testing.T) {
	tok := newToken(3, 4)
	tok.Counter = 9
	tok.LastCS[2] = 5

	dirty := newToken(1, 4)
	dirty.Queue.Insert(reqRef{Site: 1, ID: 1, Mark: 1})
	dirty.Loans = append(dirty.Loans, loanEntry{Ref: reqRef{Site: 2, ID: 2}, R: 1})
	dirty.Lender = 3
	stamps := &dirty.LastCS[0]

	s := tok.snapshotInto(dirty)
	if s != dirty {
		t.Fatal("matching-shape record was not reused")
	}
	if &s.LastCS[0] != stamps {
		t.Fatal("stamp arrays were reallocated")
	}
	if s.R != 3 || s.Counter != 9 || s.LastCS[2] != 5 {
		t.Fatalf("recycled snapshot = %+v", s)
	}
	if len(s.Queue) != 0 || len(s.Loans) != 0 || s.Lender != network.None {
		t.Fatal("recycled snapshot carries stale queue/loans/lender")
	}

	// A record of the wrong shape is rejected, not resized in place.
	wrong := newToken(0, 2)
	if tok.snapshotInto(wrong) == wrong {
		t.Fatal("wrong-shape record reused")
	}
}

func TestTokenLoanHelpers(t *testing.T) {
	tok := newToken(0, 4)
	ms := resource.FromIDs(4, 1, 2)
	ref := reqRef{Site: 2, ID: 7, Mark: 1}
	tok.Loans = append(tok.Loans, loanEntry{Ref: ref, R: 0, Missing: ms})
	if !tok.hasLoan(ref, 0) {
		t.Fatal("hasLoan missed entry")
	}
	if tok.hasLoan(reqRef{Site: 2, ID: 8}, 0) || tok.hasLoan(ref, 1) {
		t.Fatal("hasLoan false positive")
	}
	tok.Loans = append(tok.Loans, loanEntry{Ref: reqRef{Site: 3, ID: 1}, R: 0, Missing: ms})
	tok.removeLoans(2)
	if len(tok.Loans) != 1 || tok.Loans[0].Ref.Site != 3 {
		t.Fatalf("loans after removal: %+v", tok.Loans)
	}
}

func TestVisitedHelpers(t *testing.T) {
	v := []network.NodeID{1, 4}
	if !visitedContains(v, 4) || visitedContains(v, 2) {
		t.Fatal("visitedContains wrong")
	}
	w := visitedAdd(v, 2, false)
	if len(w) != 3 || !visitedContains(w, 2) {
		t.Fatal("visitedAdd failed")
	}
	if len(v) != 2 {
		t.Fatal("visitedAdd mutated input")
	}
	if len(visitedAdd(v, 1, false)) != 2 {
		t.Fatal("visitedAdd duplicated member")
	}
}

// TestVisitedAddOwnership pins the aliasing rule: an owned slice with
// spare capacity is extended in place (no allocation, same backing); a
// shared slice is copied even when spare capacity exists, because
// sibling batches of one flush alias the backing array.
func TestVisitedAddOwnership(t *testing.T) {
	v := make([]network.NodeID, 2, 4)
	v[0], v[1] = 1, 4

	shared := visitedAdd(v, 2, false)
	if &shared[0] == &v[0] {
		t.Fatal("unowned visitedAdd reused the shared backing array")
	}
	if len(shared) != 3 || cap(shared) < 4 {
		t.Fatalf("copy lost headroom: len=%d cap=%d", len(shared), cap(shared))
	}

	owned := visitedAdd(v, 2, true)
	if &owned[0] != &v[0] {
		t.Fatal("owned visitedAdd with spare capacity did not extend in place")
	}
	if len(owned) != 3 || owned[2] != 2 {
		t.Fatalf("owned append wrong: %v", owned)
	}

	// The copy made for a shared batch is exclusively the caller's:
	// the next hop may extend it in place using the headroom.
	next := visitedAdd(shared, 7, true)
	if &next[0] != &shared[0] {
		t.Fatal("ownership did not transfer to the copied slice")
	}

	// No spare capacity: even an owned slice must reallocate.
	full := []network.NodeID{1, 2}
	grown := visitedAdd(full[:2:2], 3, true)
	if len(grown) != 3 {
		t.Fatalf("grown = %v", grown)
	}
}
