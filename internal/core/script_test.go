package core

import (
	"testing"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/sim"
)

// scriptHarness drives Nodes directly (no workload generator) so tests
// can replay the paper's figures step by step and inspect internals.
type scriptHarness struct {
	t      *testing.T
	eng    *sim.Engine
	nw     *network.Network
	nodes  []*Node
	grants []network.NodeID
	m      int
}

type scriptEnv struct {
	h  *scriptHarness
	id network.NodeID
}

func (e *scriptEnv) ID() network.NodeID { return e.id }
func (e *scriptEnv) N() int             { return len(e.h.nodes) }
func (e *scriptEnv) M() int             { return e.h.m }
func (e *scriptEnv) Now() sim.Time      { return e.h.eng.Now() }
func (e *scriptEnv) Send(to network.NodeID, m network.Message) {
	e.h.nw.Send(e.id, to, m)
}
func (e *scriptEnv) Granted() {
	e.h.grants = append(e.h.grants, e.id)
}

func newScript(t *testing.T, n, m int, opt Options) *scriptHarness {
	h := &scriptHarness{t: t, eng: sim.New(), m: m}
	h.nw = network.New(h.eng, n, network.Constant{D: 600 * sim.Microsecond}, nil)
	h.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := &Node{opt: opt, mark: opt.mark()}
		h.nodes[i] = nd
	}
	for i := 0; i < n; i++ {
		id := network.NodeID(i)
		h.nodes[i].Attach(&scriptEnv{h: h, id: id})
		h.nw.Bind(id, h.nodes[i].Deliver)
	}
	return h
}

func (h *scriptHarness) at(ms float64, fn func()) {
	h.eng.At(sim.FromMillis(ms), fn)
}

func (h *scriptHarness) grantedSince(from int) []network.NodeID {
	return h.grants[from:]
}

func ids(m int, rs ...int) resource.Set {
	s := resource.NewSet(m)
	for _, r := range rs {
		s.Add(resource.ID(r))
	}
	return s
}

// TestFigure3Scenario replays the execution example of Figure 3 with
// node0/1/2 standing for the paper's s1/s2/s3 and resources 0/1 for
// r_red/r_blue. After a short setup phase establishing the paper's
// initial configuration (node0 holds red, node2 holds blue), node1
// requests both resources while the other two are in critical section;
// it must obtain both counter values, queue two ReqRes, receive both
// tokens at the releases, and end as root of both trees (Figure 3c).
func TestFigure3Scenario(t *testing.T) {
	h := newScript(t, 3, 2, WithoutLoan())
	const red, blue = 0, 1

	// Setup: move the blue token to node2 (node0 owns both initially).
	h.at(0, func() { h.nodes[2].Request(ids(2, blue)) })
	h.at(5, func() { h.nodes[2].Release() })

	// Initial configuration of Figure 3(a): node0 in CS on red, node2
	// in CS on blue.
	h.at(10, func() { h.nodes[0].Request(ids(2, red)) })
	h.at(11, func() { h.nodes[2].Request(ids(2, blue)) })
	h.at(12, func() {
		if h.nodes[0].st != stInCS || h.nodes[2].st != stInCS {
			t.Fatalf("setup failed: states %v %v", h.nodes[0].st, h.nodes[2].st)
		}
	})

	// Figure 3(b): node1 asks for both resources.
	base := 0
	h.at(15, func() {
		base = len(h.grants)
		h.nodes[1].Request(ids(2, red, blue))
	})

	// Counters must be collected while the holders stay in CS.
	h.at(25, func() {
		nd := h.nodes[1]
		if nd.st != stWaitCS {
			t.Fatalf("node1 state %v, want waitCS", nd.st)
		}
		if nd.myVector[red] == 0 || nd.myVector[blue] == 0 {
			t.Fatalf("node1 vector %v, want both counters", nd.myVector)
		}
		if len(h.grantedSince(base)) != 0 {
			t.Fatal("node1 granted while holders in CS (safety)")
		}
	})

	h.at(40, func() { h.nodes[0].Release() })
	h.at(45, func() { h.nodes[2].Release() })

	h.eng.Run()
	if got := h.grantedSince(base); len(got) != 1 || got[0] != 1 {
		t.Fatalf("grants after request: %v, want [1]", got)
	}
	nd := h.nodes[1]
	if nd.st != stInCS {
		t.Fatalf("node1 state %v, want inCS", nd.st)
	}
	// Figure 3(c): node1 is root of both trees.
	if !nd.owned.Has(red) || !nd.owned.Has(blue) {
		t.Fatalf("node1 owns %v, want both", nd.owned)
	}
	if h.nodes[0].tokDir[red] != 1 {
		t.Fatalf("node0 father for red = %d, want 1", h.nodes[0].tokDir[red])
	}
	if h.nodes[2].tokDir[blue] != 1 {
		t.Fatalf("node2 father for blue = %d, want 1", h.nodes[2].tokDir[blue])
	}
	h.nodes[1].Release()
}

// TestLoanScenario builds the §4.5 situation deterministically: node1
// (the lender) waits in waitCS owning r0 while r3 is stuck in node3's
// long critical section; node0 (the borrower) reaches waitCS missing
// exactly r0 and asks for a loan. node1 must lend r0, node0 must run
// its critical section strictly before node3 releases, and the token
// must return to node1 afterwards.
func TestLoanScenario(t *testing.T) {
	h := newScript(t, 4, 4, WithLoan())

	// A: node1 acquires r0 and r3 once so it ends up owning both.
	h.at(0, func() { h.nodes[1].Request(ids(4, 0, 3)) })
	h.at(5, func() { h.nodes[1].Release() })

	// B: node3 takes r3 into a long critical section (until t=200).
	h.at(10, func() { h.nodes[3].Request(ids(4, 3)) })

	// C: node1 re-requests {r0, r3}: owns r0, waits on r3 → lender.
	h.at(20, func() { h.nodes[1].Request(ids(4, 0, 3)) })

	// D: park r1 at idle node2 so the borrower's second counter comes
	// back as a direct token (order matters; see package tests doc).
	// The second cycle bumps r1's counter so the borrower's mark ends
	// strictly above the lender's — the loan path, not a priority yield.
	h.at(30, func() { h.nodes[2].Request(ids(4, 1)) })
	h.at(35, func() { h.nodes[2].Release() })
	h.at(38, func() { h.nodes[2].Request(ids(4, 1)) })
	h.at(42, func() { h.nodes[2].Release() })

	// E: node0 requests {r0, r1}: Counter for r0 from node1 arrives
	// first, token r1 from node2 second → waitCS with missing {r0} →
	// ReqLoan(r0) → node1 lends.
	var grantedAt sim.Time
	base := 0
	h.at(50, func() {
		base = len(h.grants)
		h.nodes[0].Request(ids(4, 0, 1))
	})
	h.at(80, func() {
		got := h.grantedSince(base)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("borrower not granted via loan: grants=%v, node0 state %v, node1 lent=%v asks=%d",
				got, h.nodes[0].st, h.nodes[1].lent, h.nodes[0].Counters().LoanAsks)
		}
		grantedAt = h.eng.Now()
		if h.nodes[1].Counters().LoansGranted != 1 {
			t.Fatalf("lender counters = %+v", h.nodes[1].Counters())
		}
		if !h.nodes[1].lent.Has(0) {
			t.Fatalf("lender lent set = %v", h.nodes[1].lent)
		}
		tok := h.nodes[0].lastTok[0]
		if tok.Lender != 1 {
			t.Fatalf("borrowed token lender = %d, want 1", tok.Lender)
		}
		// The borrower finishes and the token goes home.
		h.nodes[0].Release()
	})
	h.at(100, func() {
		if !h.nodes[1].owned.Has(0) || !h.nodes[1].lent.Empty() {
			t.Fatalf("token r0 did not return: owned=%v lent=%v",
				h.nodes[1].owned, h.nodes[1].lent)
		}
		if h.nodes[1].lastTok[0].Lender != network.None {
			t.Fatal("returned token still marked lent")
		}
	})

	// node3 finally releases; node1 completes its own CS.
	h.at(200, func() { h.nodes[3].Release() })

	h.eng.Run()
	if grantedAt == 0 || grantedAt >= sim.FromMillis(200) {
		t.Fatalf("loan did not beat the long CS: borrower granted at %v", grantedAt)
	}
	if h.nodes[1].st != stInCS {
		t.Fatalf("lender never completed: state %v", h.nodes[1].st)
	}
	h.nodes[1].Release()
	h.eng.Run()
}

// TestSingleOwnedImmediate: a single-resource request on a token the
// site already owns enters the CS synchronously with zero messages.
func TestSingleOwnedImmediate(t *testing.T) {
	h := newScript(t, 2, 2, WithoutLoan())
	h.at(0, func() {
		h.nodes[0].Request(ids(2, 1)) // node0 owns everything initially
		if h.nodes[0].st != stInCS {
			t.Fatalf("state %v, want inCS", h.nodes[0].st)
		}
	})
	h.eng.Run()
	if h.nw.Stats().Total != 0 {
		t.Fatalf("owned single request sent %d messages", h.nw.Stats().Total)
	}
	h.nodes[0].Release()
}

// TestCounterServiceDuringCS: a token holder in its critical section
// still answers ReqCnt with a Counter (the counter mechanism is
// independent of exclusive access, §3.3.1).
func TestCounterServiceDuringCS(t *testing.T) {
	h := newScript(t, 2, 2, WithoutLoan())
	h.at(0, func() { h.nodes[0].Request(ids(2, 0, 1)) }) // immediate CS
	h.at(5, func() { h.nodes[1].Request(ids(2, 0, 1)) })
	h.at(10, func() {
		nd := h.nodes[1]
		if nd.st != stWaitCS {
			t.Fatalf("node1 state %v, want waitCS (counters served during CS)", nd.st)
		}
		if nd.myVector[0] == 0 || nd.myVector[1] == 0 {
			t.Fatalf("node1 vector %v", nd.myVector)
		}
		if len(h.grants) != 1 {
			t.Fatalf("grants %v", h.grants)
		}
	})
	h.at(20, func() { h.nodes[0].Release() })
	h.eng.Run()
	if len(h.grants) != 2 || h.grants[1] != 1 {
		t.Fatalf("grants %v", h.grants)
	}
	h.nodes[1].Release()
}

// TestPriorityYield: a waitCS holder yields a token to a request with a
// smaller mark and queues itself (pseudo lines 179-181), and the token
// eventually comes back.
func TestPriorityYield(t *testing.T) {
	h := newScript(t, 3, 3, WithoutLoan())

	// Give node1 ownership of r0 (and r2, to keep it waiting later).
	h.at(0, func() { h.nodes[1].Request(ids(3, 0, 2)) })
	h.at(5, func() { h.nodes[1].Release() })

	// node2 takes r2 hostage for a long CS.
	h.at(10, func() { h.nodes[2].Request(ids(3, 2)) })

	// node1 requests {r0, r2}: owns r0 with local counters (small
	// marks), waits on r2 → waitCS holding r0.
	h.at(20, func() { h.nodes[1].Request(ids(3, 0, 2)) })

	// node0 requests {r0}: single fast path → node1 applies A with a
	// *fresh* (larger) counter, so node0 does NOT outrank node1...
	h.at(30, func() { h.nodes[0].Request(ids(3, 0)) })
	h.at(40, func() {
		if got := h.nodes[0].st; got != stWaitCS {
			t.Fatalf("node0 state %v", got)
		}
		// ...and node1 still holds r0 with node0 queued.
		if !h.nodes[1].owned.Has(0) {
			t.Fatal("node1 yielded r0 to a lower-priority request")
		}
		if !h.nodes[1].lastTok[0].Queue.contains(0, h.nodes[0].curID) {
			t.Fatalf("node0 not queued: %v", h.nodes[1].lastTok[0].Queue)
		}
	})

	// Release the hostage: node1 enters CS, then releases; r0 must flow
	// to node0.
	h.at(50, func() { h.nodes[2].Release() })
	h.at(60, func() {
		if h.nodes[1].st != stInCS {
			t.Fatalf("node1 state %v", h.nodes[1].st)
		}
		h.nodes[1].Release()
	})
	h.eng.Run()
	if h.nodes[0].st != stInCS {
		t.Fatalf("node0 state %v, want inCS after queue service", h.nodes[0].st)
	}
	if h.nodes[1].Counters().Yields != 0 {
		t.Fatalf("unexpected yield recorded: %+v", h.nodes[1].Counters())
	}
	h.nodes[0].Release()
}

// TestObsoleteRequestDiscarded: replaying a stale pendingReq copy after
// the requester's CS completed must not reinsert it anywhere.
func TestObsoleteRequestDiscarded(t *testing.T) {
	tok := newToken(0, 3)
	tok.LastCS[2] = 4
	tok.LastReqC[2] = 6
	nd := &Node{opt: WithoutLoan(), mark: AvgNonZero}
	if !nd.obsolete(request{Kind: reqRes, Init: 2, ID: 4}, tok) {
		t.Fatal("ReqRes with id ≤ lastCS not obsolete")
	}
	if nd.obsolete(request{Kind: reqRes, Init: 2, ID: 5}, tok) {
		t.Fatal("fresh ReqRes reported obsolete")
	}
	if !nd.obsolete(request{Kind: reqCnt, Init: 2, ID: 6}, tok) {
		t.Fatal("ReqCnt with id ≤ lastReqC not obsolete")
	}
	if nd.obsolete(request{Kind: reqCnt, Init: 2, ID: 7}, tok) {
		t.Fatal("fresh ReqCnt reported obsolete")
	}
	if nd.obsolete(request{Kind: reqRes, Init: 2, ID: 9}, nil) {
		t.Fatal("nil token should never mark obsolete")
	}
}
