package core

import (
	"testing"

	"mralloc/internal/network"
	"mralloc/internal/sim"
)

// TestAggregationOneBatchPerDestination pins the §4.2.2 invariant: a
// single activation buffering several requests to one destination must
// emit exactly one wire message.
func TestAggregationOneBatchPerDestination(t *testing.T) {
	h := newScript(t, 2, 4, WithoutLoan())
	// Node 1 requests three resources, all owned by node 0: the three
	// ReqCnt must travel in one reqBatch.
	h.at(0.1, func() { h.nodes[1].Request(ids(4, 0, 1, 2)) })
	h.eng.RunUntil(sim.FromMillis(0.5)) // sent, not yet delivered
	if got := h.nw.Stats().ByKind["LASS.Request"]; got != 1 {
		t.Fatalf("sent %d request messages, want 1 aggregated batch", got)
	}
	h.eng.Run()
	if h.nodes[1].st != stInCS {
		t.Fatalf("node1 state %v", h.nodes[1].st)
	}
	h.nodes[1].Release()
}

// TestNoAggregationSplitsBatches is the ablation counterpart: with
// aggregation disabled the same activation emits one message per item.
func TestNoAggregationSplitsBatches(t *testing.T) {
	h := newScript(t, 2, 4, Options{DisableAggregation: true})
	h.at(0.1, func() { h.nodes[1].Request(ids(4, 0, 1, 2)) })
	h.eng.RunUntil(sim.FromMillis(0.5))
	if got := h.nw.Stats().ByKind["LASS.Request"]; got != 3 {
		t.Fatalf("sent %d request messages, want 3 unaggregated", got)
	}
	h.eng.Run()
	h.nodes[1].Release()
}

// TestShortcutRewiresFather pins §4.6.2(1): after a Counter reply the
// requester's father pointer must aim at the replier (the token holder),
// so the follow-up ReqRes travels one hop.
func TestShortcutRewiresFather(t *testing.T) {
	run := func(disable bool) network.NodeID {
		h := newScript(t, 3, 2, Options{DisableShortcut: disable})
		// Move token r1 to node 2 so node 1's father pointer (still
		// node 0) is stale.
		h.at(0, func() { h.nodes[2].Request(ids(2, 1)) })
		h.at(5, func() { h.nodes[2].Release() })
		// Node 2 holds r1 inside a CS so it answers ReqCnt with a
		// Counter instead of the whole token.
		h.at(10, func() { h.nodes[2].Request(ids(2, 1)) })
		// Node 1 asks for {r0, r1}: the r1 counter comes from node 2.
		h.at(20, func() { h.nodes[1].Request(ids(2, 0, 1)) })
		h.eng.RunUntil(sim.FromMillis(30))
		father := h.nodes[1].tokDir[1]
		h.eng.Run()
		if h.nodes[2].st == stInCS {
			h.nodes[2].Release()
		}
		h.eng.Run()
		if h.nodes[1].st == stInCS {
			h.nodes[1].Release()
		}
		return father
	}
	if got := run(false); got != 2 {
		t.Fatalf("with shortcut, father = s%d, want s2", got)
	}
	if got := run(true); got != 0 {
		t.Fatalf("without shortcut, father = s%d, want the stale s0", got)
	}
}

// TestForwardStopKeepsRequestLocal pins §4.6.2(2): a non-owner in
// waitCS with a higher-priority pending request for r must not forward
// a ReqRes for r — it stores it and replays it when the token arrives.
func TestForwardStopKeepsRequestLocal(t *testing.T) {
	h := newScript(t, 3, 2, WithoutLoan())
	nd := h.nodes[1]
	// Put node 1 into waitCS for r0 with a known small mark, without
	// owning it (node 0 keeps the token busy in a CS).
	h.at(0, func() { h.nodes[0].Request(ids(2, 0, 1)) }) // immediate CS
	h.at(5, func() { nd.Request(ids(2, 0, 1)) })
	h.at(10, func() {
		if nd.st != stWaitCS {
			t.Fatalf("node1 state %v", nd.st)
		}
		// Deliver, out of band, a worse-priority ReqRes for r0 from
		// node 2 with node 1's father (node 0) already visited: the
		// §4.2.1 rule alone would stop it; the §4.6.2 rule must stop
		// it even when the father was NOT visited.
		before := h.nw.Stats().Total
		nd.Deliver(2, reqBatch{
			Visited: []network.NodeID{2},
			Reqs: []request{{
				Kind: reqRes, R: 0, Init: 2, ID: 1, Mark: nd.myMark + 100,
			}},
		})
		if got := h.nw.Stats().Total - before; got != 0 {
			t.Fatalf("forwarded %d messages, want 0 (forward stop)", got)
		}
		if len(nd.pending[0]) != 1 {
			t.Fatalf("pendingReq = %v, want the stored request", nd.pending[0])
		}
	})
	h.at(20, func() { h.nodes[0].Release() })
	h.eng.Run()
	// Node 1 got the tokens, entered CS; on its release the replayed
	// request from node 2 must have reached the queue and the token
	// must flow to node 2 (which never even sent a proper request —
	// the replay is its only trace; it will be in waitCS... it is not
	// actually requesting, so the token just lands there).
	if nd.st != stInCS {
		t.Fatalf("node1 state %v", nd.st)
	}
	tok := nd.lastTok[0]
	if !tok.Queue.contains(2, 1) {
		t.Fatalf("replayed request missing from queue: %v", tok.Queue)
	}
	h.nodes[1].Release()
}

// TestVisitedSetStopsForwarding pins §4.2.1: a request whose next hop
// is already in its visited set is stored, not forwarded (the token is
// heading to a site that already has a pendingReq copy).
func TestVisitedSetStopsForwarding(t *testing.T) {
	h := newScript(t, 3, 2, WithoutLoan())
	nd := h.nodes[1] // father for everything is node 0
	before := h.nw.Stats().Total
	nd.Deliver(2, reqBatch{
		Visited: []network.NodeID{2, 0}, // node 0 = nd's father, visited
		Reqs:    []request{{Kind: reqRes, R: 0, Init: 2, ID: 1, Mark: 1}},
	})
	if got := h.nw.Stats().Total - before; got != 0 {
		t.Fatalf("forwarded %d messages despite visited father", got)
	}
	if len(nd.pending[0]) != 1 {
		t.Fatal("request not stored in local history")
	}
	h.eng.Run()
}

// TestPendingPruneDropsObsolete fills a node's local history past the
// prune threshold with requests its stale snapshot can prove obsolete;
// the history must stay bounded.
func TestPendingPruneDropsObsolete(t *testing.T) {
	h := newScript(t, 3, 2, WithoutLoan())
	nd := h.nodes[1]
	// Give node 1 a stale snapshot that says: node 2's requests up to
	// id 10^6 are all served.
	snap := newToken(0, 3)
	snap.LastCS[2] = 1 << 40
	nd.lastTok[0] = snap
	for i := 0; i < pruneThreshold+50; i++ {
		nd.storePending(0, request{Kind: reqRes, R: 0, Init: 2, ID: int64(i + 1), Mark: 1})
	}
	if got := len(nd.pending[0]); got > pruneThreshold+1 {
		t.Fatalf("history grew to %d, prune did not run", got)
	}
}

// TestStaleCounterIgnored pins hardening deviation 1: a Counter reply
// for a previous request id must not corrupt the current vector.
func TestStaleCounterIgnored(t *testing.T) {
	h := newScript(t, 2, 2, WithoutLoan())
	nd := h.nodes[1]
	h.at(0, func() { h.nodes[0].Request(ids(2, 0, 1)) })
	h.at(5, func() { nd.Request(ids(2, 0, 1)) })
	h.at(10, func() {
		if nd.st != stWaitCS {
			t.Fatalf("state %v", nd.st)
		}
		was := nd.myVector[0]
		nd.Deliver(0, respBatch{Counters: []counterVal{{R: 0, Val: 999, ID: nd.curID - 1}}})
		if nd.myVector[0] != was {
			t.Fatal("stale counter accepted")
		}
		// Same id but the counter is no longer needed: also ignored.
		nd.Deliver(0, respBatch{Counters: []counterVal{{R: 0, Val: 999, ID: nd.curID}}})
		if nd.myVector[0] != was {
			t.Fatal("unneeded counter accepted")
		}
	})
	h.at(20, func() { h.nodes[0].Release() })
	h.eng.Run()
	h.nodes[1].Release()
}
