package core

import "mralloc/internal/sim"

// MarkFunc is the paper's function A: it folds the counter vector of a
// request (entry r holds the counter value obtained for resource r,
// zero for resources the request does not name) into a real number.
// Together with the site identifier it totally orders requests ("/").
//
// Liveness demands that A make every pending request eventually minimal
// (hypothesis 6): any aggregation that grows as counters grow works,
// because counters increase at every new request.
type MarkFunc func(vector []int64) float64

// AvgNonZero is the paper's evaluation choice: the average of the
// non-zero entries. It avoids starvation "only by calling the function
// and not inducing any additional communication cost" (§5).
func AvgNonZero(v []int64) float64 {
	var sum int64
	var n int
	for _, x := range v {
		if x != 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MaxNonZero orders requests by their largest counter value — a
// "last-resource-acquired" policy (ablation A1).
func MaxNonZero(v []int64) float64 {
	var max int64
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	return float64(max)
}

// SumNonZero orders requests by the sum of counter values, penalizing
// large requests (ablation A1).
func SumNonZero(v []int64) float64 {
	var sum int64
	for _, x := range v {
		sum += x
	}
	return float64(sum)
}

// MinNonZero orders requests by their earliest obtained counter — the
// closest analogue of FIFO per first resource (ablation A1).
func MinNonZero(v []int64) float64 {
	var min int64
	found := false
	for _, x := range v {
		if x != 0 && (!found || x < min) {
			min = x
			found = true
		}
	}
	return float64(min)
}

// Options configure one instance of the algorithm.
type Options struct {
	// Loan enables the dynamic-scheduling loan mechanism (§3.4, §4.5).
	Loan bool
	// LoanThreshold is the maximum number of missing resources at which
	// a waiting site asks for a loan. The paper's evaluation uses 1.
	// (§4.5's prose says "smaller or equal to a given threshold"; the
	// pseudo-code uses equality — we implement ≤, identical at 1.)
	LoanThreshold int
	// Mark is the function A. Nil means AvgNonZero.
	Mark MarkFunc

	// DisableSingleResOpt turns off the §4.6.1 fast path (single
	// resource requests skip the counter round-trip).
	DisableSingleResOpt bool
	// DisableShortcut turns off the §4.6.2 father-pointer shortcut on
	// Counter receipt.
	DisableShortcut bool
	// DisableForwardStop turns off the §4.6.2 early stop of ReqRes
	// forwarding at sites that know they will receive the token first.
	DisableForwardStop bool
	// DisableAggregation turns off §4.2.2 message aggregation; every
	// buffered item then travels as its own message (ablation A2).
	DisableAggregation bool

	// LeaseTTL enables token leases when positive: every token owner
	// heartbeats its holdings to the per-resource steward, and a steward
	// that has heard nothing for 4×TTL regenerates the token under a
	// bumped epoch (lease.go). Zero disables leases entirely — the
	// original crash-free protocol. Leases require a time source: the
	// environment must drive Node.Tick.
	LeaseTTL sim.Time
	// HeartbeatInterval is how often an owner renews its leases. Zero
	// defaults to LeaseTTL/3, which gives a holder two retries before
	// the grant it relies on lapses.
	HeartbeatInterval sim.Time
}

// WithLoan is the paper's "With loan" configuration (threshold 1).
func WithLoan() Options { return Options{Loan: true, LoanThreshold: 1} }

// WithoutLoan is the paper's "Without loan" configuration.
func WithoutLoan() Options { return Options{} }

func (o Options) mark() MarkFunc {
	if o.Mark == nil {
		return AvgNonZero
	}
	return o.Mark
}

func (o Options) threshold() int {
	if o.LoanThreshold <= 0 {
		return 1
	}
	return o.LoanThreshold
}

func (o Options) hbInterval() sim.Time {
	if o.HeartbeatInterval > 0 {
		return o.HeartbeatInterval
	}
	return o.LeaseTTL / 3
}
