package core

import (
	"mralloc/internal/alg"
	"mralloc/internal/network"
)

// outbox implements the aggregation mechanism of §4.2.2: within one
// activation (one Request/Release/Deliver call), messages to the same
// destination are buffered and combined — request messages into one
// reqBatch sharing the activation's visited set, responses (counters
// and tokens) into one respBatch. With aggregation disabled every item
// travels alone, which is ablation A2.
type outbox struct {
	reqs []destReq
	cnts []destCnt
	toks []destTok

	// dests is flush's scratch list of unique destinations, reused
	// across activations. An activation talks to a handful of sites, so
	// linear scans beat a map here — and allocate nothing.
	dests []network.NodeID
}

type destReq struct {
	to network.NodeID
	r  request
}
type destCnt struct {
	to network.NodeID
	c  counterVal
}
type destTok struct {
	to network.NodeID
	t  *token
}

func (o *outbox) request(to network.NodeID, r request) {
	o.reqs = append(o.reqs, destReq{to, r})
}

func (o *outbox) counter(to network.NodeID, c counterVal) {
	o.cnts = append(o.cnts, destCnt{to, c})
}

func (o *outbox) token(to network.NodeID, t *token) {
	o.toks = append(o.toks, destTok{to, t})
}

// destAdd records a destination in first-occurrence order.
func (o *outbox) destAdd(to network.NodeID) {
	for _, d := range o.dests {
		if d == to {
			return
		}
	}
	o.dests = append(o.dests, to)
}

// flush transmits everything buffered. visited applies to all request
// messages of this activation (§4.2.1); it must already include the
// sending site, and flush takes ownership of it — the caller must not
// retain or reuse the slice. When the requests go to exactly one
// destination, that single batch inherits the exclusive ownership
// (owned=true) so the receiving hop may extend the visited set in
// place; with several destinations the slice is shared between their
// batches and every receiver must copy (see visitedAdd).
func (o *outbox) flush(env alg.Env, visited []network.NodeID, aggregate bool) {
	if len(o.reqs) > 0 {
		if aggregate {
			o.dests = o.dests[:0]
			for _, x := range o.reqs {
				o.destAdd(x.to)
			}
			owned := len(o.dests) == 1
			for _, to := range o.dests {
				n := 0
				for _, x := range o.reqs {
					if x.to == to {
						n++
					}
				}
				reqs := make([]request, 0, n)
				for _, x := range o.reqs {
					if x.to == to {
						reqs = append(reqs, x.r)
					}
				}
				env.Send(to, reqBatch{Visited: visited, Reqs: reqs, owned: owned})
			}
		} else {
			owned := len(o.reqs) == 1
			for _, x := range o.reqs {
				env.Send(x.to, reqBatch{Visited: visited, Reqs: []request{x.r}, owned: owned})
			}
		}
		o.reqs = o.reqs[:0]
	}
	if len(o.cnts) == 0 && len(o.toks) == 0 {
		return
	}
	if aggregate {
		o.dests = o.dests[:0]
		for _, x := range o.cnts {
			o.destAdd(x.to)
		}
		for _, x := range o.toks {
			o.destAdd(x.to)
		}
		for _, to := range o.dests {
			var b respBatch
			n := 0
			for _, x := range o.cnts {
				if x.to == to {
					n++
				}
			}
			if n > 0 {
				b.Counters = make([]counterVal, 0, n)
				for _, x := range o.cnts {
					if x.to == to {
						b.Counters = append(b.Counters, x.c)
					}
				}
			}
			n = 0
			for _, x := range o.toks {
				if x.to == to {
					n++
				}
			}
			if n > 0 {
				b.Tokens = make([]*token, 0, n)
				for _, x := range o.toks {
					if x.to == to {
						b.Tokens = append(b.Tokens, x.t)
					}
				}
			}
			env.Send(to, b)
		}
	} else {
		for _, x := range o.cnts {
			env.Send(x.to, respBatch{Counters: []counterVal{x.c}})
		}
		for _, x := range o.toks {
			env.Send(x.to, respBatch{Tokens: []*token{x.t}})
		}
	}
	o.cnts = o.cnts[:0]
	o.toks = o.toks[:0]
}
