package core

import (
	"mralloc/internal/alg"
	"mralloc/internal/network"
)

// outbox implements the aggregation mechanism of §4.2.2: within one
// activation (one Request/Release/Deliver call), messages to the same
// destination are buffered and combined — request messages into one
// reqBatch sharing the activation's visited set, responses (counters
// and tokens) into one respBatch. With aggregation disabled every item
// travels alone, which is ablation A2.
type outbox struct {
	reqs []destReq
	cnts []destCnt
	toks []destTok
}

type destReq struct {
	to network.NodeID
	r  request
}
type destCnt struct {
	to network.NodeID
	c  counterVal
}
type destTok struct {
	to network.NodeID
	t  *token
}

func (o *outbox) request(to network.NodeID, r request) {
	o.reqs = append(o.reqs, destReq{to, r})
}

func (o *outbox) counter(to network.NodeID, c counterVal) {
	o.cnts = append(o.cnts, destCnt{to, c})
}

func (o *outbox) token(to network.NodeID, t *token) {
	o.toks = append(o.toks, destTok{to, t})
}

// flush transmits everything buffered. visited applies to all request
// messages of this activation (§4.2.1); it must already include the
// sending site.
func (o *outbox) flush(env alg.Env, visited []network.NodeID, aggregate bool) {
	if len(o.reqs) > 0 {
		if aggregate {
			var order []network.NodeID
			groups := make(map[network.NodeID][]request, 4)
			for _, x := range o.reqs {
				if _, seen := groups[x.to]; !seen {
					order = append(order, x.to)
				}
				groups[x.to] = append(groups[x.to], x.r)
			}
			for _, to := range order {
				env.Send(to, reqBatch{Visited: visited, Reqs: groups[to]})
			}
		} else {
			for _, x := range o.reqs {
				env.Send(x.to, reqBatch{Visited: visited, Reqs: []request{x.r}})
			}
		}
		o.reqs = o.reqs[:0]
	}
	if len(o.cnts) == 0 && len(o.toks) == 0 {
		return
	}
	if aggregate {
		var order []network.NodeID
		groups := make(map[network.NodeID]*respBatch, 4)
		add := func(to network.NodeID) *respBatch {
			b, seen := groups[to]
			if !seen {
				b = &respBatch{}
				groups[to] = b
				order = append(order, to)
			}
			return b
		}
		for _, x := range o.cnts {
			b := add(x.to)
			b.Counters = append(b.Counters, x.c)
		}
		for _, x := range o.toks {
			b := add(x.to)
			b.Tokens = append(b.Tokens, x.t)
		}
		for _, to := range order {
			env.Send(to, *groups[to])
		}
	} else {
		for _, x := range o.cnts {
			env.Send(x.to, respBatch{Counters: []counterVal{x.c}})
		}
		for _, x := range o.toks {
			env.Send(x.to, respBatch{Tokens: []*token{x.t}})
		}
	}
	o.cnts = o.cnts[:0]
	o.toks = o.toks[:0]
}
