package core

import (
	"fmt"

	"mralloc/internal/network"
)

// QueueBench is the benchmark harness for wqueue.Insert, exported for
// internal/bench's micro grid. wqueue is unexported (protocol-internal
// state), so the workload lives here — but as plain code, not a
// *testing.B harness, so the testing package never links into
// production binaries.
type QueueBench struct {
	refs []reqRef
	q    wqueue
}

// NewQueueBench prepares an n-entry workload with a deterministic mark
// sequence.
func NewQueueBench(n int) *QueueBench {
	b := &QueueBench{refs: make([]reqRef, n), q: make(wqueue, 0, n)}
	x := uint64(0x9e3779b97f4a7c15)
	for i := range b.refs {
		x = x*6364136223846793005 + 1442695040888963407
		b.refs[i] = reqRef{
			Site: network.NodeID(i % 64),
			ID:   int64(i),
			Mark: float64(x>>11) / (1 << 53),
		}
	}
	return b
}

// Ops reports how many Insert calls one Round performs.
func (b *QueueBench) Ops() int { return 2 * len(b.refs) }

// Round builds the queue through Insert and probes every entry for
// duplicate rejection once — the exact mix the token hot path sees at
// large N. It panics on a wrong outcome so a broken Insert cannot
// produce a plausible-looking timing.
func (b *QueueBench) Round() {
	b.q = b.q[:0]
	for _, r := range b.refs {
		if !b.q.Insert(r) {
			panic(fmt.Sprintf("core: fresh entry %v rejected", r))
		}
	}
	for _, r := range b.refs {
		if b.q.Insert(r) {
			panic(fmt.Sprintf("core: duplicate entry %v accepted", r))
		}
	}
}
