package sim

// Event is a scheduled callback. The zero Event is not meaningful; events
// are created through Engine.At and Engine.After and may be canceled.
type Event struct {
	at  Time
	seq uint64
	fn  func()

	index    int // position in the heap, -1 once popped
	canceled bool
}

// At reports the instant the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now  Time
	seq  uint64
	heap []*Event

	executed uint64
}

// New returns an engine with the clock at zero and an empty agenda.
func New() *Engine {
	return &Engine{heap: make([]*Event, 0, 1024)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far (a cheap progress and
// complexity measure for tests and benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at instant t. Scheduling in the past (t < Now)
// is a programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the agenda. Canceling an already-executed or
// already-canceled event is a no-op, so callers need not track firing.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the agenda is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes every event scheduled at or before horizon, then
// advances the clock to horizon. Events scheduled later stay pending.
func (e *Engine) RunUntil(horizon Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// peek returns the earliest live event without removing it, skipping and
// discarding canceled entries on the way.
func (e *Engine) peek() *Event {
	for len(e.heap) > 0 {
		if ev := e.heap[0]; !ev.canceled {
			return ev
		}
		e.pop()
	}
	return nil
}

// The heap is hand-rolled rather than container/heap to keep Event
// pointers stable and avoid interface boxing on the hot path.

func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *Event {
	h := e.heap
	n := len(h) - 1
	top := h[0]
	h[0], h[n] = h[n], h[0]
	h[0].index = 0
	e.heap = h[:n]
	if n > 0 {
		e.down(0)
	}
	top.index = -1
	return top
}

func (e *Engine) up(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].index, h[parent].index = i, parent
		i = parent
	}
}

func (e *Engine) down(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && e.less(h[right], h[left]) {
			smallest = right
		}
		if !e.less(h[smallest], h[i]) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		h[i].index, h[smallest].index = i, smallest
		i = smallest
	}
}
