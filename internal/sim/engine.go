package sim

// event is the scheduler's internal record of one scheduled callback.
// Records are recycled through Engine.free once they fire or their
// cancellation is collected, so the scheduling hot path allocates only
// when the agenda outgrows every previous high-water mark.
type event struct {
	at  Time
	seq uint64
	fn  func()

	index    int // position in the heap, -1 once popped
	gen      uint64
	canceled bool
}

// Event is a cancellation handle for a scheduled callback, returned by
// Engine.At and Engine.After. The zero Event is valid and cancels
// nothing. Handles stay safe after the callback has fired: the record
// behind a spent handle may be recycled for a later event, and the
// generation stamp makes Cancel on the stale handle a no-op rather than
// a cancellation of the unrelated newcomer.
type Event struct {
	n   *event
	gen uint64
}

// At reports the instant the event is scheduled for. It is meaningful
// until the event fires or is canceled; afterwards it reports the
// schedule of whatever event currently occupies the recycled record.
func (ev Event) At() Time {
	if ev.n == nil {
		return 0
	}
	return ev.n.at
}

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now  Time
	seq  uint64
	heap []*event

	// free holds spent event records for reuse (a free-list pool).
	free []*event

	executed uint64
}

// New returns an engine with the clock at zero and an empty agenda.
func New() *Engine {
	return &Engine{heap: make([]*event, 0, 1024)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far (a cheap progress and
// complexity measure for tests and benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events still scheduled, including
// canceled events whose records have not been collected yet.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at instant t. Scheduling in the past (t < Now)
// is a programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	if len(e.free) == 0 {
		// Refill the pool a slab at a time: one allocation per 64
		// records, and consecutive events stay cache-adjacent.
		slab := make([]event, 64)
		for i := range slab {
			e.free = append(e.free, &slab[i])
		}
	}
	// No need to nil the vacated slot: records are slab-backed and stay
	// reachable through the pool either way.
	n := len(e.free)
	ev := e.free[n-1]
	e.free = e.free[:n-1]
	ev.at, ev.fn, ev.canceled = t, fn, false
	ev.seq = e.seq
	e.seq++
	e.push(ev)
	return Event{n: ev, gen: ev.gen}
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the agenda. Canceling the zero Event, an
// already-executed or already-canceled event, or a stale handle whose
// record has been recycled is a no-op, so callers need not track firing.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.canceled || n.index < 0 {
		return
	}
	n.canceled = true
}

// recycle returns a spent record to the pool. Bumping the generation
// invalidates every outstanding handle to it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.executed++
		fn := ev.fn
		// Recycle before running: fn frequently schedules a follow-up
		// (network deliveries, the driver's request cycle), and handing
		// it this record keeps the pool at its high-water mark. The
		// handle the caller holds is dead either way — index is -1 and
		// the generation has moved on.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the agenda is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes every event scheduled at or before horizon, then
// advances the clock to horizon. Events scheduled later stay pending.
func (e *Engine) RunUntil(horizon Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// peek returns the earliest live event without removing it, discarding
// (and recycling) canceled entries on the way.
func (e *Engine) peek() *event {
	for len(e.heap) > 0 {
		if ev := e.heap[0]; !ev.canceled {
			return ev
		}
		e.recycle(e.pop())
	}
	return nil
}

// The heap is hand-rolled rather than container/heap to keep event
// pointers stable and avoid interface boxing on the hot path.

func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *event {
	h := e.heap
	n := len(h) - 1
	top := h[0]
	h[0], h[n] = h[n], h[0]
	h[0].index = 0
	e.heap = h[:n]
	if n > 0 {
		e.down(0)
	}
	top.index = -1
	return top
}

func (e *Engine) up(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].index, h[parent].index = i, parent
		i = parent
	}
}

func (e *Engine) down(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && e.less(h[right], h[left]) {
			smallest = right
		}
		if !e.less(h[smallest], h[i]) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		h[i].index, h[smallest].index = i, smallest
		i = smallest
	}
}
