package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnitsAndString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2500, "2.5µs"},
		{3 * Millisecond, "3.00ms"},
		{1500 * Millisecond, "1.500s"},
		{-3 * Millisecond, "-3.00ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
	if FromMillis(2.5) != 2500*Microsecond {
		t.Errorf("FromMillis(2.5) = %v", FromMillis(2.5))
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Errorf("Seconds() = %v", (1500 * Millisecond).Seconds())
	}
	if (3 * Millisecond).Milliseconds() != 3 {
		t.Errorf("Milliseconds() = %v", (3 * Millisecond).Milliseconds())
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got[%d] = %d", i, v)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := New()
	var fired []Time
	var step func()
	step = func() {
		fired = append(fired, e.Now())
		if len(fired) < 4 {
			e.After(5, step)
		}
	}
	e.After(5, step)
	e.Run()
	want := []Time{5, 10, 15, 20}
	for i, w := range want {
		if fired[i] != w {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	// Cancel after execution is a no-op too.
	ev2 := e.At(20, func() {})
	e.Run()
	e.Cancel(ev2)
	if e.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1", e.Executed())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{5, 10, 15, 25} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(15)
	if len(got) != 3 {
		t.Fatalf("RunUntil(15) ran %d events, want 3", len(got))
	}
	if e.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("after RunUntil(100): now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()

	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

// TestEngineHeapProperty drains random agendas and checks the pop order is
// globally sorted by (time, insertion sequence).
func TestEngineHeapProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		e := New()
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, raw := range times {
			at, i := Time(raw), i
			e.At(at, func() { got = append(got, stamp{at, i}) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCancelProperty cancels a random subset and checks exactly the
// survivors run.
func TestEngineCancelProperty(t *testing.T) {
	prop := func(times []uint8, seed int64) bool {
		e := New()
		r := rand.New(rand.NewSource(seed))
		ran := make(map[int]bool)
		events := make([]Event, len(times))
		for i, raw := range times {
			i := i
			events[i] = e.At(Time(raw), func() { ran[i] = true })
		}
		canceled := make(map[int]bool)
		for i := range events {
			if r.Intn(2) == 0 {
				e.Cancel(events[i])
				canceled[i] = true
			}
		}
		e.Run()
		for i := range events {
			if ran[i] == canceled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCancelThenReschedule(t *testing.T) {
	e := New()
	var got []int
	ev := e.At(10, func() { got = append(got, 1) })
	e.Cancel(ev)
	e.At(10, func() { got = append(got, 2) }) // replacement at the same instant
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want only the rescheduled event", got)
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1", e.Executed())
	}

	// Cancel-then-reschedule from inside a handler: the handler cancels
	// a pending event and schedules its replacement later.
	e2 := New()
	var fired []Time
	pending := e2.At(20, func() { fired = append(fired, e2.Now()) })
	e2.At(5, func() {
		e2.Cancel(pending)
		e2.At(30, func() { fired = append(fired, e2.Now()) })
	})
	e2.Run()
	if len(fired) != 1 || fired[0] != 30 {
		t.Fatalf("fired = %v, want [30]", fired)
	}
}

func TestEngineRunUntilDiscardsCanceledHeads(t *testing.T) {
	e := New()
	ran := false
	for _, at := range []Time{5, 6, 7} {
		e.Cancel(e.At(at, func() { ran = true }))
	}
	e.At(20, func() {})
	e.RunUntil(10)
	if ran {
		t.Fatal("canceled event ran")
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed() = %d, want 0", e.Executed())
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	// The canceled heads were in RunUntil's way and must have been
	// collected; only the live event at 20 remains.
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(25)
	if e.Executed() != 1 || e.Pending() != 0 {
		t.Fatalf("after RunUntil(25): executed=%d pending=%d", e.Executed(), e.Pending())
	}
}

// TestEnginePoolNoResurrection pins the pool-safety contract: a stale
// handle to a fired or collected event must not cancel the unrelated
// event that recycled its record.
func TestEnginePoolNoResurrection(t *testing.T) {
	e := New()
	fired := e.At(5, func() {})
	e.Run() // fires, record recycled

	ran := false
	e.At(10, func() { ran = true }) // reuses the record behind `fired`
	e.Cancel(fired)                 // stale: must be a no-op
	e.Run()
	if !ran {
		t.Fatal("stale handle canceled a recycled event")
	}

	// Same via the canceled-and-collected path.
	canceled := e.At(15, func() {})
	e.Cancel(canceled)
	e.Run() // discards and recycles the record
	ran = false
	e.At(20, func() { ran = true })
	e.Cancel(canceled) // stale again
	e.Run()
	if !ran {
		t.Fatal("stale canceled handle resurrected onto a recycled event")
	}
}

// TestEngineScheduleIsAllocationFree checks the free list actually
// eliminates steady-state allocation: once the agenda has reached its
// high-water mark, At must reuse records instead of allocating.
func TestEngineScheduleIsAllocationFree(t *testing.T) {
	e := New()
	var fn func()
	n := 0
	fn = func() {
		if n < 100 {
			n++
			e.After(1, fn)
		}
	}
	e.After(1, fn)
	e.Step() // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		if !e.Step() {
			t.Fatal("agenda drained early")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Step allocated %.1f objects/run, want 0", allocs)
	}
}

func TestStreamIndependenceAndDeterminism(t *testing.T) {
	a1 := Stream(42, "a")
	a2 := Stream(42, "a")
	b := Stream(42, "b")
	var sameAB, sameA12 int
	for i := 0; i < 100; i++ {
		x, y, z := a1.Int63(), a2.Int63(), b.Int63()
		if x == y {
			sameA12++
		}
		if x == z {
			sameAB++
		}
	}
	if sameA12 != 100 {
		t.Error("identical (seed,label) streams diverged")
	}
	if sameAB > 2 {
		t.Errorf("streams with different labels collided %d/100 times", sameAB)
	}
}

func TestExp(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Exp(r, 0) != 0 || Exp(r, -5) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
	const mean = 10 * Millisecond
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		v := Exp(r, mean)
		if v < 0 {
			t.Fatal("negative sample")
		}
		sum += v
	}
	got := float64(sum) / n / float64(mean)
	if got < 0.95 || got > 1.05 {
		t.Fatalf("sample mean/true mean = %.3f, want ≈1", got)
	}
}
