package sim

import (
	"hash/fnv"
	"math/rand"
)

// Stream derives an independent, reproducible random stream from a run
// seed and a textual label ("node/7/think", "latency", ...). Labeled
// derivation keeps sub-streams stable when unrelated consumers are added
// or removed, which keeps recorded experiment outputs comparable across
// code revisions.
func Stream(seed int64, label string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// Exp draws an exponentially distributed duration with the given mean.
// A zero or negative mean yields zero, which callers use to express
// "immediately" (e.g. saturation workloads with no think time).
func Exp(r *rand.Rand, mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(r.ExpFloat64() * float64(mean))
}
