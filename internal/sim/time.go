package sim

import "fmt"

// Time is an instant (or span) of virtual time, counted in nanoseconds
// since the start of the simulation. A single type serves both instants
// and durations; the arithmetic the kernel needs never mixes the two in
// a way that would benefit from distinct types.
type Time int64

// Convenient units, mirroring time.Duration.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an adaptive unit, e.g. "12.5ms" or "3.2s".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// FromMillis converts a floating-point millisecond count to Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }
