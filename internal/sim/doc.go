// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (Time, in nanoseconds) and executes
// callbacks scheduled on it. Events that share an instant run in the order
// they were scheduled, so a simulation driven from a single seed is fully
// reproducible: the heap breaks time ties with a monotonically increasing
// sequence number.
//
// The kernel is single-threaded by design. Parallelism in this repository
// happens one level up: independent simulations (one per experiment point)
// run concurrently on separate Engine instances.
package sim
