package wire_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mralloc/internal/wire"
)

// gateWriter blocks every Write until released, counting bytes that do
// get through — a stand-in for a peer that stops reading.
type gateWriter struct {
	mu       sync.Mutex
	released bool
	cond     *sync.Cond
	written  atomic.Int64
}

func newGateWriter() *gateWriter {
	g := &gateWriter{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	for !g.released {
		g.cond.Wait()
	}
	g.mu.Unlock()
	g.written.Add(int64(len(p)))
	return len(p), nil
}

func (g *gateWriter) release() {
	g.mu.Lock()
	g.released = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// TestByteBudgetBoundsQueue is the deterministic stalled-peer test:
// with the writer wedged, appenders must block once the budget fills,
// queued bytes must stay under budget + one frame, and releasing the
// writer must drain everything.
func TestByteBudgetBoundsQueue(t *testing.T) {
	const budget = 4096
	const frameLen = 256
	const frames = 100 // 100 × ~257B ≫ budget: pre-budget behavior grows unboundedly

	g := newGateWriter()
	co := wire.NewCoalescer(g, 0, nil)
	co.SetByteBudget(budget)

	var appended atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := make([]byte, frameLen)
		for i := 0; i < frames; i++ {
			if !co.Append(payload) {
				return
			}
			appended.Add(1)
		}
	}()

	// The appender must wedge with the queue bounded: strictly fewer
	// than the full workload admitted, and never more than budget plus
	// one frame's worth of bytes queued.
	eventually(t, "appender blocked on the budget", func() bool {
		n := appended.Load()
		return n > 0 && n < frames && co.QueuedBytes() >= budget-2*frameLen
	})
	// Hold the stall a moment and confirm the bound is respected.
	for i := 0; i < 20; i++ {
		if q := co.QueuedBytes(); q > budget+frameLen+16 {
			t.Fatalf("queued %d bytes exceeds budget %d + one frame", q, budget)
		}
		time.Sleep(time.Millisecond)
	}
	if appended.Load() >= frames {
		t.Fatal("appender never blocked: budget not enforced")
	}
	if co.Stats().Stalls == 0 {
		t.Fatal("no stalls recorded")
	}

	// The peer recovers: everything drains and the appender completes.
	g.release()
	<-done
	if got := appended.Load(); got != frames {
		t.Fatalf("appended %d frames, want %d", got, frames)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if st := co.Stats(); st.Frames != frames {
		t.Fatalf("wrote %d frames, want %d", st.Frames, frames)
	}
	if co.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", co.QueuedBytes())
	}
}

// TestCloseUnblocksBudgetedAppender: Close must wake an appender
// blocked on the budget (it then reports refusal), never deadlock.
func TestCloseUnblocksBudgetedAppender(t *testing.T) {
	g := newGateWriter()
	co := wire.NewCoalescer(g, 0, nil)
	co.SetByteBudget(512)

	refused := make(chan bool, 1)
	go func() {
		payload := make([]byte, 256)
		for {
			if !co.Append(payload) {
				refused <- true
				return
			}
		}
	}()
	eventually(t, "appender wedged", func() bool { return co.QueuedBytes() >= 256 })
	g.release() // let Close's final flush through
	go co.Close()
	select {
	case <-refused:
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the appender blocked on the budget")
	}
}

// TestCreditWindowGatesWrites: with a window armed, the flusher must
// stop writing once the credit is spent and resume on AddCredit — the
// sender half of end-to-end flow control.
func TestCreditWindowGatesWrites(t *testing.T) {
	const window = 1024
	g := newGateWriter()
	g.release() // writer never blocks; only credit gates progress
	co := wire.NewCoalescer(g, 1, nil)
	co.SetWindow(window)

	payload := make([]byte, 200)
	for i := 0; i < 20; i++ { // ~4KB total against a 1KB window
		if !co.Append(payload) {
			t.Fatal("append refused")
		}
	}
	// Writes must stall at (roughly) the window, not run to 4KB.
	eventually(t, "first window written", func() bool { return g.written.Load() > window/2 })
	time.Sleep(20 * time.Millisecond)
	if w := g.written.Load(); w > window+512 {
		t.Fatalf("wrote %d bytes with only %d credit", w, window)
	}
	before := g.written.Load()
	co.AddCredit(window)
	eventually(t, "credit resumed writes", func() bool { return g.written.Load() > before })
	if co.Stats().Stalls == 0 {
		t.Fatal("no credit stalls recorded")
	}
	// Close must drain the rest even with the window dry.
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if st := co.Stats(); st.Frames != 20 {
		t.Fatalf("wrote %d frames, want 20", st.Frames)
	}
}
