package wire_test

import (
	"bytes"
	"io"
	"testing"

	"mralloc/internal/wire"
)

// seedCorpus returns the encodings of every registered sample message,
// which covers every registered kind (TestSamplesCoverAllKinds).
func seedCorpus(f *testing.F) {
	f.Helper()
	for _, m := range wire.Samples() {
		b, err := wire.Append(nil, m)
		if err != nil {
			f.Fatalf("encoding sample %s: %v", m.Kind(), err)
		}
		f.Add(b)
	}
}

// FuzzRoundTrip: any bytes that decode must re-encode canonically —
// decode→encode→decode→encode reaches a fixed point after one step.
func FuzzRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := wire.Decode(b)
		if err != nil {
			return
		}
		b2, err := wire.Append(nil, m)
		if err != nil {
			t.Fatalf("decoded %s but cannot re-encode: %v", m.Kind(), err)
		}
		m2, err := wire.Decode(b2)
		if err != nil {
			t.Fatalf("canonical re-encoding of %s does not decode: %v", m.Kind(), err)
		}
		if m2.Kind() != m.Kind() {
			t.Fatalf("kind changed across round trip: %q → %q", m.Kind(), m2.Kind())
		}
		b3, err := wire.Append(nil, m2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatalf("encode∘decode not idempotent for %s:\n  b2=%x\n  b3=%x", m.Kind(), b2, b3)
		}
	})
}

// FuzzBatchStream: arbitrary bytes fed to the batch-aware FrameReader
// must never panic and must terminate — every frame yielded before an
// error (or clean EOF) must itself be decodable or not, without
// crashing. Seeds cover single frames, batch envelopes of mixed kinds,
// an empty batch, and a truncated envelope.
func FuzzBatchStream(f *testing.F) {
	var all []byte
	var body []byte
	for _, m := range wire.Samples() {
		b, err := wire.Append(nil, m)
		if err != nil {
			f.Fatalf("encoding sample %s: %v", m.Kind(), err)
		}
		f.Add(wire.AppendFrame(nil, b)) // each kind as a single frame
		body = wire.AppendFrame(body, b)
		all = wire.AppendFrame(all, b)
	}
	batch := wire.AppendBatch(nil, body) // every kind in one envelope
	f.Add(batch)
	f.Add(all)                         // legacy stream of singles
	f.Add(batch[:len(batch)/2])        // truncated envelope
	f.Add([]byte{0, 0})                // empty batch
	f.Add(wire.AppendBatch(all, body)) // singles then a batch
	f.Fuzz(func(t *testing.T, b []byte) {
		fr := wire.NewFrameReader(bytes.NewReader(b), 1<<16)
		frames := 0
		for {
			frame, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				break
			}
			if len(frame) == 0 {
				t.Fatal("FrameReader yielded an empty frame")
			}
			// Whatever the frame holds, decoding must not panic.
			wire.Decode(frame)
			frames++
			if frames > len(b) {
				t.Fatalf("more frames (%d) than input bytes (%d)", frames, len(b))
			}
		}
	})
}

// FuzzDecode: arbitrary bytes must never panic the decoder — only
// decode or error. (A panic anywhere under Decode fails the fuzzer.)
func FuzzDecode(f *testing.F) {
	seedCorpus(f)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := wire.Decode(b)
		if err == nil && m == nil {
			t.Fatal("nil message decoded without error")
		}
		// The shape-validating path must be equally panic-free, and
		// never accept what the unvalidated path rejects.
		m4, err4 := wire.DecodeFor(b, 4, 8)
		if err4 == nil && m4 == nil {
			t.Fatal("nil message decoded without error (shaped)")
		}
		if err != nil && err4 == nil {
			t.Fatalf("shaped decode accepted what plain decode rejected: %v", err)
		}
	})
}
