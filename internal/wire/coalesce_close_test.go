package wire_test

import (
	"errors"
	"testing"
	"time"

	"mralloc/internal/wire"
)

// blockingWriter blocks every Write until release is closed — a peer
// that stopped reading and ignores deadlines, the documented way to
// wedge a Coalescer.Close forever.
type blockingWriter struct {
	entered chan struct{} // closed when the first Write is reached
	release chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	select {
	case <-w.entered:
	default:
		close(w.entered)
	}
	<-w.release
	return len(p), nil
}

// TestCloseWithinBoundedByDeadline: with the flusher stuck in a write
// that never returns, CloseWithin must give up after its deadline with
// ErrCloseTimeout instead of hanging like Close would — and the
// abandoned flusher must still exit cleanly once the write unblocks.
func TestCloseWithinBoundedByDeadline(t *testing.T) {
	w := &blockingWriter{entered: make(chan struct{}), release: make(chan struct{})}
	co := wire.NewCoalescer(w, 0, nil)
	if !co.Append([]byte("stuck")) {
		t.Fatal("append refused")
	}
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never reached the write")
	}
	start := time.Now()
	err := co.CloseWithin(50 * time.Millisecond)
	if !errors.Is(err, wire.ErrCloseTimeout) {
		t.Fatalf("CloseWithin = %v, want ErrCloseTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("CloseWithin took %v against a stuck flusher", d)
	}
	// The close is committed: no more frames may enter.
	if co.Append([]byte("late")) {
		t.Fatal("append accepted after CloseWithin")
	}
	// Unblock the write: the abandoned flusher exits and a second
	// bounded close now joins it promptly.
	close(w.release)
	if err := co.CloseWithin(5 * time.Second); err != nil {
		t.Fatalf("CloseWithin after unblock: %v", err)
	}
}

// TestCloseWithinDrainsQueued: with a healthy writer, CloseWithin is
// exactly Close — everything queued flushes before it returns.
func TestCloseWithinDrainsQueued(t *testing.T) {
	w := &blockingWriter{entered: make(chan struct{}), release: make(chan struct{})}
	close(w.release) // healthy: writes return immediately
	co := wire.NewCoalescer(w, 0, nil)
	for i := 0; i < 10; i++ {
		if !co.Append([]byte("frame")) {
			t.Fatal("append refused")
		}
	}
	if err := co.CloseWithin(5 * time.Second); err != nil {
		t.Fatalf("CloseWithin: %v", err)
	}
	if st := co.Stats(); st.Frames != 10 {
		t.Fatalf("flushed %d frames before close, want 10", st.Frames)
	}
}
