package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Batch framing. The single-frame format of frame.go makes every
// message its own write; under load a sender has many frames queued for
// one connection, and flushing them one envelope at a time wastes a
// syscall per message. The batch envelope packs any number of frames
// into one length-prefixed unit:
//
//	single frame:   uvarint(n), n > 0   then n payload bytes
//	batch envelope: uvarint(0)          the batch marker
//	                uvarint(env)        total bytes of the enclosed frames
//	                env bytes           two or more frames, each
//	                                    uvarint(n>0) + n payload bytes
//
// A zero length prefix is impossible in the single-frame format (an
// empty payload cannot carry a message), which is what makes the marker
// unambiguous: the two formats coexist on one stream, and a reader that
// understands batches still accepts every pre-batch stream byte for
// byte. Empty envelopes, empty frames inside an envelope, and nested
// markers are malformed. This layout is a compatibility surface (see
// README "Wire path & batching"): both the peer transport and the
// client port speak it.

// MaxEnvelope caps the body of one batch envelope a writer emits.
// Readers enforce their own (usually larger) limit; the writer cap just
// keeps a deep send queue from producing an envelope a conforming
// reader would reject.
const MaxEnvelope = 1 << 20

// AppendBatch appends a batch envelope holding body — which must be a
// concatenation of valid frames (each produced by AppendFrame) — onto
// dst. It is the writer-side dual of FrameReader's envelope handling;
// the coalescing writer inlines the same layout.
func AppendBatch(dst, body []byte) []byte {
	dst = append(dst, 0) // batch marker: a zero uvarint
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// uvarintLen reports how many bytes binary.AppendUvarint would use.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// FrameReader reads a stream of single frames and batch envelopes,
// yielding one frame at a time in stream order — batch boundaries are
// invisible to the caller, which is exactly what keeps FIFO delivery
// independent of how the sender coalesced.
//
// The slice returned by Next aliases an internal buffer that is reused
// by the following Next call: decode the frame (decoders copy what they
// keep) before reading the next. This is what removes the
// allocation-per-frame of the old ReadFrame path.
type FrameReader struct {
	br  *bufio.Reader
	max uint64
	env uint64 // bytes remaining in the current batch envelope
	buf []byte // reused frame buffer
}

// NewFrameReader wraps r (buffered if it is not already), rejecting
// frames and envelopes larger than max.
func NewFrameReader(r io.Reader, max uint64) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{br: br, max: max}
}

// Next returns the next frame. A clean end-of-stream at a frame (and
// envelope) boundary surfaces as io.EOF; a stream ending anywhere else
// is io.ErrUnexpectedEOF. The returned slice is valid only until the
// next call.
func (fr *FrameReader) Next() ([]byte, error) {
	if fr.env == 0 {
		size, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return nil, err // io.EOF here is a clean end of stream
		}
		if size > 0 {
			if size > fr.max {
				return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", size, fr.max)
			}
			return fr.read(size)
		}
		// Batch marker: read the envelope header, then fall through to
		// the in-envelope path for the first frame.
		env, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return nil, noEOF(err)
		}
		if env == 0 {
			return nil, fmt.Errorf("wire: empty batch envelope")
		}
		if env > fr.max {
			return nil, fmt.Errorf("wire: batch envelope of %d bytes exceeds limit %d", env, fr.max)
		}
		fr.env = env
	}
	// Inside an envelope: every byte read, prefix included, is charged
	// against the envelope length so frames exactly fill it.
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, noEOF(err)
	}
	if size == 0 {
		return nil, fmt.Errorf("wire: empty frame inside a batch envelope")
	}
	cost := uint64(uvarintLen(size)) + size
	if cost > fr.env {
		return nil, fmt.Errorf("wire: frame of %d bytes overruns its batch envelope (%d left)", size, fr.env)
	}
	fr.env -= cost
	return fr.read(size)
}

// read fills the reused buffer with size payload bytes.
func (fr *FrameReader) read(size uint64) ([]byte, error) {
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	frame := fr.buf[:size]
	if _, err := io.ReadFull(fr.br, frame); err != nil {
		return nil, noEOF(err)
	}
	return frame, nil
}

// noEOF maps a mid-structure EOF to io.ErrUnexpectedEOF, so only a
// stream ending at a frame boundary reads as a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
