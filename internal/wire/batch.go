package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Batch framing. The single-frame format of frame.go makes every
// message its own write; under load a sender has many frames queued for
// one connection, and flushing them one envelope at a time wastes a
// syscall per message. The batch envelope packs any number of frames
// into one length-prefixed unit, and the stream-control element lets a
// sender announce connection-scoped codec features in-band:
//
//	single frame:   uvarint(n), n > 0   then n payload bytes
//	batch envelope: uvarint(0)          the batch marker
//	                uvarint(env), env>0 total bytes of the enclosed frames
//	                env bytes           two or more frames, each
//	                                    uvarint(n>0) + n payload bytes
//	stream control: uvarint(0)          the batch marker
//	                uvarint(0)          the control marker
//	                uvarint(code)       which feature (Ctrl* constants)
//	                uvarint(k), k bytes code-specific payload
//
// A zero length prefix is impossible in the single-frame format (an
// empty payload cannot carry a message), which is what makes the batch
// marker unambiguous; a zero envelope length is impossible for a batch
// (an envelope holds at least one frame), which is what makes the
// control marker unambiguous in turn. The three formats coexist on one
// stream, and a reader that understands all of them still accepts
// every pre-batch stream byte for byte; conversely a legacy stream
// never contains either marker. Empty frames inside an envelope and
// nested markers are malformed, and a control is only valid between
// stream elements, never inside an envelope. This layout is a
// compatibility surface (see README "Wire path & batching" and
// "Payload path"): both the peer transport and the client port speak
// it.

// MaxEnvelope caps the body of one batch envelope a writer emits.
// Readers enforce their own (usually larger) limit; the writer cap just
// keeps a deep send queue from producing an envelope a conforming
// reader would reject.
const MaxEnvelope = 1 << 20

// AppendBatch appends a batch envelope holding body — which must be a
// concatenation of valid frames (each produced by AppendFrame) — onto
// dst. It is the writer-side dual of FrameReader's envelope handling;
// the coalescing writer inlines the same layout.
func AppendBatch(dst, body []byte) []byte {
	dst = append(dst, 0) // batch marker: a zero uvarint
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// Stream-control codes. A control is addressed to the connection, not
// to a frame consumer: FrameReader surfaces it through OnControl and
// carries on with the next stream element.
//
// Forward-compatibility rule: controls are length-prefixed precisely
// so a reader can skip codes it does not know. A handler that returns
// ErrUnknownControl for an unrecognized code lets the stream continue
// (FrameReader counts the skip, see SkippedControls); future builds
// may therefore introduce new controls without breaking old decoders.
// Only a control the handler understands but finds malformed should
// fail the stream.
const (
	// CtrlTokenDelta announces that the sender's LASS.Response token
	// payloads on this stream use the delta-capable encoding of
	// internal/core (full snapshots and deltas discriminated per
	// token; epoch/seq stamps ride in the tokens themselves). Its
	// payload is empty. Senders emit it once, before the first frame.
	CtrlTokenDelta = 1
	// CtrlHello opens connection negotiation: version, cluster shape,
	// feature bits and receive window (see hello.go). Sent before any
	// frame; the acceptor answers with its own hello or a CtrlReject.
	CtrlHello = 2
	// CtrlWindow credits consumed stream bytes back to the sender —
	// the flow-control half of the negotiated window (hello.go). Its
	// payload is one uvarint byte count.
	CtrlWindow = 3
	// CtrlReject refuses a handshake with a human-readable reason
	// (version or shape mismatch); the connection dies after it.
	CtrlReject = 4
)

// ErrUnknownControl is returned by an OnControl handler to report a
// control code it does not recognize: FrameReader then skips the
// (already consumed, length-prefixed) control and continues the
// stream, counting the skip. Any other handler error fails the stream.
var ErrUnknownControl = errors.New("wire: unknown stream control")

// maxControlPayload bounds one control's payload; current controls
// carry none, and nothing legitimate ever needs much.
const maxControlPayload = 1 << 10

// AppendControl appends a stream-control element onto dst — the
// writer-side dual of FrameReader's OnControl.
func AppendControl(dst []byte, code uint64, payload []byte) []byte {
	dst = append(dst, 0, 0) // batch marker, then the control marker
	dst = binary.AppendUvarint(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// uvarintLen reports how many bytes binary.AppendUvarint would use.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// FrameReader reads a stream of single frames and batch envelopes,
// yielding one frame at a time in stream order — batch boundaries are
// invisible to the caller, which is exactly what keeps FIFO delivery
// independent of how the sender coalesced.
//
// The slice returned by Next aliases an internal buffer that is reused
// by the following Next call: decode the frame (decoders copy what they
// keep) before reading the next. This is what removes the
// allocation-per-frame of the old ReadFrame path.
type FrameReader struct {
	br  *bufio.Reader
	max uint64
	env uint64 // bytes remaining in the current batch envelope
	buf []byte // reused frame buffer

	consumed uint64 // exact stream bytes consumed (markers and headers included)
	skipped  uint64 // unknown controls skipped (forward compat)

	// onControl, when set, receives stream-control elements; returning
	// ErrUnknownControl skips the control (forward compat), any other
	// error fails the stream. A reader with no handler skips and counts
	// every control — the conservative forward-compatible default.
	onControl func(code uint64, payload []byte) error
}

// OnControl installs the stream-control handler (see AppendControl).
// Call it before the first Next.
func (fr *FrameReader) OnControl(fn func(code uint64, payload []byte) error) {
	fr.onControl = fn
}

// Consumed reports the exact number of stream bytes read so far —
// markers, envelope headers, control elements and frame payloads all
// included. It is the byte count a flow-controlled receiver credits
// back to the sender (CtrlWindow), so the units match the sender's
// written-byte accounting.
func (fr *FrameReader) Consumed() uint64 { return fr.consumed }

// SkippedControls reports how many unknown stream controls the reader
// has skipped (the forward-compatibility path: no handler, or a
// handler returning ErrUnknownControl).
func (fr *FrameReader) SkippedControls() uint64 { return fr.skipped }

// NewFrameReader wraps r (buffered if it is not already), rejecting
// frames and envelopes larger than max.
func NewFrameReader(r io.Reader, max uint64) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{br: br, max: max}
}

// Next returns the next frame. A clean end-of-stream at a frame (and
// envelope) boundary surfaces as io.EOF; a stream ending anywhere else
// is io.ErrUnexpectedEOF. The returned slice is valid only until the
// next call.
func (fr *FrameReader) Next() ([]byte, error) {
	for fr.env == 0 {
		size, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return nil, err // io.EOF here is a clean end of stream
		}
		if size > 0 {
			if size > fr.max {
				return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", size, fr.max)
			}
			fr.consumed += uint64(uvarintLen(size)) + size
			return fr.read(size)
		}
		// Batch marker: read the envelope header, then fall through to
		// the in-envelope path for the first frame.
		env, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return nil, noEOF(err)
		}
		if env == 0 {
			// Control marker: consume the control, then loop for the
			// next stream element — controls yield no frame.
			if err := fr.control(); err != nil {
				return nil, err
			}
			continue
		}
		if env > fr.max {
			return nil, fmt.Errorf("wire: batch envelope of %d bytes exceeds limit %d", env, fr.max)
		}
		fr.consumed += 1 + uint64(uvarintLen(env))
		fr.env = env
	}
	// Inside an envelope: every byte read, prefix included, is charged
	// against the envelope length so frames exactly fill it.
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, noEOF(err)
	}
	if size == 0 {
		return nil, fmt.Errorf("wire: empty frame inside a batch envelope")
	}
	cost := uint64(uvarintLen(size)) + size
	if cost > fr.env {
		return nil, fmt.Errorf("wire: frame of %d bytes overruns its batch envelope (%d left)", size, fr.env)
	}
	fr.env -= cost
	fr.consumed += cost
	return fr.read(size)
}

// control reads one stream-control element (the two marker bytes are
// already consumed) and hands it to the handler.
func (fr *FrameReader) control() error {
	code, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return noEOF(err)
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return noEOF(err)
	}
	if n > maxControlPayload {
		return fmt.Errorf("wire: stream control %d with %d-byte payload exceeds limit %d", code, n, maxControlPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return noEOF(err)
	}
	fr.consumed += 2 + uint64(uvarintLen(code)) + uint64(uvarintLen(n)) + n
	if fr.onControl == nil {
		// Forward compatibility: a reader with no handler skips every
		// control. The length prefix makes that safe; erroring here
		// would let any future control break every old decoder.
		fr.skipped++
		return nil
	}
	err = fr.onControl(code, payload)
	if errors.Is(err, ErrUnknownControl) {
		fr.skipped++
		return nil
	}
	return err
}

// read fills the reused buffer with size payload bytes.
func (fr *FrameReader) read(size uint64) ([]byte, error) {
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	frame := fr.buf[:size]
	if _, err := io.ReadFull(fr.br, frame); err != nil {
		return nil, noEOF(err)
	}
	return frame, nil
}

// noEOF maps a mid-structure EOF to io.ErrUnexpectedEOF, so only a
// stream ending at a frame boundary reads as a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
