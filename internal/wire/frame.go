package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing, shared by every connection that carries wire
// messages — the peer transport (internal/transport) and the client
// port (internal/serve). One frame is a uvarint length prefix followed
// by that many payload bytes; what the payload holds (a routed peer
// message with sender/receiver header, a bare client message) is the
// stream's business, but the framing itself lives here so the sites
// can never diverge.

// AppendFrame appends payload as one frame onto dst, returning the
// extended buffer (pass a recycled buffer's [:0] to avoid allocating).
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame from br, rejecting lengths above max — a
// corrupt or hostile prefix must not demand gigabytes. A clean
// end-of-stream at a frame boundary surfaces as io.EOF.
//
// ReadFrame understands only the single-frame format and allocates per
// frame; the connection loops all use FrameReader (batch.go), which
// also accepts batch envelopes and reuses its buffer. This remains for
// tools that want one frame with no reader state.
func ReadFrame(br *bufio.Reader, max uint64) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > max {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", size, max)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
